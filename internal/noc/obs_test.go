package noc

import (
	"math"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestStatsZeroPacketRatios pins the zero-packet guard: an empty or
// early-aborted run must report 0, not NaN, so ratios never poison CSVs.
func TestStatsZeroPacketRatios(t *testing.T) {
	var s Stats
	if got := s.AvgPacketLatency(); got != 0 {
		t.Fatalf("AvgPacketLatency on zero packets = %v, want 0", got)
	}
	if math.IsNaN(s.AvgPacketLatency()) {
		t.Fatal("AvgPacketLatency on zero packets is NaN")
	}
	// A network that never saw traffic reports the same.
	nw, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	nw.Step()
	nw.Step()
	if got := nw.Stats().AvgPacketLatency(); got != 0 || math.IsNaN(got) {
		t.Fatalf("idle-network AvgPacketLatency = %v, want 0", got)
	}
}

// TestTraceHooks drives one packet with tracing and a latency histogram
// installed and checks the emitted lifecycle events and samples.
func TestTraceHooks(t *testing.T) {
	nw, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace()
	buf := tr.Buffer("test", 0, "noc")
	hist := obs.NewHistogram(obs.Pow2Buckets(20))
	nw.SetTrace(buf)
	nw.SetLatencyHistogram(hist)
	if err := nw.Inject(Packet{Src: 0, Dst: 15, Flits: 4}); err != nil {
		t.Fatal(err)
	}
	if _, ok := nw.RunUntilIdle(10_000); !ok {
		t.Fatal("did not drain")
	}
	// One inject instant plus one delivery span.
	if got := buf.Len(); got != 2 {
		t.Fatalf("trace events = %d, want 2", got)
	}
	if hist.Count() != 1 {
		t.Fatalf("latency samples = %d, want 1", hist.Count())
	}
	if hist.Sum() != nw.Stats().LatencySum {
		t.Fatalf("histogram sum %d != stats latency sum %d", hist.Sum(), nw.Stats().LatencySum)
	}
	var sb strings.Builder
	if err := tr.WriteChromeJSON(&sb); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{`"name":"inject"`, `"name":"pkt"`} {
		if !strings.Contains(sb.String(), frag) {
			t.Fatalf("export missing %s: %s", frag, sb.String())
		}
	}

	// Reset clears the hooks along with the sink: a pooled network must
	// not leak one workload's buffers into the next.
	nw.Reset()
	if nw.trace != nil || nw.latHist != nil {
		t.Fatal("Reset did not clear the obs hooks")
	}
}

// TestTraceIdenticalAcrossRuns re-runs the same workload on a reset
// network and requires byte-identical exports — the per-run determinism
// the CI trace-smoke job checks end to end.
func TestTraceIdenticalAcrossRuns(t *testing.T) {
	nw, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	run := func() string {
		nw.Reset()
		tr := obs.NewTrace()
		nw.SetTrace(tr.Buffer("run", 0, "noc"))
		for src := 1; src < 16; src++ {
			if _, err := nw.SendMessage(src, 0, 16, nil); err != nil {
				t.Fatal(err)
			}
		}
		if _, ok := nw.RunUntilIdle(100_000); !ok {
			t.Fatal("did not drain")
		}
		var sb strings.Builder
		if err := tr.WriteChromeJSON(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("trace export changed between identical runs (run %d)", i+1)
		}
	}
}

// TestDisabledObsZeroAllocs pins the zero-overhead contract on the NoC
// hot path: with no trace buffer or histogram installed, the warm
// steady-state inject/route/eject loop must not allocate at all.
func TestDisabledObsZeroAllocs(t *testing.T) {
	nw, err := New(Config{Width: 16, Height: 16, BufferDepth: 4, FlitBits: 64, MaxPacketFlit: 32})
	if err != nil {
		t.Fatal(err)
	}
	iter := func() {
		nw.Reset()
		if err := nw.Inject(Packet{Src: 0, Dst: 255, Flits: 4}); err != nil {
			t.Fatal(err)
		}
		if _, ok := nw.RunUntilIdle(100_000); !ok {
			t.Fatal("did not drain")
		}
	}
	iter() // warm the pooled buffers
	if allocs := testing.AllocsPerRun(20, iter); allocs != 0 {
		t.Fatalf("disabled-obs steady state allocated %.1f allocs/op, want 0", allocs)
	}
}
