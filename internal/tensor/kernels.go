// Cache-blocked, allocation-free compute kernels. These are the hot path
// of every accuracy sweep: the naive MatMul/Im2Col entry points remain as
// the reference semantics, while the *Into variants write into
// caller-owned buffers and block the loops for cache reuse.
//
// Bit-identity is a hard contract, not an aspiration: for every output
// element the contributions along the shared dimension are accumulated in
// exactly the same order (ascending p, one float32 add per term, zero
// terms skipped) as the reference ikj kernel, so tiling, buffer reuse and
// row sharding all produce byte-identical results. The equivalence tests
// in kernels_test.go pin this with math.Float32bits comparisons.
package tensor

import (
	"context"
	"fmt"

	"repro/internal/parallel"
)

// Default tile sizes for the blocked matrix multiply. The a-panel
// (tileI x tileK floats = 32 KiB) fits L1; the b-panel
// (tileK x tileJ floats = 256 KiB) fits L2 and is reused across the
// tileI rows of the a-panel before being evicted. tileJ keeps the
// destination row segment and the b rows streaming within a bounded
// footprint even for the 4096-wide VGG dense layers.
const (
	defaultTileI = 64
	defaultTileK = 128
	defaultTileJ = 512
)

// MatMulInto computes dst = a·b for a (m x k) and b (k x n), writing into
// the caller-supplied dst (m x n). dst is zeroed first, so a reused
// scratch buffer needs no clearing by the caller. dst must not alias a or
// b. The result is bit-identical to MatMul.
func MatMulInto(dst, a, b *Tensor) error {
	return MatMulIntoTiles(dst, a, b, defaultTileI, defaultTileK, defaultTileJ)
}

// MatMulIntoTiles is MatMulInto with explicit tile sizes (exported so the
// property tests can sweep degenerate tilings); sizes below 1 select the
// defaults. Every tiling produces bit-identical output because tiles only
// regroup the loop nest — the per-element accumulation order along the
// shared dimension is unchanged.
func MatMulIntoTiles(dst, a, b *Tensor, tileI, tileK, tileJ int) error {
	if a.Rank() != 2 || b.Rank() != 2 || a.shape[1] != b.shape[0] {
		return fmt.Errorf("%w: matmul %v x %v", ErrShape, a.shape, b.shape)
	}
	m, k, n := a.shape[0], a.shape[1], b.shape[1]
	if dst.Rank() != 2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("%w: matmul dst %v, want [%d %d]", ErrShape, dst.shape, m, n)
	}
	if &dst.Data[0] == &a.Data[0] || &dst.Data[0] == &b.Data[0] {
		return fmt.Errorf("tensor: matmul dst aliases an operand")
	}
	clear(dst.Data)
	matMulBlocked(dst.Data, a.Data, b.Data, 0, m, k, n, tileI, tileK, tileJ)
	return nil
}

// MatMulParallel is MatMulInto with the destination rows sharded across
// workers (values below 1 select one worker per CPU). Each row is owned
// by exactly one worker and rows are independent, so the output is
// bit-identical for every worker count — the same index-ordered
// discipline the experiment pool uses.
func MatMulParallel(dst, a, b *Tensor, workers int) error {
	if a.Rank() != 2 || b.Rank() != 2 || a.shape[1] != b.shape[0] {
		return fmt.Errorf("%w: matmul %v x %v", ErrShape, a.shape, b.shape)
	}
	m, k, n := a.shape[0], a.shape[1], b.shape[1]
	if dst.Rank() != 2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("%w: matmul dst %v, want [%d %d]", ErrShape, dst.shape, m, n)
	}
	if &dst.Data[0] == &a.Data[0] || &dst.Data[0] == &b.Data[0] {
		return fmt.Errorf("tensor: matmul dst aliases an operand")
	}
	workers = parallel.Workers(workers)
	if workers > m {
		workers = m
	}
	if workers <= 1 {
		clear(dst.Data)
		matMulBlocked(dst.Data, a.Data, b.Data, 0, m, k, n, defaultTileI, defaultTileK, defaultTileJ)
		return nil
	}
	clear(dst.Data)
	chunk := (m + workers - 1) / workers
	return parallel.ForEach(context.Background(), workers, workers,
		func(_ context.Context, w int) error {
			lo := w * chunk
			hi := min(lo+chunk, m)
			if lo >= hi {
				return nil
			}
			matMulBlocked(dst.Data, a.Data, b.Data, lo, hi, k, n, defaultTileI, defaultTileK, defaultTileJ)
			return nil
		})
}

// Im2ColInto is Im2ColRect writing into a caller-supplied scratch buffer
// of at least outH*outW*kh*kw*c elements. Out-of-bounds taps are written
// as explicit zeros, so a dirty reused buffer produces the same bytes as
// a fresh allocation. Returns the output spatial dimensions.
func Im2ColInto(dst []float32, x *Tensor, kh, kw, stride, padH, padW int) (int, int, error) {
	if x.Rank() != 3 {
		return 0, 0, fmt.Errorf("%w: im2col wants [H W C], got %v", ErrShape, x.shape)
	}
	if stride <= 0 || kh <= 0 || kw <= 0 || padH < 0 || padW < 0 {
		return 0, 0, fmt.Errorf("tensor: bad im2col geometry kh=%d kw=%d stride=%d padH=%d padW=%d", kh, kw, stride, padH, padW)
	}
	h, w, c := x.shape[0], x.shape[1], x.shape[2]
	outH := ConvOutDim(h, kh, stride, padH)
	outW := ConvOutDim(w, kw, stride, padW)
	if outH <= 0 || outW <= 0 {
		return 0, 0, fmt.Errorf("tensor: im2col output collapses: in %v kernel %dx%d stride %d pad %d,%d", x.shape, kh, kw, stride, padH, padW)
	}
	rowLen := kh * kw * c
	if len(dst) < outH*outW*rowLen {
		return 0, 0, fmt.Errorf("tensor: im2col dst has %d elements, need %d", len(dst), outH*outW*rowLen)
	}
	row := 0
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			drow := dst[row*rowLen : (row+1)*rowLen]
			di := 0
			for ky := 0; ky < kh; ky++ {
				iy := oy*stride + ky - padH
				if iy < 0 || iy >= h {
					clear(drow[di : di+kw*c])
					di += kw * c
					continue
				}
				for kx := 0; kx < kw; kx++ {
					ix := ox*stride + kx - padW
					if ix < 0 || ix >= w {
						clear(drow[di : di+c])
						di += c
						continue
					}
					src := x.Data[(iy*w+ix)*c : (iy*w+ix)*c+c]
					copy(drow[di:di+c], src)
					di += c
				}
			}
			row++
		}
	}
	return outH, outW, nil
}
