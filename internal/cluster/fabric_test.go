package cluster

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/faults"
)

// trace records deliveries for byte-for-byte schedule comparison.
type trace struct{ b strings.Builder }

func (tr *trace) got(now Tick, id int, msg Message) {
	fmt.Fprintf(&tr.b, "%d:%d<-%d:%s#%d\n", now, id, msg.From, msg.Method, msg.ID)
}

// echoEndpoint registers an endpoint whose single handler records the
// delivery and echoes the payload.
func echoEndpoint(f *Fabric, id int, tr *trace) *Endpoint {
	ep := NewEndpoint(f, id)
	ep.Handle("Echo", func(now Tick, from int, arg any) (any, Tick, error) {
		if tr != nil {
			tr.got(now, id, Message{From: from, Method: "Echo"})
		}
		return arg, 0, nil
	})
	return ep
}

func TestFabricDeliversInOrder(t *testing.T) {
	f := NewFabric(faults.Model{}, 10)
	var tr trace
	a := echoEndpoint(f, 0, &tr)
	echoEndpoint(f, 1, &tr)

	var replies []string
	for i := 0; i < 3; i++ {
		v := i
		a.Go(1, "Echo", v, CallOpts{}, func(now Tick, reply any, err error) {
			if err != nil {
				t.Errorf("call %d: %v", v, err)
				return
			}
			replies = append(replies, fmt.Sprintf("%d@%d", reply.(int), now))
		})
	}
	f.RunUntil(1000)
	want := "0@20 1@20 2@20"
	if got := strings.Join(replies, " "); got != want {
		t.Fatalf("replies = %q, want %q", got, want)
	}
	st := f.Stats()
	if st.Sent != 6 || st.Delivered != 6 || st.DroppedLink+st.Unreachable != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFabricCrashAndPartition(t *testing.T) {
	f := NewFabric(faults.Model{}, 10)
	a := echoEndpoint(f, 0, nil)
	echoEndpoint(f, 1, nil)
	echoEndpoint(f, 2, nil)

	call := func(dst int) error {
		var got error
		called := false
		a.Go(dst, "Echo", 1, CallOpts{Timeout: 100}, func(_ Tick, _ any, err error) {
			called = true
			got = err
		})
		f.RunUntil(f.Now() + 1000)
		if !called {
			t.Fatalf("call to %d never completed", dst)
		}
		return got
	}

	f.Crash(1)
	if err := call(1); err != ErrTimeout {
		t.Fatalf("crashed dst: err = %v, want ErrTimeout", err)
	}
	f.Restart(1)
	if err := call(1); err != nil {
		t.Fatalf("restarted dst: err = %v", err)
	}

	f.Partition([]int{0}, []int{1, 2})
	if err := call(1); err != ErrTimeout {
		t.Fatalf("partitioned dst: err = %v, want ErrTimeout", err)
	}
	if err := call(0); err != nil { // self-call stays in-group
		t.Fatalf("same-group dst: err = %v", err)
	}
	f.Heal()
	if err := call(2); err != nil {
		t.Fatalf("healed dst: err = %v", err)
	}

	f.SetLink(0, 2, false)
	if err := call(2); err != ErrTimeout {
		t.Fatalf("downed link: err = %v, want ErrTimeout", err)
	}
	f.SetLink(0, 2, true)
	if err := call(2); err != nil {
		t.Fatalf("restored link: err = %v", err)
	}
}

func TestFabricPartitionLosesInFlight(t *testing.T) {
	f := NewFabric(faults.Model{}, 50)
	a := echoEndpoint(f, 0, nil)
	echoEndpoint(f, 1, nil)

	var timedOut bool
	a.Go(1, "Echo", 1, CallOpts{Timeout: 300}, func(_ Tick, _ any, err error) {
		timedOut = err == ErrTimeout
	})
	// Partition lands while the request is in flight: reachability is
	// checked at delivery time, so the message is lost.
	f.After(10, func(Tick) { f.Partition([]int{0}, []int{1}) })
	f.RunUntil(5000)
	if !timedOut {
		t.Fatal("in-flight message crossed a partition boundary")
	}
	if f.Stats().Unreachable == 0 {
		t.Fatalf("stats = %+v, want Unreachable > 0", f.Stats())
	}
}

func TestRPCRetryBackoffDeterministic(t *testing.T) {
	// A dead destination forces every attempt to time out; the attempt
	// send times pin the exponential backoff schedule.
	schedule := func() string {
		f := NewFabric(faults.Model{Seed: 42}, 10)
		a := NewEndpoint(f, 0)
		NewEndpoint(f, 1)
		f.Crash(1)
		var sends []string
		var done bool
		a.Go(1, "Echo", 1, CallOpts{Timeout: 100, Retries: 3, Backoff: 50}, func(now Tick, _ any, err error) {
			done = true
			if err != ErrTimeout {
				t.Errorf("err = %v, want ErrTimeout", err)
			}
			sends = append(sends, fmt.Sprintf("done@%d", now))
		})
		f.RunUntil(100000)
		if !done {
			t.Fatal("call never completed")
		}
		sends = append(sends, fmt.Sprintf("sent=%d", f.Stats().Sent))
		return strings.Join(sends, " ")
	}
	first := schedule()
	if second := schedule(); second != first {
		t.Fatalf("retry schedule not deterministic:\n%s\n%s", first, second)
	}
	if !strings.Contains(first, "sent=4") {
		t.Fatalf("schedule %q: want 4 attempts (1 + 3 retries)", first)
	}
}

func TestFabricFaultScheduleReproducible(t *testing.T) {
	run := func(seed int64) string {
		fm := faults.Model{
			Seed:        seed,
			MsgDropRate: 0.2, MsgDelayRate: 0.3, MsgDupRate: 0.15, MsgReorderRate: 0.1,
		}
		f := NewFabric(fm, 10)
		var tr trace
		eps := make([]*Endpoint, 4)
		for i := range eps {
			eps[i] = echoEndpoint(f, i, &tr)
		}
		for i := 0; i < 200; i++ {
			src, dst := i%4, (i+1+i/4)%4
			eps[src].Go(dst, "Echo", i, CallOpts{Timeout: 500}, func(Tick, any, error) {})
		}
		f.RunUntil(1 << 20)
		fmt.Fprintf(&tr.b, "stats=%+v\n", f.Stats())
		return tr.b.String()
	}
	a, b := run(7), run(7)
	if a != b {
		t.Fatal("same seed produced different fabric schedules")
	}
	if c := run(8); c == a {
		t.Fatal("different seeds produced identical fabric schedules")
	}
	if !strings.Contains(a, "Dropped") {
		t.Fatalf("stats missing from trace: %q", a[:min(len(a), 200)])
	}
}

func TestFabricZeroRatesFaultFree(t *testing.T) {
	f := NewFabric(faults.Model{Seed: 99}, 10)
	a := echoEndpoint(f, 0, nil)
	echoEndpoint(f, 1, nil)
	ok := 0
	for i := 0; i < 50; i++ {
		a.Go(1, "Echo", i, CallOpts{}, func(_ Tick, _ any, err error) {
			if err == nil {
				ok++
			}
		})
	}
	f.RunUntil(1 << 20)
	st := f.Stats()
	if ok != 50 || st.DroppedLink+st.Delayed+st.Duplicated+st.Reordered != 0 {
		t.Fatalf("ok=%d stats=%+v, want pristine delivery", ok, st)
	}
}

// FuzzFabricDelivery drives random traffic through random fault rates
// and checks the fabric's invariants: replay determinism, conservation
// of transmissions, and no completion delivered twice.
func FuzzFabricDelivery(f *testing.F) {
	f.Add(int64(1), uint8(20), uint8(30), uint8(10), uint8(10), uint8(50))
	f.Add(int64(42), uint8(0), uint8(0), uint8(0), uint8(0), uint8(10))
	f.Add(int64(-7), uint8(100), uint8(100), uint8(100), uint8(100), uint8(30))
	f.Fuzz(func(t *testing.T, seed int64, drop, delay, dup, reorder, n uint8) {
		fm := faults.Model{
			Seed:           seed,
			MsgDropRate:    float64(drop%101) / 100,
			MsgDelayRate:   float64(delay%101) / 100,
			MsgDupRate:     float64(dup%101) / 100,
			MsgReorderRate: float64(reorder%101) / 100,
		}
		if err := fm.Validate(); err != nil {
			t.Fatalf("rates out of range: %v", err)
		}
		run := func() (string, FabricStats) {
			fb := NewFabric(fm, 10)
			var tr trace
			eps := make([]*Endpoint, 3)
			for i := range eps {
				eps[i] = echoEndpoint(fb, i, &tr)
			}
			completions := map[int]int{}
			for i := 0; i < int(n%64)+1; i++ {
				id := i
				eps[i%3].Go((i+1)%3, "Echo", i, CallOpts{Timeout: 200, Retries: 2, Backoff: 20},
					func(Tick, any, error) { completions[id]++ })
			}
			fb.RunUntil(1 << 22)
			for id, c := range completions {
				if c != 1 {
					t.Fatalf("call %d completed %d times", id, c)
				}
			}
			return tr.b.String(), fb.Stats()
		}
		t1, s1 := run()
		t2, s2 := run()
		if t1 != t2 || s1 != s2 {
			t.Fatal("same (seed, rates, traffic) diverged on replay")
		}
		if s1.Delivered > s1.Sent+s1.Duplicated {
			t.Fatalf("delivered %d > sent %d + duplicated %d", s1.Delivered, s1.Sent, s1.Duplicated)
		}
		if fm.MsgDropRate == 0 && s1.DroppedLink != 0 {
			t.Fatalf("drop rate 0 but %d drops", s1.DroppedLink)
		}
	})
}
