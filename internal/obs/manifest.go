package obs

import (
	"encoding/json"

	"repro/internal/atomicio"
)

// Manifest is the self-describing record written alongside a run's
// result files: everything needed to reproduce the numbers (config,
// seeds, codec plan, kernel dispatch, NoC core) plus the deterministic
// headline results. It deliberately excludes anything that varies
// between identical runs — worker counts, wall-clock durations,
// hostnames — so manifests from the same configuration are
// byte-identical at any parallelism.
type Manifest struct {
	Tool       string `json:"tool"`
	Experiment string `json:"experiment,omitempty"`
	Model      string `json:"model,omitempty"`

	Seed      int64   `json:"seed,omitempty"`
	FaultSeed int64   `json:"fault_seed,omitempty"`
	Delta     float64 `json:"delta,omitempty"`

	// Execution environment choices that change the numbers or the
	// speed at which they are produced.
	NoCCore          string   `json:"noc_core"`
	MatMulKernel     string   `json:"matmul_kernel"`
	AvailableKernels []string `json:"matmul_kernels_available,omitempty"`
	VecmmOverride    string   `json:"vecmm_override,omitempty"`

	// Accelerator geometry.
	Mesh     [2]int `json:"mesh,omitempty"`
	MemNodes []int  `json:"mem_nodes,omitempty"`
	MACLanes int    `json:"mac_lanes,omitempty"`

	// Per-layer codec assignment (codec plan), when compression is on.
	CodecPlan []CodecAssignment `json:"codec_plan,omitempty"`

	// Headline results and per-layer tier timings, all in deterministic
	// simulated cycles / picojoules — never wall time.
	Results     *RunResults  `json:"results,omitempty"`
	TierTimings []TierTiming `json:"tier_timings,omitempty"`

	TraceEvents int `json:"trace_events,omitempty"`
}

// CodecAssignment records one layer's codec choice from the planner.
type CodecAssignment struct {
	Layer string `json:"layer"`
	Codec string `json:"codec"`
}

// RunResults holds the headline deterministic outputs of a run.
type RunResults struct {
	TotalCycles   uint64  `json:"total_cycles"`
	EnergyPJ      float64 `json:"energy_pj,omitempty"`
	MemoryCycles  uint64  `json:"memory_cycles,omitempty"`
	CommCycles    uint64  `json:"communication_cycles,omitempty"`
	ComputeCycles uint64  `json:"computation_cycles,omitempty"`
	FlitsInjected uint64  `json:"flits_injected,omitempty"`
	DRAMReads     uint64  `json:"dram_reads,omitempty"`
	DRAMWrites    uint64  `json:"dram_writes,omitempty"`
	Accuracy      float64 `json:"accuracy,omitempty"`
}

// TierTiming is one layer's simulated-cycle breakdown: the same tiers
// as accel.LatencyBreakdown, keyed by layer so traces and manifests
// cross-reference.
type TierTiming struct {
	Layer         string  `json:"layer"`
	TotalCycles   uint64  `json:"total_cycles"`
	MemoryCycles  uint64  `json:"memory_cycles"`
	CommCycles    uint64  `json:"communication_cycles"`
	ComputeCycles uint64  `json:"computation_cycles"`
	EnergyPJ      float64 `json:"energy_pj,omitempty"`
}

// Encode renders the manifest as stable, human-diffable JSON
// (two-space indent, trailing newline). encoding/json emits struct
// fields in declaration order, so output is byte-stable.
func (m *Manifest) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the manifest to path atomically: a manifest that
// vouches for a run's reproducibility must never itself be a torn
// write.
func (m *Manifest) WriteFile(path string) error {
	b, err := m.Encode()
	if err != nil {
		return err
	}
	return atomicio.WriteFile(path, b, 0o644)
}
