package accel

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/noc"
)

// lenetSpecs builds LeNet-5 layer specs, optionally with the selected
// layer segment-compressed at the given tolerance percent.
func overlapSpecs(t *testing.T, delta float64) []LayerSpec {
	t.Helper()
	m, err := models.LeNet5(2020) // nocsim's default seed: the goldens' weights
	if err != nil {
		t.Fatal(err)
	}
	var compressed map[string]*core.Compressed
	if delta >= 0 {
		w, _ := m.SelectedWeights()
		c, err := core.CompressPct(w, delta)
		if err != nil {
			t.Fatal(err)
		}
		compressed = map[string]*core.Compressed{m.SelectedLayer: c}
	}
	specs, err := SpecsFromModel(m, compressed, core.DefaultStorage)
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

func simWith(t *testing.T, mutate func(*Config)) *Simulator {
	t.Helper()
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestOverlapOffPinnedToPrePRGoldens is the differential suite: with
// Overlap off, the simulator must reproduce the pre-streaming results
// byte for byte — total cycles, per-layer cycles, latency breakdown and
// energy — on both NoC cores and at workers 1 and 4. The literals are
// the committed goldens of the serial simulator.
func TestOverlapOffPinnedToPrePRGoldens(t *testing.T) {
	wantLayers := map[string]uint64{
		"conv_1": 4537, "pool_1": 3977, "conv_2": 8775, "pool_2": 1551,
		"dense_1": 26738, "dense_2": 6169, "dense_3": 996,
	}
	const wantTotal = 52743
	specs := overlapSpecs(t, -1)
	specs15 := overlapSpecs(t, 15)
	const wantTotal15 = 37367

	var ref *Result
	for _, nocCore := range []noc.Core{noc.CoreEvent, noc.CoreStep} {
		for _, workers := range []int{1, 4} {
			sim := simWith(t, func(c *Config) { c.Mesh.Core = nocCore })
			sim.SetWorkers(workers)
			res, err := sim.SimulateModel("LeNet-5", specs)
			if err != nil {
				t.Fatal(err)
			}
			if res.Cycles != wantTotal {
				t.Errorf("core=%v workers=%d: total cycles %d, golden %d", nocCore, workers, res.Cycles, wantTotal)
			}
			for _, lr := range res.Layers {
				if lr.Cycles != wantLayers[lr.Name] {
					t.Errorf("core=%v workers=%d: layer %s cycles %d, golden %d", nocCore, workers, lr.Name, lr.Cycles, wantLayers[lr.Name])
				}
				if lr.Latency.DecodeStall != 0 {
					t.Errorf("core=%v workers=%d: layer %s has %d decode-stall cycles in serial mode", nocCore, workers, lr.Name, lr.Latency.DecodeStall)
				}
			}
			if ref == nil {
				ref = res
			} else if !reflect.DeepEqual(ref, res) {
				t.Errorf("core=%v workers=%d: result differs from reference run", nocCore, workers)
			}
			res15, err := sim.SimulateModel("LeNet-5", specs15)
			if err != nil {
				t.Fatal(err)
			}
			if res15.Cycles != wantTotal15 {
				t.Errorf("core=%v workers=%d: delta-15 cycles %d, golden %d", nocCore, workers, res15.Cycles, wantTotal15)
			}
		}
	}
}

// TestOverlapLatencyNotWorse is the headline property: the streaming
// pipeline never loses to the serial ship-then-compute schedule at
// equal compression ratio, and wins strictly on the compressed model.
func TestOverlapLatencyNotWorse(t *testing.T) {
	serial := simWith(t, nil)
	overlapped := simWith(t, func(c *Config) { c.Overlap = true })
	for _, delta := range []float64{-1, 5, 15} {
		specs := overlapSpecs(t, delta)
		rs, err := serial.SimulateModel("LeNet-5", specs)
		if err != nil {
			t.Fatal(err)
		}
		ro, err := overlapped.SimulateModel("LeNet-5", specs)
		if err != nil {
			t.Fatal(err)
		}
		if ro.Cycles > rs.Cycles {
			t.Errorf("delta=%v: overlapped %d cycles > serial %d", delta, ro.Cycles, rs.Cycles)
		}
		if delta >= 0 && ro.Cycles >= rs.Cycles {
			t.Errorf("delta=%v: overlapped %d cycles, want strictly below serial %d", delta, ro.Cycles, rs.Cycles)
		}
	}
}

// TestOverlapDeterministic pins the streaming mode to the same
// determinism contract as serial mode: byte-identical results on both
// NoC cores at workers 1 and 4.
func TestOverlapDeterministic(t *testing.T) {
	specs := overlapSpecs(t, 15)
	var ref *Result
	for _, nocCore := range []noc.Core{noc.CoreEvent, noc.CoreStep} {
		for _, workers := range []int{1, 4} {
			sim := simWith(t, func(c *Config) {
				c.Overlap = true
				c.Mesh.Core = nocCore
			})
			sim.SetWorkers(workers)
			res, err := sim.SimulateModel("LeNet-5", specs)
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = res
			} else if !reflect.DeepEqual(ref, res) {
				t.Errorf("core=%v workers=%d: overlap result differs from reference", nocCore, workers)
			}
		}
	}
}

// TestOverlapZeroStallWhenDecodeKeepsUp: when decode bandwidth meets
// compute demand — an uncompressed model, or a codec whose decode-rate
// model outpaces both the NoC delivery window and the MAC time — no
// decode-stall cycles appear.
func TestOverlapZeroStallWhenDecodeKeepsUp(t *testing.T) {
	overlapped := simWith(t, func(c *Config) { c.Overlap = true })
	res, err := overlapped.SimulateModel("LeNet-5", overlapSpecs(t, -1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.DecodeStall != 0 {
		t.Errorf("uncompressed model: %d decode-stall cycles, want 0", res.Latency.DecodeStall)
	}
}

// TestOverlapStallsWhenDecodeStarves: a serial entropy decoder on a
// compute-light layer exposes decode-stall cycles — the memory-wall
// failure mode the breakdown is meant to surface.
func TestOverlapStallsWhenDecodeStarves(t *testing.T) {
	// A highly compressed stream arrives over the NoC quickly, but the
	// bit-serial Huffman back end regenerates only 32 weights/cycle
	// against a 64 MAC/cycle datapath — decode is 2x slower than both
	// delivery and compute, so the MACs must stall.
	spec := LayerSpec{
		Name:        "fc_starved",
		Kind:        "FC",
		MACs:        1 << 22,
		WeightBytes: 1 << 14, // 16 KiB stream regenerating 4M weights
		WeightCount: 1 << 22,
		InputBytes:  1 << 10,
		OutputBytes: 1 << 10,
		Compressed:  true,
		Codec:       "huffman",
	}
	overlapped := simWith(t, func(c *Config) { c.Overlap = true })
	lr, err := overlapped.SimulateLayer(spec)
	if err != nil {
		t.Fatal(err)
	}
	if lr.Latency.DecodeStall == 0 {
		t.Errorf("entropy-decode-bound layer shows no decode-stall cycles: %+v", lr.Latency)
	}
}

// TestRoundsOverride: a finer tiling is honored, a coarser one is
// ignored (a tile can never exceed scratchpad capacity).
func TestRoundsOverride(t *testing.T) {
	spec := LayerSpec{
		Name: "fc", Kind: "FC", MACs: 1 << 20,
		WeightBytes: 1 << 20, InputBytes: 1 << 12, OutputBytes: 1 << 12,
	}
	sim := simWith(t, nil)
	base, err := sim.SimulateLayer(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.RoundsOverride = base.Rounds * 2
	fine, err := sim.SimulateLayer(spec)
	if err != nil {
		t.Fatal(err)
	}
	if fine.Rounds != base.Rounds*2 {
		t.Errorf("rounds override: got %d rounds, want %d", fine.Rounds, base.Rounds*2)
	}
	spec.RoundsOverride = 1 // coarser than capacity allows
	coarse, err := sim.SimulateLayer(spec)
	if err != nil {
		t.Fatal(err)
	}
	if coarse.Rounds != base.Rounds {
		t.Errorf("coarse override not ignored: got %d rounds, want %d", coarse.Rounds, base.Rounds)
	}
}

// TestDRAMWeightScalingExactCeiling is the regression for the
// memory-side decompression ablation: the DRAM-side weight bytes per
// round must be the exact ceiling of wRound*WeightBytesDRAM/WeightBytes,
// not a float truncation that loses the partial word.
func TestDRAMWeightScalingExactCeiling(t *testing.T) {
	// WeightBytesDRAM/WeightBytes = 1/3 and wRound = WeightBytes makes
	// the scaled bytes 1000000/3 = 333333.33..: the float path truncated
	// to 333333 bytes = 41666 words (41666.625 truncated through the
	// byte count); exact ceiling arithmetic gives 333334 bytes = 41667
	// words.
	spec := LayerSpec{
		Name: "ablation", Kind: "FC", MACs: 1 << 10,
		WeightBytes:     3_000_000,
		WeightBytesDRAM: 1_000_000,
		InputBytes:      0,
		OutputBytes:     4,
	}
	sim := simWith(t, nil)
	lr, err := sim.SimulateLayer(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Weights are striped over 12 PEs (FC flow): wBytesPE = 250000,
	// rounds = ceil(250004/7372) = 34, wRound = ceil(250000/34) = 7353.
	// Exact DRAM bytes per fetch = ceil(7353/3) = 2451 -> 307 words
	// (2451/8 = 306.375 rounds up); the old float path computed
	// uint64(7353*0.33333...) = 2450 bytes -> 307 words too at this
	// ratio, so pin a sharper witness below via total read words.
	//
	// Every fetch reads ceil(iRound+wDRAM / 8) words; with InputBytes=0
	// the per-word difference accumulates over 12 PEs x 34 rounds.
	want := uint64(12 * 34 * ((2451 + 7) / 8))
	if lr.Traffic.DRAMReadWords != want {
		t.Errorf("ablation DRAM read words = %d, want %d (exact ceiling)", lr.Traffic.DRAMReadWords, want)
	}
}
