package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("pkts")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if m.Counter("pkts") != c {
		t.Fatal("second lookup returned a different counter")
	}
	g := m.Gauge("occ")
	g.Set(7)
	g.Set(3)
	g.Max(5)
	if g.Value() != 3 || g.MaxValue() != 7 {
		t.Fatalf("gauge = (%d, max %d), want (3, max 7)", g.Value(), g.MaxValue())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]uint64{10, 100, 1000})
	for v := uint64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if h.Count() != 100 || h.Sum() != 5050 {
		t.Fatalf("count/sum = %d/%d, want 100/5050", h.Count(), h.Sum())
	}
	if got := h.Quantile(0.50); got != 100 {
		t.Fatalf("p50 = %d, want 100 (bucket upper bound)", got)
	}
	if got := h.Quantile(0.05); got != 10 {
		t.Fatalf("p05 = %d, want 10", got)
	}
	h.Observe(5000) // overflow bucket -> exact max
	if got := h.Quantile(1.0); got != 5000 {
		t.Fatalf("p100 = %d, want exact max 5000", got)
	}
	var empty Histogram
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty histogram must report 0")
	}
}

func TestPow2Buckets(t *testing.T) {
	b := Pow2Buckets(4)
	want := []uint64{1, 2, 4, 8, 16}
	if len(b) != len(want) {
		t.Fatalf("len = %d, want %d", len(b), len(want))
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("b[%d] = %d, want %d", i, b[i], want[i])
		}
	}
}

// TestNilSafety drives every handle through a nil receiver: nothing may
// panic and nothing may allocate.
func TestNilSafety(t *testing.T) {
	var o *Observer
	var m *Metrics
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Trace
	var b *Buffer

	allocs := testing.AllocsPerRun(100, func() {
		_ = o.M()
		_ = o.T()
		_ = o.LayerBuffer("x", 0, "l")
		_ = m.Counter("a")
		_ = m.Gauge("a")
		_ = m.Histogram("a", nil)
		c.Add(1)
		c.Inc()
		_ = c.Value()
		g.Set(1)
		g.Max(2)
		h.Observe(3)
		_ = h.Count()
		_ = h.Quantile(0.5)
		_ = tr.Buffer("x", 0, "l")
		_ = tr.EventCount()
		b.Reset()
		_ = b.Len()
	})
	if allocs != 0 {
		t.Fatalf("nil-receiver path allocated %.1f allocs/op, want 0", allocs)
	}

	// Span/Instant on a nil buffer: call sites must guard to avoid the
	// variadic slice, but the bare call itself must still be a no-op.
	b.Span("s", "c", 0, 1, 2)
	b.Instant("i", "c", 0, 1)
	if err := m.WriteText(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tr.WriteChromeJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != `{"traceEvents":[]}` {
		t.Fatalf("nil trace export = %q", sb.String())
	}
}

// TestTraceDeterminism creates the same buffers from concurrent
// goroutines in scrambled order and checks the export is byte-identical
// to a sequential construction.
func TestTraceDeterminism(t *testing.T) {
	build := func(parallel bool) string {
		tr := NewTrace()
		fill := func(layer int) {
			b := tr.Buffer("lenet", layer, "conv")
			// Emit out of cycle order: export must re-sort.
			b.Span("mac", "compute", 2, uint64(100+layer), 50, KV{"ops", 10})
			b.Span("dram_read", "memory", 0, uint64(layer), 30)
			b.Instant("eject", "noc", 3, uint64(200+layer))
		}
		if parallel {
			var wg sync.WaitGroup
			for _, layer := range []int{3, 1, 0, 2} {
				wg.Add(1)
				go func(l int) { defer wg.Done(); fill(l) }(layer)
			}
			wg.Wait()
		} else {
			for layer := 0; layer < 4; layer++ {
				fill(layer)
			}
		}
		var sb strings.Builder
		if err := tr.WriteChromeJSON(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	seq := build(false)
	for i := 0; i < 8; i++ {
		if got := build(true); got != seq {
			t.Fatalf("parallel construction changed export\nseq: %s\npar: %s", seq, got)
		}
	}
	if !json.Valid([]byte(seq)) {
		t.Fatalf("export is not valid JSON: %s", seq)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(seq), &parsed); err != nil {
		t.Fatal(err)
	}
	// 4 buffers x (1 metadata + 3 events).
	if len(parsed.TraceEvents) != 16 {
		t.Fatalf("traceEvents = %d, want 16", len(parsed.TraceEvents))
	}
}

func TestTraceSortOrder(t *testing.T) {
	tr := NewTrace()
	b := tr.Buffer("m", 0, "l")
	b.Instant("late", "c", 1, 10)
	b.Instant("early", "c", 5, 2)
	b.Instant("same-cycle-hi-node", "c", 7, 2)
	ev := b.sorted()
	want := []string{"early", "same-cycle-hi-node", "late"}
	for i, name := range want {
		if ev[i].Name != name {
			t.Fatalf("sorted[%d] = %s, want %s", i, ev[i].Name, name)
		}
	}
}

func TestTraceBufferLimit(t *testing.T) {
	tr := NewTrace()
	tr.SetBufferLimit(2)
	b := tr.Buffer("m", 0, "l")
	for i := 0; i < 5; i++ {
		b.Instant("e", "c", 0, uint64(i))
	}
	if b.Len() != 2 || b.Dropped() != 3 {
		t.Fatalf("len/dropped = %d/%d, want 2/3", b.Len(), b.Dropped())
	}
	if tr.DroppedCount() != 3 {
		t.Fatalf("trace dropped = %d, want 3", tr.DroppedCount())
	}
	var sb strings.Builder
	if err := tr.WriteChromeJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"dropped_events":"3"`) {
		t.Fatalf("export missing dropped count: %s", sb.String())
	}
}

func TestTraceCSV(t *testing.T) {
	tr := NewTrace()
	b := tr.Buffer("lenet", 0, "conv1")
	b.Span("mac", "compute", 4, 10, 20, KV{"ops", 7})
	var sb strings.Builder
	if err := tr.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "scope,layer,name,cat,node,cycle,dur,args\nlenet,conv1,mac,compute,4,10,20,ops=7\n"
	if sb.String() != want {
		t.Fatalf("csv = %q, want %q", sb.String(), want)
	}
}

func TestMetricsExport(t *testing.T) {
	m := NewMetrics()
	m.Counter("b_ct").Add(2)
	m.Counter("a_ct").Add(1)
	m.Gauge("g").Set(9)
	h := m.Histogram("lat", Pow2Buckets(4))
	h.Observe(3)
	var txt strings.Builder
	if err := m.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	wantOrder := []string{"counter a_ct 1", "counter b_ct 2", "gauge g 9 max 9", "histogram lat count 1"}
	pos := -1
	for _, frag := range wantOrder {
		p := strings.Index(txt.String(), frag)
		if p < 0 || p < pos {
			t.Fatalf("export out of order or missing %q:\n%s", frag, txt.String())
		}
		pos = p
	}
	var csv strings.Builder
	if err := m.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "kind,name,value,mean,p50,p95,p99,max\n") {
		t.Fatalf("csv header wrong: %s", csv.String())
	}
}

func TestManifestStable(t *testing.T) {
	mk := func() *Manifest {
		return &Manifest{
			Tool:         "nocsim",
			Model:        "lenet",
			NoCCore:      "event",
			MatMulKernel: "sse2",
			Mesh:         [2]int{4, 4},
			MemNodes:     []int{0, 3, 12, 15},
			CodecPlan:    []CodecAssignment{{Layer: "conv1", Codec: "huffman"}},
			Results:      &RunResults{TotalCycles: 123, EnergyPJ: 4.5},
			TierTimings:  []TierTiming{{Layer: "conv1", TotalCycles: 123, MemoryCycles: 50}},
		}
	}
	a, err := mk().Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("manifest encoding is not byte-stable")
	}
	if !json.Valid(a) {
		t.Fatalf("manifest is not valid JSON: %s", a)
	}
	var round Manifest
	if err := json.Unmarshal(a, &round); err != nil {
		t.Fatal(err)
	}
	if round.Results == nil || round.Results.TotalCycles != 123 || round.NoCCore != "event" {
		t.Fatalf("round-trip mismatch: %+v", round)
	}
	if bytes.Contains(a, []byte("workers")) || bytes.Contains(a, []byte("wall")) {
		t.Fatal("manifest must not record worker counts or wall time")
	}
}

func TestJSONStringEscaping(t *testing.T) {
	tr := NewTrace()
	b := tr.Buffer(`sc"ope`, 0, "l\n2")
	b.Instant(`ev"t\`, "c", 0, 1)
	var sb strings.Builder
	if err := tr.WriteChromeJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(sb.String())) {
		t.Fatalf("escaped export is not valid JSON: %s", sb.String())
	}
}
