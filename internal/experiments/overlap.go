package experiments

import (
	"context"
	"fmt"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/parallel"
	"repro/internal/planner"
)

// OverlapPoint is one configuration of the weight-streaming sweep: a
// model at one compression level, simulated under one of three
// schedules — the serial ship-then-compute baseline, the streaming
// overlap pipeline, and overlap with the planner's tile-shape pass.
type OverlapPoint struct {
	Model string
	// Delta is the segment tolerance percent of the selected layer;
	// -1 marks the uncompressed rows.
	Delta float64
	// CR is the selected layer's stream compression ratio (1 when
	// uncompressed).
	CR   float64
	Mode string // "serial", "overlap", "overlap+tile"
	// Rounds is the total tiling rounds over all layers (the tile pass
	// raises it when finer tiles win).
	Rounds      int
	Cycles      uint64
	DecodeStall uint64  // cycles MACs idled waiting on the decompression unit
	EnergyUJ    float64 // total energy in microjoules
	// Speedup is the serial cycles at the same compression level divided
	// by this point's cycles (1 for the serial rows themselves).
	Speedup float64
	// Pareto marks points on the per-model (CR, cycles, energy) frontier.
	Pareto bool
}

// OverlapSweep quantifies what the streaming pipeline buys at each
// compression ratio: for every model and tolerance level it simulates
// the serial schedule, the overlap schedule, and overlap with the
// tile-shape pass, reporting latency, decode stalls and energy. No
// accuracy evaluation is involved — the sweep is pure simulation, so it
// runs the full grid in seconds.
//
// Like MixedCodec, the default model set is the LeNet-scale group;
// request the giants explicitly via Options.Models. Models fan out over
// the worker pool and results are collected by index, so every -workers
// value yields byte-identical CSVs.
func OverlapSweep(opts Options) ([]OverlapPoint, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	var builders []models.Builder
	var err error
	if len(opts.Models) == 0 {
		builders = models.Small()
	} else if builders, err = opts.selectedBuilders(); err != nil {
		return nil, err
	}
	serialCfg := opts.Accel
	serialCfg.Overlap = false
	overlapCfg := opts.Accel
	overlapCfg.Overlap = true
	serial, err := accel.NewSimulator(serialCfg)
	if err != nil {
		return nil, err
	}
	overlap, err := accel.NewSimulator(overlapCfg)
	if err != nil {
		return nil, err
	}
	for _, s := range []*accel.Simulator{serial, overlap} {
		s.SetWorkers(opts.Workers)
		s.SetObserver(opts.Obs)
	}
	perModel, err := parallel.Map(opts.ctx(), opts.workers(), len(builders),
		func(_ context.Context, bi int) ([]OverlapPoint, error) {
			return checkpointed(opts, "overlap/"+builders[bi].Name, func() ([]OverlapPoint, error) {
				return overlapModel(builders[bi], serial, overlap, serialCfg, opts)
			})
		})
	if err != nil {
		return nil, err
	}
	var points []OverlapPoint
	for _, mp := range perModel {
		points = append(points, mp...)
	}
	return points, nil
}

// overlapDeltas is the compression grid of the sweep: the uncompressed
// model plus the model's tolerance ladder.
func (o Options) overlapDeltas(model string) []float64 {
	if o.Fast {
		return []float64{-1, 5, 15}
	}
	return append([]float64{-1}, DeltaGrid(model)...)
}

// overlapModel runs the three-schedule sweep for one model.
func overlapModel(b models.Builder, serial, overlap *accel.Simulator, cfg accel.Config, opts Options) ([]OverlapPoint, error) {
	m, err := b.Build(opts.Seed)
	if err != nil {
		return nil, err
	}
	var points []OverlapPoint
	for _, delta := range opts.overlapDeltas(m.Name) {
		cr := 1.0
		var compressed map[string]*core.Compressed
		if delta >= 0 {
			w, err := m.SelectedWeights()
			if err != nil {
				return nil, err
			}
			c, err := core.CompressPct(w, delta)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s delta %g: %w", m.Name, delta, err)
			}
			compressed = map[string]*core.Compressed{m.SelectedLayer: c}
			cr = c.CompressionRatio(opts.Storage)
		}
		specs, err := accel.SpecsFromModel(m, compressed, opts.Storage)
		if err != nil {
			return nil, err
		}
		tiled, _, err := planner.PlanTiles(cfg, specs)
		if err != nil {
			return nil, err
		}
		rs, err := serial.SimulateModel(m.Name, specs)
		if err != nil {
			return nil, err
		}
		ro, err := overlap.SimulateModel(m.Name, specs)
		if err != nil {
			return nil, err
		}
		rt, err := overlap.SimulateModel(m.Name, tiled)
		if err != nil {
			return nil, err
		}
		for _, pt := range []struct {
			mode string
			res  *accel.Result
		}{{"serial", rs}, {"overlap", ro}, {"overlap+tile", rt}} {
			rounds := 0
			for _, lr := range pt.res.Layers {
				rounds += lr.Rounds
			}
			points = append(points, OverlapPoint{
				Model:       m.Name,
				Delta:       delta,
				CR:          cr,
				Mode:        pt.mode,
				Rounds:      rounds,
				Cycles:      pt.res.Cycles,
				DecodeStall: pt.res.Latency.DecodeStall,
				EnergyUJ:    pt.res.Energy.Total() / 1e6,
				Speedup:     float64(rs.Cycles) / float64(pt.res.Cycles),
			})
		}
	}
	markOverlapPareto(points)
	return points, nil
}

// markOverlapPareto flags the points of each model no other point
// dominates on (CR high, cycles low, energy low).
func markOverlapPareto(points []OverlapPoint) {
	dominates := func(q, p OverlapPoint) bool {
		if q.Model != p.Model {
			return false
		}
		if q.CR < p.CR || q.Cycles > p.Cycles || q.EnergyUJ > p.EnergyUJ {
			return false
		}
		return q.CR > p.CR || q.Cycles < p.Cycles || q.EnergyUJ < p.EnergyUJ
	}
	for i := range points {
		points[i].Pareto = true
		for j := range points {
			if i != j && dominates(points[j], points[i]) {
				points[i].Pareto = false
				break
			}
		}
	}
}
