package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := make([]float64, 500)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	c, err := CompressPct(w, 12)
	if err != nil {
		t.Fatal(err)
	}
	data := c.Marshal()
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != c.N || got.Delta != c.Delta || len(got.Segments) != len(c.Segments) {
		t.Fatalf("header mismatch: %+v vs %+v", got, c)
	}
	for i := range got.Segments {
		if got.Segments[i] != c.Segments[i] {
			t.Fatalf("segment %d mismatch: %+v vs %+v", i, got.Segments[i], c.Segments[i])
		}
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(raw []float64, dRaw uint8) bool {
		w := sanitize(raw)
		if len(w) == 0 {
			return true
		}
		c, err := CompressPct(w, float64(dRaw%25))
		if err != nil {
			return false
		}
		got, err := Unmarshal(c.Marshal())
		if err != nil {
			return false
		}
		if got.N != c.N || len(got.Segments) != len(c.Segments) {
			return false
		}
		a, errA := c.Decompress()
		b, errB := got.Decompress()
		if errA != nil || errB != nil {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCodecBadMagic(t *testing.T) {
	if _, err := Unmarshal([]byte("XXXX............")); err != ErrBadMagic {
		t.Errorf("bad magic err = %v", err)
	}
}

func TestCodecTruncated(t *testing.T) {
	c, err := Compress([]float64{1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := c.Marshal()
	for cut := 0; cut < len(data); cut++ {
		if _, err := Unmarshal(data[:cut]); err == nil {
			t.Errorf("truncation at %d bytes accepted", cut)
		}
	}
}

func TestCodecBadVersion(t *testing.T) {
	c, _ := Compress([]float64{1, 2}, 0)
	data := c.Marshal()
	data[4] = 0xFF // corrupt version low byte
	if _, err := Unmarshal(data); err == nil {
		t.Error("bad version accepted")
	}
}

func TestCodecCorruptLengths(t *testing.T) {
	c, _ := Compress([]float64{1, 2, 3, 2, 1}, 0)
	data := c.Marshal()
	// Segment length field of the first segment lives at offset
	// 4 (magic) + 18 (header) + 4 (header CRC) + 8 (m, q) = 34. Zero it:
	// the segment checksum no longer matches (and the lengths no longer
	// sum to N).
	data[34], data[35], data[36], data[37] = 0, 0, 0, 0
	if _, err := Unmarshal(data); err == nil {
		t.Error("corrupt segment length accepted")
	}
}

func TestCodecWriteTo(t *testing.T) {
	c, _ := Compress([]float64{4, 3, 2, 1}, 0)
	var buf bytes.Buffer
	n, err := c.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int(n) != buf.Len() {
		t.Errorf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	got, err := ReadCompressed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 4 {
		t.Errorf("N = %d", got.N)
	}
}
