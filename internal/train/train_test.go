package train

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func tinyMLP(t *testing.T) *nn.Graph {
	t.Helper()
	fc1, err := nn.NewDense("fc1", dataset.DigitSize*dataset.DigitSize, 32, rng(1))
	if err != nil {
		t.Fatal(err)
	}
	fc2, err := nn.NewDense("fc2", 32, dataset.NumClasses, rng(2))
	if err != nil {
		t.Fatal(err)
	}
	g, err := nn.Sequential(
		nn.NewFlatten("flatten"),
		fc1,
		nn.NewReLU("relu1"),
		fc2,
		nn.NewSoftmax("softmax"),
	)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewSGDValidation(t *testing.T) {
	if _, err := NewSGD(0, 0); err == nil {
		t.Error("zero lr should error")
	}
	if _, err := NewSGD(0.1, 1); err == nil {
		t.Error("momentum 1 should error")
	}
	if _, err := NewSGD(0.1, -0.1); err == nil {
		t.Error("negative momentum should error")
	}
	if _, err := NewSGD(0.1, 0.9); err != nil {
		t.Error("valid SGD rejected")
	}
}

func TestSGDStepMovesParams(t *testing.T) {
	opt, _ := NewSGD(0.5, 0)
	p := tensor.MustNew(2)
	p.Fill(1)
	g := tensor.MustNew(2)
	g.Fill(2)
	err := opt.Step([]nn.Param{{Name: "w", T: p}}, []nn.Param{{Name: "w", T: g}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Data[0] != 0 { // 1 - 0.5*2
		t.Errorf("param after step = %v, want 0", p.Data[0])
	}
	if err := opt.Step([]nn.Param{{T: p}}, nil, 1); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	opt, _ := NewSGD(1, 0.5)
	p := tensor.MustNew(1)
	g := tensor.MustNew(1)
	g.Fill(1)
	opt.Step([]nn.Param{{T: p}}, []nn.Param{{T: g}}, 1) // v=1, p=-1
	opt.Step([]nn.Param{{T: p}}, []nn.Param{{T: g}}, 1) // v=1.5, p=-2.5
	if p.Data[0] != -2.5 {
		t.Errorf("momentum param = %v, want -2.5", p.Data[0])
	}
}

func TestNewTrainerValidation(t *testing.T) {
	g := tinyMLP(t)
	opt, _ := NewSGD(0.1, 0.9)
	if _, err := NewTrainer(g, opt, 0); err == nil {
		t.Error("zero batch should error")
	}
	if _, err := NewTrainer(g, opt, 16); err != nil {
		t.Errorf("valid trainer rejected: %v", err)
	}
	// Graph not ending in softmax.
	d, _ := nn.NewDense("d", 4, 4, rng(3))
	g2, _ := nn.Sequential(nn.NewFlatten("f"), d)
	if _, err := NewTrainer(g2, opt, 4); err == nil {
		t.Error("non-softmax tail should error")
	}
	// Graph with a non-backprop layer (GlobalAvgPool).
	g3 := nn.NewGraph()
	g3.MustAdd(nn.NewGlobalAvgPool("gap"))
	g3.MustAdd(nn.NewSoftmax("sm"))
	if _, err := NewTrainer(g3, opt, 4); err == nil {
		t.Error("non-backprop layer should error")
	}
	// Non-sequential graph.
	g4 := nn.NewGraph()
	a, _ := nn.NewDense("a", 4, 4, rng(4))
	b, _ := nn.NewDense("b", 4, 4, rng(5))
	g4.MustAdd(a)
	g4.MustAdd(b, nn.InputName)
	g4.MustAdd(nn.NewSoftmax("sm"))
	if _, err := NewTrainer(g4, opt, 4); err == nil {
		t.Error("non-sequential graph should error")
	}
}

func TestTrainingReducesLossAndLearns(t *testing.T) {
	samples, err := dataset.Digits(400, 42)
	if err != nil {
		t.Fatal(err)
	}
	trainSet, testSet, err := dataset.Split(samples, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	g := tinyMLP(t)
	opt, _ := NewSGD(0.05, 0.9)
	tr, err := NewTrainer(g, opt, 16)
	if err != nil {
		t.Fatal(err)
	}
	before, err := Accuracy(g, testSet)
	if err != nil {
		t.Fatal(err)
	}
	losses, err := tr.Fit(trainSet, 5)
	if err != nil {
		t.Fatal(err)
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Errorf("loss did not decrease: %v", losses)
	}
	after, err := Accuracy(g, testSet)
	if err != nil {
		t.Fatal(err)
	}
	if after < 0.8 {
		t.Errorf("test accuracy after training = %v, want >= 0.8 (before: %v)", after, before)
	}
	if after <= before {
		t.Errorf("accuracy did not improve: %v -> %v", before, after)
	}
}

func TestTrainEpochErrors(t *testing.T) {
	g := tinyMLP(t)
	opt, _ := NewSGD(0.1, 0)
	tr, _ := NewTrainer(g, opt, 4)
	if _, err := tr.TrainEpoch(nil); err == nil {
		t.Error("empty sample set should error")
	}
	bad := []dataset.Sample{{Image: tensor.MustNew(dataset.DigitSize, dataset.DigitSize, 1), Label: 99}}
	if _, err := tr.TrainEpoch(bad); err == nil {
		t.Error("out-of-range label should error")
	}
	if _, err := tr.Fit(nil, 0); err == nil {
		t.Error("zero epochs should error")
	}
}

func TestTopKAccuracy(t *testing.T) {
	g := tinyMLP(t)
	samples, _ := dataset.Digits(20, 9)
	top1, err := TopKAccuracy(g, samples, 1)
	if err != nil {
		t.Fatal(err)
	}
	topAll, err := TopKAccuracy(g, samples, dataset.NumClasses)
	if err != nil {
		t.Fatal(err)
	}
	if topAll != 1 {
		t.Errorf("top-%d accuracy = %v, want 1", dataset.NumClasses, topAll)
	}
	if top1 > topAll {
		t.Error("top-1 exceeded top-all")
	}
	if _, err := TopKAccuracy(g, nil, 1); err == nil {
		t.Error("no samples should error")
	}
	if _, err := TopKAccuracy(g, samples, 0); err == nil {
		t.Error("k=0 should error")
	}
}

func TestFidelitySelfIsOne(t *testing.T) {
	g := tinyMLP(t)
	probes := make([]*tensor.Tensor, 8)
	imgs, _ := dataset.SyntheticImages(8, dataset.DigitSize, dataset.DigitSize, 1, 11)
	copy(probes, imgs)
	f, err := NewFidelity(g, probes, 5)
	if err != nil {
		t.Fatal(err)
	}
	score, err := f.Score(g, probes)
	if err != nil {
		t.Fatal(err)
	}
	if score != 1 {
		t.Errorf("self fidelity = %v, want 1", score)
	}
}

func TestFidelityDegradesUnderPerturbation(t *testing.T) {
	g := tinyMLP(t)
	imgs, _ := dataset.SyntheticImages(16, dataset.DigitSize, dataset.DigitSize, 1, 12)
	f, err := NewFidelity(g, imgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Obliterate fc2: predictions become near-arbitrary.
	fc2 := g.Layer("fc2").(*nn.Dense)
	r := rng(13)
	fc2.W.RandNormal(r, 0, 10)
	fc2.B.RandNormal(r, 0, 10)
	score, err := f.Score(g, imgs)
	if err != nil {
		t.Fatal(err)
	}
	if score > 0.9 {
		t.Errorf("fidelity after obliteration = %v, expected degradation", score)
	}
}

func TestFidelityScoreFromMatchesScore(t *testing.T) {
	g := tinyMLP(t)
	imgs, _ := dataset.SyntheticImages(6, dataset.DigitSize, dataset.DigitSize, 1, 14)
	f, err := NewFidelity(g, imgs, 5)
	if err != nil {
		t.Fatal(err)
	}
	acts := make([]map[string]*tensor.Tensor, len(imgs))
	for i, x := range imgs {
		a, err := g.ForwardAll(x)
		if err != nil {
			t.Fatal(err)
		}
		acts[i] = a
	}
	// Perturb fc2 weights and compare full vs cached-prefix scoring.
	fc2 := g.Layer("fc2").(*nn.Dense)
	fc2.W.Data[0] += 1
	full, err := f.Score(g, imgs)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := f.ScoreFrom(g, acts, "fc2")
	if err != nil {
		t.Fatal(err)
	}
	if full != cached {
		t.Errorf("Score %v != ScoreFrom %v", full, cached)
	}
	if _, err := f.ScoreFrom(g, acts[:2], "fc2"); err == nil {
		t.Error("probe count mismatch should error")
	}
}

func TestFidelityValidation(t *testing.T) {
	g := tinyMLP(t)
	if _, err := NewFidelity(g, nil, 5); err == nil {
		t.Error("no probes should error")
	}
	imgs, _ := dataset.SyntheticImages(2, dataset.DigitSize, dataset.DigitSize, 1, 15)
	if _, err := NewFidelity(g, imgs, 0); err == nil {
		t.Error("k=0 should error")
	}
	f, _ := NewFidelity(g, imgs, 5)
	if _, err := f.Score(g, imgs[:1]); err == nil {
		t.Error("probe count mismatch should error")
	}
}

func TestSGDClipNorm(t *testing.T) {
	opt, _ := NewSGD(1, 0)
	if opt.ClipNorm != 5 {
		t.Fatalf("default ClipNorm = %v, want 5", opt.ClipNorm)
	}
	opt.ClipNorm = 1
	p := tensor.MustNew(1)
	g := tensor.MustNew(1)
	g.Fill(100) // norm 100, clipped to 1
	if err := opt.Step([]nn.Param{{T: p}}, []nn.Param{{T: g}}, 1); err != nil {
		t.Fatal(err)
	}
	if p.Data[0] != -1 {
		t.Errorf("clipped step moved param to %v, want -1", p.Data[0])
	}
	// Clipping off: the full gradient applies.
	opt2, _ := NewSGD(1, 0)
	opt2.ClipNorm = 0
	p2 := tensor.MustNew(1)
	opt2.Step([]nn.Param{{T: p2}}, []nn.Param{{T: g}}, 1)
	if p2.Data[0] != -100 {
		t.Errorf("unclipped step = %v, want -100", p2.Data[0])
	}
}

func TestTrainerLRDecay(t *testing.T) {
	g := tinyMLP(t)
	opt, _ := NewSGD(0.1, 0)
	tr, _ := NewTrainer(g, opt, 8)
	tr.LRDecay = 0.5
	samples, _ := dataset.Digits(64, 20)
	if _, err := tr.Fit(samples, 2); err != nil {
		t.Fatal(err)
	}
	if opt.LR != 0.025 {
		t.Errorf("LR after two decayed epochs = %v, want 0.025", opt.LR)
	}
}

func TestFidelityOverlap(t *testing.T) {
	g := tinyMLP(t)
	imgs, _ := dataset.SyntheticImages(8, dataset.DigitSize, dataset.DigitSize, 1, 30)
	f, err := NewFidelity(g, imgs, 5)
	if err != nil {
		t.Fatal(err)
	}
	self, err := f.Overlap(g, imgs)
	if err != nil {
		t.Fatal(err)
	}
	if self != 1 {
		t.Errorf("self overlap = %v, want 1", self)
	}
	// Cached-prefix variant must agree with the direct one after a
	// selected-layer perturbation.
	acts := make([]map[string]*tensor.Tensor, len(imgs))
	for i, x := range imgs {
		a, err := g.ForwardAll(x)
		if err != nil {
			t.Fatal(err)
		}
		acts[i] = a
	}
	fc2 := g.Layer("fc2").(*nn.Dense)
	fc2.W.RandNormal(rng(31), 0, 5)
	direct, err := f.Overlap(g, imgs)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := f.OverlapFrom(g, acts, "fc2")
	if err != nil {
		t.Fatal(err)
	}
	if direct != cached {
		t.Errorf("Overlap %v != OverlapFrom %v", direct, cached)
	}
	if direct >= 1 {
		t.Errorf("obliterated layer kept overlap %v; test vacuous", direct)
	}
	// Overlap is finer than Score: it can sit strictly between 0 and 1.
	if direct != 0 && direct != 1 {
		// expected for most seeds; nothing to assert harder
		t.Logf("overlap resolves fractional agreement: %v", direct)
	}
	if _, err := f.Overlap(g, imgs[:2]); err == nil {
		t.Error("probe mismatch should error")
	}
	if _, err := f.OverlapFrom(g, acts[:2], "fc2"); err == nil {
		t.Error("cache mismatch should error")
	}
}
