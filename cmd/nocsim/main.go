// Command nocsim runs one model inference on the NoC-based accelerator
// simulator and prints the latency and energy breakdowns, optionally with
// the selected layer compressed at a given delta.
//
// Usage:
//
//	nocsim -model LeNet-5                 # original network
//	nocsim -model LeNet-5 -delta 15       # compressed selected layer
//	nocsim -model AlexNet -delta 20 -layers
//
// Layers are simulated concurrently on -workers goroutines; the results
// are collected in layer order, so every worker count prints the same
// numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/nn"
)

func main() {
	var (
		modelName = flag.String("model", "LeNet-5", "model to simulate")
		delta     = flag.Float64("delta", -1, "compress the selected layer at this delta %% (negative = original)")
		seed      = flag.Int64("seed", 2020, "model weight seed")
		weights   = flag.String("weights", "", "load trained weights (.nnwt from cmd/trainer)")
		perLayer  = flag.Bool("layers", false, "print per-layer results")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent layer simulations (output is identical for any value)")
	)
	flag.Parse()

	b, err := models.ByName(*modelName)
	if err != nil {
		fatal(err)
	}
	m, err := b.Build(*seed)
	if err != nil {
		fatal(err)
	}
	if *weights != "" {
		f, err := os.Open(*weights)
		if err != nil {
			fatal(err)
		}
		if err := nn.LoadWeights(f, m.Graph); err != nil {
			f.Close()
			fatal(err)
		}
		f.Close()
	}
	var compressed map[string]*core.Compressed
	if *delta >= 0 {
		w, err := m.SelectedWeights()
		if err != nil {
			fatal(err)
		}
		c, err := core.CompressPct(w, *delta)
		if err != nil {
			fatal(err)
		}
		compressed = map[string]*core.Compressed{m.SelectedLayer: c}
		fmt.Printf("compressed %s at delta %.3g%%: CR %.2f\n",
			m.SelectedLayer, *delta, c.CompressionRatio(core.DefaultStorage))
	}
	specs, err := accel.SpecsFromModel(m, compressed, core.DefaultStorage)
	if err != nil {
		fatal(err)
	}
	sim, err := accel.NewSimulator(accel.DefaultConfig())
	if err != nil {
		fatal(err)
	}
	sim.SetWorkers(*workers)
	res, err := sim.SimulateModel(m.Name, specs)
	if err != nil {
		fatal(err)
	}
	clock := sim.Config().Energy.ClockHz
	fmt.Printf("\n%s inference on 4x4 mesh @ %.0f MHz\n", m.Name, clock/1e6)
	fmt.Printf("latency: %d cycles (%.3f ms)\n", res.Cycles, res.Seconds(clock)*1e3)
	lt := res.Latency
	fmt.Printf("  memory %.1f%%  communication %.1f%%  computation %.1f%%\n",
		100*float64(lt.Memory)/float64(lt.Total()),
		100*float64(lt.Communication)/float64(lt.Total()),
		100*float64(lt.Computation)/float64(lt.Total()))
	e := res.Energy
	fmt.Printf("energy: %.3f uJ\n", e.Total()/1e6)
	fmt.Printf("  comm   dyn %8.3f uJ  leak %8.3f uJ\n", e.CommDyn/1e6, e.CommLeak/1e6)
	fmt.Printf("  comp   dyn %8.3f uJ  leak %8.3f uJ\n", e.CompDyn/1e6, e.CompLeak/1e6)
	fmt.Printf("  local  dyn %8.3f uJ  leak %8.3f uJ\n", e.LocalDyn/1e6, e.LocalLeak/1e6)
	fmt.Printf("  main   dyn %8.3f uJ  leak %8.3f uJ\n", e.MainDyn/1e6, e.MainLeak/1e6)
	fmt.Printf("traffic: DRAM %d+%d words, %d flits, %d flit-hops\n",
		res.Traffic.DRAMReadWords, res.Traffic.DRAMWriteWords,
		res.Traffic.NoCFlits, res.Traffic.FlitHops)
	if *perLayer {
		fmt.Printf("\n%-16s %-6s %-5s %12s %8s %10s\n", "layer", "kind", "flow", "cycles", "rounds", "energy(uJ)")
		for _, l := range res.Layers {
			fmt.Printf("%-16s %-6s %-5s %12d %4d/%-4d %10.3f\n",
				l.Name, l.Kind, l.Flow, l.Cycles, l.SimRounds, l.Rounds, l.Energy.Total()/1e6)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nocsim:", err)
	os.Exit(1)
}
