// amd64 kernel table and CPU feature detection. Detection is done with
// raw CPUID/XGETBV (cpuid_amd64.s) instead of a dependency: AVX2 is
// usable only when the CPU advertises it AND the OS saves the YMM state
// (OSXSAVE set and XCR0 enabling both SSE and AVX state), the same
// checks golang.org/x/sys/cpu performs.

package tensor

// Implemented in cpuid_amd64.s.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

// Implemented in kernels_saxpy_amd64.s.
//
//go:noescape
func saxpy4SSE2(orow []float32, a0, a1, a2, a3 float32, b0, b1, b2, b3 []float32)

//go:noescape
func saxpy1SSE2(orow []float32, a float32, brow []float32)

//go:noescape
func saxpy4AVX2(orow []float32, a0, a1, a2, a3 float32, b0, b1, b2, b3 []float32)

//go:noescape
func saxpy1AVX2(orow []float32, a float32, brow []float32)

//go:noescape
func saxpy4FMA(orow []float32, a0, a1, a2, a3 float32, b0, b1, b2, b3 []float32)

//go:noescape
func saxpy1FMA(orow []float32, a float32, brow []float32)

// cpuFeatures reports the vector extensions usable by this process.
func cpuFeatures() (avx2, fma bool) {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false, false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		bitFMA     = 1 << 12
		bitOSXSAVE = 1 << 27
		bitAVX     = 1 << 28
	)
	if ecx1&bitOSXSAVE == 0 || ecx1&bitAVX == 0 {
		return false, false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX): the OS saves YMM state on context
	// switch. Without them, executing VEX.256 code faults.
	xeax, _ := xgetbv0()
	if xeax&0x6 != 0x6 {
		return false, false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const bitAVX2 = 1 << 5
	avx2 = ebx7&bitAVX2 != 0
	fma = avx2 && ecx1&bitFMA != 0
	return avx2, fma
}

// archKernels returns the vector kernels this CPU supports, narrowest
// first. SSE2 is part of the amd64 baseline and always present.
func archKernels() []saxpyKernel {
	ks := []saxpyKernel{
		{name: KernelSSE2, saxpy4: saxpy4SSE2, saxpy1: saxpy1SSE2, auto: true},
	}
	avx2, fma := cpuFeatures()
	if avx2 {
		ks = append(ks, saxpyKernel{name: KernelAVX2, saxpy4: saxpy4AVX2, saxpy1: saxpy1AVX2, auto: true})
	}
	if fma {
		// Present so VECMM=fma / SetMatMulKernel can reach it, but never
		// auto-selected: FMA rounds once per term where the reference
		// rounds twice, so results are NOT bit-identical.
		ks = append(ks, saxpyKernel{name: KernelFMA, saxpy4: saxpy4FMA, saxpy1: saxpy1FMA, auto: false})
	}
	return ks
}
