package accel

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/models"
)

func defaultSim(t *testing.T) *Simulator {
	t.Helper()
	s, err := NewSimulator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.MemNodes = nil
	if err := bad.Validate(); err == nil {
		t.Error("no memory nodes should error")
	}
	bad = DefaultConfig()
	bad.MemNodes = []int{0, 0}
	if err := bad.Validate(); err == nil {
		t.Error("duplicate memory nodes should error")
	}
	bad = DefaultConfig()
	bad.MemNodes = []int{99}
	if err := bad.Validate(); err == nil {
		t.Error("off-mesh memory node should error")
	}
	bad = DefaultConfig()
	bad.LocalMemBytes = 1
	if err := bad.Validate(); err == nil {
		t.Error("tiny local memory should error")
	}
	bad = DefaultConfig()
	bad.MACLanes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero MAC lanes should error")
	}
	bad = DefaultConfig()
	bad.DecompUnits = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero decompression throughput should error")
	}
	bad = DefaultConfig()
	bad.MaxSimRounds = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero sim rounds should error")
	}
	if DefaultConfig().MACsPerCycle() != 64 {
		t.Error("paper datapath is 64 MACs/cycle")
	}
}

func TestPEAssignment(t *testing.T) {
	cfg := DefaultConfig()
	pes := cfg.peNodes()
	if len(pes) != 12 {
		t.Fatalf("PE count = %d, want 12", len(pes))
	}
	assign := cfg.assignPEs()
	load := map[int]int{}
	for pe, mi := range assign {
		found := false
		for _, m := range cfg.MemNodes {
			if m == mi {
				found = true
			}
		}
		if !found {
			t.Errorf("PE %d assigned to non-MI node %d", pe, mi)
		}
		load[mi]++
	}
	for mi, n := range load {
		if n != 3 {
			t.Errorf("MI %d serves %d PEs, want 3", mi, n)
		}
	}
	// Every PE must be assigned to an adjacent-quadrant corner: distance
	// at most 3 hops in the 4x4 mesh with balanced corners.
	dist := func(a, b int) int {
		dx := a%4 - b%4
		dy := a/4 - b/4
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		return dx + dy
	}
	for pe, mi := range assign {
		if d := dist(pe, mi); d > 3 {
			t.Errorf("PE %d assigned to MI %d at distance %d", pe, mi, d)
		}
	}
	if links := cfg.meshLinks(); links != 48 {
		t.Errorf("mesh links = %d, want 48", links)
	}
}

func TestLayerSpecValidate(t *testing.T) {
	if err := (LayerSpec{}).Validate(); err == nil {
		t.Error("empty spec should error")
	}
	if err := (LayerSpec{Name: "x"}).Validate(); err == nil {
		t.Error("spec moving no data should error")
	}
	if err := (LayerSpec{Name: "x", WeightBytes: 4, Compressed: true}).Validate(); err == nil {
		t.Error("compressed spec with no weight count should error")
	}
	ok := LayerSpec{Name: "x", Kind: "FC", WeightBytes: 4, InputBytes: 4, OutputBytes: 4}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestFlowSelection(t *testing.T) {
	conv := LayerSpec{Kind: "CONV", OutSpatial: 100}
	if conv.Flow(12) != ConvFlow {
		t.Error("large conv should use spatial partitioning")
	}
	tiny := LayerSpec{Kind: "CONV", OutSpatial: 1}
	if tiny.Flow(12) != FCFlow {
		t.Error("1x1-spatial conv should use FC flow")
	}
	fc := LayerSpec{Kind: "FC", OutSpatial: 100}
	if fc.Flow(12) != FCFlow {
		t.Error("FC layers always use FC flow")
	}
	if ConvFlow.String() != "conv" || FCFlow.String() != "fc" {
		t.Error("Dataflow.String broken")
	}
}

func TestSpecsFromModelLeNet(t *testing.T) {
	m, err := models.LeNet5(1)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := SpecsFromModel(m, nil, core.DefaultStorage)
	if err != nil {
		t.Fatal(err)
	}
	// conv_1, pool_1, conv_2, pool_2, dense_1, dense_2, dense_3.
	if len(specs) != 7 {
		t.Fatalf("specs = %d, want 7", len(specs))
	}
	byName := map[string]LayerSpec{}
	var totalWeightBytes uint64
	for _, s := range specs {
		byName[s.Name] = s
		totalWeightBytes += s.WeightBytes
	}
	if totalWeightBytes != uint64(m.TotalParams())*4 {
		t.Errorf("weight bytes %d != 4*params %d", totalWeightBytes, m.TotalParams()*4)
	}
	d1 := byName["dense_1"]
	if d1.MACs != 48000 || d1.WeightBytes != 48120*4 {
		t.Errorf("dense_1 spec = %+v", d1)
	}
	c1 := byName["conv_1"]
	if c1.InputBytes != 28*28*4 || c1.OutputBytes != 28*28*6*4 || c1.OutSpatial != 784 {
		t.Errorf("conv_1 spec = %+v", c1)
	}
}

func TestSpecsFromModelCompressed(t *testing.T) {
	m, err := models.LeNet5(1)
	if err != nil {
		t.Fatal(err)
	}
	w, err := m.SelectedWeights()
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.CompressPct(w, 15)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := SpecsFromModel(m, map[string]*core.Compressed{"dense_1": c}, core.DefaultStorage)
	if err != nil {
		t.Fatal(err)
	}
	var d1 LayerSpec
	for _, s := range specs {
		if s.Name == "dense_1" {
			d1 = s
		}
	}
	if !d1.Compressed || d1.WeightCount != 48000 {
		t.Errorf("compressed dense_1 spec = %+v", d1)
	}
	raw := uint64(48120 * 4)
	if d1.WeightBytes >= raw {
		t.Errorf("compressed weight bytes %d not below raw %d", d1.WeightBytes, raw)
	}
	// The bias (120 floats) stays uncompressed.
	if d1.WeightBytes < 480 {
		t.Errorf("compressed weight bytes %d below the raw bias size", d1.WeightBytes)
	}
}

func TestSimulateLayerBasics(t *testing.T) {
	sim := defaultSim(t)
	spec := LayerSpec{
		Name: "fc", Kind: "FC",
		MACs: 100_000, WeightBytes: 400_000, InputBytes: 4000, OutputBytes: 400,
	}
	lr, err := sim.SimulateLayer(spec)
	if err != nil {
		t.Fatal(err)
	}
	if lr.Cycles == 0 {
		t.Error("zero cycles")
	}
	if lr.Latency.Total() != lr.Cycles {
		t.Errorf("latency parts %d != cycles %d", lr.Latency.Total(), lr.Cycles)
	}
	if lr.Energy.Total() <= 0 {
		t.Error("non-positive energy")
	}
	if lr.Traffic.DRAMReadWords == 0 || lr.Traffic.NoCFlits == 0 {
		t.Errorf("traffic empty: %+v", lr.Traffic)
	}
	if lr.Rounds < lr.SimRounds || lr.SimRounds < 1 {
		t.Errorf("rounds %d/%d", lr.SimRounds, lr.Rounds)
	}
	if _, err := sim.SimulateLayer(LayerSpec{}); err == nil {
		t.Error("invalid spec should error")
	}
}

func TestSimulateLayerExtrapolation(t *testing.T) {
	sim := defaultSim(t)
	// A layer needing far more rounds than MaxSimRounds.
	spec := LayerSpec{
		Name: "big_fc", Kind: "FC",
		MACs: 4_000_000, WeightBytes: 16_000_000, InputBytes: 4000, OutputBytes: 4000,
	}
	lr, err := sim.SimulateLayer(spec)
	if err != nil {
		t.Fatal(err)
	}
	if lr.Rounds <= sim.Config().MaxSimRounds {
		t.Fatalf("expected extrapolation, rounds = %d", lr.Rounds)
	}
	if lr.SimRounds != sim.Config().MaxSimRounds {
		t.Errorf("sim rounds = %d", lr.SimRounds)
	}
	// Extrapolated DRAM reads must be close to the analytic total: weights
	// striped + input broadcast per PE round-trips.
	words := lr.Traffic.DRAMReadWords
	atLeast := uint64(16_000_000 / 8)
	if words < atLeast || words > atLeast*2 {
		t.Errorf("extrapolated DRAM reads = %d, want ~%d", words, atLeast)
	}
}

// TestCompressionReducesLatencyAndEnergy is the paper's headline claim at
// system level.
func TestCompressionReducesLatencyAndEnergy(t *testing.T) {
	m, err := models.LeNet5(1)
	if err != nil {
		t.Fatal(err)
	}
	sim := defaultSim(t)
	base, err := SpecsFromModel(m, nil, core.DefaultStorage)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := sim.SimulateModel(m.Name, base)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := m.SelectedWeights()
	prevCycles, prevEnergy := orig.Cycles, orig.Energy.Total()
	for _, pct := range []float64{5, 15} {
		c, err := core.CompressPct(w, pct)
		if err != nil {
			t.Fatal(err)
		}
		specs, err := SpecsFromModel(m, map[string]*core.Compressed{m.SelectedLayer: c}, core.DefaultStorage)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.SimulateModel(m.Name, specs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles >= prevCycles {
			t.Errorf("delta %v%%: cycles %d not below %d", pct, res.Cycles, prevCycles)
		}
		if res.Energy.Total() >= prevEnergy {
			t.Errorf("delta %v%%: energy %v not below %v", pct, res.Energy.Total(), prevEnergy)
		}
		prevCycles, prevEnergy = res.Cycles, res.Energy.Total()
	}
	// Fig. 2's conclusion: memory dominates inference latency.
	frac := float64(orig.Latency.Memory) / float64(orig.Latency.Total())
	if frac < 0.5 {
		t.Errorf("memory latency fraction = %.2f, expected dominant", frac)
	}
	// And main memory dominates energy.
	if orig.Energy.MainDyn < orig.Energy.CommDyn || orig.Energy.MainDyn < orig.Energy.CompDyn {
		t.Error("main memory should dominate dynamic energy")
	}
}

func TestSimulateModelEmpty(t *testing.T) {
	sim := defaultSim(t)
	if _, err := sim.SimulateModel("x", nil); err == nil {
		t.Error("no specs should error")
	}
}

// TestSimulateModelParallelDeterministic pins the pool contract at the
// simulator level: any worker count yields a Result deeply equal to the
// serial run, layers in spec order included.
func TestSimulateModelParallelDeterministic(t *testing.T) {
	m, err := models.LeNet5(1)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := SpecsFromModel(m, nil, core.DefaultStorage)
	if err != nil {
		t.Fatal(err)
	}
	serial := defaultSim(t)
	base, err := serial.SimulateModel(m.Name, specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 4, 0} { // 0 = all cores
		sim := defaultSim(t)
		sim.SetWorkers(n)
		got, err := sim.SimulateModel(m.Name, specs)
		if err != nil {
			t.Fatalf("workers %d: %v", n, err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Errorf("workers %d: result differs from serial run", n)
		}
	}
}

// TestSimulateModelParallelError: a failing layer surfaces with its name
// in the error regardless of worker count.
func TestSimulateModelParallelError(t *testing.T) {
	m, err := models.LeNet5(1)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := SpecsFromModel(m, nil, core.DefaultStorage)
	if err != nil {
		t.Fatal(err)
	}
	specs[3] = LayerSpec{Name: "broken"} // moves no data: Validate fails
	sim := defaultSim(t)
	sim.SetWorkers(4)
	if _, err := sim.SimulateModel(m.Name, specs); err == nil {
		t.Fatal("invalid spec accepted")
	} else if !strings.Contains(err.Error(), `"broken"`) {
		t.Errorf("error %q does not name the failing layer", err)
	}
}

func TestResultAccumulate(t *testing.T) {
	var r Result
	r.accumulate(LayerResult{Name: "a", Cycles: 10, Latency: LatencyBreakdown{Memory: 10}})
	r.accumulate(LayerResult{Name: "b", Cycles: 5, Latency: LatencyBreakdown{Computation: 5}})
	if r.Cycles != 15 || len(r.Layers) != 2 {
		t.Errorf("accumulate: %+v", r)
	}
	if r.Latency.Total() != 15 {
		t.Errorf("latency total = %d", r.Latency.Total())
	}
	if r.Seconds(1e9) != 15e-9 {
		t.Errorf("Seconds = %v", r.Seconds(1e9))
	}
}

func TestEnergyBreakdownOps(t *testing.T) {
	e := EnergyBreakdown{CommDyn: 1, CommLeak: 2, CompDyn: 3, CompLeak: 4, LocalDyn: 5, LocalLeak: 6, MainDyn: 7, MainLeak: 8}
	if e.Total() != 36 {
		t.Errorf("Total = %v", e.Total())
	}
	e2 := e
	e2.add(e)
	if e2.Total() != 72 {
		t.Errorf("add: %v", e2.Total())
	}
	e2.scale(0.5)
	if e2.Total() != 36 {
		t.Errorf("scale: %v", e2.Total())
	}
}

func TestDramServiceCycles(t *testing.T) {
	cases := []struct {
		name      string
		words     uint64
		wordsPerC float64
		want      uint64
	}{
		// Exact multiples at every bandwidth shape.
		{"exact reciprocal", 8, 0.25, 32},
		{"exact integer", 12, 4, 3},
		{"exact unit", 7, 1, 7},
		// Fractional quotients round up.
		{"fractional integer bw", 10, 3, 4},
		{"fractional sub-unit bw", 10, 0.3, 34}, // 33.33 cycles
		{"just over one cycle", 5, 4, 2},
		// Degenerate inputs.
		{"zero words still a beat", 0, 1, 1},
		{"zero bandwidth fallback", 5, 0, 5},
		{"sub-cycle burst", 1, 8, 1},
		// Regressions against the old +0.999999 epsilon ceiling. At 1e15
		// the epsilon rounds up to a full extra cycle on an exact
		// multiple; a fractional part below 1e-6 used to be dropped.
		{"huge exact multiple not overshot", 1_000_000_000_000_000, 1, 1_000_000_000_000_000},
		{"tiny fraction not lost", 1_000_000_001, 1e9, 2},
		{"huge exact multiple, wide bw", 1 << 40, 8, 1 << 37},
	}
	for _, c := range cases {
		if got := dramServiceCycles(c.words, c.wordsPerC); got != c.want {
			t.Errorf("%s: dramServiceCycles(%d, %v) = %d, want %d",
				c.name, c.words, c.wordsPerC, got, c.want)
		}
	}
}

func TestCeilDiv(t *testing.T) {
	if ceilDiv(10, 3) != 4 || ceilDiv(9, 3) != 3 || ceilDiv(0, 5) != 0 || ceilDiv(5, 0) != 0 {
		t.Error("ceilDiv broken")
	}
}
