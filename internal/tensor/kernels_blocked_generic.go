// Portable blocked matmul kernel. This is the default build; the
// `vecmm` build tag on amd64 swaps in kernels_blocked_vecmm.go, which
// keeps the identical tiling skeleton but runs the inner j-sweeps
// through hand-written SSE assembly. Both produce bit-identical output
// (each lane performs the same sequence of single-precision multiplies
// and adds), which the property tests in kernels_test.go pin under
// either tag.

//go:build !vecmm || !amd64

package tensor

// VecMatMul reports whether this binary was built with the vectorized
// matmul inner kernel (`-tags vecmm` on amd64). The two kernels are
// bit-identical; the flag only tells benchmarks and doctors which code
// path is live.
const VecMatMul = false

// matMulBlocked accumulates dst[rowLo:rowHi] += a[rowLo:rowHi]·b with a
// three-level i/k/j tiling. dst rows in the range must be zero on entry.
// For a fixed output element the k-blocks are visited in ascending order
// and p ascends within each block, so the float32 accumulation sequence
// matches the reference ikj kernel exactly (including the skip of zero
// a-elements, which contribute no term there either).
//
// The inner kernel additionally unrolls four consecutive p terms into one
// j-sweep. The four adds stay separate sequential float32 operations in
// ascending p order (Go's amd64 backend does not contract them into
// FMAs), so the rounding sequence per element is unchanged — the unroll
// only saves three quarters of the dst loads and stores. Any zero among
// the four falls back to the per-p loop with its zero skip.
func matMulBlocked(dst, a, b []float32, rowLo, rowHi, k, n, tileI, tileK, tileJ int) {
	if tileI < 1 {
		tileI = defaultTileI
	}
	if tileK < 1 {
		tileK = defaultTileK
	}
	if tileJ < 1 {
		tileJ = defaultTileJ
	}
	for ii := rowLo; ii < rowHi; ii += tileI {
		iMax := min(ii+tileI, rowHi)
		for kk := 0; kk < k; kk += tileK {
			kMax := min(kk+tileK, k)
			for jj := 0; jj < n; jj += tileJ {
				jMax := min(jj+tileJ, n)
				for i := ii; i < iMax; i++ {
					abase := i * k
					orow := dst[i*n+jj : i*n+jMax]
					p := kk
					for ; p+3 < kMax; p += 4 {
						a0, a1, a2, a3 := a[abase+p], a[abase+p+1], a[abase+p+2], a[abase+p+3]
						if a0 != 0 && a1 != 0 && a2 != 0 && a3 != 0 {
							b0 := b[(p+0)*n+jj : (p+0)*n+jMax]
							b1 := b[(p+1)*n+jj : (p+1)*n+jMax][:len(b0)]
							b2 := b[(p+2)*n+jj : (p+2)*n+jMax][:len(b0)]
							b3 := b[(p+3)*n+jj : (p+3)*n+jMax][:len(b0)]
							for j := range b0 {
								v := orow[j]
								v += a0 * b0[j]
								v += a1 * b1[j]
								v += a2 * b2[j]
								v += a3 * b3[j]
								orow[j] = v
							}
						} else {
							matMulTail(orow, a, b, abase, p, p+4, n, jj, jMax)
						}
					}
					matMulTail(orow, a, b, abase, p, kMax, n, jj, jMax)
				}
			}
		}
	}
}

// matMulTail applies the reference per-p accumulation (with the zero
// skip) for p in [pLo, pHi) against one destination row segment.
func matMulTail(orow, a, b []float32, abase, pLo, pHi, n, jj, jMax int) {
	for p := pLo; p < pHi; p++ {
		av := a[abase+p]
		if av == 0 {
			continue
		}
		brow := b[p*n+jj : p*n+jMax]
		for j, bv := range brow {
			orow[j] += av * bv
		}
	}
}
