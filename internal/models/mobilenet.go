package models

import "fmt"

// MobileNet builds MobileNet v1 (alpha = 1) for 224x224x3 inputs: a
// strided stem convolution followed by 13 depthwise-separable blocks, a
// global average pool, and the 1x1 "conv_preds" prediction convolution —
// 4.25M parameters (Table I: 4,250k with conv_preds, a CONV layer, at
// ~19-24%). Every convolution is followed by batch normalization and
// ReLU6, and the BN vectors count toward the parameter total as Keras
// reports it.
func MobileNet(seed int64) (*Model, error) {
	b := newGraphBuilder(seed)
	// Stem.
	b.conv("conv_1", 3, 3, 3, 32, 2, 1) // 112x112x32
	b.bn("conv_1_bn", 32)
	b.relu6("conv_1_relu")
	// Depthwise-separable blocks: (stride of the depthwise, pointwise outC).
	cfg := []struct {
		stride int
		outC   int
	}{
		{1, 64}, {2, 128}, {1, 128}, {2, 256}, {1, 256},
		{2, 512}, {1, 512}, {1, 512}, {1, 512}, {1, 512}, {1, 512},
		{2, 1024}, {1, 1024},
	}
	inC := 32
	for i, blk := range cfg {
		dw := fmt.Sprintf("conv_dw_%d", i+1)
		b.dwconv(dw, 3, inC, blk.stride, 1)
		b.bn(dw+"_bn", inC)
		b.relu6(dw + "_relu")
		pw := fmt.Sprintf("conv_pw_%d", i+1)
		b.conv(pw, 1, 1, inC, blk.outC, 1, 0)
		b.bn(pw+"_bn", blk.outC)
		b.relu6(pw + "_relu")
		inC = blk.outC
	}
	b.gap("global_pool") // [1024]
	b.reshape("reshape_1", []int{1, 1, 1024})
	b.conv("conv_preds", 1, 1, 1024, 1000, 1, 0)
	b.flatten("flatten")
	b.softmax("softmax")
	m, err := b.finish(Info{
		Name:          "MobileNet",
		InputShape:    []int{224, 224, 3},
		SelectedLayer: "conv_preds",
		SelectedKind:  "CONV",
		PaperParamsK:  4250,
		PaperFraction: 0.19,
		Classes:       1000,
	})
	if err != nil {
		return nil, err
	}
	// Calibrated against Table II: amplitude 2*9.32 sigma reproduces
	// conv_preds' CR curve (1.21 -> ~4x over delta 0..8%); sigma 0.015
	// lands the MSE near the paper's 1e-5 order.
	if err := retouchSelected(m, seed, 0.015, 9.32); err != nil {
		return nil, err
	}
	return m, nil
}
