package planner

import (
	"reflect"
	"testing"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/models"
)

func tileSpecs(t *testing.T, delta float64) []accel.LayerSpec {
	t.Helper()
	m, err := models.LeNet5(2020)
	if err != nil {
		t.Fatal(err)
	}
	var compressed map[string]*core.Compressed
	if delta >= 0 {
		w, _ := m.SelectedWeights()
		c, err := core.CompressPct(w, delta)
		if err != nil {
			t.Fatal(err)
		}
		compressed = map[string]*core.Compressed{m.SelectedLayer: c}
	}
	specs, err := accel.SpecsFromModel(m, compressed, core.DefaultStorage)
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

// TestPlanTilesNeverRegresses: every per-layer choice must cost at most
// the capacity-derived baseline — the baseline itself is in the
// candidate grid, so the search can always keep it.
func TestPlanTilesNeverRegresses(t *testing.T) {
	specs := tileSpecs(t, 15)
	tiled, plan, err := PlanTiles(accel.DefaultConfig(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(tiled) != len(specs) || len(plan.Choices) != len(specs) {
		t.Fatalf("tile pass dropped layers: %d specs, %d tiled, %d choices",
			len(specs), len(tiled), len(plan.Choices))
	}
	for _, c := range plan.Choices {
		if c.Cycles > c.BaseCycles {
			t.Errorf("layer %s: chosen tiling %d rounds costs %d cycles > baseline %d",
				c.Layer, c.Rounds, c.Cycles, c.BaseCycles)
		}
		if c.Rounds < c.BaseRounds {
			t.Errorf("layer %s: chose %d rounds below the capacity minimum %d",
				c.Layer, c.Rounds, c.BaseRounds)
		}
	}
	if plan.Cycles > plan.BaseCycles {
		t.Errorf("plan total %d cycles > baseline %d", plan.Cycles, plan.BaseCycles)
	}
}

// TestPlanTilesEndToEnd: simulating the tiled specs in overlap mode
// reproduces the plan's predicted total — the pass is exact simulation,
// not a detached cost model.
func TestPlanTilesEndToEnd(t *testing.T) {
	specs := tileSpecs(t, 15)
	tiled, plan, err := PlanTiles(accel.DefaultConfig(), specs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := accel.DefaultConfig()
	cfg.Overlap = true
	sim, err := accel.NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.SimulateModel("LeNet-5", tiled)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != plan.Cycles {
		t.Errorf("simulated tiled model: %d cycles, plan predicted %d", res.Cycles, plan.Cycles)
	}
}

// TestPlanTilesDeterministic: two runs over the same inputs produce the
// same plan.
func TestPlanTilesDeterministic(t *testing.T) {
	specs := tileSpecs(t, 15)
	_, a, err := PlanTiles(accel.DefaultConfig(), specs)
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := PlanTiles(accel.DefaultConfig(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("tile pass not deterministic:\n%+v\n%+v", a, b)
	}
}

// TestPlanTilesDoesNotMutateInput: the pass returns fresh specs and
// leaves its inputs untouched.
func TestPlanTilesDoesNotMutateInput(t *testing.T) {
	specs := tileSpecs(t, 15)
	orig := append([]accel.LayerSpec(nil), specs...)
	if _, _, err := PlanTiles(accel.DefaultConfig(), specs); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(specs, orig) {
		t.Error("tile pass mutated its input specs")
	}
}
