package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. Adds are atomic, so
// concurrent layer simulations feed one counter without coordination and
// the final value is independent of interleaving. A nil *Counter is
// inert: Add/Inc are single-branch no-ops.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-written uint64 value plus a monotonic maximum. Set is
// last-write-wins and therefore only order-independent when written from
// one goroutine (CLI wiring, end-of-run summaries); Max is a CAS loop
// and deterministic under any interleaving. A nil *Gauge is inert.
type Gauge struct {
	v   atomic.Uint64
	max atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v uint64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.Max(v)
}

// Max raises the recorded maximum to v if it exceeds it.
func (g *Gauge) Max(v uint64) {
	if g == nil {
		return
	}
	for {
		cur := g.max.Load()
		if v <= cur || g.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the last Set value (0 for a nil gauge).
func (g *Gauge) Value() uint64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// MaxValue returns the maximum observed value (0 for a nil gauge).
func (g *Gauge) MaxValue() uint64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// Histogram is a fixed-bucket distribution over uint64 samples (cycle
// counts, sizes). Buckets are inclusive upper bounds in ascending order
// plus an implicit overflow bucket; counts, the sum, and the maximum are
// atomic, so the aggregated distribution is identical at any worker
// count. Quantiles are extracted from bucket counts, so they are exact
// to bucket resolution and fully deterministic. A nil *Histogram is
// inert.
type Histogram struct {
	bounds []uint64
	counts []atomic.Uint64 // len(bounds)+1; last is overflow
	n      atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Uint64
}

// NewHistogram builds a standalone histogram over the given ascending
// inclusive upper bounds. Most callers use Metrics.Histogram instead.
func NewHistogram(bounds []uint64) *Histogram {
	b := append([]uint64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Pow2Buckets returns power-of-two bucket bounds 1, 2, 4, ..., 2^maxExp
// — the default ladder for cycle-count distributions.
func Pow2Buckets(maxExp int) []uint64 {
	b := make([]uint64, maxExp+1)
	for i := range b {
		b[i] = 1 << uint(i)
	}
	return b
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	// Binary search over the fixed bounds: first bucket with bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.n.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of samples (0 for a nil histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sample sum (0 for a nil histogram).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the sample mean, 0 on an empty histogram.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile returns the q-quantile (0 < q <= 1) to bucket resolution: the
// upper bound of the bucket containing the q-th sample, or the exact
// maximum for samples past the last bound. Returns 0 on an empty
// histogram.
func (h *Histogram) Quantile(q float64) uint64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	rank := uint64(q * float64(n))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max.Load()
		}
	}
	return h.max.Load()
}

// Metrics is the registry: named counters, gauges, and histograms with
// deterministic (name-sorted) export. Get-or-create lookups take a
// mutex; hot paths resolve their handles once and then touch only
// atomics. A nil *Metrics returns nil (inert) handles.
type Metrics struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counts: map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. Nil when
// the registry is disabled.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.counts[name]
	if c == nil {
		c = &Counter{}
		m.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil when the
// registry is disabled.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	g := m.gauges[name]
	if g == nil {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later bounds are ignored — the first registration
// wins). Nil when the registry is disabled.
func (m *Metrics) Histogram(name string, bounds []uint64) *Histogram {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.hists[name]
	if h == nil {
		h = NewHistogram(bounds)
		m.hists[name] = h
	}
	return h
}

// WriteText renders every metric, sorted by kind then name, one per
// line. Histograms report count, mean, p50/p95/p99, and max.
func (m *Metrics) WriteText(w io.Writer) error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, name := range sortedKeys(m.counts) {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", name, m.counts[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(m.gauges) {
		g := m.gauges[name]
		if _, err := fmt.Fprintf(w, "gauge %s %d max %d\n", name, g.Value(), g.MaxValue()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(m.hists) {
		h := m.hists[name]
		if _, err := fmt.Fprintf(w, "histogram %s count %d mean %.3f p50 %d p95 %d p99 %d max %d\n",
			name, h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.max.Load()); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the same snapshot as CSV rows
// (kind,name,value,mean,p50,p95,p99,max).
func (m *Metrics) WriteCSV(w io.Writer) error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, err := fmt.Fprintln(w, "kind,name,value,mean,p50,p95,p99,max"); err != nil {
		return err
	}
	for _, name := range sortedKeys(m.counts) {
		if _, err := fmt.Fprintf(w, "counter,%s,%d,,,,,\n", name, m.counts[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(m.gauges) {
		g := m.gauges[name]
		if _, err := fmt.Fprintf(w, "gauge,%s,%d,,,,,%d\n", name, g.Value(), g.MaxValue()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(m.hists) {
		h := m.hists[name]
		if _, err := fmt.Fprintf(w, "histogram,%s,%d,%.3f,%d,%d,%d,%d\n",
			name, h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.max.Load()); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
