package atomicio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	if err := WriteFile(path, []byte("first\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "first\n" {
		t.Fatalf("content %q", got)
	}
	if err := WriteFile(path, []byte("second\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "second\n" {
		t.Fatalf("content after replace %q", got)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o644 {
		t.Fatalf("perm %v", fi.Mode().Perm())
	}
}

func TestWriteFileLeavesNoTempDebris(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.json")
	for i := 0; i < 3; i++ {
		if err := WriteFile(path, []byte("{}"), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
	if len(ents) != 1 {
		t.Fatalf("dir has %d entries, want 1", len(ents))
	}
}

func TestWriteFileFailureKeepsOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keep.txt")
	if err := WriteFile(path, []byte("durable"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Writing into a missing directory fails before touching the
	// destination.
	bad := filepath.Join(dir, "nope", "keep.txt")
	if err := WriteFile(bad, []byte("x"), 0o644); err == nil {
		t.Fatal("write into missing directory succeeded")
	}
	if got, _ := os.ReadFile(path); string(got) != "durable" {
		t.Fatalf("old content lost: %q", got)
	}
}
