package planner

import (
	"fmt"

	"repro/internal/accel"
)

// tileMultiples is the candidate grid of the tile-shape search: each
// layer's capacity-derived round count is scaled by these factors and
// the cheapest schedule wins. The grid is small because the latency
// curve over tile count is unimodal in practice — finer tiles shrink
// the per-tile decode and fetch time the double buffer must hide, but
// add per-burst DRAM request overhead and pipeline fill; past the
// sweet spot every extra split only adds overhead.
var tileMultiples = []int{1, 2, 3, 4, 6, 8}

// TileChoice records the tile-shape decision for one layer.
type TileChoice struct {
	Layer string
	// BaseRounds is the capacity-derived tiling (the fewest rounds whose
	// working set fits the scratchpad double buffer); Rounds is the
	// chosen tiling, >= BaseRounds.
	BaseRounds int
	Rounds     int
	// BaseCycles and Cycles are the overlap-mode layer latencies at
	// BaseRounds and Rounds.
	BaseCycles uint64
	Cycles     uint64
}

// TilePlan is the result of the overlap-aware tile pass.
type TilePlan struct {
	Choices []TileChoice
	// BaseCycles and Cycles sum the per-layer latencies before and after
	// the pass (layer-sequential, like accel.Result.Cycles).
	BaseCycles uint64
	Cycles     uint64
}

// PlanTiles is the overlap-aware tile-shape pass: for every layer it
// searches round counts at and above the scratchpad-capacity minimum —
// the shapes that fit within the LocalMemBytes double-buffer slack —
// simulating each candidate in streaming-overlap mode and keeping the
// cheapest. Ties go to the coarsest tiling (fewer rounds means fewer
// DRAM bursts and less extrapolation error).
//
// The returned specs are the inputs with RoundsOverride set to each
// layer's winning tile count; feed them to a Simulator with
// Config.Overlap enabled. The search itself is exact simulation, not a
// model, so it inherits the simulator's determinism.
func PlanTiles(cfg accel.Config, specs []accel.LayerSpec) ([]accel.LayerSpec, *TilePlan, error) {
	cfg.Overlap = true
	sim, err := accel.NewSimulator(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("planner: tile pass: %w", err)
	}
	out := make([]accel.LayerSpec, len(specs))
	plan := &TilePlan{Choices: make([]TileChoice, 0, len(specs))}
	for i, spec := range specs {
		spec.RoundsOverride = 0
		base, err := sim.SimulateLayer(spec)
		if err != nil {
			return nil, nil, fmt.Errorf("planner: tile pass on %s: %w", spec.Name, err)
		}
		choice := TileChoice{
			Layer:      spec.Name,
			BaseRounds: base.Rounds,
			Rounds:     base.Rounds,
			BaseCycles: base.Cycles,
			Cycles:     base.Cycles,
		}
		for _, mult := range tileMultiples[1:] {
			spec.RoundsOverride = base.Rounds * mult
			lr, err := sim.SimulateLayer(spec)
			if err != nil {
				return nil, nil, fmt.Errorf("planner: tile pass on %s x%d: %w", spec.Name, mult, err)
			}
			if lr.Cycles < choice.Cycles {
				choice.Rounds = lr.Rounds
				choice.Cycles = lr.Cycles
			}
		}
		spec.RoundsOverride = 0
		if choice.Rounds > choice.BaseRounds {
			spec.RoundsOverride = choice.Rounds
		}
		out[i] = spec
		plan.Choices = append(plan.Choices, choice)
		plan.BaseCycles += choice.BaseCycles
		plan.Cycles += choice.Cycles
	}
	return out, plan, nil
}
