package codecs

import (
	"math"
	"testing"

	"repro/internal/core"
)

// fuzzSeeds returns valid streams for the given codec plus a few
// deliberate corruptions, so the fuzzers start from structured input.
func fuzzSeeds(f *testing.F, c core.Codec) {
	f.Helper()
	w := []float64{0.5, -0.25, 0.125, 0, 0.75, -0.625, 0.0625}
	for _, level := range c.Levels() {
		stream, err := c.Compress(w, level)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(stream)
		f.Add(stream[:len(stream)-1])
		bad := append([]byte(nil), stream...)
		bad[len(bad)/2] ^= 0x55
		f.Add(bad)
	}
	f.Add([]byte{})
}

// fuzzStream is the shared oracle: Validate and Decompress must agree —
// a stream Validate accepts must decompress into finite weights, and a
// stream it rejects must not decompress. Neither may panic.
func fuzzStream(t *testing.T, c core.Codec, data []byte) {
	t.Helper()
	verr := c.Validate(data)
	w, derr := c.Decompress(data)
	if verr == nil && derr != nil {
		t.Fatalf("Validate accepts but Decompress rejects: %v", derr)
	}
	if verr != nil && derr == nil {
		t.Fatalf("Decompress accepts but Validate rejects: %v", verr)
	}
	if verr != nil {
		return
	}
	if len(w) == 0 {
		t.Fatal("valid stream decompressed to nothing")
	}
	for i, v := range w {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("valid stream decodes non-finite w[%d] = %v", i, v)
		}
	}
	if _, err := c.CompressedBits(data, core.DefaultStorage); err != nil {
		t.Fatalf("valid stream fails CompressedBits: %v", err)
	}
}

func FuzzBitPlaneStream(f *testing.F) {
	c := BitPlaneCodec()
	fuzzSeeds(f, c)
	f.Fuzz(func(t *testing.T, data []byte) { fuzzStream(t, c, data) })
}

func FuzzQuantHuffStream(f *testing.F) {
	c := QuantHuffCodec()
	fuzzSeeds(f, c)
	f.Fuzz(func(t *testing.T, data []byte) { fuzzStream(t, c, data) })
}
