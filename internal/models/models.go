// Package models defines the six CNN models of the paper's evaluation
// (Table I): LeNet-5, AlexNet, VGG-16, MobileNet, Inception-v3 and
// ResNet50, built on the nn substrate with parameter inventories matching
// the paper's reported totals and selected-layer fractions.
//
// Real pre-trained weights are unavailable offline, so weights are
// synthetic (see DESIGN.md): layer tensors get standard Glorot/He random
// initialization, and the layer selected for compression is re-initialized
// with a heavy-tailed "trained-like" mixture whose amplitude-to-bulk-sigma
// ratio is calibrated per model so the compression-ratio curves of
// Table II keep their shape. LeNet-5 is small enough to be trained for
// real by internal/train.
package models

import (
	"fmt"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Info is the Table I row of a model.
type Info struct {
	Name          string
	InputShape    []int   // [H, W, C]
	SelectedLayer string  // layer selected for compression
	SelectedKind  string  // FC or CONV, as reported in Table I
	PaperParamsK  int     // paper-reported total parameters, x1000
	PaperFraction float64 // paper-reported fraction of the selected layer
	Classes       int
}

// Model is a built network plus its Table I metadata.
type Model struct {
	Info
	Graph *nn.Graph
}

// TotalParams returns the model's parameter count.
func (m *Model) TotalParams() int { return m.Graph.NumParams() }

// SelectedFraction returns the fraction of parameters held by the
// selected layer (weights + bias etc., as Keras counts them).
func (m *Model) SelectedFraction() float64 {
	l := m.Graph.Layer(m.SelectedLayer)
	if l == nil {
		return 0
	}
	return float64(nn.NumParams(l)) / float64(m.TotalParams())
}

// SelectedWeights returns the weight tensor of the selected layer as a
// float64 succession — the W the compression core consumes. The bias and
// normalization vectors are excluded: the paper compresses the layer's
// weight matrix, and the ancillary vectors are negligible (<0.1%).
func (m *Model) SelectedWeights() ([]float64, error) {
	return m.LayerWeights(m.SelectedLayer)
}

// SetSelectedWeights installs a (typically decompressed, approximated)
// weight succession back into the selected layer.
func (m *Model) SetSelectedWeights(w []float64) error {
	return m.SetLayerWeights(m.SelectedLayer, w)
}

// LayerWeights returns the named layer's weight tensor (first parameter)
// as a float64 succession.
func (m *Model) LayerWeights(name string) ([]float64, error) {
	l := m.Graph.Layer(name)
	if l == nil {
		return nil, fmt.Errorf("models: %s has no layer %q", m.Name, name)
	}
	ps := l.Params()
	if len(ps) == 0 {
		return nil, fmt.Errorf("models: layer %q has no parameters", name)
	}
	return ps[0].T.Float64s(), nil
}

// SetLayerWeights installs a weight succession into the named layer's
// weight tensor.
func (m *Model) SetLayerWeights(name string, w []float64) error {
	l := m.Graph.Layer(name)
	if l == nil {
		return fmt.Errorf("models: %s has no layer %q", m.Name, name)
	}
	ps := l.Params()
	if len(ps) == 0 {
		return fmt.Errorf("models: layer %q has no parameters", name)
	}
	return ps[0].T.SetFloat64s(w)
}

// Builder constructs a model deterministically from a seed.
type Builder struct {
	Name  string
	Build func(seed int64) (*Model, error)
}

// All returns the six paper models in Table I order. Building the large
// models allocates hundreds of megabytes; build one at a time.
func All() []Builder {
	return []Builder{
		{Name: "LeNet-5", Build: LeNet5},
		{Name: "AlexNet", Build: AlexNet},
		{Name: "VGG-16", Build: VGG16},
		{Name: "MobileNet", Build: MobileNet},
		{Name: "Inception-v3", Build: InceptionV3},
		{Name: "ResNet50", Build: ResNet50},
	}
}

// Small returns only the models cheap enough for routine tests.
func Small() []Builder {
	return []Builder{{Name: "LeNet-5", Build: LeNet5}}
}

// ByName returns the builder for a model name, matching loosely
// (case-sensitive exact match on the Table I names).
func ByName(name string) (Builder, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return Builder{}, fmt.Errorf("models: unknown model %q", name)
}

// initTrainedLike overwrites t with a trained-like weight distribution: a
// Gaussian bulk N(0, sigma) clipped at +/- ampSigmas*sigma, with the two
// extremes planted so the amplitude max(W)-min(W) is exactly
// 2*ampSigmas*sigma. Trained CNN layers show this shape — a tight bulk
// plus rare large weights — and since the paper expresses delta as a
// percentage of the amplitude, the amplitude-to-bulk-sigma ratio is the
// single knob that governs the compression ratio achievable at a given
// delta percentage. ampSigmas is calibrated per model against Table II.
func initTrainedLike(t *tensor.Tensor, rng *rand.Rand, sigma, ampSigmas float64) {
	clip := ampSigmas * sigma
	for i := range t.Data {
		v := rng.NormFloat64() * sigma
		if v > clip {
			v = clip
		} else if v < -clip {
			v = -clip
		}
		t.Data[i] = float32(v)
	}
	if len(t.Data) >= 2 {
		t.Data[0] = float32(clip)
		t.Data[1] = float32(-clip)
	}
}

// retouchSelected re-initializes the selected layer's weight tensor with
// the trained-like distribution.
func retouchSelected(m *Model, seed int64, sigma, ampSigmas float64) error {
	l := m.Graph.Layer(m.SelectedLayer)
	if l == nil {
		return fmt.Errorf("models: %s missing selected layer %q", m.Name, m.SelectedLayer)
	}
	ps := l.Params()
	if len(ps) == 0 {
		return fmt.Errorf("models: selected layer %q has no parameters", m.SelectedLayer)
	}
	initTrainedLike(ps[0].T, rand.New(rand.NewSource(seed^0x5eed)), sigma, ampSigmas)
	return nil
}

// graphBuilder accumulates layers with error short-circuiting, so the
// model definitions below read like the topology tables they reproduce.
type graphBuilder struct {
	g    *nn.Graph
	rng  *rand.Rand
	err  error
	last string
}

func newGraphBuilder(seed int64) *graphBuilder {
	return &graphBuilder{g: nn.NewGraph(), rng: rand.New(rand.NewSource(seed))}
}

// add registers a (layer, constructorErr) pair, wiring explicit inputs if
// given, and returns the layer name for tower wiring.
func (b *graphBuilder) add(l nn.Layer, err error, inputs ...string) string {
	if b.err != nil {
		return ""
	}
	if err != nil {
		b.err = err
		return ""
	}
	if err := b.g.Add(l, inputs...); err != nil {
		b.err = err
		return ""
	}
	b.last = l.Name()
	return b.last
}

func (b *graphBuilder) conv(name string, kh, kw, inC, outC, stride, pad int, inputs ...string) string {
	l, err := nn.NewConv2D(name, kh, kw, inC, outC, stride, pad, b.rng)
	return b.add(l, err, inputs...)
}

func (b *graphBuilder) convRect(name string, kh, kw, inC, outC, stride, padH, padW int, inputs ...string) string {
	l, err := nn.NewConv2DRect(name, kh, kw, inC, outC, stride, padH, padW, b.rng)
	return b.add(l, err, inputs...)
}

func (b *graphBuilder) dwconv(name string, k, c, stride, pad int, inputs ...string) string {
	l, err := nn.NewDepthwiseConv2D(name, k, k, c, stride, pad, b.rng)
	return b.add(l, err, inputs...)
}

func (b *graphBuilder) dense(name string, in, out int, inputs ...string) string {
	l, err := nn.NewDense(name, in, out, b.rng)
	return b.add(l, err, inputs...)
}

func (b *graphBuilder) relu(name string, inputs ...string) string {
	return b.add(nn.NewReLU(name), nil, inputs...)
}

func (b *graphBuilder) relu6(name string, inputs ...string) string {
	return b.add(nn.NewReLU6(name), nil, inputs...)
}

func (b *graphBuilder) maxpool(name string, size, stride int, inputs ...string) string {
	l, err := nn.NewMaxPool2D(name, size, stride)
	return b.add(l, err, inputs...)
}

func (b *graphBuilder) maxpoolPadded(name string, size, stride, pad int, inputs ...string) string {
	l, err := nn.NewMaxPool2DPadded(name, size, stride, pad)
	return b.add(l, err, inputs...)
}

func (b *graphBuilder) avgpool(name string, size, stride int, inputs ...string) string {
	l, err := nn.NewAvgPool2D(name, size, stride)
	return b.add(l, err, inputs...)
}

func (b *graphBuilder) avgpoolPadded(name string, size, stride, pad int, inputs ...string) string {
	l, err := nn.NewAvgPool2DPadded(name, size, stride, pad)
	return b.add(l, err, inputs...)
}

func (b *graphBuilder) gap(name string, inputs ...string) string {
	return b.add(nn.NewGlobalAvgPool(name), nil, inputs...)
}

func (b *graphBuilder) bn(name string, c int, inputs ...string) string {
	l, err := nn.NewBatchNorm(name, c, b.rng)
	return b.add(l, err, inputs...)
}

func (b *graphBuilder) flatten(name string, inputs ...string) string {
	return b.add(nn.NewFlatten(name), nil, inputs...)
}

func (b *graphBuilder) reshape(name string, shape []int, inputs ...string) string {
	l, err := nn.NewReshape(name, shape...)
	return b.add(l, err, inputs...)
}

func (b *graphBuilder) softmax(name string, inputs ...string) string {
	return b.add(nn.NewSoftmax(name), nil, inputs...)
}

func (b *graphBuilder) addMerge(name string, inputs ...string) string {
	return b.add(nn.NewAdd(name), nil, inputs...)
}

func (b *graphBuilder) concat(name string, inputs ...string) string {
	return b.add(nn.NewConcat(name), nil, inputs...)
}

// convBNRelu is the conv -> batchnorm -> relu unit used throughout the
// modern models. Returns the relu output name.
func (b *graphBuilder) convBNRelu(name string, kh, kw, inC, outC, stride, pad int, inputs ...string) string {
	c := b.conv(name, kh, kw, inC, outC, stride, pad, inputs...)
	bn := b.bn(name+"_bn", outC, c)
	return b.relu(name+"_relu", bn)
}

func (b *graphBuilder) convBNReluRect(name string, kh, kw, inC, outC, stride, padH, padW int, inputs ...string) string {
	c := b.convRect(name, kh, kw, inC, outC, stride, padH, padW, inputs...)
	bn := b.bn(name+"_bn", outC, c)
	return b.relu(name+"_relu", bn)
}

// finish validates the build and wraps it in a Model.
func (b *graphBuilder) finish(info Info) (*Model, error) {
	if b.err != nil {
		return nil, fmt.Errorf("models: building %s: %w", info.Name, b.err)
	}
	m := &Model{Info: info, Graph: b.g}
	if m.Graph.Layer(info.SelectedLayer) == nil {
		return nil, fmt.Errorf("models: %s: selected layer %q not in graph", info.Name, info.SelectedLayer)
	}
	if _, err := m.Graph.InferShapes(info.InputShape); err != nil {
		return nil, fmt.Errorf("models: %s: shape check: %w", info.Name, err)
	}
	return m, nil
}
