package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Codec is a pluggable weight-compression scheme. A codec maps a float64
// parameter succession to an opaque serialized stream and back; the
// stream is the unit of storage, traffic accounting and integrity
// checking, so every scheme — the paper's segment codec, the lossless
// baselines, bit-plane compression, quantization + entropy coding — is
// comparable in one mixed-codec experiment and searchable by one
// planner.
//
// Levels parameterize how aggressive the codec is; their meaning is
// codec-specific (tolerance percent for the segment codec, dropped
// bit planes for the quantized codecs) but the ladder always ascends
// from least to most aggressive. Lossless codecs expose the single
// level 0.
//
// Implementations must be safe for concurrent use: the experiment
// engine calls one codec from many worker goroutines.
type Codec interface {
	// Name identifies the codec in registries, plans and CSVs.
	Name() string
	// Lossless reports whether Decompress(Compress(w)) reproduces w
	// exactly (at float32 precision, the width of the weight datapath).
	Lossless() bool
	// Levels is the codec's default ascending escalation ladder.
	Levels() []float64
	// Compress encodes w at the given level into a self-describing
	// stream. The input slice is not modified.
	Compress(w []float64, level float64) ([]byte, error)
	// Decompress decodes a stream produced by Compress back into the
	// (possibly approximated) parameter succession.
	Decompress(stream []byte) ([]float64, error)
	// CompressedBits is the storage/traffic accounting of a stream
	// under the given storage model: the bits the weight memory holds
	// and the NoC ships, including any side-channel cost (code tables,
	// quantization parameters, headers). Only the segment codec's
	// accounting varies with the StorageModel; byte-oriented codecs
	// charge their full serialized size.
	CompressedBits(stream []byte, sm StorageModel) (int, error)
	// Validate checks a stream for structural integrity without
	// materializing the weights, returning a non-nil error for
	// truncated, corrupt or empty input.
	Validate(stream []byte) error
}

// ErrUnknownCodec is returned by LookupCodec for unregistered names.
var ErrUnknownCodec = errors.New("core: unknown codec")

var (
	codecMu       sync.RWMutex
	codecRegistry = map[string]Codec{}
)

// RegisterCodec adds a codec to the process-wide registry, keyed by
// Name. Registering an empty name or a duplicate is an error.
func RegisterCodec(c Codec) error {
	if c == nil || c.Name() == "" {
		return errors.New("core: registering codec without a name")
	}
	codecMu.Lock()
	defer codecMu.Unlock()
	if _, dup := codecRegistry[c.Name()]; dup {
		return fmt.Errorf("core: codec %q already registered", c.Name())
	}
	codecRegistry[c.Name()] = c
	return nil
}

// MustRegisterCodec is RegisterCodec that panics on error; for use from
// package init functions.
func MustRegisterCodec(c Codec) {
	if err := RegisterCodec(c); err != nil {
		panic(err)
	}
}

// LookupCodec resolves a registered codec by name.
func LookupCodec(name string) (Codec, error) {
	codecMu.RLock()
	defer codecMu.RUnlock()
	c, ok := codecRegistry[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownCodec, name)
	}
	return c, nil
}

// CodecNames returns the registered codec names, sorted.
func CodecNames() []string {
	codecMu.RLock()
	defer codecMu.RUnlock()
	names := make([]string, 0, len(codecRegistry))
	for n := range codecRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RegisteredCodecs returns every registered codec, sorted by name, so
// iteration order (and therefore any experiment output derived from it)
// is deterministic.
func RegisteredCodecs() []Codec {
	names := CodecNames()
	out := make([]Codec, len(names))
	for i, n := range names {
		c, _ := LookupCodec(n)
		out[i] = c
	}
	return out
}

// SegmentCodecName is the registry name of the paper's codec.
const SegmentCodecName = "segment"

// segmentCodec adapts the paper's slope/intercept segment compression to
// the Codec interface. The level is the tolerance threshold delta as a
// percent of the parameter amplitude (CompressPct); the stream is the
// checksummed archival format of Marshal/Unmarshal.
type segmentCodec struct{}

// SegmentCodec returns the paper's codec as a Codec.
func SegmentCodec() Codec { return segmentCodec{} }

func (segmentCodec) Name() string     { return SegmentCodecName }
func (segmentCodec) Lossless() bool   { return false }
func (segmentCodec) Levels() []float64 { return []float64{0, 2, 5, 10, 15, 20} }

func (segmentCodec) Compress(w []float64, level float64) ([]byte, error) {
	c, err := CompressPct(w, level)
	if err != nil {
		return nil, err
	}
	// Non-finite inputs fit to non-finite coefficients; reject here so
	// Compress never emits a stream its own Validate refuses.
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c.Marshal(), nil
}

func (segmentCodec) Decompress(stream []byte) ([]float64, error) {
	c, err := Unmarshal(stream)
	if err != nil {
		return nil, err
	}
	return c.Decompress()
}

func (segmentCodec) CompressedBits(stream []byte, sm StorageModel) (int, error) {
	c, err := Unmarshal(stream)
	if err != nil {
		return 0, err
	}
	return c.CompressedBits(sm), nil
}

func (segmentCodec) Validate(stream []byte) error {
	_, err := Unmarshal(stream) // Unmarshal validates structure and checksums
	return err
}

func init() {
	MustRegisterCodec(SegmentCodec())
}
