package accel

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/noc"
	"repro/internal/obs"
)

func lenetSpecs(t testing.TB) (string, []LayerSpec) {
	t.Helper()
	m, err := models.LeNet5(1)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := SpecsFromModel(m, nil, core.DefaultStorage)
	if err != nil {
		t.Fatal(err)
	}
	return m.Name, specs
}

// lenetTrace runs a LeNet simulation with full observability and returns
// the exported trace JSON, metrics text, and the result.
func lenetTrace(t testing.TB, nocCore noc.Core, workers int) (string, string, *Result) {
	t.Helper()
	name, specs := lenetSpecs(t)
	cfg := DefaultConfig()
	cfg.Mesh.Core = nocCore
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.SetWorkers(workers)
	o := obs.New()
	sim.SetObserver(o)
	res, err := sim.SimulateModel(name, specs)
	if err != nil {
		t.Fatal(err)
	}
	var tr, mt strings.Builder
	if err := o.Trace.WriteChromeJSON(&tr); err != nil {
		t.Fatal(err)
	}
	if err := o.Metrics.WriteText(&mt); err != nil {
		t.Fatal(err)
	}
	return tr.String(), mt.String(), res
}

// TestTraceIdenticalAcrossWorkers pins the determinism contract: the
// exported trace and metrics are byte-identical whether layers are
// simulated serially or on four workers.
func TestTraceIdenticalAcrossWorkers(t *testing.T) {
	tr1, mt1, res1 := lenetTrace(t, noc.CoreEvent, 1)
	tr4, mt4, res4 := lenetTrace(t, noc.CoreEvent, 4)
	if res1.Cycles != res4.Cycles {
		t.Fatalf("cycles diverge across workers: %d vs %d", res1.Cycles, res4.Cycles)
	}
	if tr1 != tr4 {
		t.Fatal("trace export diverges between -workers 1 and 4")
	}
	if mt1 != mt4 {
		t.Fatalf("metrics export diverges between -workers 1 and 4:\n--- 1:\n%s\n--- 4:\n%s", mt1, mt4)
	}
	if tr1 == `{"traceEvents":[]}` {
		t.Fatal("trace is empty — hooks not firing")
	}
	for _, frag := range []string{spanDRAMRead, spanMAC, `"name":"eject"`, `"cat":"layer"`, `"name":"pkt"`} {
		if !strings.Contains(tr1, frag) {
			t.Fatalf("trace missing %q", frag)
		}
	}
	for _, frag := range []string{"accel_cycles_memory", "accel_noc_flits", "noc_packet_latency_cycles", "noc_router_traversals"} {
		if !strings.Contains(mt1, frag) {
			t.Fatalf("metrics missing %q:\n%s", frag, mt1)
		}
	}
}

// TestTraceIdenticalAcrossCores extends the event/step differential
// contract to the full accelerator trace stream: both NoC cores must
// produce byte-identical exports end to end.
func TestTraceIdenticalAcrossCores(t *testing.T) {
	trEv, mtEv, resEv := lenetTrace(t, noc.CoreEvent, 2)
	trSt, mtSt, resSt := lenetTrace(t, noc.CoreStep, 2)
	if resEv.Cycles != resSt.Cycles {
		t.Fatalf("cycles diverge across cores: event %d, step %d", resEv.Cycles, resSt.Cycles)
	}
	if trEv != trSt {
		t.Fatal("trace export diverges between the event and step cores")
	}
	if mtEv != mtSt {
		t.Fatal("metrics export diverges between the event and step cores")
	}
}

// TestDisabledObserverAllocs pins the disabled-path overhead at the
// model level: a warm simulator without an observer must allocate no
// more than the pre-instrumentation baseline (pooled scratch plus
// result assembly), and the count must not grow with instrumentation
// compiled in.
func TestDisabledObserverAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	name, specs := lenetSpecs(t)
	sim, err := NewSimulator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	iter := func() {
		if _, err := sim.SimulateModel(name, specs); err != nil {
			t.Fatal(err)
		}
	}
	iter() // warm the scratch pool
	allocs := testing.AllocsPerRun(5, iter)
	// Steady-state budget: parallel.Map bookkeeping, per-layer result
	// assembly, and Result aggregation. The instrumentation itself must
	// contribute nothing when disabled.
	const budget = 400
	if allocs > budget {
		t.Fatalf("disabled-observer SimulateModel allocates %.0f allocs/op, budget %d", allocs, budget)
	}
}

// BenchmarkSimulateLeNetObs is BenchmarkSimulateLeNet with tracing and
// metrics enabled — the on/off pair pinning the enabled-path overhead.
func BenchmarkSimulateLeNetObs(b *testing.B) {
	name, specs := lenetSpecs(b)
	sim, err := NewSimulator(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := obs.New()
		sim.SetObserver(o)
		if _, err := sim.SimulateModel(name, specs); err != nil {
			b.Fatal(err)
		}
	}
}
