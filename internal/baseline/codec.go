package baseline

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/core"
)

// core.Codec adapters for the lossless baselines. Both codecs operate on
// the little-endian float32 serialization of the weight stream — the
// same bytes the NoC would ship uncompressed — so their ratios quantify
// the paper's Sec. III-B argument inside the mixed-codec experiments:
// near 1.0 (Huffman) or expanding (RLE) on trained weights.
//
// Stream layout (little endian), shared two-byte prefix:
//
//	magic   byte     'H' (Huffman) or 'R' (RLE)
//	version byte     1
//	Huffman: the self-describing HuffmanEncode stream
//	RLE:     n uint32 original byte count, then the (count, value) pairs
//
// Both are lossless over float32 values, so Decompress(Compress(w))
// reproduces w exactly whenever w holds float32-representable values.

const baselineCodecVersion = 1

// Registry names of the baseline codecs.
const (
	HuffmanCodecName = "huffman"
	RLECodecName     = "rle"
)

var errTruncated = errInvalid("baseline: truncated codec stream")

// float32sToBytes serializes w as little-endian float32 words.
func float32sToBytes(w []float64) []byte {
	out := make([]byte, 4*len(w))
	for i, v := range w {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(float32(v)))
	}
	return out
}

// bytesToFloat32s inverts float32sToBytes, widening to float64.
func bytesToFloat32s(data []byte) ([]float64, error) {
	if len(data)%4 != 0 {
		return nil, fmt.Errorf("baseline: %d decoded bytes is not a whole float32 stream", len(data))
	}
	out := make([]float64, len(data)/4)
	for i := range out {
		out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(data[4*i:])))
	}
	return out, nil
}

// checkPrefix strips the two-byte magic/version prefix.
func checkPrefix(stream []byte, magic byte) ([]byte, error) {
	if len(stream) < 2 {
		return nil, errTruncated
	}
	if stream[0] != magic || stream[1] != baselineCodecVersion {
		return nil, errInvalid(fmt.Sprintf("baseline: bad codec stream header %#x %#x", stream[0], stream[1]))
	}
	return stream[2:], nil
}

// huffmanCodec is the byte-level canonical Huffman coder as a core.Codec.
type huffmanCodec struct{}

// HuffmanCodec returns the Huffman baseline as a core.Codec.
func HuffmanCodec() core.Codec { return huffmanCodec{} }

func (huffmanCodec) Name() string      { return HuffmanCodecName }
func (huffmanCodec) Lossless() bool    { return true }
func (huffmanCodec) Levels() []float64 { return []float64{0} }

func (huffmanCodec) Compress(w []float64, level float64) ([]byte, error) {
	if level != 0 {
		return nil, fmt.Errorf("baseline: huffman is lossless, level %v not supported", level)
	}
	enc, err := HuffmanEncode(float32sToBytes(w))
	if err != nil {
		return nil, err
	}
	return append([]byte{'H', baselineCodecVersion}, enc...), nil
}

func (huffmanCodec) Decompress(stream []byte) ([]float64, error) {
	enc, err := checkPrefix(stream, 'H')
	if err != nil {
		return nil, err
	}
	data, err := HuffmanDecode(enc)
	if err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, ErrEmpty
	}
	return bytesToFloat32s(data)
}

func (c huffmanCodec) CompressedBits(stream []byte, _ core.StorageModel) (int, error) {
	if err := c.Validate(stream); err != nil {
		return 0, err
	}
	return 8 * len(stream), nil
}

func (c huffmanCodec) Validate(stream []byte) error {
	_, err := c.Decompress(stream)
	return err
}

// rleCodec is byte-level run-length encoding as a core.Codec.
type rleCodec struct{}

// RLECodec returns the RLE baseline as a core.Codec.
func RLECodec() core.Codec { return rleCodec{} }

func (rleCodec) Name() string      { return RLECodecName }
func (rleCodec) Lossless() bool    { return true }
func (rleCodec) Levels() []float64 { return []float64{0} }

func (rleCodec) Compress(w []float64, level float64) ([]byte, error) {
	if level != 0 {
		return nil, fmt.Errorf("baseline: rle is lossless, level %v not supported", level)
	}
	data := float32sToBytes(w)
	enc, err := RLEEncode(data)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 6+len(enc))
	out = append(out, 'R', baselineCodecVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(data)))
	return append(out, enc...), nil
}

func (rleCodec) Decompress(stream []byte) ([]float64, error) {
	body, err := checkPrefix(stream, 'R')
	if err != nil {
		return nil, err
	}
	if len(body) < 4 {
		return nil, errTruncated
	}
	n := int(binary.LittleEndian.Uint32(body[:4]))
	data, err := RLEDecode(body[4:])
	if err != nil {
		return nil, err
	}
	// The count header catches truncation at a pair boundary, which the
	// pair stream alone cannot distinguish from a short valid stream.
	if len(data) != n {
		return nil, errInvalid(fmt.Sprintf("baseline: RLE stream decodes %d bytes, header says %d", len(data), n))
	}
	return bytesToFloat32s(data)
}

func (c rleCodec) CompressedBits(stream []byte, _ core.StorageModel) (int, error) {
	if err := c.Validate(stream); err != nil {
		return 0, err
	}
	return 8 * len(stream), nil
}

func (c rleCodec) Validate(stream []byte) error {
	_, err := c.Decompress(stream)
	return err
}

func init() {
	core.MustRegisterCodec(HuffmanCodec())
	core.MustRegisterCodec(RLECodec())
	// Decode-rate models (see core.DecodeModel). The canonical Huffman
	// decoder is bit-serial across symbol boundaries: the front end
	// resolves ~one code per cycle, a byte of stream per cycle on these
	// distributions (8 cycles per 64-bit word), and speculative
	// multi-symbol decode recovers only half the lane width. Run-length
	// expansion is the opposite extreme: runs unpack at full datapath
	// width and the stream trickles in far below word rate.
	core.MustRegisterDecodeModel(HuffmanCodecName, core.DecodeModel{
		CyclesPerStreamWord: 8,
		WeightsPerLaneCycle: 0.5,
		StreamBitPJ:         0.30,
		WeightPJ:            0.05,
	})
	core.MustRegisterDecodeModel(RLECodecName, core.DecodeModel{
		CyclesPerStreamWord: 1,
		WeightsPerLaneCycle: 1,
		StreamBitPJ:         0.02,
		WeightPJ:            0.05,
	})
}
