package baseline

// RLECompressedBytes returns the size of byte-level run-length encoding
// data with (count uint8, value uint8) pairs — the scheme that excels on
// vector-graphics-like repetitive data (the paper's example) and fails on
// high-entropy weight streams, where nearly every run has length one and
// the encoding doubles the size.
func RLECompressedBytes(data []byte) (int, error) {
	if len(data) == 0 {
		return 0, ErrEmpty
	}
	pairs := 0
	i := 0
	for i < len(data) {
		j := i + 1
		for j < len(data) && data[j] == data[i] && j-i < 255 {
			j++
		}
		pairs++
		i = j
	}
	return 2 * pairs, nil
}

// RLERatio returns original bytes over RLE-compressed bytes.
func RLERatio(data []byte) (float64, error) {
	n, err := RLECompressedBytes(data)
	if err != nil {
		return 0, err
	}
	return float64(len(data)) / float64(n), nil
}

// RLEEncode materializes the (count, value) pair stream; provided so the
// codec round-trips and is testable end to end.
func RLEEncode(data []byte) ([]byte, error) {
	if len(data) == 0 {
		return nil, ErrEmpty
	}
	// Size exactly up front: on high-entropy streams nearly every run has
	// length one and the encoding is 2x the input, so a half-length hint
	// would re-allocate through the whole append loop.
	pairs, err := RLECompressedBytes(data)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, pairs)
	i := 0
	for i < len(data) {
		j := i + 1
		for j < len(data) && data[j] == data[i] && j-i < 255 {
			j++
		}
		out = append(out, byte(j-i), data[i])
		i = j
	}
	return out, nil
}

// RLEDecode inverts RLEEncode.
func RLEDecode(enc []byte) ([]byte, error) {
	if len(enc) == 0 {
		return nil, ErrEmpty
	}
	if len(enc)%2 != 0 {
		return nil, errInvalidRLE
	}
	// Validate and size in one pass, so the output is allocated exactly
	// once at its true size (bounded by 255/2 x the input).
	total := 0
	for i := 0; i < len(enc); i += 2 {
		if enc[i] == 0 {
			return nil, errInvalidRLE
		}
		total += int(enc[i])
	}
	out := make([]byte, 0, total)
	for i := 0; i < len(enc); i += 2 {
		count, val := int(enc[i]), enc[i+1]
		for k := 0; k < count; k++ {
			out = append(out, val)
		}
	}
	return out, nil
}

var errInvalidRLE = errInvalid("baseline: invalid RLE stream")

type errInvalid string

func (e errInvalid) Error() string { return string(e) }
