package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{3}, 3},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEq(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance(nil); got != 0 {
		t.Errorf("Variance(nil) = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	min, max, err := MinMax([]float64{3, -1, 7, 0})
	if err != nil {
		t.Fatal(err)
	}
	if min != -1 || max != 7 {
		t.Errorf("MinMax = (%v, %v), want (-1, 7)", min, max)
	}
	if _, _, err := MinMax(nil); err == nil {
		t.Error("MinMax(nil) should error")
	}
}

func TestAmplitude(t *testing.T) {
	if got := Amplitude([]float64{-2, 0, 3}); got != 5 {
		t.Errorf("Amplitude = %v, want 5", got)
	}
	if got := Amplitude(nil); got != 0 {
		t.Errorf("Amplitude(nil) = %v, want 0", got)
	}
}

func TestMSE(t *testing.T) {
	got, err := MSE([]float64{1, 2, 3}, []float64{1, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, 4.0/3.0, 1e-12) {
		t.Errorf("MSE = %v, want 4/3", got)
	}
	if _, err := MSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("MSE length mismatch should error")
	}
	if _, err := MSE(nil, nil); err == nil {
		t.Error("MSE of empty should error")
	}
}

func TestMaxAbsErr(t *testing.T) {
	got, err := MaxAbsErr([]float64{1, -2, 3}, []float64{1.5, -2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("MaxAbsErr = %v, want 3", got)
	}
	if _, err := MaxAbsErr([]float64{1}, nil); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestFitLineExact(t *testing.T) {
	// Points exactly on y = 2x + 1 must recover m=2, q=1.
	ys := []float64{1, 3, 5, 7, 9}
	l, err := FitLine(ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(l.M, 2, 1e-12) || !almostEq(l.Q, 1, 1e-12) {
		t.Errorf("FitLine = %+v, want {2 1}", l)
	}
}

func TestFitLineDegenerate(t *testing.T) {
	if _, err := FitLine(nil); err == nil {
		t.Error("FitLine(nil) should error")
	}
	l, err := FitLine([]float64{7})
	if err != nil || l.M != 0 || l.Q != 7 {
		t.Errorf("FitLine single = %+v err %v, want {0 7}", l, err)
	}
	l, err = FitLine([]float64{1, 4})
	if err != nil || l.M != 3 || l.Q != 1 {
		t.Errorf("FitLine pair = %+v err %v, want {3 1}", l, err)
	}
}

func TestFitLineMinimizesMSE(t *testing.T) {
	// The least-squares line must have residuals orthogonal to [1, x]:
	// sum(r) = 0 and sum(x*r) = 0.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(50)
		ys := make([]float64, n)
		for i := range ys {
			ys[i] = rng.NormFloat64()
		}
		l, err := FitLine(ys)
		if err != nil {
			t.Fatal(err)
		}
		var sumR, sumXR float64
		for i, y := range ys {
			r := y - l.At(float64(i))
			sumR += r
			sumXR += float64(i) * r
		}
		if !almostEq(sumR, 0, 1e-8*float64(n)) || !almostEq(sumXR, 0, 1e-7*float64(n*n)) {
			t.Errorf("trial %d: residuals not orthogonal: sumR=%v sumXR=%v", trial, sumR, sumXR)
		}
	}
}

func TestFitLineXY(t *testing.T) {
	xs := []float64{0, 2, 4}
	ys := []float64{1, 5, 9} // y = 2x+1
	l, err := FitLineXY(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(l.M, 2, 1e-12) || !almostEq(l.Q, 1, 1e-12) {
		t.Errorf("FitLineXY = %+v, want {2 1}", l)
	}
	if _, err := FitLineXY(xs, ys[:2]); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := FitLineXY(nil, nil); err == nil {
		t.Error("empty should error")
	}
	// All same x: vertical data degenerates to horizontal mean line.
	l, err = FitLineXY([]float64{1, 1, 1}, []float64{0, 3, 6})
	if err != nil {
		t.Fatal(err)
	}
	if l.M != 0 || !almostEq(l.Q, 3, 1e-12) {
		t.Errorf("degenerate FitLineXY = %+v, want {0 3}", l)
	}
}

func TestFitLineAgreesWithXY(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		ys := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				continue
			}
			ys = append(ys, v)
		}
		if len(ys) == 0 {
			return true
		}
		xs := make([]float64, len(ys))
		for i := range xs {
			xs[i] = float64(i)
		}
		a, err1 := FitLine(ys)
		b, err2 := FitLineXY(xs, ys)
		if err1 != nil || err2 != nil {
			return false
		}
		scale := 1.0
		for _, y := range ys {
			if math.Abs(y) > scale {
				scale = math.Abs(y)
			}
		}
		return almostEq(a.M, b.M, 1e-6*scale) && almostEq(a.Q, b.Q, 1e-6*scale)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	bins, err := Histogram([]float64{0, 0.5, 1, 1.5, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if bins[0] != 2 || bins[1] != 3 {
		t.Errorf("Histogram = %v, want [2 3]", bins)
	}
	if _, err := Histogram(nil, 4); err == nil {
		t.Error("empty should error")
	}
	if _, err := Histogram([]float64{1}, 0); err == nil {
		t.Error("zero bins should error")
	}
	bins, err = Histogram([]float64{3, 3, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if bins[0] != 3 {
		t.Errorf("constant data should land in bin 0: %v", bins)
	}
}

func TestHistogramConservesCount(t *testing.T) {
	f := func(raw []float64, nb uint8) bool {
		nbins := int(nb%16) + 1
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		bins, err := Histogram(xs, nbins)
		if err != nil {
			return false
		}
		total := 0
		for _, c := range bins {
			total += c
		}
		return total == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{-4, 2})
	if got[0] != -1 || got[1] != 0.5 {
		t.Errorf("Normalize = %v, want [-1 0.5]", got)
	}
	got = Normalize([]float64{0, 0})
	if got[0] != 0 || got[1] != 0 {
		t.Errorf("Normalize zeros = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, c := range []struct{ p, want float64 }{{0, 1}, {50, 3}, {100, 5}, {25, 2}} {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("empty should error")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("out of range should error")
	}
	got, err := Percentile([]float64{9}, 75)
	if err != nil || got != 9 {
		t.Errorf("single-sample percentile = %v err %v", got, err)
	}
}

func TestArgMax(t *testing.T) {
	if got := ArgMax([]float64{1, 5, 2, 5}); got != 1 {
		t.Errorf("ArgMax = %d, want 1 (first of ties)", got)
	}
	if got := ArgMax(nil); got != -1 {
		t.Errorf("ArgMax(nil) = %d, want -1", got)
	}
}

func TestTopK(t *testing.T) {
	xs := []float64{0.1, 0.9, 0.5, 0.7}
	got := TopK(xs, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("TopK = %v, want [1 3]", got)
	}
	if got := TopK(xs, 10); len(got) != 4 {
		t.Errorf("TopK overflow = %v, want all 4", got)
	}
	if got := TopK(xs, 0); got != nil {
		t.Errorf("TopK(0) = %v, want nil", got)
	}
	// Stability on ties: lower index first.
	got = TopK([]float64{5, 5, 5}, 3)
	if got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("TopK tie order = %v", got)
	}
}

func TestLineAt(t *testing.T) {
	l := Line{M: -0.5, Q: 2}
	if got := l.At(4); got != 0 {
		t.Errorf("At(4) = %v, want 0", got)
	}
}
