package noc

import (
	"testing"

	"repro/internal/faults"
)

// faultCfg returns a 4x4 mesh with the given fault model installed.
func faultCfg(m faults.Model) Config {
	cfg := DefaultConfig()
	cfg.Faults = m
	return cfg
}

// runTraffic injects a deterministic all-to-some traffic pattern and
// drains the network, returning the final stats.
func runTraffic(t *testing.T, cfg Config, packets, flits int) Stats {
	t.Helper()
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := nw.Nodes()
	for i := 0; i < packets; i++ {
		src := i % n
		dst := (i*7 + 3) % n
		if dst == src {
			dst = (dst + 1) % n
		}
		if err := nw.Inject(Packet{Src: src, Dst: dst, Flits: flits}); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := nw.RunUntilIdle(5_000_000); !ok {
		t.Fatal("network did not drain")
	}
	return nw.Stats()
}

// TestZeroRateMatchesFaultFree pins the acceptance criterion that a
// fault model with every rate at zero is byte-identical to a fault-free
// run: same cycle count, traversals and latency sum.
func TestZeroRateMatchesFaultFree(t *testing.T) {
	base := runTraffic(t, DefaultConfig(), 200, 4)
	withModel := runTraffic(t, faultCfg(faults.Model{Seed: 1234}), 200, 4)
	if base != withModel {
		t.Fatalf("zero-rate fault run diverged from fault-free:\nbase  %+v\nfault %+v", base, withModel)
	}
	if base.CorruptFlits != 0 || base.RetransmittedPackets != 0 || base.Dropped() != 0 {
		t.Fatalf("fault counters nonzero on fault-free run: %+v", base)
	}
}

// TestRetransmissionRecoversAllFaults: up to (and well past) the 1e-3
// flit corruption rate of the acceptance criteria, NACK + bounded retry
// must deliver every packet — no losses — and the recovery must be
// visible in the stats.
func TestRetransmissionRecoversAllFaults(t *testing.T) {
	for _, rate := range []float64{1e-3, 1e-2} {
		st := runTraffic(t, faultCfg(faults.Model{Seed: 7, LinkFlitRate: rate}), 400, 6)
		if st.PacketsOut != st.PacketsIn {
			t.Errorf("rate %v: %d/%d packets delivered", rate, st.PacketsOut, st.PacketsIn)
		}
		if st.Dropped() != 0 {
			t.Errorf("rate %v: %d packets lost", rate, st.Dropped())
		}
		if st.CorruptFlits == 0 {
			t.Errorf("rate %v: no corruption events fired", rate)
		}
		if st.RetransmittedPackets == 0 {
			t.Errorf("rate %v: corruption fired but nothing was retransmitted", rate)
		}
	}
}

// TestRetransmissionCostsShowUp: recovered faults must cost cycles and
// traffic relative to the fault-free run (accel picks these up as
// latency and energy).
func TestRetransmissionCostsShowUp(t *testing.T) {
	base := runTraffic(t, DefaultConfig(), 400, 6)
	fault := runTraffic(t, faultCfg(faults.Model{Seed: 7, LinkFlitRate: 5e-2}), 400, 6)
	if fault.FlitsInjected <= base.FlitsInjected {
		t.Errorf("retransmission injected no extra flits: %d vs %d", fault.FlitsInjected, base.FlitsInjected)
	}
	if fault.LatencySum <= base.LatencySum {
		t.Errorf("recovery cost no latency: %d vs %d", fault.LatencySum, base.LatencySum)
	}
	if fault.LinkTraverse <= base.LinkTraverse {
		t.Errorf("retransmission crossed no extra links: %d vs %d", fault.LinkTraverse, base.LinkTraverse)
	}
}

// TestFaultRunsDeterministic: identical (seed, rate) give identical
// stats; a different seed moves the corruption pattern.
func TestFaultRunsDeterministic(t *testing.T) {
	m := faults.Model{Seed: 99, LinkFlitRate: 2e-2}
	a := runTraffic(t, faultCfg(m), 300, 5)
	b := runTraffic(t, faultCfg(m), 300, 5)
	if a != b {
		t.Fatalf("same (seed, rate) diverged:\na %+v\nb %+v", a, b)
	}
	m.Seed = 100
	c := runTraffic(t, faultCfg(m), 300, 5)
	if a == c {
		t.Error("different seeds produced identical runs")
	}
}

// TestRetryBudgetExhaustion: at an absurd corruption rate with a budget
// of one retry, packets must be counted lost — and the network must
// still drain rather than hang.
func TestRetryBudgetExhaustion(t *testing.T) {
	cfg := faultCfg(faults.Model{Seed: 3, LinkFlitRate: 0.9})
	cfg.MaxRetries = 1
	st := runTraffic(t, cfg, 100, 6)
	if st.LostPackets == 0 {
		t.Error("near-certain corruption with one retry lost nothing")
	}
	if st.PacketsOut+st.Dropped() != st.PacketsIn {
		t.Errorf("packet conservation broken: out %d + dropped %d != in %d",
			st.PacketsOut, st.Dropped(), st.PacketsIn)
	}
}

// TestDeadLinkAvoidance: with the only minimal-path link of a flow cut,
// packets detour and still arrive.
func TestDeadLinkAvoidance(t *testing.T) {
	// 4x4 mesh, XY routing: 4 -> 7 goes east along row 1 through link 5->6.
	cfg := faultCfg(faults.Model{DeadLinks: []faults.Link{{From: 5, To: 6}}})
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := nw.Inject(Packet{Src: 4, Dst: 7, Flits: 4}); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := nw.RunUntilIdle(200_000); !ok {
		t.Fatal("network did not drain around the dead link")
	}
	st := nw.Stats()
	if st.PacketsOut != st.PacketsIn {
		t.Fatalf("%d/%d packets survived the dead link", st.PacketsOut, st.PacketsIn)
	}
	if st.DeadLinkAvoids == 0 {
		t.Error("no avoidance decisions recorded")
	}
	if st.Dropped() != 0 {
		t.Errorf("%d packets dropped despite a live detour", st.Dropped())
	}
}

// TestUnroutableSourceKilled: a source whose every outbound link is dead
// cannot make progress; its packets must be killed as unroutable and the
// network must drain.
func TestUnroutableSourceKilled(t *testing.T) {
	// Corner node 0 has exactly two outbound links: 0->1 (east) and 0->4
	// (south). Cut both.
	cfg := faultCfg(faults.Model{DeadLinks: []faults.Link{{From: 0, To: 1}, {From: 0, To: 4}}})
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := nw.Inject(Packet{Src: 0, Dst: 15, Flits: 3}); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := nw.RunUntilIdle(100_000); !ok {
		t.Fatal("network did not drain killed packets")
	}
	st := nw.Stats()
	if st.UnroutablePackets != 5 {
		t.Errorf("expected 5 unroutable packets, got %d", st.UnroutablePackets)
	}
	if st.PacketsOut != 0 {
		t.Errorf("%d packets escaped a fully cut-off source", st.PacketsOut)
	}
	if nw.DroppedPackets() != 5 {
		t.Errorf("DroppedPackets() = %d, want 5", nw.DroppedPackets())
	}
}

// TestUnreachableDestinationKilled: a destination whose every inbound
// link is dead is unreachable from everywhere; its packets must be
// killed as unroutable (instead of bouncing among live routers forever)
// while flows between live nodes keep working.
func TestUnreachableDestinationKilled(t *testing.T) {
	// Cut both inbound links of corner node 0 (1->0 and 4->0); every
	// sender still has live outbound links.
	cfg := faultCfg(faults.Model{DeadLinks: []faults.Link{{From: 1, To: 0}, {From: 4, To: 0}}})
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := nw.Inject(Packet{Src: 15, Dst: 0, Flits: 2}); err != nil {
			t.Fatal(err)
		}
	}
	// A live flow sharing routers with the doomed one.
	if err := nw.Inject(Packet{Src: 12, Dst: 3, Flits: 4}); err != nil {
		t.Fatal(err)
	}
	if _, ok := nw.RunUntilIdle(1_000_000); !ok {
		t.Fatal("packets to an unreachable destination were never killed; network did not drain")
	}
	st := nw.Stats()
	if st.UnroutablePackets != 4 {
		t.Errorf("expected 4 unroutable kills, got %d", st.UnroutablePackets)
	}
	if st.PacketsOut != 1 {
		t.Errorf("expected exactly the live flow delivered, got %d", st.PacketsOut)
	}
}

// TestDeadLinkValidation: dead links must join mesh neighbors.
func TestDeadLinkValidation(t *testing.T) {
	for _, links := range [][]faults.Link{
		{{From: 0, To: 99}}, // outside the mesh
		{{From: 0, To: 5}},  // diagonal
		{{From: 0, To: 2}},  // same row, two hops
		{{From: -1, To: 0}}, // negative
		{{From: 3, To: 3}},  // self-loop
	} {
		cfg := faultCfg(faults.Model{DeadLinks: links})
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate accepted dead links %v", links)
		}
	}
	cfg := faultCfg(faults.Model{DeadLinks: []faults.Link{{From: 0, To: 1}, {From: 1, To: 0}}})
	if err := cfg.Validate(); err != nil {
		t.Errorf("Validate rejected sound dead links: %v", err)
	}
	cfg = faultCfg(faults.Model{})
	cfg.MaxRetries = -1
	if err := cfg.Validate(); err == nil {
		t.Error("Validate accepted a negative retry budget")
	}
}

// TestRetransmissionWithVirtualChannels: recovery must work under VCs
// too (retransmitted flits reuse the packet's VC assignment).
func TestRetransmissionWithVirtualChannels(t *testing.T) {
	cfg := faultCfg(faults.Model{Seed: 11, LinkFlitRate: 2e-2})
	cfg.VirtualChannels = 4
	st := runTraffic(t, cfg, 300, 5)
	if st.PacketsOut != st.PacketsIn {
		t.Errorf("%d/%d packets delivered with VCs", st.PacketsOut, st.PacketsIn)
	}
	if st.RetransmittedPackets == 0 {
		t.Error("no retransmissions at 2e-2 with VCs")
	}
}
