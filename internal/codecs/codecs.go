// Package codecs implements the compression schemes from the related
// work that extend the paper's design space, and acts as the
// registration hub for every core.Codec in the repository: importing
// this package (even blank) makes the segment codec, the lossless
// baselines (huffman, rle) and the two quantized codecs defined here
// (bitplane, quant-huff) available through the core codec registry.
//
// Both codecs here build on int8 post-training quantization
// (internal/quant) and drop low-order bits as their escalation level:
//
//   - bitplane: extended-bit-plane-style compression (Cavigelli &
//     Benini): the quantized codes are zigzag-mapped so magnitude
//     concentrates in the low planes, then each remaining bit plane is
//     stored as a packed bitmask, run-length coded or collapsed to a
//     tag byte when uniform.
//   - quant-huff: quantization composed with the canonical byte-level
//     Huffman coder (variable-precision compressed weights, Liguori):
//     the zigzagged codes skew the symbol distribution enough for
//     entropy coding to bite, unlike raw float32 weight bytes.
//
// Level L of either codec drops the L low-order bits of every int8
// code before encoding; reconstruction re-centers each truncation
// bucket, so the absolute weight error is bounded by
// scale * (1/2 + 2^(L-1)) for L > 0 and scale/2 at L = 0.
package codecs

import (
	// Blank import so one import of this package registers the baseline
	// codecs too (core's segment codec registers via the core import).
	_ "repro/internal/baseline"

	"repro/internal/core"
	"repro/internal/quant"
)

// All returns every registered codec, sorted by name.
func All() []core.Codec { return core.RegisteredCodecs() }

// maxCodecParams bounds the parameter count a decoded stream may claim,
// so a corrupt count field cannot demand an arbitrary allocation before
// any payload is read. 2^28 covers the largest tensor in the model zoo
// (VGG-16's first dense layer, ~103M parameters) with headroom.
const maxCodecParams = 1 << 28

// MaxAbsError bounds the absolute reconstruction error of the quantized
// codecs at the given level for a stream quantized with params p.
func MaxAbsError(p quant.Params8, level int) float64 {
	e := 0.5
	if level > 0 {
		e += float64(int(1) << (level - 1))
	}
	return p.Scale * e
}

func init() {
	core.MustRegisterCodec(BitPlaneCodec())
	core.MustRegisterCodec(QuantHuffCodec())
	// Decode-rate models (see core.DecodeModel). Bit-plane unpacking is
	// wide but touches each plane's bitmask serially, so the front end
	// runs at half word rate; quant-huff inherits the canonical Huffman
	// decoder's bit-serial front end plus a dequantization multiply per
	// weight.
	core.MustRegisterDecodeModel(BitPlaneCodecName, core.DecodeModel{
		CyclesPerStreamWord: 2,
		WeightsPerLaneCycle: 1,
		StreamBitPJ:         0.05,
		WeightPJ:            0.10,
	})
	core.MustRegisterDecodeModel(QuantHuffCodecName, core.DecodeModel{
		CyclesPerStreamWord: 8,
		WeightsPerLaneCycle: 0.5,
		StreamBitPJ:         0.30,
		WeightPJ:            0.12,
	})
}
