package train

import (
	"errors"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// Accuracy returns the top-1 accuracy of the network on labelled samples.
func Accuracy(g *nn.Graph, samples []dataset.Sample) (float64, error) {
	return TopKAccuracy(g, samples, 1)
}

// TopKAccuracy returns the fraction of samples whose true label appears in
// the network's k highest-scoring classes.
func TopKAccuracy(g *nn.Graph, samples []dataset.Sample, k int) (float64, error) {
	if len(samples) == 0 {
		return 0, errors.New("train: no samples")
	}
	if k <= 0 {
		return 0, fmt.Errorf("train: non-positive k %d", k)
	}
	correct := 0
	for _, s := range samples {
		y, err := g.Forward(s.Image)
		if err != nil {
			return 0, err
		}
		for _, idx := range stats.TopK(y.Float64s(), k) {
			if idx == s.Label {
				correct++
				break
			}
		}
	}
	return float64(correct) / float64(len(samples)), nil
}

// Fidelity measures top-k agreement between a modified network and
// reference predictions: the fraction of probe inputs whose top-1 class
// under the modified network appears in the reference top-k. With the
// original network as its own reference it is 1.0 by construction, so the
// paper's normalized accuracy series for the large (untrainable offline)
// models are reproduced as fidelity curves; see DESIGN.md.
type Fidelity struct {
	refTopK [][]int
	k       int
}

// NewFidelity captures the reference top-k predictions of g over the probe
// inputs.
func NewFidelity(g *nn.Graph, probes []*tensor.Tensor, k int) (*Fidelity, error) {
	if len(probes) == 0 {
		return nil, errors.New("train: no probe inputs")
	}
	if k <= 0 {
		return nil, fmt.Errorf("train: non-positive k %d", k)
	}
	f := &Fidelity{k: k, refTopK: make([][]int, len(probes))}
	for i, x := range probes {
		y, err := g.Forward(x)
		if err != nil {
			return nil, err
		}
		f.refTopK[i] = stats.TopK(y.Float64s(), k)
	}
	return f, nil
}

// Score evaluates the modified network on the same probes and returns the
// agreement fraction in [0, 1].
func (f *Fidelity) Score(g *nn.Graph, probes []*tensor.Tensor) (float64, error) {
	if len(probes) != len(f.refTopK) {
		return 0, fmt.Errorf("train: %d probes, reference has %d", len(probes), len(f.refTopK))
	}
	agree := 0
	for i, x := range probes {
		y, err := g.Forward(x)
		if err != nil {
			return 0, err
		}
		top1 := stats.ArgMax(y.Float64s())
		for _, ref := range f.refTopK[i] {
			if ref == top1 {
				agree++
				break
			}
		}
	}
	return float64(agree) / float64(len(probes)), nil
}

// Overlap is a finer-grained agreement measure than Score: the mean
// fraction of the reference top-k classes that remain in the modified
// network's top-k. It resolves small perturbations that leave the top-1
// prediction inside the reference top-k (where Score saturates at 1),
// which the sensitivity analysis of Fig. 9 needs.
func (f *Fidelity) Overlap(g *nn.Graph, probes []*tensor.Tensor) (float64, error) {
	if len(probes) != len(f.refTopK) {
		return 0, fmt.Errorf("train: %d probes, reference has %d", len(probes), len(f.refTopK))
	}
	var total float64
	for i, x := range probes {
		y, err := g.Forward(x)
		if err != nil {
			return 0, err
		}
		newTop := stats.TopK(y.Float64s(), f.k)
		inNew := make(map[int]bool, len(newTop))
		for _, idx := range newTop {
			inNew[idx] = true
		}
		kept := 0
		for _, ref := range f.refTopK[i] {
			if inNew[ref] {
				kept++
			}
		}
		total += float64(kept) / float64(len(f.refTopK[i]))
	}
	return total / float64(len(probes)), nil
}

// OverlapFrom is Overlap using cached prefix activations (see ScoreFrom).
func (f *Fidelity) OverlapFrom(g *nn.Graph, acts []map[string]*tensor.Tensor, from string) (float64, error) {
	if len(acts) != len(f.refTopK) {
		return 0, fmt.Errorf("train: %d cached activations, reference has %d", len(acts), len(f.refTopK))
	}
	var total float64
	for i, a := range acts {
		y, err := g.ForwardFrom(a, from)
		if err != nil {
			return 0, err
		}
		newTop := stats.TopK(y.Float64s(), f.k)
		inNew := make(map[int]bool, len(newTop))
		for _, idx := range newTop {
			inNew[idx] = true
		}
		kept := 0
		for _, ref := range f.refTopK[i] {
			if inNew[ref] {
				kept++
			}
		}
		total += float64(kept) / float64(len(f.refTopK[i]))
	}
	return total / float64(len(f.refTopK)), nil
}

// ScoreFrom is Score using cached prefix activations: acts[i] must be the
// ForwardAll result of probe i on the *unmodified* prefix, and from names
// the first layer whose parameters changed. Only the suffix re-runs, which
// is what makes the delta sweeps on the very deep models tractable.
func (f *Fidelity) ScoreFrom(g *nn.Graph, acts []map[string]*tensor.Tensor, from string) (float64, error) {
	if len(acts) != len(f.refTopK) {
		return 0, fmt.Errorf("train: %d cached activations, reference has %d", len(acts), len(f.refTopK))
	}
	agree := 0
	for i, a := range acts {
		y, err := g.ForwardFrom(a, from)
		if err != nil {
			return 0, err
		}
		top1 := stats.ArgMax(y.Float64s())
		for _, ref := range f.refTopK[i] {
			if ref == top1 {
				agree++
				break
			}
		}
	}
	return float64(agree) / float64(len(f.refTopK)), nil
}
