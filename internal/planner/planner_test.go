package planner

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/codecs"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/train"
)

// trainedLeNet returns a quickly trained LeNet with its test set.
func trainedLeNet(t *testing.T) (*models.Model, []dataset.Sample) {
	t.Helper()
	m, err := models.LeNet5(7)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := dataset.Digits(450, 7)
	if err != nil {
		t.Fatal(err)
	}
	trainSet, testSet, err := dataset.Split(samples, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := train.NewSGD(0.05, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := train.NewTrainer(m.Graph, opt, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Fit(trainSet, 3); err != nil {
		t.Fatal(err)
	}
	return m, testSet
}

func TestGreedyValidation(t *testing.T) {
	m, testSet := trainedLeNet(t)
	acc := func() (float64, error) { return train.Accuracy(m.Graph, testSet) }
	if _, err := Greedy(m, nil, DefaultOptions()); err == nil {
		t.Error("nil accuracy func should error")
	}
	bad := DefaultOptions()
	bad.MaxAccuracyDrop = -1
	if _, err := Greedy(m, acc, bad); err == nil {
		t.Error("negative budget should error")
	}
	bad = DefaultOptions()
	bad.DeltaGrid = nil
	if _, err := Greedy(m, acc, bad); err == nil {
		t.Error("empty grid should error")
	}
	bad = DefaultOptions()
	bad.DeltaGrid = []float64{10, 5}
	if _, err := Greedy(m, acc, bad); err == nil {
		t.Error("descending grid should error")
	}
	bad = DefaultOptions()
	bad.Layers = []string{"ghost"}
	if _, err := Greedy(m, acc, bad); err == nil {
		t.Error("unknown layer should error")
	}
}

func TestGreedyRespectsBudgetAndBeatsSingleLayer(t *testing.T) {
	m, testSet := trainedLeNet(t)
	acc := func() (float64, error) { return train.Accuracy(m.Graph, testSet) }

	// Single-layer reference: the paper's policy (dense_1 only) at the
	// largest delta of the ladder that satisfies the same accuracy budget.
	base, err := acc()
	if err != nil {
		t.Fatal(err)
	}
	orig, err := m.SelectedWeights()
	if err != nil {
		t.Fatal(err)
	}
	const budget = 0.05
	singleWCR := 1.0
	for _, pct := range DefaultOptions().DeltaGrid {
		c, err := core.CompressPct(orig, pct)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := c.Decompress()
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SetSelectedWeights(approx); err != nil {
			t.Fatal(err)
		}
		a, err := acc()
		if err != nil {
			t.Fatal(err)
		}
		if a >= base-budget {
			singleWCR = core.WeightedCR(c.CompressionRatio(core.DefaultStorage), len(orig), m.TotalParams())
		}
	}
	if err := m.SetSelectedWeights(orig); err != nil {
		t.Fatal(err)
	}

	opts := DefaultOptions()
	opts.MaxAccuracyDrop = budget
	opts.MaxEvals = 400
	plan, err := Greedy(m, acc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Accuracy < plan.BaseAccuracy-opts.MaxAccuracyDrop-1e-9 {
		t.Errorf("plan accuracy %v violates budget (base %v)", plan.Accuracy, plan.BaseAccuracy)
	}
	if len(plan.Assignments) == 0 {
		t.Fatal("planner compressed nothing")
	}
	if plan.WeightedCR <= 1 {
		t.Errorf("plan WCR = %v", plan.WeightedCR)
	}
	// Multi-layer planning should match or beat the single-layer policy
	// under the same budget (single-layer is a point in its search space;
	// greedy is not exhaustive, so allow a small slack).
	if plan.WeightedCR < singleWCR*0.95 {
		t.Errorf("plan WCR %v well below single-layer %v under the same budget",
			plan.WeightedCR, singleWCR)
	}
	// The final model state must reflect the plan: measured accuracy
	// matches the reported one.
	got, err := acc()
	if err != nil {
		t.Fatal(err)
	}
	if got != plan.Accuracy {
		t.Errorf("model state accuracy %v != plan accuracy %v", got, plan.Accuracy)
	}
	if plan.Evals <= 1 || plan.Evals > opts.MaxEvals {
		t.Errorf("evals = %d", plan.Evals)
	}
}

func TestGreedyZeroBudgetStaysConservative(t *testing.T) {
	m, testSet := trainedLeNet(t)
	acc := func() (float64, error) { return train.Accuracy(m.Graph, testSet) }
	opts := DefaultOptions()
	opts.MaxAccuracyDrop = 0
	opts.MaxEvals = 200
	plan, err := Greedy(m, acc, opts)
	if err != nil {
		t.Fatal(err)
	}
	// With a zero budget every committed escalation must keep accuracy at
	// or above the baseline.
	if plan.Accuracy < plan.BaseAccuracy {
		t.Errorf("zero budget violated: %v < %v", plan.Accuracy, plan.BaseAccuracy)
	}
}

// TestGreedyTinyEvalBudgetKeepsWinner pins the eval-budget fix: when
// MaxEvals runs out mid-scan, the fully evaluated, budget-respecting
// winner must be committed, not discarded. Before the fix the outer
// `best == nil || evals >= maxEvals` break threw the escalation away and
// the plan came back empty despite a successful evaluation.
func TestGreedyTinyEvalBudgetKeepsWinner(t *testing.T) {
	m, testSet := trainedLeNet(t)
	acc := func() (float64, error) { return train.Accuracy(m.Graph, testSet) }
	opts := DefaultOptions()
	opts.MaxAccuracyDrop = 0.5 // generous: the single trial must pass the floor
	opts.MaxEvals = 2          // 1 baseline + 1 candidate, exhausted mid-scan
	plan, err := Greedy(m, acc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Evals > opts.MaxEvals {
		t.Errorf("evals = %d exceeds budget %d", plan.Evals, opts.MaxEvals)
	}
	if len(plan.Assignments) == 0 {
		t.Fatal("budget-exhausted search discarded its evaluated escalation")
	}
}

// TestGreedyMetricsCounters checks the trial counters track the search:
// planner_evals matches the reported Plan.Evals and the escalation count
// matches the committed assignments' ladder positions.
func TestGreedyMetricsCounters(t *testing.T) {
	m, testSet := trainedLeNet(t)
	acc := func() (float64, error) { return train.Accuracy(m.Graph, testSet) }
	opts := DefaultOptions()
	opts.MaxEvals = 40
	opts.Metrics = obs.NewMetrics()
	plan, err := Greedy(m, acc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := opts.Metrics.Counter("planner_evals").Value(); got != uint64(plan.Evals) {
		t.Errorf("planner_evals = %d, plan.Evals = %d", got, plan.Evals)
	}
	if opts.Metrics.Counter("planner_rounds").Value() == 0 {
		t.Error("planner_rounds not incremented")
	}
	if esc := opts.Metrics.Counter("planner_escalations").Value(); esc == 0 && len(plan.Assignments) > 0 {
		t.Error("escalations committed but planner_escalations is 0")
	}
}

// TestTrialCacheBitIdentical pins the restore cache: the approximation a
// revert reinstalls must be bit-identical to recompressing from scratch,
// and repeated restores must reuse the cached slice instead of redoing
// the O(n) compress+decompress work.
func TestTrialCacheBitIdentical(t *testing.T) {
	w := make([]float64, 700)
	for i := range w {
		w[i] = math.Sin(float64(i)*0.71) * 0.2
	}
	pairs, err := searchPairs(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ladder, err := buildLadder("layer", w, pairs, core.DefaultStorage)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range ladder {
		cached, err := tr.weights()
		if err != nil {
			t.Fatal(err)
		}
		again, err := tr.weights()
		if err != nil {
			t.Fatal(err)
		}
		if &cached[0] != &again[0] {
			t.Errorf("%s level %v: second restore recomputed instead of reusing the cache",
				tr.p.codec.Name(), tr.p.level)
		}
		fresh, err := core.CompressPct(w, tr.p.level)
		if err != nil {
			t.Fatal(err)
		}
		recomputed, err := fresh.Decompress()
		if err != nil {
			t.Fatal(err)
		}
		for i := range recomputed {
			if math.Float64bits(cached[i]) != math.Float64bits(recomputed[i]) {
				t.Fatalf("%s level %v: cached[%d] = %x, recomputed = %x",
					tr.p.codec.Name(), tr.p.level, i,
					math.Float64bits(cached[i]), math.Float64bits(recomputed[i]))
			}
		}
	}
}

// TestGreedyMixedCodecs runs the search over the full codec arena and
// checks the plan respects the budget and only assigns known codecs.
func TestGreedyMixedCodecs(t *testing.T) {
	m, testSet := trainedLeNet(t)
	acc := func() (float64, error) { return train.Accuracy(m.Graph, testSet) }
	opts := DefaultOptions()
	opts.Codecs = codecs.All()
	opts.MaxEvals = 150
	plan, err := Greedy(m, acc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Accuracy < plan.BaseAccuracy-opts.MaxAccuracyDrop-1e-9 {
		t.Errorf("plan accuracy %v violates budget (base %v)", plan.Accuracy, plan.BaseAccuracy)
	}
	if len(plan.Assignments) == 0 {
		t.Fatal("mixed-codec planner compressed nothing")
	}
	known := map[string]bool{}
	for _, c := range codecs.All() {
		known[c.Name()] = true
	}
	for _, a := range plan.Assignments {
		if !known[a.Codec] {
			t.Errorf("assignment uses unknown codec %q", a.Codec)
		}
		if a.Bits <= 0 || a.Bits >= 32*a.Params {
			t.Errorf("%s via %s: bits %d outside (0, %d)", a.Layer, a.Codec, a.Bits, 32*a.Params)
		}
		if a.CR <= 1 {
			t.Errorf("%s via %s: CR %v not > 1", a.Layer, a.Codec, a.CR)
		}
	}
	if plan.WeightedCR <= 1 {
		t.Errorf("mixed plan WCR = %v", plan.WeightedCR)
	}
}

// TestGreedyDeterministic runs the same search twice on identically
// built and trained models and requires identical plans — the property
// the race-enabled verify.sh run exercises for the whole suite.
func TestGreedyDeterministic(t *testing.T) {
	run := func() *Plan {
		m, testSet := trainedLeNet(t)
		acc := func() (float64, error) { return train.Accuracy(m.Graph, testSet) }
		opts := DefaultOptions()
		opts.Codecs = codecs.All()
		opts.MaxEvals = 60
		plan, err := Greedy(m, acc, opts)
		if err != nil {
			t.Fatal(err)
		}
		return plan
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("plans differ across identical runs:\n%+v\n%+v", a, b)
	}
}

func TestGreedyLayerFilter(t *testing.T) {
	m, testSet := trainedLeNet(t)
	acc := func() (float64, error) { return train.Accuracy(m.Graph, testSet) }
	opts := DefaultOptions()
	opts.Layers = []string{"dense_2"}
	opts.MaxEvals = 100
	plan, err := Greedy(m, acc, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range plan.Assignments {
		if a.Layer != "dense_2" {
			t.Errorf("assignment outside filter: %s", a.Layer)
		}
	}
}
