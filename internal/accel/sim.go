package accel

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// ErrDataLoss reports that injected faults permanently dropped NoC
// packets (retry budget exhausted or destination unroutable), so the
// layer's dataflow can never complete. Callers detect it with
// errors.Is and treat the configuration as failed rather than hung.
var ErrDataLoss = errors.New("accel: packets permanently lost to faults")

// Simulator executes layer specs on the accelerator platform.
//
// A Simulator is immutable after construction apart from SetWorkers and is
// safe for concurrent use: SimulateLayer checks a fresh, fully reset
// layerScratch out of an internal sync.Pool on every call (reusing the
// noc.Network and per-PE/per-MI runtime state across layers instead of
// reallocating them), and otherwise only reads the shared
// cfg/pes/assign/peIdx/miPEs fields. Config and LayerSpec are plain
// value types with no interior mutability, so specs may be shared
// freely across goroutines. Every scratch is reset to an identical
// state before use, so results do not depend on pool scheduling.
type Simulator struct {
	cfg     Config
	pes     []int
	assign  map[int]int // PE node -> memory interface node
	peIdx   map[int]int // PE node -> dense index into layerScratch.pes
	peMI    []int       // per PE index: dense index of its MI into layerScratch.mis
	miPEs   [][]int     // per MemNodes index: assigned PE nodes, ascending
	workers int
	obsv    *obs.Observer // nil = all instrumentation disabled (zero cost)
	pool    sync.Pool     // *layerScratch
}

// NewSimulator validates the configuration and precomputes the PE to
// memory-interface assignment.
func NewSimulator(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{cfg: cfg, pes: cfg.peNodes(), assign: cfg.assignPEs(), workers: 1}
	s.peIdx = make(map[int]int, len(s.pes))
	for i, p := range s.pes {
		s.peIdx[p] = i
	}
	s.miPEs = make([][]int, len(cfg.MemNodes))
	s.peMI = make([]int, len(s.pes))
	for mi, m := range cfg.MemNodes {
		for _, p := range s.pes {
			if s.assign[p] == m {
				s.miPEs[mi] = append(s.miPEs[mi], p)
				s.peMI[s.peIdx[p]] = mi
			}
		}
	}
	return s, nil
}

// Config returns the platform configuration.
func (s *Simulator) Config() Config { return s.cfg }

// SetWorkers sets the number of goroutines SimulateModel uses to simulate
// independent layers; n < 1 selects runtime.GOMAXPROCS(0). Call before
// handing the Simulator to concurrent users — it is the one mutating
// method.
func (s *Simulator) SetWorkers(n int) { s.workers = parallel.Workers(n) }

// SetObserver installs the observability sink: per-layer trace buffers
// (DRAM/compute phase spans plus the NoC packet lifecycle) and the
// metrics registry (cycle tiers, traffic counters, latency histogram).
// nil (the default) disables everything at zero cost. Like SetWorkers,
// call before handing the Simulator to concurrent users. Metric values
// and exported traces are deterministic at any worker count: counters
// are additive atomics and trace buffers are keyed by (model, layer
// index), never by completion order.
func (s *Simulator) SetObserver(o *obs.Observer) { s.obsv = o }

// SimulateModel runs every layer and aggregates the results. Layers are
// independent — each SimulateLayer call owns its noc.Network — so they are
// simulated concurrently on the configured worker count; results are
// collected by layer index, making the aggregate identical to a serial
// run regardless of worker count.
func (s *Simulator) SimulateModel(modelName string, specs []LayerSpec) (*Result, error) {
	return s.SimulateModelContext(context.Background(), modelName, specs)
}

// SimulateModelContext is SimulateModel bounded by a context: layer
// simulations poll ctx and abandon the run promptly when it is canceled
// or its deadline passes.
func (s *Simulator) SimulateModelContext(ctx context.Context, modelName string, specs []LayerSpec) (*Result, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("accel: no layer specs")
	}
	layers, err := parallel.Map(ctx, s.workers, len(specs),
		func(ctx context.Context, i int) (LayerResult, error) {
			lr, err := s.simulateLayer(ctx, specs[i], s.obsv.LayerBuffer(modelName, i, specs[i].Name))
			if err != nil {
				return LayerResult{}, fmt.Errorf("accel: layer %q: %w", specs[i].Name, err)
			}
			return lr, nil
		})
	if err != nil {
		return nil, err
	}
	res := &Result{Model: modelName}
	for _, lr := range layers {
		res.accumulate(lr)
	}
	return res, nil
}

// message metadata kinds. peIdx is the dense index into
// layerScratch.pes, carried so the delivery sink avoids a map lookup.
type fetchMeta struct {
	pe, peIdx, round int
}
type outputMeta struct {
	pe, peIdx, round int
}

// dramJob is one main-memory transaction at a memory interface.
type dramJob struct {
	words   uint64
	isWrite bool
	pe      int
	peIdx   int
	round   int
	// readyAt is the cycle the controller first knew about this job
	// (writeback delivery, or a read's prefetch window opening). In
	// overlap mode the request overlaps the previous burst from readyAt
	// on, so only max(0, readyAt+DRAMLatency-start) of the fixed request
	// latency stays exposed. Serial mode ignores it.
	readyAt uint64
}

// miSlot is one assigned PE's fetch stream at a memory interface: read
// jobs are constructed on the fly from (words, nextRead) instead of
// being materialized per round.
type miSlot struct {
	pe       int    // PE node id
	peIdx    int    // dense index into layerScratch.pes
	words    uint64 // DRAM words per fetch round
	nextRead int    // next round to issue
}

// phase span names emitted per layer when tracing is enabled.
const (
	spanDRAMRead  = "dram_read"  // weight/input fetch at a memory interface
	spanDRAMWrite = "dram_write" // output writeback at a memory interface
	spanMAC       = "mac"        // per-round PE compute
	spanDecompMAC = "decompress+mac"
	// Overlap-mode spans: the decompression unit refilling a tile, and
	// the MAC lanes sitting idle on a tile that arrived but is not yet
	// decoded.
	spanDecode      = "decode"
	spanDecodeStall = "decode_stall"
)

// miState is the runtime state of one memory interface. The writeback
// queue is a head-indexed ring (like noc's flit queues) so its backing
// array is reused across the layer, and the in-service job is held by
// value to avoid a per-job heap allocation.
type miState struct {
	node     int
	slots    []miSlot
	writes   []dramJob // pending writeback jobs; wHead is the queue head
	wHead    int
	current  dramJob
	busy     bool // current holds an in-service job
	startAt  uint64
	finishAt uint64
}

// pushWrite appends a writeback job, compacting the ring when the tail
// reaches the backing array's capacity.
func (mi *miState) pushWrite(j dramJob) {
	if mi.wHead > 0 && len(mi.writes) == cap(mi.writes) {
		n := copy(mi.writes, mi.writes[mi.wHead:])
		mi.writes = mi.writes[:n]
		mi.wHead = 0
	}
	mi.writes = append(mi.writes, j)
}

// popWrite removes the head writeback job; the queue must be non-empty.
func (mi *miState) popWrite() dramJob {
	j := mi.writes[mi.wHead]
	mi.wHead++
	if mi.wHead == len(mi.writes) {
		mi.writes = mi.writes[:0]
		mi.wHead = 0
	}
	return j
}

// writesPending returns the queued writeback count.
func (mi *miState) writesPending() int { return len(mi.writes) - mi.wHead }

// peState is the runtime state of one PE. The per-round bookkeeping is
// round-indexed slices (rounds are dense in [0, simRounds)), reused
// across layers by the scratch pool.
type peState struct {
	node, mi  int
	round     int
	computing bool
	busyUntil uint64
	done      bool
	arrived   []int32 // per round: packets arrived
	expected  []int32 // per round: packets expected (set at injection)
	issued    []bool  // per round: fetch issued

	// Streaming-overlap pipeline state (unused in serial mode). The
	// decompression unit is a second stage between arrival and the MAC
	// lanes: it refills tile decRound while the MACs consume tile round,
	// double-buffered (decRound <= round+1).
	decRound    int    // next round the decompression unit will refill
	decoding    bool   // decompression unit busy
	decodeFrom  uint64 // cycle the in-flight decode started (span emission)
	decodeUntil uint64 // cycle the in-flight decode completes
	decoded     []bool // per round: tile consumable by the MAC lanes
	arriveAt    []uint64 // per round: cycle the tile's last packet arrived
	roundSince  uint64 // cycle round attained its value (read-readiness for MI request pipelining)
	macFreeAt   uint64 // cycle the MAC lanes last went idle (stall span start)
}

// layerScratch is the reusable per-layer runtime state: the mesh
// network plus PE and MI bookkeeping. Simulator pools these so
// SimulateModel's per-layer allocations are O(1) amortized.
type layerScratch struct {
	nw  *noc.Network
	pes []peState
	mis []miState
}

// getScratch checks a scratch out of the pool, constructing one on
// first use. The network is reset; per-layer fields are reset by
// SimulateLayerContext once the layer's round count is known.
func (s *Simulator) getScratch() (*layerScratch, error) {
	if sc, _ := s.pool.Get().(*layerScratch); sc != nil {
		sc.nw.Reset()
		return sc, nil
	}
	nw, err := noc.New(s.cfg.Mesh)
	if err != nil {
		return nil, err
	}
	sc := &layerScratch{
		nw:  nw,
		pes: make([]peState, len(s.pes)),
		mis: make([]miState, len(s.cfg.MemNodes)),
	}
	for i, p := range s.pes {
		sc.pes[i] = peState{node: p, mi: s.assign[p]}
	}
	for mi, m := range s.cfg.MemNodes {
		slots := make([]miSlot, len(s.miPEs[mi]))
		for k, p := range s.miPEs[mi] {
			slots[k] = miSlot{pe: p, peIdx: s.peIdx[p]}
		}
		sc.mis[mi] = miState{node: m, slots: slots}
	}
	return sc, nil
}

// growInt32 returns s resized to n elements, all zero, reusing capacity.
func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// growBool returns s resized to n elements, all false, reusing capacity.
func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// growUint64 returns s resized to n elements, all zero, reusing capacity.
func growUint64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// layerGeometry is the per-layer derived tiling.
type layerGeometry struct {
	flow         Dataflow
	rounds       int
	simRounds    int
	wBytesPE     uint64 // per PE, whole layer
	iBytesPE     uint64
	oBytesPE     uint64
	computeRound uint64 // compute cycles per round per PE
	opsTotal     uint64
	// Overlap mode only: the decompression unit as its own pipeline
	// stage. In serial mode decodeRound stays 0 and decompression
	// throughput folds into computeRound as before.
	decodeRound     uint64 // decompression-unit cycles per tile per PE
	streamBitsRound uint64 // compressed stream bits per tile per PE
	weightsRound    uint64 // weights regenerated per tile per PE
}

const (
	flitBytes     = 8
	wordBytes     = 8
	maxLayerCycle = 500_000_000
	// localMemUtil is the fraction of the scratchpad usable for tiles
	// (the rest holds control state and double-buffer slack).
	localMemUtil = 0.9
	// haloFactor inflates striped input fetches for the overlapping rows
	// spatially partitioned convolutions need.
	haloFactor = 1.1
)

func ceilDiv(a, b uint64) uint64 {
	if b == 0 {
		return 0
	}
	return (a + b - 1) / b
}

// dramServiceCycles returns the transfer time of a burst at the sustained
// DRAM bandwidth (words per cycle, possibly fractional): the exact ceiling
// of words/wordsPerCy, never below one cycle.
//
// Integer and reciprocal-integer bandwidths — every configuration the
// platform uses — are computed in exact integer arithmetic; other
// fractional rates fall back to math.Ceil. The former float-epsilon
// ceiling (quotient + 0.999999 truncated) was wrong at both ends: above
// ~1e15 the added epsilon rounds an exact multiple up a full cycle, and a
// quotient with a fractional part under 1e-6 loses its partial cycle
// entirely — for large bursts the epsilon vanishes into the float64
// granularity.
func dramServiceCycles(words uint64, wordsPerCy float64) uint64 {
	if wordsPerCy <= 0 {
		return words
	}
	var c uint64
	inv := 1 / wordsPerCy
	switch {
	case wordsPerCy >= 1 && wordsPerCy <= 1e15 && wordsPerCy == math.Trunc(wordsPerCy):
		c = ceilDiv(words, uint64(wordsPerCy))
	case wordsPerCy < 1 && inv <= 1e9 && inv == math.Trunc(inv) && words < (1<<54):
		c = words * uint64(inv)
	default:
		c = uint64(math.Ceil(float64(words) / wordsPerCy))
	}
	if c < 1 {
		c = 1
	}
	return c
}

// exposedLatency returns the visible DRAM request latency of a job that
// starts service at now. Serial mode always pays the full latency with
// the interface blocked. Overlap mode pipelines requests: the
// controller issues a request the moment the job is known (readyAt),
// concurrently with whatever burst is in flight, so only the part of
// the latency extending past now stays exposed — back-to-back bursts
// hide it entirely, and a burst into an idle interface still pays in
// full (an idle interface starts a ready job the cycle it appears, so
// now-readyAt never silently grows while idle).
func exposedLatency(overlap bool, dramLatency, readyAt, now uint64) uint64 {
	if !overlap {
		return dramLatency
	}
	if readyAt+dramLatency <= now {
		return 0
	}
	return readyAt + dramLatency - now
}

// geometry derives the tiling and per-round quantities for a layer.
func (s *Simulator) geometry(spec LayerSpec) layerGeometry {
	numPEs := uint64(len(s.pes))
	g := layerGeometry{flow: spec.Flow(len(s.pes))}

	switch g.flow {
	case ConvFlow:
		// Spatial partitioning: weights broadcast, input striped.
		g.wBytesPE = spec.WeightBytes
		g.iBytesPE = uint64(float64(spec.InputBytes)*haloFactor) / numPEs
		g.oBytesPE = spec.OutputBytes / numPEs
	default:
		// Output-neuron partitioning: weights striped, input broadcast.
		g.wBytesPE = spec.WeightBytes / numPEs
		g.iBytesPE = spec.InputBytes
		g.oBytesPE = spec.OutputBytes / numPEs
	}
	if g.wBytesPE == 0 && spec.WeightBytes > 0 {
		g.wBytesPE = 1
	}
	if g.iBytesPE == 0 && spec.InputBytes > 0 {
		g.iBytesPE = 1
	}
	if g.oBytesPE == 0 && spec.OutputBytes > 0 {
		g.oBytesPE = 1
	}

	perPE := g.wBytesPE + g.iBytesPE + g.oBytesPE
	eff := uint64(float64(s.cfg.LocalMemBytes) * localMemUtil)
	g.rounds = int(ceilDiv(perPE, eff))
	if g.rounds < 1 {
		g.rounds = 1
	}
	// A finer tiling than capacity requires is always valid (smaller
	// tiles fit a fortiori); the overlap planner uses this to shrink
	// pipeline fill. Coarser-than-capacity overrides are ignored.
	if spec.RoundsOverride > g.rounds {
		g.rounds = spec.RoundsOverride
	}
	g.simRounds = g.rounds
	if g.simRounds > s.cfg.MaxSimRounds {
		g.simRounds = s.cfg.MaxSimRounds
	}

	// Computation: MACs, with a floor of one op per output value so
	// parameter-free layers (pooling, BN scale/shift) still take time.
	outVals := spec.OutputBytes / bytesPerValue
	g.opsTotal = spec.MACs
	if g.opsTotal < outVals {
		g.opsTotal = outVals
	}
	opsPE := g.opsTotal / numPEs
	opsRound := ceilDiv(opsPE, uint64(g.rounds))
	g.computeRound = ceilDiv(opsRound, uint64(s.cfg.MACsPerCycle()))
	if spec.Compressed {
		wcPE := spec.WeightCount / numPEs
		if g.flow == ConvFlow {
			wcPE = spec.WeightCount
		}
		wcRound := ceilDiv(wcPE, uint64(g.rounds))
		if s.cfg.Overlap {
			// Streaming mode: decompression is its own double-buffered
			// pipeline stage, costed by the codec's decode-rate model,
			// not folded into the MAC time.
			g.weightsRound = wcRound
			g.streamBitsRound = ceilDiv(g.wBytesPE, uint64(g.rounds)) * 8
			dm := core.LookupDecodeModel(spec.Codec)
			g.decodeRound = dm.TileCycles(g.streamBitsRound, wcRound, s.cfg.DecompUnits)
		} else if d := ceilDiv(wcRound, uint64(s.cfg.DecompUnits)); d > g.computeRound {
			g.computeRound = d
		}
	}
	if g.computeRound < 1 {
		g.computeRound = 1
	}

	return g
}

// SimulateLayer runs one layer cycle-accurately for up to MaxSimRounds
// tiling rounds and extrapolates the steady state to the full round count.
func (s *Simulator) SimulateLayer(spec LayerSpec) (LayerResult, error) {
	return s.SimulateLayerContext(context.Background(), spec)
}

// SimulateLayerContext is SimulateLayer bounded by a context, polled
// every few thousand simulated cycles so a deadline or cancellation
// interrupts even a degenerate configuration mid-layer.
func (s *Simulator) SimulateLayerContext(ctx context.Context, spec LayerSpec) (LayerResult, error) {
	return s.simulateLayer(ctx, spec, s.obsv.LayerBuffer(spec.Name, 0, spec.Name))
}

// simulateLayer is the cycle loop, with buf (possibly nil) receiving the
// layer's phase spans and NoC packet lifecycle. The disabled path costs
// one pointer comparison per emission site and zero allocations.
func (s *Simulator) simulateLayer(ctx context.Context, spec LayerSpec, buf *obs.Buffer) (LayerResult, error) {
	if err := spec.Validate(); err != nil {
		return LayerResult{}, err
	}
	g := s.geometry(spec)
	sc, err := s.getScratch()
	if err != nil {
		return LayerResult{}, err
	}
	defer s.pool.Put(sc)
	nw := sc.nw
	if buf != nil {
		nw.SetTrace(buf)
	}
	if m := s.obsv.M(); m != nil {
		nw.SetLatencyHistogram(m.Histogram("noc_packet_latency_cycles", obs.Pow2Buckets(24)))
	}
	overlap := s.cfg.Overlap
	compSpan := spanMAC
	if spec.Compressed && !overlap {
		compSpan = spanDecompMAC // in overlap mode decode gets its own span
	}

	// Per-round per-PE message sizes (bytes).
	wRound := ceilDiv(g.wBytesPE, uint64(g.rounds))
	iRound := ceilDiv(g.iBytesPE, uint64(g.rounds))
	oRound := ceilDiv(g.oBytesPE, uint64(g.rounds))
	fetchFlits := int(ceilDiv(wRound+iRound, flitBytes))
	outFlits := int(ceilDiv(oRound, flitBytes))
	// DRAM read cost per fetch: broadcast data (weights under ConvFlow,
	// the input under FCFlow) is read once per memory interface and
	// replicated over the NoC; per-PE data is read per PE. When
	// WeightBytesDRAM differs from WeightBytes (memory-side decompression
	// ablation), the DRAM-side weight component scales accordingly —
	// exact ceiling arithmetic, like dramServiceCycles, so a partial
	// trailing word is never truncated away.
	wDRAM := wRound
	if spec.WeightBytesDRAM != 0 && spec.WeightBytes != 0 {
		wDRAM = ceilDiv(wRound*spec.WeightBytesDRAM, spec.WeightBytes)
	}
	var fetchWordsFirst, fetchWordsRest uint64
	if g.flow == ConvFlow {
		// Shared part = weights, own part = input stripe.
		fetchWordsFirst = ceilDiv(wDRAM+iRound, wordBytes)
		fetchWordsRest = ceilDiv(iRound, wordBytes)
	} else {
		// Shared part = input, own part = weight slice.
		fetchWordsFirst = ceilDiv(iRound+wDRAM, wordBytes)
		fetchWordsRest = ceilDiv(wDRAM, wordBytes)
	}

	// Reset the pooled runtime state for this layer's round count.
	for i := range sc.pes {
		pe := &sc.pes[i]
		pe.round, pe.computing, pe.done, pe.busyUntil = 0, false, false, 0
		pe.arrived = growInt32(pe.arrived, g.simRounds)
		pe.expected = growInt32(pe.expected, g.simRounds)
		pe.issued = growBool(pe.issued, g.simRounds)
		pe.decRound, pe.decoding, pe.decodeFrom, pe.decodeUntil = 0, false, 0, 0
		pe.roundSince, pe.macFreeAt = 0, 0
		pe.decoded = growBool(pe.decoded, g.simRounds)
		pe.arriveAt = growUint64(pe.arriveAt, g.simRounds)
	}
	for i := range sc.mis {
		mi := &sc.mis[i]
		mi.busy, mi.finishAt = false, 0
		mi.writes = mi.writes[:0]
		mi.wHead = 0
		for k := range mi.slots {
			sl := &mi.slots[k]
			sl.nextRead = 0
			sl.words = fetchWordsFirst
			if k > 0 {
				sl.words = fetchWordsRest
			}
			if sl.words == 0 {
				sl.words = 1 // job bookkeeping still costs a beat
			}
		}
	}

	var dramReadWords, dramWriteWords uint64
	var lat LatencyBreakdown

	nw.SetSink(func(d noc.Delivery) {
		switch meta := d.Packet.Meta.(type) {
		case fetchMeta:
			pe := &sc.pes[meta.peIdx]
			pe.arrived[meta.round]++
			pe.arriveAt[meta.round] = d.Cycle // last write = tile arrival complete
		case outputMeta:
			// One write job per delivered packet, sized by the packet.
			mi := &sc.mis[s.peMI[meta.peIdx]]
			mi.pushWrite(dramJob{words: uint64(d.Packet.Flits), isWrite: true, pe: meta.pe, peIdx: meta.peIdx, round: meta.round, readyAt: d.Cycle})
			if buf != nil {
				buf.Instant("eject", "noc", d.Packet.Dst, d.Cycle,
					obs.KV{K: "pe", V: uint64(meta.pe)}, obs.KV{K: "round", V: uint64(meta.round)})
			}
		}
	})

	outstandingWrites := 0
	done := func() bool {
		for i := range sc.pes {
			if !sc.pes[i].done {
				return false
			}
		}
		if outstandingWrites > 0 {
			return false
		}
		for i := range sc.mis {
			if sc.mis[i].busy || sc.mis[i].writesPending() > 0 {
				return false
			}
		}
		return nw.Idle()
	}

	dramLatency := uint64(s.cfg.Energy.DRAMLatency)
	for iter := 0; !done(); iter++ {
		now := nw.Cycle()
		if now > maxLayerCycle {
			return LayerResult{}, fmt.Errorf("accel: layer %q exceeded %d cycles", spec.Name, maxLayerCycle)
		}
		if iter&0x3ff == 0 {
			if err := ctx.Err(); err != nil {
				return LayerResult{}, err
			}
		}
		// Fail fast on permanent packet loss: the dataflow waits on data
		// that will never arrive, so the layer can only time out.
		if dropped := nw.DroppedPackets(); dropped > 0 {
			return LayerResult{}, fmt.Errorf("%w (%d packets)", ErrDataLoss, dropped)
		}

		memBusy := false
		// Memory interfaces.
		for miI := range sc.mis {
			mi := &sc.mis[miI]
			if mi.busy {
				if now >= mi.finishAt {
					job := mi.current
					mi.busy = false
					if buf != nil {
						name := spanDRAMRead
						if job.isWrite {
							name = spanDRAMWrite
						}
						buf.Span(name, "memory", mi.node, mi.startAt, mi.finishAt-mi.startAt,
							obs.KV{K: "pe", V: uint64(job.pe)}, obs.KV{K: "round", V: uint64(job.round)}, obs.KV{K: "words", V: job.words})
					}
					if job.isWrite {
						dramWriteWords += job.words
						outstandingWrites--
					} else {
						dramReadWords += job.words
						n, err := nw.SendMessage(mi.node, job.pe, fetchFlits, fetchMeta{pe: job.pe, peIdx: job.peIdx, round: job.round})
						if err != nil {
							return LayerResult{}, err
						}
						pe := &sc.pes[job.peIdx]
						pe.expected[job.round] = int32(n)
						pe.issued[job.round] = true
					}
				} else {
					memBusy = true
				}
			}
			if !mi.busy {
				// Prefer writebacks, then reads (double-buffered: at most
				// one round ahead of the PE's current round).
				if mi.writesPending() > 0 {
					mi.current = mi.popWrite()
					mi.busy = true
					mi.startAt = now
					mi.finishAt = now + exposedLatency(overlap, dramLatency, mi.current.readyAt, now) +
						dramServiceCycles(mi.current.words, s.cfg.Energy.DRAMWordsPerCy)
					memBusy = true
				} else {
					for k := range mi.slots {
						sl := &mi.slots[k]
						r := sl.nextRead
						if r >= g.simRounds {
							continue
						}
						if r > sc.pes[sl.peIdx].round+1 {
							continue // respect double buffering
						}
						// A read becomes known when its prefetch window
						// opens: rounds 0 and 1 at layer start, round r
						// when the PE advanced to r-1. (If the PE is
						// already past r-1 the window opened at some
						// earlier advance; readyAt 0 keeps the request
						// fully pipelined, which is what a backlogged
						// interface sees anyway.)
						var ready uint64
						if overlap && r > 1 {
							if pe := &sc.pes[sl.peIdx]; pe.round == r-1 {
								ready = pe.roundSince
							}
						}
						sl.nextRead++
						mi.current = dramJob{words: sl.words, pe: sl.pe, peIdx: sl.peIdx, round: r, readyAt: ready}
						mi.busy = true
						mi.startAt = now
						mi.finishAt = now + exposedLatency(overlap, dramLatency, ready, now) +
							dramServiceCycles(sl.words, s.cfg.Energy.DRAMWordsPerCy)
						memBusy = true
						break
					}
				}
			}
		}

		// PEs.
		compBusy := false
		stallBusy := false
		for i := range sc.pes {
			pe := &sc.pes[i]
			if pe.done {
				continue
			}
			if !overlap {
				// Serial ship-then-compute schedule (unchanged).
				if pe.computing {
					if now >= pe.busyUntil {
						pe.computing = false
						if buf != nil {
							buf.Span(compSpan, "compute", pe.node, pe.busyUntil-g.computeRound, g.computeRound,
								obs.KV{K: "round", V: uint64(pe.round)})
						}
						if outFlits > 0 {
							npkts, err := nw.SendMessage(pe.node, pe.mi, outFlits, outputMeta{pe: pe.node, peIdx: i, round: pe.round})
							if err != nil {
								return LayerResult{}, err
							}
							outstandingWrites += npkts
						}
						pe.round++
						if pe.round >= g.simRounds {
							pe.done = true
							continue
						}
					} else {
						compBusy = true
						continue
					}
				}
				if !pe.computing {
					if pe.issued[pe.round] && pe.arrived[pe.round] == pe.expected[pe.round] && pe.expected[pe.round] > 0 {
						pe.computing = true
						pe.busyUntil = now + g.computeRound
						compBusy = true
					} else if fetchFlits == 0 {
						// Degenerate layer with no inbound data: compute directly.
						pe.computing = true
						pe.busyUntil = now + g.computeRound
						compBusy = true
					}
				}
				continue
			}

			// Streaming pipeline: MAC completion, then decode completion,
			// then decode start, then MAC start — ordered so a finished
			// MAC round releases its buffer to the decompression unit and
			// a finished decode feeds the MAC lanes in the same cycle.
			if pe.computing && now >= pe.busyUntil {
				pe.computing = false
				pe.macFreeAt = now
				if buf != nil {
					buf.Span(compSpan, "compute", pe.node, pe.busyUntil-g.computeRound, g.computeRound,
						obs.KV{K: "round", V: uint64(pe.round)})
				}
				if outFlits > 0 {
					npkts, err := nw.SendMessage(pe.node, pe.mi, outFlits, outputMeta{pe: pe.node, peIdx: i, round: pe.round})
					if err != nil {
						return LayerResult{}, err
					}
					outstandingWrites += npkts
				}
				pe.round++
				pe.roundSince = now
				if pe.round >= g.simRounds {
					pe.done = true
					continue
				}
			}
			// Decode completion: the tile is consumable once the unit has
			// spent its decodeRound cycles AND the stream has fully
			// landed — streaming ingest works on flits as they arrive, so
			// a slow NoC extends the decode, never the other way round.
			if pe.decoding && now >= pe.decodeUntil {
				d := pe.decRound
				if pe.arrived[d] == pe.expected[d] && pe.expected[d] > 0 {
					pe.decoding = false
					pe.decoded[d] = true
					if buf != nil {
						buf.Span(spanDecode, "decompress", pe.node, pe.decodeFrom, now-pe.decodeFrom,
							obs.KV{K: "round", V: uint64(d)})
					}
					pe.decRound++
				}
			}
			// Refill: the unit starts on the first flits of tile decRound,
			// provided it is free and the tile's buffer is available
			// (double-buffered: at most one tile ahead of the one the MACs
			// consume). Tiles with no decode work become consumable the
			// moment they fully arrive.
			for !pe.decoding && pe.decRound < g.simRounds && pe.decRound <= pe.round+1 {
				d := pe.decRound
				if g.decodeRound == 0 {
					if pe.issued[d] && pe.arrived[d] == pe.expected[d] && pe.expected[d] > 0 {
						pe.decoded[d] = true
						pe.decRound++
						continue
					}
					break
				}
				if pe.arrived[d] == 0 {
					break
				}
				pe.decoding = true
				pe.decodeFrom = now
				pe.decodeUntil = now + g.decodeRound
			}
			if pe.computing {
				compBusy = true
				continue
			}
			switch {
			case pe.decoded[pe.round]:
				if buf != nil {
					// A late decode shows as a stall span covering the
					// gap between MAC readiness (tile arrived, lanes
					// free) and this start.
					from := pe.arriveAt[pe.round]
					if pe.macFreeAt > from {
						from = pe.macFreeAt
					}
					if now > from {
						buf.Span(spanDecodeStall, "compute", pe.node, from, now-from,
							obs.KV{K: "round", V: uint64(pe.round)})
					}
				}
				pe.computing = true
				pe.busyUntil = now + g.computeRound
				compBusy = true
			case fetchFlits == 0:
				// Degenerate layer with no inbound data: compute directly.
				pe.computing = true
				pe.busyUntil = now + g.computeRound
				compBusy = true
			case pe.issued[pe.round] && pe.arrived[pe.round] == pe.expected[pe.round] && pe.expected[pe.round] > 0:
				// The tile is on chip but the decompression unit has not
				// made it consumable: the MAC lanes are decode-stalled.
				stallBusy = true
			}
		}

		// Idle-cycle fast-forward: when the NoC holds no flits, nothing
		// can change until the earliest pending DRAM completion or PE
		// compute completion — MIs cannot start jobs (startable jobs were
		// started this iteration and unblocking needs a delivery or a
		// round advance), PEs cannot start or finish before busyUntil,
		// and an idle network stays idle because nothing is injected.
		// Every skipped cycle would take the same attribution branch (the
		// busy flags are frozen with the state), so jumping the clock is
		// exactly equivalent to stepping through the gap.
		if nw.Idle() {
			next := uint64(math.MaxUint64)
			for i := range sc.mis {
				if sc.mis[i].busy && sc.mis[i].finishAt < next {
					next = sc.mis[i].finishAt
				}
			}
			for i := range sc.pes {
				pe := &sc.pes[i]
				if pe.done {
					continue
				}
				if pe.computing && pe.busyUntil < next {
					next = pe.busyUntil
				}
				// A decode whose cycle budget already elapsed waits on
				// arrival (a delivery or MI event), not on its own timer.
				if pe.decoding && pe.decodeUntil > now && pe.decodeUntil < next {
					next = pe.decodeUntil
				}
			}
			// No pending event with work remaining means a deadlocked
			// configuration: fall through and let the per-cycle loop hit
			// the maxLayerCycle guard exactly as before.
			if next != math.MaxUint64 && next > now+1 {
				if next > maxLayerCycle+1 {
					next = maxLayerCycle + 1
				}
				delta := next - now
				switch {
				case overlap && compBusy:
					lat.Computation += delta
				case overlap && stallBusy:
					lat.DecodeStall += delta
				case memBusy:
					lat.Memory += delta
				case compBusy:
					lat.Computation += delta
				default:
					lat.Communication += delta // handshake bubbles
				}
				nw.AdvanceIdle(next)
				continue
			}
		}

		// Attribute this cycle, then advance the network. Serial mode
		// keeps the paper's priority (memory over communication over
		// computation). Overlap mode inverts it: a cycle where any MAC
		// lane progresses is compute, a compute-idle cycle waiting only
		// on the decompression unit is a decode stall, and what remains
		// is the *exposed* memory/communication time the double
		// buffering failed to hide (see LatencyBreakdown).
		commBusy := !nw.Idle()
		switch {
		case overlap && compBusy:
			lat.Computation++
		case overlap && stallBusy:
			lat.DecodeStall++
		case memBusy:
			lat.Memory++
		case commBusy:
			lat.Communication++
		case compBusy:
			lat.Computation++
		default:
			lat.Communication++ // handshake bubbles
		}
		nw.Step()
	}

	// Extrapolate the simulated rounds to the full layer.
	scale := float64(g.rounds) / float64(g.simRounds)
	simCycles := nw.Cycle()
	st := nw.Stats()

	var traffic Traffic
	traffic.NoCFlits = st.FlitsInjected
	traffic.FlitHops = st.RouterTraverse
	traffic.LinkHops = st.LinkTraverse
	traffic.DRAMReadWords = dramReadWords
	traffic.DRAMWriteWords = dramWriteWords
	traffic.CorruptFlits = st.CorruptFlits
	traffic.Retransmits = st.RetransmittedPackets
	traffic.scale(scale)
	lat.scale(scale)
	cycles := uint64(float64(simCycles) * scale)

	lr := LayerResult{
		Name:      spec.Name,
		Kind:      spec.Kind,
		Flow:      g.flow,
		Cycles:    cycles,
		Latency:   lat,
		Traffic:   traffic,
		Rounds:    g.rounds,
		SimRounds: g.simRounds,
	}
	lr.Energy = s.layerEnergy(spec, g, lr)
	if buf != nil {
		// The whole layer as one span over the simulated (pre-scale)
		// cycles; extrapolated rounds are not traced, only counted.
		buf.Span(spec.Name, "layer", -1, 0, simCycles,
			obs.KV{K: "rounds", V: uint64(g.rounds)}, obs.KV{K: "sim_rounds", V: uint64(g.simRounds)})
	}
	if m := s.obsv.M(); m != nil {
		// Counters add the post-scale values, so metric totals match the
		// reported Result regardless of how many rounds were simulated.
		m.Counter("accel_layers").Inc()
		m.Counter("accel_cycles_total").Add(lr.Cycles)
		m.Counter("accel_cycles_memory").Add(lat.Memory)
		m.Counter("accel_cycles_communication").Add(lat.Communication)
		m.Counter("accel_cycles_computation").Add(lat.Computation)
		if overlap {
			// Only registered in overlap mode so serial-mode metric
			// dumps stay byte-identical to the pre-overlap goldens.
			m.Counter("accel_cycles_decode_stall").Add(lat.DecodeStall)
		}
		m.Counter("accel_dram_read_words").Add(traffic.DRAMReadWords)
		m.Counter("accel_dram_write_words").Add(traffic.DRAMWriteWords)
		m.Counter("accel_noc_flits").Add(traffic.NoCFlits)
		m.Counter("accel_energy_pj").Add(uint64(lr.Energy.Total()))
		occ := m.Histogram("noc_router_traversals", obs.Pow2Buckets(24))
		for _, v := range nw.PerRouterTraversals() {
			occ.Observe(v)
		}
	}
	return lr, nil
}

// layerEnergy back-annotates the energy breakdown from the (extrapolated)
// activity counters plus the analytic computation counts.
func (s *Simulator) layerEnergy(spec LayerSpec, g layerGeometry, lr LayerResult) EnergyBreakdown {
	p := s.cfg.Energy
	var e EnergyBreakdown

	// Communication.
	e.CommDyn = float64(lr.Traffic.FlitHops)*p.RouterFlitPJ + float64(lr.Traffic.LinkHops)*p.LinkFlitPJ
	routers := float64(s.cfg.Mesh.Width * s.cfg.Mesh.Height)
	links := float64(s.cfg.meshLinks())
	e.CommLeak = p.LeakagePJ(routers*p.RouterLeakW+links*p.LinkLeakW, lr.Cycles)

	// Computation: real MAC work plus decompression work. Serial mode
	// keeps the legacy uniform per-weight accumulator charge; overlap
	// mode charges the codec's decode-rate model — stream bits through
	// the front end plus regenerated weights through the back end.
	e.CompDyn = float64(spec.MACs) * p.MACPJ
	if spec.Compressed {
		if s.cfg.Overlap {
			dm := core.LookupDecodeModel(spec.Codec)
			e.CompDyn += dm.TileEnergyPJ(spec.WeightBytes*8, spec.WeightCount)
		} else {
			e.CompDyn += float64(spec.WeightCount) * p.DecompressPJ
		}
	}
	numPEs := float64(len(s.pes))
	e.CompLeak = p.LeakagePJ(numPEs*p.PELeakW, lr.Cycles)

	// Local memory: every inbound byte is written once; operands are read
	// with register-level reuse (~one 64-bit word per two MACs).
	inboundWords := float64(ceilDiv((g.wBytesPE+g.iBytesPE)*uint64(len(s.pes)), wordBytes))
	outWords := float64(ceilDiv(g.oBytesPE*uint64(len(s.pes)), wordBytes))
	readWords := 0.5 * float64(g.opsTotal)
	e.LocalDyn = (inboundWords+outWords)*p.LocalWritePJ + (readWords+outWords)*p.LocalReadPJ
	e.LocalLeak = p.LeakagePJ(numPEs*p.LocalLeakW, lr.Cycles)

	// Main memory.
	e.MainDyn = float64(lr.Traffic.DRAMReadWords+lr.Traffic.DRAMWriteWords) * p.DRAMWordPJ
	e.MainLeak = p.LeakagePJ(p.DRAMLeakW, lr.Cycles)
	return e
}
