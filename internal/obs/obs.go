// Package obs is the observability layer of the simulation stack: a
// metrics registry (counters, gauges, fixed-bucket histograms with
// percentile extraction), a structured span/event tracer exporting
// Chrome trace-event JSON (Perfetto-loadable) and CSV timelines, and
// per-run reproducibility manifests written alongside result CSVs.
//
// Two invariants make this a subsystem rather than printf:
//
//   - Zero overhead when disabled. Every handle type (*Observer,
//     *Metrics, *Counter, *Gauge, *Histogram, *Trace, *Buffer) is inert
//     with a nil receiver: methods are single-branch no-ops that never
//     allocate. Instrumented hot paths hold concrete nil pointers and
//     guard emissions with one pointer comparison, so a disabled run
//     costs zero allocations and is pinned under 2% runtime overhead by
//     the alloc tests and on/off benchmark pairs in internal/noc and
//     internal/accel.
//
//   - Deterministic output. Event order is keyed by (cycle, node, seq)
//     — simulated time, mesh geometry, and per-buffer emission index —
//     never wall clock. Counters and histogram buckets are additive
//     atomics, so parallel layer simulations produce the same exported
//     values at any worker count; trace buffers are keyed by a
//     deterministic (scope, index) pair and sorted before export.
//     Exports are therefore byte-identical across -workers counts and
//     across the event/step NoC cores (pinned by the differential
//     suite).
package obs

// Observer bundles the metrics registry and the tracer handed to an
// instrumented component. A nil *Observer disables everything; either
// field may also be nil individually.
type Observer struct {
	Metrics *Metrics
	Trace   *Trace
}

// New returns an Observer with both metrics and tracing enabled.
func New() *Observer {
	return &Observer{Metrics: NewMetrics(), Trace: NewTrace()}
}

// M returns the metrics registry, or nil when the observer is disabled.
// The returned (possibly nil) *Metrics is itself safe to use.
func (o *Observer) M() *Metrics {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// T returns the tracer, or nil when the observer is disabled. The
// returned (possibly nil) *Trace is itself safe to use.
func (o *Observer) T() *Trace {
	if o == nil {
		return nil
	}
	return o.Trace
}

// LayerBuffer returns the trace buffer for one unit of work (scope is
// typically the model name, idx the layer index). Nil when tracing is
// disabled.
func (o *Observer) LayerBuffer(scope string, idx int, label string) *Buffer {
	if o == nil || o.Trace == nil {
		return nil
	}
	return o.Trace.Buffer(scope, idx, label)
}
