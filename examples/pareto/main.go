// pareto explores the multi-objective design space of Sec. IV-C for one
// model: it sweeps the tolerance threshold delta at fine granularity,
// evaluates (accuracy, latency, energy) for each point, and reports the
// Pareto-optimal front — the designer's menu of trade-offs the paper's
// tunable compression enables.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"runtime"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/parallel"
	"repro/internal/train"
)

type point struct {
	delta    float64
	accuracy float64
	latency  float64 // normalized
	energy   float64 // normalized
}

// dominates reports whether a is at least as good as b on every objective
// and strictly better on one (accuracy up, latency and energy down).
func dominates(a, b point) bool {
	geq := a.accuracy >= b.accuracy && a.latency <= b.latency && a.energy <= b.energy
	gt := a.accuracy > b.accuracy || a.latency < b.latency || a.energy < b.energy
	return geq && gt
}

func main() {
	var (
		epochs  = flag.Int("epochs", 10, "training epochs")
		step    = flag.Float64("step", 2.5, "delta sweep step (percent)")
		maxD    = flag.Float64("max", 25, "delta sweep maximum (percent)")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulations (output is identical for any value)")
	)
	flag.Parse()

	const seed = 7
	m, err := models.LeNet5(seed)
	if err != nil {
		log.Fatal(err)
	}
	samples, err := dataset.Digits(2000, seed)
	if err != nil {
		log.Fatal(err)
	}
	trainSet, testSet, err := dataset.Split(samples, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := train.NewSGD(0.05, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	trainer, err := train.NewTrainer(m.Graph, opt, 16)
	if err != nil {
		log.Fatal(err)
	}
	trainer.LRDecay = 0.85
	if _, err := trainer.Fit(trainSet, *epochs); err != nil {
		log.Fatal(err)
	}

	sim, err := accel.NewSimulator(accel.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	baseSpecs, err := accel.SpecsFromModel(m, nil, core.DefaultStorage)
	if err != nil {
		log.Fatal(err)
	}
	base, err := sim.SimulateModel(m.Name, baseSpecs)
	if err != nil {
		log.Fatal(err)
	}
	baseAcc, err := train.Accuracy(m.Graph, testSet)
	if err != nil {
		log.Fatal(err)
	}

	orig, err := m.SelectedWeights()
	if err != nil {
		log.Fatal(err)
	}
	// Pass 1 (serial): accuracy evaluation mutates the shared model's
	// selected layer, so each delta point installs its approximation,
	// measures accuracy, and snapshots the layer specs. The specs depend
	// only on shapes, costs and the compressed segment table — not on the
	// weight values — so they stay valid after the weights are restored.
	type sweepPoint struct {
		delta    float64
		accuracy float64
		specs    []accel.LayerSpec
	}
	var sweep []sweepPoint
	for d := 0.0; d <= *maxD; d += *step {
		c, err := core.CompressPct(orig, d)
		if err != nil {
			log.Fatal(err)
		}
		approx, err := c.Decompress()
		if err != nil {
			log.Fatal(err)
		}
		if err := m.SetSelectedWeights(approx); err != nil {
			log.Fatal(err)
		}
		acc, err := train.Accuracy(m.Graph, testSet)
		if err != nil {
			log.Fatal(err)
		}
		specs, err := accel.SpecsFromModel(m, map[string]*core.Compressed{m.SelectedLayer: c}, core.DefaultStorage)
		if err != nil {
			log.Fatal(err)
		}
		sweep = append(sweep, sweepPoint{delta: d, accuracy: acc, specs: specs})
	}
	if err := m.SetSelectedWeights(orig); err != nil {
		log.Fatal(err)
	}

	// Pass 2 (parallel): the cycle-accurate simulations are independent,
	// one per delta point; results come back in sweep order.
	simPts, err := parallel.Map(context.Background(), *workers, len(sweep),
		func(_ context.Context, i int) (point, error) {
			res, err := sim.SimulateModel(m.Name, sweep[i].specs)
			if err != nil {
				return point{}, err
			}
			return point{
				delta:    sweep[i].delta,
				accuracy: sweep[i].accuracy,
				latency:  float64(res.Cycles) / float64(base.Cycles),
				energy:   res.Energy.Total() / base.Energy.Total(),
			}, nil
		})
	if err != nil {
		log.Fatal(err)
	}
	pts := append([]point{{delta: -1, accuracy: baseAcc, latency: 1, energy: 1}}, simPts...)

	fmt.Printf("%8s %10s %9s %8s  %s\n", "delta", "accuracy", "latency", "energy", "pareto")
	for _, p := range pts {
		onFront := true
		for _, q := range pts {
			if dominates(q, p) {
				onFront = false
				break
			}
		}
		tag := ""
		if onFront {
			tag = "*"
		}
		name := "orig"
		if p.delta >= 0 {
			name = fmt.Sprintf("%.1f%%", p.delta)
		}
		fmt.Printf("%8s %10.4f %9.3f %8.3f  %s\n", name, p.accuracy, p.latency, p.energy, tag)
	}
	fmt.Println("\n* = Pareto-optimal in (accuracy up, latency down, energy down)")
}
