#!/bin/sh
# verify.sh — the repository's full verification gate: build, vet, the
# test suite, and the race-enabled suite (the parallel experiment engine
# makes the race run mandatory, not optional).
#
# Usage: ./verify.sh [-short]   (-short is forwarded to both test runs)
set -eu

cd "$(dirname "$0")"

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test $* ./..."
go test "$@" ./...

echo "== go test -race $* ./..."
go test -race "$@" ./...

echo "verify.sh: all checks passed"
