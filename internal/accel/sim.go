package accel

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/noc"
	"repro/internal/parallel"
)

// ErrDataLoss reports that injected faults permanently dropped NoC
// packets (retry budget exhausted or destination unroutable), so the
// layer's dataflow can never complete. Callers detect it with
// errors.Is and treat the configuration as failed rather than hung.
var ErrDataLoss = errors.New("accel: packets permanently lost to faults")

// Simulator executes layer specs on the accelerator platform.
//
// A Simulator is immutable after construction apart from SetWorkers and is
// safe for concurrent use: SimulateLayer builds a fresh noc.Network and
// fresh per-layer runtime state (peState/miState maps) on every call, and
// only reads the shared cfg/pes/assign fields. Config and LayerSpec are
// plain value types with no interior mutability, so specs may be shared
// freely across goroutines.
type Simulator struct {
	cfg     Config
	pes     []int
	assign  map[int]int // PE node -> memory interface node
	workers int
}

// NewSimulator validates the configuration and precomputes the PE to
// memory-interface assignment.
func NewSimulator(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{cfg: cfg, pes: cfg.peNodes(), assign: cfg.assignPEs(), workers: 1}, nil
}

// Config returns the platform configuration.
func (s *Simulator) Config() Config { return s.cfg }

// SetWorkers sets the number of goroutines SimulateModel uses to simulate
// independent layers; n < 1 selects runtime.GOMAXPROCS(0). Call before
// handing the Simulator to concurrent users — it is the one mutating
// method.
func (s *Simulator) SetWorkers(n int) { s.workers = parallel.Workers(n) }

// SimulateModel runs every layer and aggregates the results. Layers are
// independent — each SimulateLayer call owns its noc.Network — so they are
// simulated concurrently on the configured worker count; results are
// collected by layer index, making the aggregate identical to a serial
// run regardless of worker count.
func (s *Simulator) SimulateModel(modelName string, specs []LayerSpec) (*Result, error) {
	return s.SimulateModelContext(context.Background(), modelName, specs)
}

// SimulateModelContext is SimulateModel bounded by a context: layer
// simulations poll ctx and abandon the run promptly when it is canceled
// or its deadline passes.
func (s *Simulator) SimulateModelContext(ctx context.Context, modelName string, specs []LayerSpec) (*Result, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("accel: no layer specs")
	}
	layers, err := parallel.Map(ctx, s.workers, len(specs),
		func(ctx context.Context, i int) (LayerResult, error) {
			lr, err := s.SimulateLayerContext(ctx, specs[i])
			if err != nil {
				return LayerResult{}, fmt.Errorf("accel: layer %q: %w", specs[i].Name, err)
			}
			return lr, nil
		})
	if err != nil {
		return nil, err
	}
	res := &Result{Model: modelName}
	for _, lr := range layers {
		res.accumulate(lr)
	}
	return res, nil
}

// message metadata kinds.
type fetchMeta struct {
	pe, round int
}
type outputMeta struct {
	pe, round int
}

// dramJob is one main-memory transaction at a memory interface.
type dramJob struct {
	words   uint64
	isWrite bool
	pe      int
	round   int
}

// miState is the runtime state of one memory interface.
type miState struct {
	node     int
	readPlan [][]dramJob // per assigned PE: fetch jobs in round order
	nextRead []int       // per assigned PE: next round to issue
	writes   []dramJob   // pending writeback jobs
	current  *dramJob
	finishAt uint64
}

// peState is the runtime state of one PE.
type peState struct {
	node, mi  int
	round     int
	computing bool
	busyUntil uint64
	done      bool
	arrived   map[int]int // round -> packets arrived
	expected  map[int]int // round -> packets expected (set at injection)
	issued    map[int]bool
}

// layerGeometry is the per-layer derived tiling.
type layerGeometry struct {
	flow         Dataflow
	rounds       int
	simRounds    int
	wBytesPE     uint64 // per PE, whole layer
	iBytesPE     uint64
	oBytesPE     uint64
	computeRound uint64 // compute cycles per round per PE
	opsTotal     uint64
}

const (
	flitBytes     = 8
	wordBytes     = 8
	maxLayerCycle = 500_000_000
	// localMemUtil is the fraction of the scratchpad usable for tiles
	// (the rest holds control state and double-buffer slack).
	localMemUtil = 0.9
	// haloFactor inflates striped input fetches for the overlapping rows
	// spatially partitioned convolutions need.
	haloFactor = 1.1
)

func ceilDiv(a, b uint64) uint64 {
	if b == 0 {
		return 0
	}
	return (a + b - 1) / b
}

// dramServiceCycles returns the transfer time of a burst at the sustained
// DRAM bandwidth (words per cycle, possibly fractional): the exact ceiling
// of words/wordsPerCy, never below one cycle.
//
// Integer and reciprocal-integer bandwidths — every configuration the
// platform uses — are computed in exact integer arithmetic; other
// fractional rates fall back to math.Ceil. The former float-epsilon
// ceiling (quotient + 0.999999 truncated) was wrong at both ends: above
// ~1e15 the added epsilon rounds an exact multiple up a full cycle, and a
// quotient with a fractional part under 1e-6 loses its partial cycle
// entirely — for large bursts the epsilon vanishes into the float64
// granularity.
func dramServiceCycles(words uint64, wordsPerCy float64) uint64 {
	if wordsPerCy <= 0 {
		return words
	}
	var c uint64
	inv := 1 / wordsPerCy
	switch {
	case wordsPerCy >= 1 && wordsPerCy <= 1e15 && wordsPerCy == math.Trunc(wordsPerCy):
		c = ceilDiv(words, uint64(wordsPerCy))
	case wordsPerCy < 1 && inv <= 1e9 && inv == math.Trunc(inv) && words < (1<<54):
		c = words * uint64(inv)
	default:
		c = uint64(math.Ceil(float64(words) / wordsPerCy))
	}
	if c < 1 {
		c = 1
	}
	return c
}

// geometry derives the tiling and per-round quantities for a layer.
func (s *Simulator) geometry(spec LayerSpec) layerGeometry {
	numPEs := uint64(len(s.pes))
	g := layerGeometry{flow: spec.Flow(len(s.pes))}

	switch g.flow {
	case ConvFlow:
		// Spatial partitioning: weights broadcast, input striped.
		g.wBytesPE = spec.WeightBytes
		g.iBytesPE = uint64(float64(spec.InputBytes)*haloFactor) / numPEs
		g.oBytesPE = spec.OutputBytes / numPEs
	default:
		// Output-neuron partitioning: weights striped, input broadcast.
		g.wBytesPE = spec.WeightBytes / numPEs
		g.iBytesPE = spec.InputBytes
		g.oBytesPE = spec.OutputBytes / numPEs
	}
	if g.wBytesPE == 0 && spec.WeightBytes > 0 {
		g.wBytesPE = 1
	}
	if g.iBytesPE == 0 && spec.InputBytes > 0 {
		g.iBytesPE = 1
	}
	if g.oBytesPE == 0 && spec.OutputBytes > 0 {
		g.oBytesPE = 1
	}

	perPE := g.wBytesPE + g.iBytesPE + g.oBytesPE
	eff := uint64(float64(s.cfg.LocalMemBytes) * localMemUtil)
	g.rounds = int(ceilDiv(perPE, eff))
	if g.rounds < 1 {
		g.rounds = 1
	}
	g.simRounds = g.rounds
	if g.simRounds > s.cfg.MaxSimRounds {
		g.simRounds = s.cfg.MaxSimRounds
	}

	// Computation: MACs, with a floor of one op per output value so
	// parameter-free layers (pooling, BN scale/shift) still take time.
	outVals := spec.OutputBytes / bytesPerValue
	g.opsTotal = spec.MACs
	if g.opsTotal < outVals {
		g.opsTotal = outVals
	}
	opsPE := g.opsTotal / numPEs
	opsRound := ceilDiv(opsPE, uint64(g.rounds))
	g.computeRound = ceilDiv(opsRound, uint64(s.cfg.MACsPerCycle()))
	if spec.Compressed {
		wcPE := spec.WeightCount / numPEs
		if g.flow == ConvFlow {
			wcPE = spec.WeightCount
		}
		wcRound := ceilDiv(wcPE, uint64(g.rounds))
		if d := ceilDiv(wcRound, uint64(s.cfg.DecompUnits)); d > g.computeRound {
			g.computeRound = d
		}
	}
	if g.computeRound < 1 {
		g.computeRound = 1
	}

	return g
}

// SimulateLayer runs one layer cycle-accurately for up to MaxSimRounds
// tiling rounds and extrapolates the steady state to the full round count.
func (s *Simulator) SimulateLayer(spec LayerSpec) (LayerResult, error) {
	return s.SimulateLayerContext(context.Background(), spec)
}

// SimulateLayerContext is SimulateLayer bounded by a context, polled
// every few thousand simulated cycles so a deadline or cancellation
// interrupts even a degenerate configuration mid-layer.
func (s *Simulator) SimulateLayerContext(ctx context.Context, spec LayerSpec) (LayerResult, error) {
	if err := spec.Validate(); err != nil {
		return LayerResult{}, err
	}
	g := s.geometry(spec)
	nw, err := noc.New(s.cfg.Mesh)
	if err != nil {
		return LayerResult{}, err
	}

	// Per-round per-PE message sizes (bytes).
	wRound := ceilDiv(g.wBytesPE, uint64(g.rounds))
	iRound := ceilDiv(g.iBytesPE, uint64(g.rounds))
	oRound := ceilDiv(g.oBytesPE, uint64(g.rounds))
	fetchFlits := int(ceilDiv(wRound+iRound, flitBytes))
	outFlits := int(ceilDiv(oRound, flitBytes))
	// DRAM read cost per fetch: broadcast data (weights under ConvFlow,
	// the input under FCFlow) is read once per memory interface and
	// replicated over the NoC; per-PE data is read per PE. When
	// WeightBytesDRAM differs from WeightBytes (memory-side decompression
	// ablation), the DRAM-side weight component scales accordingly.
	dramWScale := 1.0
	if spec.WeightBytesDRAM != 0 && spec.WeightBytes != 0 {
		dramWScale = float64(spec.WeightBytesDRAM) / float64(spec.WeightBytes)
	}
	var fetchWordsFirst, fetchWordsRest uint64
	if g.flow == ConvFlow {
		// Shared part = weights, own part = input stripe.
		wDRAM := uint64(float64(wRound) * dramWScale)
		fetchWordsFirst = ceilDiv(wDRAM+iRound, wordBytes)
		fetchWordsRest = ceilDiv(iRound, wordBytes)
	} else {
		// Shared part = input, own part = weight slice.
		wDRAM := uint64(float64(wRound) * dramWScale)
		fetchWordsFirst = ceilDiv(iRound+wDRAM, wordBytes)
		fetchWordsRest = ceilDiv(wDRAM, wordBytes)
	}

	// Build runtime state.
	pes := make(map[int]*peState, len(s.pes))
	for _, p := range s.pes {
		pes[p] = &peState{
			node: p, mi: s.assign[p],
			arrived:  make(map[int]int),
			expected: make(map[int]int),
			issued:   make(map[int]bool),
		}
	}
	mis := make(map[int]*miState, len(s.cfg.MemNodes))
	miPEs := make(map[int][]int)
	for _, p := range s.pes {
		miPEs[s.assign[p]] = append(miPEs[s.assign[p]], p)
	}
	for _, m := range s.cfg.MemNodes {
		st := &miState{node: m}
		for k, p := range miPEs[m] {
			words := fetchWordsFirst
			if k > 0 {
				words = fetchWordsRest
			}
			if words == 0 {
				words = 1 // job bookkeeping still costs a beat
			}
			plan := make([]dramJob, g.simRounds)
			for r := 0; r < g.simRounds; r++ {
				plan[r] = dramJob{words: words, pe: p, round: r}
			}
			st.readPlan = append(st.readPlan, plan)
			st.nextRead = append(st.nextRead, 0)
		}
		mis[m] = st
	}

	var dramReadWords, dramWriteWords uint64
	var lat LatencyBreakdown

	nw.SetSink(func(d noc.Delivery) {
		switch meta := d.Packet.Meta.(type) {
		case fetchMeta:
			pe := pes[meta.pe]
			pe.arrived[meta.round]++
		case outputMeta:
			// One write job per delivered packet, sized by the packet.
			mi := mis[s.assign[meta.pe]]
			mi.writes = append(mi.writes, dramJob{words: uint64(d.Packet.Flits), isWrite: true, pe: meta.pe, round: meta.round})
		}
	})

	outstandingWrites := 0
	done := func() bool {
		for _, p := range pes {
			if !p.done {
				return false
			}
		}
		if outstandingWrites > 0 {
			return false
		}
		for _, m := range mis {
			if m.current != nil || len(m.writes) > 0 {
				return false
			}
		}
		return nw.Idle()
	}

	for !done() {
		now := nw.Cycle()
		if now > maxLayerCycle {
			return LayerResult{}, fmt.Errorf("accel: layer %q exceeded %d cycles", spec.Name, maxLayerCycle)
		}
		if now&0xfff == 0 {
			if err := ctx.Err(); err != nil {
				return LayerResult{}, err
			}
		}
		// Fail fast on permanent packet loss: the dataflow waits on data
		// that will never arrive, so the layer can only time out.
		if dropped := nw.DroppedPackets(); dropped > 0 {
			return LayerResult{}, fmt.Errorf("%w (%d packets)", ErrDataLoss, dropped)
		}

		memBusy := false
		// Memory interfaces.
		for _, m := range s.cfg.MemNodes {
			mi := mis[m]
			if mi.current != nil {
				if now >= mi.finishAt {
					job := mi.current
					mi.current = nil
					if job.isWrite {
						dramWriteWords += job.words
						outstandingWrites--
					} else {
						dramReadWords += job.words
						n, err := nw.SendMessage(m, job.pe, fetchFlits, fetchMeta{pe: job.pe, round: job.round})
						if err != nil {
							return LayerResult{}, err
						}
						pe := pes[job.pe]
						pe.expected[job.round] = n
						pe.issued[job.round] = true
					}
				} else {
					memBusy = true
				}
			}
			if mi.current == nil {
				// Prefer writebacks, then reads (double-buffered: at most
				// one round ahead of the PE's current round).
				if len(mi.writes) > 0 {
					job := mi.writes[0]
					mi.writes = mi.writes[1:]
					mi.current = &job
					mi.finishAt = now + uint64(s.cfg.Energy.DRAMLatency) +
						dramServiceCycles(job.words, s.cfg.Energy.DRAMWordsPerCy)
					memBusy = true
				} else {
					for k := range mi.readPlan {
						r := mi.nextRead[k]
						if r >= g.simRounds {
							continue
						}
						pe := pes[mi.readPlan[k][r].pe]
						if r > pe.round+1 {
							continue // respect double buffering
						}
						job := mi.readPlan[k][r]
						mi.nextRead[k]++
						mi.current = &job
						mi.finishAt = now + uint64(s.cfg.Energy.DRAMLatency) +
							dramServiceCycles(job.words, s.cfg.Energy.DRAMWordsPerCy)
						memBusy = true
						break
					}
				}
			}
		}

		// PEs.
		compBusy := false
		for _, p := range s.pes {
			pe := pes[p]
			if pe.done {
				continue
			}
			if pe.computing {
				if now >= pe.busyUntil {
					pe.computing = false
					if outFlits > 0 {
						npkts, err := nw.SendMessage(p, pe.mi, outFlits, outputMeta{pe: p, round: pe.round})
						if err != nil {
							return LayerResult{}, err
						}
						outstandingWrites += npkts
					}
					pe.round++
					if pe.round >= g.simRounds {
						pe.done = true
						continue
					}
				} else {
					compBusy = true
					continue
				}
			}
			if !pe.computing {
				if pe.issued[pe.round] && pe.arrived[pe.round] == pe.expected[pe.round] && pe.expected[pe.round] > 0 {
					pe.computing = true
					pe.busyUntil = now + g.computeRound
					compBusy = true
				} else if fetchFlits == 0 {
					// Degenerate layer with no inbound data: compute directly.
					pe.computing = true
					pe.busyUntil = now + g.computeRound
					compBusy = true
				}
			}
		}

		// Attribute this cycle, then advance the network.
		commBusy := !nw.Idle()
		switch {
		case memBusy:
			lat.Memory++
		case commBusy:
			lat.Communication++
		case compBusy:
			lat.Computation++
		default:
			lat.Communication++ // handshake bubbles
		}
		nw.Step()
	}

	// Extrapolate the simulated rounds to the full layer.
	scale := float64(g.rounds) / float64(g.simRounds)
	simCycles := nw.Cycle()
	st := nw.Stats()

	var traffic Traffic
	traffic.NoCFlits = st.FlitsInjected
	traffic.FlitHops = st.RouterTraverse
	traffic.LinkHops = st.LinkTraverse
	traffic.DRAMReadWords = dramReadWords
	traffic.DRAMWriteWords = dramWriteWords
	traffic.CorruptFlits = st.CorruptFlits
	traffic.Retransmits = st.RetransmittedPackets
	traffic.scale(scale)
	lat.scale(scale)
	cycles := uint64(float64(simCycles) * scale)

	lr := LayerResult{
		Name:      spec.Name,
		Kind:      spec.Kind,
		Flow:      g.flow,
		Cycles:    cycles,
		Latency:   lat,
		Traffic:   traffic,
		Rounds:    g.rounds,
		SimRounds: g.simRounds,
	}
	lr.Energy = s.layerEnergy(spec, g, lr)
	return lr, nil
}

// layerEnergy back-annotates the energy breakdown from the (extrapolated)
// activity counters plus the analytic computation counts.
func (s *Simulator) layerEnergy(spec LayerSpec, g layerGeometry, lr LayerResult) EnergyBreakdown {
	p := s.cfg.Energy
	var e EnergyBreakdown

	// Communication.
	e.CommDyn = float64(lr.Traffic.FlitHops)*p.RouterFlitPJ + float64(lr.Traffic.LinkHops)*p.LinkFlitPJ
	routers := float64(s.cfg.Mesh.Width * s.cfg.Mesh.Height)
	links := float64(s.cfg.meshLinks())
	e.CommLeak = p.LeakagePJ(routers*p.RouterLeakW+links*p.LinkLeakW, lr.Cycles)

	// Computation: real MAC work plus decompression accumulator adds.
	e.CompDyn = float64(spec.MACs) * p.MACPJ
	if spec.Compressed {
		e.CompDyn += float64(spec.WeightCount) * p.DecompressPJ
	}
	numPEs := float64(len(s.pes))
	e.CompLeak = p.LeakagePJ(numPEs*p.PELeakW, lr.Cycles)

	// Local memory: every inbound byte is written once; operands are read
	// with register-level reuse (~one 64-bit word per two MACs).
	inboundWords := float64(ceilDiv((g.wBytesPE+g.iBytesPE)*uint64(len(s.pes)), wordBytes))
	outWords := float64(ceilDiv(g.oBytesPE*uint64(len(s.pes)), wordBytes))
	readWords := 0.5 * float64(g.opsTotal)
	e.LocalDyn = (inboundWords+outWords)*p.LocalWritePJ + (readWords+outWords)*p.LocalReadPJ
	e.LocalLeak = p.LeakagePJ(numPEs*p.LocalLeakW, lr.Cycles)

	// Main memory.
	e.MainDyn = float64(lr.Traffic.DRAMReadWords+lr.Traffic.DRAMWriteWords) * p.DRAMWordPJ
	e.MainLeak = p.LeakagePJ(p.DRAMLeakW, lr.Cycles)
	return e
}
