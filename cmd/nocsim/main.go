// Command nocsim runs one model inference on the NoC-based accelerator
// simulator and prints the latency and energy breakdowns, optionally with
// the selected layer compressed at a given delta.
//
// Usage:
//
//	nocsim -model LeNet-5                 # original network
//	nocsim -model LeNet-5 -delta 15       # compressed selected layer
//	nocsim -model AlexNet -delta 20 -layers
//	nocsim -model LeNet-5 -link-fault-rate 1e-4 -retries 8
//	nocsim -model LeNet-5 -dead-links 5-6,6-5
//	nocsim -model LeNet-5 -core step           # reference stepping core
//	nocsim -model LeNet-5 -selftest            # run both cores, diff results
//	nocsim -model LeNet-5 -trace out.json      # Perfetto-loadable trace
//	nocsim -model LeNet-5 -metrics m.txt -manifest run.json
//
// Layers are simulated concurrently on -workers goroutines; the results
// are collected in layer order, so every worker count prints the same
// numbers. The -trace/-trace-csv/-metrics/-manifest outputs are equally
// deterministic: byte-identical at any -workers value and across the
// event/step cores (see internal/obs).
//
// The fault flags inject deterministic transient link corruption
// (recovered by checksum-triggered retransmission, whose traffic shows
// up in the latency/energy totals) and stuck-at dead links (avoided at
// route time). -timeout bounds the whole run with a context deadline.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/planner"
	"repro/internal/tensor"
)

// parseDeadLinks parses "5-6,6-5" into unidirectional link pairs.
func parseDeadLinks(s string) ([]faults.Link, error) {
	if s == "" {
		return nil, nil
	}
	var links []faults.Link
	for _, part := range strings.Split(s, ",") {
		var l faults.Link
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d-%d", &l.From, &l.To); err != nil {
			return nil, fmt.Errorf("bad dead link %q (want from-to)", part)
		}
		links = append(links, l)
	}
	return links, nil
}

func main() {
	var (
		modelName = flag.String("model", "LeNet-5", "model to simulate")
		delta     = flag.Float64("delta", -1, "compress the selected layer at this delta %% (negative = original)")
		seed      = flag.Int64("seed", 2020, "model weight seed")
		weights   = flag.String("weights", "", "load trained weights (.nnwt from cmd/trainer)")
		perLayer  = flag.Bool("layers", false, "print per-layer results")
		overlap   = flag.Bool("overlap", false, "streaming mode: overlap decompression with compute and pipeline DRAM bursts")
		tile      = flag.Bool("tile", false, "run the overlap-aware tile-shape planner pass (implies -overlap)")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent layer simulations (output is identical for any value)")
		timeout   = flag.Duration("timeout", 0, "abort the simulation after this long (0 = no deadline)")
		faultSeed = flag.Int64("fault-seed", 2020, "seed for the deterministic fault injector")
		linkRate  = flag.Float64("link-fault-rate", 0, "per-link-traversal flit corruption probability")
		deadLinks = flag.String("dead-links", "", "comma-separated stuck-at links, e.g. 5-6,6-5")
		retries   = flag.Int("retries", 0, "retransmission budget per packet (0 = default)")
		coreName  = flag.String("core", "event", "NoC simulation core: event (default) or step (reference)")
		selftest  = flag.Bool("selftest", false, "run the inference on BOTH cores and diff every number; non-zero exit on divergence")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")

		tracePath    = flag.String("trace", "", "write a Chrome trace-event JSON (open at ui.perfetto.dev) to this file")
		traceCSV     = flag.String("trace-csv", "", "write the trace as a flat CSV timeline to this file")
		metricsPath  = flag.String("metrics", "", "write the metrics snapshot to this file (.csv extension selects CSV, else text)")
		manifestPath = flag.String("manifest", "", "write a reproducibility manifest (JSON) to this file")
		printKernel  = flag.Bool("print-kernel", false, "print the matmul kernel dispatch decision and exit")
	)
	flag.Parse()

	if *printKernel {
		fmt.Printf("kernel=%s available=%s vecmm=%s\n",
			tensor.MatMulKernel(), strings.Join(tensor.MatMulKernels(), ","), os.Getenv("VECMM"))
		return
	}

	stopProf, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	b, err := models.ByName(*modelName)
	if err != nil {
		fatal(err)
	}
	m, err := b.Build(*seed)
	if err != nil {
		fatal(err)
	}
	if *weights != "" {
		f, err := os.Open(*weights)
		if err != nil {
			fatal(err)
		}
		if err := nn.LoadWeights(f, m.Graph); err != nil {
			f.Close()
			fatal(err)
		}
		f.Close()
	}
	var compressed map[string]*core.Compressed
	var codecPlan []obs.CodecAssignment
	if *delta >= 0 {
		w, err := m.SelectedWeights()
		if err != nil {
			fatal(err)
		}
		c, err := core.CompressPct(w, *delta)
		if err != nil {
			fatal(err)
		}
		compressed = map[string]*core.Compressed{m.SelectedLayer: c}
		codecPlan = []obs.CodecAssignment{{Layer: m.SelectedLayer, Codec: fmt.Sprintf("segment@%.3g%%", *delta)}}
		fmt.Printf("compressed %s at delta %.3g%%: CR %.2f\n",
			m.SelectedLayer, *delta, c.CompressionRatio(core.DefaultStorage))
	}
	specs, err := accel.SpecsFromModel(m, compressed, core.DefaultStorage)
	if err != nil {
		fatal(err)
	}
	cfg := accel.DefaultConfig()
	dead, err := parseDeadLinks(*deadLinks)
	if err != nil {
		fatal(err)
	}
	cfg.Mesh.Faults = faults.Model{
		Seed:         *faultSeed,
		LinkFlitRate: *linkRate,
		DeadLinks:    dead,
	}
	cfg.Mesh.MaxRetries = *retries
	cfg.Mesh.Core, err = noc.ParseCore(*coreName)
	if err != nil {
		fatal(err)
	}
	cfg.Overlap = *overlap || *tile
	if *tile {
		tiled, plan, err := planner.PlanTiles(cfg, specs)
		if err != nil {
			fatal(err)
		}
		specs = tiled
		for _, c := range plan.Choices {
			if c.Rounds > c.BaseRounds {
				fmt.Printf("tile pass: %s %d -> %d rounds (%d -> %d cycles)\n",
					c.Layer, c.BaseRounds, c.Rounds, c.BaseCycles, c.Cycles)
			}
		}
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *selftest {
		os.Exit(runSelftest(ctx, cfg, m.Name, specs, *workers))
	}
	var o *obs.Observer
	if *tracePath != "" || *traceCSV != "" || *metricsPath != "" || *manifestPath != "" {
		o = obs.New()
	}
	res, clock, err := runOnce(ctx, cfg, m.Name, specs, *workers, o)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\n%s inference on 4x4 mesh @ %.0f MHz (%s core)\n",
		m.Name, clock/1e6, cfg.Mesh.Core)
	fmt.Printf("latency: %d cycles (%.3f ms)\n", res.Cycles, res.Seconds(clock)*1e3)
	lt := res.Latency
	if cfg.Overlap {
		fmt.Printf("  memory %.1f%%  communication %.1f%%  computation %.1f%%  decode-stall %.1f%%\n",
			pct(lt.Memory, lt.Total()), pct(lt.Communication, lt.Total()),
			pct(lt.Computation, lt.Total()), pct(lt.DecodeStall, lt.Total()))
	} else {
		fmt.Printf("  memory %.1f%%  communication %.1f%%  computation %.1f%%\n",
			pct(lt.Memory, lt.Total()), pct(lt.Communication, lt.Total()), pct(lt.Computation, lt.Total()))
	}
	e := res.Energy
	fmt.Printf("energy: %.3f uJ\n", e.Total()/1e6)
	fmt.Printf("  comm   dyn %8.3f uJ  leak %8.3f uJ\n", e.CommDyn/1e6, e.CommLeak/1e6)
	fmt.Printf("  comp   dyn %8.3f uJ  leak %8.3f uJ\n", e.CompDyn/1e6, e.CompLeak/1e6)
	fmt.Printf("  local  dyn %8.3f uJ  leak %8.3f uJ\n", e.LocalDyn/1e6, e.LocalLeak/1e6)
	fmt.Printf("  main   dyn %8.3f uJ  leak %8.3f uJ\n", e.MainDyn/1e6, e.MainLeak/1e6)
	fmt.Printf("traffic: DRAM %d+%d words, %d flits, %d flit-hops\n",
		res.Traffic.DRAMReadWords, res.Traffic.DRAMWriteWords,
		res.Traffic.NoCFlits, res.Traffic.FlitHops)
	if cfg.Mesh.Faults.Enabled() {
		fmt.Printf("faults:  %d corrupted flits, %d packets retransmitted (all recovered)\n",
			res.Traffic.CorruptFlits, res.Traffic.Retransmits)
	}
	if *perLayer {
		fmt.Printf("\n%-16s %-6s %-5s %12s %8s %10s\n", "layer", "kind", "flow", "cycles", "rounds", "energy(uJ)")
		for _, l := range res.Layers {
			fmt.Printf("%-16s %-6s %-5s %12d %4d/%-4d %10.3f\n",
				l.Name, l.Kind, l.Flow, l.Cycles, l.SimRounds, l.Rounds, l.Energy.Total()/1e6)
		}
	}

	if err := writeObsOutputs(o, *tracePath, *traceCSV, *metricsPath); err != nil {
		fatal(err)
	}
	if *manifestPath != "" {
		man := buildManifest("nocsim", m.Name, *seed, *faultSeed, *delta, cfg, codecPlan, res, o)
		if err := man.WriteFile(*manifestPath); err != nil {
			fatal(err)
		}
	}
}

// pct is the NaN-safe percentage: a zero denominator (empty or aborted
// run) reports 0 instead of poisoning the output.
func pct(part, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(part) / float64(total)
}

// writeObsOutputs writes the trace and metrics files selected by flags.
func writeObsOutputs(o *obs.Observer, tracePath, traceCSV, metricsPath string) error {
	writeTo := func(path string, write func(*os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if tracePath != "" {
		if err := writeTo(tracePath, func(f *os.File) error { return o.T().WriteChromeJSON(f) }); err != nil {
			return err
		}
	}
	if traceCSV != "" {
		if err := writeTo(traceCSV, func(f *os.File) error { return o.T().WriteCSV(f) }); err != nil {
			return err
		}
	}
	if metricsPath != "" {
		write := o.M().WriteText
		if strings.HasSuffix(metricsPath, ".csv") {
			write = o.M().WriteCSV
		}
		if err := writeTo(metricsPath, func(f *os.File) error { return write(f) }); err != nil {
			return err
		}
	}
	return nil
}

// buildManifest assembles the reproducibility record for one run: the
// inputs and environment choices that determine the numbers, plus the
// deterministic results themselves. Worker counts and wall-clock time
// are deliberately absent, so manifests from the same configuration are
// byte-identical at any parallelism.
func buildManifest(tool, modelName string, seed, faultSeed int64, delta float64, cfg accel.Config, codecPlan []obs.CodecAssignment, res *accel.Result, o *obs.Observer) *obs.Manifest {
	man := &obs.Manifest{
		Tool:             tool,
		Model:            modelName,
		Seed:             seed,
		FaultSeed:        faultSeed,
		NoCCore:          cfg.Mesh.Core.String(),
		MatMulKernel:     tensor.MatMulKernel(),
		AvailableKernels: tensor.MatMulKernels(),
		VecmmOverride:    os.Getenv("VECMM"),
		Mesh:             [2]int{cfg.Mesh.Width, cfg.Mesh.Height},
		MemNodes:         cfg.MemNodes,
		MACLanes:         cfg.MACLanes,
		CodecPlan:        codecPlan,
		TraceEvents:      o.T().EventCount(),
	}
	if delta >= 0 {
		man.Delta = delta
	}
	if res != nil {
		man.Results = &obs.RunResults{
			TotalCycles:   res.Cycles,
			EnergyPJ:      res.Energy.Total(),
			MemoryCycles:  res.Latency.Memory,
			CommCycles:    res.Latency.Communication,
			ComputeCycles: res.Latency.Computation,
			FlitsInjected: res.Traffic.NoCFlits,
			DRAMReads:     res.Traffic.DRAMReadWords,
			DRAMWrites:    res.Traffic.DRAMWriteWords,
		}
		for _, l := range res.Layers {
			man.TierTimings = append(man.TierTimings, obs.TierTiming{
				Layer:         l.Name,
				TotalCycles:   l.Cycles,
				MemoryCycles:  l.Latency.Memory,
				CommCycles:    l.Latency.Communication,
				ComputeCycles: l.Latency.Computation,
				EnergyPJ:      l.Energy.Total(),
			})
		}
	}
	return man
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nocsim:", err)
	os.Exit(1)
}

// runOnce simulates the model on the core selected in cfg.Mesh.Core.
func runOnce(ctx context.Context, cfg accel.Config, name string, specs []accel.LayerSpec, workers int, o *obs.Observer) (*accel.Result, float64, error) {
	sim, err := accel.NewSimulator(cfg)
	if err != nil {
		return nil, 0, err
	}
	sim.SetWorkers(workers)
	sim.SetObserver(o)
	res, err := sim.SimulateModelContext(ctx, name, specs)
	if err != nil {
		return nil, 0, err
	}
	return res, sim.Config().Energy.ClockHz, nil
}

// runSelftest runs the same inference on the event core and the
// reference stepping core and diffs every number the simulator reports.
// The two cores are required to agree exactly — same cycles, same
// energy bits, same traffic counters, per layer and in total.
func runSelftest(ctx context.Context, cfg accel.Config, name string, specs []accel.LayerSpec, workers int) int {
	run := func(c noc.Core) *accel.Result {
		cfg.Mesh.Core = c
		res, _, err := runOnce(ctx, cfg, name, specs, workers, nil)
		if err != nil {
			fatal(err)
		}
		return res
	}
	ev := run(noc.CoreEvent)
	st := run(noc.CoreStep)

	bad := 0
	diff := func(where, what string, e, s any) {
		if !reflect.DeepEqual(e, s) {
			bad++
			fmt.Printf("DIVERGED %-20s %-10s event=%v step=%v\n", where, what, e, s)
		}
	}
	diff("total", "cycles", ev.Cycles, st.Cycles)
	diff("total", "latency", ev.Latency, st.Latency)
	diff("total", "energy", ev.Energy, st.Energy)
	diff("total", "traffic", ev.Traffic, st.Traffic)
	if len(ev.Layers) != len(st.Layers) {
		fmt.Printf("DIVERGED layer count: event=%d step=%d\n", len(ev.Layers), len(st.Layers))
		return 1
	}
	for i := range ev.Layers {
		el, sl := ev.Layers[i], st.Layers[i]
		diff(el.Name, "cycles", el.Cycles, sl.Cycles)
		diff(el.Name, "latency", el.Latency, sl.Latency)
		diff(el.Name, "energy", el.Energy, sl.Energy)
		diff(el.Name, "traffic", el.Traffic, sl.Traffic)
		diff(el.Name, "rounds", [2]int{el.Rounds, el.SimRounds}, [2]int{sl.Rounds, sl.SimRounds})
	}
	if bad > 0 {
		fmt.Printf("selftest FAILED: %d divergences between event and step cores\n", bad)
		return 1
	}
	fmt.Printf("selftest passed: %s, %d layers, %d cycles — event and step cores agree exactly\n",
		name, len(ev.Layers), ev.Cycles)
	return 0
}

// startProfiles starts the optional CPU profile and returns a stop
// function that finishes it and writes the optional heap profile.
// Profiles are written on normal completion, not after a fatal exit.
func startProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath == "" {
			return
		}
		f, err := os.Create(memPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nocsim: heap profile:", err)
			return
		}
		defer f.Close()
		runtime.GC() // flush recently freed objects so live-heap numbers are clean
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "nocsim: heap profile:", err)
		}
	}, nil
}
