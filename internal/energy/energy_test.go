package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefault45nmValid(t *testing.T) {
	if err := Default45nm().Validate(); err != nil {
		t.Fatalf("default parameters invalid: %v", err)
	}
}

func TestValidateCatchesBadness(t *testing.T) {
	mutations := []func(*Params){
		func(p *Params) { p.ClockHz = 0 },
		func(p *Params) { p.FlitBits = 0 },
		func(p *Params) { p.RouterFlitPJ = -1 },
		func(p *Params) { p.LocalReadPJ = -1 },
		func(p *Params) { p.RouterLeakW = -1 },
		func(p *Params) { p.DRAMLatency = -1 },
		func(p *Params) { p.DRAMWordsPerCy = 0 },
	}
	for i, mut := range mutations {
		p := Default45nm()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestMagnitudeOrdering(t *testing.T) {
	// The orderings that drive the paper's breakdowns must hold: DRAM per
	// word >> local SRAM per word >> NoC per flit-ish >> MAC, and the
	// decompression add is cheaper than a MAC (no multiplier).
	p := Default45nm()
	if p.DRAMWordPJ < 100*p.LocalReadPJ {
		t.Errorf("DRAM %v not >> SRAM %v", p.DRAMWordPJ, p.LocalReadPJ)
	}
	if p.LocalReadPJ < p.MACPJ {
		t.Errorf("SRAM access %v not above MAC %v", p.LocalReadPJ, p.MACPJ)
	}
	if p.DecompressPJ >= p.MACPJ {
		t.Errorf("decompress %v should be cheaper than MAC %v", p.DecompressPJ, p.MACPJ)
	}
}

func TestCyclesToSecondsAndLeakage(t *testing.T) {
	p := Default45nm()
	if got := p.CyclesToSeconds(1e9); math.Abs(got-1) > 1e-12 {
		t.Errorf("1e9 cycles at 1 GHz = %v s", got)
	}
	// 1 mW over 1 us = 1 nJ = 1000 pJ.
	if got := p.LeakagePJ(1e-3, 1000); math.Abs(got-1000) > 1e-6 {
		t.Errorf("leakage = %v pJ, want 1000", got)
	}
	if got := p.LeakagePJ(0, 12345); got != 0 {
		t.Errorf("zero leakage power gave %v", got)
	}
}

func TestSRAMAccessPJ(t *testing.T) {
	small, err := SRAMAccessPJ(8 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	if small < 3 || small > 12 {
		t.Errorf("8KB access = %v pJ, want ~6", small)
	}
	big, err := SRAMAccessPJ(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if big < 20 || big > 80 {
		t.Errorf("1MB access = %v pJ, want ~25-60", big)
	}
	if big <= small {
		t.Error("larger SRAM should cost more per access")
	}
	if _, err := SRAMAccessPJ(0); err == nil {
		t.Error("zero capacity should error")
	}
}

func TestSRAMLeakWMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		ca, cb := int(a)+1, int(b)+1
		la, err1 := SRAMLeakW(ca)
		lb, err2 := SRAMLeakW(cb)
		if err1 != nil || err2 != nil {
			return false
		}
		if ca < cb {
			return la <= lb
		}
		return la >= lb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
	if _, err := SRAMLeakW(-1); err == nil {
		t.Error("negative capacity should error")
	}
}

func TestSRAMCycleLatency(t *testing.T) {
	lat, err := SRAMCycleLatency(8 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	if lat != 1 {
		t.Errorf("8KB scratchpad latency = %d cycles, want 1", lat)
	}
	latBig, err := SRAMCycleLatency(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if latBig <= lat {
		t.Errorf("4MB latency %d not above 8KB latency %d", latBig, lat)
	}
	if _, err := SRAMCycleLatency(0); err == nil {
		t.Error("zero capacity should error")
	}
}
