package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"testing"
)

// marshalV1 serializes c in the historical version-1 layout (no
// checksums), for backward-compatibility tests.
func marshalV1(c *Compressed) []byte {
	var buf bytes.Buffer
	buf.Write(magic[:])
	le := binary.LittleEndian
	var tmp [8]byte
	le.PutUint16(tmp[:2], codecVersion1)
	buf.Write(tmp[:2])
	le.PutUint32(tmp[:4], uint32(c.N))
	buf.Write(tmp[:4])
	le.PutUint64(tmp[:8], math.Float64bits(c.Delta))
	buf.Write(tmp[:8])
	le.PutUint32(tmp[:4], uint32(len(c.Segments)))
	buf.Write(tmp[:4])
	for _, s := range c.Segments {
		le.PutUint32(tmp[:4], math.Float32bits(s.M))
		buf.Write(tmp[:4])
		le.PutUint32(tmp[:4], math.Float32bits(s.Q))
		buf.Write(tmp[:4])
		le.PutUint32(tmp[:4], uint32(s.Len))
		buf.Write(tmp[:4])
	}
	return buf.Bytes()
}

func TestCodecReadsVersion1(t *testing.T) {
	c, err := Compress([]float64{1, 2, 3, 2, 1, 0.5, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(marshalV1(c))
	if err != nil {
		t.Fatalf("version-1 stream rejected: %v", err)
	}
	if got.N != c.N || len(got.Segments) != len(c.Segments) {
		t.Fatalf("version-1 decode mismatch: %+v vs %+v", got, c)
	}
	for i := range got.Segments {
		if got.Segments[i] != c.Segments[i] {
			t.Fatalf("segment %d mismatch", i)
		}
	}
}

// TestCodecDetectsEveryBitFlip: flipping any single bit anywhere in a
// version-2 stream must make Unmarshal fail — the checksums leave no
// silently accepted corruption.
func TestCodecDetectsEveryBitFlip(t *testing.T) {
	c, err := Compress([]float64{1, 2, 3, 2, 1, 0.5, 4, 8, 6}, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := c.Marshal()
	for i := range data {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), data...)
			mut[i] ^= 1 << bit
			if _, err := Unmarshal(mut); err == nil {
				t.Fatalf("flip of byte %d bit %d accepted silently", i, bit)
			}
		}
	}
}

// TestCodecChecksumErrorTyped: payload corruption surfaces as
// ErrChecksum specifically.
func TestCodecChecksumErrorTyped(t *testing.T) {
	c, err := Compress([]float64{1, 2, 3, 2, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := c.Marshal()
	// Corrupt the m field of the first segment (offset 26: after magic,
	// 18-byte header and 4-byte header CRC).
	data[26] ^= 0x10
	if _, err := Unmarshal(data); !errors.Is(err, ErrChecksum) {
		t.Errorf("segment corruption error = %v, want ErrChecksum", err)
	}
	data = c.Marshal()
	data[7] ^= 0x01 // parameter count, inside the checksummed header
	if _, err := Unmarshal(data); !errors.Is(err, ErrChecksum) {
		t.Errorf("header corruption error = %v, want ErrChecksum", err)
	}
}

// TestCodecReorderedSegmentsRejected: swapping two intact segment
// records is caught by the index folded into each segment CRC.
func TestCodecReorderedSegmentsRejected(t *testing.T) {
	c := &Compressed{N: 5, Segments: []Segment{{M: 1, Q: 2, Len: 2}, {M: 3, Q: 4, Len: 3}}}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	data := c.Marshal()
	segs := data[26:] // two 16-byte records
	for i := 0; i < segBytesV2; i++ {
		segs[i], segs[segBytesV2+i] = segs[segBytesV2+i], segs[i]
	}
	if _, err := Unmarshal(data); !errors.Is(err, ErrChecksum) {
		t.Errorf("reordered segments error = %v, want ErrChecksum", err)
	}
}

// TestCodecHugeSegmentCountBounded: a corrupt count field must not make
// the reader allocate gigabytes before noticing the stream is short.
func TestCodecHugeSegmentCountBounded(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	le := binary.LittleEndian
	var head [headerBytes]byte
	le.PutUint16(head[0:2], codecVersion)
	le.PutUint32(head[2:6], 0) // n = 0 skips the nseg > n check
	le.PutUint64(head[6:14], math.Float64bits(0))
	le.PutUint32(head[14:18], 0xFFFFFFF0) // absurd segment count
	buf.Write(head[:])
	var tmp [4]byte
	le.PutUint32(tmp[:], crc32.ChecksumIEEE(head[:]))
	buf.Write(tmp[:])
	if _, err := Unmarshal(buf.Bytes()); err == nil {
		t.Fatal("truncated stream with huge segment count accepted")
	}
	// Reaching here without an OOM kill is the real assertion.
}

func TestValidateRejectsNonFinite(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	for _, c := range []*Compressed{
		{N: 2, Segments: []Segment{{M: nan, Q: 0, Len: 2}}},
		{N: 2, Segments: []Segment{{M: 0, Q: nan, Len: 2}}},
		{N: 2, Segments: []Segment{{M: inf, Q: 0, Len: 2}}},
		{N: 2, Segments: []Segment{{M: 0, Q: -inf, Len: 2}}},
	} {
		if err := c.Validate(); !errors.Is(err, ErrNonFinite) {
			t.Errorf("Validate(%+v) = %v, want ErrNonFinite", c.Segments[0], err)
		}
	}
	if err := (&Compressed{N: 2, Delta: math.Inf(1), Segments: []Segment{{Len: 2}}}).Validate(); err == nil {
		t.Error("infinite delta accepted")
	}
}

func TestValidateRejectsLengthMismatch(t *testing.T) {
	for _, c := range []*Compressed{
		{N: 5, Segments: []Segment{{Len: 2}, {Len: 2}}}, // sums short
		{N: 3, Segments: []Segment{{Len: 2}, {Len: 2}}}, // sums long
		{N: 3, Segments: []Segment{{Len: 3}, {Len: 0}}}, // zero-length segment
	} {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate accepted inconsistent lengths %+v", c.Segments)
		}
	}
}

func TestLoadRejectsNonFinite(t *testing.T) {
	var u DecompressionUnit
	nan := float32(math.NaN())
	inf := float32(math.Inf(-1))
	for _, s := range []Segment{
		{M: nan, Q: 1, Len: 3},
		{M: 1, Q: nan, Len: 3},
		{M: inf, Q: 1, Len: 3},
		{M: 1, Q: inf, Len: 3},
	} {
		if err := u.Load(s); !errors.Is(err, ErrNonFinite) {
			t.Errorf("Load(%+v) = %v, want ErrNonFinite", s, err)
		}
		if u.State() != StateIdle {
			t.Fatal("rejected load left the unit non-idle")
		}
	}
	if err := u.Load(Segment{M: 1, Q: 1, Len: 3}); err != nil {
		t.Fatalf("finite load rejected: %v", err)
	}
}
