package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
)

// TestByteIdenticalAcrossWorkers is the end-to-end determinism guarantee:
// the formatted stdout tables and the -csv files must be byte-identical
// between a serial run and a 4-worker run.
func TestByteIdenticalAcrossWorkers(t *testing.T) {
	runners := map[string]func(experiments.Options) error{
		"table1":  runTable1,
		"table2":  runTable2,
		"fig2":    runFig2,
		"fig3":    runFig3,
		"faults":  runFaults,
		"cluster": runCluster,
	}
	for name, run := range runners {
		t.Run(name, func(t *testing.T) {
			serialOpts := experiments.FastOptions()
			serialOpts.Workers = 1
			serialOut, serialCSV := captureOutput(t, run, serialOpts)

			parOpts := experiments.FastOptions()
			parOpts.Workers = 4
			parOut, parCSV := captureOutput(t, run, parOpts)

			if !bytes.Equal(serialOut, parOut) {
				t.Errorf("stdout differs between workers 1 and 4:\n--- serial ---\n%s\n--- parallel ---\n%s", serialOut, parOut)
			}
			if len(serialCSV) == 0 {
				t.Fatal("no CSV files written")
			}
			for fname, data := range serialCSV {
				if !bytes.Equal(data, parCSV[fname]) {
					t.Errorf("%s differs between workers 1 and 4", fname)
				}
			}
		})
	}
}

// captureOutput runs one runner into a fresh temp CSV dir and captured
// stdout.
func captureOutput(t *testing.T, run func(experiments.Options) error, opts experiments.Options) ([]byte, map[string][]byte) {
	t.Helper()
	dir := t.TempDir()
	oldDir := csvDir
	csvDir = dir
	defer func() { csvDir = oldDir }()

	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	oldStdout := os.Stdout
	os.Stdout = w
	runErr := run(opts)
	w.Close()
	os.Stdout = oldStdout
	out, readErr := io.ReadAll(r)
	r.Close()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if readErr != nil {
		t.Fatal(readErr)
	}

	files := map[string][]byte{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		files[e.Name()] = data
	}
	return out, files
}

// TestCheckpointRoundTrip: marked experiments persist and reload; a
// missing file is an empty set; a corrupt file is ignored (fresh start),
// never half-loaded.
func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	cp, err := loadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.done) != 0 {
		t.Fatalf("fresh checkpoint not empty: %v", cp.done)
	}
	for _, name := range []string{"table1", "fig2"} {
		if err := cp.mark(name); err != nil {
			t.Fatal(err)
		}
	}
	re, err := loadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !re.done["table1"] || !re.done["fig2"] || len(re.done) != 2 {
		t.Fatalf("reloaded set %v, want {table1, fig2}", re.done)
	}
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	fresh, err := loadCheckpoint(path)
	if err != nil {
		t.Fatalf("corrupt checkpoint treated as fatal: %v", err)
	}
	if len(fresh.done) != 0 || len(fresh.models) != 0 {
		t.Fatalf("corrupt checkpoint half-loaded: %v / %v", fresh.done, fresh.models)
	}

	// The empty path disables persistence but still tracks in memory.
	mem, err := loadCheckpoint("")
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.mark("fig3"); err != nil {
		t.Fatal(err)
	}
	if !mem.done["fig3"] {
		t.Fatal("in-memory mark lost")
	}
}
