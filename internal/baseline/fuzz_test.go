package baseline

import (
	"bytes"
	"testing"
)

// FuzzRLERoundTrip verifies encode/decode on arbitrary inputs.
func FuzzRLERoundTrip(f *testing.F) {
	f.Add([]byte("aaabbbccc"))
	f.Add(bytes.Repeat([]byte{0}, 1000))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		enc, err := RLEEncode(data)
		if err != nil {
			t.Fatalf("encode failed: %v", err)
		}
		dec, err := RLEDecode(enc)
		if err != nil {
			t.Fatalf("decode failed: %v", err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatal("round trip mismatch")
		}
		n, err := RLECompressedBytes(data)
		if err != nil || n != len(enc) {
			t.Fatalf("size accounting %d != %d (%v)", n, len(enc), err)
		}
	})
}

// FuzzRLEDecode must never panic on arbitrary encodings.
func FuzzRLEDecode(f *testing.F) {
	f.Add([]byte{1, 2})
	f.Add([]byte{0, 0})
	f.Fuzz(func(t *testing.T, enc []byte) {
		dec, err := RLEDecode(enc)
		if err != nil {
			return
		}
		// Accepted streams must re-encode to something decodable.
		re, err := RLEEncode(dec)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := RLEDecode(re)
		if err != nil || !bytes.Equal(back, dec) {
			t.Fatal("canonical re-encode round trip failed")
		}
	})
}

// FuzzHuffmanRoundTrip: the materialized codec must invert itself on
// arbitrary data.
func FuzzHuffmanRoundTrip(f *testing.F) {
	f.Add([]byte("the quick brown fox"))
	f.Add([]byte{0})
	f.Add(bytes.Repeat([]byte{7}, 300))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		enc, err := HuffmanEncode(data)
		if err != nil {
			t.Fatalf("encode failed: %v", err)
		}
		dec, err := HuffmanDecode(enc)
		if err != nil {
			t.Fatalf("decode failed: %v", err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatal("round trip mismatch")
		}
	})
}

// FuzzHuffmanDecode hammers the decoder with arbitrary streams: it must
// never panic, and whatever it accepts must re-encode losslessly. The
// 8-bits-per-symbol cap bounds allocation for corrupted count fields.
func FuzzHuffmanDecode(f *testing.F) {
	good, _ := HuffmanEncode([]byte("seed corpus entry"))
	f.Add(good)
	if len(good) > 4 {
		mut := append([]byte(nil), good...)
		mut[0] ^= 0xFF // corrupt declared count
		f.Add(mut)
		mut = append([]byte(nil), good...)
		mut[10] ^= 0x3F // corrupt the length table
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add(make([]byte, huffHeaderBytes))
	f.Fuzz(func(t *testing.T, enc []byte) {
		dec, err := HuffmanDecode(enc)
		if err != nil {
			return
		}
		if len(dec) == 0 {
			return
		}
		re, err := HuffmanEncode(dec)
		if err != nil {
			t.Fatalf("re-encode of accepted stream failed: %v", err)
		}
		back, err := HuffmanDecode(re)
		if err != nil || !bytes.Equal(back, dec) {
			t.Fatal("canonical re-encode round trip failed")
		}
	})
}

// FuzzHuffman must never panic and must respect the entropy bound.
func FuzzHuffman(f *testing.F) {
	f.Add([]byte("the quick brown fox"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		bits, err := HuffmanCompressedBits(data)
		if err != nil {
			t.Fatalf("huffman failed: %v", err)
		}
		bound, err := ShannonBound(data)
		if err != nil {
			t.Fatal(err)
		}
		payload := float64(bits) - 256*8
		if payload+1e-9 < bound {
			t.Fatalf("payload %v bits beats the entropy bound %v", payload, bound)
		}
	})
}
