// Package planner implements the paper's stated future work (Sec. V):
// selecting the set of layers to compress and, for each, the appropriate
// compression scheme and aggressiveness, to maximize the overall
// compression ratio under an accuracy constraint.
//
// The planner runs a greedy marginal-benefit search: starting from the
// uncompressed model, it repeatedly evaluates single-step escalations
// (compress one more layer, or move an already compressed layer to the
// next (codec, level) pair on its ladder), applies the escalation with
// the best bits-saved-per-accuracy-lost ratio that keeps the model within
// the accuracy budget, and stops when no escalation fits. The search
// needs only forward evaluations — consistent with the compression
// technique's retraining-free philosophy.
//
// With a single codec the ladder is that codec's level grid (the paper's
// global delta sweep, made per-layer). With several codecs the ladder of
// each layer is every (codec, level) pair ordered from least to most
// compressed *for that layer's weights*, so the search escalates across
// schemes — a layer can move from the segment codec at a low tolerance
// to the bit-plane codec when that is the next cheapest step — and the
// result is a mixed-codec plan.
package planner

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/obs"
)

// AccuracyFunc measures the accuracy of the model in its *current*
// parameter state (e.g. top-1 on a held-out set, or top-5 fidelity).
type AccuracyFunc func() (float64, error)

// Options configures the search.
type Options struct {
	// MaxAccuracyDrop is the budget relative to the uncompressed model's
	// accuracy (e.g. 0.05 allows a five-point drop).
	MaxAccuracyDrop float64
	// DeltaGrid is the legacy single-codec escalation ladder of segment
	// tolerance thresholds, in percent of each layer's amplitude,
	// ascending. It is used only when Codecs is empty.
	DeltaGrid []float64
	// Codecs is the mixed-codec search space: the escalation ladder of
	// every layer becomes the union of each codec's (codec, level)
	// pairs, ordered by that layer's compressed size. Empty means the
	// segment codec over DeltaGrid.
	Codecs []core.Codec
	// Layers restricts the candidate set (nil = every CONV/DWCONV/FC
	// layer with parameters).
	Layers []string
	// MaxEvals bounds the number of accuracy evaluations (0 = 10000).
	MaxEvals int
	// Storage is the segment storage accounting.
	Storage core.StorageModel
	// Metrics, when non-nil, receives the search's trial counters
	// (evaluations, rounds, committed escalations, dead rungs). The
	// search itself is unaffected.
	Metrics *obs.Metrics
}

// DefaultOptions returns a 5%-drop budget over the paper's delta ladder.
func DefaultOptions() Options {
	return Options{
		MaxAccuracyDrop: 0.05,
		DeltaGrid:       []float64{2, 5, 10, 15, 20},
		Storage:         core.DefaultStorage,
	}
}

// Assignment is one compressed layer in the final plan.
type Assignment struct {
	Layer string
	// Codec is the scheme compressing the layer; Level its codec-specific
	// aggressiveness (the tolerance percent for the segment codec).
	Codec string
	Level float64
	// DeltaPct mirrors Level for callers predating the codec arena.
	DeltaPct float64
	CR       float64
	Bits     int // compressed bits of the layer's weight stream
	Params   int
}

// Plan is the planner's result.
type Plan struct {
	Assignments  []Assignment
	BaseAccuracy float64
	Accuracy     float64 // accuracy with the plan applied
	WeightedCR   float64 // whole-model compression ratio
	Evals        int     // accuracy evaluations spent
}

// pair is one rung of a layer's escalation ladder.
type pair struct {
	codec core.Codec
	level float64
}

// trial caches the compressed artifacts of one (layer, codec, level)
// point: the serialized stream, its accounted bits, and — once needed —
// the decompressed approximation. Reverts and commits reinstall the
// cached approximation, so a restore is bit-identical to the trial that
// produced it and costs no recompression.
type trial struct {
	p      pair
	stream []byte
	bits   int
	approx []float64 // nil until first installed
}

// weights returns the cached decompressed stream, materializing it once.
func (t *trial) weights() ([]float64, error) {
	if t.approx == nil {
		w, err := t.p.codec.Decompress(t.stream)
		if err != nil {
			return nil, err
		}
		t.approx = w
	}
	return t.approx, nil
}

// layerState tracks the search state for one candidate layer.
type layerState struct {
	name     string
	original []float64
	ladder   []*trial // ordered least → most compressed for this layer
	pos      int      // committed ladder index; -1 = uncompressed
	dead     []bool   // rungs rejected for violating the accuracy floor
	bits     int      // current compressed bits (original bits if pos < 0)
}

// next returns the index of the layer's next escalation: the first rung
// past the committed one that actually saves bits and has not been
// rejected. Rejected rungs stay dead — as the plan grows, accuracy only
// degrades, so a rung that violated the floor once will not pass later —
// which lets the search route around a bad (codec, level) point instead
// of stalling the layer on it.
func (st *layerState) next() (int, bool) {
	for i := st.pos + 1; i < len(st.ladder); i++ {
		if st.dead[i] {
			continue
		}
		if st.ladder[i].bits < st.bits {
			return i, true
		}
	}
	return 0, false
}

// restore reinstalls a layer's committed state: its original weights if
// uncompressed, or the cached decompressed stream at its committed rung.
func (st *layerState) restore(m *models.Model) error {
	if st.pos < 0 {
		return m.SetLayerWeights(st.name, st.original)
	}
	w, err := st.ladder[st.pos].weights()
	if err != nil {
		return err
	}
	return m.SetLayerWeights(st.name, w)
}

// searchPairs resolves the (codec, level) search space.
func searchPairs(opts Options) ([]pair, error) {
	if len(opts.Codecs) > 0 {
		var pairs []pair
		for _, c := range opts.Codecs {
			if c == nil {
				return nil, errors.New("planner: nil codec in search space")
			}
			levels := c.Levels()
			if len(levels) == 0 {
				return nil, fmt.Errorf("planner: codec %q has no levels", c.Name())
			}
			for _, l := range levels {
				pairs = append(pairs, pair{codec: c, level: l})
			}
		}
		return pairs, nil
	}
	if len(opts.DeltaGrid) == 0 {
		return nil, errors.New("planner: empty delta grid")
	}
	for i := 1; i < len(opts.DeltaGrid); i++ {
		if opts.DeltaGrid[i] <= opts.DeltaGrid[i-1] {
			return nil, errors.New("planner: delta grid must ascend")
		}
	}
	seg := core.SegmentCodec()
	pairs := make([]pair, 0, len(opts.DeltaGrid))
	for _, pct := range opts.DeltaGrid {
		pairs = append(pairs, pair{codec: seg, level: pct})
	}
	return pairs, nil
}

// buildLadder compresses one layer at every search pair and orders the
// trials least → most compressed, tie-broken by (codec name, level) so
// the ladder is deterministic regardless of pair order.
func buildLadder(name string, w []float64, pairs []pair, sm core.StorageModel) ([]*trial, error) {
	ladder := make([]*trial, 0, len(pairs))
	for _, p := range pairs {
		stream, err := p.codec.Compress(w, p.level)
		if err != nil {
			return nil, fmt.Errorf("planner: %s with %s at level %v: %w", name, p.codec.Name(), p.level, err)
		}
		bits, err := p.codec.CompressedBits(stream, sm)
		if err != nil {
			return nil, fmt.Errorf("planner: %s with %s at level %v: %w", name, p.codec.Name(), p.level, err)
		}
		ladder = append(ladder, &trial{p: p, stream: stream, bits: bits})
	}
	sort.SliceStable(ladder, func(i, j int) bool {
		a, b := ladder[i], ladder[j]
		if a.bits != b.bits {
			return a.bits > b.bits
		}
		if an, bn := a.p.codec.Name(), b.p.codec.Name(); an != bn {
			return an < bn
		}
		return a.p.level < b.p.level
	})
	return ladder, nil
}

// Greedy searches for the best multi-layer compression plan. The model's
// parameters are mutated during the search and left in the final plan's
// state on success (restore the returned originals to undo; see
// Plan/Assignments). accuracy is called after every trial mutation.
func Greedy(m *models.Model, accuracy AccuracyFunc, opts Options) (*Plan, error) {
	if accuracy == nil {
		return nil, errors.New("planner: nil accuracy function")
	}
	if opts.MaxAccuracyDrop < 0 {
		return nil, fmt.Errorf("planner: negative accuracy budget %v", opts.MaxAccuracyDrop)
	}
	pairs, err := searchPairs(opts)
	if err != nil {
		return nil, err
	}
	maxEvals := opts.MaxEvals
	if maxEvals == 0 {
		maxEvals = 10000
	}

	layers, err := candidateLayers(m, opts.Layers)
	if err != nil {
		return nil, err
	}
	states := make([]*layerState, 0, len(layers))
	for _, name := range layers {
		w, err := m.LayerWeights(name)
		if err != nil {
			return nil, err
		}
		ladder, err := buildLadder(name, w, pairs, opts.Storage)
		if err != nil {
			return nil, err
		}
		states = append(states, &layerState{
			name:     name,
			original: w,
			ladder:   ladder,
			pos:      -1,
			dead:     make([]bool, len(ladder)),
			bits:     32 * len(w),
		})
	}

	base, err := accuracy()
	if err != nil {
		return nil, err
	}
	evals := 1
	floor := base - opts.MaxAccuracyDrop
	current := base

	// Trial counters; the handles are nil (inert) when no registry is
	// installed, so the hot loop pays one branch per increment.
	mEvals := opts.Metrics.Counter("planner_evals")
	mRounds := opts.Metrics.Counter("planner_rounds")
	mEscalations := opts.Metrics.Counter("planner_escalations")
	mDeadRungs := opts.Metrics.Counter("planner_dead_rungs")
	mEvals.Inc() // the baseline evaluation

	type escalation struct {
		st    *layerState
		idx   int
		acc   float64
		score float64
	}
	for round := 0; ; round++ {
		var best *escalation
		exhausted := false
		// Rotating the scan start spreads a mid-scan budget stop over all
		// layers instead of always cutting off the same tail, so a tight
		// MaxEvals does not systematically favor early layers.
		for k := 0; k < len(states); k++ {
			st := states[(k+round)%len(states)]
			idx, ok := st.next()
			if !ok {
				continue
			}
			if evals >= maxEvals {
				exhausted = true
				break
			}
			tr := st.ladder[idx]
			approx, err := tr.weights()
			if err != nil {
				return nil, err
			}
			if err := m.SetLayerWeights(st.name, approx); err != nil {
				return nil, err
			}
			acc, err := accuracy()
			evals++
			mEvals.Inc()
			// Revert to the committed cached state before judging.
			if rerr := st.restore(m); rerr != nil {
				return nil, rerr
			}
			if err != nil {
				return nil, err
			}
			if acc < floor {
				st.dead[idx] = true
				mDeadRungs.Inc()
				continue
			}
			drop := current - acc
			if drop < 1e-6 {
				drop = 1e-6
			}
			score := float64(st.bits-tr.bits) / drop
			if best == nil || score > best.score {
				best = &escalation{st: st, idx: idx, acc: acc, score: score}
			}
		}
		// Commit the winning escalation even when the eval budget ran out
		// mid-scan: it was fully evaluated within the budget, so dropping
		// it would waste the evaluations already spent on it.
		if best != nil {
			st := best.st
			st.pos = best.idx
			st.bits = st.ladder[best.idx].bits
			w, err := st.ladder[best.idx].weights()
			if err != nil {
				return nil, err
			}
			if err := m.SetLayerWeights(st.name, w); err != nil {
				return nil, err
			}
			current = best.acc
			mEscalations.Inc()
		}
		mRounds.Inc()
		if best == nil || exhausted || evals >= maxEvals {
			break
		}
	}

	// Assemble the plan.
	plan := &Plan{BaseAccuracy: base, Accuracy: current, Evals: evals}
	var totalBits, planBits float64
	totalBits = float64(m.TotalParams()) * 32
	planBits = totalBits
	for _, st := range states {
		origBits := float64(32 * len(st.original))
		planBits -= origBits - float64(st.bits)
		if st.pos < 0 {
			continue
		}
		tr := st.ladder[st.pos]
		plan.Assignments = append(plan.Assignments, Assignment{
			Layer:    st.name,
			Codec:    tr.p.codec.Name(),
			Level:    tr.p.level,
			DeltaPct: tr.p.level,
			CR:       origBits / float64(st.bits),
			Bits:     st.bits,
			Params:   len(st.original),
		})
	}
	if planBits > 0 {
		plan.WeightedCR = totalBits / planBits
	}
	return plan, nil
}

// candidateLayers resolves the layer filter to parameterized layers.
func candidateLayers(m *models.Model, filter []string) ([]string, error) {
	if len(filter) > 0 {
		for _, name := range filter {
			if m.Graph.Layer(name) == nil {
				return nil, fmt.Errorf("planner: unknown layer %q", name)
			}
		}
		return filter, nil
	}
	var out []string
	for _, l := range m.Graph.Layers() {
		switch l.Kind() {
		case "CONV", "DWCONV", "FC":
			if len(l.Params()) > 0 {
				out = append(out, l.Name())
			}
		}
	}
	if len(out) == 0 {
		return nil, errors.New("planner: no compressible layers")
	}
	return out, nil
}
