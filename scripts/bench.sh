#!/usr/bin/env bash
# bench.sh — run the benchmark suites with -benchmem and emit a
# machine-readable JSON snapshot (iterations, ns/op, B/op, allocs/op and
# any extra metrics such as MB/s or sim-cycles per benchmark).
#
# Usage:
#   scripts/bench.sh                      # all suites, snapshot to stdout
#   scripts/bench.sh -o BENCH.json        # write snapshot to a file
#   scripts/bench.sh -t 2s ./internal/nn  # custom -benchtime and packages
#
# Tracking a perf change over time is a two-snapshot diff; for
# statistically sound comparisons prefer benchstat over raw snapshots:
#
#   go test -run '^$' -bench . -benchmem -count 10 ./internal/tensor/ > old.txt
#   ... apply the change ...
#   go test -run '^$' -bench . -benchmem -count 10 ./internal/tensor/ > new.txt
#   benchstat old.txt new.txt
#
# (benchstat is golang.org/x/perf/cmd/benchstat; the snapshot JSON needs
# only the stock toolchain.)
set -euo pipefail
cd "$(dirname "$0")/.."

out=""
benchtime="1s"
while getopts "o:t:" opt; do
	case "$opt" in
	o) out="$OPTARG" ;;
	t) benchtime="$OPTARG" ;;
	*) exit 2 ;;
	esac
done
shift $((OPTIND - 1))

pkgs=("$@")
if [ ${#pkgs[@]} -eq 0 ]; then
	pkgs=(./internal/tensor/ ./internal/nn/ ./internal/core/ ./internal/accel/ ./internal/noc/)
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# The matmul-heavy suites depend on the runtime CPUID kernel dispatch;
# record the decision (and any VECMM override) in the snapshot metadata
# so numbers from different machines compare. Output format:
#   kernel=<selected> available=<a,b,c> vecmm=<override>
kernel_line="$(go run ./cmd/nocsim -print-kernel)"
matmul_kernel="$(sed -n 's/^kernel=\([^ ]*\).*/\1/p' <<<"$kernel_line")"
matmul_kernels="$(sed -n 's/.* available=\([^ ]*\).*/\1/p' <<<"$kernel_line")"
vecmm="$(sed -n 's/.* vecmm=\(.*\)$/\1/p' <<<"$kernel_line")"

go test -run '^$' -bench . -benchmem -benchtime "$benchtime" "${pkgs[@]}" | tee "$raw" >&2

json="$(awk -v benchtime="$benchtime" \
	-v matmul_kernel="$matmul_kernel" -v matmul_kernels="$matmul_kernels" -v vecmm="$vecmm" '
function jesc(s) { gsub(/\\/, "\\\\", s); gsub(/"/, "\\\"", s); return s }
function metkey(u) { gsub(/\//, "_per_", u); gsub(/[^A-Za-z0-9_]/, "_", u); return u }
/^goos: /   { goos = $2 }
/^goarch: / { goarch = $2 }
/^pkg: /    { pkg = $2 }
/^cpu: /    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
	name = $1
	line = "      \"" jesc(name) "\": {\"iterations\": " $2
	for (i = 3; i + 1 <= NF; i += 2)
		line = line ", \"" metkey($(i + 1)) "\": " $i
	line = line "}"
	if (pkg in bodies) bodies[pkg] = bodies[pkg] ",\n" line
	else { bodies[pkg] = line; order[++npkg] = pkg }
}
END {
	printf "{\n"
	printf "  \"goos\": \"%s\",\n", jesc(goos)
	printf "  \"goarch\": \"%s\",\n", jesc(goarch)
	printf "  \"cpu\": \"%s\",\n", jesc(cpu)
	printf "  \"benchtime\": \"%s\",\n", jesc(benchtime)
	printf "  \"matmul_kernel\": \"%s\",\n", jesc(matmul_kernel)
	printf "  \"matmul_kernels_available\": \"%s\",\n", jesc(matmul_kernels)
	printf "  \"vecmm_override\": \"%s\",\n", jesc(vecmm)
	printf "  \"suites\": {\n"
	for (p = 1; p <= npkg; p++) {
		printf "    \"%s\": {\n%s\n    }", jesc(order[p]), bodies[order[p]]
		printf p < npkg ? ",\n" : "\n"
	}
	printf "  }\n}\n"
}' "$raw")"

if [ -n "$out" ]; then
	printf '%s\n' "$json" > "$out"
	echo "wrote $out" >&2
else
	printf '%s\n' "$json"
fi
