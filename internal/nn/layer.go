// Package nn is the CNN inference substrate: layers (convolution, dense,
// pooling, batch normalization, activations, merge nodes), a DAG graph
// executor, and parameter enumeration.
//
// Tensors are per-sample [H, W, C] (channels last) or flat [D] vectors;
// batching is handled by the caller looping over samples, which keeps the
// layer implementations simple and the memory footprint of the very large
// models bounded.
//
// The package exposes everything the rest of the system needs from a
// model: Forward for accuracy/fidelity evaluation, Params for the
// compression core's parameter succession, and Cost/OutShape for the
// accelerator simulator's traffic and computation geometry.
package nn

import (
	"errors"
	"fmt"

	"repro/internal/tensor"
)

// Param is one named parameter tensor of a layer.
type Param struct {
	Name string
	T    *tensor.Tensor
}

// Layer is a node of a CNN computation graph.
type Layer interface {
	// Name returns the unique layer name (e.g. "dense_1").
	Name() string
	// Kind returns the layer type tag (e.g. "FC", "CONV").
	Kind() string
	// OutShape computes the output shape for the given input shapes.
	OutShape(in [][]int) ([]int, error)
	// Forward applies the layer to its inputs. Most layers take exactly
	// one input; merge layers (Add, Concat) take several.
	Forward(xs []*tensor.Tensor) (*tensor.Tensor, error)
	// Params returns the layer's parameter tensors. Weights come first;
	// an empty slice means a parameter-free layer.
	Params() []Param
	// Cost returns the multiply-accumulate count of one forward pass
	// given the input shapes; parameter-free layers may return 0.
	Cost(in [][]int) (uint64, error)
}

// Backprop is implemented by layers that support gradient computation,
// enough to train the small networks (LeNet-5) for real.
type Backprop interface {
	Layer
	// Backward consumes the forward input x and upstream gradient dy,
	// accumulates parameter gradients, and returns dx.
	Backward(x, dy *tensor.Tensor) (*tensor.Tensor, error)
	// Grads returns gradient tensors parallel to Params().
	Grads() []Param
	// ZeroGrads clears accumulated gradients.
	ZeroGrads()
}

// Common layer errors.
var (
	ErrArity = errors.New("nn: wrong number of inputs")
	ErrShape = errors.New("nn: bad input shape")
)

func wantOne(xs []*tensor.Tensor) (*tensor.Tensor, error) {
	if len(xs) != 1 {
		return nil, fmt.Errorf("%w: got %d, want 1", ErrArity, len(xs))
	}
	return xs[0], nil
}

func wantOneShape(in [][]int) ([]int, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("%w: got %d, want 1", ErrArity, len(in))
	}
	return in[0], nil
}

// NumParams returns the total parameter count of a layer.
func NumParams(l Layer) int {
	n := 0
	for _, p := range l.Params() {
		n += p.T.Size()
	}
	return n
}

// WeightStream flattens every parameter tensor of a layer, in order, into
// one float64 succession — the W = {w_1 ... w_n} the compression core
// consumes. The serialization order is fixed (Params order, row-major), so
// SetWeightStream can install a modified stream back.
func WeightStream(l Layer) []float64 {
	out := make([]float64, 0, NumParams(l))
	for _, p := range l.Params() {
		for _, v := range p.T.Data {
			out = append(out, float64(v))
		}
	}
	return out
}

// SetWeightStream installs a flat parameter succession back into the
// layer's tensors, inverse of WeightStream.
func SetWeightStream(l Layer, w []float64) error {
	if len(w) != NumParams(l) {
		return fmt.Errorf("nn: stream has %d values, layer %q has %d params", len(w), l.Name(), NumParams(l))
	}
	i := 0
	for _, p := range l.Params() {
		for j := range p.T.Data {
			p.T.Data[j] = float32(w[i])
			i++
		}
	}
	return nil
}

func shapeVolume(s []int) int {
	v := 1
	for _, d := range s {
		v *= d
	}
	return v
}
