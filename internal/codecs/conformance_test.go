package codecs

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/quant"
	"repro/internal/stats"
)

// The conformance suite runs every registered codec through the shared
// Codec contract:
//
//   - Compress is deterministic and its streams pass the codec's own
//     Validate.
//   - Decompress preserves length; lossless codecs round-trip bit-exactly
//     at float32 (the datapath width), lossy codecs stay within their
//     declared error bound.
//   - Validate rejects empty, truncated (every prefix) and
//     corrupted-header streams.
//   - CompressedBits is positive on valid streams and errors on invalid
//     ones, under every storage model.
//
// Error bounds are codec-specific. The quantized codecs guarantee
// MaxAbsError(p, level) per point. The paper's segment codec has no
// per-point guarantee tied to its level — delta governs the monotone
// segmentation, not the least-squares fit — so its conformance bound is
// the coarse one it can actually honor: errors bounded by the parameter
// amplitude (trend-with-delta behavior is pinned in internal/core).

// testVectors are deterministic weight successions spanning the shapes
// codecs meet in practice: smooth, noisy, sparse, constant, tiny.
func testVectors() map[string][]float64 {
	lcg := make([]float64, 700)
	s := uint64(1)
	for i := range lcg {
		s = s*6364136223846793005 + 1442695040888963407
		lcg[i] = (float64(s>>11)/float64(1<<53) - 0.5) * 0.4
	}
	sine := make([]float64, 300)
	for i := range sine {
		sine[i] = math.Sin(float64(i)*0.071)*0.3 + 0.05*math.Sin(float64(i)*1.3)
	}
	sparse := make([]float64, 256)
	for i := range sparse {
		if i%17 == 0 {
			sparse[i] = float64(i%5) - 2
		}
	}
	return map[string][]float64{
		"lcg":      lcg,
		"sine":     sine,
		"sparse":   sparse,
		"constant": {0.25, 0.25, 0.25, 0.25, 0.25, 0.25, 0.25},
		"single":   {-0.125},
		"short":    {0.5, -0.5, 0.25},
	}
}

// errBound returns the per-point absolute error bound codec c claims for
// input w at the given level.
func errBound(t *testing.T, c core.Codec, w []float64, level float64) float64 {
	t.Helper()
	if c.Lossless() {
		return 0
	}
	switch c.Name() {
	case core.SegmentCodecName:
		return 2 * stats.Amplitude(w)
	case BitPlaneCodecName, QuantHuffCodecName:
		tq, err := quant.Quantize(w)
		if err != nil {
			t.Fatalf("quantizing reference: %v", err)
		}
		return MaxAbsError(tq.P, int(level)) + 1e-9
	default:
		t.Fatalf("no error bound declared for lossy codec %q", c.Name())
		return 0
	}
}

func TestConformanceRoundTrip(t *testing.T) {
	for _, c := range core.RegisteredCodecs() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			levels := c.Levels()
			if len(levels) == 0 {
				t.Fatal("codec advertises no levels")
			}
			for i := 1; i < len(levels); i++ {
				if levels[i] <= levels[i-1] {
					t.Fatalf("levels not ascending: %v", levels)
				}
			}
			for name, w := range testVectors() {
				for _, level := range levels {
					stream, err := c.Compress(w, level)
					if err != nil {
						t.Fatalf("%s level %v: compress: %v", name, level, err)
					}
					if len(stream) == 0 {
						t.Fatalf("%s level %v: empty stream", name, level)
					}
					again, err := c.Compress(w, level)
					if err != nil || !bytes.Equal(stream, again) {
						t.Fatalf("%s level %v: compression not deterministic (err %v)", name, level, err)
					}
					if err := c.Validate(stream); err != nil {
						t.Fatalf("%s level %v: own stream fails Validate: %v", name, level, err)
					}
					for _, sm := range []core.StorageModel{core.DefaultStorage, core.RealisticStorage} {
						bits, err := c.CompressedBits(stream, sm)
						if err != nil {
							t.Fatalf("%s level %v: CompressedBits: %v", name, level, err)
						}
						if bits <= 0 {
							t.Fatalf("%s level %v: CompressedBits = %d", name, level, bits)
						}
					}
					got, err := c.Decompress(stream)
					if err != nil {
						t.Fatalf("%s level %v: decompress: %v", name, level, err)
					}
					if len(got) != len(w) {
						t.Fatalf("%s level %v: decompressed %d values, want %d", name, level, len(got), len(w))
					}
					if c.Lossless() {
						for i := range w {
							if math.Float32bits(float32(w[i])) != math.Float32bits(float32(got[i])) {
								t.Fatalf("%s level %v: lossless codec altered w[%d]: %v -> %v",
									name, level, i, w[i], got[i])
							}
						}
						continue
					}
					bound := errBound(t, c, w, level)
					for i := range w {
						if e := math.Abs(w[i] - got[i]); e > bound {
							t.Fatalf("%s level %v: |err[%d]| = %v exceeds bound %v",
								name, level, i, e, bound)
						}
					}
				}
			}
		})
	}
}

func TestConformanceRejectsBadInput(t *testing.T) {
	for _, c := range core.RegisteredCodecs() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			level := c.Levels()[0]
			if _, err := c.Compress(nil, level); err == nil {
				t.Error("compressing empty input should error")
			}
			if _, err := c.Compress([]float64{1, 2, 3}, -1); err == nil {
				t.Error("negative level should error")
			}
			for _, stream := range [][]byte{nil, {}} {
				if err := c.Validate(stream); err == nil {
					t.Error("empty stream should fail Validate")
				}
				if _, err := c.Decompress(stream); err == nil {
					t.Error("empty stream should fail Decompress")
				}
				if _, err := c.CompressedBits(stream, core.DefaultStorage); err == nil {
					t.Error("empty stream should fail CompressedBits")
				}
			}
		})
	}
}

// TestConformanceRejectsTruncation cuts a valid stream at every byte
// boundary and requires Validate to reject each prefix: a codec whose
// streams stay "valid" when bytes fall off the end silently decodes
// wrong weights when a NoC transfer is cut short.
func TestConformanceRejectsTruncation(t *testing.T) {
	w := testVectors()["short"]
	for _, c := range core.RegisteredCodecs() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			levels := c.Levels()
			for _, level := range []float64{levels[0], levels[len(levels)-1]} {
				stream, err := c.Compress(w, level)
				if err != nil {
					t.Fatal(err)
				}
				for k := 0; k < len(stream); k++ {
					if err := c.Validate(stream[:k]); err == nil {
						t.Fatalf("level %v: prefix of %d/%d bytes passed Validate",
							level, k, len(stream))
					}
				}
			}
		})
	}
}

// TestConformanceRejectsCorruptHeader flips the leading byte of a valid
// stream; every codec's framing (magic byte or archival checksum) must
// catch it.
func TestConformanceRejectsCorruptHeader(t *testing.T) {
	w := testVectors()["sine"]
	for _, c := range core.RegisteredCodecs() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			stream, err := c.Compress(w, c.Levels()[0])
			if err != nil {
				t.Fatal(err)
			}
			bad := append([]byte(nil), stream...)
			bad[0] ^= 0xFF
			if err := c.Validate(bad); err == nil {
				t.Error("corrupt leading byte passed Validate")
			}
			if _, err := c.Decompress(bad); err == nil {
				t.Error("corrupt leading byte passed Decompress")
			}
		})
	}
}

// TestConformanceNonFinite: lossy codecs must refuse non-finite weights
// (their quantization or fitting would silently poison the output);
// lossless codecs must carry them through bit-exactly at float32.
func TestConformanceNonFinite(t *testing.T) {
	w := []float64{0.5, math.NaN(), -0.25, math.Inf(1)}
	for _, c := range core.RegisteredCodecs() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			for _, level := range c.Levels() {
				stream, err := c.Compress(w, level)
				if !c.Lossless() {
					if err == nil {
						t.Fatalf("level %v: lossy codec accepted non-finite input", level)
					}
					continue
				}
				if err != nil {
					t.Fatalf("level %v: %v", level, err)
				}
				got, err := c.Decompress(stream)
				if err != nil {
					t.Fatalf("level %v: %v", level, err)
				}
				for i := range w {
					if math.Float32bits(float32(w[i])) != math.Float32bits(float32(got[i])) {
						t.Errorf("level %v: w[%d] %v -> %v", level, i, w[i], got[i])
					}
				}
			}
		})
	}
}

// TestAllRegistered pins the expected codec arena: the five schemes of
// the mixed-codec experiments, discoverable by name.
func TestAllRegistered(t *testing.T) {
	want := []string{
		core.SegmentCodecName, "huffman", "rle", BitPlaneCodecName, QuantHuffCodecName,
	}
	for _, name := range want {
		c, err := core.LookupCodec(name)
		if err != nil {
			t.Errorf("codec %q not registered: %v", name, err)
			continue
		}
		if c.Name() != name {
			t.Errorf("codec %q reports name %q", name, c.Name())
		}
	}
	if got := len(All()); got < len(want) {
		t.Errorf("All() returns %d codecs, want at least %d", got, len(want))
	}
}
