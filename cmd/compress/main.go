// Command compress applies the paper's lossy compression to a weight
// stream and reports the Table II metrics. The stream comes either from a
// model layer (built in-process with synthetic trained-like weights) or
// from a raw little-endian float32 file.
//
// Usage:
//
//	compress -model LeNet-5 [-layer dense_1] [-delta 15] [-o out.ncwc]
//	compress -model LeNet-5 -weights lenet.nnwt  # trained weights (cmd/trainer)
//	compress -in weights.f32 [-delta 15] [-o out.ncwc]
//	compress -decompress in.ncwc [-o out.f32]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/nn"
)

func main() {
	var (
		modelName  = flag.String("model", "", "model to take weights from (e.g. LeNet-5)")
		layer      = flag.String("layer", "", "layer name (default: the model's selected layer)")
		inFile     = flag.String("in", "", "raw little-endian float32 weight file")
		delta      = flag.Float64("delta", 15, "tolerance threshold, percent of amplitude")
		outFile    = flag.String("o", "", "output file (compressed stream, or floats with -decompress)")
		decompress = flag.String("decompress", "", "decompress this .ncwc file instead")
		seed       = flag.Int64("seed", 2020, "model weight seed")
		weights    = flag.String("weights", "", "load trained weights (.nnwt from cmd/trainer) into the model")
		storage    = flag.String("storage", "paper", "storage accounting: paper (2x32b) or realistic (+16b length)")
	)
	flag.Parse()

	if *decompress != "" {
		if err := runDecompress(*decompress, *outFile); err != nil {
			fatal(err)
		}
		return
	}

	w, src, err := loadWeights(*modelName, *layer, *inFile, *weights, *seed)
	if err != nil {
		fatal(err)
	}
	sm := core.DefaultStorage
	if *storage == "realistic" {
		sm = core.RealisticStorage
	}
	rep, c, err := core.Assess(w, *delta, len(w), sm)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("source:           %s (%d parameters)\n", src, len(w))
	fmt.Printf("delta:            %.3g%% of amplitude (|delta| = %.4g)\n", rep.DeltaPct, rep.Delta)
	fmt.Printf("segments:         %d (avg run length %.2f)\n", rep.Segments, rep.AvgRunLen)
	fmt.Printf("compression:      %.3fx (%d -> %d bits)\n", rep.CR, c.OriginalBits(), c.CompressedBits(sm))
	fmt.Printf("mse:              %.3e (max err %.3e)\n", rep.MSE, rep.MaxErr)
	fmt.Printf("decompression:    %d cycles at one weight/cycle\n", core.DecompressionCycles(c))
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if _, err := c.WriteTo(f); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote:            %s\n", *outFile)
	}
}

func loadWeights(modelName, layer, inFile, weightFile string, seed int64) ([]float64, string, error) {
	switch {
	case inFile != "":
		data, err := os.ReadFile(inFile)
		if err != nil {
			return nil, "", err
		}
		if len(data)%4 != 0 {
			return nil, "", fmt.Errorf("%s: size %d not a multiple of 4", inFile, len(data))
		}
		w := make([]float64, len(data)/4)
		for i := range w {
			w[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(data[4*i:])))
		}
		return w, inFile, nil
	case modelName != "":
		b, err := models.ByName(modelName)
		if err != nil {
			return nil, "", err
		}
		m, err := b.Build(seed)
		if err != nil {
			return nil, "", err
		}
		if weightFile != "" {
			f, err := os.Open(weightFile)
			if err != nil {
				return nil, "", err
			}
			defer f.Close()
			if err := nn.LoadWeights(f, m.Graph); err != nil {
				return nil, "", fmt.Errorf("loading %s: %w", weightFile, err)
			}
		}
		if layer == "" {
			layer = m.SelectedLayer
		}
		w, err := m.LayerWeights(layer)
		if err != nil {
			return nil, "", err
		}
		return w, fmt.Sprintf("%s/%s", modelName, layer), nil
	default:
		return nil, "", fmt.Errorf("need -model or -in (see -h)")
	}
}

func runDecompress(in, out string) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	c, err := core.ReadCompressed(f)
	if err != nil {
		return err
	}
	w, err := c.Decompress()
	if err != nil {
		return err
	}
	fmt.Printf("decompressed %d parameters from %d segments (delta was %.4g)\n",
		len(w), len(c.Segments), c.Delta)
	if out == "" {
		return nil
	}
	buf := make([]byte, 4*len(w))
	for i, v := range w {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(float32(v)))
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "compress:", err)
	os.Exit(1)
}
