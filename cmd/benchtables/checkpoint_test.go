package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCheckpointModelResultsRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	cp, err := loadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.mark("table2"); err != nil {
		t.Fatal(err)
	}
	if err := cp.Store("fig10/LeNet-5", map[string]int{"points": 3}); err != nil {
		t.Fatal(err)
	}

	re, err := loadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !re.done["table2"] {
		t.Fatal("completed experiment lost on reload")
	}
	var got map[string]int
	ok, err := re.Load("fig10/LeNet-5", &got)
	if err != nil || !ok || got["points"] != 3 {
		t.Fatalf("model result lost on reload: ok=%v err=%v got=%v", ok, err, got)
	}
}

// TestCheckpointTruncatedIsIgnored pins the crash-safety contract: a
// checkpoint cut off mid-write is detected and ignored — the run starts
// fresh — rather than half-loaded or treated as fatal.
func TestCheckpointTruncatedIsIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	cp, err := loadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table1", "table2", "fig2"} {
		if err := cp.mark(name); err != nil {
			t.Fatal(err)
		}
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(whole) {
		t.Fatalf("saved checkpoint is not valid JSON: %q", whole)
	}

	// Simulate a torn write at every prefix length that breaks the JSON.
	for cut := 1; cut < len(whole); cut++ {
		prefix := whole[:cut]
		if json.Valid(prefix) {
			continue // a valid prefix parses as a complete (older) doc
		}
		if err := os.WriteFile(path, prefix, 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := loadCheckpoint(path)
		if err != nil {
			t.Fatalf("cut at %d: truncated checkpoint treated as fatal: %v", cut, err)
		}
		if len(re.done) != 0 || len(re.models) != 0 {
			t.Fatalf("cut at %d: truncated checkpoint half-loaded: done=%v models=%v",
				cut, re.done, re.models)
		}
	}
}

// TestCheckpointLegacyArrayFormat keeps the pre-object on-disk format
// readable.
func TestCheckpointLegacyArrayFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	if err := os.WriteFile(path, []byte(`["fig3","table1"]`), 0o644); err != nil {
		t.Fatal(err)
	}
	cp, err := loadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.done["fig3"] || !cp.done["table1"] {
		t.Fatalf("legacy names lost: %v", cp.done)
	}
}

func TestCheckpointSaveLeavesNoDebris(t *testing.T) {
	dir := t.TempDir()
	cp, err := loadCheckpoint(filepath.Join(dir, "run.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.mark("fig9"); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left after save", e.Name())
		}
	}
}
