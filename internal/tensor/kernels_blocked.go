// Blocked matmul kernel with runtime-dispatched inner saxpy sweeps.
// There used to be two copies of this file behind a `vecmm` build tag
// (portable vs SSE2); the tag is gone. One tiling skeleton now runs the
// innermost j-sweeps through the saxpy4Impl/saxpy1Impl function
// pointers, which kernels_dispatch*.go point at the widest kernel the
// CPU supports (portable Go, SSE2, AVX2, or — behind an explicit
// relaxed-identity opt-in — AVX2+FMA).
//
// Bit-identity contract: for one output element dst[i][j] the kernel
// performs, in ascending p order, one single-precision multiply and one
// single-precision add per nonzero a term. The SSE2/AVX2 saxpy kernels
// keep the four unrolled terms as four sequential mul+add pairs per
// element (MULPS/ADDPS and VMULPS/VADDPS are lane-independent IEEE
// binary32 operations; no FMA contraction, no reassociation), so every
// vector lane reproduces the scalar rounding sequence exactly. The
// zero-skip branches are taken here in Go before entering any assembly,
// matching the reference kernel's skip behaviour (relevant for signed
// zeros and Inf/NaN propagation: 0*Inf would introduce a NaN the
// reference kernel never sees). Only the FMA kernel — never selected by
// default — fuses each mul+add into one rounding.

package tensor

// matMulBlocked accumulates dst[rowLo:rowHi] += a[rowLo:rowHi]·b with a
// three-level i/k/j tiling. dst rows in the range must be zero on entry.
// For a fixed output element the k-blocks are visited in ascending order
// and p ascends within each block, so the float32 accumulation sequence
// matches the reference ikj kernel exactly (including the skip of zero
// a-elements, which contribute no term there either).
//
// The inner kernel additionally unrolls four consecutive p terms into one
// j-sweep, which saves three quarters of the dst loads and stores. Any
// zero among the four falls back to the per-p loop with its zero skip.
func matMulBlocked(dst, a, b []float32, rowLo, rowHi, k, n, tileI, tileK, tileJ int) {
	if tileI < 1 {
		tileI = defaultTileI
	}
	if tileK < 1 {
		tileK = defaultTileK
	}
	if tileJ < 1 {
		tileJ = defaultTileJ
	}
	saxpy4, saxpy1 := saxpy4Impl, saxpy1Impl
	for ii := rowLo; ii < rowHi; ii += tileI {
		iMax := min(ii+tileI, rowHi)
		for kk := 0; kk < k; kk += tileK {
			kMax := min(kk+tileK, k)
			for jj := 0; jj < n; jj += tileJ {
				jMax := min(jj+tileJ, n)
				for i := ii; i < iMax; i++ {
					abase := i * k
					orow := dst[i*n+jj : i*n+jMax]
					p := kk
					for ; p+3 < kMax; p += 4 {
						a0, a1, a2, a3 := a[abase+p], a[abase+p+1], a[abase+p+2], a[abase+p+3]
						if a0 != 0 && a1 != 0 && a2 != 0 && a3 != 0 {
							b0 := b[(p+0)*n+jj : (p+0)*n+jMax]
							b1 := b[(p+1)*n+jj : (p+1)*n+jMax][:len(b0)]
							b2 := b[(p+2)*n+jj : (p+2)*n+jMax][:len(b0)]
							b3 := b[(p+3)*n+jj : (p+3)*n+jMax][:len(b0)]
							saxpy4(orow, a0, a1, a2, a3, b0, b1, b2, b3)
						} else {
							matMulTail(orow, a, b, abase, p, p+4, n, jj, jMax, saxpy1)
						}
					}
					matMulTail(orow, a, b, abase, p, kMax, n, jj, jMax, saxpy1)
				}
			}
		}
	}
}

// matMulTail applies the reference per-p accumulation (with the zero
// skip) for p in [pLo, pHi) against one destination row segment.
func matMulTail(orow, a, b []float32, abase, pLo, pHi, n, jj, jMax int, saxpy1 func([]float32, float32, []float32)) {
	for p := pLo; p < pHi; p++ {
		av := a[abase+p]
		if av == 0 {
			continue
		}
		saxpy1(orow, av, b[p*n+jj:p*n+jMax])
	}
}

// saxpy4Go computes orow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
// with four sequential single-precision multiply-add pairs per element —
// the portable reference every vector kernel must match bit-for-bit.
// b0..b3 must have equal length, and orow at least that length.
func saxpy4Go(orow []float32, a0, a1, a2, a3 float32, b0, b1, b2, b3 []float32) {
	b1 = b1[:len(b0)]
	b2 = b2[:len(b0)]
	b3 = b3[:len(b0)]
	for j := range b0 {
		v := orow[j]
		v += a0 * b0[j]
		v += a1 * b1[j]
		v += a2 * b2[j]
		v += a3 * b3[j]
		orow[j] = v
	}
}

// saxpy1Go computes orow[j] += a*brow[j] for j in [0, len(brow)).
func saxpy1Go(orow []float32, a float32, brow []float32) {
	for j, bv := range brow {
		orow[j] += a * bv
	}
}
