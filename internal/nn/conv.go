package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Conv2D is a standard 2-D convolution over [H, W, C] inputs with
// symmetric zero padding. Weights are stored pre-lowered as a
// [kh*kw*inC, outC] matrix so the forward pass is one im2col + matmul.
type Conv2D struct {
	name              string
	KH, KW, InC, OutC int
	Stride            int
	PadH, PadW        int
	W                 *tensor.Tensor // [kh*kw*inC, outC]
	B                 *tensor.Tensor // [outC]
	dW, dB            *tensor.Tensor
}

// NewConv2D creates a convolution layer with symmetric zero padding,
// He-normal initialized weights and zero bias.
func NewConv2D(name string, kh, kw, inC, outC, stride, pad int, rng *rand.Rand) (*Conv2D, error) {
	return NewConv2DRect(name, kh, kw, inC, outC, stride, pad, pad, rng)
}

// NewConv2DRect creates a convolution layer with independent vertical and
// horizontal zero padding, as the factorized 1x7/7x1 Inception kernels
// require.
func NewConv2DRect(name string, kh, kw, inC, outC, stride, padH, padW int, rng *rand.Rand) (*Conv2D, error) {
	if kh <= 0 || kw <= 0 || inC <= 0 || outC <= 0 || stride <= 0 || padH < 0 || padW < 0 {
		return nil, fmt.Errorf("nn: conv %q: bad geometry k=%dx%d c=%d->%d s=%d p=%d,%d",
			name, kh, kw, inC, outC, stride, padH, padW)
	}
	c := &Conv2D{
		name: name, KH: kh, KW: kw, InC: inC, OutC: outC,
		Stride: stride, PadH: padH, PadW: padW,
		W: tensor.MustNew(kh*kw*inC, outC),
		B: tensor.MustNew(outC),
	}
	fanIn := float64(kh * kw * inC)
	c.W.RandNormal(rng, 0, math.Sqrt(2/fanIn))
	return c, nil
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// Kind implements Layer.
func (c *Conv2D) Kind() string { return "CONV" }

func (c *Conv2D) checkShape(s []int) error {
	if len(s) != 3 || s[2] != c.InC {
		return fmt.Errorf("%w: conv %q wants [H W %d], got %v", ErrShape, c.name, c.InC, s)
	}
	if tensor.ConvOutDim(s[0], c.KH, c.Stride, c.PadH) <= 0 ||
		tensor.ConvOutDim(s[1], c.KW, c.Stride, c.PadW) <= 0 {
		return fmt.Errorf("%w: conv %q output collapses on input %v", ErrShape, c.name, s)
	}
	return nil
}

// checkInput is checkShape reading dimensions straight off the tensor,
// keeping the forward hot path free of shape-slice allocations.
func (c *Conv2D) checkInput(x *tensor.Tensor) error {
	if x.Rank() != 3 || x.Dim(2) != c.InC {
		return fmt.Errorf("%w: conv %q wants [H W %d], got %v", ErrShape, c.name, c.InC, x.Shape())
	}
	if tensor.ConvOutDim(x.Dim(0), c.KH, c.Stride, c.PadH) <= 0 ||
		tensor.ConvOutDim(x.Dim(1), c.KW, c.Stride, c.PadW) <= 0 {
		return fmt.Errorf("%w: conv %q output collapses on input %v", ErrShape, c.name, x.Shape())
	}
	return nil
}

// OutShape implements Layer.
func (c *Conv2D) OutShape(in [][]int) ([]int, error) {
	s, err := wantOneShape(in)
	if err != nil {
		return nil, err
	}
	if err := c.checkShape(s); err != nil {
		return nil, err
	}
	return []int{
		tensor.ConvOutDim(s[0], c.KH, c.Stride, c.PadH),
		tensor.ConvOutDim(s[1], c.KW, c.Stride, c.PadW),
		c.OutC,
	}, nil
}

// Forward implements Layer.
func (c *Conv2D) Forward(xs []*tensor.Tensor) (*tensor.Tensor, error) {
	x, err := wantOne(xs)
	if err != nil {
		return nil, err
	}
	if err := c.checkInput(x); err != nil {
		return nil, err
	}
	cols, oh, ow, err := tensor.Im2ColRect(x, c.KH, c.KW, c.Stride, c.PadH, c.PadW)
	if err != nil {
		return nil, err
	}
	y, err := tensor.MatMul(cols, c.W) // [oh*ow, outC]
	if err != nil {
		return nil, err
	}
	c.addBias(y.Data, oh*ow)
	return y.Reshape(oh, ow, c.OutC)
}

// ForwardScratch implements ScratchLayer: the same im2col + matmul
// lowering through reused arena buffers. With s.Workers > 1 the matrix
// multiply row-shards across workers; output is bit-identical to Forward
// for every worker count.
func (c *Conv2D) ForwardScratch(xs []*tensor.Tensor, s *Scratch) (*tensor.Tensor, error) {
	x, err := wantOne(xs)
	if err != nil {
		return nil, err
	}
	if err := c.checkInput(x); err != nil {
		return nil, err
	}
	oh := tensor.ConvOutDim(x.Dim(0), c.KH, c.Stride, c.PadH)
	ow := tensor.ConvOutDim(x.Dim(1), c.KW, c.Stride, c.PadW)
	k := c.KH * c.KW * c.InC
	cols := s.Floats(c.name, "/cols", oh*ow*k)
	if _, _, err := tensor.Im2ColInto(cols, x, c.KH, c.KW, c.Stride, c.PadH, c.PadW); err != nil {
		return nil, err
	}
	colsT, err := s.View(c.name, "/colsT", cols, oh*ow, k)
	if err != nil {
		return nil, err
	}
	y := s.Tensor(c.name, "/y", oh*ow, c.OutC)
	if s.Workers > 1 {
		err = tensor.MatMulParallel(y, colsT, c.W, s.Workers)
	} else {
		err = tensor.MatMulInto(y, colsT, c.W)
	}
	if err != nil {
		return nil, err
	}
	c.addBias(y.Data, oh*ow)
	return s.View(c.name, "/out", y.Data, oh, ow, c.OutC)
}

// addBias adds the per-channel bias to rows of the lowered output.
func (c *Conv2D) addBias(data []float32, rows int) {
	for r := 0; r < rows; r++ {
		row := data[r*c.OutC : (r+1)*c.OutC]
		for j := range row {
			row[j] += c.B.Data[j]
		}
	}
}

// Params implements Layer.
func (c *Conv2D) Params() []Param {
	return []Param{{Name: "weights", T: c.W}, {Name: "bias", T: c.B}}
}

// Cost implements Layer: outH*outW*outC*kh*kw*inC MACs.
func (c *Conv2D) Cost(in [][]int) (uint64, error) {
	out, err := c.OutShape(in)
	if err != nil {
		return 0, err
	}
	return uint64(out[0]) * uint64(out[1]) * uint64(c.OutC) *
		uint64(c.KH) * uint64(c.KW) * uint64(c.InC), nil
}

// Backward implements Backprop via the im2col adjoint.
func (c *Conv2D) Backward(x, dy *tensor.Tensor) (*tensor.Tensor, error) {
	if err := c.checkShape(x.Shape()); err != nil {
		return nil, err
	}
	h, w := x.Dim(0), x.Dim(1)
	oh := tensor.ConvOutDim(h, c.KH, c.Stride, c.PadH)
	ow := tensor.ConvOutDim(w, c.KW, c.Stride, c.PadW)
	if dy.Size() != oh*ow*c.OutC {
		return nil, fmt.Errorf("%w: conv %q backward dy size %d, want %d", ErrShape, c.name, dy.Size(), oh*ow*c.OutC)
	}
	c.ensureGrads()
	cols, _, _, err := tensor.Im2ColRect(x, c.KH, c.KW, c.Stride, c.PadH, c.PadW)
	if err != nil {
		return nil, err
	}
	dyMat, err := dy.Reshape(oh*ow, c.OutC)
	if err != nil {
		return nil, err
	}
	// dW += cols^T · dy  — accumulate directly to avoid a transpose.
	k := c.KH * c.KW * c.InC
	for r := 0; r < oh*ow; r++ {
		crow := cols.Data[r*k : (r+1)*k]
		drow := dyMat.Data[r*c.OutC : (r+1)*c.OutC]
		for i, cv := range crow {
			if cv == 0 {
				continue
			}
			grow := c.dW.Data[i*c.OutC : (i+1)*c.OutC]
			for j, dv := range drow {
				grow[j] += cv * dv
			}
		}
	}
	for r := 0; r < oh*ow; r++ {
		drow := dyMat.Data[r*c.OutC : (r+1)*c.OutC]
		for j, dv := range drow {
			c.dB.Data[j] += dv
		}
	}
	// dcols = dy · W^T, then scatter back with col2im.
	dcols := tensor.MustNew(oh*ow, k)
	for r := 0; r < oh*ow; r++ {
		drow := dyMat.Data[r*c.OutC : (r+1)*c.OutC]
		crow := dcols.Data[r*k : (r+1)*k]
		for i := 0; i < k; i++ {
			wrow := c.W.Data[i*c.OutC : (i+1)*c.OutC]
			var s float64
			for j := range drow {
				s += float64(wrow[j]) * float64(drow[j])
			}
			crow[i] = float32(s)
		}
	}
	return tensor.Col2ImRect(dcols, h, w, c.InC, c.KH, c.KW, c.Stride, c.PadH, c.PadW)
}

func (c *Conv2D) ensureGrads() {
	if c.dW == nil {
		c.dW = tensor.MustNew(c.KH*c.KW*c.InC, c.OutC)
		c.dB = tensor.MustNew(c.OutC)
	}
}

// Grads implements Backprop.
func (c *Conv2D) Grads() []Param {
	c.ensureGrads()
	return []Param{{Name: "weights", T: c.dW}, {Name: "bias", T: c.dB}}
}

// ZeroGrads implements Backprop.
func (c *Conv2D) ZeroGrads() {
	if c.dW != nil {
		c.dW.Zero()
		c.dB.Zero()
	}
}

// DepthwiseConv2D convolves each input channel with its own kh x kw
// filter (channel multiplier 1), the MobileNet building block.
type DepthwiseConv2D struct {
	name        string
	KH, KW, C   int
	Stride, Pad int
	W           *tensor.Tensor // [kh, kw, C]
	B           *tensor.Tensor // [C]
}

// NewDepthwiseConv2D creates a depthwise convolution layer.
func NewDepthwiseConv2D(name string, kh, kw, ch, stride, pad int, rng *rand.Rand) (*DepthwiseConv2D, error) {
	if kh <= 0 || kw <= 0 || ch <= 0 || stride <= 0 || pad < 0 {
		return nil, fmt.Errorf("nn: dwconv %q: bad geometry", name)
	}
	d := &DepthwiseConv2D{
		name: name, KH: kh, KW: kw, C: ch, Stride: stride, Pad: pad,
		W: tensor.MustNew(kh, kw, ch),
		B: tensor.MustNew(ch),
	}
	d.W.RandNormal(rng, 0, math.Sqrt(2/float64(kh*kw)))
	return d, nil
}

// Name implements Layer.
func (d *DepthwiseConv2D) Name() string { return d.name }

// Kind implements Layer.
func (d *DepthwiseConv2D) Kind() string { return "DWCONV" }

// OutShape implements Layer.
func (d *DepthwiseConv2D) OutShape(in [][]int) ([]int, error) {
	s, err := wantOneShape(in)
	if err != nil {
		return nil, err
	}
	if len(s) != 3 || s[2] != d.C {
		return nil, fmt.Errorf("%w: dwconv %q wants [H W %d], got %v", ErrShape, d.name, d.C, s)
	}
	oh := tensor.ConvOutDim(s[0], d.KH, d.Stride, d.Pad)
	ow := tensor.ConvOutDim(s[1], d.KW, d.Stride, d.Pad)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("%w: dwconv %q output collapses on %v", ErrShape, d.name, s)
	}
	return []int{oh, ow, d.C}, nil
}

// checkInput validates a depthwise input without allocating shape slices.
func (d *DepthwiseConv2D) checkInput(x *tensor.Tensor) (oh, ow int, err error) {
	if x.Rank() != 3 || x.Dim(2) != d.C {
		return 0, 0, fmt.Errorf("%w: dwconv %q wants [H W %d], got %v", ErrShape, d.name, d.C, x.Shape())
	}
	oh = tensor.ConvOutDim(x.Dim(0), d.KH, d.Stride, d.Pad)
	ow = tensor.ConvOutDim(x.Dim(1), d.KW, d.Stride, d.Pad)
	if oh <= 0 || ow <= 0 {
		return 0, 0, fmt.Errorf("%w: dwconv %q output collapses on %v", ErrShape, d.name, x.Shape())
	}
	return oh, ow, nil
}

// Forward implements Layer.
func (d *DepthwiseConv2D) Forward(xs []*tensor.Tensor) (*tensor.Tensor, error) {
	x, err := wantOne(xs)
	if err != nil {
		return nil, err
	}
	oh, ow, err := d.checkInput(x)
	if err != nil {
		return nil, err
	}
	out := tensor.MustNew(oh, ow, d.C)
	d.forwardInto(out.Data, x, oh, ow)
	return out, nil
}

// ForwardScratch implements ScratchLayer.
func (d *DepthwiseConv2D) ForwardScratch(xs []*tensor.Tensor, s *Scratch) (*tensor.Tensor, error) {
	x, err := wantOne(xs)
	if err != nil {
		return nil, err
	}
	oh, ow, err := d.checkInput(x)
	if err != nil {
		return nil, err
	}
	out := s.Tensor(d.name, "/out", oh, ow, d.C)
	clear(out.Data) // forwardInto accumulates; match a fresh allocation
	d.forwardInto(out.Data, x, oh, ow)
	return out, nil
}

// forwardInto accumulates the depthwise convolution into dst, which must
// be zeroed, matching the reference accumulation order exactly.
func (d *DepthwiseConv2D) forwardInto(dst []float32, x *tensor.Tensor, oh, ow int) {
	h, w := x.Dim(0), x.Dim(1)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			orow := dst[(oy*ow+ox)*d.C : (oy*ow+ox)*d.C+d.C]
			for ky := 0; ky < d.KH; ky++ {
				iy := oy*d.Stride + ky - d.Pad
				if iy < 0 || iy >= h {
					continue
				}
				for kx := 0; kx < d.KW; kx++ {
					ix := ox*d.Stride + kx - d.Pad
					if ix < 0 || ix >= w {
						continue
					}
					src := x.Data[(iy*w+ix)*d.C : (iy*w+ix)*d.C+d.C]
					ker := d.W.Data[(ky*d.KW+kx)*d.C : (ky*d.KW+kx)*d.C+d.C]
					for ch := 0; ch < d.C; ch++ {
						orow[ch] += src[ch] * ker[ch]
					}
				}
			}
			for ch := 0; ch < d.C; ch++ {
				orow[ch] += d.B.Data[ch]
			}
		}
	}
}

// Params implements Layer.
func (d *DepthwiseConv2D) Params() []Param {
	return []Param{{Name: "weights", T: d.W}, {Name: "bias", T: d.B}}
}

// Cost implements Layer: outH*outW*C*kh*kw MACs.
func (d *DepthwiseConv2D) Cost(in [][]int) (uint64, error) {
	out, err := d.OutShape(in)
	if err != nil {
		return 0, err
	}
	return uint64(out[0]) * uint64(out[1]) * uint64(d.C) * uint64(d.KH) * uint64(d.KW), nil
}
