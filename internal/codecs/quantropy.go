package codecs

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/quant"
)

// Quantized + entropy-coded stream layout (little endian):
//
//	magic   [2]byte  "QH"
//	version byte     1
//	level   byte     L, dropped low-order bits (0..6)
//	n       uint32   original parameter count
//	scale   float64  quantization scale
//	zp      byte     quantization zero point (int8)
//	payload          HuffmanEncode of the zigzag(code >> L) byte stream
//
// Raw float32 weight bytes are near-maximum entropy (Fig. 3), so the
// Huffman baseline cannot compress them; int8 quantization followed by
// the zigzag map yields a strongly skewed byte distribution where the
// canonical coder does bite, and every dropped bit merges symbol pairs
// and lowers the entropy further.

const qhVersion = 1

const qhHeaderBytes = 2 + 1 + 1 + 4 + 8 + 1

// QuantHuffCodecName is the registry name of the quant+entropy codec.
const QuantHuffCodecName = "quant-huff"

type quantHuffCodec struct{}

// QuantHuffCodec returns the quantized + Huffman-coded codec.
func QuantHuffCodec() core.Codec { return quantHuffCodec{} }

func (quantHuffCodec) Name() string      { return QuantHuffCodecName }
func (quantHuffCodec) Lossless() bool    { return false }
func (quantHuffCodec) Levels() []float64 { return []float64{0, 1, 2, 3, 4} }

func (quantHuffCodec) Compress(w []float64, level float64) ([]byte, error) {
	l, err := checkLevel(level)
	if err != nil {
		return nil, err
	}
	zz, p, err := truncatedCodes(w, l)
	if err != nil {
		return nil, err
	}
	enc, err := baseline.HuffmanEncode(zz)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, qhHeaderBytes+len(enc))
	out = append(out, 'Q', 'H', qhVersion, byte(l))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(zz)))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(p.Scale))
	out = append(out, byte(int8(p.ZeroPoint)))
	return append(out, enc...), nil
}

// parse decodes the stream down to the zigzagged code values.
func (quantHuffCodec) parse(stream []byte) ([]uint8, quant.Params8, int, error) {
	if len(stream) < qhHeaderBytes {
		return nil, quant.Params8{}, 0, fmt.Errorf("%w: quant-huff stream of %d bytes", ErrInvalidStream, len(stream))
	}
	if stream[0] != 'Q' || stream[1] != 'H' || stream[2] != qhVersion {
		return nil, quant.Params8{}, 0, fmt.Errorf("%w: bad quant-huff header", ErrInvalidStream)
	}
	l := int(stream[3])
	if l > bpMaxLevel {
		return nil, quant.Params8{}, 0, fmt.Errorf("%w: level %d", ErrInvalidStream, l)
	}
	n := int(binary.LittleEndian.Uint32(stream[4:8]))
	if n <= 0 || n > maxCodecParams {
		return nil, quant.Params8{}, 0, fmt.Errorf("%w: %d parameters", ErrInvalidStream, n)
	}
	scale := math.Float64frombits(binary.LittleEndian.Uint64(stream[8:16]))
	if math.IsNaN(scale) || math.IsInf(scale, 0) || scale <= 0 {
		return nil, quant.Params8{}, 0, fmt.Errorf("%w: scale %v", ErrInvalidStream, scale)
	}
	p := quant.Params8{Scale: scale, ZeroPoint: int(int8(stream[16]))}
	zz, err := baseline.HuffmanDecode(stream[qhHeaderBytes:])
	if err != nil {
		return nil, quant.Params8{}, 0, fmt.Errorf("%w: %v", ErrInvalidStream, err)
	}
	if len(zz) != n {
		return nil, quant.Params8{}, 0, fmt.Errorf("%w: payload decodes %d values, header says %d", ErrInvalidStream, len(zz), n)
	}
	return zz, p, l, nil
}

func (c quantHuffCodec) Decompress(stream []byte) ([]float64, error) {
	zz, p, l, err := c.parse(stream)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(zz))
	for i, z := range zz {
		out[i] = (float64(reconstructCode(z, l)) - float64(p.ZeroPoint)) * p.Scale
	}
	return out, nil
}

func (c quantHuffCodec) CompressedBits(stream []byte, _ core.StorageModel) (int, error) {
	if err := c.Validate(stream); err != nil {
		return 0, err
	}
	return 8 * len(stream), nil
}

func (c quantHuffCodec) Validate(stream []byte) error {
	_, _, _, err := c.parse(stream)
	return err
}
