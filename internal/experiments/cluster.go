package experiments

import (
	"context"
	"fmt"

	"repro/internal/accel"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/models"
	"repro/internal/parallel"
)

// ClusterFaultRow is one point of the cluster chaos sweep: a model
// served by a fault-tolerant accelerator cluster, a chaos scenario
// (node kills, partitions), and a message-fault intensity — measured as
// request availability and latency percentiles while a compressed
// weight-version rollout is in flight.
type ClusterFaultRow struct {
	Model    string
	Scenario string  // "baseline", "kill-leader", "partition", "kill+partition"
	DropRate float64 // message drop probability (delay/dup scale with it)

	Availability   float64
	P50, P99       uint64 // served-request latency, fabric ticks
	Served         int
	Failed         int
	ServedStale    int
	ReducedReplica int
	FailedOver     int
	MixedVersion   int // invariant: 0
	EpochOutcome   string
	LeaderChanges  int
}

// clusterScenarios are the chaos schedules the sweep crosses with the
// drop-rate grid. Times are fabric ticks, aligned with the rollout the
// same way the chaos regression test is: the kill lands between the
// stage proposal and its activation.
var clusterScenarios = []struct {
	name            string
	kill, partition bool
}{
	{"baseline", false, false},
	{"kill-leader", true, false},
	{"partition", false, true},
	{"kill+partition", true, true},
}

// clusterDropRates is the message-fault grid (delay and duplication
// rates ride along at fixed multiples).
func (o Options) clusterDropRates() []float64 {
	if o.Fast {
		return []float64{0, 0.05}
	}
	return []float64{0, 0.01, 0.02, 0.05, 0.10}
}

// ClusterVersionPlans builds the two weight-version epochs a rollout
// scenario moves between: version 1 is the model's raw specs, version 2
// compresses the selected layer at the first non-trivial tolerance of
// its Table II grid. Shared by the sweep and cmd/cluster.
func ClusterVersionPlans(modelName string, seed int64, storage core.StorageModel) ([]cluster.VersionPlan, error) {
	b, err := models.ByName(modelName)
	if err != nil {
		return nil, err
	}
	m, err := b.Build(seed)
	if err != nil {
		return nil, err
	}
	rawSpecs, err := accel.SpecsFromModel(m, nil, storage)
	if err != nil {
		return nil, err
	}
	orig, err := snapshotSelected(m)
	if err != nil {
		return nil, err
	}
	deltaPct := DeltaGrid(m.Name)[1]
	comp, err := core.CompressPct(orig, deltaPct)
	if err != nil {
		return nil, err
	}
	compSpecs, err := accel.SpecsFromModel(m, map[string]*core.Compressed{m.SelectedLayer: comp}, storage)
	if err != nil {
		return nil, err
	}
	return []cluster.VersionPlan{
		{Version: 1, Level: 0, Specs: rawSpecs},
		{Version: 2, Level: deltaPct, Specs: compSpecs},
	}, nil
}

// clusterSpec assembles one sweep cell's scenario.
func clusterSpec(opts Options, plans []cluster.VersionPlan, scenario struct {
	name            string
	kill, partition bool
}, drop float64, cell int) cluster.Spec {
	s := cluster.Spec{
		Nodes:    5,
		Shards:   2,
		Seed:     opts.Seed + int64(cell)*1_000_003,
		Accel:    opts.Accel,
		Versions: plans,
		Requests: 60,
		Interval: 200,
		Faults: faults.Model{
			MsgDropRate:  drop,
			MsgDelayRate: 2 * drop,
			MsgDupRate:   drop,
		},
		RequestRetries: 1,
		RolloutAt:      2500,
		RolloutRetries: 20,
	}
	if opts.Fast {
		s.Requests = 30
	}
	if scenario.kill {
		s.KillLeaderAt = 2650
		s.RestartAt = 11000
	}
	if scenario.partition {
		s.PartitionAt = 3000
		s.HealAt = 9000
	}
	return s
}

// ClusterFaultSweep measures the fault-tolerant accelerator cluster
// under a grid of chaos scenarios × message-fault rates, while a
// compressed weight-version epoch rolls out mid-workload. Each cell is
// an independent deterministic simulation (its own fabric, nodes, and
// seed), so cells fan out over the worker pool and the rows are
// byte-identical at any worker count. The MixedVersion column is an
// invariant check — any nonzero value is a rollout-atomicity bug, and
// the sweep fails rather than reporting it as data.
func ClusterFaultSweep(opts Options) ([]ClusterFaultRow, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	modelName := "LeNet-5"
	if len(opts.Models) > 0 {
		modelName = opts.Models[0]
	}
	plans, err := ClusterVersionPlans(modelName, opts.Seed, opts.Storage)
	if err != nil {
		return nil, err
	}
	rates := opts.clusterDropRates()
	cells := len(clusterScenarios) * len(rates)
	rows, err := parallel.Map(opts.ctx(), opts.workers(), cells,
		func(_ context.Context, i int) (ClusterFaultRow, error) {
			scenario := clusterScenarios[i/len(rates)]
			drop := rates[i%len(rates)]
			spec := clusterSpec(opts, plans, scenario, drop, i)
			rep, err := cluster.Run(spec, opts.Obs)
			if err != nil {
				return ClusterFaultRow{}, fmt.Errorf("experiments: cluster %s drop=%g: %w", scenario.name, drop, err)
			}
			if rep.MixedVersion != 0 {
				return ClusterFaultRow{}, fmt.Errorf("experiments: cluster %s drop=%g served %d mixed-version responses",
					scenario.name, drop, rep.MixedVersion)
			}
			return ClusterFaultRow{
				Model:          modelName,
				Scenario:       scenario.name,
				DropRate:       drop,
				Availability:   rep.Availability,
				P50:            rep.P50,
				P99:            rep.P99,
				Served:         rep.Served,
				Failed:         rep.Failed,
				ServedStale:    rep.ServedStale,
				ReducedReplica: rep.ReducedReplica,
				FailedOver:     rep.FailedOver,
				MixedVersion:   rep.MixedVersion,
				EpochOutcome:   rep.EpochOutcome,
				LeaderChanges:  rep.LeaderChanges,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
