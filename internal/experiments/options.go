// Package experiments regenerates every table and figure of the paper's
// evaluation section (Sec. IV): Table I (model inventory), Table II
// (compression efficiency), Table III (compression on top of int8
// quantization), Fig. 2 (LeNet-5 latency/energy breakdown per layer),
// Fig. 3 (weight-stream entropy), Fig. 9 (per-layer sensitivity), and
// Fig. 10 (accuracy vs latency vs energy trade-offs). Each experiment is
// a pure function from Options to typed rows; cmd/benchtables formats
// them and bench_test.go wraps them in testing.B benchmarks.
package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Options configures an experiment run.
type Options struct {
	Seed int64
	// Context, when non-nil, bounds the run: every experiment's worker
	// pool observes its cancellation or deadline and aborts with the
	// context error. Nil means context.Background().
	Context context.Context
	// Models filters which networks run (nil = the paper's full set).
	Models []string
	// Workers bounds the goroutines used for independent work items
	// (models, (model, delta) sweep points, accelerator layers); values
	// below 1 select runtime.GOMAXPROCS(0). Results are collected by
	// index, so every worker count produces identical output.
	Workers int
	// Probes is the number of synthetic probe inputs for the top-5
	// fidelity metric on the large models.
	Probes int
	// TrainSamples and TrainEpochs control the real LeNet-5 training.
	TrainSamples int
	TrainEpochs  int
	// Storage is the segment storage accounting model.
	Storage core.StorageModel
	// Accel is the platform configuration for latency/energy experiments.
	Accel accel.Config
	// FaultRates is the DRAM word-flip probability grid for the fault
	// sweep (nil = the default six-decade grid; Fast trims it).
	FaultRates []float64
	// Fast trims workloads to test scale: it caps probe counts and
	// restricts expensive sweeps to the small models.
	Fast bool
	// Checkpoint, when non-nil, lets the heavy sweeps (Fig10, FaultSweep)
	// resume per model: finished per-model results are stored under a
	// "fig10/<model>" or "faults/<model>" key and loaded back instead of
	// recomputed on the next run. Implementations must be safe for
	// concurrent use (models fan out over the worker pool).
	Checkpoint Checkpoint
	// Obs, when non-nil, receives traces and metrics from the
	// accelerator simulations and planner searches the experiment runs
	// (see internal/obs). Nil disables all instrumentation at zero
	// cost; the experiment's numeric output is identical either way.
	Obs *obs.Observer
}

// Checkpoint persists intermediate experiment results between runs.
// Load unmarshals the value stored under key into out and reports
// whether the key existed; Store saves val under key durably enough to
// survive the process. cmd/benchtables backs this with a JSON file.
type Checkpoint interface {
	Load(key string, out any) (bool, error)
	Store(key string, val any) error
}

// DefaultOptions returns the full-paper experiment configuration.
func DefaultOptions() Options {
	return Options{
		Seed:         2020,
		Probes:       8,
		TrainSamples: 2000,
		TrainEpochs:  10,
		Storage:      core.DefaultStorage,
		Accel:        accel.DefaultConfig(),
	}
}

// FastOptions returns a configuration suitable for unit tests and smoke
// benchmarks: LeNet-scale models only, few probes.
func FastOptions() Options {
	o := DefaultOptions()
	o.Fast = true
	o.Probes = 4
	o.TrainSamples = 400
	o.TrainEpochs = 3
	o.Models = []string{"LeNet-5"}
	return o
}

// DeltaGrid returns the paper's tolerance-threshold sweep for a model
// (Table II): 0-20% in steps of 5 for LeNet-5, AlexNet and Inception-v3;
// 0-8% in steps of 2 for VGG-16, MobileNet and ResNet50.
func DeltaGrid(model string) []float64 {
	switch model {
	case "VGG-16", "MobileNet", "ResNet50":
		return []float64{0, 2, 4, 6, 8}
	default:
		return []float64{0, 5, 10, 15, 20}
	}
}

// selectedBuilders resolves the option's model filter.
func (o Options) selectedBuilders() ([]models.Builder, error) {
	if len(o.Models) == 0 {
		if o.Fast {
			return models.Small(), nil
		}
		return models.All(), nil
	}
	var out []models.Builder
	for _, name := range o.Models {
		b, err := models.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// checkpointed wraps one model's sweep in the optional per-model
// checkpoint: a stored result is returned without recomputing, and a
// fresh result is stored before it is returned.
func checkpointed[T any](opts Options, key string, run func() (T, error)) (T, error) {
	cp := opts.Checkpoint
	if cp == nil {
		return run()
	}
	var cached T
	if ok, err := cp.Load(key, &cached); err != nil {
		var zero T
		return zero, fmt.Errorf("experiments: checkpoint load %q: %w", key, err)
	} else if ok {
		return cached, nil
	}
	out, err := run()
	if err != nil {
		return out, err
	}
	if err := cp.Store(key, out); err != nil {
		var zero T
		return zero, fmt.Errorf("experiments: checkpoint store %q: %w", key, err)
	}
	return out, nil
}

// workers resolves the worker-count option to a concrete bound.
func (o Options) workers() int { return parallel.Workers(o.Workers) }

// ctx resolves the context option; every experiment's parallel sweep runs
// under it.
func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// faultRates resolves the fault-rate grid for FaultSweep: six decades
// from fault-free to one flip per hundred words, trimmed in Fast mode.
func (o Options) faultRates() []float64 {
	if len(o.FaultRates) > 0 {
		return o.FaultRates
	}
	if o.Fast {
		return []float64{0, 1e-4, 1e-2}
	}
	return []float64{0, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2}
}

func (o Options) validate() error {
	if o.Probes < 1 {
		return fmt.Errorf("experiments: probes %d < 1", o.Probes)
	}
	if o.TrainSamples < 50 || o.TrainEpochs < 1 {
		return fmt.Errorf("experiments: training budget too small (%d samples, %d epochs)", o.TrainSamples, o.TrainEpochs)
	}
	for _, r := range o.FaultRates {
		if math.IsNaN(r) || r < 0 || r > 1 {
			return fmt.Errorf("experiments: fault rate %v outside [0,1]", r)
		}
	}
	return o.Accel.Validate()
}
