// Package atomicio provides crash-safe file writes for the artifacts a
// run must never half-produce: checkpoints, result CSVs, manifests.
//
// WriteFile stages the content in a temporary file in the destination's
// directory (same filesystem, so the final step is a true rename, not a
// copy), fsyncs the file, renames it over the destination, and fsyncs
// the directory so the rename itself survives a power cut. A reader
// therefore sees either the old complete file or the new complete file
// — never a prefix of the new one.
package atomicio

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data. The temporary file is
// created with O_EXCL under a name derived from the destination; on any
// failure it is removed and the destination is left untouched.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("atomicio: %s: %w", path, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return fail(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fail(err)
	}
	// Data must be durable before the rename publishes the name: a
	// rename that survives a crash must never point at unwritten blocks.
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicio: %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicio: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a completed rename is durable. Some
// filesystems (and all of Windows) refuse directory fsync; that is
// reported as nil because the rename itself still succeeded.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
