// Command trainer trains LeNet-5 for real on the procedural digit dataset
// and saves the trained weights, which cmd/compress and cmd/nocsim can
// then load — the "Training" stage of the paper's evaluation flow
// (Fig. 8) as a standalone step.
//
// Usage:
//
//	trainer [-samples 2000] [-epochs 10] [-seed 42] -o lenet.nnwt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/train"
)

func main() {
	var (
		samples = flag.Int("samples", 2000, "training samples")
		epochs  = flag.Int("epochs", 10, "training epochs")
		seed    = flag.Int64("seed", 42, "dataset and initialization seed")
		lr      = flag.Float64("lr", 0.05, "learning rate")
		out     = flag.String("o", "lenet.nnwt", "output weight file")
	)
	flag.Parse()

	m, err := models.LeNet5(*seed)
	if err != nil {
		fatal(err)
	}
	all, err := dataset.Digits(*samples, *seed)
	if err != nil {
		fatal(err)
	}
	trainSet, testSet, err := dataset.Split(all, 0.25)
	if err != nil {
		fatal(err)
	}
	opt, err := train.NewSGD(*lr, 0.9)
	if err != nil {
		fatal(err)
	}
	tr, err := train.NewTrainer(m.Graph, opt, 16)
	if err != nil {
		fatal(err)
	}
	tr.LRDecay = 0.85
	fmt.Printf("training LeNet-5 on %d samples for %d epochs...\n", len(trainSet), *epochs)
	losses, err := tr.Fit(trainSet, *epochs)
	if err != nil {
		fatal(err)
	}
	for e, l := range losses {
		fmt.Printf("  epoch %2d: loss %.4f\n", e+1, l)
	}
	acc, err := train.Accuracy(m.Graph, testSet)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("test top-1 accuracy: %.4f\n", acc)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := nn.SaveWeights(f, m.Graph); err != nil {
		fatal(err)
	}
	fmt.Printf("saved trained weights to %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trainer:", err)
	os.Exit(1)
}
