package accel

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// cancelSpecs is a model big enough that cancellation lands mid-layer:
// each layer runs far more than the simulator's 1024-iteration context
// polling interval.
func cancelSpecs() []LayerSpec {
	var specs []LayerSpec
	for i := 0; i < 4; i++ {
		specs = append(specs, LayerSpec{
			Name:        fmt.Sprintf("big%d", i),
			Kind:        "CONV",
			MACs:        200_000_000,
			WeightBytes: 2 << 20,
			InputBytes:  1 << 19,
			OutputBytes: 1 << 19,
			OutSpatial:  1 << 12,
		})
	}
	return specs
}

// smallSpecs is a model that completes in milliseconds, for
// before/after result comparison.
func smallSpecs() []LayerSpec {
	return []LayerSpec{
		{Name: "s0", Kind: "CONV", MACs: 300_000, WeightBytes: 8192, InputBytes: 4096, OutputBytes: 4096, OutSpatial: 256},
		{Name: "s1", Kind: "FC", MACs: 200_000, WeightBytes: 16384, InputBytes: 2048, OutputBytes: 1024, OutSpatial: 1},
	}
}

// countdownCtx reports cancellation after its Err method has been
// polled n times — a deterministic way to land a cancel mid-layer.
type countdownCtx struct {
	context.Context
	polls int
}

func (c *countdownCtx) Err() error {
	if c.polls <= 0 {
		return context.Canceled
	}
	c.polls--
	return nil
}

func TestSimulateLayerContextPreCanceled(t *testing.T) {
	sim, err := NewSimulator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = sim.SimulateLayerContext(ctx, cancelSpecs()[0])
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSimulateLayerContextCancelMidLayer(t *testing.T) {
	sim, err := NewSimulator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Let a few polls pass first, so the cancel interrupts a layer that
	// is genuinely underway rather than one that never started.
	ctx := &countdownCtx{Context: context.Background(), polls: 3}
	start := time.Now()
	_, err = sim.SimulateLayerContext(ctx, cancelSpecs()[0])
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("cancellation took %v, not prompt", el)
	}

	// The aborted run's pooled scratch must not poison later runs: the
	// same simulator must produce the exact result of a fresh one.
	after, err := sim.SimulateModel("small", smallSpecs())
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewSimulator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.SimulateModel("small", smallSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if got, exp := fmt.Sprintf("%+v", after), fmt.Sprintf("%+v", want); got != exp {
		t.Fatalf("simulator poisoned by canceled layer:\nafter cancel: %s\nfresh:        %s", got, exp)
	}
}

func TestSimulateModelContextDeadlineMidModel(t *testing.T) {
	sim, err := NewSimulator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sim.SetWorkers(4)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = sim.SimulateModelContext(ctx, "big", cancelSpecs())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("model abandon took %v after a 20ms deadline", el)
	}

	// All four workers' scratches went back to the pool mid-layer; the
	// next full run must still be byte-identical to a fresh simulator's.
	after, err := sim.SimulateModel("small", smallSpecs())
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewSimulator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fresh.SetWorkers(4)
	want, err := fresh.SimulateModel("small", smallSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if got, exp := fmt.Sprintf("%+v", after), fmt.Sprintf("%+v", want); got != exp {
		t.Fatalf("simulator poisoned by deadline abort:\nafter abort: %s\nfresh:       %s", got, exp)
	}
}

func TestSimulateModelContextRepeatedCancels(t *testing.T) {
	sim, err := NewSimulator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Abort several times in a row; the pool keeps absorbing half-used
	// scratches, and completed runs stay deterministic throughout.
	var ref string
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := sim.SimulateModelContext(ctx, "big", cancelSpecs()); !errors.Is(err, context.Canceled) {
			t.Fatalf("round %d: err = %v, want context.Canceled", i, err)
		}
		res, err := sim.SimulateModel("small", smallSpecs())
		if err != nil {
			t.Fatal(err)
		}
		if s := fmt.Sprintf("%+v", res); ref == "" {
			ref = s
		} else if s != ref {
			t.Fatalf("round %d: result drifted after aborts:\n%s\nwant %s", i, s, ref)
		}
	}
}
