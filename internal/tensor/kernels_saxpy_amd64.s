// Saxpy kernels for the runtime-dispatched matmul fast path
// (kernels_dispatch_amd64.go picks one pair at startup).
//
// SSE2 is part of the amd64 baseline, so those kernels run on any
// 64-bit x86 machine; the AVX2 pair needs CPU+OS support, checked by
// cpuFeatures. In the SSE2 and AVX2 kernels each vector lane performs
// the exact scalar sequence of single-precision multiplies and adds
// (MULPS/ADDPS and VMULPS/VADDPS are lane-independent IEEE binary32
// operations, and the four unrolled terms stay four sequential mul+add
// pairs), so the results are bit-identical to the generic Go kernel at
// any vector width. The FMA kernels use VFMADD231PS, which performs the
// multiply and add with a single rounding — faster and usually more
// accurate, but NOT bit-identical, which is why dispatch only selects
// them behind the explicit relaxed-identity opt-in.
//
// All AVX bodies end with VZEROUPPER before touching legacy SSE code
// (scalar tails included) to avoid the AVX-SSE transition penalty.

#include "textflag.h"

// func saxpy4SSE2(orow []float32, a0, a1, a2, a3 float32, b0, b1, b2, b3 []float32)
//
// orow[j] += a0*b0[j]; += a1*b1[j]; += a2*b2[j]; += a3*b3[j]
// for j in [0, len(b0)).
TEXT ·saxpy4SSE2(SB), NOSPLIT, $0-136
	MOVQ orow_base+0(FP), DI
	MOVQ b0_base+40(FP), SI
	MOVQ b0_len+48(FP), CX
	MOVQ b1_base+64(FP), R8
	MOVQ b2_base+88(FP), R9
	MOVQ b3_base+112(FP), R10

	// Broadcast the four a coefficients across X0..X3.
	MOVSS  a0+24(FP), X0
	SHUFPS $0, X0, X0
	MOVSS  a1+28(FP), X1
	SHUFPS $0, X1, X1
	MOVSS  a2+32(FP), X2
	SHUFPS $0, X2, X2
	MOVSS  a3+36(FP), X3
	SHUFPS $0, X3, X3

	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-4, DX // DX = len rounded down to a multiple of 4

vec4:
	CMPQ AX, DX
	JGE  tail
	MOVUPS (DI)(AX*4), X4 // v = orow[j:j+4]
	MOVUPS (SI)(AX*4), X5
	MULPS  X0, X5
	ADDPS  X5, X4         // v += a0*b0[j:j+4]
	MOVUPS (R8)(AX*4), X5
	MULPS  X1, X5
	ADDPS  X5, X4         // v += a1*b1[j:j+4]
	MOVUPS (R9)(AX*4), X5
	MULPS  X2, X5
	ADDPS  X5, X4         // v += a2*b2[j:j+4]
	MOVUPS (R10)(AX*4), X5
	MULPS  X3, X5
	ADDPS  X5, X4         // v += a3*b3[j:j+4]
	MOVUPS X4, (DI)(AX*4)
	ADDQ   $4, AX
	JMP    vec4

tail:
	CMPQ AX, CX
	JGE  done
	MOVSS (DI)(AX*4), X4
	MOVSS (SI)(AX*4), X5
	MULSS X0, X5
	ADDSS X5, X4
	MOVSS (R8)(AX*4), X5
	MULSS X1, X5
	ADDSS X5, X4
	MOVSS (R9)(AX*4), X5
	MULSS X2, X5
	ADDSS X5, X4
	MOVSS (R10)(AX*4), X5
	MULSS X3, X5
	ADDSS X5, X4
	MOVSS X4, (DI)(AX*4)
	INCQ  AX
	JMP   tail

done:
	RET

// func saxpy1SSE2(orow []float32, a float32, brow []float32)
//
// orow[j] += a*brow[j] for j in [0, len(brow)).
TEXT ·saxpy1SSE2(SB), NOSPLIT, $0-56
	MOVQ orow_base+0(FP), DI
	MOVQ brow_base+32(FP), SI
	MOVQ brow_len+40(FP), CX

	MOVSS  a+24(FP), X0
	SHUFPS $0, X0, X0

	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-4, DX

vec1:
	CMPQ AX, DX
	JGE  tail1
	MOVUPS (DI)(AX*4), X4
	MOVUPS (SI)(AX*4), X5
	MULPS  X0, X5
	ADDPS  X5, X4
	MOVUPS X4, (DI)(AX*4)
	ADDQ   $4, AX
	JMP    vec1

tail1:
	CMPQ AX, CX
	JGE  done1
	MOVSS (DI)(AX*4), X4
	MOVSS (SI)(AX*4), X5
	MULSS X0, X5
	ADDSS X5, X4
	MOVSS X4, (DI)(AX*4)
	INCQ  AX
	JMP   tail1

done1:
	RET

// func saxpy4AVX2(orow []float32, a0, a1, a2, a3 float32, b0, b1, b2, b3 []float32)
//
// 8-wide version of saxpy4SSE2 with the identical per-lane operation
// sequence (four sequential VMULPS+VADDPS pairs — bit-identical).
TEXT ·saxpy4AVX2(SB), NOSPLIT, $0-136
	MOVQ orow_base+0(FP), DI
	MOVQ b0_base+40(FP), SI
	MOVQ b0_len+48(FP), CX
	MOVQ b1_base+64(FP), R8
	MOVQ b2_base+88(FP), R9
	MOVQ b3_base+112(FP), R10

	VBROADCASTSS a0+24(FP), Y0
	VBROADCASTSS a1+28(FP), Y1
	VBROADCASTSS a2+32(FP), Y2
	VBROADCASTSS a3+36(FP), Y3

	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-8, DX // DX = len rounded down to a multiple of 8

avx4:
	CMPQ AX, DX
	JGE  avx4tail
	VMOVUPS (DI)(AX*4), Y4   // v = orow[j:j+8]
	VMOVUPS (SI)(AX*4), Y5
	VMULPS  Y0, Y5, Y5
	VADDPS  Y5, Y4, Y4       // v += a0*b0[j:j+8]
	VMOVUPS (R8)(AX*4), Y5
	VMULPS  Y1, Y5, Y5
	VADDPS  Y5, Y4, Y4       // v += a1*b1[j:j+8]
	VMOVUPS (R9)(AX*4), Y5
	VMULPS  Y2, Y5, Y5
	VADDPS  Y5, Y4, Y4       // v += a2*b2[j:j+8]
	VMOVUPS (R10)(AX*4), Y5
	VMULPS  Y3, Y5, Y5
	VADDPS  Y5, Y4, Y4       // v += a3*b3[j:j+8]
	VMOVUPS Y4, (DI)(AX*4)
	ADDQ    $8, AX
	JMP     avx4

avx4tail:
	// The broadcasts survive in X0..X3 (VZEROUPPER clears only the
	// upper halves); the scalar tail is the same SSE sequence as above.
	VZEROUPPER
	CMPQ AX, CX
	JGE  avx4done
	MOVSS (DI)(AX*4), X4
	MOVSS (SI)(AX*4), X5
	MULSS X0, X5
	ADDSS X5, X4
	MOVSS (R8)(AX*4), X5
	MULSS X1, X5
	ADDSS X5, X4
	MOVSS (R9)(AX*4), X5
	MULSS X2, X5
	ADDSS X5, X4
	MOVSS (R10)(AX*4), X5
	MULSS X3, X5
	ADDSS X5, X4
	MOVSS X4, (DI)(AX*4)
	INCQ  AX
	JMP   avx4tail

avx4done:
	RET

// func saxpy1AVX2(orow []float32, a float32, brow []float32)
TEXT ·saxpy1AVX2(SB), NOSPLIT, $0-56
	MOVQ orow_base+0(FP), DI
	MOVQ brow_base+32(FP), SI
	MOVQ brow_len+40(FP), CX

	VBROADCASTSS a+24(FP), Y0

	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-8, DX

avx1:
	CMPQ AX, DX
	JGE  avx1tail
	VMOVUPS (DI)(AX*4), Y4
	VMOVUPS (SI)(AX*4), Y5
	VMULPS  Y0, Y5, Y5
	VADDPS  Y5, Y4, Y4
	VMOVUPS Y4, (DI)(AX*4)
	ADDQ    $8, AX
	JMP     avx1

avx1tail:
	VZEROUPPER
	CMPQ AX, CX
	JGE  avx1done
	MOVSS (DI)(AX*4), X4
	MOVSS (SI)(AX*4), X5
	MULSS X0, X5
	ADDSS X5, X4
	MOVSS X4, (DI)(AX*4)
	INCQ  AX
	JMP   avx1tail

avx1done:
	RET

// func saxpy4FMA(orow []float32, a0, a1, a2, a3 float32, b0, b1, b2, b3 []float32)
//
// VFMADD231PS fuses each multiply-add into ONE rounding; results differ
// from the reference kernel in the last bit. Reachable only via the
// explicit relaxed-identity opt-in (VECMM=fma / SetMatMulKernel).
TEXT ·saxpy4FMA(SB), NOSPLIT, $0-136
	MOVQ orow_base+0(FP), DI
	MOVQ b0_base+40(FP), SI
	MOVQ b0_len+48(FP), CX
	MOVQ b1_base+64(FP), R8
	MOVQ b2_base+88(FP), R9
	MOVQ b3_base+112(FP), R10

	VBROADCASTSS a0+24(FP), Y0
	VBROADCASTSS a1+28(FP), Y1
	VBROADCASTSS a2+32(FP), Y2
	VBROADCASTSS a3+36(FP), Y3

	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-8, DX

fma4:
	CMPQ AX, DX
	JGE  fma4tail
	VMOVUPS     (DI)(AX*4), Y4
	VMOVUPS     (SI)(AX*4), Y5
	VFMADD231PS Y0, Y5, Y4      // v += a0*b0[j:j+8], one rounding
	VMOVUPS     (R8)(AX*4), Y5
	VFMADD231PS Y1, Y5, Y4
	VMOVUPS     (R9)(AX*4), Y5
	VFMADD231PS Y2, Y5, Y4
	VMOVUPS     (R10)(AX*4), Y5
	VFMADD231PS Y3, Y5, Y4
	VMOVUPS     Y4, (DI)(AX*4)
	ADDQ        $8, AX
	JMP         fma4

fma4tail:
	CMPQ AX, CX
	JGE  fma4done
	VMOVSS      (DI)(AX*4), X4
	VMOVSS      (SI)(AX*4), X5
	VFMADD231SS X0, X5, X4
	VMOVSS      (R8)(AX*4), X5
	VFMADD231SS X1, X5, X4
	VMOVSS      (R9)(AX*4), X5
	VFMADD231SS X2, X5, X4
	VMOVSS      (R10)(AX*4), X5
	VFMADD231SS X3, X5, X4
	VMOVSS      X4, (DI)(AX*4)
	INCQ        AX
	JMP         fma4tail

fma4done:
	VZEROUPPER
	RET

// func saxpy1FMA(orow []float32, a float32, brow []float32)
TEXT ·saxpy1FMA(SB), NOSPLIT, $0-56
	MOVQ orow_base+0(FP), DI
	MOVQ brow_base+32(FP), SI
	MOVQ brow_len+40(FP), CX

	VBROADCASTSS a+24(FP), Y0

	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-8, DX

fma1:
	CMPQ AX, DX
	JGE  fma1tail
	VMOVUPS     (DI)(AX*4), Y4
	VMOVUPS     (SI)(AX*4), Y5
	VFMADD231PS Y0, Y5, Y4
	VMOVUPS     Y4, (DI)(AX*4)
	ADDQ        $8, AX
	JMP         fma1

fma1tail:
	CMPQ AX, CX
	JGE  fma1done
	VMOVSS      (DI)(AX*4), X4
	VMOVSS      (SI)(AX*4), X5
	VFMADD231SS X0, X5, X4
	VMOVSS      X4, (DI)(AX*4)
	INCQ        AX
	JMP         fma1tail

fma1done:
	VZEROUPPER
	RET
