// Package baseline implements the traditional lossless compressors the
// paper argues are ineffective on CNN weight streams (Sec. III-B):
// byte-level Huffman coding (the canonical entropy coder) and run-length
// encoding (the canonical redundancy coder). Applied to serialized
// weights, both hover near ratio 1.0 — the quantitative version of
// Fig. 3's entropy argument — while they compress text and repetitive
// data well, confirming the implementations are sound.
package baseline

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// ErrEmpty is returned when there is nothing to compress.
var ErrEmpty = errors.New("baseline: empty input")

// huffNode is a node of the Huffman code tree.
type huffNode struct {
	count       uint64
	symbol      int // 0..255 for leaves, -1 internal
	left, right *huffNode
}

// nodeHeap orders nodes by count (ties by symbol for determinism).
type nodeHeap []*huffNode

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].count != h[j].count {
		return h[i].count < h[j].count
	}
	return h[i].symbol < h[j].symbol
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(*huffNode)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// HuffmanCodeLengths returns the optimal prefix-code bit length for every
// byte symbol in data.
func HuffmanCodeLengths(data []byte) ([256]int, error) {
	var lengths [256]int
	if len(data) == 0 {
		return lengths, ErrEmpty
	}
	var counts [256]uint64
	for _, b := range data {
		counts[b]++
	}
	h := &nodeHeap{}
	for s, c := range counts {
		if c > 0 {
			heap.Push(h, &huffNode{count: c, symbol: s})
		}
	}
	if h.Len() == 1 {
		// Single distinct symbol: one bit per symbol by convention.
		lengths[(*h)[0].symbol] = 1
		return lengths, nil
	}
	for h.Len() > 1 {
		a := heap.Pop(h).(*huffNode)
		b := heap.Pop(h).(*huffNode)
		heap.Push(h, &huffNode{count: a.count + b.count, symbol: -1, left: a, right: b})
	}
	root := heap.Pop(h).(*huffNode)
	var walk func(n *huffNode, depth int)
	walk = func(n *huffNode, depth int) {
		if n.symbol >= 0 {
			lengths[n.symbol] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	return lengths, nil
}

// Huffman storage-model terms: the canonical code's side channel is the
// per-symbol length table (one byte per possible symbol, exactly what
// HuffmanEncode materializes) plus the 32-bit original-count header the
// decoder needs to know where the bit stream ends. Charging them
// explicitly keeps HuffmanCompressedBits-derived ratios comparable with
// the stream-size accounting of core.Codec implementations — a ratio
// that omits the side channel overstates the baseline on short inputs.
const (
	HuffmanTableBits  = 256 * 8
	HuffmanHeaderBits = 32 + HuffmanTableBits
)

// HuffmanCompressedBits returns the storage size of Huffman-coding data:
// the payload bits plus the canonical code-table side channel and count
// header (HuffmanHeaderBits), matching the materialized HuffmanEncode
// stream up to the final byte's padding.
func HuffmanCompressedBits(data []byte) (uint64, error) {
	lengths, err := HuffmanCodeLengths(data)
	if err != nil {
		return 0, err
	}
	var counts [256]uint64
	for _, b := range data {
		counts[b]++
	}
	var bits uint64
	for s, c := range counts {
		bits += c * uint64(lengths[s])
	}
	return bits + HuffmanHeaderBits, nil
}

// HuffmanRatio returns original bits over Huffman-compressed bits.
func HuffmanRatio(data []byte) (float64, error) {
	bits, err := HuffmanCompressedBits(data)
	if err != nil {
		return 0, err
	}
	if bits == 0 {
		return 0, fmt.Errorf("baseline: degenerate compressed size")
	}
	return float64(8*len(data)) / float64(bits), nil
}

// ShannonBound returns the entropy lower bound on the compressed size of
// data in bits (excluding any table overhead). Huffman achieves within
// one bit per symbol of this bound.
func ShannonBound(data []byte) (float64, error) {
	if len(data) == 0 {
		return 0, ErrEmpty
	}
	var counts [256]uint64
	for _, b := range data {
		counts[b]++
	}
	n := float64(len(data))
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h * n, nil
}
