// Vectorized blocked matmul kernel, selected with `go build -tags
// vecmm` on amd64. The tiling skeleton is byte-for-byte the one in
// kernels_blocked_generic.go; only the innermost j-sweeps are replaced
// by hand-written SSE2 saxpy kernels (kernels_saxpy_amd64.s).
//
// Bit-identity argument: for one output element dst[i][j] the generic
// kernel performs, in ascending p order, one single-precision multiply
// and one single-precision add per nonzero a term. MULPS/ADDPS execute
// the same IEEE-754 binary32 operations independently per lane, and the
// saxpy kernels keep the four unrolled terms as four sequential
// mul+add pairs exactly like the scalar code (no FMA contraction, no
// reassociation), so every lane reproduces the scalar rounding sequence
// exactly. The zero-skip branches are taken in Go before entering the
// assembly, matching the generic kernel's skip behaviour (relevant for
// signed zeros and Inf/NaN propagation: 0*Inf would introduce a NaN the
// reference kernel never sees).

//go:build vecmm && amd64

package tensor

// VecMatMul reports whether this binary was built with the vectorized
// matmul inner kernel (`-tags vecmm` on amd64). The two kernels are
// bit-identical; the flag only tells benchmarks and doctors which code
// path is live.
const VecMatMul = true

// saxpy4 computes orow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
// for j in [0, len(b0)), keeping the four terms as four sequential
// single-precision multiply-add pairs per element. b0..b3 must have
// equal length, and orow at least that length.
//
//go:noescape
func saxpy4(orow []float32, a0, a1, a2, a3 float32, b0, b1, b2, b3 []float32)

// saxpy1 computes orow[j] += a*brow[j] for j in [0, len(brow)).
// orow must have at least len(brow) elements.
//
//go:noescape
func saxpy1(orow []float32, a float32, brow []float32)

// matMulBlocked mirrors the generic kernel's tiling and zero-skip
// structure; see kernels_blocked_generic.go for the full contract.
func matMulBlocked(dst, a, b []float32, rowLo, rowHi, k, n, tileI, tileK, tileJ int) {
	if tileI < 1 {
		tileI = defaultTileI
	}
	if tileK < 1 {
		tileK = defaultTileK
	}
	if tileJ < 1 {
		tileJ = defaultTileJ
	}
	for ii := rowLo; ii < rowHi; ii += tileI {
		iMax := min(ii+tileI, rowHi)
		for kk := 0; kk < k; kk += tileK {
			kMax := min(kk+tileK, k)
			for jj := 0; jj < n; jj += tileJ {
				jMax := min(jj+tileJ, n)
				for i := ii; i < iMax; i++ {
					abase := i * k
					orow := dst[i*n+jj : i*n+jMax]
					p := kk
					for ; p+3 < kMax; p += 4 {
						a0, a1, a2, a3 := a[abase+p], a[abase+p+1], a[abase+p+2], a[abase+p+3]
						if a0 != 0 && a1 != 0 && a2 != 0 && a3 != 0 {
							b0 := b[(p+0)*n+jj : (p+0)*n+jMax]
							b1 := b[(p+1)*n+jj : (p+1)*n+jMax][:len(b0)]
							b2 := b[(p+2)*n+jj : (p+2)*n+jMax][:len(b0)]
							b3 := b[(p+3)*n+jj : (p+3)*n+jMax][:len(b0)]
							saxpy4(orow, a0, a1, a2, a3, b0, b1, b2, b3)
						} else {
							matMulTail(orow, a, b, abase, p, p+4, n, jj, jMax)
						}
					}
					matMulTail(orow, a, b, abase, p, kMax, n, jj, jMax)
				}
			}
		}
	}
}

// matMulTail applies the reference per-p accumulation (with the zero
// skip) for p in [pLo, pHi) against one destination row segment.
func matMulTail(orow, a, b []float32, abase, pLo, pHi, n, jj, jMax int) {
	for p := pLo; p < pHi; p++ {
		av := a[abase+p]
		if av == 0 {
			continue
		}
		saxpy1(orow, av, b[p*n+jj:p*n+jMax])
	}
}
