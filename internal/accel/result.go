package accel

// EnergyBreakdown is the paper's six-component energy split (Fig. 10),
// with dynamic and leakage parts for each subsystem. All values in
// picojoules.
type EnergyBreakdown struct {
	CommDyn   float64
	CommLeak  float64
	CompDyn   float64
	CompLeak  float64
	LocalDyn  float64
	LocalLeak float64
	MainDyn   float64
	MainLeak  float64
}

// Total returns the summed energy in picojoules.
func (e EnergyBreakdown) Total() float64 {
	return e.CommDyn + e.CommLeak + e.CompDyn + e.CompLeak +
		e.LocalDyn + e.LocalLeak + e.MainDyn + e.MainLeak
}

// add accumulates another breakdown.
func (e *EnergyBreakdown) add(o EnergyBreakdown) {
	e.CommDyn += o.CommDyn
	e.CommLeak += o.CommLeak
	e.CompDyn += o.CompDyn
	e.CompLeak += o.CompLeak
	e.LocalDyn += o.LocalDyn
	e.LocalLeak += o.LocalLeak
	e.MainDyn += o.MainDyn
	e.MainLeak += o.MainLeak
}

// scale multiplies every component.
func (e *EnergyBreakdown) scale(f float64) {
	e.CommDyn *= f
	e.CommLeak *= f
	e.CompDyn *= f
	e.CompLeak *= f
	e.LocalDyn *= f
	e.LocalLeak *= f
	e.MainDyn *= f
	e.MainLeak *= f
}

// LatencyBreakdown is the paper's three-component latency split: cycles
// attributed to main memory, on-chip communication, and computation —
// plus, in streaming-overlap mode, decode-stall cycles. Every simulated
// cycle is attributed to exactly one component, so the parts sum to
// Total.
//
// In serial mode (Config.Overlap off) the priority is memory over
// communication over computation — memory is the blocking resource in a
// ship-then-compute schedule — and DecodeStall is always zero. In
// overlap mode the priority inverts to computation over decode-stall
// over memory over communication: a cycle where any MAC lane progresses
// is compute, a cycle where MACs only wait on the decompression unit is
// a decode stall, and memory/communication cycles are the *exposed*
// transfer time the double buffering failed to hide.
type LatencyBreakdown struct {
	Memory        uint64
	Communication uint64
	Computation   uint64
	// DecodeStall counts cycles where a tile had fully arrived but the
	// decompression unit had not yet made it consumable, with every MAC
	// lane idle — the signature of decode bandwidth falling short of
	// compute demand. Zero in serial mode.
	DecodeStall uint64
}

// Total returns the summed cycle count.
func (l LatencyBreakdown) Total() uint64 {
	return l.Memory + l.Communication + l.Computation + l.DecodeStall
}

func (l *LatencyBreakdown) add(o LatencyBreakdown) {
	l.Memory += o.Memory
	l.Communication += o.Communication
	l.Computation += o.Computation
	l.DecodeStall += o.DecodeStall
}

func (l *LatencyBreakdown) scale(f float64) {
	l.Memory = uint64(float64(l.Memory) * f)
	l.Communication = uint64(float64(l.Communication) * f)
	l.Computation = uint64(float64(l.Computation) * f)
	l.DecodeStall = uint64(float64(l.DecodeStall) * f)
}

// Traffic counts the data movement of a layer or model run. Under fault
// injection the flit and hop counters include retransmission traffic, so
// the recovery overhead flows into the communication energy and latency
// exactly like first-attempt traffic; CorruptFlits and Retransmits break
// out how much of it was recovery.
type Traffic struct {
	DRAMReadWords  uint64
	DRAMWriteWords uint64
	NoCFlits       uint64
	FlitHops       uint64 // router traversals
	LinkHops       uint64
	CorruptFlits   uint64 // transient link faults detected by checksums
	Retransmits    uint64 // packets re-sent end to end after a NACK
}

func (t *Traffic) add(o Traffic) {
	t.DRAMReadWords += o.DRAMReadWords
	t.DRAMWriteWords += o.DRAMWriteWords
	t.NoCFlits += o.NoCFlits
	t.FlitHops += o.FlitHops
	t.LinkHops += o.LinkHops
	t.CorruptFlits += o.CorruptFlits
	t.Retransmits += o.Retransmits
}

func (t *Traffic) scale(f float64) {
	t.DRAMReadWords = uint64(float64(t.DRAMReadWords) * f)
	t.DRAMWriteWords = uint64(float64(t.DRAMWriteWords) * f)
	t.NoCFlits = uint64(float64(t.NoCFlits) * f)
	t.FlitHops = uint64(float64(t.FlitHops) * f)
	t.LinkHops = uint64(float64(t.LinkHops) * f)
	t.CorruptFlits = uint64(float64(t.CorruptFlits) * f)
	t.Retransmits = uint64(float64(t.Retransmits) * f)
}

// LayerResult is the simulation outcome of one layer.
type LayerResult struct {
	Name string
	Kind string
	Flow Dataflow

	Cycles  uint64
	Latency LatencyBreakdown
	Energy  EnergyBreakdown
	Traffic Traffic

	Rounds    int // total tiling rounds
	SimRounds int // rounds simulated cycle-accurately (rest extrapolated)
}

// Result is the simulation outcome of a full inference.
type Result struct {
	Model  string
	Layers []LayerResult

	Cycles  uint64
	Latency LatencyBreakdown
	Energy  EnergyBreakdown
	Traffic Traffic
}

// accumulate folds a layer into the totals.
func (r *Result) accumulate(l LayerResult) {
	r.Layers = append(r.Layers, l)
	r.Cycles += l.Cycles
	r.Latency.add(l.Latency)
	r.Energy.add(l.Energy)
	r.Traffic.add(l.Traffic)
}

// Seconds converts the total cycle count at the given clock.
func (r *Result) Seconds(clockHz float64) float64 {
	return float64(r.Cycles) / clockHz
}
