package train

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// Batch evaluation is sharded across the deterministic worker pool: the
// sample range is split into contiguous chunks, each chunk owned by one
// goroutine with its own scratch Runner over the shared read-only graph.
// Integer agreement counts are summed exactly; per-probe float scores are
// written into an index-ordered slice and reduced serially in index
// order. Together with the bit-identical scratch kernels this makes every
// result byte-identical for every worker count.

// chunkRange returns the half-open sample range [lo, hi) of chunk w out
// of `chunks` over n items.
func chunkRange(n, chunks, w int) (lo, hi int) {
	size := (n + chunks - 1) / chunks
	lo = w * size
	hi = min(lo+size, n)
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// MaxEvalBatch caps the per-worker evaluation batch size of the
// accuracy and fidelity sweeps. Values <= 1 disable batching entirely
// (the per-sample Runner path). Batched and per-sample evaluation are
// byte-identical; the cap only bounds scratch memory.
var MaxEvalBatch = 32

// evalBatchSize picks the evaluation batch size for g on per-sample
// inputs of the given shape. Batching pays off when the convolution
// weight panels dominate the im2col matrices (deep, narrow-spatial
// models, where one stacked matmul re-streams the big weight matrices
// once per batch instead of once per sample); spatial-heavy models like
// LeNet see no reuse and keep the per-sample path. The returned size is
// additionally bounded so the stacked activations and im2col buffers
// stay within a fixed memory budget per worker.
func evalBatchSize(g *nn.Graph, sampleShape []int, n int) int {
	if MaxEvalBatch <= 1 || n <= 1 {
		return 1
	}
	shapes, err := g.InferShapes(sampleShape)
	if err != nil {
		return 1
	}
	var actVol, colsVol, weightVol float64
	for _, name := range g.LayerNames() {
		s := shapes[name]
		vol := 1.0
		for _, d := range s {
			vol *= float64(d)
		}
		actVol += vol
		if c, ok := g.Layer(name).(*nn.Conv2D); ok && len(s) == 3 {
			k := float64(c.KH * c.KW * c.InC)
			colsVol += float64(s[0]*s[1]) * k
			weightVol += k * float64(c.OutC)
		}
	}
	if weightVol <= colsVol {
		return 1
	}
	const budgetBytes = 256 << 20
	perSample := 4 * (actVol + colsVol)
	bs := MaxEvalBatch
	if fit := int(budgetBytes / perSample); fit < bs {
		bs = fit
	}
	if bs > n {
		bs = n
	}
	if bs < 1 {
		bs = 1
	}
	return bs
}

// Accuracy returns the top-1 accuracy of the network on labelled samples.
func Accuracy(g *nn.Graph, samples []dataset.Sample) (float64, error) {
	return TopKAccuracyWorkers(g, samples, 1, 1)
}

// AccuracyWorkers is Accuracy with the samples sharded over the worker
// pool (workers <= 0 selects one per CPU). The result is identical for
// every worker count.
func AccuracyWorkers(g *nn.Graph, samples []dataset.Sample, workers int) (float64, error) {
	return TopKAccuracyWorkers(g, samples, 1, workers)
}

// TopKAccuracy returns the fraction of samples whose true label appears in
// the network's k highest-scoring classes.
func TopKAccuracy(g *nn.Graph, samples []dataset.Sample, k int) (float64, error) {
	return TopKAccuracyWorkers(g, samples, k, 1)
}

// TopKAccuracyWorkers is TopKAccuracy sharded over the worker pool.
func TopKAccuracyWorkers(g *nn.Graph, samples []dataset.Sample, k, workers int) (float64, error) {
	if len(samples) == 0 {
		return 0, errors.New("train: no samples")
	}
	if k <= 0 {
		return 0, fmt.Errorf("train: non-positive k %d", k)
	}
	workers = parallel.Workers(workers)
	if workers > len(samples) {
		workers = len(samples)
	}
	batch := evalBatchSize(g, samples[0].Image.Shape(), len(samples))
	counts := make([]int, workers)
	err := parallel.ForEach(context.Background(), workers, workers, func(_ context.Context, w int) error {
		lo, hi := chunkRange(len(samples), workers, w)
		correct := 0
		score := func(y *tensor.Tensor, label int) {
			for _, idx := range stats.TopK(y.Float64s(), k) {
				if idx == label {
					correct++
					break
				}
			}
		}
		if batch > 1 {
			br := g.WithBatch()
			buf := make([]*tensor.Tensor, 0, batch)
			for start := lo; start < hi; start += batch {
				end := min(start+batch, hi)
				buf = buf[:0]
				for _, s := range samples[start:end] {
					buf = append(buf, s.Image)
				}
				ys, err := br.ForwardBatch(buf)
				if err != nil {
					return err
				}
				for j, y := range ys {
					score(y, samples[start+j].Label)
				}
			}
		} else {
			r := g.WithScratch()
			for _, s := range samples[lo:hi] {
				y, err := r.Forward(s.Image)
				if err != nil {
					return err
				}
				score(y, s.Label)
			}
		}
		counts[w] = correct
		return nil
	})
	if err != nil {
		return 0, err
	}
	correct := 0
	for _, c := range counts {
		correct += c
	}
	return float64(correct) / float64(len(samples)), nil
}

// Fidelity measures top-k agreement between a modified network and
// reference predictions: the fraction of probe inputs whose top-1 class
// under the modified network appears in the reference top-k. With the
// original network as its own reference it is 1.0 by construction, so the
// paper's normalized accuracy series for the large (untrainable offline)
// models are reproduced as fidelity curves; see DESIGN.md.
type Fidelity struct {
	refTopK [][]int
	k       int
}

// NewFidelity captures the reference top-k predictions of g over the probe
// inputs.
func NewFidelity(g *nn.Graph, probes []*tensor.Tensor, k int) (*Fidelity, error) {
	if len(probes) == 0 {
		return nil, errors.New("train: no probe inputs")
	}
	if k <= 0 {
		return nil, fmt.Errorf("train: non-positive k %d", k)
	}
	f := &Fidelity{k: k, refTopK: make([][]int, len(probes))}
	r := g.WithScratch()
	for i, x := range probes {
		y, err := r.Forward(x)
		if err != nil {
			return nil, err
		}
		f.refTopK[i] = stats.TopK(y.Float64s(), k)
	}
	return f, nil
}

// top1Agrees reports whether y's top-1 class is in the reference top-k of
// probe i.
func (f *Fidelity) top1Agrees(y *tensor.Tensor, i int) bool {
	top1 := stats.ArgMax(y.Float64s())
	for _, ref := range f.refTopK[i] {
		if ref == top1 {
			return true
		}
	}
	return false
}

// overlapOf returns the fraction of probe i's reference top-k classes
// that remain in y's top-k.
func (f *Fidelity) overlapOf(y *tensor.Tensor, i int) float64 {
	newTop := stats.TopK(y.Float64s(), f.k)
	inNew := make(map[int]bool, len(newTop))
	for _, idx := range newTop {
		inNew[idx] = true
	}
	kept := 0
	for _, ref := range f.refTopK[i] {
		if inNew[ref] {
			kept++
		}
	}
	return float64(kept) / float64(len(f.refTopK[i]))
}

// Score evaluates the modified network on the same probes and returns the
// agreement fraction in [0, 1].
func (f *Fidelity) Score(g *nn.Graph, probes []*tensor.Tensor) (float64, error) {
	return f.ScoreWorkers(g, probes, 1)
}

// ScoreWorkers is Score sharded over the worker pool.
func (f *Fidelity) ScoreWorkers(g *nn.Graph, probes []*tensor.Tensor, workers int) (float64, error) {
	if len(probes) != len(f.refTopK) {
		return 0, fmt.Errorf("train: %d probes, reference has %d", len(probes), len(f.refTopK))
	}
	agree, err := f.countAgree(workers, len(probes), evalBatchSize(g, probes[0].Shape(), len(probes)),
		func(r *nn.Runner, i int) (*tensor.Tensor, error) {
			return r.Forward(probes[i])
		},
		func(br *nn.BatchRunner, lo, hi int) ([]*tensor.Tensor, error) {
			return br.ForwardBatch(probes[lo:hi])
		}, g)
	if err != nil {
		return 0, err
	}
	return float64(agree) / float64(len(probes)), nil
}

// Overlap is a finer-grained agreement measure than Score: the mean
// fraction of the reference top-k classes that remain in the modified
// network's top-k. It resolves small perturbations that leave the top-1
// prediction inside the reference top-k (where Score saturates at 1),
// which the sensitivity analysis of Fig. 9 needs.
func (f *Fidelity) Overlap(g *nn.Graph, probes []*tensor.Tensor) (float64, error) {
	return f.OverlapWorkers(g, probes, 1)
}

// OverlapWorkers is Overlap sharded over the worker pool. Per-probe
// overlap values are collected index-ordered and summed serially, so the
// float result is byte-identical for every worker count.
func (f *Fidelity) OverlapWorkers(g *nn.Graph, probes []*tensor.Tensor, workers int) (float64, error) {
	if len(probes) != len(f.refTopK) {
		return 0, fmt.Errorf("train: %d probes, reference has %d", len(probes), len(f.refTopK))
	}
	return f.sumOverlap(workers, len(probes), evalBatchSize(g, probes[0].Shape(), len(probes)),
		func(r *nn.Runner, i int) (*tensor.Tensor, error) {
			return r.Forward(probes[i])
		},
		func(br *nn.BatchRunner, lo, hi int) ([]*tensor.Tensor, error) {
			return br.ForwardBatch(probes[lo:hi])
		}, g)
}

// ScoreFrom is Score using cached prefix activations: acts[i] must be the
// ForwardAll result of probe i on the *unmodified* prefix, and from names
// the first layer whose parameters changed. Only the suffix re-runs, which
// is what makes the delta sweeps on the very deep models tractable.
func (f *Fidelity) ScoreFrom(g *nn.Graph, acts []map[string]*tensor.Tensor, from string) (float64, error) {
	return f.ScoreFromWorkers(g, acts, from, 1)
}

// ScoreFromWorkers is ScoreFrom sharded over the worker pool.
func (f *Fidelity) ScoreFromWorkers(g *nn.Graph, acts []map[string]*tensor.Tensor, from string, workers int) (float64, error) {
	if len(acts) != len(f.refTopK) {
		return 0, fmt.Errorf("train: %d cached activations, reference has %d", len(acts), len(f.refTopK))
	}
	agree, err := f.countAgree(workers, len(acts), fromBatchSize(g, acts),
		func(r *nn.Runner, i int) (*tensor.Tensor, error) {
			return r.ForwardFrom(acts[i], from)
		},
		func(br *nn.BatchRunner, lo, hi int) ([]*tensor.Tensor, error) {
			return br.ForwardFromBatch(acts[lo:hi], from)
		}, g)
	if err != nil {
		return 0, err
	}
	return float64(agree) / float64(len(f.refTopK)), nil
}

// OverlapFrom is Overlap using cached prefix activations (see ScoreFrom).
func (f *Fidelity) OverlapFrom(g *nn.Graph, acts []map[string]*tensor.Tensor, from string) (float64, error) {
	return f.OverlapFromWorkers(g, acts, from, 1)
}

// OverlapFromWorkers is OverlapFrom sharded over the worker pool.
func (f *Fidelity) OverlapFromWorkers(g *nn.Graph, acts []map[string]*tensor.Tensor, from string, workers int) (float64, error) {
	if len(acts) != len(f.refTopK) {
		return 0, fmt.Errorf("train: %d cached activations, reference has %d", len(acts), len(f.refTopK))
	}
	return f.sumOverlap(workers, len(acts), fromBatchSize(g, acts),
		func(r *nn.Runner, i int) (*tensor.Tensor, error) {
			return r.ForwardFrom(acts[i], from)
		},
		func(br *nn.BatchRunner, lo, hi int) ([]*tensor.Tensor, error) {
			return br.ForwardFromBatch(acts[lo:hi], from)
		}, g)
}

// fromBatchSize picks the batch size for the cached-prefix paths,
// reading the per-sample input shape off the cached activations.
func fromBatchSize(g *nn.Graph, acts []map[string]*tensor.Tensor) int {
	if len(acts) == 0 {
		return 1
	}
	in, ok := acts[0][nn.InputName]
	if !ok || in == nil {
		return 1
	}
	return evalBatchSize(g, in.Shape(), len(acts))
}

// forEachProbe shards the probe indices into per-worker chunks and
// visits every probe's output exactly once, in index order within each
// chunk. With batch > 1 each worker drives a BatchRunner over
// contiguous sub-batches; otherwise each worker walks its chunk through
// a per-sample Runner. Both paths produce byte-identical activations,
// so visit sees the same tensors regardless of worker count or batch
// size.
func forEachProbe(workers, n, batch int, g *nn.Graph,
	evalOne func(r *nn.Runner, i int) (*tensor.Tensor, error),
	evalBatch func(br *nn.BatchRunner, lo, hi int) ([]*tensor.Tensor, error),
	visit func(i int, y *tensor.Tensor)) error {
	workers = parallel.Workers(workers)
	if workers > n {
		workers = n
	}
	return parallel.ForEach(context.Background(), workers, workers, func(_ context.Context, w int) error {
		lo, hi := chunkRange(n, workers, w)
		if batch > 1 {
			br := g.WithBatch()
			for start := lo; start < hi; start += batch {
				end := min(start+batch, hi)
				ys, err := evalBatch(br, start, end)
				if err != nil {
					return err
				}
				for j, y := range ys {
					visit(start+j, y)
				}
			}
			return nil
		}
		r := g.WithScratch()
		for i := lo; i < hi; i++ {
			y, err := evalOne(r, i)
			if err != nil {
				return err
			}
			visit(i, y)
		}
		return nil
	})
}

// countAgree shards the probe indices into per-worker chunks, each with
// its own Runner or BatchRunner, and sums the (exact) integer agreement
// counts.
func (f *Fidelity) countAgree(workers, n, batch int,
	evalOne func(r *nn.Runner, i int) (*tensor.Tensor, error),
	evalBatch func(br *nn.BatchRunner, lo, hi int) ([]*tensor.Tensor, error),
	g *nn.Graph) (int, error) {
	// One agreement flag per probe: workers own disjoint index ranges,
	// and the exact integer sum is order-independent.
	agrees := make([]bool, n)
	err := forEachProbe(workers, n, batch, g, evalOne, evalBatch, func(i int, y *tensor.Tensor) {
		agrees[i] = f.top1Agrees(y, i)
	})
	if err != nil {
		return 0, err
	}
	agree := 0
	for _, a := range agrees {
		if a {
			agree++
		}
	}
	return agree, nil
}

// sumOverlap shards the probe indices into per-worker chunks, collects
// per-probe overlap values index-ordered, and reduces them serially in
// index order for a worker-count-independent float sum.
func (f *Fidelity) sumOverlap(workers, n, batch int,
	evalOne func(r *nn.Runner, i int) (*tensor.Tensor, error),
	evalBatch func(br *nn.BatchRunner, lo, hi int) ([]*tensor.Tensor, error),
	g *nn.Graph) (float64, error) {
	vals := make([]float64, n)
	err := forEachProbe(workers, n, batch, g, evalOne, evalBatch, func(i int, y *tensor.Tensor) {
		vals[i] = f.overlapOf(y, i)
	})
	if err != nil {
		return 0, err
	}
	var total float64
	for _, v := range vals {
		total += v
	}
	return total / float64(n), nil
}
