// Command cluster runs one fault-tolerant accelerator-cluster scenario
// and prints its outcome: a sharded, replicated fleet of accelerator
// nodes serving inference over an unreliable RPC fabric while a
// Raft-replicated scheduler rolls out a compressed weight version.
//
// Quick start — five nodes, leader killed mid-rollout:
//
//	go run ./cmd/cluster -nodes 5 -kill-leader
//
// The run is a deterministic discrete-event simulation: the same flags
// and seed print byte-identical output on any machine at any
// parallelism.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/accel"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/obs"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 5, "accelerator nodes (Raft members)")
		shards   = flag.Int("shards", 2, "model shards (each replicated across nodes)")
		model    = flag.String("model", "LeNet-5", "model to shard across the cluster")
		seed     = flag.Int64("seed", 2020, "deterministic seed (faults, jitter, elections)")
		requests = flag.Int("requests", 60, "inference requests in the open-loop workload")
		interval = flag.Uint64("interval", 200, "ticks between request arrivals")

		drop    = flag.Float64("drop", 0, "message drop probability")
		delay   = flag.Float64("delay", 0, "message delay probability")
		dup     = flag.Float64("dup", 0, "message duplication probability")
		reorder = flag.Float64("reorder", 0, "message reorder probability")

		rollout    = flag.Bool("rollout", true, "roll out the compressed weight version mid-workload")
		killLeader = flag.Bool("kill-leader", false, "crash the Raft leader mid-rollout (restarts later)")
		partition  = flag.Bool("partition", false, "isolate a minority node group mid-rollout (heals later)")

		tracePath = flag.String("trace", "", "write a Chrome trace-event JSON (open at ui.perfetto.dev) to this file")
	)
	flag.Parse()

	plans, err := experiments.ClusterVersionPlans(*model, *seed, core.DefaultStorage)
	if err != nil {
		fatal(err)
	}
	spec := cluster.Spec{
		Nodes:    *nodes,
		Shards:   *shards,
		Seed:     *seed,
		Accel:    accel.DefaultConfig(),
		Versions: plans,
		Requests: *requests,
		Interval: *interval,
		Faults: faults.Model{
			MsgDropRate:    *drop,
			MsgDelayRate:   *delay,
			MsgDupRate:     *dup,
			MsgReorderRate: *reorder,
		},
		RequestRetries: 1,
		RolloutRetries: 20,
	}
	if *rollout {
		spec.RolloutAt = 2500
	}
	if *killLeader {
		spec.KillLeaderAt = 2650
		spec.RestartAt = 11000
	}
	if *partition {
		spec.PartitionAt = 3000
		spec.HealAt = 9000
	}

	var o *obs.Observer
	if *tracePath != "" {
		o = obs.New()
	}
	rep, err := cluster.Run(spec, o)
	if err != nil {
		fatal(err)
	}
	printReport(spec, rep)
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		if err := o.T().WriteChromeJSON(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\ntrace written to %s\n", *tracePath)
	}
	if rep.MixedVersion != 0 {
		fatal(fmt.Errorf("cluster: %d mixed-version responses served (rollout atomicity violated)", rep.MixedVersion))
	}
}

func printReport(spec cluster.Spec, rep *cluster.Report) {
	fmt.Printf("cluster: %d nodes, %d shards, seed %d", spec.Nodes, spec.Shards, spec.Seed)
	chaos := ""
	if spec.KillLeaderAt > 0 {
		chaos += " kill-leader"
	}
	if spec.PartitionAt > 0 {
		chaos += " partition"
	}
	if spec.Faults.Enabled() {
		chaos += fmt.Sprintf(" faults(drop=%g delay=%g dup=%g reorder=%g)",
			spec.Faults.MsgDropRate, spec.Faults.MsgDelayRate, spec.Faults.MsgDupRate, spec.Faults.MsgReorderRate)
	}
	if chaos == "" {
		chaos = " no chaos"
	}
	fmt.Printf(",%s\n\n", chaos)

	fmt.Printf("requests      %d issued, %d served, %d failed (availability %.3f)\n",
		rep.Requests, rep.Served, rep.Failed, rep.Availability)
	fmt.Printf("latency       p50 %d  p95 %d  p99 %d ticks\n", rep.P50, rep.P95, rep.P99)
	fmt.Printf("degradation   %d stale-epoch, %d reduced-replica, %d fail-overs, %d mixed-version\n",
		rep.ServedStale, rep.ReducedReplica, rep.FailedOver, rep.MixedVersion)

	versions := make([]int, 0, len(rep.ServedByVersion))
	for v := range rep.ServedByVersion {
		versions = append(versions, v)
	}
	sort.Ints(versions)
	fmt.Printf("served by     ")
	for i, v := range versions {
		if i > 0 {
			fmt.Printf(", ")
		}
		fmt.Printf("v%d: %d", v, rep.ServedByVersion[v])
	}
	fmt.Println()

	fmt.Printf("epoch         %s (final active per node: %v)\n", rep.EpochOutcome, rep.FinalActive)
	fmt.Printf("control       %d leader changes\n", rep.LeaderChanges)
	fmt.Printf("fabric        %d sent, %d delivered, %d dropped, %d delayed, %d duplicated, %d reordered\n",
		rep.Fabric.Sent, rep.Fabric.Delivered, rep.Fabric.DroppedLink+rep.Fabric.Unreachable,
		rep.Fabric.Delayed, rep.Fabric.Duplicated, rep.Fabric.Reordered)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cluster:", err)
	os.Exit(1)
}
