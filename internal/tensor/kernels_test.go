package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// refMatMul is the naive reference ikj kernel the blocked/parallel
// variants must match bit-for-bit: ascending p, one float32 add per term,
// zero a-elements skipped.
func refMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := MustNew(m, n)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			av := a.Data[i*k+p]
			if av == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				out.Data[i*n+j] += av * b.Data[p*n+j]
			}
		}
	}
	return out
}

// randMat fills a matrix with values where roughly a quarter are exact
// zeros, exercising the zero-skip paths of both kernels.
func randMat(rng *rand.Rand, rows, cols int) *Tensor {
	t := MustNew(rows, cols)
	for i := range t.Data {
		if rng.Intn(4) == 0 {
			continue
		}
		t.Data[i] = float32(rng.NormFloat64())
	}
	return t
}

func assertBitIdentical(t *testing.T, got, want *Tensor, label string) {
	t.Helper()
	if got.Size() != want.Size() {
		t.Fatalf("%s: size %d, want %d", label, got.Size(), want.Size())
	}
	for i := range want.Data {
		if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
			t.Fatalf("%s: element %d = %x, want %x", label,
				i, math.Float32bits(got.Data[i]), math.Float32bits(want.Data[i]))
		}
	}
}

func TestMatMulIntoTilesBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dims := []struct{ m, k, n int }{
		{1, 1, 1}, {3, 5, 2}, {17, 9, 33}, {64, 64, 64}, {70, 130, 520},
	}
	for _, d := range dims {
		a := randMat(rng, d.m, d.k)
		b := randMat(rng, d.k, d.n)
		want := refMatMul(a, b)
		tiles := []int{1, 3, 8, 17, d.k, d.k + 5, 0 /* defaults */}
		for _, ti := range tiles {
			for _, tk := range tiles {
				dst := MustNew(d.m, d.n)
				// Dirty the destination: MatMulInto must zero it.
				for i := range dst.Data {
					dst.Data[i] = float32(math.NaN())
				}
				if err := MatMulIntoTiles(dst, a, b, ti, tk, tk); err != nil {
					t.Fatalf("MatMulIntoTiles(%dx%dx%d, tiles %d,%d): %v", d.m, d.k, d.n, ti, tk, err)
				}
				assertBitIdentical(t, dst, want, "tiles")
			}
		}
	}
}

func TestMatMulParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randMat(rng, 37, 53)
	b := randMat(rng, 53, 29)
	want := refMatMul(a, b)
	for _, workers := range []int{1, 2, 4, 64 /* > rows */} {
		dst := MustNew(37, 29)
		for i := range dst.Data {
			dst.Data[i] = -1
		}
		if err := MatMulParallel(dst, a, b, workers); err != nil {
			t.Fatalf("MatMulParallel(workers=%d): %v", workers, err)
		}
		assertBitIdentical(t, dst, want, "parallel")
	}
}

func TestMatMulMatchesInto(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randMat(rng, 12, 40)
	b := randMat(rng, 40, 7)
	viaAlloc, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, viaAlloc, refMatMul(a, b), "MatMul")
}

func TestMatMulIntoErrors(t *testing.T) {
	a := MustNew(2, 3)
	b := MustNew(3, 4)
	if err := MatMulInto(MustNew(2, 5), a, b); err == nil {
		t.Fatal("wrong dst shape accepted")
	}
	if err := MatMulInto(MustNew(4, 2), b, a); err == nil {
		t.Fatal("inner dim mismatch accepted")
	}
	sq := MustNew(3, 3)
	if err := MatMulInto(sq, sq, MustNew(3, 3)); err == nil {
		t.Fatal("aliased dst accepted")
	}
	if err := MatMulParallel(MustNew(2, 5), a, b, 2); err == nil {
		t.Fatal("parallel wrong dst shape accepted")
	}
	if err := MatMulParallel(sq, MustNew(3, 3), sq, 2); err == nil {
		t.Fatal("parallel aliased dst accepted")
	}
}

func TestIm2ColIntoMatchesIm2ColRect(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	cases := []struct{ h, w, c, kh, kw, stride, padH, padW int }{
		{5, 5, 1, 3, 3, 1, 0, 0},
		{6, 7, 3, 3, 3, 1, 1, 1},
		{9, 9, 2, 5, 5, 2, 2, 2},
		{4, 4, 8, 1, 1, 1, 0, 0},
		{8, 6, 3, 3, 2, 2, 1, 0},
	}
	for _, tc := range cases {
		x := MustNew(tc.h, tc.w, tc.c)
		for i := range x.Data {
			x.Data[i] = float32(rng.NormFloat64())
		}
		want, wantOH, wantOW, err := Im2ColRect(x, tc.kh, tc.kw, tc.stride, tc.padH, tc.padW)
		if err != nil {
			t.Fatalf("Im2ColRect(%+v): %v", tc, err)
		}
		// Dirty scratch: explicit zero-writes must make reuse identical.
		dst := make([]float32, want.Size())
		for i := range dst {
			dst[i] = float32(math.NaN())
		}
		oh, ow, err := Im2ColInto(dst, x, tc.kh, tc.kw, tc.stride, tc.padH, tc.padW)
		if err != nil {
			t.Fatalf("Im2ColInto(%+v): %v", tc, err)
		}
		if oh != wantOH || ow != wantOW {
			t.Fatalf("Im2ColInto(%+v): out %dx%d, want %dx%d", tc, oh, ow, wantOH, wantOW)
		}
		for i := range want.Data {
			if math.Float32bits(dst[i]) != math.Float32bits(want.Data[i]) {
				t.Fatalf("Im2ColInto(%+v): element %d = %v, want %v", tc, i, dst[i], want.Data[i])
			}
		}
	}
}

func TestIm2ColIntoErrors(t *testing.T) {
	x := MustNew(5, 5, 2)
	if _, _, err := Im2ColInto(make([]float32, 4), x, 3, 3, 1, 0, 0); err == nil {
		t.Fatal("undersized dst accepted")
	}
	if _, _, err := Im2ColInto(make([]float32, 1024), x, 3, 3, 0, 0, 0); err == nil {
		t.Fatal("zero stride accepted")
	}
	if _, _, err := Im2ColInto(make([]float32, 1024), MustNew(5, 5), 3, 3, 1, 0, 0); err == nil {
		t.Fatal("rank-2 input accepted")
	}
	if _, _, err := Im2ColInto(make([]float32, 1024), x, 9, 9, 1, 0, 0); err == nil {
		t.Fatal("collapsing geometry accepted")
	}
}

// TestShapeDefensiveCopy pins the fix for Shape() returning the internal
// slice: callers mutating the returned shape must not corrupt the tensor.
func TestShapeDefensiveCopy(t *testing.T) {
	x := MustNew(2, 3, 4)
	s := x.Shape()
	s[0], s[1], s[2] = 99, 99, 99
	if x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("mutating Shape() result corrupted dims: %v", x.Shape())
	}
	if got := x.At(1, 2, 3); got != x.Data[len(x.Data)-1] {
		t.Fatalf("indexing broken after Shape() mutation: got %v", got)
	}
	y := MustNew(4)
	if got := y.Shape(); &got[0] == &y.Shape()[0] {
		t.Fatal("Shape() returned a shared backing array")
	}
}
