package dataset

import (
	"math/rand"
	"testing"
)

func TestDigitImageBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for class := 0; class < NumClasses; class++ {
		img, err := DigitImage(class, rng)
		if err != nil {
			t.Fatal(err)
		}
		s := img.Shape()
		if s[0] != DigitSize || s[1] != DigitSize || s[2] != 1 {
			t.Fatalf("class %d: shape %v", class, s)
		}
		var sum, maxv float64
		for _, v := range img.Data {
			if v < 0 || v > 1 {
				t.Fatalf("class %d: pixel out of [0,1]: %v", class, v)
			}
			sum += float64(v)
			if float64(v) > maxv {
				maxv = float64(v)
			}
		}
		if maxv < 0.5 {
			t.Errorf("class %d: no visible strokes (max %v)", class, maxv)
		}
		if sum < 10 {
			t.Errorf("class %d: too little ink (%v)", class, sum)
		}
	}
	if _, err := DigitImage(-1, rng); err == nil {
		t.Error("negative class should error")
	}
	if _, err := DigitImage(10, rng); err == nil {
		t.Error("class 10 should error")
	}
}

func TestDigitClassesDiffer(t *testing.T) {
	// Renders of different classes with the same RNG stream should differ
	// substantially (on average) — the classes must be distinguishable.
	rng := rand.New(rand.NewSource(2))
	img1, _ := DigitImage(1, rng)
	img8, _ := DigitImage(8, rng)
	var diff float64
	for i := range img1.Data {
		d := float64(img1.Data[i] - img8.Data[i])
		diff += d * d
	}
	if diff < 5 {
		t.Errorf("digit 1 vs 8 squared diff = %v, suspiciously similar", diff)
	}
}

func TestDigitsBalancedAndDeterministic(t *testing.T) {
	a, err := Digits(100, 7)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, NumClasses)
	for _, s := range a {
		counts[s.Label]++
	}
	for c, n := range counts {
		if n != 10 {
			t.Errorf("class %d count = %d, want 10", c, n)
		}
	}
	b, _ := Digits(100, 7)
	for i := range a {
		if a[i].Label != b[i].Label {
			t.Fatal("Digits not deterministic for same seed")
		}
		for j := range a[i].Image.Data {
			if a[i].Image.Data[j] != b[i].Image.Data[j] {
				t.Fatal("Digits images not deterministic")
			}
		}
	}
	if _, err := Digits(0, 1); err == nil {
		t.Error("zero count should error")
	}
}

func TestSyntheticImages(t *testing.T) {
	imgs, err := SyntheticImages(3, 16, 16, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(imgs) != 3 {
		t.Fatalf("count = %d", len(imgs))
	}
	for _, img := range imgs {
		s := img.Shape()
		if s[0] != 16 || s[1] != 16 || s[2] != 3 {
			t.Fatalf("shape %v", s)
		}
		for _, v := range img.Data {
			if v < 0 || v > 1 {
				t.Fatalf("pixel out of range: %v", v)
			}
		}
	}
	// Smoothness: adjacent-pixel variation should be far below the range.
	img := imgs[0]
	var adj float64
	n := 0
	for y := 0; y < 15; y++ {
		for x := 0; x < 15; x++ {
			d := float64(img.At(y, x, 0) - img.At(y, x+1, 0))
			adj += d * d
			n++
		}
	}
	if adj/float64(n) > 0.05 {
		t.Errorf("adjacent pixel MSE = %v, field not smooth", adj/float64(n))
	}
	if _, err := SyntheticImages(0, 4, 4, 1, 1); err == nil {
		t.Error("zero count should error")
	}
	if _, err := SyntheticImages(1, 0, 4, 1, 1); err == nil {
		t.Error("zero height should error")
	}
}

func TestSplit(t *testing.T) {
	samples, _ := Digits(100, 3)
	tr, te, err := Split(samples, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 80 || len(te) != 20 {
		t.Errorf("split sizes %d/%d", len(tr), len(te))
	}
	if _, _, err := Split(samples, 0); err == nil {
		t.Error("zero fraction should error")
	}
	if _, _, err := Split(samples, 1); err == nil {
		t.Error("unit fraction should error")
	}
	if _, _, err := Split(samples[:1], 0.2); err == nil {
		t.Error("degenerate split should error")
	}
}
