// noc_traffic drives the bare cycle-accurate mesh NoC with the traffic
// patterns of the accelerator (memory-interface fan-out, writeback
// hotspot) and uniform random traffic, printing latency, energy and a
// per-router utilization heatmap — a standalone tour of the Noxim-class
// substrate underneath the accelerator model. Flags select the routing
// algorithm and virtual-channel count.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/energy"
	"repro/internal/noc"
)

func main() {
	var (
		routingFlag = flag.String("routing", "xy", "routing algorithm: xy, yx, west-first")
		vcs         = flag.Int("vcs", 1, "virtual channels per physical channel")
		heatmap     = flag.Bool("heatmap", true, "print the per-router utilization heatmap")
	)
	flag.Parse()

	var routing noc.Routing
	switch *routingFlag {
	case "xy":
		routing = noc.RoutingXY
	case "yx":
		routing = noc.RoutingYX
	case "west-first":
		routing = noc.RoutingWestFirst
	default:
		log.Fatalf("unknown routing %q", *routingFlag)
	}
	cfg := noc.DefaultConfig()
	cfg.Routing = routing
	cfg.VirtualChannels = *vcs
	effVCs := *vcs
	if effVCs < 1 {
		effVCs = 1
	}
	fmt.Printf("4x4 mesh, %s routing, %d VC(s), buffer depth %d\n\n", routing, effVCs, cfg.BufferDepth)

	corners := []int{0, 3, 12, 15}
	isCorner := func(n int) bool {
		for _, c := range corners {
			if c == n {
				return true
			}
		}
		return false
	}

	run := func(name string, gen func(nw *noc.Network) error) {
		nw, err := noc.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := gen(nw); err != nil {
			log.Fatal(err)
		}
		cycles, drained := nw.RunUntilIdle(5_000_000)
		if !drained {
			log.Fatalf("%s: network did not drain", name)
		}
		st := nw.Stats()
		p := energy.Default45nm()
		dynPJ := float64(st.RouterTraverse)*p.RouterFlitPJ + float64(st.LinkTraverse)*p.LinkFlitPJ
		leakPJ := p.LeakagePJ(16*p.RouterLeakW+48*p.LinkLeakW, cycles)
		fmt.Printf("%-22s packets=%4d flits=%6d cycles=%7d avgLat=%7.1f dyn=%8.1f nJ leak=%8.1f nJ\n",
			name, st.PacketsOut, st.FlitsEjected, cycles, st.AvgPacketLatency(),
			dynPJ/1e3, leakPJ/1e3)
		if *heatmap {
			per := nw.PerRouterTraversals()
			var max uint64 = 1
			for _, c := range per {
				if c > max {
					max = c
				}
			}
			glyphs := []byte(" .:-=+*#%@")
			for y := 0; y < 4; y++ {
				fmt.Printf("  ")
				for x := 0; x < 4; x++ {
					c := per[y*4+x]
					g := glyphs[int(float64(c)/float64(max)*float64(len(glyphs)-1))]
					fmt.Printf("%c ", g)
				}
				fmt.Println()
			}
		}
	}

	// Pattern 1: memory-interface fan-out — each corner streams weight
	// packets to the PEs (the Fig. 1 "dispatch" phase).
	run("weights fan-out", func(nw *noc.Network) error {
		for _, mi := range corners {
			for pe := 0; pe < 16; pe++ {
				if isCorner(pe) {
					continue
				}
				if _, err := nw.SendMessage(mi, pe, 64, nil); err != nil {
					return err
				}
			}
		}
		return nil
	})

	// Pattern 2: output writeback hotspot — every PE converges on one
	// memory interface (the stress case for wormhole arbitration).
	run("writeback hotspot", func(nw *noc.Network) error {
		for pe := 0; pe < 16; pe++ {
			if isCorner(pe) {
				continue
			}
			if _, err := nw.SendMessage(pe, 0, 128, nil); err != nil {
				return err
			}
		}
		return nil
	})

	// Pattern 3: uniform random traffic at a moderate load.
	run("uniform random", func(nw *noc.Network) error {
		rng := rand.New(rand.NewSource(1))
		for k := 0; k < 400; k++ {
			src := rng.Intn(16)
			dst := rng.Intn(16)
			if dst == src {
				dst = (src + 5) % 16
			}
			if err := nw.Inject(noc.Packet{Src: src, Dst: dst, Flits: 1 + rng.Intn(16)}); err != nil {
				return err
			}
		}
		return nil
	})
}
