package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Add sums two or more equal-shape inputs elementwise — the ResNet
// residual connection.
type Add struct {
	name string
}

// NewAdd creates an elementwise addition merge node.
func NewAdd(name string) *Add { return &Add{name: name} }

// Name implements Layer.
func (a *Add) Name() string { return a.name }

// Kind implements Layer.
func (a *Add) Kind() string { return "MERGE" }

// OutShape implements Layer.
func (a *Add) OutShape(in [][]int) ([]int, error) {
	if len(in) < 2 {
		return nil, fmt.Errorf("%w: add %q wants >= 2 inputs, got %d", ErrArity, a.name, len(in))
	}
	for _, s := range in[1:] {
		if len(s) != len(in[0]) {
			return nil, fmt.Errorf("%w: add %q rank mismatch %v vs %v", ErrShape, a.name, in[0], s)
		}
		for i := range s {
			if s[i] != in[0][i] {
				return nil, fmt.Errorf("%w: add %q shape mismatch %v vs %v", ErrShape, a.name, in[0], s)
			}
		}
	}
	return in[0], nil
}

// Forward implements Layer.
func (a *Add) Forward(xs []*tensor.Tensor) (*tensor.Tensor, error) {
	if len(xs) < 2 {
		return nil, fmt.Errorf("%w: add %q wants >= 2 inputs, got %d", ErrArity, a.name, len(xs))
	}
	out := xs[0].Clone()
	for _, x := range xs[1:] {
		if !tensor.SameShape(out, x) {
			return nil, fmt.Errorf("%w: add %q operands %v vs %v", ErrShape, a.name, out.Shape(), x.Shape())
		}
		for i, v := range x.Data {
			out.Data[i] += v
		}
	}
	return out, nil
}

// ForwardScratch implements ScratchLayer: identical accumulation order to
// Forward (copy of xs[0], then += each later operand in turn).
func (a *Add) ForwardScratch(xs []*tensor.Tensor, s *Scratch) (*tensor.Tensor, error) {
	if len(xs) < 2 {
		return nil, fmt.Errorf("%w: add %q wants >= 2 inputs, got %d", ErrArity, a.name, len(xs))
	}
	out := s.TensorLike(a.name, "/out", xs[0])
	copy(out.Data, xs[0].Data)
	for _, x := range xs[1:] {
		if !tensor.SameShape(out, x) {
			return nil, fmt.Errorf("%w: add %q operands %v vs %v", ErrShape, a.name, out.Shape(), x.Shape())
		}
		for i, v := range x.Data {
			out.Data[i] += v
		}
	}
	return out, nil
}

// Params implements Layer.
func (a *Add) Params() []Param { return nil }

// Cost implements Layer.
func (a *Add) Cost(in [][]int) (uint64, error) { return 0, nil }

// Concat concatenates [H, W, C_i] inputs along the channel dimension —
// the Inception tower join.
type Concat struct {
	name string
}

// NewConcat creates a channel-concatenation merge node.
func NewConcat(name string) *Concat { return &Concat{name: name} }

// Name implements Layer.
func (c *Concat) Name() string { return c.name }

// Kind implements Layer.
func (c *Concat) Kind() string { return "MERGE" }

// OutShape implements Layer.
func (c *Concat) OutShape(in [][]int) ([]int, error) {
	if len(in) < 2 {
		return nil, fmt.Errorf("%w: concat %q wants >= 2 inputs, got %d", ErrArity, c.name, len(in))
	}
	first := in[0]
	if len(first) != 3 {
		return nil, fmt.Errorf("%w: concat %q wants [H W C] inputs, got %v", ErrShape, c.name, first)
	}
	totalC := first[2]
	for _, s := range in[1:] {
		if len(s) != 3 || s[0] != first[0] || s[1] != first[1] {
			return nil, fmt.Errorf("%w: concat %q spatial mismatch %v vs %v", ErrShape, c.name, first, s)
		}
		totalC += s[2]
	}
	return []int{first[0], first[1], totalC}, nil
}

// Forward implements Layer.
func (c *Concat) Forward(xs []*tensor.Tensor) (*tensor.Tensor, error) {
	h, w, totalC, err := c.checkInputs(xs)
	if err != nil {
		return nil, err
	}
	out := tensor.MustNew(h, w, totalC)
	c.forwardInto(out.Data, xs, h*w, totalC)
	return out, nil
}

// ForwardScratch implements ScratchLayer.
func (c *Concat) ForwardScratch(xs []*tensor.Tensor, s *Scratch) (*tensor.Tensor, error) {
	h, w, totalC, err := c.checkInputs(xs)
	if err != nil {
		return nil, err
	}
	out := s.Tensor(c.name, "/out", h, w, totalC)
	c.forwardInto(out.Data, xs, h*w, totalC)
	return out, nil
}

// checkInputs validates merge operands without allocating shape slices.
func (c *Concat) checkInputs(xs []*tensor.Tensor) (h, w, totalC int, err error) {
	if len(xs) < 2 {
		return 0, 0, 0, fmt.Errorf("%w: concat %q wants >= 2 inputs, got %d", ErrArity, c.name, len(xs))
	}
	first := xs[0]
	if first.Rank() != 3 {
		return 0, 0, 0, fmt.Errorf("%w: concat %q wants [H W C] inputs, got %v", ErrShape, c.name, first.Shape())
	}
	h, w, totalC = first.Dim(0), first.Dim(1), first.Dim(2)
	for _, x := range xs[1:] {
		if x.Rank() != 3 || x.Dim(0) != h || x.Dim(1) != w {
			return 0, 0, 0, fmt.Errorf("%w: concat %q spatial mismatch %v vs %v", ErrShape, c.name, first.Shape(), x.Shape())
		}
		totalC += x.Dim(2)
	}
	return h, w, totalC, nil
}

// forwardInto interleaves the operands' channel slabs into dst.
func (c *Concat) forwardInto(dst []float32, xs []*tensor.Tensor, pixels, totalC int) {
	for p := 0; p < pixels; p++ {
		off := 0
		for _, x := range xs {
			ci := x.Dim(2)
			copy(dst[p*totalC+off:p*totalC+off+ci], x.Data[p*ci:(p+1)*ci])
			off += ci
		}
	}
}

// Params implements Layer.
func (c *Concat) Params() []Param { return nil }

// Cost implements Layer.
func (c *Concat) Cost(in [][]int) (uint64, error) { return 0, nil }
