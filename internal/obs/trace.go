package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// KV is one numeric event argument.
type KV struct {
	K string
	V uint64
}

// Event is one trace record: an instant (Dur == 0 semantics carried by
// Instant) or a span. Cycle is simulated time — wall clock never appears
// in a trace. Seq is the per-buffer emission index; (Cycle, Node, Seq)
// is the canonical export order.
type Event struct {
	Name    string
	Cat     string
	Node    int32 // mesh node id (Perfetto tid); -1 for buffer-global events
	Cycle   uint64
	Dur     uint64
	Seq     uint32
	Instant bool
	Args    []KV
}

// Buffer collects the events of one unit of work (one layer simulation,
// one NoC run). A buffer is single-writer: the simulation that owns it
// appends in deterministic order, so Seq numbering is reproducible. A
// nil *Buffer is inert: Span/Instant are single-branch no-ops that never
// allocate (call sites should still guard with `if buf != nil` so
// variadic argument slices are not materialized on the disabled path).
type Buffer struct {
	scope   string
	idx     int
	label   string
	limit   int // max events (0 = unlimited); overflow counted in dropped
	dropped uint64
	events  []Event
}

// Span records a [start, start+dur) phase on a node.
func (b *Buffer) Span(name, cat string, node int, start, dur uint64, args ...KV) {
	b.emit(Event{Name: name, Cat: cat, Node: int32(node), Cycle: start, Dur: dur, Args: args})
}

// Instant records a point event on a node.
func (b *Buffer) Instant(name, cat string, node int, cycle uint64, args ...KV) {
	b.emit(Event{Name: name, Cat: cat, Node: int32(node), Cycle: cycle, Instant: true, Args: args})
}

func (b *Buffer) emit(e Event) {
	if b == nil {
		return
	}
	if b.limit > 0 && len(b.events) >= b.limit {
		b.dropped++
		return
	}
	e.Seq = uint32(len(b.events))
	if len(e.Args) == 0 {
		e.Args = nil
	}
	b.events = append(b.events, e)
}

// Len returns the number of recorded events (0 for a nil buffer).
func (b *Buffer) Len() int {
	if b == nil {
		return 0
	}
	return len(b.events)
}

// Dropped returns the events discarded by the buffer limit.
func (b *Buffer) Dropped() uint64 {
	if b == nil {
		return 0
	}
	return b.dropped
}

// Reset discards the recorded events, keeping the backing array (for
// benchmark loops re-driving one buffer).
func (b *Buffer) Reset() {
	if b == nil {
		return
	}
	b.events = b.events[:0]
	b.dropped = 0
}

// sorted returns the buffer's events in canonical (Cycle, Node, Seq)
// order. Spans recorded at completion time (the simulator learns the
// duration only then) are thereby re-keyed to their start cycle, so the
// export order depends only on simulated time and geometry.
func (b *Buffer) sorted() []Event {
	ev := append([]Event(nil), b.events...)
	sort.SliceStable(ev, func(i, j int) bool {
		if ev[i].Cycle != ev[j].Cycle {
			return ev[i].Cycle < ev[j].Cycle
		}
		if ev[i].Node != ev[j].Node {
			return ev[i].Node < ev[j].Node
		}
		return ev[i].Seq < ev[j].Seq
	})
	return ev
}

// bufferKey orders buffers deterministically regardless of the goroutine
// interleaving that created them.
type bufferKey struct {
	scope string
	idx   int
}

// Trace owns the trace buffers of a run. Buffers are keyed by a
// deterministic (scope, index) pair — e.g. (model name, layer index) —
// and sorted by that key at export, so the assigned Perfetto pids and
// the byte output are identical at any worker count. A nil *Trace is
// inert.
type Trace struct {
	mu      sync.Mutex
	limit   int
	buffers map[bufferKey]*Buffer
}

// NewTrace returns an empty tracer.
func NewTrace() *Trace {
	return &Trace{buffers: map[bufferKey]*Buffer{}}
}

// SetBufferLimit caps each subsequently created buffer at n events
// (0 = unlimited); overflow is counted per buffer and reported in the
// export metadata, never silently discarded.
func (t *Trace) SetBufferLimit(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.limit = n
	t.mu.Unlock()
}

// Buffer returns the buffer for (scope, idx), creating it on first use.
// Concurrent calls for distinct keys are safe; the buffer itself is
// single-writer. Nil when the tracer is disabled.
func (t *Trace) Buffer(scope string, idx int, label string) *Buffer {
	if t == nil {
		return nil
	}
	key := bufferKey{scope: scope, idx: idx}
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.buffers[key]
	if b == nil {
		b = &Buffer{scope: scope, idx: idx, label: label, limit: t.limit}
		t.buffers[key] = b
	}
	return b
}

// EventCount returns the total recorded events across all buffers.
func (t *Trace) EventCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, b := range t.buffers {
		n += len(b.events)
	}
	return n
}

// DroppedCount returns the total events discarded by buffer limits.
func (t *Trace) DroppedCount() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var n uint64
	for _, b := range t.buffers {
		n += b.dropped
	}
	return n
}

// Reset discards every buffer (for benchmark loops reusing one tracer).
func (t *Trace) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for k := range t.buffers {
		delete(t.buffers, k)
	}
}

// sortedBuffers returns the buffers in (scope, idx) order with their
// export pid assigned by position.
func (t *Trace) sortedBuffers() []*Buffer {
	keys := make([]bufferKey, 0, len(t.buffers))
	for k := range t.buffers {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].scope != keys[j].scope {
			return keys[i].scope < keys[j].scope
		}
		return keys[i].idx < keys[j].idx
	})
	bufs := make([]*Buffer, len(keys))
	for i, k := range keys {
		bufs[i] = t.buffers[k]
	}
	return bufs
}

// WriteChromeJSON exports the trace in Chrome trace-event format,
// loadable in Perfetto (ui.perfetto.dev) and chrome://tracing. One
// Perfetto process per buffer (named "<scope>/<label>"), tid = mesh node
// id, ts/dur in simulated cycles (displayed as microseconds). Output is
// deterministic: buffers sorted by (scope, idx), events by
// (cycle, node, seq).
func (t *Trace) WriteChromeJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	bw := bufio.NewWriterSize(w, 1<<16)
	bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`)
	first := true
	sep := func() {
		if !first {
			bw.WriteByte(',')
		}
		first = false
	}
	var dropped uint64
	for pid, b := range t.sortedBuffers() {
		dropped += b.dropped
		sep()
		bw.WriteString(`{"name":"process_name","ph":"M","pid":`)
		bw.WriteString(strconv.Itoa(pid))
		bw.WriteString(`,"args":{"name":`)
		writeJSONString(bw, b.scope+"/"+b.label)
		bw.WriteString(`}}`)
		for _, e := range b.sorted() {
			sep()
			bw.WriteString(`{"name":`)
			writeJSONString(bw, e.Name)
			bw.WriteString(`,"cat":`)
			writeJSONString(bw, e.Cat)
			if e.Instant {
				bw.WriteString(`,"ph":"i","s":"t"`)
			} else {
				bw.WriteString(`,"ph":"X","dur":`)
				bw.WriteString(strconv.FormatUint(e.Dur, 10))
			}
			bw.WriteString(`,"ts":`)
			bw.WriteString(strconv.FormatUint(e.Cycle, 10))
			bw.WriteString(`,"pid":`)
			bw.WriteString(strconv.Itoa(pid))
			bw.WriteString(`,"tid":`)
			bw.WriteString(strconv.FormatInt(int64(e.Node), 10))
			if len(e.Args) > 0 {
				bw.WriteString(`,"args":{`)
				for i, kv := range e.Args {
					if i > 0 {
						bw.WriteByte(',')
					}
					writeJSONString(bw, kv.K)
					bw.WriteByte(':')
					bw.WriteString(strconv.FormatUint(kv.V, 10))
				}
				bw.WriteByte('}')
			}
			bw.WriteByte('}')
		}
	}
	bw.WriteString(`],"otherData":{"clock":"sim-cycles","dropped_events":"`)
	bw.WriteString(strconv.FormatUint(dropped, 10))
	bw.WriteString(`"}}`)
	return bw.Flush()
}

// WriteCSV exports a flat timeline: one row per event in the same
// canonical order as the Chrome export.
func (t *Trace) WriteCSV(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString("scope,layer,name,cat,node,cycle,dur,args\n"); err != nil {
		return err
	}
	for _, b := range t.sortedBuffers() {
		for _, e := range b.sorted() {
			args := ""
			for i, kv := range e.Args {
				if i > 0 {
					args += ";"
				}
				args += kv.K + "=" + strconv.FormatUint(kv.V, 10)
			}
			fmt.Fprintf(bw, "%s,%s,%s,%s,%d,%d,%d,%s\n",
				csvField(b.scope), csvField(b.label), csvField(e.Name), csvField(e.Cat),
				e.Node, e.Cycle, e.Dur, args)
		}
	}
	return bw.Flush()
}

// csvField keeps the CSV writer allocation-free for the common
// comma-free identifiers and quotes anything else.
func csvField(s string) string {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c == ',' || c == '"' || c == '\n' || c == '\r' {
			q := `"`
			for j := 0; j < len(s); j++ {
				if s[j] == '"' {
					q += `""`
				} else {
					q += string(s[j])
				}
			}
			return q + `"`
		}
	}
	return s
}

// writeJSONString writes s as a JSON string literal (ASCII-safe
// escaping; trace names are controlled identifiers).
func writeJSONString(bw *bufio.Writer, s string) {
	bw.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			bw.WriteByte('\\')
			bw.WriteByte(c)
		case c < 0x20:
			fmt.Fprintf(bw, `\u%04x`, c)
		default:
			bw.WriteByte(c)
		}
	}
	bw.WriteByte('"')
}
