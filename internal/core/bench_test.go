package core

import (
	"math/rand"
	"testing"
)

func benchStream(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, n)
	for i := range w {
		w[i] = rng.NormFloat64() * 0.01
	}
	return w
}

func BenchmarkSegmentBounds(b *testing.B) {
	w := benchStream(1_000_000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runs := SegmentBounds(w, 0.002)
		if len(runs) == 0 {
			b.Fatal("no runs")
		}
	}
	b.SetBytes(int64(8 * len(w)))
}

func BenchmarkCompress1M(b *testing.B) {
	w := benchStream(1_000_000, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(w, 0.002); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(8 * len(w)))
}

func BenchmarkDecompress1M(b *testing.B) {
	w := benchStream(1_000_000, 3)
	c, err := Compress(w, 0.002)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := c.Decompress()
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != len(w) {
			b.Fatal("length mismatch")
		}
	}
	b.SetBytes(int64(8 * len(w)))
}

func BenchmarkDecompressionUnit(b *testing.B) {
	w := benchStream(100_000, 4)
	c, err := Compress(w, 0.002)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var u DecompressionUnit
		if _, _, err := u.Run(c); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(w)))
}

func BenchmarkCodecMarshal(b *testing.B) {
	w := benchStream(100_000, 5)
	c, err := Compress(w, 0.002)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data := c.Marshal()
		if _, err := Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}
