//go:build !amd64

package tensor

// archKernels returns no vector kernels: only the portable Go kernel is
// available off amd64. (The dispatch machinery still works, so a future
// NEON port only needs to add an arch file like kernels_dispatch_amd64.go.)
func archKernels() []saxpyKernel { return nil }
