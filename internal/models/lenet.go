package models

// LeNet5 builds the classic 5-layer LeNet for 28x28x1 digit images.
//
// Topology (61,706 parameters; Table I reports 62k with dense_1 at ~80%):
//
//	conv_1  5x5,  6 filters, pad 2    ->  28x28x6     156 params
//	maxpool 2x2 s2                    ->  14x14x6
//	conv_2  5x5, 16 filters           ->  10x10x16  2,416 params
//	maxpool 2x2 s2                    ->   5x5x16
//	dense_1 400 -> 120                          48,120 params (selected)
//	dense_2 120 ->  84                          10,164 params
//	dense_3  84 ->  10                             850 params
//
// The network is fully backpropagatable, so it trains for real on the
// synthetic digit dataset; its accuracy experiments use genuine top-1
// accuracy rather than fidelity.
func LeNet5(seed int64) (*Model, error) {
	b := newGraphBuilder(seed)
	b.conv("conv_1", 5, 5, 1, 6, 1, 2)
	b.relu("conv_1_relu")
	b.maxpool("pool_1", 2, 2)
	b.conv("conv_2", 5, 5, 6, 16, 1, 0)
	b.relu("conv_2_relu")
	b.maxpool("pool_2", 2, 2)
	b.flatten("flatten")
	b.dense("dense_1", 400, 120)
	b.relu("dense_1_relu")
	b.dense("dense_2", 120, 84)
	b.relu("dense_2_relu")
	b.dense("dense_3", 84, 10)
	b.softmax("softmax")
	m, err := b.finish(Info{
		Name:          "LeNet-5",
		InputShape:    []int{28, 28, 1},
		SelectedLayer: "dense_1",
		SelectedKind:  "FC",
		PaperParamsK:  62,
		PaperFraction: 0.80,
		Classes:       10,
	})
	if err != nil {
		return nil, err
	}
	// Calibrated against Table II: amplitude 2*3.76 sigma reproduces
	// LeNet's CR curve (1.21 -> 4.0 over delta 0..20%); sigma 0.03 lands
	// the MSE near the paper's 1e-4 order. Real training (internal/train)
	// replaces these weights in the accuracy experiments.
	if err := retouchSelected(m, seed, 0.03, 3.76); err != nil {
		return nil, err
	}
	return m, nil
}
