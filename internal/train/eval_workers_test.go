package train

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/tensor"
)

// TestWorkersVariantsMatchSerial pins the sharded batch evaluation to the
// serial results, bit-for-bit, across worker counts (including workers >
// samples). Integer agreement counts are exact by construction; overlap
// values are reduced serially in index order.
func TestWorkersVariantsMatchSerial(t *testing.T) {
	g := tinyMLP(t)
	samples, err := dataset.Digits(23, 9)
	if err != nil {
		t.Fatal(err)
	}
	imgs, err := dataset.SyntheticImages(11, dataset.DigitSize, dataset.DigitSize, 1, 15)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFidelity(g, imgs, 5)
	if err != nil {
		t.Fatal(err)
	}
	acts := make([]map[string]*tensor.Tensor, len(imgs))
	for i, x := range imgs {
		a, err := g.ForwardAll(x)
		if err != nil {
			t.Fatal(err)
		}
		acts[i] = a
	}

	wantAcc, err := Accuracy(g, samples)
	if err != nil {
		t.Fatal(err)
	}
	wantTop3, err := TopKAccuracy(g, samples, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantScore, err := f.Score(g, imgs)
	if err != nil {
		t.Fatal(err)
	}
	wantOverlap, err := f.Overlap(g, imgs)
	if err != nil {
		t.Fatal(err)
	}
	wantScoreFrom, err := f.ScoreFrom(g, acts, "fc2")
	if err != nil {
		t.Fatal(err)
	}
	wantOverlapFrom, err := f.OverlapFrom(g, acts, "fc2")
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 4, 64} {
		check := func(label string, got float64, err error, want float64) {
			t.Helper()
			if err != nil {
				t.Fatalf("%s(workers=%d): %v", label, workers, err)
			}
			if got != want {
				t.Errorf("%s(workers=%d) = %v, want %v", label, workers, got, want)
			}
		}
		acc, err := AccuracyWorkers(g, samples, workers)
		check("AccuracyWorkers", acc, err, wantAcc)
		top3, err := TopKAccuracyWorkers(g, samples, 3, workers)
		check("TopKAccuracyWorkers", top3, err, wantTop3)
		score, err := f.ScoreWorkers(g, imgs, workers)
		check("ScoreWorkers", score, err, wantScore)
		overlap, err := f.OverlapWorkers(g, imgs, workers)
		check("OverlapWorkers", overlap, err, wantOverlap)
		scoreFrom, err := f.ScoreFromWorkers(g, acts, "fc2", workers)
		check("ScoreFromWorkers", scoreFrom, err, wantScoreFrom)
		overlapFrom, err := f.OverlapFromWorkers(g, acts, "fc2", workers)
		check("OverlapFromWorkers", overlapFrom, err, wantOverlapFrom)
	}

	// Mismatched lengths must error through the workers paths too.
	if _, err := f.ScoreWorkers(g, imgs[:3], 2); err == nil {
		t.Error("ScoreWorkers accepted mismatched probe count")
	}
	if _, err := f.OverlapFromWorkers(g, acts[:3], "fc2", 2); err == nil {
		t.Error("OverlapFromWorkers accepted mismatched activation count")
	}
}

func TestChunkRange(t *testing.T) {
	cases := []struct{ n, chunks, w, lo, hi int }{
		{10, 3, 0, 0, 4}, {10, 3, 1, 4, 8}, {10, 3, 2, 8, 10},
		{4, 4, 3, 3, 4}, {3, 4, 3, 3, 3}, {1, 1, 0, 0, 1},
	}
	for _, c := range cases {
		lo, hi := chunkRange(c.n, c.chunks, c.w)
		if lo != c.lo || hi != c.hi {
			t.Errorf("chunkRange(%d,%d,%d) = [%d,%d), want [%d,%d)", c.n, c.chunks, c.w, lo, hi, c.lo, c.hi)
		}
	}
	// Every item covered exactly once for a spread of shapes.
	for n := 1; n <= 17; n++ {
		for chunks := 1; chunks <= 6; chunks++ {
			covered := make([]int, n)
			for w := 0; w < chunks; w++ {
				lo, hi := chunkRange(n, chunks, w)
				for i := lo; i < hi; i++ {
					covered[i]++
				}
			}
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("n=%d chunks=%d: item %d covered %d times", n, chunks, i, c)
				}
			}
		}
	}
}
