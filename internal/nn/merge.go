package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Add sums two or more equal-shape inputs elementwise — the ResNet
// residual connection.
type Add struct {
	name string
}

// NewAdd creates an elementwise addition merge node.
func NewAdd(name string) *Add { return &Add{name: name} }

// Name implements Layer.
func (a *Add) Name() string { return a.name }

// Kind implements Layer.
func (a *Add) Kind() string { return "MERGE" }

// OutShape implements Layer.
func (a *Add) OutShape(in [][]int) ([]int, error) {
	if len(in) < 2 {
		return nil, fmt.Errorf("%w: add %q wants >= 2 inputs, got %d", ErrArity, a.name, len(in))
	}
	for _, s := range in[1:] {
		if len(s) != len(in[0]) {
			return nil, fmt.Errorf("%w: add %q rank mismatch %v vs %v", ErrShape, a.name, in[0], s)
		}
		for i := range s {
			if s[i] != in[0][i] {
				return nil, fmt.Errorf("%w: add %q shape mismatch %v vs %v", ErrShape, a.name, in[0], s)
			}
		}
	}
	return in[0], nil
}

// Forward implements Layer.
func (a *Add) Forward(xs []*tensor.Tensor) (*tensor.Tensor, error) {
	if len(xs) < 2 {
		return nil, fmt.Errorf("%w: add %q wants >= 2 inputs, got %d", ErrArity, a.name, len(xs))
	}
	out := xs[0].Clone()
	for _, x := range xs[1:] {
		if !tensor.SameShape(out, x) {
			return nil, fmt.Errorf("%w: add %q operands %v vs %v", ErrShape, a.name, out.Shape(), x.Shape())
		}
		for i, v := range x.Data {
			out.Data[i] += v
		}
	}
	return out, nil
}

// Params implements Layer.
func (a *Add) Params() []Param { return nil }

// Cost implements Layer.
func (a *Add) Cost(in [][]int) (uint64, error) { return 0, nil }

// Concat concatenates [H, W, C_i] inputs along the channel dimension —
// the Inception tower join.
type Concat struct {
	name string
}

// NewConcat creates a channel-concatenation merge node.
func NewConcat(name string) *Concat { return &Concat{name: name} }

// Name implements Layer.
func (c *Concat) Name() string { return c.name }

// Kind implements Layer.
func (c *Concat) Kind() string { return "MERGE" }

// OutShape implements Layer.
func (c *Concat) OutShape(in [][]int) ([]int, error) {
	if len(in) < 2 {
		return nil, fmt.Errorf("%w: concat %q wants >= 2 inputs, got %d", ErrArity, c.name, len(in))
	}
	first := in[0]
	if len(first) != 3 {
		return nil, fmt.Errorf("%w: concat %q wants [H W C] inputs, got %v", ErrShape, c.name, first)
	}
	totalC := first[2]
	for _, s := range in[1:] {
		if len(s) != 3 || s[0] != first[0] || s[1] != first[1] {
			return nil, fmt.Errorf("%w: concat %q spatial mismatch %v vs %v", ErrShape, c.name, first, s)
		}
		totalC += s[2]
	}
	return []int{first[0], first[1], totalC}, nil
}

// Forward implements Layer.
func (c *Concat) Forward(xs []*tensor.Tensor) (*tensor.Tensor, error) {
	shapes := make([][]int, len(xs))
	for i, x := range xs {
		shapes[i] = x.Shape()
	}
	outShape, err := c.OutShape(shapes)
	if err != nil {
		return nil, err
	}
	h, w, totalC := outShape[0], outShape[1], outShape[2]
	out := tensor.MustNew(h, w, totalC)
	for p := 0; p < h*w; p++ {
		off := 0
		for _, x := range xs {
			ci := x.Dim(2)
			copy(out.Data[p*totalC+off:p*totalC+off+ci], x.Data[p*ci:(p+1)*ci])
			off += ci
		}
	}
	return out, nil
}

// Params implements Layer.
func (c *Concat) Params() []Param { return nil }

// Cost implements Layer.
func (c *Concat) Cost(in [][]int) (uint64, error) { return 0, nil }
