// Package faults is the deterministic fault-injection engine of the
// simulation stack. It models the failure modes data meets on its way
// from DRAM to a PE datapath and between accelerator nodes:
//
//   - DRAM word bit-flips: each 32-bit word of a stored stream suffers a
//     single-bit upset with a configurable probability.
//   - Transient NoC link faults: each flit crossing an inter-router link
//     is corrupted with a configurable probability (detected by the
//     per-packet checksum and repaired by retransmission; see noc).
//   - Stuck-at dead links: a set of unidirectional mesh links that never
//     transfer a flit again (avoided at route time; see noc).
//   - Message-level RPC faults: each message crossing the cluster fabric
//     may be dropped, delayed, duplicated, or reordered with configurable
//     probabilities (see internal/cluster).
//
// Every decision is a pure function of the model's Seed and the identity
// of the event (stream id and word index, packet id, flit sequence,
// retransmission attempt and link, or message transmission id), never of
// evaluation order. Two runs with the same (seed, rate) therefore make
// byte-identical fault decisions at any worker count, and a rate of zero
// is exactly the fault-free run.
package faults

import (
	"fmt"
	"math"
)

// Link is one unidirectional mesh link, identified by the node ids of its
// endpoints (From transmits, To receives).
type Link struct {
	From, To int
}

// String implements fmt.Stringer.
func (l Link) String() string { return fmt.Sprintf("%d->%d", l.From, l.To) }

// Model describes a fault environment. The zero value injects nothing
// and is the configuration every fault-free experiment runs under.
type Model struct {
	// Seed drives every pseudo-random decision. Runs with equal seeds
	// and rates are byte-identical.
	Seed int64
	// DRAMWordFlipRate is the per-32-bit-word probability that a stored
	// word suffers a single-bit upset when read from main memory.
	DRAMWordFlipRate float64
	// LinkFlitRate is the per-link-traversal probability that a flit is
	// corrupted in transit.
	LinkFlitRate float64
	// DeadLinks lists unidirectional links that are permanently stuck.
	DeadLinks []Link

	// MsgDropRate is the per-transmission probability that a cluster
	// fabric message vanishes in transit. Retransmissions are distinct
	// transmissions with their own ids and therefore their own fates.
	MsgDropRate float64
	// MsgDelayRate is the per-transmission probability that a message is
	// held for extra fabric time (1..MsgDelayMax ticks, deterministically
	// chosen) on top of the nominal link latency.
	MsgDelayRate float64
	// MsgDelayMax bounds the extra delay of a delayed message, in fabric
	// ticks. Zero selects the default of 8x a typical link latency; see
	// MsgDelay.
	MsgDelayMax uint64
	// MsgDupRate is the per-transmission probability that a message is
	// delivered twice (the duplicate trails the original).
	MsgDupRate float64
	// MsgReorderRate is the per-transmission probability that a message
	// is deliberately delivered out of FIFO order with respect to later
	// sends on the same link (the fabric realizes this as a bounded
	// deterministic extra delay).
	MsgReorderRate float64
}

// DefaultMsgDelayMax is the extra-delay bound used when MsgDelayMax is
// left zero.
const DefaultMsgDelayMax = 400

// Enabled reports whether the model can inject any fault at all.
func (m Model) Enabled() bool {
	return m.DRAMWordFlipRate > 0 || m.LinkFlitRate > 0 || len(m.DeadLinks) > 0 ||
		m.MsgDropRate > 0 || m.MsgDelayRate > 0 || m.MsgDupRate > 0 || m.MsgReorderRate > 0
}

// Validate checks the model's parameters.
func (m Model) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"DRAM word flip rate", m.DRAMWordFlipRate},
		{"link flit fault rate", m.LinkFlitRate},
		{"message drop rate", m.MsgDropRate},
		{"message delay rate", m.MsgDelayRate},
		{"message duplication rate", m.MsgDupRate},
		{"message reorder rate", m.MsgReorderRate},
	} {
		if math.IsNaN(r.v) || math.IsInf(r.v, 0) || r.v < 0 || r.v > 1 {
			return fmt.Errorf("faults: %s %v outside [0,1]", r.name, r.v)
		}
	}
	for _, l := range m.DeadLinks {
		if l.From < 0 || l.To < 0 || l.From == l.To {
			return fmt.Errorf("faults: bad dead link %s", l)
		}
	}
	return nil
}

// DeadSet returns the dead links as a lookup set (nil when there are
// none, so callers can test with a single nil check).
func (m Model) DeadSet() map[Link]bool {
	if len(m.DeadLinks) == 0 {
		return nil
	}
	s := make(map[Link]bool, len(m.DeadLinks))
	for _, l := range m.DeadLinks {
		s[l] = true
	}
	return s
}

// Decision domains keep the event keyspaces disjoint so a link decision
// can never alias a DRAM decision with the same numeric keys.
const (
	domainLink    uint64 = 0x6c696e6b // "link"
	domainDRAM    uint64 = 0x6472616d // "dram"
	domainMsgDrop uint64 = 0x6d736764 // "msgd"
	domainMsgDly  uint64 = 0x6d736c79 // "msly"
	domainMsgDup  uint64 = 0x6d736475 // "msdu"
	domainMsgOrd  uint64 = 0x6d736f72 // "msor"
)

// mix is the splitmix64 finalizer: a high-quality 64-bit avalanche.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash folds the seed, a domain tag and three event keys into one
// 64-bit value. Fixed arity keeps it allocation-free on the NoC's
// per-flit hot path.
func (m Model) hash(domain, a, b, c uint64) uint64 {
	h := mix(uint64(m.Seed) ^ domain)
	h = mix(h ^ a)
	h = mix(h ^ b)
	h = mix(h ^ c)
	return h
}

// unit maps a hash to a uniform float64 in [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// LinkCorrupt decides whether the flit (packetID, seq) of retransmission
// attempt `attempt` is corrupted while leaving router `from`.
func (m Model) LinkCorrupt(packetID uint64, seq, attempt, from int) bool {
	if m.LinkFlitRate <= 0 {
		return false
	}
	key := uint64(seq)<<24 | uint64(uint8(attempt))<<16 | uint64(uint16(from))
	return unit(m.hash(domainLink, packetID, key, 0)) < m.LinkFlitRate
}

// FlipWord32 subjects one 32-bit word — word number idx of stream
// streamID — to the DRAM upset model. It returns the (possibly) flipped
// word and whether a flip fired; when it fires, exactly one
// deterministically chosen bit is inverted.
func (m Model) FlipWord32(word uint32, streamID, idx uint64) (uint32, bool) {
	if m.DRAMWordFlipRate <= 0 {
		return word, false
	}
	h := m.hash(domainDRAM, streamID, idx, 0)
	if unit(h) >= m.DRAMWordFlipRate {
		return word, false
	}
	bit := mix(h) % 32
	return word ^ 1<<bit, true
}

// FlipFloat32Stream applies the DRAM upset model in place to a weight
// stream stored as 32-bit floats (the hardware storage width), returning
// the number of words hit. The float64 slice is the simulator-side view;
// each value is punned to its float32 DRAM word, flipped, and widened
// back — exactly the corruption a raw weight fetch would see.
func (m Model) FlipFloat32Stream(w []float64, streamID uint64) int {
	if m.DRAMWordFlipRate <= 0 {
		return 0
	}
	flips := 0
	for i, v := range w {
		word := math.Float32bits(float32(v))
		word, hit := m.FlipWord32(word, streamID, uint64(i))
		if hit {
			w[i] = float64(math.Float32frombits(word))
			flips++
		}
	}
	return flips
}

// Message-level fault decisions. Every decision is keyed by the
// transmission identity alone — a fabric-unique msgID plus the (src,
// dst) endpoints — so it is independent of evaluation order and worker
// count: the fabric can ask in any order, from any goroutine, and two
// runs with equal (seed, rates) produce byte-identical schedules. A
// retransmission is a fresh transmission with a fresh msgID, so its
// fate is decided independently, exactly like NoC retransmit attempts.

// msgKey folds the endpoints into one decision key.
func msgKey(src, dst int) uint64 {
	return uint64(uint32(src))<<32 | uint64(uint32(dst))
}

// MsgDrop decides whether transmission msgID from src to dst vanishes.
func (m Model) MsgDrop(msgID uint64, src, dst int) bool {
	if m.MsgDropRate <= 0 {
		return false
	}
	return unit(m.hash(domainMsgDrop, msgID, msgKey(src, dst), 0)) < m.MsgDropRate
}

// MsgDelay returns the extra fabric ticks transmission msgID is held
// beyond the nominal link latency: zero when the delay fault does not
// fire, otherwise a deterministic value in [1, MsgDelayMax].
func (m Model) MsgDelay(msgID uint64, src, dst int) uint64 {
	if m.MsgDelayRate <= 0 {
		return 0
	}
	h := m.hash(domainMsgDly, msgID, msgKey(src, dst), 0)
	if unit(h) >= m.MsgDelayRate {
		return 0
	}
	max := m.MsgDelayMax
	if max == 0 {
		max = DefaultMsgDelayMax
	}
	return 1 + mix(h)%max
}

// MsgDuplicate decides whether transmission msgID is delivered twice.
func (m Model) MsgDuplicate(msgID uint64, src, dst int) bool {
	if m.MsgDupRate <= 0 {
		return false
	}
	return unit(m.hash(domainMsgDup, msgID, msgKey(src, dst), 0)) < m.MsgDupRate
}

// MsgReorder decides whether transmission msgID is deliberately
// delivered out of FIFO order relative to later sends on its link. The
// fabric realizes a reorder as a bounded deterministic extra delay.
func (m Model) MsgReorder(msgID uint64, src, dst int) bool {
	if m.MsgReorderRate <= 0 {
		return false
	}
	return unit(m.hash(domainMsgOrd, msgID, msgKey(src, dst), 0)) < m.MsgReorderRate
}

// StreamID derives a stable stream identifier from a name, for keying
// FlipWord32 decisions independently of iteration order (FNV-1a).
func StreamID(name string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime
	}
	return h
}
