package core

import "testing"

func TestDecodeModelTileCycles(t *testing.T) {
	m := DecodeModel{CyclesPerStreamWord: 1, WeightsPerLaneCycle: 1}
	if got := m.TileCycles(0, 0, 64); got != 0 {
		t.Fatalf("empty tile: got %d cycles, want 0", got)
	}
	// 128 bits = 2 words front end; 100 weights over 64 lanes = 2 cycles
	// back end; max is 2.
	if got := m.TileCycles(128, 100, 64); got != 2 {
		t.Fatalf("balanced tile: got %d cycles, want 2", got)
	}
	// Front-end bound: a serial entropy decoder at 8 cy/word dominates.
	serial := DecodeModel{CyclesPerStreamWord: 8, WeightsPerLaneCycle: 1}
	if got := serial.TileCycles(640, 10, 64); got != 80 {
		t.Fatalf("front-end bound: got %d cycles, want 80", got)
	}
	// Back-end bound: many weights from a tiny stream.
	if got := m.TileCycles(64, 1000, 64); got != 16 {
		t.Fatalf("back-end bound: got %d cycles, want 16", got)
	}
	// Partial stream words round up; non-empty tiles cost at least 1.
	if got := m.TileCycles(1, 0, 64); got != 1 {
		t.Fatalf("partial word: got %d cycles, want 1", got)
	}
	// Lane clamp: lanes < 1 behaves as one lane.
	if got := m.TileCycles(0, 5, 0); got != 5 {
		t.Fatalf("lane clamp: got %d cycles, want 5", got)
	}
}

func TestDecodeModelTileEnergy(t *testing.T) {
	m := DecodeModel{CyclesPerStreamWord: 1, WeightsPerLaneCycle: 1, StreamBitPJ: 0.5, WeightPJ: 2}
	if got := m.TileEnergyPJ(100, 10); got != 70 {
		t.Fatalf("tile energy: got %v pJ, want 70", got)
	}
}

func TestDecodeModelRegistry(t *testing.T) {
	// The segment codec registers in init; unknown names fall back.
	seg := LookupDecodeModel(SegmentCodecName)
	if seg == DefaultDecodeModel {
		t.Fatalf("segment decode model not registered (got the default)")
	}
	if got := LookupDecodeModel("no-such-codec"); got != DefaultDecodeModel {
		t.Fatalf("unknown codec: got %+v, want DefaultDecodeModel", got)
	}
	if got := LookupDecodeModel(""); got != DefaultDecodeModel {
		t.Fatalf("empty codec: got %+v, want DefaultDecodeModel", got)
	}
	if err := RegisterDecodeModel("", DefaultDecodeModel); err == nil {
		t.Fatalf("registering an empty name should fail")
	}
	if err := RegisterDecodeModel(SegmentCodecName, DefaultDecodeModel); err == nil {
		t.Fatalf("duplicate registration should fail")
	}
	if err := RegisterDecodeModel("bad", DecodeModel{CyclesPerStreamWord: 0, WeightsPerLaneCycle: 1}); err == nil {
		t.Fatalf("invalid model should fail validation")
	}
	names := DecodeModelNames()
	found := false
	for _, n := range names {
		if n == SegmentCodecName {
			found = true
		}
	}
	if !found {
		t.Fatalf("DecodeModelNames %v missing %q", names, SegmentCodecName)
	}
}

// BenchmarkDecodeModelTileCycles measures the per-tile decode costing
// across every registered model — this runs once per (layer, round) in
// overlap mode, so it must stay trivially cheap.
func BenchmarkDecodeModelTileCycles(b *testing.B) {
	names := DecodeModelNames()
	if len(names) == 0 {
		b.Fatal("no decode models registered")
	}
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dm := LookupDecodeModel(names[i%len(names)])
		sink += dm.TileCycles(58976, 7372, 64)
	}
	_ = sink
}

// BenchmarkDecodeModelTileEnergy is the energy-side companion.
func BenchmarkDecodeModelTileEnergy(b *testing.B) {
	dm := LookupDecodeModel(SegmentCodecName)
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += dm.TileEnergyPJ(58976, 7372)
	}
	_ = sink
}
