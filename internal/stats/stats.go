// Package stats provides small numerical helpers shared across the
// repository: descriptive statistics, least-squares linear regression,
// histograms, and normalization utilities.
//
// The linear regression here is the mathematical core of the compression
// technique in internal/core: each weakly monotonic sub-succession of
// weights is replaced by the least-squares line fitted to its points.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one sample.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs. It returns 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (dividing by n, not n-1).
// It returns 0 for inputs with fewer than one sample.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// MinMax returns the minimum and maximum of xs.
// It returns an error for empty input.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// Amplitude returns max(xs) - min(xs), the dynamic range of the data set.
// The paper expresses the tolerance threshold delta as a percentage of this
// amplitude. It returns 0 for empty input.
func Amplitude(xs []float64) float64 {
	min, max, err := MinMax(xs)
	if err != nil {
		return 0
	}
	return max - min
}

// MSE returns the mean squared error between two equally sized slices.
// It returns an error if the lengths differ or the input is empty.
func MSE(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("stats: MSE length mismatch")
	}
	if len(a) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s / float64(len(a)), nil
}

// MaxAbsErr returns the maximum absolute elementwise difference between a
// and b. It returns an error if the lengths differ.
func MaxAbsErr(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("stats: MaxAbsErr length mismatch")
	}
	var m float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m, nil
}

// Line is a straight line y = M*x + Q.
type Line struct {
	M float64 // slope
	Q float64 // intercept
}

// At evaluates the line at x.
func (l Line) At(x float64) float64 { return l.M*x + l.Q }

// FitLine computes the least-squares line through the points (i, ys[i]) for
// i = 0..len(ys)-1, i.e. regression against the implicit integer abscissa.
// This matches the paper's formulation where each monotonic sub-succession
// M_i is fitted on points (j, w_{f_i+j}), j = 0,1,...
//
// For a single point the line is horizontal through that point. For empty
// input an error is returned.
func FitLine(ys []float64) (Line, error) {
	n := len(ys)
	switch n {
	case 0:
		return Line{}, ErrEmpty
	case 1:
		return Line{M: 0, Q: ys[0]}, nil
	case 2:
		return Line{M: ys[1] - ys[0], Q: ys[0]}, nil
	}
	// For x = 0..n-1: sum(x) = n(n-1)/2, sum(x^2) = (n-1)n(2n-1)/6.
	fn := float64(n)
	sumX := fn * (fn - 1) / 2
	sumXX := (fn - 1) * fn * (2*fn - 1) / 6
	var sumY, sumXY float64
	for i, y := range ys {
		sumY += y
		sumXY += float64(i) * y
	}
	den := fn*sumXX - sumX*sumX
	if den == 0 {
		return Line{M: 0, Q: Mean(ys)}, nil
	}
	m := (fn*sumXY - sumX*sumY) / den
	q := (sumY - m*sumX) / fn
	return Line{M: m, Q: q}, nil
}

// FitLineXY computes the least-squares line through arbitrary (x, y) points.
// It returns an error if the slices differ in length or are empty.
func FitLineXY(xs, ys []float64) (Line, error) {
	if len(xs) != len(ys) {
		return Line{}, errors.New("stats: FitLineXY length mismatch")
	}
	n := len(xs)
	if n == 0 {
		return Line{}, ErrEmpty
	}
	if n == 1 {
		return Line{M: 0, Q: ys[0]}, nil
	}
	var sumX, sumY, sumXX, sumXY float64
	for i := range xs {
		sumX += xs[i]
		sumY += ys[i]
		sumXX += xs[i] * xs[i]
		sumXY += xs[i] * ys[i]
	}
	fn := float64(n)
	den := fn*sumXX - sumX*sumX
	if den == 0 {
		return Line{M: 0, Q: Mean(ys)}, nil
	}
	m := (fn*sumXY - sumX*sumY) / den
	q := (sumY - m*sumX) / fn
	return Line{M: m, Q: q}, nil
}

// Histogram counts xs into nbins equal-width bins spanning [min, max].
// Values exactly equal to max land in the last bin. It returns an error for
// empty input or non-positive nbins.
func Histogram(xs []float64, nbins int) ([]int, error) {
	if nbins <= 0 {
		return nil, errors.New("stats: non-positive bin count")
	}
	min, max, err := MinMax(xs)
	if err != nil {
		return nil, err
	}
	bins := make([]int, nbins)
	width := (max - min) / float64(nbins)
	if width == 0 {
		bins[0] = len(xs)
		return bins, nil
	}
	for _, x := range xs {
		i := int((x - min) / width)
		if i >= nbins {
			i = nbins - 1
		}
		if i < 0 {
			i = 0
		}
		bins[i]++
	}
	return bins, nil
}

// Normalize returns xs scaled so that the maximum absolute value is 1.
// A zero slice is returned unchanged (copied).
func Normalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	var m float64
	for _, x := range xs {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	if m == 0 {
		copy(out, xs)
		return out
	}
	for i, x := range xs {
		out[i] = x / m
	}
	return out
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns an error for empty input
// or p outside [0, 100].
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// ArgMax returns the index of the maximum element, or -1 for empty input.
// Ties resolve to the lowest index.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// TopK returns the indices of the k largest elements in descending order of
// value. If k exceeds len(xs), all indices are returned. Ties resolve to the
// lower index first.
func TopK(xs []float64, k int) []int {
	if k > len(xs) {
		k = len(xs)
	}
	if k <= 0 {
		return nil
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] })
	return idx[:k]
}
