package parallel

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestMapPanicContained: a panicking item fails the run with a typed
// *PanicError instead of crashing the process, at every worker count.
func TestMapPanicContained(t *testing.T) {
	for _, workers := range []int{1, 4, 64} {
		_, err := Map(context.Background(), workers, 100, func(_ context.Context, i int) (int, error) {
			if i == 37 {
				panic("boom at 37")
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: panic not reported", workers)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: error %v is not a *PanicError", workers, err)
		}
		if pe.Index != 37 || pe.Value != "boom at 37" {
			t.Errorf("workers=%d: wrong panic captured: %+v", workers, pe)
		}
		if want := "parallel: item 37 panicked: boom at 37"; pe.Error() != want {
			t.Errorf("workers=%d: message %q, want %q", workers, pe.Error(), want)
		}
		if !strings.Contains(pe.Stack, "panic_test.go") {
			t.Errorf("workers=%d: stack trace missing call site", workers)
		}
	}
}

// TestMapPanicDeterministicError: with one worker, items run in index
// order, so the lowest-indexed panic is always the one reported.
func TestMapPanicDeterministicError(t *testing.T) {
	for run := 0; run < 10; run++ {
		_, err := Map(context.Background(), 1, 50, func(_ context.Context, i int) (int, error) {
			if i%7 == 3 {
				panic(i)
			}
			return i, nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("run %d: %v is not a *PanicError", run, err)
		}
		if pe.Index != 3 {
			t.Fatalf("run %d: reported index %d, want 3", run, pe.Index)
		}
	}
}

// TestMapPanicPreferredOverCancellation: items interrupted by the
// panic-induced cancellation must not mask the panic itself.
func TestMapPanicPreferredOverCancellation(t *testing.T) {
	for _, workers := range []int{4, 64} {
		_, err := Map(context.Background(), workers, 200, func(ctx context.Context, i int) (int, error) {
			if i == 0 {
				time.Sleep(5 * time.Millisecond)
				panic("late panic")
			}
			<-ctx.Done()
			return 0, ctx.Err()
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: panic masked by %v", workers, err)
		}
	}
}

// TestMapContextDeadline: an expiring deadline aborts the sweep with
// context.DeadlineExceeded at every worker count, and items observe the
// cancellation through their ctx.
func TestMapContextDeadline(t *testing.T) {
	for _, workers := range []int{1, 4, 64} {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		_, err := Map(ctx, workers, 10_000, func(ctx context.Context, i int) (int, error) {
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(time.Millisecond):
				return i, nil
			}
		})
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("workers=%d: error %v, want DeadlineExceeded", workers, err)
		}
	}
}

// TestForEachPanicContained: the recovery also protects ForEach.
func TestForEachPanicContained(t *testing.T) {
	err := ForEach(context.Background(), 4, 10, func(_ context.Context, i int) error {
		if i == 2 {
			panic("foreach boom")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not a *PanicError", err)
	}
	if pe.Index != 2 {
		t.Errorf("index %d, want 2", pe.Index)
	}
}
