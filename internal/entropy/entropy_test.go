package entropy

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestShannonEdgeCases(t *testing.T) {
	if got := Shannon(nil); got != 0 {
		t.Errorf("Shannon(nil) = %v, want 0", got)
	}
	if got := Shannon([]byte{7, 7, 7, 7}); got != 0 {
		t.Errorf("Shannon(constant) = %v, want 0", got)
	}
	// Two equiprobable symbols: exactly 1 bit.
	if got := Shannon([]byte{0, 1, 0, 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("Shannon(2 symbols) = %v, want 1", got)
	}
	// All 256 symbols once: exactly 8 bits.
	all := make([]byte, 256)
	for i := range all {
		all[i] = byte(i)
	}
	if got := Shannon(all); math.Abs(got-8) > 1e-12 {
		t.Errorf("Shannon(uniform) = %v, want 8", got)
	}
}

func TestShannonBounds(t *testing.T) {
	f := func(data []byte) bool {
		h := Shannon(data)
		return h >= 0 && h <= 8+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestShannonWords(t *testing.T) {
	if got := ShannonWords(nil); got != 0 {
		t.Errorf("ShannonWords(nil) = %v", got)
	}
	if got := ShannonWords([]byte{1}); got != 0 {
		t.Errorf("ShannonWords(1 byte) = %v", got)
	}
	// Two distinct equiprobable words: 1 bit.
	data := []byte{0, 0, 1, 0, 0, 0, 1, 0}
	if got := ShannonWords(data); math.Abs(got-1) > 1e-12 {
		t.Errorf("ShannonWords = %v, want 1", got)
	}
}

func TestShannonWordsBounds(t *testing.T) {
	f := func(data []byte) bool {
		h := ShannonWords(data)
		return h >= 0 && h <= 16+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFloat32Bytes(t *testing.T) {
	b := Float32Bytes([]float64{0})
	if len(b) != 4 || !bytes.Equal(b, []byte{0, 0, 0, 0}) {
		t.Errorf("Float32Bytes(0) = %v", b)
	}
	b = Float32Bytes([]float64{1.0}) // 0x3f800000 little-endian
	if !bytes.Equal(b, []byte{0, 0, 0x80, 0x3f}) {
		t.Errorf("Float32Bytes(1) = %v", b)
	}
	if got := Float32Bytes(nil); len(got) != 0 {
		t.Errorf("Float32Bytes(nil) len = %d", len(got))
	}
}

func TestRandomBytesNearMaxEntropy(t *testing.T) {
	data := RandomBytes(1<<16, 1)
	h := Shannon(data)
	if h < 7.9 {
		t.Errorf("random entropy = %v, want > 7.9", h)
	}
}

func TestRandomBytesDeterministic(t *testing.T) {
	a := RandomBytes(1024, 7)
	b := RandomBytes(1024, 7)
	if !bytes.Equal(a, b) {
		t.Error("RandomBytes not deterministic for same seed")
	}
	c := RandomBytes(1024, 8)
	if bytes.Equal(a, c) {
		t.Error("RandomBytes identical across different seeds")
	}
}

func TestSyntheticTextEntropyBand(t *testing.T) {
	txt := SyntheticText(1<<16, 3)
	if len(txt) != 1<<16 {
		t.Fatalf("text length = %d", len(txt))
	}
	h := Shannon(txt)
	// Natural-language-like text sits well below random: expect ~3.5-5 bits.
	if h < 2.5 || h > 6 {
		t.Errorf("text entropy = %v, want in [2.5, 6]", h)
	}
	// And strictly below high-entropy random data.
	if hr := Shannon(RandomBytes(1<<16, 3)); h >= hr {
		t.Errorf("text entropy %v not below random %v", h, hr)
	}
}

func TestSyntheticTextDeterministic(t *testing.T) {
	a := SyntheticText(500, 11)
	b := SyntheticText(500, 11)
	if !bytes.Equal(a, b) {
		t.Error("SyntheticText not deterministic")
	}
}

func TestWeightStreamEntropyIsHigh(t *testing.T) {
	// Gaussian float32 weights serialize to a high-entropy byte stream —
	// the core claim behind Fig. 3. Mantissa bytes are near-uniform.
	ws := make([]float64, 1<<14)
	rng := newTestRNG(5)
	for i := range ws {
		ws[i] = rng.NormFloat64() * 0.05
	}
	h := Shannon(Float32Bytes(ws))
	if h < 6.5 {
		t.Errorf("weight stream entropy = %v, want > 6.5 (close to random)", h)
	}
}
