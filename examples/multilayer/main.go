// multilayer demonstrates the paper's future-work extension implemented
// in internal/planner: instead of compressing only the single selected
// layer (Table I's policy), a greedy search chooses a set of layers and a
// per-layer tolerance threshold that maximize the whole-model compression
// ratio under an accuracy budget — all without retraining. With -codecs
// the search escalates over the whole codec arena (segment, Huffman,
// RLE, bit-plane, quant+Huffman) and may assign a different codec to
// every layer.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/codecs"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/planner"
	"repro/internal/train"
)

func main() {
	budget := flag.Float64("budget", 0.05, "allowed top-1 accuracy drop")
	mixed := flag.Bool("codecs", false, "search the full codec arena instead of the segment codec alone")
	flag.Parse()

	const seed = 21
	m, err := models.LeNet5(seed)
	if err != nil {
		log.Fatal(err)
	}
	samples, err := dataset.Digits(2000, seed)
	if err != nil {
		log.Fatal(err)
	}
	trainSet, testSet, err := dataset.Split(samples, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := train.NewSGD(0.05, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	trainer, err := train.NewTrainer(m.Graph, opt, 16)
	if err != nil {
		log.Fatal(err)
	}
	trainer.LRDecay = 0.85
	fmt.Println("training LeNet-5...")
	if _, err := trainer.Fit(trainSet, 10); err != nil {
		log.Fatal(err)
	}
	accuracy := func() (float64, error) { return train.Accuracy(m.Graph, testSet) }

	// Reference: the paper's single-layer policy at delta 10%.
	orig, err := m.SelectedWeights()
	if err != nil {
		log.Fatal(err)
	}
	c, err := core.CompressPct(orig, 10)
	if err != nil {
		log.Fatal(err)
	}
	approx, err := c.Decompress()
	if err != nil {
		log.Fatal(err)
	}
	if err := m.SetSelectedWeights(approx); err != nil {
		log.Fatal(err)
	}
	singleAcc, err := accuracy()
	if err != nil {
		log.Fatal(err)
	}
	singleWCR := core.WeightedCR(c.CompressionRatio(core.DefaultStorage), len(orig), m.TotalParams())
	if err := m.SetSelectedWeights(orig); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsingle-layer policy (dense_1 @ 10%%): WCR %.2f, accuracy %.4f\n", singleWCR, singleAcc)

	// Multi-layer plan under the accuracy budget.
	opts := planner.DefaultOptions()
	opts.MaxAccuracyDrop = *budget
	if *mixed {
		opts.Codecs = codecs.All()
	}
	plan, err := planner.Greedy(m, accuracy, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmulti-layer plan (budget %.1f%% drop, %d evaluations):\n", 100**budget, plan.Evals)
	fmt.Printf("%-12s %-10s %8s %8s %10s\n", "layer", "codec", "level", "CR", "params")
	for _, a := range plan.Assignments {
		fmt.Printf("%-12s %-10s %8g %8.2f %10d\n", a.Layer, a.Codec, a.Level, a.CR, a.Params)
	}
	fmt.Printf("\nwhole-model WCR: %.2f (single-layer: %.2f)\n", plan.WeightedCR, singleWCR)
	fmt.Printf("accuracy: %.4f (original %.4f, budget floor %.4f)\n",
		plan.Accuracy, plan.BaseAccuracy, plan.BaseAccuracy-*budget)
}
