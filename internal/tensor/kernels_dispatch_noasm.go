//go:build !amd64 && !arm64

package tensor

// archKernels returns no vector kernels: only the portable Go kernel is
// available off amd64 and arm64. (The dispatch machinery still works, so
// porting to another architecture only needs an arch file like
// kernels_dispatch_amd64.go or kernels_dispatch_arm64.go.)
func archKernels() []saxpyKernel { return nil }
