package noc

import (
	"reflect"
	"testing"

	"repro/internal/faults"
)

// vcConfig is a configuration exercising multiple VCs and transient
// faults, so equivalence tests cover the retransmission path too.
func vcConfig() Config {
	cfg := DefaultConfig()
	cfg.VirtualChannels = 2
	cfg.Faults = faults.Model{Seed: 7, LinkFlitRate: 0.01}
	return cfg
}

// burst injects a deterministic traffic pattern.
func burst(t testing.TB, nw *Network, round int) {
	t.Helper()
	for src := 0; src < nw.Nodes(); src += 3 {
		dst := (src + 5 + round) % nw.Nodes()
		if dst == src {
			dst = (src + 1) % nw.Nodes()
		}
		if _, err := nw.SendMessage(src, dst, 4+round%7, nil); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAdvanceIdleEquivalence drives two identical networks through the
// same bursts separated by idle gaps: one crosses the gaps with
// AdvanceIdle, the other steps through them cycle by cycle. Stats,
// per-router heatmaps, and the full delivery streams must be identical.
func TestAdvanceIdleEquivalence(t *testing.T) {
	run := func(fastForward bool) (Stats, []uint64, []Delivery) {
		nw, err := New(vcConfig())
		if err != nil {
			t.Fatal(err)
		}
		var deliveries []Delivery
		nw.SetSink(func(d Delivery) { deliveries = append(deliveries, d) })
		for round := 0; round < 4; round++ {
			burst(t, nw, round)
			if _, ok := nw.RunUntilIdle(100_000); !ok {
				t.Fatal("did not drain")
			}
			// Idle gap between bursts: the workload goes quiet for 1000
			// cycles, as between DRAM-bound layers in the accelerator.
			target := nw.Cycle() + 1000
			if fastForward {
				if !nw.AdvanceIdle(target) {
					t.Fatal("AdvanceIdle refused an idle network")
				}
			} else {
				for nw.Cycle() < target {
					nw.Step()
				}
			}
		}
		return nw.Stats(), nw.PerRouterTraversals(), deliveries
	}

	fastStats, fastHeat, fastDel := run(true)
	slowStats, slowHeat, slowDel := run(false)
	if fastStats != slowStats {
		t.Errorf("stats diverge:\nfast %+v\nslow %+v", fastStats, slowStats)
	}
	if !reflect.DeepEqual(fastHeat, slowHeat) {
		t.Errorf("per-router heatmap diverges:\nfast %v\nslow %v", fastHeat, slowHeat)
	}
	if !reflect.DeepEqual(fastDel, slowDel) {
		t.Errorf("delivery streams diverge: fast %d vs slow %d deliveries", len(fastDel), len(slowDel))
	}
}

// TestAdvanceIdleRefusals: a busy network and a non-advancing target
// are both no-ops.
func TestAdvanceIdleRefusals(t *testing.T) {
	nw, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if nw.AdvanceIdle(nw.Cycle()) {
		t.Error("advanced to the current cycle")
	}
	if err := nw.Inject(Packet{Src: 0, Dst: 5, Flits: 3}); err != nil {
		t.Fatal(err)
	}
	if nw.AdvanceIdle(nw.Cycle() + 100) {
		t.Error("advanced a busy network")
	}
	if nw.Cycle() != 0 {
		t.Errorf("cycle moved to %d on refused advances", nw.Cycle())
	}
	if _, ok := nw.RunUntilIdle(10_000); !ok {
		t.Fatal("did not drain")
	}
	if !nw.AdvanceIdle(nw.Cycle() + 100) {
		t.Error("refused an idle network")
	}
}

// TestResetEquivalence: a reset, previously used network must replay a
// workload exactly like a freshly constructed one — same stats, same
// heatmap, same deliveries, including under faults and multiple VCs.
func TestResetEquivalence(t *testing.T) {
	run := func(nw *Network) (Stats, []uint64, []Delivery) {
		var deliveries []Delivery
		nw.SetSink(func(d Delivery) { deliveries = append(deliveries, d) })
		for round := 0; round < 3; round++ {
			burst(t, nw, round)
			if _, ok := nw.RunUntilIdle(100_000); !ok {
				t.Fatal("did not drain")
			}
		}
		return nw.Stats(), nw.PerRouterTraversals(), deliveries
	}

	fresh, err := New(vcConfig())
	if err != nil {
		t.Fatal(err)
	}
	wantStats, wantHeat, wantDel := run(fresh)

	pooled, err := New(vcConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the network with an unrelated workload, then reset and replay.
	for src := 1; src < pooled.Nodes(); src++ {
		if _, err := pooled.SendMessage(src, 0, 9, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := pooled.RunUntilIdle(100_000); !ok {
		t.Fatal("did not drain")
	}
	pooled.Reset()
	if !pooled.Idle() || pooled.Cycle() != 0 || pooled.Stats() != (Stats{}) {
		t.Fatal("Reset left residual state")
	}
	gotStats, gotHeat, gotDel := run(pooled)

	if gotStats != wantStats {
		t.Errorf("stats diverge after Reset:\nreset %+v\nfresh %+v", gotStats, wantStats)
	}
	if !reflect.DeepEqual(gotHeat, wantHeat) {
		t.Errorf("heatmap diverges after Reset")
	}
	if !reflect.DeepEqual(gotDel, wantDel) {
		t.Errorf("deliveries diverge after Reset: %d vs %d", len(gotDel), len(wantDel))
	}
}

// TestIdleCounterBalance: the O(1) Idle flit counter must balance even
// when packets die mid-flight (unroutable kills and retry exhaustion),
// otherwise RunUntilIdle would never report a drained network again.
func TestIdleCounterBalance(t *testing.T) {
	cfg := DefaultConfig()
	// Cut node 5 off completely: packets to it are killed and drained.
	cfg.Faults = faults.Model{DeadLinks: []faults.Link{
		{From: 4, To: 5}, {From: 6, To: 5}, {From: 1, To: 5}, {From: 9, To: 5},
	}}
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < 16; src++ {
		if src == 5 {
			continue
		}
		if _, err := nw.SendMessage(src, 5, 6, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := nw.RunUntilIdle(1_000_000); !ok {
		t.Fatal("network never drained: flit counter out of balance")
	}
	if !nw.Idle() {
		t.Fatal("Idle() false after drain")
	}
	if got := nw.Stats().UnroutablePackets; got == 0 {
		t.Error("expected unroutable kills in this topology")
	}
}
