package quant_test

import (
	"fmt"

	"repro/internal/quant"
)

// Example quantizes a weight vector to int8 and bounds the error by
// scale/2, the TFLite guarantee.
func Example() {
	w := []float64{-0.5, -0.25, 0, 0.25, 0.5}
	q, err := quant.Quantize(w)
	if err != nil {
		fmt.Println(err)
		return
	}
	deq := q.Dequantize()
	worst := 0.0
	for i := range w {
		if e := deq[i] - w[i]; e > worst {
			worst = e
		} else if -e > worst {
			worst = -e
		}
	}
	fmt.Printf("max error within scale/2: %v\n", worst <= q.P.MaxQuantError())
	// Output:
	// max error within scale/2: true
}
