// Package entropy measures the Shannon entropy of serialized data streams.
//
// The paper's Fig. 3 compares the 8-bit symbol entropy of CNN weight
// streams against random data (the upper bound, 8 bits/symbol) and a text
// file (highly redundant, ~4.5 bits/symbol) to argue that traditional
// entropy coders cannot compress trained weights. This package reproduces
// that measurement and provides the reference corpora generators.
package entropy

import (
	"encoding/binary"
	"math"
	"math/rand"
)

// Shannon returns the Shannon entropy in bits per symbol of the byte
// stream, treating each byte as one symbol. The result lies in [0, 8].
// Empty input has entropy 0.
func Shannon(data []byte) float64 {
	if len(data) == 0 {
		return 0
	}
	var counts [256]int
	for _, b := range data {
		counts[b]++
	}
	n := float64(len(data))
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// ShannonWords returns the Shannon entropy in bits per 16-bit symbol of the
// stream interpreted as little-endian uint16 words. Odd trailing bytes are
// ignored. The result lies in [0, 16].
func ShannonWords(data []byte) float64 {
	n := len(data) / 2
	if n == 0 {
		return 0
	}
	counts := make(map[uint16]int, 1<<12)
	for i := 0; i < n; i++ {
		w := binary.LittleEndian.Uint16(data[2*i:])
		counts[w]++
	}
	fn := float64(n)
	var h float64
	for _, c := range counts {
		p := float64(c) / fn
		h -= p * math.Log2(p)
	}
	return h
}

// Float32Bytes serializes a float32 weight stream to its little-endian byte
// representation, the form in which weights travel over the NoC and sit in
// main memory.
func Float32Bytes(ws []float64) []byte {
	out := make([]byte, 4*len(ws))
	for i, w := range ws {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(float32(w)))
	}
	return out
}

// RandomBytes returns n bytes drawn uniformly at random with the given
// seed; its entropy approaches 8 bits/symbol — the Fig. 3 upper bound.
func RandomBytes(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	rng.Read(out)
	return out
}

// wordPool imitates English-like token frequencies: a small vocabulary with
// a Zipfian rank distribution, which is what gives natural-language text its
// characteristic ~4-5 bits/byte entropy.
var wordPool = []string{
	"the", "of", "and", "a", "to", "in", "is", "you", "that", "it",
	"he", "was", "for", "on", "are", "as", "with", "his", "they", "I",
	"at", "be", "this", "have", "from", "or", "one", "had", "by", "word",
	"network", "chip", "weight", "layer", "energy", "latency", "memory",
	"traffic", "compression", "accelerator", "inference", "model",
}

// SyntheticText returns approximately n bytes of Zipf-distributed
// English-like text — the Fig. 3 "text file" comparison corpus.
func SyntheticText(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.2, 1.0, uint64(len(wordPool)-1))
	out := make([]byte, 0, n+16)
	col := 0
	for len(out) < n {
		w := wordPool[zipf.Uint64()]
		out = append(out, w...)
		col += len(w) + 1
		if col > 70 {
			out = append(out, '\n')
			col = 0
		} else {
			out = append(out, ' ')
		}
	}
	return out[:n]
}
