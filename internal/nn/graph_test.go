package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// buildTestGraph builds a small DAG with a residual connection:
// input -> fc1 -> relu -> fc2 -> add(fc1 output) -> softmax.
func buildTestGraph(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	fc1, err := NewDense("fc1", 4, 4, rng(20))
	if err != nil {
		t.Fatal(err)
	}
	fc2, err := NewDense("fc2", 4, 4, rng(21))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Add(fc1); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(NewReLU("relu")); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(fc2); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(NewAdd("add"), "fc2", "fc1"); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(NewSoftmax("sm")); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGraphForward(t *testing.T) {
	g := buildTestGraph(t)
	x := tensor.MustNew(4)
	x.RandNormal(rng(22), 0, 1)
	y, err := g.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if y.Size() != 4 {
		t.Errorf("output size = %d", y.Size())
	}
	var sum float64
	for _, v := range y.Data {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Errorf("softmax output sum = %v", sum)
	}
}

func TestGraphAddValidation(t *testing.T) {
	g := NewGraph()
	d, _ := NewDense("fc", 2, 2, rng(1))
	if err := g.Add(d, "nonexistent"); err == nil {
		t.Error("unknown input should error")
	}
	if err := g.Add(d); err != nil {
		t.Fatal(err)
	}
	d2, _ := NewDense("fc", 2, 2, rng(1))
	if err := g.Add(d2); err == nil {
		t.Error("duplicate name should error")
	}
	bad, _ := NewDense(InputName, 2, 2, rng(1))
	if err := g.Add(bad); err == nil {
		t.Error("reserved name should error")
	}
	if err := g.SetOutput("nope"); err == nil {
		t.Error("unknown output should error")
	}
	if err := g.SetOutput("fc"); err != nil {
		t.Error(err)
	}
}

func TestGraphEmptyForward(t *testing.T) {
	g := NewGraph()
	if _, err := g.Forward(tensor.MustNew(1)); err == nil {
		t.Error("empty graph forward should error")
	}
}

func TestGraphForwardFromMatchesFull(t *testing.T) {
	g := buildTestGraph(t)
	x := tensor.MustNew(4)
	x.RandNormal(rng(23), 0, 1)
	acts, err := g.ForwardAll(x)
	if err != nil {
		t.Fatal(err)
	}
	full := acts[g.Output()]
	// Perturb fc2's weights, then recompute only the suffix.
	fc2 := g.Layer("fc2").(*Dense)
	fc2.W.Data[0] += 0.5
	suffix, err := g.ForwardFrom(acts, "fc2")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := g.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct.Data {
		if suffix.Data[i] != direct.Data[i] {
			t.Fatalf("ForwardFrom diverges from full forward at %d", i)
		}
	}
	// And it should differ from the pre-perturbation output.
	same := true
	for i := range full.Data {
		if suffix.Data[i] != full.Data[i] {
			same = false
		}
	}
	if same {
		t.Error("perturbation had no effect; test is vacuous")
	}
	// acts must not be mutated by ForwardFrom.
	if acts[g.Output()] != full {
		t.Error("ForwardFrom mutated the cached activations")
	}
	if _, err := g.ForwardFrom(acts, "missing"); err == nil {
		t.Error("unknown start layer should error")
	}
}

func TestGraphInferShapes(t *testing.T) {
	g := buildTestGraph(t)
	shapes, err := g.InferShapes([]int{4})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fc1", "relu", "fc2", "add", "sm"} {
		s, ok := shapes[name]
		if !ok || len(s) != 1 || s[0] != 4 {
			t.Errorf("shape[%s] = %v", name, s)
		}
	}
	if _, err := g.InferShapes([]int{5}); err == nil {
		t.Error("wrong input shape should error")
	}
}

func TestGraphLayerCosts(t *testing.T) {
	g := buildTestGraph(t)
	costs, err := g.LayerCosts([]int{4})
	if err != nil {
		t.Fatal(err)
	}
	if costs["fc1"] != 16 || costs["fc2"] != 16 {
		t.Errorf("dense costs = %v", costs)
	}
	if costs["relu"] != 0 || costs["add"] != 0 {
		t.Errorf("free layer costs = %v", costs)
	}
}

func TestGraphAccessors(t *testing.T) {
	g := buildTestGraph(t)
	if g.Output() != "sm" {
		t.Errorf("output = %q", g.Output())
	}
	names := g.LayerNames()
	if len(names) != 5 || names[0] != "fc1" {
		t.Errorf("names = %v", names)
	}
	if g.Layer("fc1") == nil || g.Layer("missing") != nil {
		t.Error("Layer lookup broken")
	}
	if len(g.Layers()) != 5 {
		t.Error("Layers() wrong length")
	}
	in := g.Inputs("add")
	if len(in) != 2 || in[0] != "fc2" || in[1] != "fc1" {
		t.Errorf("Inputs(add) = %v", in)
	}
	if g.Inputs("missing") != nil {
		t.Error("Inputs of missing layer should be nil")
	}
	// fc1: 4*4+4 = 20, fc2: 20 -> total 40.
	if got := g.NumParams(); got != 40 {
		t.Errorf("NumParams = %d, want 40", got)
	}
}

func TestSequential(t *testing.T) {
	d1, _ := NewDense("a", 2, 3, rng(1))
	d2, _ := NewDense("b", 3, 2, rng(2))
	g, err := Sequential(d1, NewReLU("r"), d2)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.MustNew(2)
	x.Fill(1)
	y, err := g.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if y.Size() != 2 {
		t.Errorf("sequential output = %v", y.Shape())
	}
	dup, _ := NewDense("a", 2, 2, rng(3))
	if _, err := Sequential(d1, dup); err == nil {
		t.Error("duplicate names should error")
	}
}

func TestGraphMustAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAdd with bad input should panic")
		}
	}()
	g := NewGraph()
	d, _ := NewDense("fc", 2, 2, rng(1))
	g.MustAdd(d, "ghost")
}
