package noc

import (
	"math/rand"
	"testing"

	"repro/internal/obs"
)

// BenchmarkStepLoaded measures the per-cycle cost of the router pipeline
// under sustained uniform random traffic (default event core).
func BenchmarkStepLoaded(b *testing.B) { benchStepLoaded(b, CoreEvent) }

// BenchmarkStepLoadedStepCore is the same workload on the reference
// stepping core, for before/after comparison in one binary.
func BenchmarkStepLoadedStepCore(b *testing.B) { benchStepLoaded(b, CoreStep) }

func benchStepLoaded(b *testing.B, core Core) {
	cfg := DefaultConfig()
	cfg.Core = core
	nw, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	inject := func() {
		src := rng.Intn(16)
		dst := rng.Intn(16)
		if dst == src {
			dst = (src + 1) % 16
		}
		_ = nw.Inject(Packet{Src: src, Dst: dst, Flits: 4})
	}
	for k := 0; k < 64; k++ {
		inject()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%4 == 0 {
			inject() // keep the network loaded
		}
		nw.Step()
	}
}

// BenchmarkDrainHotspot measures draining the accelerator's writeback
// pattern: twelve senders converging on one corner.
func BenchmarkDrainHotspot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nw, err := New(DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		for src := 1; src < 16; src++ {
			if _, err := nw.SendMessage(src, 0, 64, nil); err != nil {
				b.Fatal(err)
			}
		}
		if _, ok := nw.RunUntilIdle(1_000_000); !ok {
			b.Fatal("did not drain")
		}
	}
}

// BenchmarkDrainHotspotReset is BenchmarkDrainHotspot on one pooled
// network reset between iterations — the accelerator simulator's
// steady-state usage, where geometry and queue buffers are reused.
func BenchmarkDrainHotspotReset(b *testing.B) {
	nw, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Reset()
		for src := 1; src < 16; src++ {
			if _, err := nw.SendMessage(src, 0, 64, nil); err != nil {
				b.Fatal(err)
			}
		}
		if _, ok := nw.RunUntilIdle(1_000_000); !ok {
			b.Fatal("did not drain")
		}
	}
}

// BenchmarkRunUntilIdleSparse measures the idle-heavy regime: one small
// packet crossing a 16x16 mesh, so almost every router is empty on
// every cycle. This is the case the O(1) Idle check and the per-router
// occupancy skip target.
func BenchmarkRunUntilIdleSparse(b *testing.B) { benchRunUntilIdleSparse(b, CoreEvent) }

// BenchmarkRunUntilIdleSparseStepCore pins the stepping-core baseline
// the event core is measured against.
func BenchmarkRunUntilIdleSparseStepCore(b *testing.B) { benchRunUntilIdleSparse(b, CoreStep) }

func benchRunUntilIdleSparse(b *testing.B, core Core) {
	nw, err := New(Config{Width: 16, Height: 16, BufferDepth: 4, FlitBits: 64, MaxPacketFlit: 32, Core: core})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Reset()
		if err := nw.Inject(Packet{Src: 0, Dst: 255, Flits: 4}); err != nil {
			b.Fatal(err)
		}
		if _, ok := nw.RunUntilIdle(100_000); !ok {
			b.Fatal("did not drain")
		}
	}
}

// BenchmarkRunUntilIdleSparseObs is BenchmarkRunUntilIdleSparse with
// tracing and the latency histogram enabled — the other half of the
// on/off pair pinning the instrumentation overhead. Compare against
// BenchmarkRunUntilIdleSparse for the enabled-path delta; the disabled
// path itself is pinned at 0 allocs by TestDisabledObsZeroAllocs.
func BenchmarkRunUntilIdleSparseObs(b *testing.B) {
	nw, err := New(Config{Width: 16, Height: 16, BufferDepth: 4, FlitBits: 64, MaxPacketFlit: 32})
	if err != nil {
		b.Fatal(err)
	}
	tr := obs.NewTrace()
	buf := tr.Buffer("bench", 0, "noc")
	hist := obs.NewHistogram(obs.Pow2Buckets(20))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Reset()
		buf.Reset()
		nw.SetTrace(buf)
		nw.SetLatencyHistogram(hist)
		if err := nw.Inject(Packet{Src: 0, Dst: 255, Flits: 4}); err != nil {
			b.Fatal(err)
		}
		if _, ok := nw.RunUntilIdle(100_000); !ok {
			b.Fatal("did not drain")
		}
	}
}
