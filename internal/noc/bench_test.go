package noc

import (
	"math/rand"
	"testing"
)

// BenchmarkStepLoaded measures the per-cycle cost of the router pipeline
// under sustained uniform random traffic.
func BenchmarkStepLoaded(b *testing.B) {
	nw, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	inject := func() {
		src := rng.Intn(16)
		dst := rng.Intn(16)
		if dst == src {
			dst = (src + 1) % 16
		}
		_ = nw.Inject(Packet{Src: src, Dst: dst, Flits: 4})
	}
	for k := 0; k < 64; k++ {
		inject()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%4 == 0 {
			inject() // keep the network loaded
		}
		nw.Step()
	}
}

// BenchmarkDrainHotspot measures draining the accelerator's writeback
// pattern: twelve senders converging on one corner.
func BenchmarkDrainHotspot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nw, err := New(DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		for src := 1; src < 16; src++ {
			if _, err := nw.SendMessage(src, 0, 64, nil); err != nil {
				b.Fatal(err)
			}
		}
		if _, ok := nw.RunUntilIdle(1_000_000); !ok {
			b.Fatal("did not drain")
		}
	}
}
