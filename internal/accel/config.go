// Package accel simulates the paper's NoC-based CNN accelerator (Fig. 7):
// a 4x4 mesh whose corner nodes are main-memory interfaces and whose other
// twelve nodes are PEs with 8 KB local scratchpads, 8 lanes of 8-way
// vector MAC units, and an embedded weights-decompression unit. A CNN
// model is executed layer by layer: memory interfaces fetch filters and
// input feature maps from DRAM and dispatch them over the cycle-accurate
// NoC; PEs compute and stream output feature maps back (Fig. 1).
//
// The simulator reports, per layer and in total, the latency breakdown
// {memory, communication, computation} and the eight-component energy
// breakdown {communication, computation, local memory, main memory} x
// {dynamic, leakage} that Figs. 2 and 10 plot.
package accel

import (
	"fmt"
	"sort"

	"repro/internal/energy"
	"repro/internal/noc"
)

// Config describes the accelerator platform.
type Config struct {
	Mesh          noc.Config
	MemNodes      []int // node ids hosting memory interfaces (paper: the 4 corners)
	LocalMemBytes int   // PE scratchpad capacity (paper: 8 KB)
	MACLanes      int   // vector lanes per PE (paper: 8)
	MACWidth      int   // dot-product width per lane (paper: 8)
	DecompUnits   int   // decompression lanes per PE (one accumulator per multiplier)
	MaxSimRounds  int   // tiling rounds simulated cycle-accurately before steady-state extrapolation
	// Overlap enables the memory-wall streaming mode: double-buffered,
	// tile-granular weight prefetch where the decompression unit refills
	// the next tile while the MAC lanes consume the current one, the
	// memory interface pipelines back-to-back DRAM requests (the fixed
	// request latency hides behind the previous burst), and per-codec
	// decode-rate models (core.DecodeModel) replace the uniform FSM
	// costing. PEs stall only when decode bandwidth falls short of
	// compute demand; those cycles surface as LatencyBreakdown.DecodeStall.
	// Off (the default) reproduces the serial ship-then-compute schedule
	// byte for byte.
	Overlap bool
	Energy  energy.Params
}

// DefaultConfig returns the paper's platform: 4x4 mesh at 1 GHz, 64-bit
// links, memory interfaces in the corners, 8 KB scratchpads, 8x8-way MACs.
func DefaultConfig() Config {
	return Config{
		Mesh:          noc.DefaultConfig(),
		MemNodes:      []int{0, 3, 12, 15},
		LocalMemBytes: 8 * 1024,
		MACLanes:      8,
		MACWidth:      8,
		DecompUnits:   64,
		MaxSimRounds:  8,
		Energy:        energy.Default45nm(),
	}
}

// Validate checks the platform description.
func (c Config) Validate() error {
	if err := c.Mesh.Validate(); err != nil {
		return err
	}
	if err := c.Energy.Validate(); err != nil {
		return err
	}
	nodes := c.Mesh.Width * c.Mesh.Height
	if len(c.MemNodes) == 0 {
		return fmt.Errorf("accel: no memory interface nodes")
	}
	seen := make(map[int]bool)
	for _, m := range c.MemNodes {
		if m < 0 || m >= nodes {
			return fmt.Errorf("accel: memory node %d outside mesh", m)
		}
		if seen[m] {
			return fmt.Errorf("accel: duplicate memory node %d", m)
		}
		seen[m] = true
	}
	if len(c.MemNodes) >= nodes {
		return fmt.Errorf("accel: no PE nodes left")
	}
	switch {
	case c.LocalMemBytes < 64:
		return fmt.Errorf("accel: local memory %d bytes too small", c.LocalMemBytes)
	case c.MACLanes < 1 || c.MACWidth < 1:
		return fmt.Errorf("accel: bad MAC geometry %dx%d", c.MACLanes, c.MACWidth)
	case c.DecompUnits < 1:
		return fmt.Errorf("accel: decompression throughput %d < 1", c.DecompUnits)
	case c.MaxSimRounds < 1:
		return fmt.Errorf("accel: MaxSimRounds %d < 1", c.MaxSimRounds)
	}
	return nil
}

// MACsPerCycle returns the PE datapath throughput.
func (c Config) MACsPerCycle() int { return c.MACLanes * c.MACWidth }

// peNodes returns the non-memory node ids in ascending order.
func (c Config) peNodes() []int {
	mem := make(map[int]bool, len(c.MemNodes))
	for _, m := range c.MemNodes {
		mem[m] = true
	}
	var pes []int
	for i := 0; i < c.Mesh.Width*c.Mesh.Height; i++ {
		if !mem[i] {
			pes = append(pes, i)
		}
	}
	return pes
}

// assignPEs maps each PE node to its serving memory interface, balancing
// load and preferring the nearest interface (Manhattan distance).
func (c Config) assignPEs() map[int]int {
	pes := c.peNodes()
	cap := (len(pes) + len(c.MemNodes) - 1) / len(c.MemNodes)
	load := make(map[int]int, len(c.MemNodes))
	dist := func(a, b int) int {
		ax, ay := a%c.Mesh.Width, a/c.Mesh.Width
		bx, by := b%c.Mesh.Width, b/c.Mesh.Width
		dx, dy := ax-bx, ay-by
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		return dx + dy
	}
	assign := make(map[int]int, len(pes))
	// Assign in order of (distance to closest MI) descending so the
	// constrained PEs pick first.
	order := append([]int(nil), pes...)
	sort.Slice(order, func(i, j int) bool {
		di, dj := 1<<30, 1<<30
		for _, m := range c.MemNodes {
			if d := dist(order[i], m); d < di {
				di = d
			}
			if d := dist(order[j], m); d < dj {
				dj = d
			}
		}
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	for _, pe := range order {
		best, bestD := -1, 1<<30
		for _, m := range c.MemNodes {
			if load[m] >= cap {
				continue
			}
			if d := dist(pe, m); d < bestD {
				best, bestD = m, d
			}
		}
		if best < 0 { // all full (only with uneven caps); fall back to min load
			for _, m := range c.MemNodes {
				if best < 0 || load[m] < load[best] {
					best = m
				}
			}
		}
		assign[pe] = best
		load[best]++
	}
	return assign
}

// meshLinks returns the number of unidirectional inter-router links.
func (c Config) meshLinks() int {
	w, h := c.Mesh.Width, c.Mesh.Height
	return 2 * (w*(h-1) + h*(w-1))
}
