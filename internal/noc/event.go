// The discrete-event engine. Instead of scanning every router every
// cycle, it keeps an activation calendar — per-cycle bitsets over router
// ids and injection nodes — and visits only the entities that can make
// progress. All flit movement, arbitration, stats, and fault logic lives
// in the per-router phase functions shared with the stepping engine
// (network.go); this file only decides *which* routers run.
//
// Why the calendar needs exactly two buckets (this cycle, next cycle):
// every interaction in the mesh is neighbor-to-neighbor with a one-cycle
// horizon — an arrival, a freed credit, or a local state change can
// enable work no later than the following cycle. A router that changed
// nothing in a cycle is in a fixed point: its state is a pure function
// of its lanes and its neighbors' buffer occupancy, so it stays frozen
// until one of the wake events below fires. Events scheduled further
// ahead than one cycle simply do not exist inside the network (client
// injections arrive between cycles and wake their source node).
//
// Wake events (see the wake* calls in network.go):
//   - a flit pushed into a router's input lane wakes that router;
//   - a flit popped from an input lane wakes the upstream feeder of that
//     lane (the neighbor router, or the node's injection queue for the
//     local port), because the pop frees a credit;
//   - any state change at a router (route computed via drain, VC
//     allocated, flit sent or drained) reschedules the router itself;
//   - enqueueing flits on an injection queue wakes that node.
//
// Same-cycle ordering: the stepping engine runs each phase over all
// routers in ascending id order, which makes two effects visible within
// the cycle they happen: a flit pushed to a higher-id router can be
// forwarded by it in the same cycle, and a credit freed by a lower-id
// router's pop can be consumed by a higher-id upstream in the same
// cycle. The event engine reproduces this exactly: phase 2 consumes its
// bitset in ascending order, and a wake targeting an id greater than
// the router currently being processed sets the *current* cycle's bit
// (picked up later in the same sweep); a wake targeting a lower id only
// sets the next cycle's bit, just as the stepping engine has already
// passed that router. Phase 1 runs over a snapshot taken before phase 2,
// mirroring the stepping engine completing route computation for the
// whole mesh before any flit moves.
//
// Equivalence, not approximation: a router absent from the activation
// set is one the stepping engine would scan and leave untouched, so
// skipping it cannot change any state, counter, or delivery. The
// differential tests and FuzzEventCore pin Stats, per-router heatmaps,
// and full delivery streams byte-identical across both engines.
package noc

import "math/bits"

// bitset is a fixed-capacity bitmap over router/node ids.
type bitset []uint64

func (b bitset) set(i int)   { b[i>>6] |= 1 << uint(i&63) }
func (b bitset) clearAll()   { clear(b) }
func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

// Engine phases, used to decide whether a wake may target the cycle in
// progress. phaseOutside covers client calls between Step invocations.
const (
	phaseOutside int8 = iota
	phaseRoute
	phaseMove
	phaseInject
)

// eventState is the activation calendar: which routers and injection
// nodes must run in the cycle being processed (cur*) and the one after
// (next*). Masks are consumed during iteration, so after a cycle
// completes the cur masks are empty and swap with the next masks.
type eventState struct {
	curR, nextR bitset // routers to visit (phases 1+2)
	curI, nextI bitset // injection nodes to visit (phase 3)
	phase       int8
	posR        int // router id being processed in phase 2
}

func newEventState(nodes int) *eventState {
	return &eventState{
		curR: newBitset(nodes), nextR: newBitset(nodes),
		curI: newBitset(nodes), nextI: newBitset(nodes),
		phase: phaseOutside, posR: -1,
	}
}

func (ev *eventState) reset() {
	ev.curR.clearAll()
	ev.nextR.clearAll()
	ev.curI.clearAll()
	ev.nextI.clearAll()
	ev.phase = phaseOutside
	ev.posR = -1
}

// wakeRouter schedules router id after a flit arrived in one of its
// lanes or one of its downstream credits freed. During the phase-2
// sweep a higher-id target is additionally scheduled for the current
// cycle, matching the stepping engine's ascending scan.
func (nw *Network) wakeRouter(id int) {
	ev := nw.ev
	if ev == nil {
		return
	}
	if ev.phase == phaseMove && id > ev.posR {
		ev.curR.set(id)
	}
	ev.nextR.set(id)
}

// wakeRouterNext schedules router id for the next cycle only (used for
// self-rescheduling after local state changes, and for the local router
// of a freshly injected flit).
func (nw *Network) wakeRouterNext(id int) {
	if nw.ev != nil {
		nw.ev.nextR.set(id)
	}
}

// wakeInject schedules a node's injection queue. Phase 3 runs last, so
// any wake raised before it (client Inject calls between cycles, NACK
// retransmissions enqueued during phase 2) also targets the current
// cycle — the stepping engine's phase 3 would see the queued flits too.
func (nw *Network) wakeInject(node int) {
	ev := nw.ev
	if ev == nil {
		return
	}
	if ev.phase != phaseInject {
		ev.curI.set(node)
	}
	ev.nextI.set(node)
}

// wakeInjectNext schedules a node's injection queue for the next cycle
// only (more flits remain after a successful injection).
func (nw *Network) wakeInjectNext(node int) {
	if nw.ev != nil {
		nw.ev.nextI.set(node)
	}
}

// wakeUpstream wakes whatever feeds input port p of router r after a pop
// freed a buffer slot there: the neighbor router on that side, or the
// node's injection queue for the local port.
func (nw *Network) wakeUpstream(r, p int) {
	if nw.ev == nil {
		return
	}
	if p == PortLocal {
		nw.wakeInject(r)
		return
	}
	if u, _, ok := nw.neighbor(r, p); ok {
		nw.wakeRouter(u)
	}
}

// stepEvent advances one cycle on the event engine: the same three
// phases as the stepping engine, each visiting only scheduled entities
// in ascending id order. Masks are consumed bit-by-bit, so wakes that
// target ids ahead of the sweep are picked up within the same cycle.
func (nw *Network) stepEvent() {
	ev := nw.ev
	nw.beginCycle()
	// Phase 1 iterates curR read-only (each word hoisted to a local):
	// routeRouter only mutates lane route state, never wakes anything,
	// so the mask cannot change under the sweep, and phase 2 still sees
	// the full set afterwards.
	ev.phase = phaseRoute
	for w, wv := range ev.curR {
		for wv != 0 {
			bit := bits.TrailingZeros64(wv)
			wv &= wv - 1
			nw.routeRouter(w<<6 | bit)
		}
	}
	// Phase 2 consumes curR word by word, re-reading after every router:
	// wakes may set bits ahead of posR (same-cycle forwarding/credits).
	ev.phase = phaseMove
	for w := range ev.curR {
		for ev.curR[w] != 0 {
			bit := bits.TrailingZeros64(ev.curR[w])
			ev.curR[w] &^= 1 << uint(bit)
			r := w<<6 | bit
			ev.posR = r
			nw.moveRouter(r)
		}
	}
	ev.posR = -1
	// Phase 3 iterates curI with hoisted words too: injectNode only
	// raises *next*-cycle wakes, so curI is stable during the sweep.
	// The mask is cleared wholesale afterwards (the swap needs it empty).
	ev.phase = phaseInject
	for w, wv := range ev.curI {
		for wv != 0 {
			bit := bits.TrailingZeros64(wv)
			wv &= wv - 1
			nw.injectNode(w<<6 | bit)
		}
		ev.curI[w] = 0
	}
	ev.phase = phaseOutside
	// The cur masks are fully consumed; swap them in as the (empty)
	// next-next masks and promote next to cur.
	ev.curR, ev.nextR = ev.nextR, ev.curR
	ev.curI, ev.nextI = ev.nextI, ev.curI
	nw.endCycle()
}
