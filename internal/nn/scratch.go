package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Scratch is a keyed arena of reusable buffers for allocation-free
// forward passes. Layers key their scratch by layer name (unique within
// a graph), so one Scratch serves a whole graph: after the first pass
// every buffer is warm and steady-state forwards allocate nothing.
//
// Ownership rules (see DESIGN.md "Compute kernels"):
//   - A Scratch (and any Runner holding one) is single-goroutine state;
//     concurrent evaluation uses one Scratch/Runner per goroutine over
//     the shared read-only graph.
//   - Tensors returned by ForwardScratch/Runner methods are views into
//     the arena: they are valid until the next forward call that uses
//     the same Scratch. Callers that need them longer must Clone.
//
// Workers bounds the row-sharded parallel matrix multiply used by the
// heavy layers (0 or 1 keeps the kernels serial). Keep it at 1 whenever
// an outer worker pool is already fanning out — the experiment engine
// parallelizes across samples/models instead, which avoids
// oversubscription; kernel-level parallelism is for latency-critical
// single-inference paths.
type Scratch struct {
	Workers int

	floats  map[string][]float32
	f64s    map[string][]float64
	tensors map[string]*tensor.Tensor
}

// NewScratch creates an empty scratch arena.
func NewScratch() *Scratch {
	return &Scratch{
		floats:  make(map[string][]float32),
		f64s:    make(map[string][]float64),
		tensors: make(map[string]*tensor.Tensor),
	}
}

// Keys are passed in two parts (layer name + role suffix) so the
// steady-state map lookups compile to Go's allocation-free m[a+b] form;
// the concatenated key string is only materialized on the first (miss)
// call.

// Floats returns the keyed float32 buffer, grown to at least n elements.
// Contents are unspecified (possibly stale); callers must overwrite or
// zero what they read.
func (s *Scratch) Floats(name, sub string, n int) []float32 {
	if buf := s.floats[name+sub]; cap(buf) >= n {
		return buf[:n]
	}
	buf := make([]float32, n)
	s.floats[name+sub] = buf
	return buf
}

// Float64s is Floats for float64 accumulator buffers.
func (s *Scratch) Float64s(name, sub string, n int) []float64 {
	if buf := s.f64s[name+sub]; cap(buf) >= n {
		return buf[:n]
	}
	buf := make([]float64, n)
	s.f64s[name+sub] = buf
	return buf
}

// Tensor returns the keyed scratch tensor with the given shape, reusing
// the previous backing array when it is large enough. Contents are
// unspecified. In steady state (same key, same shape) the very same
// *Tensor is returned, so repeated forwards allocate nothing.
func (s *Scratch) Tensor(name, sub string, shape ...int) *tensor.Tensor {
	t := s.tensors[name+sub]
	if t != nil && shapeEqual(t, shape) {
		return t
	}
	n := 1
	for _, d := range shape {
		n *= d
	}
	var data []float32
	if t != nil && cap(t.Data) >= n {
		data = t.Data[:n]
	} else {
		data = make([]float32, n)
	}
	nt, err := tensor.FromSlice(data, shape...)
	if err != nil {
		panic(fmt.Sprintf("nn: scratch tensor %q: %v", name+sub, err))
	}
	s.tensors[name+sub] = nt
	return nt
}

// TensorLike is Tensor with the shape taken from x, without
// materializing a shape slice on the steady-state path.
func (s *Scratch) TensorLike(name, sub string, x *tensor.Tensor) *tensor.Tensor {
	t := s.tensors[name+sub]
	if t != nil && sameDims(t, x) {
		return t
	}
	return s.Tensor(name, sub, x.Shape()...)
}

func sameDims(t, x *tensor.Tensor) bool {
	if t.Rank() != x.Rank() {
		return false
	}
	for i := 0; i < t.Rank(); i++ {
		if t.Dim(i) != x.Dim(i) {
			return false
		}
	}
	return true
}

// View returns the keyed tensor view over data with the given shape,
// re-wrapping only when the backing slice or shape changed since the
// last call. It shares data, never copies.
func (s *Scratch) View(name, sub string, data []float32, shape ...int) (*tensor.Tensor, error) {
	t := s.tensors[name+sub]
	if t != nil && shapeEqual(t, shape) && len(t.Data) == len(data) && &t.Data[0] == &data[0] {
		return t, nil
	}
	nt, err := tensor.FromSlice(data, shape...)
	if err != nil {
		return nil, err
	}
	s.tensors[name+sub] = nt
	return nt, nil
}

func shapeEqual(t *tensor.Tensor, shape []int) bool {
	if t.Rank() != len(shape) {
		return false
	}
	for i, d := range shape {
		if t.Dim(i) != d {
			return false
		}
	}
	return true
}

// ScratchLayer is implemented by layers whose forward pass can run
// against a scratch arena instead of fresh allocations. The returned
// tensor may be owned by the arena (valid until the next use of s) and
// must be bit-identical to the plain Forward result.
type ScratchLayer interface {
	Layer
	ForwardScratch(xs []*tensor.Tensor, s *Scratch) (*tensor.Tensor, error)
}

// Runner executes a Graph with a persistent Scratch, reusing per-node
// activation buffers across calls. The graph itself stays read-only and
// shareable: create one Runner per goroutine for concurrent evaluation
// (WithScratch is cheap). Default Graph.Forward behaviour is unchanged.
//
// The activations a Runner returns (including the ForwardAll map) are
// owned by the Runner and valid only until its next forward call.
type Runner struct {
	g    *Graph
	s    *Scratch
	acts map[string]*tensor.Tensor
	xs   []*tensor.Tensor
}

// WithScratch returns a Runner that evaluates g through a fresh scratch
// arena. Layers implementing ScratchLayer reuse buffers; others fall
// back to their allocating Forward.
func (g *Graph) WithScratch() *Runner {
	return &Runner{
		g:    g,
		s:    NewScratch(),
		acts: make(map[string]*tensor.Tensor, len(g.order)+1),
	}
}

// SetWorkers bounds the parallel matrix-multiply kernels of the heavy
// layers (see Scratch.Workers). The default 0 keeps them serial.
func (r *Runner) SetWorkers(n int) { r.s.Workers = n }

// Forward runs the graph on x and returns the output activation (owned
// by the Runner; valid until the next call).
func (r *Runner) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	acts, err := r.ForwardAll(x)
	if err != nil {
		return nil, err
	}
	return acts[r.g.output], nil
}

// ForwardAll runs the graph and returns every node's activation keyed by
// layer name (plus InputName). The map and its tensors are owned by the
// Runner and overwritten by the next forward call; Clone what must
// survive.
func (r *Runner) ForwardAll(x *tensor.Tensor) (map[string]*tensor.Tensor, error) {
	if len(r.g.order) == 0 {
		return nil, fmt.Errorf("nn: empty graph")
	}
	clear(r.acts)
	r.acts[InputName] = x
	if err := r.run(0); err != nil {
		return nil, err
	}
	return r.acts, nil
}

// ForwardFrom re-executes the graph from the named layer (inclusive) to
// the output, reading earlier activations from acts — produced by
// ForwardAll (of the Graph or any Runner) on the same input. acts is not
// modified; the returned tensor is Runner-owned.
func (r *Runner) ForwardFrom(acts map[string]*tensor.Tensor, from string) (*tensor.Tensor, error) {
	start := -1
	for i, name := range r.g.order {
		if name == from {
			start = i
			break
		}
	}
	if start < 0 {
		return nil, fmt.Errorf("nn: unknown layer %q", from)
	}
	clear(r.acts)
	for k, v := range acts {
		r.acts[k] = v
	}
	if err := r.run(start); err != nil {
		return nil, err
	}
	return r.acts[r.g.output], nil
}

// run executes nodes order[start:] against the runner's activation map,
// dispatching to ForwardScratch where available.
func (r *Runner) run(start int) error {
	for _, name := range r.g.order[start:] {
		n := r.g.nodes[name]
		xs := r.xs[:0]
		for _, in := range n.inputs {
			a, ok := r.acts[in]
			if !ok || a == nil {
				return fmt.Errorf("nn: layer %q: missing activation for %q", name, in)
			}
			xs = append(xs, a)
		}
		r.xs = xs[:0]
		var y *tensor.Tensor
		var err error
		if sl, ok := n.layer.(ScratchLayer); ok {
			y, err = sl.ForwardScratch(xs, r.s)
		} else {
			y, err = n.layer.Forward(xs)
		}
		if err != nil {
			return fmt.Errorf("nn: layer %q: %w", name, err)
		}
		r.acts[name] = y
	}
	return nil
}
