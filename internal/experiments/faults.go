package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/models"
	"repro/internal/parallel"
)

// FaultRow is one point of the accuracy-vs-fault-rate sweep: a model,
// a weight-stream representation ("raw" float32 words or "compressed"
// <m, q> coefficient words) and a DRAM word-flip rate.
type FaultRow struct {
	Model    string
	Stream   string  // "raw" or "compressed"
	Rate     float64 // per-32-bit-word single-bit-upset probability
	DeltaPct float64 // compression tolerance (0 for the raw stream)
	Words    int     // 32-bit words exposed to the upset model
	Flips    int     // words actually hit at this (seed, rate)
	Detected int     // corrupted segments caught by the decompressor's
	// non-finite guard and zero-filled (graceful degradation)
	Baseline float64 // accuracy of the fault-free configuration
	Accuracy float64 // accuracy with the faults applied
}

// faultModels is the sweep's model selection: the trained LeNet-5 with
// genuine top-1 accuracy plus one large fidelity-measured model.
var faultModels = []string{"LeNet-5", "AlexNet"}

// FaultSweep measures how DRAM single-bit upsets degrade inference
// accuracy for the selected layer stored raw versus compressed. Both
// streams face the same per-word upset probability, but they fail very
// differently:
//
//   - A flip in a raw float32 weight perturbs exactly one parameter.
//   - A flip in a compressed <m, q> pair perturbs every parameter of its
//     segment — a corrupted slope m is integrated by the accumulation
//     FSM across the whole segment (slope-error amplification), so the
//     compressed stream loses more accuracy per flipped word even though
//     it exposes far fewer words to the fault process.
//
// Flips that produce non-finite coefficients are the one detectable
// case without checksums: the decompression unit rejects them
// (core.ErrNonFinite), and the sweep models the graceful-degradation
// policy of zero-filling the poisoned segment instead of aborting the
// inference. The Detected column counts those segments.
//
// The fault process is a pure function of (Options.Seed, rate, stream
// identity), so rows are byte-identical at any worker count, and rate 0
// is exactly the fault-free configuration.
func FaultSweep(opts Options) ([]FaultRow, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	names := faultModels
	if len(opts.Models) > 0 {
		names = opts.Models
	} else if opts.Fast {
		names = []string{"LeNet-5"}
	}
	perModel, err := parallel.Map(opts.ctx(), opts.workers(), len(names),
		func(_ context.Context, ni int) ([]FaultRow, error) {
			return checkpointed(opts, "faults/"+names[ni], func() ([]FaultRow, error) {
				return faultSweepModel(names[ni], opts)
			})
		})
	if err != nil {
		return nil, err
	}
	var rows []FaultRow
	for _, mr := range perModel {
		rows = append(rows, mr...)
	}
	return rows, nil
}

// faultSweepModel runs the rate sweep for one model. The sweep mutates
// the model's selected layer in place, so it stays serial within the
// model.
func faultSweepModel(name string, opts Options) ([]FaultRow, error) {
	b, err := models.ByName(name)
	if err != nil {
		return nil, err
	}
	m, err := b.Build(opts.Seed)
	if err != nil {
		return nil, err
	}
	ev, err := newEvaluator(m, opts) // trains LeNet for real
	if err != nil {
		return nil, err
	}
	orig, err := snapshotSelected(m)
	if err != nil {
		return nil, err
	}
	// The compressed stream uses the first non-trivial tolerance of the
	// model's Table II grid, so its fault-free row matches a published
	// operating point.
	deltaPct := DeltaGrid(m.Name)[1]
	comp, err := core.CompressPct(orig, deltaPct)
	if err != nil {
		return nil, err
	}
	rawBase, err := ev.baseline(m)
	if err != nil {
		return nil, err
	}
	compBase, err := installAndScore(ev, m, comp)
	if err != nil {
		return nil, err
	}
	var rows []FaultRow
	for _, rate := range opts.faultRates() {
		fm := faults.Model{Seed: opts.Seed, DRAMWordFlipRate: rate}

		// Raw stream: flip words of the float32 weight image directly.
		w := append([]float64(nil), orig...)
		flips := fm.FlipFloat32Stream(w, faults.StreamID(name+"/raw"))
		if err := m.SetSelectedWeights(w); err != nil {
			return nil, err
		}
		acc, err := ev.accuracy(m)
		if err != nil {
			return nil, err
		}
		rows = append(rows, FaultRow{
			Model: name, Stream: "raw", Rate: rate,
			Words: len(orig), Flips: flips,
			Baseline: rawBase, Accuracy: acc,
		})

		// Compressed stream: flip words of the <m, q> coefficient image.
		cc, flipsC, detected := corruptCoefficients(comp, fm, name)
		accC, err := installAndScore(ev, m, cc)
		if err != nil {
			return nil, err
		}
		rows = append(rows, FaultRow{
			Model: name, Stream: "compressed", Rate: rate,
			DeltaPct: deltaPct, Words: 2 * len(comp.Segments),
			Flips: flipsC, Detected: detected,
			Baseline: compBase, Accuracy: accC,
		})
	}
	// Restore the pristine weights for hygiene.
	if err := m.SetSelectedWeights(orig); err != nil {
		return nil, err
	}
	return rows, nil
}

// corruptCoefficients applies the DRAM upset model to a copy of the
// compressed succession's coefficient stream (M and Q of each segment,
// in order) and returns the corrupted copy, the flip count, and the
// number of segments whose coefficients went non-finite — the case the
// decompression unit detects and zero-fills.
func corruptCoefficients(c *core.Compressed, fm faults.Model, model string) (*core.Compressed, int, int) {
	coefs := make([]float64, 0, 2*len(c.Segments))
	for _, s := range c.Segments {
		coefs = append(coefs, float64(s.M), float64(s.Q))
	}
	flips := fm.FlipFloat32Stream(coefs, faults.StreamID(model+"/compressed"))
	out := &core.Compressed{N: c.N, Delta: c.Delta, Segments: append([]core.Segment(nil), c.Segments...)}
	detected := 0
	for i := range out.Segments {
		m32, q32 := float32(coefs[2*i]), float32(coefs[2*i+1])
		if !finiteCoef(m32) || !finiteCoef(q32) {
			// Graceful degradation: the FSM refuses the poisoned pair
			// (core.ErrNonFinite) and regenerates zeros for the segment
			// instead of smearing NaN/Inf over the rest of the stream.
			detected++
			m32, q32 = 0, 0
		}
		out.Segments[i].M, out.Segments[i].Q = m32, q32
	}
	return out, flips, detected
}

// installAndScore decompresses a (possibly corrupted, already
// zero-filled) stream into the model's selected layer and measures
// accuracy.
func installAndScore(ev *evaluator, m *models.Model, c *core.Compressed) (float64, error) {
	approx, err := c.Decompress()
	if err != nil {
		return 0, fmt.Errorf("experiments: decompressing faulted stream: %w", err)
	}
	if err := m.SetSelectedWeights(approx); err != nil {
		return 0, err
	}
	return ev.accuracy(m)
}

// finiteCoef mirrors the decompression unit's non-finite guard.
func finiteCoef(v float32) bool {
	f := float64(v)
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}
