package nn

import (
	"runtime"
	"testing"

	"repro/internal/tensor"
)

func BenchmarkConvForward(b *testing.B) {
	c, err := NewConv2D("c", 3, 3, 64, 64, 1, 1, rng(1))
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.MustNew(28, 28, 64)
	x.RandNormal(rng(2), 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Forward([]*tensor.Tensor{x}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvForwardScratch is the steady-state arena path at VGG- and
// LeNet-layer shapes: after the first pass every buffer is warm, so the
// loop body allocates (almost) nothing.
func BenchmarkConvForwardScratch(b *testing.B) {
	shapes := []struct {
		name           string
		h, w, inC, out int
	}{
		{"vgg28x28x64", 28, 28, 64, 64},
		{"lenet14x14x6", 14, 14, 6, 16},
	}
	for _, sh := range shapes {
		b.Run(sh.name, func(b *testing.B) {
			c, err := NewConv2D("c", 3, 3, sh.inC, sh.out, 1, 1, rng(1))
			if err != nil {
				b.Fatal(err)
			}
			x := tensor.MustNew(sh.h, sh.w, sh.inC)
			x.RandNormal(rng(2), 0, 1)
			s := NewScratch()
			xs := []*tensor.Tensor{x}
			if _, err := c.ForwardScratch(xs, s); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.ForwardScratch(xs, s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConvForwardScratchParallel adds the row-sharded matmul kernel
// (one worker per CPU) on top of the scratch arena.
func BenchmarkConvForwardScratchParallel(b *testing.B) {
	c, err := NewConv2D("c", 3, 3, 64, 64, 1, 1, rng(1))
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.MustNew(28, 28, 64)
	x.RandNormal(rng(2), 0, 1)
	s := NewScratch()
	s.Workers = runtime.GOMAXPROCS(0)
	xs := []*tensor.Tensor{x}
	if _, err := c.ForwardScratch(xs, s); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ForwardScratch(xs, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDenseForward(b *testing.B) {
	d, err := NewDense("d", 4096, 1024, rng(3))
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.MustNew(4096)
	x.RandNormal(rng(4), 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Forward([]*tensor.Tensor{x}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDenseForwardScratch is the VGG-classifier-shaped dense layer
// through the arena.
func BenchmarkDenseForwardScratch(b *testing.B) {
	d, err := NewDense("d", 4096, 1024, rng(3))
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.MustNew(4096)
	x.RandNormal(rng(4), 0, 1)
	s := NewScratch()
	xs := []*tensor.Tensor{x}
	if _, err := d.ForwardScratch(xs, s); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.ForwardScratch(xs, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDepthwiseForward(b *testing.B) {
	d, err := NewDepthwiseConv2D("dw", 3, 3, 128, 1, 1, rng(5))
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.MustNew(28, 28, 128)
	x.RandNormal(rng(6), 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Forward([]*tensor.Tensor{x}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDepthwiseForwardScratch is the MobileNet depthwise stage
// through the arena.
func BenchmarkDepthwiseForwardScratch(b *testing.B) {
	d, err := NewDepthwiseConv2D("dw", 3, 3, 128, 1, 1, rng(5))
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.MustNew(28, 28, 128)
	x.RandNormal(rng(6), 0, 1)
	s := NewScratch()
	xs := []*tensor.Tensor{x}
	if _, err := d.ForwardScratch(xs, s); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.ForwardScratch(xs, s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphForwardScratch runs the whole LeNet-5-topology graph
// through one warm Runner — the per-sample unit of every accuracy sweep.
func BenchmarkGraphForwardScratch(b *testing.B) {
	g := lenetLikeGraph(b)
	r := g.WithScratch()
	x := tensor.MustNew(28, 28, 1)
	x.RandNormal(rng(9), 0, 1)
	if _, err := r.Forward(x); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Forward(x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphForward is the allocating baseline of the same graph.
func BenchmarkGraphForward(b *testing.B) {
	g := lenetLikeGraph(b)
	x := tensor.MustNew(28, 28, 1)
	x.RandNormal(rng(9), 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Forward(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConvBackward(b *testing.B) {
	c, err := NewConv2D("c", 3, 3, 16, 16, 1, 1, rng(7))
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.MustNew(14, 14, 16)
	x.RandNormal(rng(8), 0, 1)
	y, err := c.Forward([]*tensor.Tensor{x})
	if err != nil {
		b.Fatal(err)
	}
	dy := tensor.MustNew(y.Shape()...)
	dy.Fill(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Backward(x, dy); err != nil {
			b.Fatal(err)
		}
	}
}
