package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestDenseForwardKnown(t *testing.T) {
	d, err := NewDense("fc", 2, 3, rng(1))
	if err != nil {
		t.Fatal(err)
	}
	copy(d.W.Data, []float32{1, 2, 3, 4, 5, 6}) // rows = inputs
	copy(d.B.Data, []float32{0.5, 0, -0.5})
	x, _ := tensor.FromSlice([]float32{1, 2}, 2)
	y, err := d.Forward([]*tensor.Tensor{x})
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{1*1 + 2*4 + 0.5, 1*2 + 2*5, 1*3 + 2*6 - 0.5}
	for i, v := range want {
		if math.Abs(float64(y.Data[i]-v)) > 1e-6 {
			t.Errorf("y[%d] = %v, want %v", i, y.Data[i], v)
		}
	}
}

func TestDenseValidation(t *testing.T) {
	if _, err := NewDense("fc", 0, 3, rng(1)); err == nil {
		t.Error("zero in dim should error")
	}
	d, _ := NewDense("fc", 4, 2, rng(1))
	if _, err := d.Forward([]*tensor.Tensor{tensor.MustNew(3)}); err == nil {
		t.Error("size mismatch should error")
	}
	if _, err := d.Forward(nil); err == nil {
		t.Error("no inputs should error")
	}
	if _, err := d.OutShape([][]int{{2, 2}}); err != nil {
		t.Error("volume-matching rank-2 input should be accepted (implicit flatten)")
	}
	if _, err := d.OutShape([][]int{{5}}); err == nil {
		t.Error("wrong volume should error")
	}
	if c, _ := d.Cost([][]int{{4}}); c != 8 {
		t.Errorf("Cost = %d, want 8", c)
	}
	if d.Kind() != "FC" || d.Name() != "fc" {
		t.Error("identity accessors wrong")
	}
}

func TestDenseBackwardNumerical(t *testing.T) {
	d, _ := NewDense("fc", 5, 3, rng(2))
	x := tensor.MustNew(5)
	x.RandNormal(rng(3), 0, 1)
	checkGradients(t, d, x)
}

func TestReLU(t *testing.T) {
	r := NewReLU("relu")
	x, _ := tensor.FromSlice([]float32{-1, 0, 2}, 3)
	y, err := r.Forward([]*tensor.Tensor{x})
	if err != nil {
		t.Fatal(err)
	}
	if y.Data[0] != 0 || y.Data[1] != 0 || y.Data[2] != 2 {
		t.Errorf("ReLU = %v", y.Data)
	}
	r6 := NewReLU6("relu6")
	x6, _ := tensor.FromSlice([]float32{-1, 3, 9}, 3)
	y6, _ := r6.Forward([]*tensor.Tensor{x6})
	if y6.Data[0] != 0 || y6.Data[1] != 3 || y6.Data[2] != 6 {
		t.Errorf("ReLU6 = %v", y6.Data)
	}
	// Backward masks out clipped regions.
	dy, _ := tensor.FromSlice([]float32{1, 1, 1}, 3)
	dx, err := r6.Backward(x6, dy)
	if err != nil {
		t.Fatal(err)
	}
	if dx.Data[0] != 0 || dx.Data[1] != 1 || dx.Data[2] != 0 {
		t.Errorf("ReLU6 backward = %v", dx.Data)
	}
	if len(r.Params()) != 0 {
		t.Error("ReLU should have no params")
	}
	if c, _ := r.Cost(nil); c != 0 {
		t.Error("ReLU cost should be 0")
	}
}

func TestSoftmax(t *testing.T) {
	s := NewSoftmax("sm")
	x, _ := tensor.FromSlice([]float32{1, 2, 3}, 3)
	y, err := s.Forward([]*tensor.Tensor{x})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range y.Data {
		if v <= 0 || v >= 1 {
			t.Errorf("softmax value out of (0,1): %v", v)
		}
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("softmax sum = %v", sum)
	}
	if !(y.Data[2] > y.Data[1] && y.Data[1] > y.Data[0]) {
		t.Error("softmax should preserve order")
	}
	// Large inputs must not overflow (stability).
	big, _ := tensor.FromSlice([]float32{1000, 1001}, 2)
	yb, err := s.Forward([]*tensor.Tensor{big})
	if err != nil {
		t.Fatal(err)
	}
	if !yb.AllFinite() {
		t.Error("softmax overflowed on large inputs")
	}
}

func TestFlatten(t *testing.T) {
	f := NewFlatten("flat")
	x := tensor.MustNew(2, 3, 4)
	y, err := f.Forward([]*tensor.Tensor{x})
	if err != nil {
		t.Fatal(err)
	}
	if y.Rank() != 1 || y.Size() != 24 {
		t.Errorf("flatten out = %v", y.Shape())
	}
	out, err := f.OutShape([][]int{{2, 3, 4}})
	if err != nil || out[0] != 24 {
		t.Errorf("OutShape = %v, %v", out, err)
	}
	dy := tensor.MustNew(24)
	dx, err := f.Backward(x, dy)
	if err != nil {
		t.Fatal(err)
	}
	if dx.Rank() != 3 {
		t.Errorf("flatten backward rank = %d", dx.Rank())
	}
}

// naiveConv is an independent direct convolution used as the reference for
// the im2col-based Conv2D.
func naiveConv(x *tensor.Tensor, w, b []float32, kh, kw, inC, outC, stride, pad int) *tensor.Tensor {
	h, wd := x.Dim(0), x.Dim(1)
	oh := tensor.ConvOutDim(h, kh, stride, pad)
	ow := tensor.ConvOutDim(wd, kw, stride, pad)
	out := tensor.MustNew(oh, ow, outC)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for oc := 0; oc < outC; oc++ {
				acc := float64(b[oc])
				for ky := 0; ky < kh; ky++ {
					for kx := 0; kx < kw; kx++ {
						iy, ix := oy*stride+ky-pad, ox*stride+kx-pad
						if iy < 0 || iy >= h || ix < 0 || ix >= wd {
							continue
						}
						for ic := 0; ic < inC; ic++ {
							wv := w[((ky*kw+kx)*inC+ic)*outC+oc]
							acc += float64(x.At(iy, ix, ic)) * float64(wv)
						}
					}
				}
				out.Set(float32(acc), oy, ox, oc)
			}
		}
	}
	return out
}

func TestConv2DMatchesNaive(t *testing.T) {
	for _, cfg := range []struct{ h, w, kh, kw, inC, outC, stride, pad int }{
		{6, 6, 3, 3, 2, 4, 1, 0},
		{6, 6, 3, 3, 2, 4, 1, 1},
		{8, 8, 5, 5, 1, 3, 2, 2},
		{5, 7, 1, 1, 3, 2, 1, 0},
		{7, 7, 3, 3, 4, 4, 2, 1},
	} {
		c, err := NewConv2D("c", cfg.kh, cfg.kw, cfg.inC, cfg.outC, cfg.stride, cfg.pad, rng(7))
		if err != nil {
			t.Fatal(err)
		}
		x := tensor.MustNew(cfg.h, cfg.w, cfg.inC)
		x.RandNormal(rng(8), 0, 1)
		got, err := c.Forward([]*tensor.Tensor{x})
		if err != nil {
			t.Fatal(err)
		}
		want := naiveConv(x, c.W.Data, c.B.Data, cfg.kh, cfg.kw, cfg.inC, cfg.outC, cfg.stride, cfg.pad)
		if !tensor.SameShape(got, want) {
			t.Fatalf("cfg %+v: shape %v vs %v", cfg, got.Shape(), want.Shape())
		}
		for i := range got.Data {
			if math.Abs(float64(got.Data[i]-want.Data[i])) > 1e-3 {
				t.Fatalf("cfg %+v: elem %d: %v vs %v", cfg, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestConv2DValidation(t *testing.T) {
	if _, err := NewConv2D("c", 3, 3, 0, 4, 1, 0, rng(1)); err == nil {
		t.Error("zero channels should error")
	}
	c, _ := NewConv2D("c", 3, 3, 2, 4, 1, 0, rng(1))
	if _, err := c.Forward([]*tensor.Tensor{tensor.MustNew(6, 6, 3)}); err == nil {
		t.Error("channel mismatch should error")
	}
	if _, err := c.OutShape([][]int{{2, 2, 2}}); err == nil {
		t.Error("kernel larger than input should error")
	}
	cost, err := c.Cost([][]int{{6, 6, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if cost != 4*4*4*3*3*2 {
		t.Errorf("Cost = %d", cost)
	}
}

func TestConv2DBackwardNumerical(t *testing.T) {
	c, _ := NewConv2D("c", 3, 3, 2, 3, 1, 1, rng(9))
	x := tensor.MustNew(5, 5, 2)
	x.RandNormal(rng(10), 0, 1)
	checkGradients(t, c, x)
}

func TestDepthwiseConvKnown(t *testing.T) {
	d, err := NewDepthwiseConv2D("dw", 3, 3, 2, 1, 1, rng(11))
	if err != nil {
		t.Fatal(err)
	}
	// Identity kernel per channel: only center tap = 1.
	d.W.Zero()
	d.W.Set(1, 1, 1, 0)
	d.W.Set(1, 1, 1, 1)
	d.B.Zero()
	x := tensor.MustNew(4, 4, 2)
	x.RandNormal(rng(12), 0, 1)
	y, err := d.Forward([]*tensor.Tensor{x})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x.Data {
		if math.Abs(float64(y.Data[i]-x.Data[i])) > 1e-6 {
			t.Fatalf("identity depthwise failed at %d", i)
		}
	}
	cost, err := d.Cost([][]int{{4, 4, 2}})
	if err != nil || cost != 4*4*2*9 {
		t.Errorf("Cost = %d, err %v", cost, err)
	}
	if _, err := d.OutShape([][]int{{4, 4, 3}}); err == nil {
		t.Error("channel mismatch should error")
	}
}

func TestMaxPool(t *testing.T) {
	p, err := NewMaxPool2D("mp", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := tensor.FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 4, 4, 1)
	y, err := p.Forward([]*tensor.Tensor{x})
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{6, 8, 14, 16}
	for i, v := range want {
		if y.Data[i] != v {
			t.Errorf("maxpool[%d] = %v, want %v", i, y.Data[i], v)
		}
	}
}

func TestAvgPool(t *testing.T) {
	p, _ := NewAvgPool2D("ap", 2, 2)
	x, _ := tensor.FromSlice([]float32{1, 3, 5, 7}, 2, 2, 1)
	y, err := p.Forward([]*tensor.Tensor{x})
	if err != nil {
		t.Fatal(err)
	}
	if y.Data[0] != 4 {
		t.Errorf("avgpool = %v, want 4", y.Data[0])
	}
}

func TestPoolValidation(t *testing.T) {
	if _, err := NewMaxPool2D("p", 0, 1); err == nil {
		t.Error("zero size should error")
	}
	p, _ := NewMaxPool2D("p", 2, 2)
	if _, err := p.OutShape([][]int{{4, 4}}); err == nil {
		t.Error("rank-2 input should error")
	}
	if _, err := p.OutShape([][]int{{1, 1, 3}}); err == nil {
		t.Error("window larger than input should error")
	}
}

func TestMaxPoolBackwardRoutesToArgmax(t *testing.T) {
	p, _ := NewMaxPool2D("p", 2, 2)
	x, _ := tensor.FromSlice([]float32{1, 9, 3, 4}, 2, 2, 1)
	dy, _ := tensor.FromSlice([]float32{5}, 1, 1, 1)
	dx, err := p.Backward(x, dy)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{0, 5, 0, 0}
	for i, v := range want {
		if dx.Data[i] != v {
			t.Errorf("dx[%d] = %v, want %v", i, dx.Data[i], v)
		}
	}
}

func TestAvgPoolBackwardSpreads(t *testing.T) {
	p, _ := NewAvgPool2D("p", 2, 2)
	x := tensor.MustNew(2, 2, 1)
	dy, _ := tensor.FromSlice([]float32{4}, 1, 1, 1)
	dx, err := p.Backward(x, dy)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dx.Data {
		if dx.Data[i] != 1 {
			t.Errorf("dx[%d] = %v, want 1", i, dx.Data[i])
		}
	}
}

func TestGlobalAvgPool(t *testing.T) {
	g := NewGlobalAvgPool("gap")
	x, _ := tensor.FromSlice([]float32{1, 10, 3, 20, 5, 30, 7, 40}, 2, 2, 2)
	y, err := g.Forward([]*tensor.Tensor{x})
	if err != nil {
		t.Fatal(err)
	}
	if y.Data[0] != 4 || y.Data[1] != 25 {
		t.Errorf("gap = %v, want [4 25]", y.Data)
	}
	if _, err := g.Forward([]*tensor.Tensor{tensor.MustNew(4)}); err == nil {
		t.Error("rank-1 input should error")
	}
}

func TestBatchNorm(t *testing.T) {
	b, err := NewBatchNorm("bn", 2, rng(13))
	if err != nil {
		t.Fatal(err)
	}
	// Force known statistics: y = 2*(x-1)/sqrt(4+eps) + 3.
	copy(b.Gamma.Data, []float32{2, 1})
	copy(b.Beta.Data, []float32{3, 0})
	copy(b.Mean.Data, []float32{1, 0})
	copy(b.Var.Data, []float32{4, 1})
	b.Eps = 0
	x, _ := tensor.FromSlice([]float32{5, 7}, 1, 1, 2)
	y, err := b.Forward([]*tensor.Tensor{x})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(y.Data[0]-7)) > 1e-5 { // 2*(5-1)/2+3 = 7
		t.Errorf("bn[0] = %v, want 7", y.Data[0])
	}
	if math.Abs(float64(y.Data[1]-7)) > 1e-5 { // 1*(7-0)/1+0 = 7
		t.Errorf("bn[1] = %v, want 7", y.Data[1])
	}
	if len(b.Params()) != 4 || NumParams(b) != 8 {
		t.Errorf("bn params = %d tensors, %d values", len(b.Params()), NumParams(b))
	}
	if _, err := b.OutShape([][]int{{2, 2, 3}}); err == nil {
		t.Error("channel mismatch should error")
	}
	if _, err := NewBatchNorm("bn", 0, rng(1)); err == nil {
		t.Error("zero channels should error")
	}
}

func TestAdd(t *testing.T) {
	a := NewAdd("add")
	x, _ := tensor.FromSlice([]float32{1, 2}, 2)
	y, _ := tensor.FromSlice([]float32{10, 20}, 2)
	z, err := a.Forward([]*tensor.Tensor{x, y})
	if err != nil {
		t.Fatal(err)
	}
	if z.Data[0] != 11 || z.Data[1] != 22 {
		t.Errorf("add = %v", z.Data)
	}
	if _, err := a.Forward([]*tensor.Tensor{x}); err == nil {
		t.Error("single input should error")
	}
	if _, err := a.Forward([]*tensor.Tensor{x, tensor.MustNew(3)}); err == nil {
		t.Error("shape mismatch should error")
	}
	if _, err := a.OutShape([][]int{{2}, {3}}); err == nil {
		t.Error("OutShape mismatch should error")
	}
	if s, err := a.OutShape([][]int{{2}, {2}}); err != nil || s[0] != 2 {
		t.Errorf("OutShape = %v, %v", s, err)
	}
}

func TestConcat(t *testing.T) {
	c := NewConcat("cat")
	x := tensor.MustNew(2, 2, 1)
	x.Fill(1)
	y := tensor.MustNew(2, 2, 2)
	y.Fill(2)
	z, err := c.Forward([]*tensor.Tensor{x, y})
	if err != nil {
		t.Fatal(err)
	}
	if z.Dim(2) != 3 {
		t.Fatalf("concat channels = %d", z.Dim(2))
	}
	// Every pixel should be [1, 2, 2].
	for p := 0; p < 4; p++ {
		if z.Data[p*3] != 1 || z.Data[p*3+1] != 2 || z.Data[p*3+2] != 2 {
			t.Fatalf("pixel %d = %v", p, z.Data[p*3:p*3+3])
		}
	}
	if _, err := c.Forward([]*tensor.Tensor{x, tensor.MustNew(3, 3, 1)}); err == nil {
		t.Error("spatial mismatch should error")
	}
	if _, err := c.OutShape([][]int{{2, 2, 1}}); err == nil {
		t.Error("single input should error")
	}
}

func TestWeightStreamRoundTrip(t *testing.T) {
	d, _ := NewDense("fc", 3, 2, rng(14))
	w := WeightStream(d)
	if len(w) != 8 { // 6 weights + 2 bias
		t.Fatalf("stream length = %d", len(w))
	}
	mod := make([]float64, len(w))
	for i := range mod {
		mod[i] = float64(i)
	}
	if err := SetWeightStream(d, mod); err != nil {
		t.Fatal(err)
	}
	got := WeightStream(d)
	for i := range got {
		if got[i] != float64(i) {
			t.Errorf("stream[%d] = %v", i, got[i])
		}
	}
	if err := SetWeightStream(d, mod[:3]); err == nil {
		t.Error("short stream should error")
	}
}

// checkGradients verifies Backward against central finite differences for
// both input and parameter gradients, using a scalar loss L = sum(y).
func checkGradients(t *testing.T, l Backprop, x *tensor.Tensor) {
	t.Helper()
	forwardSum := func() float64 {
		y, err := l.Forward([]*tensor.Tensor{x})
		if err != nil {
			t.Fatal(err)
		}
		var s float64
		for _, v := range y.Data {
			s += float64(v)
		}
		return s
	}
	y, err := l.Forward([]*tensor.Tensor{x})
	if err != nil {
		t.Fatal(err)
	}
	dy := tensor.MustNew(y.Shape()...)
	dy.Fill(1)
	l.ZeroGrads()
	dx, err := l.Backward(x, dy)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-2
	const tol = 2e-2
	// Input gradient.
	for i := 0; i < x.Size(); i += 1 + x.Size()/16 {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		up := forwardSum()
		x.Data[i] = orig - eps
		down := forwardSum()
		x.Data[i] = orig
		num := (up - down) / (2 * eps)
		if math.Abs(num-float64(dx.Data[i])) > tol*(1+math.Abs(num)) {
			t.Errorf("dx[%d]: numerical %v vs analytic %v", i, num, dx.Data[i])
		}
	}
	// Parameter gradients.
	params, grads := l.Params(), l.Grads()
	for pi := range params {
		p, g := params[pi].T, grads[pi].T
		for i := 0; i < p.Size(); i += 1 + p.Size()/16 {
			orig := p.Data[i]
			p.Data[i] = orig + eps
			up := forwardSum()
			p.Data[i] = orig - eps
			down := forwardSum()
			p.Data[i] = orig
			num := (up - down) / (2 * eps)
			if math.Abs(num-float64(g.Data[i])) > tol*(1+math.Abs(num)) {
				t.Errorf("param %q grad[%d]: numerical %v vs analytic %v", params[pi].Name, i, num, g.Data[i])
			}
		}
	}
}
