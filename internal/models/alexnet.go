package models

// AlexNet builds an AlexNet-class network for 227x227x3 inputs totalling
// 24.57M parameters (Table I reports 24,000k with dense_2 at ~70%).
//
// The five convolutional stages follow the original geometry; conv_4 is
// halved to 192 filters, emulating the parameter count of the original's
// grouped convolutions (which split channels across two GPUs), and the
// final 6x6 feature map is average-pooled before dense_1 so the classifier
// head matches the paper's reported 24M total — the stock two-column
// AlexNet would be 60M. dense_2 (4096x4096 = 16.78M, 68% of the total) is
// the compression target.
func AlexNet(seed int64) (*Model, error) {
	b := newGraphBuilder(seed)
	b.conv("conv_1", 11, 11, 3, 96, 4, 0) // 55x55x96
	b.relu("conv_1_relu")
	b.maxpool("pool_1", 3, 2) // 27x27x96
	b.conv("conv_2", 5, 5, 96, 256, 1, 2)
	b.relu("conv_2_relu")
	b.maxpool("pool_2", 3, 2) // 13x13x256
	b.conv("conv_3", 3, 3, 256, 384, 1, 1)
	b.relu("conv_3_relu")
	b.conv("conv_4", 3, 3, 384, 192, 1, 1)
	b.relu("conv_4_relu")
	b.conv("conv_5", 3, 3, 192, 256, 1, 1)
	b.relu("conv_5_relu")
	b.maxpool("pool_5", 3, 2) // 6x6x256
	b.avgpool("pool_6", 6, 6) // 1x1x256
	b.flatten("flatten")
	b.dense("dense_1", 256, 4096)
	b.relu("dense_1_relu")
	b.dense("dense_2", 4096, 4096)
	b.relu("dense_2_relu")
	b.dense("dense_3", 4096, 1000)
	b.softmax("softmax")
	m, err := b.finish(Info{
		Name:          "AlexNet",
		InputShape:    []int{227, 227, 3},
		SelectedLayer: "dense_2",
		SelectedKind:  "FC",
		PaperParamsK:  24000,
		PaperFraction: 0.70,
		Classes:       1000,
	})
	if err != nil {
		return nil, err
	}
	// Calibrated against Table II: amplitude 2*5.29 sigma gives AlexNet's
	// steep CR curve (1.21 -> ~10x over delta 0..20%); sigma ~ 3.7e-3
	// lands the MSE near the paper's 1e-6 order.
	if err := retouchSelected(m, seed, 0.0037, 5.29); err != nil {
		return nil, err
	}
	return m, nil
}
