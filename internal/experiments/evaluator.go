package experiments

import (
	"context"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/tensor"
	"repro/internal/train"
)

// evaluator measures the accuracy of a model configuration. LeNet-5 is
// trained for real on the synthetic digit set and measured with genuine
// top-1 accuracy (the paper also uses top-1 for LeNet); the large models,
// which cannot be trained offline, are measured with top-5 fidelity
// against the original network over a fixed probe set (see DESIGN.md).
// For delta sweeps that only modify the selected layer, the prefix
// activations are cached so only the network suffix re-runs.
type evaluator struct {
	m       *models.Model
	isTop1  bool
	workers int             // sample-level sharding bound for batch evaluation
	ctx     context.Context // bounds the recache fan-out

	// top-1 path (LeNet).
	testSet []dataset.Sample

	// fidelity path (large models).
	fid    *train.Fidelity
	probes []*tensor.Tensor
	acts   []map[string]*tensor.Tensor
}

// newEvaluator prepares the accuracy measurement for a model. For LeNet-5
// this trains the network (mutating its weights to genuinely trained
// values); for other models it records the fidelity reference and caches
// prefix activations.
func newEvaluator(m *models.Model, opts Options) (*evaluator, error) {
	ev := &evaluator{m: m, isTop1: m.Name == "LeNet-5", workers: opts.workers(), ctx: opts.ctx()}
	if ev.isTop1 {
		samples, err := dataset.Digits(opts.TrainSamples, opts.Seed)
		if err != nil {
			return nil, err
		}
		trainSet, testSet, err := dataset.Split(samples, 0.25)
		if err != nil {
			return nil, err
		}
		opt, err := train.NewSGD(0.05, 0.9)
		if err != nil {
			return nil, err
		}
		tr, err := train.NewTrainer(m.Graph, opt, 16)
		if err != nil {
			return nil, err
		}
		tr.LRDecay = 0.85
		if _, err := tr.Fit(trainSet, opts.TrainEpochs); err != nil {
			return nil, err
		}
		ev.testSet = testSet
		return ev, nil
	}
	shape := m.InputShape
	probes, err := dataset.SyntheticImages(opts.Probes, shape[0], shape[1], shape[2], opts.Seed^0x9e3779b9)
	if err != nil {
		return nil, err
	}
	ev.probes = probes
	ev.fid, err = train.NewFidelity(m.Graph, probes, 5)
	if err != nil {
		return nil, err
	}
	if err := ev.recache(); err != nil {
		return nil, err
	}
	return ev, nil
}

// recache recomputes and prunes the cached prefix activations, sharding
// the probes over the worker pool with one scratch Runner per chunk. The
// kept activations are cloned out of the Runner-owned buffers (the prune
// set is kilobytes, so the copies are cheap) and are therefore stable
// across later forwards.
func (ev *evaluator) recache() error {
	if ev.isTop1 {
		return nil
	}
	needed := ev.neededActivations()
	ev.acts = make([]map[string]*tensor.Tensor, len(ev.probes))
	workers := ev.workers
	if workers > len(ev.probes) {
		workers = len(ev.probes)
	}
	return parallel.ForEach(ev.ctx, workers, workers, func(_ context.Context, w int) error {
		lo, hi := chunkRange(len(ev.probes), workers, w)
		r := ev.m.Graph.WithScratch()
		for i := lo; i < hi; i++ {
			all, err := r.ForwardAll(ev.probes[i])
			if err != nil {
				return err
			}
			pruned := make(map[string]*tensor.Tensor, len(needed))
			for name := range needed {
				a, ok := all[name]
				if !ok {
					return fmt.Errorf("experiments: missing activation %q", name)
				}
				pruned[name] = a.Clone()
			}
			ev.acts[i] = pruned
		}
		return nil
	})
}

// chunkRange returns the half-open range [lo, hi) of chunk w out of
// `chunks` over n items.
func chunkRange(n, chunks, w int) (lo, hi int) {
	size := (n + chunks - 1) / chunks
	lo = w * size
	hi = min(lo+size, n)
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// neededActivations returns the node names whose activations the suffix
// (selected layer onward) reads from the prefix — keeping only these
// bounds the cache to kilobytes even for VGG-16.
func (ev *evaluator) neededActivations() map[string]bool {
	g := ev.m.Graph
	names := g.LayerNames()
	start := 0
	for i, n := range names {
		if n == ev.m.SelectedLayer {
			start = i
			break
		}
	}
	inSuffix := make(map[string]bool)
	for _, n := range names[start:] {
		inSuffix[n] = true
	}
	needed := make(map[string]bool)
	for _, n := range names[start:] {
		for _, in := range g.Inputs(n) {
			if !inSuffix[in] {
				needed[in] = true
			}
		}
	}
	return needed
}

// accuracy measures the current model configuration. Only the selected
// layer may differ from the last recache (or training) state; fidelity
// evaluation re-runs just the suffix. The fidelity measure is the
// continuous top-5 overlap: the untrained large models have tiny logit
// gaps, so the binary top-1-in-top-5 score collapses to 0/1 under small
// perturbations where real trained networks degrade smoothly (see
// DESIGN.md's accuracy-metric substitution).
func (ev *evaluator) accuracy(m *models.Model) (float64, error) {
	if ev.isTop1 {
		return train.AccuracyWorkers(m.Graph, ev.testSet, ev.workers)
	}
	return ev.fid.OverlapFromWorkers(m.Graph, ev.acts, m.SelectedLayer, ev.workers)
}

// fullAccuracy measures accuracy with complete forward passes — needed
// when layers other than the selected one changed and a recache is not
// wanted.
func (ev *evaluator) fullAccuracy(m *models.Model) (float64, error) {
	if ev.isTop1 {
		return train.AccuracyWorkers(m.Graph, ev.testSet, ev.workers)
	}
	return ev.fid.ScoreWorkers(m.Graph, ev.probes, ev.workers)
}

// fineAccuracy is fullAccuracy with the finer top-5 overlap metric for
// fidelity models — the sensitivity analysis needs sub-top-1 resolution.
func (ev *evaluator) fineAccuracy(m *models.Model) (float64, error) {
	if ev.isTop1 {
		return train.AccuracyWorkers(m.Graph, ev.testSet, ev.workers)
	}
	return ev.fid.OverlapWorkers(m.Graph, ev.probes, ev.workers)
}

// baseline returns the unmodified network's score: measured top-1 for
// LeNet, 1.0 by construction for fidelity.
func (ev *evaluator) baseline(m *models.Model) (float64, error) {
	if ev.isTop1 {
		return train.AccuracyWorkers(m.Graph, ev.testSet, ev.workers)
	}
	return 1.0, nil
}

// snapshotSelected copies the selected layer's current weight stream so a
// sweep can restore it.
func snapshotSelected(m *models.Model) ([]float64, error) {
	return m.SelectedWeights()
}

// layerParamTensors lists the perturbable layers of a graph (those with a
// weight tensor), for the sensitivity experiment.
func layerParamTensors(g *nn.Graph) []nn.Layer {
	var out []nn.Layer
	for _, l := range g.Layers() {
		switch l.Kind() {
		case "CONV", "DWCONV", "FC":
			if len(l.Params()) > 0 {
				out = append(out, l)
			}
		}
	}
	return out
}
