package baseline

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestHuffmanCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	weights := make([]byte, 4096)
	rng.Read(weights)
	cases := [][]byte{
		[]byte("abracadabra"),
		[]byte("the quick brown fox jumps over the lazy dog"),
		bytes.Repeat([]byte{42}, 1000), // single symbol
		{0},
		weights, // high-entropy stream
	}
	for _, data := range cases {
		enc, err := HuffmanEncode(data)
		if err != nil {
			t.Fatalf("encode %d bytes: %v", len(data), err)
		}
		dec, err := HuffmanDecode(enc)
		if err != nil {
			t.Fatalf("decode %d bytes: %v", len(enc), err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatalf("round trip mismatch for %d-byte input", len(data))
		}
	}
	if _, err := HuffmanEncode(nil); err == nil {
		t.Error("empty input accepted")
	}
}

// TestHuffmanCodecMatchesAccounting: the payload of the materialized
// stream must match HuffmanCompressedBits' analytic size.
func TestHuffmanCodecMatchesAccounting(t *testing.T) {
	data := []byte("abracadabra alakazam")
	enc, err := HuffmanEncode(data)
	if err != nil {
		t.Fatal(err)
	}
	bits, err := HuffmanCompressedBits(data)
	if err != nil {
		t.Fatal(err)
	}
	payloadBytes := len(enc) - huffHeaderBytes
	wantBytes := int((bits - HuffmanHeaderBits + 7) / 8)
	if payloadBytes != wantBytes {
		t.Errorf("payload %d bytes, accounting says %d", payloadBytes, wantBytes)
	}
}

func TestHuffmanDecodeRejectsCorruption(t *testing.T) {
	enc, err := HuffmanEncode([]byte("some perfectly ordinary data"))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"short":     enc[:huffHeaderBytes-1],
		"truncated": enc[:len(enc)-1],
	}
	over := append([]byte(nil), enc...)
	over[0], over[1] = 0xFF, 0xFF // count far beyond the payload
	cases["huge count"] = over
	tbl := append([]byte(nil), enc...)
	for i := 4; i < huffHeaderBytes; i++ {
		tbl[i] = 1 // 256 one-bit codes: Kraft-oversubscribed
	}
	cases["oversubscribed table"] = tbl
	zero := append([]byte(nil), enc...)
	for i := 4; i < huffHeaderBytes; i++ {
		zero[i] = 0 // no codes at all, yet count > 0
	}
	cases["empty table"] = zero
	long := append([]byte(nil), enc...)
	long[4] = 200 // code length beyond the 62-bit decoder bound
	cases["oversized length"] = long
	for name, c := range cases {
		if _, err := HuffmanDecode(c); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
