package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSegmentBoundsEmpty(t *testing.T) {
	if runs := SegmentBounds(nil, 0); runs != nil {
		t.Errorf("SegmentBounds(nil) = %v, want nil", runs)
	}
}

func TestSegmentBoundsSingle(t *testing.T) {
	runs := SegmentBounds([]float64{3.14}, 0)
	if len(runs) != 1 || runs[0] != (Run{Start: 0, Len: 1, Dir: DirNone}) {
		t.Errorf("single element runs = %v", runs)
	}
}

func TestSegmentBoundsMonotone(t *testing.T) {
	// Strictly increasing input is one DirUp segment at delta = 0.
	w := []float64{1, 2, 3, 4, 5}
	runs := SegmentBounds(w, 0)
	if len(runs) != 1 || runs[0].Dir != DirUp || runs[0].Len != 5 {
		t.Errorf("increasing runs = %v", runs)
	}
	// Strictly decreasing likewise.
	w = []float64{5, 4, 3, 2, 1}
	runs = SegmentBounds(w, 0)
	if len(runs) != 1 || runs[0].Dir != DirDown || runs[0].Len != 5 {
		t.Errorf("decreasing runs = %v", runs)
	}
}

func TestSegmentBoundsConstant(t *testing.T) {
	// Equal steps are tolerated at delta = 0 (|step| <= 0) and never set
	// the direction.
	runs := SegmentBounds([]float64{2, 2, 2, 2}, 0)
	if len(runs) != 1 || runs[0].Dir != DirNone {
		t.Errorf("constant runs = %v", runs)
	}
}

func TestSegmentBoundsDirectionChange(t *testing.T) {
	// Up then down must split exactly at the peak.
	w := []float64{0, 1, 2, 1, 0}
	runs := SegmentBounds(w, 0)
	if len(runs) != 2 {
		t.Fatalf("runs = %v, want 2", runs)
	}
	if runs[0] != (Run{Start: 0, Len: 3, Dir: DirUp}) {
		t.Errorf("first run = %v", runs[0])
	}
	if runs[1] != (Run{Start: 3, Len: 2, Dir: DirDown}) {
		t.Errorf("second run = %v", runs[1])
	}
}

// TestSegmentBoundsWorstCase reproduces Fig. 5: a pair-by-pair inversely
// monotonic sawtooth. With the strict criterion (delta = 0) the number of
// segments is n/2 (CR = 1 with 2-word segments); with delta at least the
// tooth amplitude the whole succession collapses into one cluster.
func TestSegmentBoundsWorstCase(t *testing.T) {
	n := 16
	w := make([]float64, n)
	for i := range w {
		if i%2 == 1 {
			w[i] = 1
		}
	}
	strict := SegmentBounds(w, 0)
	if len(strict) != n/2 {
		t.Errorf("strict sawtooth segments = %d, want %d", len(strict), n/2)
	}
	weak := SegmentBounds(w, 1.0)
	if len(weak) != 1 {
		t.Errorf("weak sawtooth segments = %d, want 1", len(weak))
	}
	if weak[0].Dir != DirNone {
		t.Errorf("weak sawtooth dir = %v, want none", weak[0].Dir)
	}
}

func TestSegmentBoundsToleranceGrowsRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	w := make([]float64, 4096)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	prev := len(SegmentBounds(w, 0))
	for _, delta := range []float64{0.1, 0.5, 1, 2, 4} {
		cur := len(SegmentBounds(w, delta))
		if cur > prev {
			t.Errorf("delta %v: segments grew from %d to %d", delta, prev, cur)
		}
		prev = cur
	}
}

// TestSegmentBoundsCoverage is the fundamental partition invariant: runs
// cover the input exactly once, in order, with positive lengths.
func TestSegmentBoundsCoverage(t *testing.T) {
	f := func(raw []float64, dRaw uint8) bool {
		w := sanitize(raw)
		if len(w) == 0 {
			return true
		}
		delta := float64(dRaw) / 64
		runs := SegmentBounds(w, delta)
		pos := 0
		for _, r := range runs {
			if r.Start != pos || r.Len <= 0 {
				return false
			}
			pos += r.Len
		}
		return pos == len(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestSegmentBoundsRunsAreWeaklyMonotonic checks Eq. 1 holds inside every
// produced run.
func TestSegmentBoundsRunsAreWeaklyMonotonic(t *testing.T) {
	f := func(raw []float64, dRaw uint8) bool {
		w := sanitize(raw)
		if len(w) == 0 {
			return true
		}
		delta := float64(dRaw) / 64
		for _, r := range SegmentBounds(w, delta) {
			if !IsWeaklyMonotonic(w[r.Start:r.Start+r.Len], delta, r.Dir) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestSegmentBoundsGreedyMaximal checks that each break is necessary: the
// first element of run k+1 cannot extend run k without violating run k's
// direction.
func TestSegmentBoundsGreedyMaximal(t *testing.T) {
	f := func(raw []float64, dRaw uint8) bool {
		w := sanitize(raw)
		if len(w) == 0 {
			return true
		}
		delta := float64(dRaw) / 64
		runs := SegmentBounds(w, delta)
		for i := 0; i+1 < len(runs); i++ {
			end := runs[i].Start + runs[i].Len
			extended := w[runs[i].Start : end+1]
			if IsWeaklyMonotonic(extended, delta, runs[i].Dir) {
				return false // the break was unnecessary
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestIsWeaklyMonotonic(t *testing.T) {
	cases := []struct {
		w     []float64
		delta float64
		dir   Direction
		want  bool
	}{
		{[]float64{1, 2, 3}, 0, DirUp, true},
		{[]float64{1, 2, 3}, 0, DirDown, false},
		{[]float64{3, 2, 1}, 0, DirDown, true},
		{[]float64{1, 0.9, 2}, 0.1, DirUp, true},  // dip within tolerance
		{[]float64{1, 0.8, 2}, 0.1, DirUp, false}, // dip exceeds tolerance
		{[]float64{1, 1.05, 0.96}, 0.1, DirNone, true},
		{[]float64{1, 1.2, 0.95}, 0.1, DirNone, false},
		{nil, 0, DirUp, true},
		{[]float64{5}, 0, DirDown, true},
	}
	for i, c := range cases {
		if got := IsWeaklyMonotonic(c.w, c.delta, c.dir); got != c.want {
			t.Errorf("case %d: IsWeaklyMonotonic(%v, %v, %v) = %v, want %v",
				i, c.w, c.delta, c.dir, got, c.want)
		}
	}
}

func TestSegmentLengthHistogram(t *testing.T) {
	runs := []Run{{Len: 1}, {Len: 2}, {Len: 2}, {Len: 9}}
	h := SegmentLengthHistogram(runs, 4)
	if h[1] != 1 || h[2] != 2 || h[4] != 1 {
		t.Errorf("histogram = %v", h)
	}
	if got := SegmentLengthHistogram(nil, 0); len(got) != 2 {
		t.Errorf("degenerate histogram len = %d", len(got))
	}
}

func TestDirectionString(t *testing.T) {
	if DirUp.String() != "up" || DirDown.String() != "down" || DirNone.String() != "none" {
		t.Error("Direction.String mismatch")
	}
}

// TestAverageRunLengthRandomData validates the iid expectation used to
// calibrate the storage model: for high-entropy data the greedy weak
// monotone partition at delta = 0 has mean run length close to
// 2 + 2(e - 2.5) ~= 2.44.
func TestAverageRunLengthRandomData(t *testing.T) {
	rng := rand.New(rand.NewSource(2020))
	n := 200000
	w := make([]float64, n)
	for i := range w {
		w[i] = rng.Float64()
	}
	runs := SegmentBounds(w, 0)
	avg := float64(n) / float64(len(runs))
	want := 2 + 2*(math.E-2.5)
	if math.Abs(avg-want) > 0.05 {
		t.Errorf("avg run length = %.4f, want ~%.4f", avg, want)
	}
}

// sanitize filters NaN/Inf and clamps magnitude so property tests exercise
// realistic weight streams.
func sanitize(raw []float64) []float64 {
	out := make([]float64, 0, len(raw))
	for _, v := range raw {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if v > 1e6 {
			v = 1e6
		}
		if v < -1e6 {
			v = -1e6
		}
		out = append(out, v)
	}
	return out
}
