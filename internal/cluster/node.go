package cluster

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/obs"
)

// VersionPlan is one weight-version epoch: the full model's layer specs
// under that version's codec plan (version 1 is typically the raw
// model; later versions are compressed plans). Nodes simulate only
// their shard's slice.
type VersionPlan struct {
	Version int
	Level   float64 // codec plan parameter (e.g. compression tolerance %)
	Specs   []accel.LayerSpec
}

// inferArgs / inferReply are the inference RPC payload. The reply
// piggybacks the node's committed-active version so the router learns
// rollout progress without a separate watch channel.
type inferArgs struct {
	Version int // weight version the request must be served with
	ReqID   int
}
type inferReply struct {
	Version      int  // version actually used (== args.Version on success)
	Active       int  // node's committed-active version (router gossip)
	ServiceTicks Tick // service time the shard simulation cost out
}

// probeReply is the health/status RPC payload.
type probeReply struct {
	Active int
	Staged []int
	Leader int
	Term   uint64
}

// Node is one simulated accelerator server: a Raft member plus a weight
// store and an inference service. The underlying accel.Simulator runs
// the node's model shard once per staged version to cost out its
// service time; requests then occupy the node's (single) serving
// pipeline for that long, which is where queueing delay — and the p99
// tail under failures — comes from.
type Node struct {
	c     *Cluster
	ep    *Endpoint
	raft  *Raft
	id    int
	shard int
	sim   *accel.Simulator

	// Weight store ("disk"): staged versions and the committed-active
	// one. Survives Crash/Restart like the Raft log.
	staged map[int]Tick // version -> per-request service ticks
	active int          // serving default; requests may also target any staged version
	maxVer int          // highest version ever staged (stats)

	busyUntil Tick // serving pipeline occupancy

	served map[int]uint64 // per-version served count (stats)
}

// newNode wires a node's endpoint, Raft instance, and RPC handlers.
func newNode(c *Cluster, id, shard int, peers []int) (*Node, error) {
	sim, err := accel.NewSimulator(c.spec.Accel)
	if err != nil {
		return nil, err
	}
	sim.SetWorkers(c.spec.SimWorkers)
	n := &Node{
		c: c, id: id, shard: shard, sim: sim,
		staged: map[int]Tick{},
		served: map[int]uint64{},
	}
	n.ep = NewEndpoint(c.fabric, id)
	n.raft = newRaft(n.ep, peers, n.applyCommand, n.onLeadership)
	n.ep.Handle("Node.Infer", n.handleInfer)
	n.ep.Handle("Node.Probe", n.handleProbe)
	n.ep.Handle("Sched.Propose", n.handlePropose)
	return n, nil
}

// stage simulates the node's shard under plan and records its service
// time. Idempotent: re-staging a version is a no-op.
func (n *Node) stage(plan VersionPlan) error {
	if _, ok := n.staged[plan.Version]; ok {
		return nil
	}
	ticks, err := n.c.shardServiceTicks(n.sim, plan, n.shard)
	if err != nil {
		return err
	}
	n.staged[plan.Version] = ticks
	if plan.Version > n.maxVer {
		n.maxVer = plan.Version
	}
	return nil
}

// applyCommand is the Raft apply hook: the weight-rollout state
// machine. Stage builds the version; activate flips serving to it. The
// previous version's weights are retained, so in-flight requests
// targeted at the old epoch still complete consistently.
func (n *Node) applyCommand(now Tick, index int, cmd Command) {
	switch cmd.Kind {
	case "stage":
		plan, ok := n.c.planByVersion(cmd.Version)
		if !ok {
			return // unknown version: nothing to build
		}
		if err := n.stage(plan); err != nil {
			// A node that cannot build the plan keeps serving its active
			// version; it simply never acks the new epoch.
			return
		}
		n.c.observeStage(now, n.id, cmd.Version)
		// The leader that applies a stage drives the epoch forward:
		// propose the matching activation. Followers do nothing — if the
		// leader dies here, the next leader's onLeadership resumes.
		if n.raft.IsLeader() {
			n.proposeActivateIfPending(now)
		}
	case "activate":
		if _, ok := n.staged[cmd.Version]; !ok {
			// Commit implies a quorum staged it, but this node may have
			// missed the plan (e.g. rebuilt log after restart): build now.
			if plan, ok := n.c.planByVersion(cmd.Version); ok {
				if err := n.stage(plan); err != nil {
					return
				}
			} else {
				return
			}
		}
		if cmd.Version > n.active {
			n.active = cmd.Version
			n.c.observeActivate(now, n.id, cmd.Version)
		}
	}
}

// onLeadership resumes an interrupted rollout: a new leader whose
// applied state has a staged-but-unactivated version proposes the
// activation — the "complete" half of complete-or-roll-back. (The
// roll-back half needs no code: a stage entry that never reached a
// quorum dies with the old leader's log.)
func (n *Node) onLeadership(now Tick) {
	n.c.observeLeader(now, n.id)
	n.proposeActivateIfPending(now)
}

// proposeActivateIfPending proposes activation of the highest staged
// version above the node's active one, if the log does not already
// carry that activation.
func (n *Node) proposeActivateIfPending(now Tick) {
	pending := -1
	for v := range n.staged {
		if v > n.active && v > pending {
			pending = v
		}
	}
	if pending < 0 {
		return
	}
	for _, e := range n.raft.log {
		if e.Cmd.Kind == "activate" && e.Cmd.Version == pending {
			return // already proposed (possibly not yet committed)
		}
	}
	n.raft.Propose(now, Command{Kind: "activate", Version: pending})
}

// handleInfer serves one shard sub-request at the requested weight
// version. The version gate is the mixed-version firewall: a node never
// substitutes a different version — it either serves exactly what the
// router asked for or refuses, and the router then fails over or
// degrades the whole request to one consistent older epoch.
func (n *Node) handleInfer(now Tick, _ int, arg any) (any, Tick, error) {
	a := arg.(inferArgs)
	ticks, ok := n.staged[a.Version]
	if !ok {
		return nil, 0, fmt.Errorf("node %d: version %d not staged (active %d)", n.id, a.Version, n.active)
	}
	start := now
	if n.busyUntil > start {
		start = n.busyUntil
	}
	n.busyUntil = start + ticks
	n.served[a.Version]++
	if m := n.c.obsv.M(); m != nil {
		m.Counter(fmt.Sprintf("cluster_node%d_served_total", n.id)).Inc()
		m.Histogram("cluster_node_queue_ticks", obs.Pow2Buckets(32)).Observe(start - now)
	}
	return inferReply{Version: a.Version, Active: n.active, ServiceTicks: ticks}, n.busyUntil - now, nil
}

// handleProbe reports the node's health and rollout state.
func (n *Node) handleProbe(Tick, int, any) (any, Tick, error) {
	staged := make([]int, 0, len(n.staged))
	for v := range n.staged {
		staged = append(staged, v)
	}
	// Sort for determinism of anything that formats the reply.
	for i := 1; i < len(staged); i++ {
		for j := i; j > 0 && staged[j] < staged[j-1]; j-- {
			staged[j], staged[j-1] = staged[j-1], staged[j]
		}
	}
	return probeReply{Active: n.active, Staged: staged, Leader: n.raft.Leader(), Term: n.raft.Term()}, 0, nil
}

// handlePropose is the scheduler's client-facing entry: the rollout
// controller submits a command here; only the leader accepts it.
func (n *Node) handlePropose(now Tick, _ int, arg any) (any, Tick, error) {
	cmd := arg.(Command)
	if _, isLeader := n.raft.Propose(now, cmd); !isLeader {
		return nil, 0, fmt.Errorf("node %d: not leader (hint %d)", n.id, n.raft.Leader())
	}
	return n.id, 0, nil
}

// restart re-arms a restarted node's Raft timers. The weight store and
// log survived the crash; volatile serving state did not.
func (n *Node) restart(now Tick) {
	n.busyUntil = 0
	n.raft.restart(now)
}
