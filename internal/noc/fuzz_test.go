package noc

import (
	"reflect"
	"testing"

	"repro/internal/faults"
)

// FuzzEventCore decodes the fuzz input into a mesh shape plus a traffic
// schedule (interleaved injections and step batches) and runs it on the
// event core and the stepping core side by side, requiring identical
// Stats, per-router heatmaps, and delivery streams. This is the
// adversarial counterpart to the hand-written differential tests: the
// fuzzer owns the schedule, so any reachable wake/ordering hole in the
// event calendar shows up as a divergence, not a guess.
func FuzzEventCore(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x13, 0x01, 0x0f, 0x04, 0x02, 0x20, 0x05, 0x00, 0x07})
	f.Add([]byte{0xff, 0x81, 0x42, 0x10, 0x33, 0x64, 0x03, 0x11, 0x2a, 0x2a, 0x2a})
	f.Add([]byte{0x27, 0x00, 0x00, 0x90, 0x90, 0x90, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06})
	f.Fuzz(func(t *testing.T, data []byte) {
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}

		shape := next()
		widths := []int{2, 3, 4, 8}
		heights := []int{2, 3, 4}
		cfg := Config{
			Width:           widths[int(shape)&3],
			Height:          heights[int(shape>>2)%3],
			BufferDepth:     1 + int(shape>>4)&3,
			FlitBits:        64,
			MaxPacketFlit:   16,
			VirtualChannels: 1 + int(shape>>6)&3,
		}
		mode := next()
		cfg.Routing = []Routing{RoutingXY, RoutingYX, RoutingWestFirst}[int(mode)%3]
		if mode&0x04 != 0 {
			cfg.Faults = faults.Model{Seed: int64(mode), LinkFlitRate: 0.05}
			cfg.MaxRetries = 2
		}
		if mode&0x08 != 0 {
			// One dead link on a fixed edge; reroute or unroutable kills.
			cfg.Faults.DeadLinks = append(cfg.Faults.DeadLinks, faults.Link{From: 0, To: 1})
		}
		nodes := cfg.Width * cfg.Height

		evCfg, stCfg := cfg, cfg
		evCfg.Core = CoreEvent
		stCfg.Core = CoreStep
		ev, err := New(evCfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := New(stCfg)
		if err != nil {
			t.Fatal(err)
		}
		var evDel, stDel []Delivery
		ev.SetSink(func(d Delivery) { evDel = append(evDel, d) })
		st.SetSink(func(d Delivery) { stDel = append(stDel, d) })

		check := func() {
			if es, ss := ev.Stats(), st.Stats(); es != ss {
				t.Fatalf("stats diverge at cycle %d:\nevent %+v\nstep  %+v", ev.Cycle(), es, ss)
			}
			if ev.Idle() != st.Idle() {
				t.Fatalf("idleness diverges at cycle %d", ev.Cycle())
			}
		}

		// Schedule: each opcode byte either injects a packet or advances
		// both networks a few cycles. Bounded totals keep the fuzz fast.
		steps := 0
		for len(data) > 0 && steps < 3000 {
			op := next()
			if op&1 == 0 {
				src := int(next()) % nodes
				dst := int(next()) % nodes
				if dst == src {
					dst = (src + 1) % nodes
				}
				flits := 1 + int(next())%16
				evErr := ev.Inject(Packet{Src: src, Dst: dst, Flits: flits})
				stErr := st.Inject(Packet{Src: src, Dst: dst, Flits: flits})
				if (evErr == nil) != (stErr == nil) {
					t.Fatalf("inject divergence: %v vs %v", evErr, stErr)
				}
			} else {
				n := 1 + int(op>>1)&15
				for i := 0; i < n; i++ {
					ev.Step()
					st.Step()
					steps++
				}
				check()
			}
		}
		// Drain whatever is left and do the full comparison.
		for i := 0; i < 200_000 && !(ev.Idle() && st.Idle()); i++ {
			ev.Step()
			st.Step()
		}
		check()
		if evH, stH := ev.PerRouterTraversals(), st.PerRouterTraversals(); !reflect.DeepEqual(evH, stH) {
			t.Fatalf("heatmaps diverge:\nevent %v\nstep  %v", evH, stH)
		}
		if !reflect.DeepEqual(evDel, stDel) {
			t.Fatalf("delivery streams diverge: event %d, step %d", len(evDel), len(stDel))
		}
	})
}
