package experiments

import "testing"

func TestOverlapSweepDeterministic(t *testing.T) {
	assertDeterministic(t, OverlapSweep, FastOptions())
}

// TestOverlapSweepProperties checks the sweep's structural invariants on
// the fast grid: serial rows define the baseline (speedup exactly 1, no
// decode stalls), streaming rows never lose to serial, and the tile pass
// never loses to plain overlap.
func TestOverlapSweepProperties(t *testing.T) {
	pts, err := OverlapSweep(FastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("empty sweep")
	}
	byMode := func(model string, delta float64, mode string) *OverlapPoint {
		for i := range pts {
			p := &pts[i]
			if p.Model == model && p.Delta == delta && p.Mode == mode {
				return p
			}
		}
		t.Fatalf("missing point %s delta=%v mode=%s", model, delta, mode)
		return nil
	}
	for _, p := range pts {
		if p.Mode != "serial" {
			continue
		}
		if p.Speedup != 1 {
			t.Errorf("%s delta=%v serial: speedup %v != 1", p.Model, p.Delta, p.Speedup)
		}
		if p.DecodeStall != 0 {
			t.Errorf("%s delta=%v serial: %d decode-stall cycles", p.Model, p.Delta, p.DecodeStall)
		}
		ov := byMode(p.Model, p.Delta, "overlap")
		if ov.Cycles > p.Cycles {
			t.Errorf("%s delta=%v: overlap %d cycles > serial %d", p.Model, p.Delta, ov.Cycles, p.Cycles)
		}
		tl := byMode(p.Model, p.Delta, "overlap+tile")
		if tl.Cycles > ov.Cycles {
			t.Errorf("%s delta=%v: overlap+tile %d cycles > overlap %d", p.Model, p.Delta, tl.Cycles, ov.Cycles)
		}
	}
}
