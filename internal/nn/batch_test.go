package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// testGraph builds a graph exercising every batched fast path (conv,
// dense, relu, softmax, flatten, pool, gap, dwconv) plus the fallback
// layers (batchnorm, add, concat, reshape) in one topology.
func testGraph(t *testing.T) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	g := NewGraph()
	must := func(l Layer, err error, inputs ...string) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Add(l, inputs...); err != nil {
			t.Fatal(err)
		}
	}
	c1, err := NewConv2D("c1", 3, 3, 3, 8, 1, 1, rng)
	must(c1, err)
	bn, err := NewBatchNorm("bn", 8, rng)
	must(bn, err)
	g.MustAdd(NewReLU6("r1"))
	dw, err := NewDepthwiseConv2D("dw", 3, 3, 8, 1, 1, rng)
	must(dw, err)
	c2, err := NewConv2D("c2", 1, 1, 8, 8, 1, 0, rng)
	must(c2, err)
	g.MustAdd(NewAdd("add"), "r1", "c2")
	p1, err := NewMaxPool2D("p1", 2, 2)
	must(p1, err)
	c3, err := NewConv2D("c3", 3, 3, 8, 4, 1, 1, rng)
	must(c3, err, "p1")
	p2, err := NewAvgPool2D("p2", 1, 1)
	must(p2, err, "p1")
	cc3, err := NewConv2D("cc3", 1, 1, 8, 4, 1, 0, rng)
	must(cc3, err, "p2")
	g.MustAdd(NewConcat("cat"), "c3", "cc3")
	rs, err := NewReshape("rs", 9, 1, 8)
	must(rs, err)
	g.MustAdd(NewGlobalAvgPool("gap"))
	fl := NewFlatten("fl")
	g.MustAdd(fl)
	d1, err := NewDense("d1", 8, 10, rng)
	must(d1, err)
	g.MustAdd(NewSoftmax("sm"))
	return g
}

func randInputs(n int, shape ...int) []*tensor.Tensor {
	rng := rand.New(rand.NewSource(99))
	xs := make([]*tensor.Tensor, n)
	for i := range xs {
		x := tensor.MustNew(shape...)
		x.RandNormal(rng, 0, 1)
		// Sprinkle exact zeros so the matmul zero-skip branches differ
		// between samples.
		for j := 0; j < x.Size(); j += 17 {
			x.Data[j] = 0
		}
		xs[i] = x
	}
	return xs
}

func assertSameBits(t *testing.T, tag string, got, want *tensor.Tensor) {
	t.Helper()
	if len(got.Data) != len(want.Data) {
		t.Fatalf("%s: size %d vs %d", tag, len(got.Data), len(want.Data))
	}
	for j := range want.Data {
		if math.Float32bits(got.Data[j]) != math.Float32bits(want.Data[j]) {
			t.Fatalf("%s: element %d differs: %x vs %x",
				tag, j, math.Float32bits(got.Data[j]), math.Float32bits(want.Data[j]))
		}
	}
}

// TestForwardBatchBitIdentical pins ForwardBatch against the per-sample
// Runner across batch sizes, including reusing one BatchRunner for
// different batch sizes in sequence (shrinking and growing buffers).
func TestForwardBatchBitIdentical(t *testing.T) {
	g := testGraph(t)
	xs := randInputs(7, 6, 6, 3)

	r := g.WithScratch()
	want := make([]*tensor.Tensor, len(xs))
	for i, x := range xs {
		y, err := r.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = y.Clone()
	}

	br := g.WithBatch()
	for _, n := range []int{1, 3, 7, 2, 7} {
		got, err := br.ForwardBatch(xs[:n])
		if err != nil {
			t.Fatalf("batch %d: %v", n, err)
		}
		for i := 0; i < n; i++ {
			assertSameBits(t, "batch output", got[i], want[i])
		}
	}
}

// TestForwardFromBatchBitIdentical pins the cached-prefix batch path
// against Runner.ForwardFrom for suffixes starting at a fast-path
// layer, a fallback layer, and a merge point reading prefix
// activations.
func TestForwardFromBatchBitIdentical(t *testing.T) {
	g := testGraph(t)
	xs := randInputs(5, 6, 6, 3)

	acts := make([]map[string]*tensor.Tensor, len(xs))
	for i, x := range xs {
		m, err := g.ForwardAll(x)
		if err != nil {
			t.Fatal(err)
		}
		acts[i] = m
	}

	r := g.WithScratch()
	br := g.WithBatch()
	for _, from := range []string{"c3", "add", "bn", "d1", "c1"} {
		want := make([]*tensor.Tensor, len(xs))
		for i := range xs {
			y, err := r.ForwardFrom(acts[i], from)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = y.Clone()
		}
		got, err := br.ForwardFromBatch(acts, from)
		if err != nil {
			t.Fatalf("from %q: %v", from, err)
		}
		for i := range xs {
			assertSameBits(t, "from "+from, got[i], want[i])
		}
	}
}

// TestForwardBatchErrors covers the rejection paths.
func TestForwardBatchErrors(t *testing.T) {
	g := testGraph(t)
	br := g.WithBatch()
	if _, err := br.ForwardBatch(nil); err == nil {
		t.Error("empty batch accepted")
	}
	mixed := []*tensor.Tensor{tensor.MustNew(6, 6, 3), tensor.MustNew(3, 6, 6)}
	if _, err := br.ForwardBatch(mixed); err == nil {
		t.Error("mixed-shape batch accepted")
	}
	if _, err := br.ForwardFromBatch(nil, "c1"); err == nil {
		t.Error("empty from-batch accepted")
	}
	ok := []*tensor.Tensor{tensor.MustNew(6, 6, 3)}
	if _, err := br.ForwardFromBatch([]map[string]*tensor.Tensor{{InputName: ok[0]}}, "nosuch"); err == nil {
		t.Error("unknown from-layer accepted")
	}
	if _, err := br.ForwardFromBatch([]map[string]*tensor.Tensor{{}}, "c1"); err == nil {
		t.Error("missing prefix activation accepted")
	}
}

// BenchmarkBatchForward compares the batched and per-sample paths on a
// conv-heavy stack (the accuracy-sweep workload).
func BenchmarkBatchForward(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := NewGraph()
	c1, _ := NewConv2D("c1", 5, 5, 1, 6, 1, 2, rng)
	g.MustAdd(c1)
	g.MustAdd(NewReLU("r1"))
	p1, _ := NewMaxPool2D("p1", 2, 2)
	g.MustAdd(p1)
	c2, _ := NewConv2D("c2", 5, 5, 6, 16, 1, 0, rng)
	g.MustAdd(c2)
	g.MustAdd(NewReLU("r2"))
	p2, _ := NewMaxPool2D("p2", 2, 2)
	g.MustAdd(p2)
	g.MustAdd(NewFlatten("fl"))
	d1, _ := NewDense("d1", 400, 120, rng)
	g.MustAdd(d1)
	g.MustAdd(NewReLU("r3"))
	d2, _ := NewDense("d2", 120, 10, rng)
	g.MustAdd(d2)
	g.MustAdd(NewSoftmax("sm"))

	xs := make([]*tensor.Tensor, 32)
	for i := range xs {
		xs[i] = tensor.MustNew(28, 28, 1)
		xs[i].RandNormal(rng, 0, 1)
	}

	b.Run("per-sample", func(b *testing.B) {
		r := g.WithScratch()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, x := range xs {
				if _, err := r.Forward(x); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		br := g.WithBatch()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := br.ForwardBatch(xs); err != nil {
				b.Fatal(err)
			}
		}
	})
}
