package entropy

import "math/rand"

// newTestRNG returns a deterministic RNG for tests.
func newTestRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
