package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Reshape reinterprets its input with a fixed target shape of equal
// volume. MobileNet and Inception use it to turn the global-average-pooled
// [C] vector back into a [1, 1, C] map for the final 1x1 "prediction"
// convolution, matching the Keras topologies of Table I.
type Reshape struct {
	name  string
	shape []int
}

// NewReshape creates a reshape layer targeting the given shape.
func NewReshape(name string, shape ...int) (*Reshape, error) {
	if len(shape) == 0 {
		return nil, fmt.Errorf("nn: reshape %q: empty target shape", name)
	}
	for _, d := range shape {
		if d <= 0 {
			return nil, fmt.Errorf("nn: reshape %q: non-positive dimension in %v", name, shape)
		}
	}
	return &Reshape{name: name, shape: append([]int(nil), shape...)}, nil
}

// Name implements Layer.
func (r *Reshape) Name() string { return r.name }

// Kind implements Layer.
func (r *Reshape) Kind() string { return "RESHAPE" }

// OutShape implements Layer.
func (r *Reshape) OutShape(in [][]int) ([]int, error) {
	s, err := wantOneShape(in)
	if err != nil {
		return nil, err
	}
	if shapeVolume(s) != shapeVolume(r.shape) {
		return nil, fmt.Errorf("%w: reshape %q: volume %v vs %v", ErrShape, r.name, s, r.shape)
	}
	return append([]int(nil), r.shape...), nil
}

// Forward implements Layer.
func (r *Reshape) Forward(xs []*tensor.Tensor) (*tensor.Tensor, error) {
	x, err := wantOne(xs)
	if err != nil {
		return nil, err
	}
	return x.Reshape(r.shape...)
}

// ForwardScratch implements ScratchLayer: a cached view over the input's
// backing data with the target shape (no copy, like Forward).
func (r *Reshape) ForwardScratch(xs []*tensor.Tensor, s *Scratch) (*tensor.Tensor, error) {
	x, err := wantOne(xs)
	if err != nil {
		return nil, err
	}
	return s.View(r.name, "/out", x.Data, r.shape...)
}

// Params implements Layer.
func (r *Reshape) Params() []Param { return nil }

// Cost implements Layer.
func (r *Reshape) Cost(in [][]int) (uint64, error) { return 0, nil }
