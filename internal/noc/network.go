package noc

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/obs"
)

// Routing selects the routing algorithm.
type Routing int8

// Routing algorithms. All three are deadlock-free on a mesh: XY and YX by
// dimension order, WestFirst by the turn model (no turn into west, with
// adaptive selection among the admissible directions by downstream credit).
const (
	RoutingXY Routing = iota
	RoutingYX
	RoutingWestFirst
)

// String implements fmt.Stringer.
func (r Routing) String() string {
	switch r {
	case RoutingYX:
		return "yx"
	case RoutingWestFirst:
		return "west-first"
	default:
		return "xy"
	}
}

// Core selects the engine that advances the router pipeline. Both cores
// run the identical per-router phase functions and produce byte-identical
// stats, heatmaps, and delivery streams (pinned by the differential tests
// in differential_test.go); they differ only in which routers they visit
// per cycle.
type Core int8

const (
	// CoreEvent (the default) is the discrete-event engine: an activation
	// calendar over injection, arbitration, and ejection times visits only
	// routers that can make progress, so in-flight-but-uncontended spans
	// cost O(active routers) instead of O(mesh).
	CoreEvent Core = iota
	// CoreStep is the reference cycle-stepping engine: every router is
	// scanned every cycle. It is kept as the executable specification the
	// event core is differentially tested against.
	CoreStep
)

// String implements fmt.Stringer.
func (c Core) String() string {
	if c == CoreStep {
		return "step"
	}
	return "event"
}

// ParseCore maps "step"/"event" to a Core.
func ParseCore(s string) (Core, error) {
	switch s {
	case "step":
		return CoreStep, nil
	case "event", "":
		return CoreEvent, nil
	}
	return CoreEvent, fmt.Errorf("noc: unknown core %q (want step or event)", s)
}

// Config describes the mesh.
type Config struct {
	Width, Height   int     // mesh dimensions (paper: 4x4)
	BufferDepth     int     // input buffer depth in flits per port per VC
	FlitBits        int     // link width (paper: 64)
	MaxPacketFlit   int     // largest packet the NI will segment into (0 = 32)
	Routing         Routing // routing algorithm (default: XY, the paper's)
	VirtualChannels int     // VCs per physical channel (0 or 1 = plain wormhole)
	Core            Core    // simulation engine (default: the event core)
	// Faults is the injected fault environment (zero value: fault-free).
	// Transient link faults are detected by the per-packet checksum at
	// the destination NI and repaired by NACK + source retransmission;
	// dead links are avoided at route time.
	Faults faults.Model
	// MaxRetries bounds end-to-end retransmissions per packet (0 = 8).
	// A packet still corrupted after the budget is counted in
	// Stats.LostPackets and dropped.
	MaxRetries int
}

// DefaultConfig returns the paper's 4x4 mesh with 64-bit links.
func DefaultConfig() Config {
	return Config{Width: 4, Height: 4, BufferDepth: 4, FlitBits: 64, MaxPacketFlit: 32}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Width < 1 || c.Height < 1:
		return fmt.Errorf("noc: bad mesh %dx%d", c.Width, c.Height)
	case c.Width*c.Height < 2:
		return fmt.Errorf("noc: mesh needs at least 2 nodes")
	case c.BufferDepth < 1:
		return fmt.Errorf("noc: buffer depth %d < 1", c.BufferDepth)
	case c.FlitBits <= 0:
		return fmt.Errorf("noc: flit width %d", c.FlitBits)
	case c.MaxPacketFlit < 0:
		return fmt.Errorf("noc: negative max packet size")
	case c.Routing != RoutingXY && c.Routing != RoutingYX && c.Routing != RoutingWestFirst:
		return fmt.Errorf("noc: unknown routing %d", int(c.Routing))
	case c.VirtualChannels < 0 || c.VirtualChannels > 16:
		return fmt.Errorf("noc: virtual channel count %d out of [0,16]", c.VirtualChannels)
	case c.MaxRetries < 0:
		return fmt.Errorf("noc: negative retry budget %d", c.MaxRetries)
	case c.Core != CoreEvent && c.Core != CoreStep:
		return fmt.Errorf("noc: unknown core %d", int(c.Core))
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	nodes := c.Width * c.Height
	for _, l := range c.Faults.DeadLinks {
		if l.From < 0 || l.From >= nodes || l.To < 0 || l.To >= nodes {
			return fmt.Errorf("noc: dead link %s outside %dx%d mesh", l, c.Width, c.Height)
		}
		fx, fy := l.From%c.Width, l.From/c.Width
		tx, ty := l.To%c.Width, l.To/c.Width
		if d := abs(fx-tx) + abs(fy-ty); d != 1 {
			return fmt.Errorf("noc: dead link %s does not connect mesh neighbors", l)
		}
	}
	return nil
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// vcs returns the effective virtual-channel count.
func (c Config) vcs() int {
	if c.VirtualChannels < 1 {
		return 1
	}
	return c.VirtualChannels
}

// Route states of a VC lane, besides a concrete output port >= 0.
const (
	routeNone = -1 // no packet routed on this lane
	routeDrop = -2 // lane drains the flits of a killed (unroutable) packet
)

// flitFIFO is a reusable flit queue: pops advance a head index instead
// of re-slicing, so the backing array is reused across push/pop churn
// (one steady-state allocation per queue instead of one per wrap).
// Pushes compact the live region to the front when the tail hits the
// array's capacity, which is cheap because the live region is bounded
// (BufferDepth for router lanes, the pending worm for inject queues).
type flitFIFO struct {
	buf  []flit
	head int
}

// size returns the number of queued flits.
func (q *flitFIFO) size() int { return len(q.buf) - q.head }

// front returns the head flit; the queue must be non-empty.
func (q *flitFIFO) front() *flit { return &q.buf[q.head] }

// push appends a flit, compacting first when the tail would grow the
// backing array even though dead space exists before the head.
func (q *flitFIFO) push(f flit) {
	if q.head > 0 && len(q.buf) == cap(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.buf = append(q.buf, f)
}

// pop removes and returns the head flit; the queue must be non-empty.
func (q *flitFIFO) pop() flit {
	f := q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return f
}

// reset empties the queue, keeping the backing array.
func (q *flitFIFO) reset() {
	q.buf = q.buf[:0]
	q.head = 0
}

// vcLane is one virtual channel of a router input port: its own flit
// FIFO and wormhole route state.
type vcLane struct {
	flitFIFO
	route int // output port allocated to the packet at head, or routeNone/routeDrop
}

// inputPort is one physical router input: a set of VC lanes sharing the
// physical link.
type inputPort struct {
	vcs []vcLane
}

// router is one five-port wormhole router. Output state is kept per
// output VC: a packet acquires the output VC matching its input VC and
// holds it until its tail passes; the physical output link is arbitrated
// round-robin among output VCs with a flit ready and credit downstream.
type router struct {
	id       int
	occ      int // flits buffered across all of this router's VC lanes
	in       [numPorts]inputPort
	outOwner [numPorts][]int // [port][vc] -> owning input port (-1 = free)
	rrVC     [numPorts]int   // round-robin pointer over output VCs per port
	rrIn     [numPorts][]int // round-robin pointer over inputs per (port, vc)
	// Exact per-port aggregates so the pipeline phases can skip ports
	// that provably cannot act, without changing any arbitration
	// decision. occIn counts buffered flits per input port (phase 1 and
	// drop-drain only inspect non-empty lanes); routedTo counts input
	// lanes whose computed route targets each output (VC allocation
	// requires one); owned counts granted output VCs per output port
	// (switch traversal requires one).
	occIn    [numPorts]int16
	routedTo [numPorts]int8
	owned    [numPorts]int8
	// needRoute counts lanes holding an unrouted fresh head
	// (route == routeNone with flits buffered); phase 1 is a no-op
	// whenever it is zero.
	needRoute int8
	// Precomputed neighbor geometry: the router on the far side of each
	// output port (-1 at mesh edges and for the local port) and the
	// input port the link feeds there.
	nbr     [numPorts]int32
	nbrPort [numPorts]int8
}

// Stats aggregates network activity counters used by the energy model,
// plus the fault/recovery counters of the retransmission protocol.
type Stats struct {
	Cycles         uint64
	PacketsIn      uint64 // packets accepted into injection queues
	PacketsOut     uint64 // packets fully delivered
	FlitsInjected  uint64 // includes retransmitted flits
	FlitsEjected   uint64
	RouterTraverse uint64 // flits leaving any router output (switch traversals)
	LinkTraverse   uint64 // flits crossing an inter-router link
	LatencySum     uint64 // sum of packet latencies

	// Fault-injection counters (all zero on a fault-free run).
	CorruptFlits         uint64 // flit corruption events on links
	RetransmittedPackets uint64 // packets NACKed and re-sent end to end
	LostPackets          uint64 // packets dropped after the retry budget
	UnroutablePackets    uint64 // packets killed: dead links cut off every route
	DeadLinkAvoids       uint64 // route decisions diverted around a dead link
}

// Dropped returns the packets permanently lost to faults: retry-budget
// exhaustion plus unroutable kills.
func (s Stats) Dropped() uint64 { return s.LostPackets + s.UnroutablePackets }

// AvgPacketLatency returns the mean delivered-packet latency in cycles.
func (s Stats) AvgPacketLatency() float64 {
	if s.PacketsOut == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.PacketsOut)
}

// Network is the mesh simulator. Create with New, drive with Step.
type Network struct {
	cfg       Config
	routers   []router
	inject    []flitFIFO        // per-node injection queues (already segmented)
	flits     int               // total flits anywhere (inject queues + router lanes)
	pending   map[uint64]Packet // packet descriptors by ID for delivery reporting
	sink      func(Delivery)
	nextID    uint64
	cycle     uint64
	stats     Stats
	perRouter []uint64 // flit traversals per router (utilization heatmap)
	// staged arrivals for the two-phase cycle update
	arrivals []int // per (router, port, vc): flits arriving this cycle
	touched  []int // arrival indices written this cycle, to clear in O(touched)
	vcsN     int   // cached cfg.vcs() for the hot per-cycle paths
	// dirty-node tracking so Reset clears O(nodes that saw traffic)
	// instead of O(mesh): every router/queue mutation happens at a node
	// that received a flit push (router lane or injection queue), so the
	// push sites are the complete set of dirtying points.
	dirty   []int32 // node ids with router or queue state to clear on Reset
	dirtied []bool  // per-node membership flag for dirty
	// fault-injection state
	faultsOn   bool                 // any transient fault model active
	dead       map[faults.Link]bool // stuck-at dead links (nil = none)
	deadRoute  [][]int8             // [dst][node] -> port on a shortest live path
	corrupted  map[uint64]bool      // packets with a corrupt flit ejected so far
	maxRetries int                  // resolved end-to-end retry budget
	hopLimit   int                  // packets exceeding this hop count are killed
	// ev is the discrete-event scheduler state; nil selects the
	// reference cycle-stepping engine (see event.go).
	ev *eventState
	// observability hooks; both nil (free) unless installed. Emissions
	// are guarded with a pointer comparison at every call site so the
	// disabled path costs one branch and zero allocations.
	trace   *obs.Buffer    // packet lifecycle events
	latHist *obs.Histogram // delivered-packet latency distribution
}

// New creates a network from the configuration.
func New(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxPacketFlit == 0 {
		cfg.MaxPacketFlit = 32
	}
	n := cfg.Width * cfg.Height
	nw := &Network{
		cfg:        cfg,
		routers:    make([]router, n),
		inject:     make([]flitFIFO, n),
		pending:    make(map[uint64]Packet),
		arrivals:   make([]int, n*numPorts*cfg.vcs()),
		perRouter:  make([]uint64, n),
		dirtied:    make([]bool, n),
		faultsOn:   cfg.Faults.LinkFlitRate > 0,
		dead:       cfg.Faults.DeadSet(),
		maxRetries: cfg.MaxRetries,
	}
	if nw.maxRetries == 0 {
		nw.maxRetries = 8
	}
	// Defensive backstop: any live shortest path visits at most every
	// node once, so a packet exceeding this hop count can only mean a
	// routing bug; kill it deterministically instead of hanging.
	nw.hopLimit = 2*n + 16
	if cfg.Core == CoreEvent {
		nw.ev = newEventState(n)
	}
	v := cfg.vcs()
	nw.vcsN = v
	for i := range nw.routers {
		rt := &nw.routers[i]
		rt.id = i
		for p := 0; p < numPorts; p++ {
			rt.in[p].vcs = make([]vcLane, v)
			for k := range rt.in[p].vcs {
				rt.in[p].vcs[k].route = routeNone
			}
			rt.outOwner[p] = make([]int, v)
			rt.rrIn[p] = make([]int, v)
			for k := range rt.outOwner[p] {
				rt.outOwner[p][k] = -1
			}
			rt.nbr[p] = -1
		}
		// Precompute the neighbor table (pure mesh geometry).
		x, y := nw.coord(i)
		if y > 0 {
			rt.nbr[PortNorth], rt.nbrPort[PortNorth] = int32(i-cfg.Width), PortSouth
		}
		if y < cfg.Height-1 {
			rt.nbr[PortSouth], rt.nbrPort[PortSouth] = int32(i+cfg.Width), PortNorth
		}
		if x < cfg.Width-1 {
			rt.nbr[PortEast], rt.nbrPort[PortEast] = int32(i+1), PortWest
		}
		if x > 0 {
			rt.nbr[PortWest], rt.nbrPort[PortWest] = int32(i-1), PortEast
		}
	}
	// After the neighbor tables: the BFS walks the mesh through them.
	if nw.dead != nil {
		nw.buildDeadRoutes()
	}
	return nw, nil
}

// Nodes returns the node count.
func (nw *Network) Nodes() int { return len(nw.routers) }

// Cycle returns the current simulation cycle.
func (nw *Network) Cycle() uint64 { return nw.cycle }

// CoreName reports which engine drives this network ("event" or "step").
func (nw *Network) CoreName() string {
	if nw.ev != nil {
		return CoreEvent.String()
	}
	return CoreStep.String()
}

// Stats returns a copy of the activity counters.
func (nw *Network) Stats() Stats { return nw.stats }

// SetSink installs the delivery callback, invoked when a packet's tail
// flit is ejected at its destination.
func (nw *Network) SetSink(fn func(Delivery)) { nw.sink = fn }

// SetTrace installs a trace buffer recording packet lifecycle events
// (inject, delivery spans, retransmissions, drops). Emission order is a
// pure function of simulated time, so the exported stream is identical
// for the event and step cores. Cleared by Reset; nil disables tracing.
func (nw *Network) SetTrace(b *obs.Buffer) { nw.trace = b }

// SetLatencyHistogram installs a histogram fed with every delivered
// packet's latency in cycles. Cleared by Reset; nil disables.
func (nw *Network) SetLatencyHistogram(h *obs.Histogram) { nw.latHist = h }

// PerRouterTraversals returns a copy of the per-router flit traversal
// counters — the utilization heatmap of the mesh.
func (nw *Network) PerRouterTraversals() []uint64 {
	return append([]uint64(nil), nw.perRouter...)
}

// markDirty records that node id's router or injection queue may hold
// state Reset must clear. Called from the flit push sites only: every
// other mutation (route fields, round-robin pointers, output-VC grants,
// traversal counters) happens at a router that holds a flit, and a flit
// can only be present after a push.
func (nw *Network) markDirty(id int) {
	if !nw.dirtied[id] {
		nw.dirtied[id] = true
		nw.dirty = append(nw.dirty, int32(id))
	}
}

// Reset returns the network to its post-New state while keeping every
// allocated buffer (router lanes, injection queues, arrival staging),
// so a pooled Network can simulate many independent workloads without
// re-allocating its geometry. The fault configuration and precomputed
// dead-link routes are preserved (they are pure functions of the
// Config); the clock, stats, queues, and sink are cleared. Cost is
// O(nodes that saw traffic), not O(mesh): only dirty nodes are cleared.
func (nw *Network) Reset() {
	for _, id := range nw.dirty {
		i := int(id)
		nw.dirtied[i] = false
		nw.inject[i].reset()
		nw.perRouter[i] = 0
		rt := &nw.routers[i]
		rt.occ = 0
		rt.occIn = [numPorts]int16{}
		rt.routedTo = [numPorts]int8{}
		rt.owned = [numPorts]int8{}
		rt.needRoute = 0
		for p := 0; p < numPorts; p++ {
			for k := range rt.in[p].vcs {
				lane := &rt.in[p].vcs[k]
				lane.reset()
				lane.route = routeNone
			}
			for k := range rt.outOwner[p] {
				rt.outOwner[p][k] = -1
				rt.rrIn[p][k] = 0
			}
			rt.rrVC[p] = 0
		}
	}
	nw.dirty = nw.dirty[:0]
	clear(nw.pending)
	clear(nw.corrupted)
	for _, ai := range nw.touched {
		nw.arrivals[ai] = 0
	}
	nw.touched = nw.touched[:0]
	nw.sink = nil
	nw.trace = nil
	nw.latHist = nil
	nw.nextID = 0
	nw.cycle = 0
	nw.stats = Stats{}
	nw.flits = 0
	if nw.ev != nil {
		nw.ev.reset()
	}
}

// AdvanceIdle advances the clock to target in one jump, provided the
// network is completely idle (no flits queued or in flight anywhere).
// An idle Step only increments the cycle counter — no router, queue,
// stats, or fault state can change, and the link-fault process is a
// pure function of (packet, flit, attempt, router), consuming nothing
// per cycle — so the jump is exactly equivalent to target-Cycle()
// consecutive Step calls. It reports whether it advanced; a busy
// network or a target at or behind the current cycle is a no-op.
func (nw *Network) AdvanceIdle(target uint64) bool {
	if nw.flits != 0 || target <= nw.cycle {
		return false
	}
	nw.cycle = target
	nw.stats.Cycles = target
	return true
}

// coord maps a node id to mesh coordinates.
func (nw *Network) coord(id int) (x, y int) { return id % nw.cfg.Width, id / nw.cfg.Width }

// NodeAt maps mesh coordinates to a node id.
func (nw *Network) NodeAt(x, y int) (int, error) {
	if x < 0 || x >= nw.cfg.Width || y < 0 || y >= nw.cfg.Height {
		return 0, fmt.Errorf("noc: coordinates (%d,%d) outside %dx%d mesh", x, y, nw.cfg.Width, nw.cfg.Height)
	}
	return y*nw.cfg.Width + x, nil
}

// buildDeadRoutes precomputes, for every destination, a shortest-path
// next-hop table over the live-link graph (BFS from the destination over
// reversed live links). Following the table the distance to the
// destination strictly decreases every hop, so dead-link detours can
// neither oscillate nor livelock; a node from which the destination is
// unreachable maps to routeDrop and its packets are killed at the source
// router, where the whole worm still funnels through one lane. Detours
// may violate the base algorithm's turn restrictions — strict deadlock
// freedom is traded for connectivity under faults, which light
// dead-link scenarios and a bounded-cycle simulation can afford.
func (nw *Network) buildDeadRoutes() {
	n := len(nw.routers)
	nw.deadRoute = make([][]int8, n)
	dist := make([]int, n)
	for dst := 0; dst < n; dst++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[dst] = 0
		queue := []int{dst}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for p := PortNorth; p <= PortWest; p++ {
				u, _, ok := nw.neighbor(cur, p)
				if !ok || nw.dead[faults.Link{From: u, To: cur}] || dist[u] >= 0 {
					continue
				}
				dist[u] = dist[cur] + 1
				queue = append(queue, u)
			}
		}
		ports := make([]int8, n)
		for id := 0; id < n; id++ {
			switch {
			case id == dst:
				ports[id] = PortLocal
				continue
			case dist[id] < 0:
				ports[id] = routeDrop
				continue
			}
			// Among live distance-reducing ports, prefer the base
			// algorithm's choice so fault-free flows keep their paths.
			pref := nw.routeMinimal(id, dst)
			best := int8(routeDrop)
			for p := PortNorth; p <= PortWest; p++ {
				nid, _, ok := nw.neighbor(id, p)
				if !ok || nw.dead[faults.Link{From: id, To: nid}] || dist[nid] != dist[id]-1 {
					continue
				}
				if p == pref {
					best = int8(p)
					break
				}
				if best == routeDrop {
					best = int8(p)
				}
			}
			ports[id] = best
		}
		nw.deadRoute[dst] = ports
	}
}

// route returns the output port for a packet toward dst at router id:
// the configured routing algorithm's choice on a healthy mesh, or the
// precomputed shortest live path when stuck-at dead links exist.
func (nw *Network) route(id, dst int) int {
	if nw.dead == nil {
		return nw.routeMinimal(id, dst)
	}
	p := int(nw.deadRoute[dst][id])
	if p != routeDrop && p != nw.routeMinimal(id, dst) {
		nw.stats.DeadLinkAvoids++
	}
	return p
}

// routeMinimal is the configured routing algorithm's preferred port,
// ignoring link health.
func (nw *Network) routeMinimal(id, dst int) int {
	cx, cy := nw.coord(id)
	dx, dy := nw.coord(dst)
	switch nw.cfg.Routing {
	case RoutingYX:
		switch {
		case dy > cy:
			return PortSouth
		case dy < cy:
			return PortNorth
		case dx > cx:
			return PortEast
		case dx < cx:
			return PortWest
		default:
			return PortLocal
		}
	case RoutingWestFirst:
		// Turn model: any turn into west is forbidden, so all westward
		// hops happen first; the remaining east/vertical moves are chosen
		// adaptively by downstream credit.
		if dx < cx {
			return PortWest
		}
		var candidates []int
		if dx > cx {
			candidates = append(candidates, PortEast)
		}
		if dy > cy {
			candidates = append(candidates, PortSouth)
		} else if dy < cy {
			candidates = append(candidates, PortNorth)
		}
		if len(candidates) == 0 {
			return PortLocal
		}
		best, bestFree := candidates[0], -1
		for _, p := range candidates {
			nid, nport, ok := nw.neighbor(id, p)
			if !ok {
				continue
			}
			occupied := 0
			for k := range nw.routers[nid].in[nport].vcs {
				occupied += nw.routers[nid].in[nport].vcs[k].size()
			}
			free := nw.cfg.vcs()*nw.cfg.BufferDepth - occupied
			if free > bestFree {
				best, bestFree = p, free
			}
		}
		return best
	default: // RoutingXY, the paper's configuration
		switch {
		case dx > cx:
			return PortEast
		case dx < cx:
			return PortWest
		case dy > cy:
			return PortSouth
		case dy < cy:
			return PortNorth
		default:
			return PortLocal
		}
	}
}

// neighbor returns the router on the other side of output port p of
// router id, and the input port it arrives on; ok=false at mesh edges
// and for the local port. O(1) via the table precomputed in New.
func (nw *Network) neighbor(id, p int) (nid, nport int, ok bool) {
	rt := &nw.routers[id]
	n := rt.nbr[p]
	if n < 0 {
		return 0, 0, false
	}
	return int(n), int(rt.nbrPort[p]), true
}

// Inject queues a packet at its source node's network interface. The NI
// segments it into flits immediately; flits enter the router's local input
// port as buffer space allows, one per cycle.
func (nw *Network) Inject(p Packet) error {
	if p.Src < 0 || p.Src >= len(nw.routers) || p.Dst < 0 || p.Dst >= len(nw.routers) {
		return fmt.Errorf("noc: packet endpoints %d->%d outside mesh", p.Src, p.Dst)
	}
	if p.Src == p.Dst {
		return fmt.Errorf("noc: self-addressed packet at node %d", p.Src)
	}
	if p.Flits < 1 {
		return fmt.Errorf("noc: packet with %d flits", p.Flits)
	}
	if nw.cfg.MaxPacketFlit > 0 && p.Flits > nw.cfg.MaxPacketFlit {
		return fmt.Errorf("noc: packet of %d flits exceeds max %d (segment at the NI)", p.Flits, nw.cfg.MaxPacketFlit)
	}
	p.ID = nw.nextID
	nw.nextID++
	nw.pending[p.ID] = p
	nw.enqueueFlits(p, nw.cycle, 0)
	nw.stats.PacketsIn++
	if nw.trace != nil {
		nw.trace.Instant("inject", "noc", p.Src, nw.cycle,
			obs.KV{K: "pkt", V: p.ID}, obs.KV{K: "dst", V: uint64(p.Dst)}, obs.KV{K: "flits", V: uint64(p.Flits)})
	}
	return nil
}

// enqueueFlits segments packet p into flits on its source injection
// queue. enqueued is the original injection cycle (preserved across
// retransmissions so latency accounts for recovery time) and attempt the
// end-to-end retransmission attempt number.
func (nw *Network) enqueueFlits(p Packet, enqueued uint64, attempt uint8) {
	vc := int8(p.ID % uint64(nw.cfg.vcs()))
	for i := 0; i < p.Flits; i++ {
		t := BodyFlit
		switch {
		case p.Flits == 1:
			t = HeadTailFlit
		case i == 0:
			t = HeadFlit
		case i == p.Flits-1:
			t = TailFlit
		}
		nw.inject[p.Src].push(flit{
			ftype: t, packetID: p.ID, src: p.Src, dst: p.Dst, vc: vc,
			enqueued: enqueued, seq: int32(i), attempt: attempt,
		})
	}
	nw.flits += p.Flits
	nw.markDirty(p.Src)
	nw.wakeInject(p.Src)
}

// SendMessage segments an arbitrarily large message of the given flit
// count into MaxPacketFlit-sized packets sharing the same Meta, returning
// the number of packets injected.
func (nw *Network) SendMessage(src, dst, flits int, meta any) (int, error) {
	if flits < 1 {
		return 0, fmt.Errorf("noc: message with %d flits", flits)
	}
	maxf := nw.cfg.MaxPacketFlit
	if maxf == 0 {
		maxf = 32
	}
	packets := 0
	for flits > 0 {
		sz := flits
		if sz > maxf {
			sz = maxf
		}
		if err := nw.Inject(Packet{Src: src, Dst: dst, Flits: sz, Meta: meta}); err != nil {
			return packets, err
		}
		packets++
		flits -= sz
	}
	return packets, nil
}

// InjectQueueLen returns the number of flits waiting in a node's
// injection queue (for backpressure-aware clients).
func (nw *Network) InjectQueueLen(node int) int { return nw.inject[node].size() }

// Idle reports whether no flits remain anywhere in the network. O(1):
// the network maintains a global in-flight flit count, incremented when
// packets are segmented onto injection queues and decremented on
// ejection and drop-drain (moves between queues and lanes cancel out).
func (nw *Network) Idle() bool { return nw.flits == 0 }

// Step advances the network one clock cycle on whichever engine the
// configuration selected. Both engines run the identical per-router
// phase functions (routeRouter, moveRouter, injectNode) in the same
// three-phase order and ascending router-id order; the stepping engine
// scans every router, the event engine only the scheduled ones.
func (nw *Network) Step() {
	if nw.ev != nil {
		nw.stepEvent()
		return
	}
	nw.beginCycle()
	// Phase 1: route computation for fresh heads on every VC lane.
	for r := range nw.routers {
		if nw.routers[r].occ != 0 {
			nw.routeRouter(r)
		}
	}
	// Phase 2: VC allocation + switch traversal. Routers with no buffered
	// flits (occ == 0) are skipped: every lane is empty, so neither
	// drop-drain, VC allocation, nor switch arbitration can change any
	// state there.
	for r := range nw.routers {
		if nw.routers[r].occ != 0 {
			nw.moveRouter(r)
		}
	}
	// Phase 3: injection into local input ports.
	for nidx := range nw.inject {
		nw.injectNode(nidx)
	}
	nw.endCycle()
}

// beginCycle clears the arrival staging written during the previous
// cycle (in O(touched) rather than O(mesh)).
func (nw *Network) beginCycle() {
	for _, ai := range nw.touched {
		nw.arrivals[ai] = 0
	}
	nw.touched = nw.touched[:0]
}

// endCycle advances the clock.
func (nw *Network) endCycle() {
	nw.cycle++
	nw.stats.Cycles = nw.cycle
}

// routeRouter is phase 1 for one router: route computation for fresh
// heads on every VC lane. A head that no live link can carry toward its
// destination kills the packet (unroutable); its lane then drains the
// worm's flits into the void.
func (nw *Network) routeRouter(r int) {
	rt := &nw.routers[r]
	if rt.occ == 0 {
		return
	}
	if rt.needRoute == 0 {
		return // no lane holds an unrouted fresh head
	}
	for p := 0; p < numPorts; p++ {
		if rt.occIn[p] == 0 {
			continue // no buffered flit on this input, no fresh head possible
		}
		for k := range rt.in[p].vcs {
			lane := &rt.in[p].vcs[k]
			if lane.route == routeNone && lane.size() > 0 {
				head := lane.front()
				if head.ftype == HeadFlit || head.ftype == HeadTailFlit {
					out := nw.route(r, head.dst)
					if nw.dead != nil && out >= 0 && int(head.hops) > nw.hopLimit {
						// Misroute livelock: the packet keeps bouncing
						// between live links without reaching dst.
						out = routeDrop
					}
					lane.route = out
					rt.needRoute--
					if out == routeDrop {
						nw.stats.UnroutablePackets++
						if nw.trace != nil {
							nw.trace.Instant("unroutable", "noc", r, nw.cycle,
								obs.KV{K: "pkt", V: head.packetID}, obs.KV{K: "dst", V: uint64(head.dst)})
						}
						delete(nw.pending, head.packetID)
					} else {
						rt.routedTo[out]++
					}
				}
			}
		}
	}
}

// moveRouter is phase 2 for one router: drop-drain, VC allocation, and
// switch traversal. Each output physical channel moves at most one flit
// per cycle, chosen round-robin among its output VCs; each output VC is
// held by one input lane until the tail passes. Any state change
// reschedules the router for the next cycle (a router that changed
// nothing cannot act next cycle either, until an arrival or a
// downstream credit wakes it).
func (nw *Network) moveRouter(r int) {
	rt := &nw.routers[r]
	if rt.occ == 0 {
		return
	}
	v := nw.vcsN
	worked := false
	// Drain lanes holding a killed packet: one flit per cycle vanishes
	// without contending for any output.
	if nw.dead != nil {
		for p := 0; p < numPorts; p++ {
			if rt.occIn[p] == 0 {
				continue
			}
			for k := range rt.in[p].vcs {
				lane := &rt.in[p].vcs[k]
				if lane.route != routeDrop || lane.size() == 0 {
					continue
				}
				f := lane.pop()
				rt.occ--
				rt.occIn[p]--
				nw.flits--
				worked = true
				nw.wakeUpstream(r, p)
				if f.ftype == TailFlit || f.ftype == HeadTailFlit {
					lane.route = routeNone
					if lane.size() > 0 {
						rt.needRoute++ // next worm's head is now at the front
					}
				}
			}
		}
	}
	for out := 0; out < numPorts; out++ {
		// A port no routed lane targets and no granted VC holds cannot
		// allocate or send; skipping it changes nothing (exact, since
		// allocation requires a lane with route == out and traversal
		// requires an owner).
		if rt.routedTo[out] == 0 && rt.owned[out] == 0 {
			continue
		}
		// Allocate free output VCs to requesting input lanes (an
		// input lane on VC k requests output VC k).
		if rt.routedTo[out] > 0 {
			for k := 0; k < v; k++ {
				if rt.outOwner[out][k] >= 0 {
					continue
				}
				for step := 1; step <= numPorts; step++ {
					cand := (rt.rrIn[out][k] + step) % numPorts
					lane := &rt.in[cand].vcs[k]
					if lane.route == out && lane.size() > 0 {
						rt.outOwner[out][k] = cand
						rt.rrIn[out][k] = cand
						rt.owned[out]++
						worked = true
						break
					}
				}
			}
		}
		// Physical link arbitration: first ready output VC in
		// round-robin order sends one flit.
		if rt.owned[out] == 0 {
			continue
		}
		for step := 1; step <= v; step++ {
			// rrVC < v and step <= v, so one conditional subtraction
			// replaces the (variable-divisor) modulo.
			k := rt.rrVC[out] + step
			if k >= v {
				k -= v
			}
			owner := rt.outOwner[out][k]
			if owner < 0 {
				continue
			}
			lane := &rt.in[owner].vcs[k]
			if lane.size() == 0 {
				continue // next flit not arrived yet
			}
			f := *lane.front()
			if out == PortLocal {
				nw.ejectFlit(r, f)
				nw.flits--
			} else {
				nid, nport, ok := nw.neighbor(r, out)
				if !ok {
					// Minimal mesh routing never routes off-mesh; bug guard.
					panic(fmt.Sprintf("noc: router %d routed off mesh via %s", r, PortName(out)))
				}
				dstLane := &nw.routers[nid].in[nport].vcs[k]
				ai := (nid*numPorts+nport)*v + k
				if dstLane.size()+nw.arrivals[ai] >= nw.cfg.BufferDepth {
					continue // no credit downstream on this VC
				}
				f.hops++
				if nw.faultsOn && nw.cfg.Faults.LinkCorrupt(f.packetID, int(f.seq), int(f.attempt), r) {
					// Transient link fault: the flit's payload is
					// corrupted in transit. The per-packet checksum
					// catches it at the destination NI.
					f.corrupt = true
					nw.stats.CorruptFlits++
				}
				dstLane.push(f)
				nw.markDirty(nid)
				nrt := &nw.routers[nid]
				nrt.occ++
				nrt.occIn[nport]++
				if dstLane.route == routeNone && dstLane.size() == 1 {
					nrt.needRoute++ // fresh head landed in an empty lane
				}
				nw.arrivals[ai]++
				nw.touched = append(nw.touched, ai)
				nw.stats.LinkTraverse++
				nw.wakeRouter(nid)
			}
			nw.stats.RouterTraverse++
			nw.perRouter[r]++
			lane.pop()
			rt.occ--
			rt.occIn[owner]--
			worked = true
			nw.wakeUpstream(r, owner)
			if f.ftype == TailFlit || f.ftype == HeadTailFlit {
				rt.outOwner[out][k] = -1
				rt.owned[out]--
				rt.routedTo[out]--
				lane.route = routeNone
				if lane.size() > 0 {
					rt.needRoute++ // next worm's head is now at the front
				}
			}
			rt.rrVC[out] = k
			break // one flit per physical channel per cycle
		}
	}
	if worked {
		nw.wakeRouterNext(r)
	}
}

// injectNode is phase 3 for one node: injection into the local input
// port (one flit per cycle per node, into the flit's assigned VC lane).
func (nw *Network) injectNode(nidx int) {
	q := &nw.inject[nidx]
	if q.size() == 0 {
		return
	}
	v := nw.vcsN
	k := int(q.front().vc)
	rt := &nw.routers[nidx]
	lane := &rt.in[PortLocal].vcs[k]
	ai := (nidx*numPorts+PortLocal)*v + k
	if lane.size()+nw.arrivals[ai] < nw.cfg.BufferDepth {
		lane.push(q.pop())
		nw.markDirty(nidx)
		rt.occ++
		rt.occIn[PortLocal]++
		if lane.route == routeNone && lane.size() == 1 {
			rt.needRoute++ // fresh head landed in an empty lane
		}
		nw.stats.FlitsInjected++
		nw.wakeRouterNext(nidx)
		if q.size() > 0 {
			nw.wakeInjectNext(nidx)
		}
	}
	// Blocked on a full local lane: the pop that frees a slot wakes this
	// node (wakeUpstream on the local port).
}

// ejectFlit consumes a flit at its destination NI. The NI verifies the
// per-packet checksum when the tail arrives: a packet containing any
// corrupted flit is NACKed back to its source (over the out-of-band
// control plane, whose single-word signals we do not charge) and
// retransmitted from the source's retransmission buffer until it arrives
// intact or the retry budget runs out.
func (nw *Network) ejectFlit(node int, f flit) {
	nw.stats.FlitsEjected++
	if f.corrupt {
		if nw.corrupted == nil {
			nw.corrupted = make(map[uint64]bool)
		}
		nw.corrupted[f.packetID] = true
	}
	if f.ftype != TailFlit && f.ftype != HeadTailFlit {
		return
	}
	if nw.corrupted[f.packetID] {
		delete(nw.corrupted, f.packetID)
		if int(f.attempt) >= nw.maxRetries {
			nw.stats.LostPackets++
			if nw.trace != nil {
				nw.trace.Instant("drop", "noc", node, nw.cycle+1,
					obs.KV{K: "pkt", V: f.packetID}, obs.KV{K: "attempt", V: uint64(f.attempt)})
			}
			delete(nw.pending, f.packetID)
			return
		}
		nw.retransmit(f)
		return
	}
	// Tail: the packet is fully delivered. Ejection happens during the
	// current cycle (nw.cycle increments at the end of Step), so the
	// delivery completes at cycle nw.cycle+1 — counting the delivery
	// cycle itself, consistently with the injection cycle being counted.
	nw.stats.PacketsOut++
	delivered := nw.cycle + 1
	lat := delivered - f.enqueued
	nw.stats.LatencySum += lat
	if nw.latHist != nil {
		nw.latHist.Observe(lat)
	}
	if nw.trace != nil {
		// The packet's in-flight life as a span on the destination node,
		// keyed to its injection cycle so export order is simulated-time
		// order regardless of when the tail arrives.
		nw.trace.Span("pkt", "noc", node, f.enqueued, lat,
			obs.KV{K: "pkt", V: f.packetID}, obs.KV{K: "src", V: uint64(f.src)}, obs.KV{K: "attempt", V: uint64(f.attempt)})
	}
	if nw.sink != nil {
		pkt, ok := nw.pending[f.packetID]
		if !ok {
			pkt = Packet{ID: f.packetID}
		}
		nw.sink(Delivery{Packet: pkt, Cycle: delivered, Latency: lat})
	}
	delete(nw.pending, f.packetID)
	_ = node
}

// retransmit re-enqueues a NACKed packet at its source with the attempt
// counter bumped. The original injection cycle is preserved so the
// packet's eventual latency includes the recovery time.
func (nw *Network) retransmit(tail flit) {
	p, ok := nw.pending[tail.packetID]
	if !ok {
		// Descriptor gone (cannot happen short of a client bug): drop.
		nw.stats.LostPackets++
		return
	}
	nw.stats.RetransmittedPackets++
	if nw.trace != nil {
		nw.trace.Instant("retransmit", "noc", p.Src, nw.cycle+1,
			obs.KV{K: "pkt", V: p.ID}, obs.KV{K: "attempt", V: uint64(tail.attempt) + 1})
	}
	nw.enqueueFlits(p, tail.enqueued, tail.attempt+1)
}

// DroppedPackets returns the packets permanently lost so far (retry
// budget exhausted or unroutable) — the cheap liveness check clients use
// to fail fast instead of waiting on data that will never arrive.
func (nw *Network) DroppedPackets() uint64 {
	return nw.stats.LostPackets + nw.stats.UnroutablePackets
}

// RunUntilIdle steps the network until it drains or maxCycles elapse,
// returning the cycles consumed and whether it drained.
func (nw *Network) RunUntilIdle(maxCycles uint64) (uint64, bool) {
	start := nw.cycle
	for !nw.Idle() {
		if nw.cycle-start >= maxCycles {
			return nw.cycle - start, false
		}
		nw.Step()
	}
	return nw.cycle - start, true
}
