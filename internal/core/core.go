// Package core implements the paper's primary contribution: lossy,
// retraining-free compression of CNN model parameters based on weakly
// monotonic sub-succession segmentation and per-segment least-squares line
// fitting.
//
// # Algorithm
//
// Let W = {w_1, ..., w_n} be the succession of model parameters. W is
// partitioned into maximal sub-successions M_1, ..., M_m such that each M_i
// is monotonic in the weak sense with tolerance threshold delta (Eq. 1 of
// the paper): consecutive elements may move against the segment direction by
// at most delta. For each M_i the least-squares line through the points
// (j, w_{f_i+j}) is computed, and the segment is stored as the coefficient
// pair <m_i, q_i> plus its length |M_i|.
//
// Decompression regenerates approximated weights by pure accumulation
// (Eq. 2): w~_1 = q_i, w~_j = w~_{j-1} + m_i. The hardware decompression
// unit (Fig. 6) is a two-state FSM around an accumulator; it produces one
// weight per cycle with no multiplier. This package includes a cycle-level
// model of that unit (DecompressionUnit).
//
// # Storage model and compression ratio
//
// The paper reports CR ~= 1.21 at delta = 0 for every network. For a
// high-entropy weight stream the expected greedy monotone run length is
// E[L] = 2 + 2*(e - 2.5) ~= 2.44, so 1.21 corresponds to two 32-bit words
// per segment — the <m_i, q_i> pair of Sec. III-C — with the segment length
// stored out of band (e.g. shared run-length tables) at negligible cost.
// StorageModel makes the accounting explicit: DefaultStorage reproduces the
// paper's figures (LenBits = 0), RealisticStorage charges 16 bits per
// length. The ablation benches compare both.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/stats"
)

// Errors returned by compression entry points.
var (
	ErrEmptyInput    = errors.New("core: empty parameter succession")
	ErrNegativeDelta = errors.New("core: negative tolerance threshold")
	// ErrNonFinite reports NaN or Inf segment coefficients: the
	// accumulation FSM would smear them across the whole segment (and,
	// through the running accumulator, every weight after the poisoned
	// one), so they are rejected up front.
	ErrNonFinite = errors.New("core: non-finite segment coefficients")
)

// finite32 reports whether v is neither NaN nor an infinity.
func finite32(v float32) bool {
	f := float64(v)
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}

// Segment is one compressed monotonic sub-succession: the least-squares
// line coefficients and the number of parameters the segment regenerates.
// Coefficients are kept as float32, the width of the hardware datapath.
type Segment struct {
	M   float32 // slope of the fitted line
	Q   float32 // intercept of the fitted line (first regenerated weight)
	Len int     // |M_i|, number of parameters in the sub-succession
}

// Compressed is a compressed parameter succession.
type Compressed struct {
	N        int       // number of original parameters
	Delta    float64   // absolute tolerance threshold used (Eq. 1)
	Segments []Segment // in original stream order
}

// StorageModel describes how many bits a stored segment costs, used for
// compression-ratio accounting.
type StorageModel struct {
	CoefBits int // bits for each of m and q
	LenBits  int // bits for the segment length field
}

// DefaultStorage matches the paper's reported compression ratios:
// two 32-bit coefficients per segment, lengths amortized out of band.
var DefaultStorage = StorageModel{CoefBits: 32, LenBits: 0}

// RealisticStorage charges an explicit 16-bit length per segment, the
// conservative hardware layout. Used by the storage-format ablation.
var RealisticStorage = StorageModel{CoefBits: 32, LenBits: 16}

// QuantizedStorage is the segment layout used when compressing int8
// quantized code streams (Table III): the intercept q is itself an int8
// code and the slope m a Q1.7 fixed-point step, so both coefficients fit
// in 8 bits. With float32 coefficients the compression would expand int8
// data at small delta — visible in the paper's own Table III, where
// VGG-16's weighted CR drops below the quantization-only ratio at
// delta = 0.
var QuantizedStorage = StorageModel{CoefBits: 8, LenBits: 0}

// BitsPerSegment returns the storage cost of one segment under the model.
func (s StorageModel) BitsPerSegment() int { return 2*s.CoefBits + s.LenBits }

// weightBits is the width of one uncompressed parameter (float32).
const weightBits = 32

// Compress partitions w into weakly monotonic sub-successions with the
// given absolute tolerance threshold delta and fits each with a
// least-squares line. The input slice is not modified.
func Compress(w []float64, delta float64) (*Compressed, error) {
	if len(w) == 0 {
		return nil, ErrEmptyInput
	}
	if delta < 0 {
		return nil, ErrNegativeDelta
	}
	runs := SegmentBounds(w, delta)
	segs := make([]Segment, 0, len(runs))
	for _, r := range runs {
		line, err := stats.FitLine(w[r.Start : r.Start+r.Len])
		if err != nil {
			return nil, fmt.Errorf("core: fitting segment at %d: %w", r.Start, err)
		}
		segs = append(segs, Segment{M: float32(line.M), Q: float32(line.Q), Len: r.Len})
	}
	return &Compressed{N: len(w), Delta: delta, Segments: segs}, nil
}

// CompressPct compresses with the tolerance threshold expressed as the
// paper does: a percentage of the amplitude max(W) - min(W) of the
// parameter set. deltaPct = 15 means delta = 0.15 * amplitude.
func CompressPct(w []float64, deltaPct float64) (*Compressed, error) {
	if deltaPct < 0 {
		return nil, ErrNegativeDelta
	}
	delta := deltaPct / 100 * stats.Amplitude(w)
	return Compress(w, delta)
}

// Validate checks the internal consistency of a compressed succession:
// a positive parameter count, a finite non-negative tolerance, finite
// segment coefficients, and segments whose positive lengths sum exactly
// to N. Successions produced by Compress are valid by construction;
// anything decoded from an external stream or assembled by hand must be
// validated before decompression, because inconsistent segment lengths
// silently regenerate a wrong-length weight slice and a non-finite
// coefficient poisons every weight from there to the end of the segment.
func (c *Compressed) Validate() error {
	if c.N <= 0 {
		return fmt.Errorf("core: invalid compressed succession: N = %d", c.N)
	}
	if c.Delta < 0 || c.Delta != c.Delta || math.IsInf(c.Delta, 0) {
		return fmt.Errorf("core: invalid compressed succession: delta = %v", c.Delta)
	}
	if len(c.Segments) == 0 {
		return fmt.Errorf("core: invalid compressed succession: no segments for %d params", c.N)
	}
	total := 0
	for i, s := range c.Segments {
		if s.Len <= 0 {
			return fmt.Errorf("core: invalid compressed succession: segment %d has length %d", i, s.Len)
		}
		if !finite32(s.M) || !finite32(s.Q) {
			return fmt.Errorf("%w: segment %d has m=%v q=%v", ErrNonFinite, i, s.M, s.Q)
		}
		if total > c.N-s.Len {
			return fmt.Errorf("core: invalid compressed succession: segment lengths exceed %d params", c.N)
		}
		total += s.Len
	}
	if total != c.N {
		return fmt.Errorf("core: invalid compressed succession: segment lengths sum to %d, want %d", total, c.N)
	}
	return nil
}

// Decompress regenerates the approximated parameter succession by the
// accumulation recurrence of Eq. 2, in float32 arithmetic exactly as the
// hardware unit computes it, widened to float64 on output. The
// succession is validated first: segments that do not cover exactly N
// parameters yield an error, never a silently wrong-length slice.
func (c *Compressed) Decompress() ([]float64, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	out := make([]float64, 0, c.N)
	for _, s := range c.Segments {
		acc := s.Q
		for j := 0; j < s.Len; j++ {
			if j > 0 {
				acc += s.M
			}
			out = append(out, float64(acc))
		}
	}
	return out, nil
}

// CompressedBits returns the storage size of the compressed succession in
// bits under the given storage model.
func (c *Compressed) CompressedBits(sm StorageModel) int {
	return len(c.Segments) * sm.BitsPerSegment()
}

// OriginalBits returns the storage size of the original succession in bits.
func (c *Compressed) OriginalBits() int { return c.N * weightBits }

// CompressionRatio returns original size over compressed size under the
// given storage model. Larger is better; 1 means no gain.
func (c *Compressed) CompressionRatio(sm StorageModel) float64 {
	cb := c.CompressedBits(sm)
	if cb == 0 {
		return 0
	}
	return float64(c.OriginalBits()) / float64(cb)
}

// AvgRunLength returns the mean sub-succession length n/m.
func (c *Compressed) AvgRunLength() float64 {
	if len(c.Segments) == 0 {
		return 0
	}
	return float64(c.N) / float64(len(c.Segments))
}

// Report aggregates the compression-quality metrics of Table II for one
// compressed layer within a larger model.
type Report struct {
	DeltaPct       float64 // tolerance threshold, % of parameter amplitude
	Delta          float64 // absolute tolerance threshold
	CR             float64 // compression ratio of the compressed layer
	WeightedCR     float64 // overall CR weighted over all model parameters
	MemFpReduction float64 // fractional memory-footprint reduction (0..1)
	MSE            float64 // mean squared error original vs approximated
	MaxErr         float64 // max absolute elementwise error
	Segments       int     // number of sub-successions m
	AvgRunLen      float64 // n/m
}

// Assess compresses the layer parameters w at deltaPct (percent of the
// layer amplitude) and computes the Table II metrics. totalParams is the
// full model's parameter count used for the weighted CR; it must be at
// least len(w).
func Assess(w []float64, deltaPct float64, totalParams int, sm StorageModel) (Report, *Compressed, error) {
	if totalParams < len(w) {
		return Report{}, nil, fmt.Errorf("core: totalParams %d < layer size %d", totalParams, len(w))
	}
	c, err := CompressPct(w, deltaPct)
	if err != nil {
		return Report{}, nil, err
	}
	approx, err := c.Decompress()
	if err != nil {
		return Report{}, nil, err
	}
	mse, err := stats.MSE(w, approx)
	if err != nil {
		return Report{}, nil, err
	}
	maxErr, err := stats.MaxAbsErr(w, approx)
	if err != nil {
		return Report{}, nil, err
	}
	cr := c.CompressionRatio(sm)
	wcr := WeightedCR(cr, len(w), totalParams)
	r := Report{
		DeltaPct:       deltaPct,
		Delta:          c.Delta,
		CR:             cr,
		WeightedCR:     wcr,
		MemFpReduction: MemFootprintReduction(wcr),
		MSE:            mse,
		MaxErr:         maxErr,
		Segments:       len(c.Segments),
		AvgRunLen:      c.AvgRunLength(),
	}
	return r, c, nil
}

// WeightedCR returns the overall model compression ratio when only one
// layer of layerParams parameters (out of totalParams) is compressed at
// ratio layerCR: total original size over total size with the layer
// compressed.
func WeightedCR(layerCR float64, layerParams, totalParams int) float64 {
	if layerCR <= 0 || totalParams == 0 {
		return 0
	}
	rest := float64(totalParams - layerParams)
	compressed := rest + float64(layerParams)/layerCR
	if compressed == 0 {
		return 0
	}
	return float64(totalParams) / compressed
}

// MemFootprintReduction converts an overall compression ratio into the
// fractional memory-footprint reduction of Table II: 1 - 1/WCR.
func MemFootprintReduction(weightedCR float64) float64 {
	if weightedCR <= 0 {
		return 0
	}
	return 1 - 1/weightedCR
}
