package tensor

import (
	"math/rand"
	"runtime"
	"testing"
)

func benchMats(seed int64, m, k, n int) (a, bm *Tensor) {
	rng := rand.New(rand.NewSource(seed))
	a = MustNew(m, k)
	a.RandNormal(rng, 0, 1)
	bm = MustNew(k, n)
	bm.RandNormal(rng, 0, 1)
	return a, bm
}

func BenchmarkMatMul256(b *testing.B) {
	a, c := benchMats(1, 256, 256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MatMul(a, c); err != nil {
			b.Fatal(err)
		}
	}
	// 2 flops per MAC.
	b.SetBytes(int64(256 * 256 * 256 * 2))
}

// BenchmarkMatMulInto256 is the steady-state blocked kernel: the
// destination is caller-owned and reused, so the loop is allocation-free.
func BenchmarkMatMulInto256(b *testing.B) {
	a, c := benchMats(1, 256, 256, 256)
	dst := MustNew(256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := MatMulInto(dst, a, c); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(256 * 256 * 256 * 2))
}

// BenchmarkMatMulParallel256 row-shards the blocked kernel across one
// worker per CPU (identical bytes out; the gain scales with cores).
func BenchmarkMatMulParallel256(b *testing.B) {
	a, c := benchMats(1, 256, 256, 256)
	dst := MustNew(256, 256)
	workers := runtime.GOMAXPROCS(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := MatMulParallel(dst, a, c, workers); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(256 * 256 * 256 * 2))
}

// BenchmarkMatMulIntoVGGShape is the im2col product of a VGG-style
// 3x3x64->128 convolution on a 28x28 map: [784 x 576] x [576 x 128].
func BenchmarkMatMulIntoVGGShape(b *testing.B) {
	a, c := benchMats(2, 784, 576, 128)
	dst := MustNew(784, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := MatMulInto(dst, a, c); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(784 * 576 * 128 * 2))
}

// BenchmarkMatMulIntoLeNetShape is LeNet-5's largest conv product:
// [100 x 150] x [150 x 16] (conv_2 on the 14x14x6 map).
func BenchmarkMatMulIntoLeNetShape(b *testing.B) {
	a, c := benchMats(3, 100, 150, 16)
	dst := MustNew(100, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := MatMulInto(dst, a, c); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(100 * 150 * 16 * 2))
}

func BenchmarkIm2Col(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := MustNew(56, 56, 64)
	x.RandNormal(rng, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := Im2Col(x, 3, 3, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIm2ColInto lowers into a reused caller-owned scratch buffer.
func BenchmarkIm2ColInto(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := MustNew(56, 56, 64)
	x.RandNormal(rng, 0, 1)
	dst := make([]float32, 56*56*3*3*64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Im2ColInto(dst, x, 3, 3, 1, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatVec(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := MustNew(1024, 1024)
	a.RandNormal(rng, 0, 1)
	x := make([]float32, 1024)
	for i := range x {
		x[i] = rng.Float32()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MatVec(a, x); err != nil {
			b.Fatal(err)
		}
	}
}
