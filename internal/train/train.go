// Package train provides the SGD training substrate used to train the
// small networks (LeNet-5) for real on the synthetic digit dataset, plus
// the evaluation metrics shared by every accuracy experiment: top-1/top-k
// accuracy and the top-5 fidelity metric used for the large models.
package train

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// SGD is stochastic gradient descent with classical momentum and global
// gradient-norm clipping (a stabilizer for the high-momentum, small-batch
// regime the digit task uses).
type SGD struct {
	LR       float64
	Momentum float64
	// ClipNorm caps the global L2 norm of each step's scaled gradient
	// (0 disables clipping). NewSGD defaults it to 5.
	ClipNorm float64
	vel      map[*tensor.Tensor]*tensor.Tensor
}

// NewSGD creates an optimizer. lr must be positive; momentum in [0, 1).
func NewSGD(lr, momentum float64) (*SGD, error) {
	if lr <= 0 {
		return nil, fmt.Errorf("train: non-positive learning rate %v", lr)
	}
	if momentum < 0 || momentum >= 1 {
		return nil, fmt.Errorf("train: momentum %v out of [0,1)", momentum)
	}
	return &SGD{LR: lr, Momentum: momentum, ClipNorm: 5, vel: make(map[*tensor.Tensor]*tensor.Tensor)}, nil
}

// Step applies one update: p -= lr * (momentum-filtered grad). scale
// divides the accumulated gradient (1/batchSize). If ClipNorm is set and
// the scaled gradient's global L2 norm exceeds it, the gradient is
// rescaled to the cap before the momentum update.
func (o *SGD) Step(params, grads []nn.Param, scale float64) error {
	if len(params) != len(grads) {
		return errors.New("train: params/grads length mismatch")
	}
	if o.ClipNorm > 0 {
		var sq float64
		for i := range grads {
			for _, g := range grads[i].T.Data {
				v := float64(g) * scale
				sq += v * v
			}
		}
		if norm := math.Sqrt(sq); norm > o.ClipNorm {
			scale *= o.ClipNorm / norm
		}
	}
	for i := range params {
		p, g := params[i].T, grads[i].T
		if p.Size() != g.Size() {
			return fmt.Errorf("train: param %q size mismatch", params[i].Name)
		}
		v, ok := o.vel[p]
		if !ok {
			v = tensor.MustNew(p.Shape()...)
			o.vel[p] = v
		}
		for j := range p.Data {
			v.Data[j] = float32(o.Momentum)*v.Data[j] + float32(scale)*g.Data[j]
			p.Data[j] -= float32(o.LR) * v.Data[j]
		}
	}
	return nil
}

// Trainer trains a sequential graph whose final layer is Softmax with
// cross-entropy loss. Every other layer must implement nn.Backprop.
type Trainer struct {
	Net       *nn.Graph
	Opt       *SGD
	BatchSize int
	// LRDecay multiplies the learning rate after each epoch of Fit
	// (0 means no decay).
	LRDecay float64
}

// NewTrainer validates that the graph is linear, softmax-terminated, and
// fully backpropagatable.
func NewTrainer(g *nn.Graph, opt *SGD, batchSize int) (*Trainer, error) {
	if batchSize <= 0 {
		return nil, fmt.Errorf("train: non-positive batch size %d", batchSize)
	}
	names := g.LayerNames()
	if len(names) < 2 {
		return nil, errors.New("train: graph too small to train")
	}
	for i, name := range names {
		in := g.Inputs(name)
		if len(in) != 1 {
			return nil, fmt.Errorf("train: layer %q is not sequential", name)
		}
		want := nn.InputName
		if i > 0 {
			want = names[i-1]
		}
		if in[0] != want {
			return nil, fmt.Errorf("train: layer %q input %q breaks the chain", name, in[0])
		}
		if i == len(names)-1 {
			if _, ok := g.Layer(name).(*nn.Softmax); !ok {
				return nil, fmt.Errorf("train: final layer %q must be softmax", name)
			}
		} else if _, ok := g.Layer(name).(nn.Backprop); !ok {
			return nil, fmt.Errorf("train: layer %q does not support backprop", name)
		}
	}
	return &Trainer{Net: g, Opt: opt, BatchSize: batchSize}, nil
}

// TrainEpoch runs one pass over the samples, updating parameters every
// BatchSize samples, and returns the mean cross-entropy loss.
func (t *Trainer) TrainEpoch(samples []dataset.Sample) (float64, error) {
	if len(samples) == 0 {
		return 0, errors.New("train: no samples")
	}
	names := t.Net.LayerNames()
	var totalLoss float64
	inBatch := 0
	zeroAll := func() {
		for _, name := range names[:len(names)-1] {
			t.Net.Layer(name).(nn.Backprop).ZeroGrads()
		}
	}
	applyStep := func(n int) error {
		for _, name := range names[:len(names)-1] {
			bp := t.Net.Layer(name).(nn.Backprop)
			if len(bp.Params()) == 0 {
				continue
			}
			if err := t.Opt.Step(bp.Params(), bp.Grads(), 1/float64(n)); err != nil {
				return err
			}
		}
		return nil
	}
	zeroAll()
	for _, s := range samples {
		acts, err := t.Net.ForwardAll(s.Image)
		if err != nil {
			return 0, err
		}
		probs := acts[names[len(names)-1]]
		if s.Label < 0 || s.Label >= probs.Size() {
			return 0, fmt.Errorf("train: label %d out of range for %d-way output", s.Label, probs.Size())
		}
		p := float64(probs.Data[s.Label])
		if p < 1e-12 {
			p = 1e-12
		}
		totalLoss += -math.Log(p)
		// Softmax + cross-entropy gradient: dy = p - onehot, injected at
		// the input of the softmax layer.
		dy := probs.Clone()
		dy.Data[s.Label] -= 1
		// Backpropagate through the remaining layers in reverse.
		for i := len(names) - 2; i >= 0; i-- {
			bp := t.Net.Layer(names[i]).(nn.Backprop)
			inName := nn.InputName
			if i > 0 {
				inName = names[i-1]
			}
			dy, err = bp.Backward(acts[inName], dy)
			if err != nil {
				return 0, err
			}
		}
		inBatch++
		if inBatch == t.BatchSize {
			if err := applyStep(inBatch); err != nil {
				return 0, err
			}
			zeroAll()
			inBatch = 0
		}
	}
	if inBatch > 0 {
		if err := applyStep(inBatch); err != nil {
			return 0, err
		}
		zeroAll()
	}
	return totalLoss / float64(len(samples)), nil
}

// Fit trains for the given number of epochs, returning the loss history.
func (t *Trainer) Fit(samples []dataset.Sample, epochs int) ([]float64, error) {
	if epochs <= 0 {
		return nil, fmt.Errorf("train: non-positive epoch count %d", epochs)
	}
	losses := make([]float64, 0, epochs)
	for e := 0; e < epochs; e++ {
		l, err := t.TrainEpoch(samples)
		if err != nil {
			return losses, err
		}
		losses = append(losses, l)
		if t.LRDecay > 0 && t.LRDecay < 1 {
			t.Opt.LR *= t.LRDecay
		}
	}
	return losses, nil
}
