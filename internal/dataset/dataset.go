// Package dataset generates the synthetic evaluation data that substitutes
// for the paper's MNIST and ImageNet test sets (neither is available
// offline):
//
//   - A procedural 10-class digit dataset: 28x28 grayscale seven-segment
//     style digits with random translation, stroke width, amplitude and
//     additive noise. LeNet-5 trains on it for real, so the paper's
//     accuracy-degradation experiments run against a genuinely trained
//     network.
//   - Synthetic natural-image-like inputs (smooth random fields) used as
//     the fixed probe set for the top-5 fidelity metric on the large
//     models.
package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// NumClasses is the number of digit classes.
const NumClasses = 10

// DigitSize is the side of the square digit images.
const DigitSize = 28

// Sample is one labelled image.
type Sample struct {
	Image *tensor.Tensor // [H, W, 1]
	Label int
}

// Seven-segment encoding: segments A (top), B (top right), C (bottom
// right), D (bottom), E (bottom left), F (top left), G (middle).
const (
	segA = 1 << iota
	segB
	segC
	segD
	segE
	segF
	segG
)

var digitSegments = [NumClasses]int{
	0: segA | segB | segC | segD | segE | segF,
	1: segB | segC,
	2: segA | segB | segG | segE | segD,
	3: segA | segB | segG | segC | segD,
	4: segF | segG | segB | segC,
	5: segA | segF | segG | segC | segD,
	6: segA | segF | segG | segE | segC | segD,
	7: segA | segB | segC,
	8: segA | segB | segC | segD | segE | segF | segG,
	9: segA | segB | segC | segD | segF | segG,
}

// DigitImage renders one digit of the given class with randomized
// translation, stroke width, intensity, and noise.
func DigitImage(class int, rng *rand.Rand) (*tensor.Tensor, error) {
	if class < 0 || class >= NumClasses {
		return nil, fmt.Errorf("dataset: class %d out of range", class)
	}
	img := tensor.MustNew(DigitSize, DigitSize, 1)
	// Glyph box: roughly 12x18 pixels, jittered within the canvas.
	left := 8 + rng.Intn(5) - 2 // 6..10
	top := 5 + rng.Intn(5) - 2  // 3..7
	width := 10 + rng.Intn(3)   // 10..12
	height := 16 + rng.Intn(3)  // 16..18
	thick := 2 + rng.Intn(2)    // 2..3
	amp := 0.75 + rng.Float64()*0.25
	segs := digitSegments[class]

	hline := func(y, x0, x1 int) {
		for dy := 0; dy < thick; dy++ {
			for x := x0; x <= x1; x++ {
				setPx(img, y+dy, x, amp)
			}
		}
	}
	vline := func(x, y0, y1 int) {
		for dx := 0; dx < thick; dx++ {
			for y := y0; y <= y1; y++ {
				setPx(img, y, x+dx, amp)
			}
		}
	}
	midY := top + height/2
	if segs&segA != 0 {
		hline(top, left, left+width)
	}
	if segs&segG != 0 {
		hline(midY, left, left+width)
	}
	if segs&segD != 0 {
		hline(top+height, left, left+width)
	}
	if segs&segF != 0 {
		vline(left, top, midY)
	}
	if segs&segB != 0 {
		vline(left+width, top, midY)
	}
	if segs&segE != 0 {
		vline(left, midY, top+height)
	}
	if segs&segC != 0 {
		vline(left+width, midY, top+height)
	}
	// Distractor clutter: a few random short strokes that the network
	// must learn to ignore (keeps convolutional features load-bearing).
	for k := 0; k < 2+rng.Intn(3); k++ {
		y0 := rng.Intn(DigitSize)
		x0 := rng.Intn(DigitSize)
		horiz := rng.Intn(2) == 0
		length := 2 + rng.Intn(4)
		v := 0.3 + rng.Float64()*0.4
		for d := 0; d < length; d++ {
			if horiz {
				setPx(img, y0, x0+d, v)
			} else {
				setPx(img, y0+d, x0, v)
			}
		}
	}
	// Additive Gaussian pixel noise.
	for i := range img.Data {
		v := float64(img.Data[i]) + rng.NormFloat64()*0.15
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		img.Data[i] = float32(v)
	}
	return img, nil
}

func setPx(img *tensor.Tensor, y, x int, v float64) {
	if y < 0 || y >= DigitSize || x < 0 || x >= DigitSize {
		return
	}
	img.Set(float32(v), y, x, 0)
}

// Digits generates n labelled digit samples with classes cycling so the
// set is balanced, deterministically from seed.
func Digits(n int, seed int64) ([]Sample, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataset: non-positive sample count %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Sample, n)
	for i := range out {
		class := i % NumClasses
		img, err := DigitImage(class, rng)
		if err != nil {
			return nil, err
		}
		out[i] = Sample{Image: img, Label: class}
	}
	// Shuffle so training batches mix classes.
	rng.Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out, nil
}

// SyntheticImages generates n smooth random fields of shape [h, w, c] —
// stand-ins for natural images as the fixed probe set of the fidelity
// metric. Each image is low-resolution noise bilinearly upsampled, plus a
// small amount of high-frequency detail, normalized to [0, 1].
func SyntheticImages(n, h, w, c int, seed int64) ([]*tensor.Tensor, error) {
	if n <= 0 || h <= 0 || w <= 0 || c <= 0 {
		return nil, fmt.Errorf("dataset: bad synthetic image geometry n=%d h=%d w=%d c=%d", n, h, w, c)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]*tensor.Tensor, n)
	const coarse = 8
	for i := range out {
		img := tensor.MustNew(h, w, c)
		// Low-resolution base field per channel.
		base := make([][]float64, c)
		for ch := 0; ch < c; ch++ {
			base[ch] = make([]float64, coarse*coarse)
			for j := range base[ch] {
				base[ch][j] = rng.Float64()
			}
		}
		for y := 0; y < h; y++ {
			fy := float64(y) / float64(h) * float64(coarse-1)
			y0 := int(fy)
			ty := fy - float64(y0)
			y1 := y0 + 1
			if y1 >= coarse {
				y1 = coarse - 1
			}
			for x := 0; x < w; x++ {
				fx := float64(x) / float64(w) * float64(coarse-1)
				x0 := int(fx)
				tx := fx - float64(x0)
				x1 := x0 + 1
				if x1 >= coarse {
					x1 = coarse - 1
				}
				for ch := 0; ch < c; ch++ {
					b := base[ch]
					v := b[y0*coarse+x0]*(1-ty)*(1-tx) +
						b[y0*coarse+x1]*(1-ty)*tx +
						b[y1*coarse+x0]*ty*(1-tx) +
						b[y1*coarse+x1]*ty*tx
					v += rng.NormFloat64() * 0.03
					if v < 0 {
						v = 0
					}
					if v > 1 {
						v = 1
					}
					img.Set(float32(v), y, x, ch)
				}
			}
		}
		out[i] = img
	}
	return out, nil
}

// Split partitions samples into train and test sets at the given test
// fraction (0 < frac < 1). The input order is preserved.
func Split(samples []Sample, testFrac float64) (train, test []Sample, err error) {
	if testFrac <= 0 || testFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: test fraction %v out of (0,1)", testFrac)
	}
	nTest := int(float64(len(samples)) * testFrac)
	if nTest == 0 || nTest == len(samples) {
		return nil, nil, fmt.Errorf("dataset: split of %d samples at %v degenerates", len(samples), testFrac)
	}
	return samples[:len(samples)-nTest], samples[len(samples)-nTest:], nil
}
