package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersResolution(t *testing.T) {
	if Workers(3) != 3 {
		t.Errorf("Workers(3) = %d", Workers(3))
	}
	want := runtime.GOMAXPROCS(0)
	if Workers(0) != want || Workers(-1) != want {
		t.Errorf("Workers(0)/Workers(-1) = %d/%d, want %d", Workers(0), Workers(-1), want)
	}
}

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		got, err := Map(context.Background(), workers, 100, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: len = %d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapZeroItems(t *testing.T) {
	got, err := Map(context.Background(), 4, 0, func(_ context.Context, i int) (int, error) {
		t.Error("fn called for zero items")
		return 0, nil
	})
	if err != nil || got != nil {
		t.Errorf("Map over 0 items = %v, %v", got, err)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	_, err := Map(context.Background(), workers, 64, func(_ context.Context, i int) (int, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent items, worker bound is %d", p, workers)
	}
}

func TestMapErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	_, err := Map(context.Background(), 2, 1000, func(_ context.Context, i int) (int, error) {
		calls.Add(1)
		if i == 7 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Cancellation must have skipped most of the remaining work.
	if n := calls.Load(); n == 1000 {
		t.Errorf("all %d items ran despite early failure", n)
	}
}

// TestMapLowestIndexError pins the error choice. With one worker items
// run strictly in index order, so the first failing item's error is
// returned deterministically; with several workers the reported error
// must still be one of the genuine item failures, never a bare
// cancellation.
func TestMapLowestIndexError(t *testing.T) {
	errFor := func(i int) error { return fmt.Errorf("item %d failed", i) }
	_, err := Map(context.Background(), 1, 8, func(_ context.Context, i int) (int, error) {
		if i%2 == 1 {
			return 0, errFor(i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "item 1 failed" {
		t.Fatalf("serial err = %v, want item 1 failed", err)
	}
	for trial := 0; trial < 20; trial++ {
		_, err := Map(context.Background(), 4, 8, func(_ context.Context, i int) (int, error) {
			if i%2 == 1 {
				return 0, errFor(i)
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("trial %d: nil error", trial)
		}
		var n int
		if _, scanErr := fmt.Sscanf(err.Error(), "item %d failed", &n); scanErr != nil || n%2 != 1 {
			t.Fatalf("trial %d: err = %v, want a genuine odd-item failure", trial, err)
		}
	}
}

// TestMapFailureNotMaskedByCancellation: a slow low-index item that
// returns ctx.Err() after a high-index item fails must not hide the real
// error behind context.Canceled.
func TestMapSlowItemDoesNotMaskRealError(t *testing.T) {
	boom := errors.New("boom")
	_, err := Map(context.Background(), 2, 2, func(ctx context.Context, i int) (int, error) {
		if i == 0 {
			<-ctx.Done() // blocks until item 1 fails
			return 0, ctx.Err()
		}
		time.Sleep(5 * time.Millisecond)
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestMapParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	done := make(chan struct{})
	var ran atomic.Int64
	go func() {
		defer close(done)
		_, err := Map(ctx, 2, 1000, func(ctx context.Context, i int) (int, error) {
			if ran.Add(1) == 1 {
				close(started)
			}
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(2 * time.Millisecond):
				return i, nil
			}
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	}()
	<-started
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Map did not return after parent cancellation")
	}
	if n := ran.Load(); n == 1000 {
		t.Error("cancellation did not skip remaining work")
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(context.Background(), 4, 10, func(_ context.Context, i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 45 {
		t.Errorf("sum = %d, want 45", sum.Load())
	}
	boom := errors.New("boom")
	if err := ForEach(context.Background(), 4, 10, func(_ context.Context, i int) error {
		if i == 3 {
			return boom
		}
		return nil
	}); !errors.Is(err, boom) {
		t.Errorf("ForEach err = %v", err)
	}
}

// TestMapEachIndexOnce: no index may be dispatched twice.
func TestMapEachIndexOnce(t *testing.T) {
	counts := make([]atomic.Int64, 200)
	_, err := Map(context.Background(), 8, len(counts), func(_ context.Context, i int) (int, error) {
		counts[i].Add(1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Errorf("index %d ran %d times", i, c)
		}
	}
}
