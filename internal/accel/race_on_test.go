//go:build race

package accel

// raceEnabled reports whether this test binary was built with the race
// detector, whose instrumentation inflates allocation counts.
const raceEnabled = true
