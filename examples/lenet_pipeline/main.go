// lenet_pipeline runs the paper's full evaluation flow (Fig. 8) on
// LeNet-5 end to end, with everything real: train the network on the
// synthetic digit dataset, sweep the tolerance threshold delta over the
// selected layer (dense_1), and for each point report genuine top-1
// accuracy plus the simulated inference latency and energy on the
// NoC-based accelerator — a miniature of Figs. 10a/10b.
package main

import (
	"fmt"
	"log"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/train"
)

func main() {
	const seed = 42
	m, err := models.LeNet5(seed)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Train on the procedural digit dataset.
	samples, err := dataset.Digits(2000, seed)
	if err != nil {
		log.Fatal(err)
	}
	trainSet, testSet, err := dataset.Split(samples, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := train.NewSGD(0.05, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	trainer, err := train.NewTrainer(m.Graph, opt, 16)
	if err != nil {
		log.Fatal(err)
	}
	trainer.LRDecay = 0.85
	fmt.Println("training LeNet-5 on the synthetic digit dataset...")
	losses, err := trainer.Fit(trainSet, 10)
	if err != nil {
		log.Fatal(err)
	}
	for e, l := range losses {
		fmt.Printf("  epoch %d: loss %.4f\n", e+1, l)
	}
	baseAcc, err := train.Accuracy(m.Graph, testSet)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test top-1 accuracy: %.4f\n\n", baseAcc)

	// 2. Baseline accelerator simulation.
	sim, err := accel.NewSimulator(accel.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	baseSpecs, err := accel.SpecsFromModel(m, nil, core.DefaultStorage)
	if err != nil {
		log.Fatal(err)
	}
	base, err := sim.SimulateModel(m.Name, baseSpecs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original inference: %d cycles, %.2f uJ\n\n", base.Cycles, base.Energy.Total()/1e6)

	// 3. Delta sweep over the trained dense_1 weights (the Fig. 8 flow).
	orig, err := m.SelectedWeights()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%6s %8s %9s %10s %10s %10s\n", "delta", "CR", "MSE", "accuracy", "latency", "energy")
	fmt.Printf("%6s %8s %9s %10.4f %10.3f %10.3f\n", "orig", "-", "-", baseAcc, 1.0, 1.0)
	for _, pct := range []float64{0, 5, 10, 15, 20} {
		c, err := core.CompressPct(orig, pct)
		if err != nil {
			log.Fatal(err)
		}
		approx, err := c.Decompress()
		if err != nil {
			log.Fatal(err)
		}
		if err := m.SetSelectedWeights(approx); err != nil {
			log.Fatal(err)
		}
		acc, err := train.Accuracy(m.Graph, testSet)
		if err != nil {
			log.Fatal(err)
		}
		specs, err := accel.SpecsFromModel(m, map[string]*core.Compressed{m.SelectedLayer: c}, core.DefaultStorage)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.SimulateModel(m.Name, specs)
		if err != nil {
			log.Fatal(err)
		}
		var mse float64
		for i := range orig {
			d := orig[i] - approx[i]
			mse += d * d
		}
		mse /= float64(len(orig))
		fmt.Printf("%5.0f%% %8.2f %9.2e %10.4f %10.3f %10.3f\n",
			pct, c.CompressionRatio(core.DefaultStorage), mse, acc,
			float64(res.Cycles)/float64(base.Cycles),
			res.Energy.Total()/base.Energy.Total())
	}
	if err := m.SetSelectedWeights(orig); err != nil {
		log.Fatal(err)
	}
}
