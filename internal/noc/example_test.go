package noc_test

import (
	"fmt"

	"repro/internal/noc"
)

// Example sends one packet across the paper's 4x4 mesh and reports its
// delivery.
func Example() {
	nw, err := noc.New(noc.DefaultConfig())
	if err != nil {
		fmt.Println(err)
		return
	}
	nw.SetSink(func(d noc.Delivery) {
		fmt.Printf("delivered %d flits from %d to %d\n", d.Packet.Flits, d.Packet.Src, d.Packet.Dst)
	})
	if err := nw.Inject(noc.Packet{Src: 0, Dst: 15, Flits: 4}); err != nil {
		fmt.Println(err)
		return
	}
	if _, ok := nw.RunUntilIdle(10000); !ok {
		fmt.Println("did not drain")
		return
	}
	st := nw.Stats()
	fmt.Printf("flits conserved: %v\n", st.FlitsInjected == st.FlitsEjected)
	// Output:
	// delivered 4 flits from 0 to 15
	// flits conserved: true
}

// ExampleNetwork_SendMessage segments a large transfer into packets.
func ExampleNetwork_SendMessage() {
	nw, err := noc.New(noc.DefaultConfig())
	if err != nil {
		fmt.Println(err)
		return
	}
	packets, err := nw.SendMessage(0, 5, 100, "weights")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("packets:", packets)
	// Output:
	// packets: 4
}
