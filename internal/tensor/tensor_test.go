package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndShape(t *testing.T) {
	x, err := New(2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if x.Rank() != 3 || x.Size() != 24 || x.Dim(1) != 3 {
		t.Errorf("rank=%d size=%d dim1=%d", x.Rank(), x.Size(), x.Dim(1))
	}
	if _, err := New(2, 0); err == nil {
		t.Error("zero dim should error")
	}
	if _, err := New(-1); err == nil {
		t.Error("negative dim should error")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with bad shape should panic")
		}
	}()
	MustNew(0)
}

func TestFromSlice(t *testing.T) {
	x, err := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if x.At(1, 2) != 6 || x.At(0, 0) != 1 {
		t.Errorf("At values wrong: %v %v", x.At(1, 2), x.At(0, 0))
	}
	if _, err := FromSlice([]float32{1, 2}, 3); err == nil {
		t.Error("size mismatch should error")
	}
}

func TestAtSetRowMajor(t *testing.T) {
	x := MustNew(2, 3)
	x.Set(7, 1, 0)
	if x.Data[3] != 7 {
		t.Errorf("row-major layout broken: %v", x.Data)
	}
	if x.At(1, 0) != 7 {
		t.Error("At after Set mismatch")
	}
}

func TestAtPanics(t *testing.T) {
	x := MustNew(2, 2)
	for _, idx := range [][]int{{0}, {2, 0}, {0, -1}, {0, 0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%v) should panic", idx)
				}
			}()
			x.At(idx...)
		}()
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := MustNew(2, 6)
	y, err := x.Reshape(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	y.Set(5, 0, 0)
	if x.At(0, 0) != 5 {
		t.Error("Reshape should share data")
	}
	if _, err := x.Reshape(5); err == nil {
		t.Error("volume mismatch should error")
	}
}

func TestCloneIndependent(t *testing.T) {
	x := MustNew(4)
	x.Fill(1)
	y := x.Clone()
	y.Set(9, 2)
	if x.At(2) != 1 {
		t.Error("Clone should not share data")
	}
}

func TestFillZeroScale(t *testing.T) {
	x := MustNew(3)
	x.Fill(2)
	x.Scale(1.5)
	if x.At(1) != 3 {
		t.Errorf("Scale result %v", x.At(1))
	}
	x.Zero()
	if x.At(0) != 0 {
		t.Error("Zero failed")
	}
}

func TestRandInit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := MustNew(10000)
	x.RandNormal(rng, 0, 0.1)
	var mean, varsum float64
	for _, v := range x.Data {
		mean += float64(v)
	}
	mean /= float64(x.Size())
	for _, v := range x.Data {
		d := float64(v) - mean
		varsum += d * d
	}
	std := math.Sqrt(varsum / float64(x.Size()))
	if math.Abs(mean) > 0.01 || math.Abs(std-0.1) > 0.01 {
		t.Errorf("RandNormal mean=%v std=%v", mean, std)
	}
	x.RandUniform(rng, -1, 1)
	for _, v := range x.Data {
		if v < -1 || v >= 1 {
			t.Fatalf("RandUniform out of range: %v", v)
		}
	}
}

func TestFloat64sRoundTrip(t *testing.T) {
	x := MustNew(5)
	rng := rand.New(rand.NewSource(2))
	x.RandNormal(rng, 0, 1)
	vals := x.Float64s()
	y := MustNew(5)
	if err := y.SetFloat64s(vals); err != nil {
		t.Fatal(err)
	}
	for i := range x.Data {
		if x.Data[i] != y.Data[i] {
			t.Errorf("round trip mismatch at %d", i)
		}
	}
	if err := y.SetFloat64s(vals[:2]); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestAdd(t *testing.T) {
	a, _ := FromSlice([]float32{1, 2}, 2)
	b, _ := FromSlice([]float32{10, 20}, 2)
	c, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.At(0) != 11 || c.At(1) != 22 {
		t.Errorf("Add = %v", c.Data)
	}
	if a.At(0) != 1 {
		t.Error("Add mutated operand")
	}
	bad := MustNew(3)
	if _, err := Add(a, bad); err == nil {
		t.Error("shape mismatch should error")
	}
}

func TestSameShape(t *testing.T) {
	if !SameShape(MustNew(2, 3), MustNew(2, 3)) {
		t.Error("equal shapes reported different")
	}
	if SameShape(MustNew(2, 3), MustNew(3, 2)) {
		t.Error("different shapes reported same")
	}
	if SameShape(MustNew(6), MustNew(2, 3)) {
		t.Error("different ranks reported same")
	}
}

func TestDot(t *testing.T) {
	got := Dot([]float32{1, 2, 3}, []float32{4, 5, 6})
	if got != 32 {
		t.Errorf("Dot = %v", got)
	}
	if Dot(nil, nil) != 0 {
		t.Error("empty Dot should be 0")
	}
}

func TestMatMulKnown(t *testing.T) {
	a, _ := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b, _ := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Errorf("MatMul[%d] = %v, want %v", i, c.Data[i], v)
		}
	}
	if _, err := MatMul(a, a); err == nil {
		t.Error("inner mismatch should error")
	}
	if _, err := MatMul(MustNew(2), b); err == nil {
		t.Error("rank mismatch should error")
	}
}

func TestMatMulIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a := MustNew(n, n)
		a.RandNormal(rng, 0, 1)
		eye := MustNew(n, n)
		for i := 0; i < n; i++ {
			eye.Set(1, i, i)
		}
		c, err := MatMul(a, eye)
		if err != nil {
			return false
		}
		for i := range a.Data {
			if math.Abs(float64(c.Data[i]-a.Data[i])) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMatVec(t *testing.T) {
	a, _ := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	got, err := MatVec(a, []float32{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || got[1] != 7 {
		t.Errorf("MatVec = %v", got)
	}
	if _, err := MatVec(a, []float32{1}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// 1x1 kernel, stride 1, no pad: rows are exactly the input pixels.
	x, _ := FromSlice([]float32{1, 2, 3, 4}, 2, 2, 1)
	cols, oh, ow, err := Im2Col(x, 1, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if oh != 2 || ow != 2 {
		t.Fatalf("out dims %dx%d", oh, ow)
	}
	for i, v := range []float32{1, 2, 3, 4} {
		if cols.Data[i] != v {
			t.Errorf("cols[%d] = %v", i, cols.Data[i])
		}
	}
}

func TestIm2ColPaddingZeros(t *testing.T) {
	x, _ := FromSlice([]float32{5}, 1, 1, 1)
	cols, oh, ow, err := Im2Col(x, 3, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if oh != 1 || ow != 1 {
		t.Fatalf("out dims %dx%d", oh, ow)
	}
	// Center tap is the value, everything else padding zeros.
	for i, v := range cols.Data {
		want := float32(0)
		if i == 4 {
			want = 5
		}
		if v != want {
			t.Errorf("cols[%d] = %v, want %v", i, v, want)
		}
	}
}

func TestIm2ColStride(t *testing.T) {
	x := MustNew(4, 4, 1)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	cols, oh, ow, err := Im2Col(x, 2, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if oh != 2 || ow != 2 {
		t.Fatalf("out dims %dx%d", oh, ow)
	}
	// First window covers pixels 0,1,4,5.
	want := []float32{0, 1, 4, 5}
	for i, v := range want {
		if cols.Data[i] != v {
			t.Errorf("window0[%d] = %v, want %v", i, cols.Data[i], v)
		}
	}
}

func TestIm2ColErrors(t *testing.T) {
	x := MustNew(2, 2)
	if _, _, _, err := Im2Col(x, 1, 1, 1, 0); err == nil {
		t.Error("rank-2 input should error")
	}
	x3 := MustNew(2, 2, 1)
	if _, _, _, err := Im2Col(x3, 1, 1, 0, 0); err == nil {
		t.Error("zero stride should error")
	}
	if _, _, _, err := Im2Col(x3, 5, 5, 1, 0); err == nil {
		t.Error("kernel larger than input without pad should error")
	}
	if _, _, _, err := Im2Col(x3, 1, 1, 1, -1); err == nil {
		t.Error("negative pad should error")
	}
}

func TestConvOutDim(t *testing.T) {
	if got := ConvOutDim(28, 5, 1, 0); got != 24 {
		t.Errorf("ConvOutDim = %d, want 24", got)
	}
	if got := ConvOutDim(224, 3, 2, 1); got != 112 {
		t.Errorf("ConvOutDim = %d, want 112", got)
	}
}

func TestAllFinite(t *testing.T) {
	x := MustNew(3)
	if !x.AllFinite() {
		t.Error("zeros should be finite")
	}
	x.Data[1] = float32(math.NaN())
	if x.AllFinite() {
		t.Error("NaN should be detected")
	}
	x.Data[1] = float32(math.Inf(1))
	if x.AllFinite() {
		t.Error("Inf should be detected")
	}
}

func TestString(t *testing.T) {
	if s := MustNew(2, 2).String(); s == "" {
		t.Error("empty String()")
	}
}
