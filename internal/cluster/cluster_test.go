package cluster

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/accel"
	"repro/internal/faults"
	"repro/internal/parallel"
)

// testVersions builds two synthetic weight-version epochs: version 1 is
// the raw model, version 2 a compressed plan (half the weight bytes).
// Small geometry keeps the per-shard costing simulations fast.
func testVersions() []VersionPlan {
	var raw, comp []accel.LayerSpec
	for i := 0; i < 6; i++ {
		kind, spatial := "CONV", 64
		if i >= 4 {
			kind, spatial = "FC", 1
		}
		s := accel.LayerSpec{
			Name:        fmt.Sprintf("l%d", i),
			Kind:        kind,
			MACs:        200_000,
			WeightBytes: 4096,
			InputBytes:  2048,
			OutputBytes: 2048,
			OutSpatial:  spatial,
		}
		raw = append(raw, s)
		cs := s
		cs.WeightBytes = s.WeightBytes / 2
		cs.WeightCount = s.WeightBytes / 4
		cs.Compressed = true
		comp = append(comp, cs)
	}
	return []VersionPlan{
		{Version: 1, Level: 0, Specs: raw},
		{Version: 2, Level: 10, Specs: comp},
	}
}

// testSpec is the baseline 5-node scenario.
func testSpec(seed int64) Spec {
	return Spec{
		Nodes:    5,
		Shards:   2,
		Seed:     seed,
		Accel:    accel.DefaultConfig(),
		Versions: testVersions(),
		Requests: 60,
		Interval: 200,
	}
}

// render flattens a report into a canonical string for byte-for-byte
// comparison (fmt prints maps in sorted key order).
func render(r *Report) string {
	return fmt.Sprintf("%+v", *r)
}

func TestClusterSteadyState(t *testing.T) {
	rep, err := Run(testSpec(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Availability != 1 {
		t.Fatalf("availability %.3f, want 1.0 with no faults:\n%s", rep.Availability, render(rep))
	}
	if rep.MixedVersion != 0 || rep.Failed != 0 {
		t.Fatalf("mixed=%d failed=%d, want 0/0:\n%s", rep.MixedVersion, rep.Failed, render(rep))
	}
	if rep.ServedByVersion[1] != rep.Served {
		t.Fatalf("served versions %v, want all at version 1", rep.ServedByVersion)
	}
	if rep.EpochOutcome != "none" {
		t.Fatalf("epoch outcome %q without a rollout", rep.EpochOutcome)
	}
}

func TestClusterRolloutCommitsCleanly(t *testing.T) {
	s := testSpec(2)
	s.RolloutAt = 2000
	s.RolloutRetries = 10
	rep, err := Run(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EpochOutcome != "committed" {
		t.Fatalf("epoch outcome %q, want committed:\n%s", rep.EpochOutcome, render(rep))
	}
	for id, v := range rep.FinalActive {
		if v != 2 {
			t.Fatalf("node %d finished at version %d, want 2:\n%s", id, v, render(rep))
		}
	}
	if rep.MixedVersion != 0 {
		t.Fatalf("mixed-version responses: %d", rep.MixedVersion)
	}
	if rep.ServedByVersion[2] == 0 {
		t.Fatalf("nothing served at the new epoch: %v", rep.ServedByVersion)
	}
	if rep.Availability < 0.95 {
		t.Fatalf("availability %.3f under a clean rollout:\n%s", rep.Availability, render(rep))
	}
}

// chaosSpec is the acceptance scenario: a 5-node cluster rolling out a
// compressed weight epoch while the leader is killed mid-rollout and a
// minority is partitioned away, over a lossy fabric; both heal later.
func chaosSpec(seed int64) Spec {
	s := testSpec(seed)
	s.Faults = faults.Model{
		MsgDropRate:  0.02,
		MsgDelayRate: 0.05,
		MsgDupRate:   0.02,
	}
	s.RequestRetries = 1 // one retransmit absorbs most single drops
	s.RolloutAt = 2500
	s.RolloutRetries = 20
	s.KillLeaderAt = 2650 // between the stage proposal and its activation
	s.PartitionAt = 3000
	s.HealAt = 9000
	s.RestartAt = 11000
	return s
}

// degradedFloor is the availability the degraded modes must preserve in
// the chaos scenario: failover and previous-epoch fallback keep serving
// while a node is dead and a minority is stranded.
const degradedFloor = 0.90

func checkChaosInvariants(t *testing.T, rep *Report) {
	t.Helper()
	if rep.MixedVersion != 0 {
		t.Fatalf("served %d mixed-version responses:\n%s", rep.MixedVersion, render(rep))
	}
	if rep.Availability < degradedFloor {
		t.Fatalf("availability %.3f below the degraded-mode floor %.2f:\n%s",
			rep.Availability, degradedFloor, render(rep))
	}
	if rep.EpochOutcome != "committed" && rep.EpochOutcome != "rolled-back" {
		t.Fatalf("epoch outcome %q after heal, want committed or rolled-back:\n%s",
			rep.EpochOutcome, render(rep))
	}
	// After heal + restart, live nodes must agree on the serving version.
	agree := map[int]bool{}
	for _, v := range rep.FinalActive {
		if v >= 0 {
			agree[v] = true
		}
	}
	if len(agree) != 1 {
		t.Fatalf("live nodes disagree on the active version %v:\n%s", rep.FinalActive, render(rep))
	}
}

func TestClusterChaosLeaderKillAndPartition(t *testing.T) {
	rep, err := Run(chaosSpec(7), nil)
	if err != nil {
		t.Fatal(err)
	}
	checkChaosInvariants(t, rep)
	if rep.FailedOver == 0 {
		t.Fatalf("chaos run performed no failovers — scenario too tame:\n%s", render(rep))
	}
}

// TestClusterChaosDeterministicAcrossWorkers is the acceptance pin: the
// chaos scenario's outcome is byte-identical for a fixed seed whether
// scenarios run serially or on 4 workers (run under -race in CI).
func TestClusterChaosDeterministicAcrossWorkers(t *testing.T) {
	seeds := []int64{7, 21, 1009}
	run := func(workers int) []string {
		out, err := parallel.Map(context.Background(), workers, len(seeds),
			func(_ context.Context, i int) (string, error) {
				rep, err := Run(chaosSpec(seeds[i]), nil)
				if err != nil {
					return "", err
				}
				return render(rep), nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	for _, workers := range []int{4} {
		par := run(workers)
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("seed %d: workers=%d diverged from serial\nserial: %s\npar:    %s",
					seeds[i], workers, serial[i], par[i])
			}
		}
	}
	// And replaying serially is also byte-identical.
	again := run(1)
	for i := range serial {
		if again[i] != serial[i] {
			t.Fatalf("seed %d: replay diverged", seeds[i])
		}
	}
	for i, r := range serial {
		rep, err := Run(chaosSpec(seeds[i]), nil)
		if err != nil {
			t.Fatal(err)
		}
		checkChaosInvariants(t, rep)
		if render(rep) != r {
			t.Fatalf("seed %d: fresh run diverged from pooled run", seeds[i])
		}
	}
}

func TestClusterReportRendersStable(t *testing.T) {
	rep, err := Run(testSpec(3), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := render(rep)
	for _, want := range []string{"Availability", "EpochOutcome", "FinalActive", "MixedVersion"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered report missing %q: %s", want, s)
		}
	}
}
