// Package repro's root benchmark harness: one testing.B benchmark per
// paper table and figure (running the experiment at test scale; use
// cmd/benchtables for the full sweeps), plus ablation benchmarks for the
// design decisions called out in DESIGN.md. Custom metrics report the
// quantities of interest (compression ratios, cycle counts) alongside the
// usual ns/op.
package repro

import (
	"math/rand"
	"testing"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/models"
	"repro/internal/noc"
	"repro/internal/stats"
)

func benchOpts() experiments.Options {
	o := experiments.FastOptions()
	o.Seed = 2020
	return o
}

// BenchmarkTable1ModelInventory regenerates Table I.
func BenchmarkTable1ModelInventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(rows[0].Params), "params")
		}
	}
}

// BenchmarkTable2Compression regenerates Table II.
func BenchmarkTable2Compression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[len(rows)-1].CR, "CR@20%")
		}
	}
}

// BenchmarkTable3QuantCompress regenerates Table III.
func BenchmarkTable3QuantCompress(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[len(rows)-1].WeightedCR, "wCR@20%")
		}
	}
}

// BenchmarkFig2LayerBreakdown regenerates Fig. 2.
func BenchmarkFig2LayerBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var mem, tot uint64
			for _, r := range rows {
				mem += r.Latency.Memory
				tot += r.Cycles
			}
			b.ReportMetric(float64(mem)/float64(tot), "mem-frac")
		}
	}
}

// BenchmarkFig3Entropy regenerates Fig. 3.
func BenchmarkFig3Entropy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[len(rows)-1].EntropyBits, "bits/byte")
		}
	}
}

// BenchmarkFig9Sensitivity regenerates Fig. 9.
func BenchmarkFig9Sensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10TradeOff regenerates Fig. 10.
func BenchmarkFig10TradeOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig10(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(pts[len(pts)-1].LatencyNorm, "lat@20%")
			b.ReportMetric(pts[len(pts)-1].EnergyNorm, "energy@20%")
		}
	}
}

// benchWeights returns a calibrated trained-like weight stream.
func benchWeights(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, n)
	for i := range w {
		v := rng.NormFloat64()
		if v > 4 {
			v = 4
		} else if v < -4 {
			v = -4
		}
		w[i] = v * 0.01
	}
	w[0], w[1] = 0.04, -0.04
	return w
}

// BenchmarkAblationStrictVsWeak compares the strict-sense criterion
// (delta = 0) against the weak-sense criterion at delta = 15% — the
// Fig. 5 design decision.
func BenchmarkAblationStrictVsWeak(b *testing.B) {
	w := benchWeights(200_000, 11)
	var crStrict, crWeak float64
	for i := 0; i < b.N; i++ {
		s, err := core.Compress(w, 0)
		if err != nil {
			b.Fatal(err)
		}
		k, err := core.CompressPct(w, 15)
		if err != nil {
			b.Fatal(err)
		}
		crStrict = s.CompressionRatio(core.DefaultStorage)
		crWeak = k.CompressionRatio(core.DefaultStorage)
	}
	b.ReportMetric(crStrict, "CR-strict")
	b.ReportMetric(crWeak, "CR-weak15")
}

// BenchmarkAblationStorageFormat compares the paper's two-word segment
// accounting against the conservative layout with an explicit 16-bit
// length field.
func BenchmarkAblationStorageFormat(b *testing.B) {
	w := benchWeights(200_000, 12)
	var paper, realistic float64
	for i := 0; i < b.N; i++ {
		c, err := core.CompressPct(w, 15)
		if err != nil {
			b.Fatal(err)
		}
		paper = c.CompressionRatio(core.DefaultStorage)
		realistic = c.CompressionRatio(core.RealisticStorage)
	}
	b.ReportMetric(paper, "CR-paper")
	b.ReportMetric(realistic, "CR-realistic")
}

// BenchmarkAblationLeastSquaresVsEndpoint compares the per-segment
// least-squares fit against the cheaper endpoint interpolation.
func BenchmarkAblationLeastSquaresVsEndpoint(b *testing.B) {
	w := benchWeights(100_000, 13)
	var mseLSQ, mseEnd float64
	for i := 0; i < b.N; i++ {
		c, err := core.CompressPct(w, 15)
		if err != nil {
			b.Fatal(err)
		}
		approx, err := c.Decompress()
		if err != nil {
			b.Fatal(err)
		}
		mseLSQ, _ = stats.MSE(w, approx)
		// Endpoint interpolation over the same segmentation.
		runs := core.SegmentBounds(w, c.Delta)
		end := make([]float64, 0, len(w))
		for _, r := range runs {
			seg := w[r.Start : r.Start+r.Len]
			m := 0.0
			if r.Len > 1 {
				m = (seg[r.Len-1] - seg[0]) / float64(r.Len-1)
			}
			acc := float32(seg[0])
			for j := 0; j < r.Len; j++ {
				if j > 0 {
					acc += float32(m)
				}
				end = append(end, float64(acc))
			}
		}
		mseEnd, _ = stats.MSE(w, end)
	}
	b.ReportMetric(mseLSQ*1e6, "MSE-lsq-x1e6")
	b.ReportMetric(mseEnd*1e6, "MSE-endpoint-x1e6")
}

// BenchmarkAblationDecompressionThroughput compares a serial one-weight-
// per-cycle decompression unit against the default per-multiplier array
// (64/cycle) on the compressed LeNet dense_1 layer.
func BenchmarkAblationDecompressionThroughput(b *testing.B) {
	m, err := models.LeNet5(1)
	if err != nil {
		b.Fatal(err)
	}
	w, err := m.SelectedWeights()
	if err != nil {
		b.Fatal(err)
	}
	c, err := core.CompressPct(w, 15)
	if err != nil {
		b.Fatal(err)
	}
	specs, err := accel.SpecsFromModel(m, map[string]*core.Compressed{m.SelectedLayer: c}, core.DefaultStorage)
	if err != nil {
		b.Fatal(err)
	}
	var fast, slow uint64
	for i := 0; i < b.N; i++ {
		cfg := accel.DefaultConfig()
		sim, err := accel.NewSimulator(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rf, err := sim.SimulateModel(m.Name, specs)
		if err != nil {
			b.Fatal(err)
		}
		fast = rf.Cycles
		cfg.DecompUnits = 1
		sim1, err := accel.NewSimulator(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rs, err := sim1.SimulateModel(m.Name, specs)
		if err != nil {
			b.Fatal(err)
		}
		slow = rs.Cycles
	}
	b.ReportMetric(float64(fast), "cycles-64/cy")
	b.ReportMetric(float64(slow), "cycles-1/cy")
}

// BenchmarkAblationDecompressPlacement compares decompression inside the
// PEs (compressed flits cross the NoC, the paper's design) against
// decompression at the memory interfaces (only DRAM traffic shrinks).
func BenchmarkAblationDecompressPlacement(b *testing.B) {
	m, err := models.LeNet5(1)
	if err != nil {
		b.Fatal(err)
	}
	w, err := m.SelectedWeights()
	if err != nil {
		b.Fatal(err)
	}
	c, err := core.CompressPct(w, 15)
	if err != nil {
		b.Fatal(err)
	}
	pe, err := accel.SpecsFromModel(m, map[string]*core.Compressed{m.SelectedLayer: c}, core.DefaultStorage)
	if err != nil {
		b.Fatal(err)
	}
	// Memory-side variant: DRAM sees compressed bytes, NoC sees raw.
	mem, err := accel.SpecsFromModel(m, nil, core.DefaultStorage)
	if err != nil {
		b.Fatal(err)
	}
	for i := range mem {
		if mem[i].Name == m.SelectedLayer {
			mem[i].WeightBytesDRAM = pe[i].WeightBytes
		}
	}
	sim, err := accel.NewSimulator(accel.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	var atPE, atMI uint64
	for i := 0; i < b.N; i++ {
		rp, err := sim.SimulateModel(m.Name, pe)
		if err != nil {
			b.Fatal(err)
		}
		rm, err := sim.SimulateModel(m.Name, mem)
		if err != nil {
			b.Fatal(err)
		}
		atPE, atMI = rp.Cycles, rm.Cycles
	}
	b.ReportMetric(float64(atPE), "cycles-PE-decomp")
	b.ReportMetric(float64(atMI), "cycles-MI-decomp")
}

// BenchmarkAblationVirtualChannels compares plain wormhole against a
// 4-VC router on mixed-size uniform random traffic, where long packets
// head-of-line block short ones: the metric is mean packet latency.
func BenchmarkAblationVirtualChannels(b *testing.B) {
	run := func(vcs int) float64 {
		cfg := noc.DefaultConfig()
		cfg.VirtualChannels = vcs
		cfg.BufferDepth = 2
		nw, err := noc.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		for k := 0; k < 300; k++ {
			src, dst := rng.Intn(16), rng.Intn(16)
			if dst == src {
				dst = (src + 7) % 16
			}
			flits := 1 + rng.Intn(4)
			if rng.Intn(4) == 0 {
				flits = 24 // occasional long packet
			}
			if err := nw.Inject(noc.Packet{Src: src, Dst: dst, Flits: flits}); err != nil {
				b.Fatal(err)
			}
			nw.Step()
			nw.Step()
		}
		if _, ok := nw.RunUntilIdle(1_000_000); !ok {
			b.Fatal("did not drain")
		}
		return nw.Stats().AvgPacketLatency()
	}
	var l1, l4 float64
	for i := 0; i < b.N; i++ {
		l1 = run(1)
		l4 = run(4)
	}
	b.ReportMetric(l1, "latency-1vc")
	b.ReportMetric(l4, "latency-4vc")
}
