package nn

import (
	"bytes"
	"testing"

	"repro/internal/tensor"
)

func serTestGraph(t *testing.T, seed int64) *Graph {
	t.Helper()
	c, err := NewConv2D("c1", 3, 3, 1, 4, 1, 1, rng(seed))
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDense("fc", 4*4*4, 10, rng(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	g, err := Sequential(c, NewReLU("r"), NewFlatten("f"), d, NewSoftmax("s"))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSaveLoadRoundTrip(t *testing.T) {
	src := serTestGraph(t, 1)
	dst := serTestGraph(t, 2) // different weights, same topology
	var buf bytes.Buffer
	if err := SaveWeights(&buf, src); err != nil {
		t.Fatal(err)
	}
	if err := LoadWeights(&buf, dst); err != nil {
		t.Fatal(err)
	}
	// Every parameter must now match bit-exactly.
	sl, dl := src.Layers(), dst.Layers()
	for i := range sl {
		sp, dp := sl[i].Params(), dl[i].Params()
		for j := range sp {
			for k := range sp[j].T.Data {
				if sp[j].T.Data[k] != dp[j].T.Data[k] {
					t.Fatalf("layer %s param %s elem %d mismatch", sl[i].Name(), sp[j].Name, k)
				}
			}
		}
	}
	// And the loaded network computes identically.
	x := tensor.MustNew(4, 4, 1)
	x.RandNormal(rng(3), 0, 1)
	ys, err := src.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	yd, err := dst.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ys.Data {
		if ys.Data[i] != yd.Data[i] {
			t.Fatalf("forward mismatch at %d", i)
		}
	}
}

func TestLoadWeightsRejectsMismatch(t *testing.T) {
	src := serTestGraph(t, 1)
	var buf bytes.Buffer
	if err := SaveWeights(&buf, src); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Different topology: an extra dense layer.
	other := NewGraph()
	d1, _ := NewDense("a", 4, 4, rng(5))
	other.MustAdd(d1)
	if err := LoadWeights(bytes.NewReader(data), other); err == nil {
		t.Error("topology mismatch accepted")
	}

	// Same layer count, different shape.
	g2 := NewGraph()
	c2, _ := NewConv2D("c1", 3, 3, 1, 8, 1, 1, rng(6)) // 8 filters, not 4
	g2.MustAdd(c2)
	d2, _ := NewDense("fc", 8*4*4, 10, rng(7))
	g2.MustAdd(NewFlatten("f"))
	g2.MustAdd(d2)
	if err := LoadWeights(bytes.NewReader(data), g2); err == nil {
		t.Error("shape mismatch accepted")
	}

	// Corrupt magic.
	bad := append([]byte("XXXX"), data[4:]...)
	if err := LoadWeights(bytes.NewReader(bad), serTestGraph(t, 8)); err != ErrBadWeightMagic {
		t.Errorf("bad magic error = %v", err)
	}

	// Truncations must error, not panic.
	for _, cut := range []int{5, 10, 20, len(data) / 2, len(data) - 1} {
		if err := LoadWeights(bytes.NewReader(data[:cut]), serTestGraph(t, 9)); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestSaveLoadEmptyGraphParams(t *testing.T) {
	// A graph with no parameterized layers round-trips trivially.
	g, err := Sequential(NewFlatten("f"), NewSoftmax("s"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveWeights(&buf, g); err != nil {
		t.Fatal(err)
	}
	if err := LoadWeights(&buf, g); err != nil {
		t.Fatal(err)
	}
}
