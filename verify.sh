#!/bin/sh
# verify.sh — the repository's full verification gate: build, vet, the
# test suite, and the race-enabled suite (the parallel experiment engine
# makes the race run mandatory, not optional).
#
# Usage: ./verify.sh [-short]   (-short is forwarded to both test runs)
set -eu

cd "$(dirname "$0")"

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test $* ./..."
go test -timeout 30m "$@" ./...

# The race run needs a raised per-package timeout: the detector's 5-20x
# slowdown puts internal/experiments past go test's default 10m on
# low-core machines.
echo "== go test -race $* ./..."
go test -race -timeout 60m "$@" ./...

echo "verify.sh: all checks passed"
