package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// InputName is the reserved node name that refers to the graph input.
const InputName = "input"

// node is one vertex of the computation DAG.
type node struct {
	layer  Layer
	inputs []string // predecessor node names ("input" for the graph input)
}

// Graph is a single-input, single-output DAG of layers. Layers must be
// added in topological order (each input must already exist), which also
// fixes the execution order.
type Graph struct {
	nodes  map[string]*node
	order  []string // topological execution order
	output string   // defaults to the last added layer
}

// NewGraph creates an empty computation graph.
func NewGraph() *Graph {
	return &Graph{nodes: make(map[string]*node)}
}

// Add appends a layer whose inputs are the named predecessor nodes (or
// InputName). With no inputs given, the layer consumes the previously
// added layer (or the graph input if it is the first). The layer's name
// must be unique. The last added layer becomes the graph output.
func (g *Graph) Add(l Layer, inputs ...string) error {
	name := l.Name()
	if name == "" || name == InputName {
		return fmt.Errorf("nn: invalid layer name %q", name)
	}
	if _, dup := g.nodes[name]; dup {
		return fmt.Errorf("nn: duplicate layer name %q", name)
	}
	if len(inputs) == 0 {
		if len(g.order) == 0 {
			inputs = []string{InputName}
		} else {
			inputs = []string{g.order[len(g.order)-1]}
		}
	}
	for _, in := range inputs {
		if in == InputName {
			continue
		}
		if _, ok := g.nodes[in]; !ok {
			return fmt.Errorf("nn: layer %q references unknown input %q", name, in)
		}
	}
	g.nodes[name] = &node{layer: l, inputs: append([]string(nil), inputs...)}
	g.order = append(g.order, name)
	g.output = name
	return nil
}

// MustAdd is Add but panics on error; for statically correct model builders.
func (g *Graph) MustAdd(l Layer, inputs ...string) {
	if err := g.Add(l, inputs...); err != nil {
		panic(err)
	}
}

// SetOutput overrides the output node.
func (g *Graph) SetOutput(name string) error {
	if _, ok := g.nodes[name]; !ok {
		return fmt.Errorf("nn: unknown output node %q", name)
	}
	g.output = name
	return nil
}

// Output returns the output node name.
func (g *Graph) Output() string { return g.output }

// LayerNames returns the layer names in execution order.
func (g *Graph) LayerNames() []string { return append([]string(nil), g.order...) }

// Layer returns the named layer, or nil.
func (g *Graph) Layer(name string) Layer {
	n, ok := g.nodes[name]
	if !ok {
		return nil
	}
	return n.layer
}

// Layers returns all layers in execution order.
func (g *Graph) Layers() []Layer {
	out := make([]Layer, len(g.order))
	for i, name := range g.order {
		out[i] = g.nodes[name].layer
	}
	return out
}

// Inputs returns the input node names of the named layer.
func (g *Graph) Inputs(name string) []string {
	n, ok := g.nodes[name]
	if !ok {
		return nil
	}
	return append([]string(nil), n.inputs...)
}

// NumParams returns the total parameter count of the graph.
func (g *Graph) NumParams() int {
	total := 0
	for _, name := range g.order {
		total += NumParams(g.nodes[name].layer)
	}
	return total
}

// Forward runs the graph on x and returns the output activation.
func (g *Graph) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	acts, err := g.ForwardAll(x)
	if err != nil {
		return nil, err
	}
	return acts[g.output], nil
}

// ForwardAll runs the graph and returns every node's activation, keyed by
// layer name (plus InputName). The map enables cached-prefix evaluation:
// when only one layer's parameters change, ForwardFrom re-runs just the
// suffix.
func (g *Graph) ForwardAll(x *tensor.Tensor) (map[string]*tensor.Tensor, error) {
	if len(g.order) == 0 {
		return nil, fmt.Errorf("nn: empty graph")
	}
	acts := map[string]*tensor.Tensor{InputName: x}
	if err := g.run(acts, 0); err != nil {
		return nil, err
	}
	return acts, nil
}

// ForwardFrom re-executes the graph from the named layer (inclusive) to
// the output, reading earlier activations from acts — which must have been
// produced by ForwardAll on the same input. Activations from the suffix
// are recomputed and updated in a copy; acts itself is not modified.
func (g *Graph) ForwardFrom(acts map[string]*tensor.Tensor, from string) (*tensor.Tensor, error) {
	start := -1
	for i, name := range g.order {
		if name == from {
			start = i
			break
		}
	}
	if start < 0 {
		return nil, fmt.Errorf("nn: unknown layer %q", from)
	}
	local := make(map[string]*tensor.Tensor, len(acts))
	for k, v := range acts {
		local[k] = v
	}
	if err := g.run(local, start); err != nil {
		return nil, err
	}
	return local[g.output], nil
}

// run executes nodes order[start:] against the activation map.
func (g *Graph) run(acts map[string]*tensor.Tensor, start int) error {
	for _, name := range g.order[start:] {
		n := g.nodes[name]
		xs := make([]*tensor.Tensor, len(n.inputs))
		for i, in := range n.inputs {
			a, ok := acts[in]
			if !ok || a == nil {
				return fmt.Errorf("nn: layer %q: missing activation for %q", name, in)
			}
			xs[i] = a
		}
		y, err := n.layer.Forward(xs)
		if err != nil {
			return fmt.Errorf("nn: layer %q: %w", name, err)
		}
		acts[name] = y
	}
	return nil
}

// InferShapes propagates the input shape through the graph, returning each
// node's output shape. It validates the whole topology without running any
// arithmetic, which is how the accelerator simulator obtains layer
// geometry for traffic generation.
func (g *Graph) InferShapes(inputShape []int) (map[string][]int, error) {
	shapes := map[string][]int{InputName: append([]int(nil), inputShape...)}
	for _, name := range g.order {
		n := g.nodes[name]
		in := make([][]int, len(n.inputs))
		for i, inName := range n.inputs {
			s, ok := shapes[inName]
			if !ok {
				return nil, fmt.Errorf("nn: layer %q: missing shape for %q", name, inName)
			}
			in[i] = s
		}
		out, err := n.layer.OutShape(in)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %q: %w", name, err)
		}
		shapes[name] = out
	}
	return shapes, nil
}

// LayerCosts returns each layer's MAC count for the given input shape, in
// execution order.
func (g *Graph) LayerCosts(inputShape []int) (map[string]uint64, error) {
	shapes, err := g.InferShapes(inputShape)
	if err != nil {
		return nil, err
	}
	costs := make(map[string]uint64, len(g.order))
	for _, name := range g.order {
		n := g.nodes[name]
		in := make([][]int, len(n.inputs))
		for i, inName := range n.inputs {
			in[i] = shapes[inName]
		}
		c, err := n.layer.Cost(in)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %q: %w", name, err)
		}
		costs[name] = c
	}
	return costs, nil
}

// Sequential builds a linear graph from the given layers.
func Sequential(layers ...Layer) (*Graph, error) {
	g := NewGraph()
	for _, l := range layers {
		if err := g.Add(l); err != nil {
			return nil, err
		}
	}
	return g, nil
}
