package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Binary stream layout (little endian):
//
//	magic   [4]byte  "NCWC" (NoC CNN Weights Compression)
//	version uint16
//	n       uint32   original parameter count
//	delta   float64  absolute tolerance used
//	nseg    uint32   segment count
//	hcrc    uint32   (v2) CRC32-IEEE over version..nseg
//	nseg x {
//	    m float32, q float32, len uint32
//	    crc uint32   (v2) CRC32-IEEE over uint32(index) || m || q || len
//	}
//
// Version 2 adds the header checksum and a per-segment CRC32 keyed by the
// segment index, so a corrupted, truncated or reordered stream is
// detected with ErrChecksum instead of silently regenerating garbage
// weights. Version 1 streams (no checksums) are still read; writes
// always produce version 2. This is the archival format used by
// cmd/compress; the hardware storage accounting for compression ratios
// is StorageModel, not this layout.
var magic = [4]byte{'N', 'C', 'W', 'C'}

const (
	codecVersion1 uint16 = 1
	codecVersion  uint16 = 2
	headerBytes          = 2 + 4 + 8 + 4 // version + n + delta + nseg
	segBytesV1           = 12
	segBytesV2           = 16
	// maxSegPrealloc caps the Segment allocation made before any segment
	// record has been read, so a corrupt count field cannot demand
	// gigabytes up front; the slice grows by append past this.
	maxSegPrealloc = 1 << 16
)

// Codec errors.
var (
	ErrBadMagic   = errors.New("core: bad magic, not a compressed weight stream")
	ErrBadVersion = errors.New("core: unsupported codec version")
	ErrCorrupt    = errors.New("core: corrupt compressed stream")
	ErrChecksum   = errors.New("core: checksum mismatch, corrupted stream")
)

// segCRC returns the CRC32 protecting segment record rec at the given
// stream position. Folding the index in catches reordered records whose
// bytes are individually intact.
func segCRC(index uint32, rec []byte) uint32 {
	var idx [4]byte
	binary.LittleEndian.PutUint32(idx[:], index)
	return crc32.Update(crc32.ChecksumIEEE(idx[:]), crc32.IEEETable, rec)
}

// WriteTo serializes the compressed succession to w (always version 2).
func (c *Compressed) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	le := binary.LittleEndian
	var tmp [8]byte
	le.PutUint16(tmp[:2], codecVersion)
	buf.Write(tmp[:2])
	le.PutUint32(tmp[:4], uint32(c.N))
	buf.Write(tmp[:4])
	le.PutUint64(tmp[:8], math.Float64bits(c.Delta))
	buf.Write(tmp[:8])
	le.PutUint32(tmp[:4], uint32(len(c.Segments)))
	buf.Write(tmp[:4])
	le.PutUint32(tmp[:4], crc32.ChecksumIEEE(buf.Bytes()[len(magic):]))
	buf.Write(tmp[:4])
	for i, s := range c.Segments {
		var rec [segBytesV1]byte
		le.PutUint32(rec[0:4], math.Float32bits(s.M))
		le.PutUint32(rec[4:8], math.Float32bits(s.Q))
		le.PutUint32(rec[8:12], uint32(s.Len))
		buf.Write(rec[:])
		le.PutUint32(tmp[:4], segCRC(uint32(i), rec[:]))
		buf.Write(tmp[:4])
	}
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// Marshal serializes the compressed succession to a byte slice.
func (c *Compressed) Marshal() []byte {
	var buf bytes.Buffer
	c.WriteTo(&buf) // bytes.Buffer writes cannot fail
	return buf.Bytes()
}

// ReadCompressed parses a compressed succession from r, accepting
// version 1 (unchecksummed) and version 2 streams. Corruption in a v2
// stream surfaces as an error wrapping ErrChecksum.
func ReadCompressed(r io.Reader) (*Compressed, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("core: reading magic: %w", err)
	}
	if hdr != magic {
		return nil, ErrBadMagic
	}
	le := binary.LittleEndian
	var head [headerBytes]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, fmt.Errorf("core: reading header: %w", err)
	}
	version := le.Uint16(head[0:2])
	if version != codecVersion1 && version != codecVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, version)
	}
	n := int(le.Uint32(head[2:6]))
	delta := math.Float64frombits(le.Uint64(head[6:14]))
	nseg := int(le.Uint32(head[14:18]))
	var tmp [4]byte
	if version >= codecVersion {
		if _, err := io.ReadFull(r, tmp[:]); err != nil {
			return nil, fmt.Errorf("core: reading header checksum: %w", err)
		}
		if got := le.Uint32(tmp[:]); got != crc32.ChecksumIEEE(head[:]) {
			return nil, fmt.Errorf("%w: header", ErrChecksum)
		}
	}
	if nseg > n && n > 0 {
		return nil, fmt.Errorf("%w: %d segments for %d params", ErrCorrupt, nseg, n)
	}
	prealloc := nseg
	if prealloc > maxSegPrealloc {
		prealloc = maxSegPrealloc
	}
	segs := make([]Segment, 0, prealloc)
	for i := 0; i < nseg; i++ {
		var rec [segBytesV1]byte
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			return nil, fmt.Errorf("core: reading segment %d: %w", i, err)
		}
		if version >= codecVersion {
			if _, err := io.ReadFull(r, tmp[:]); err != nil {
				return nil, fmt.Errorf("core: reading segment %d checksum: %w", i, err)
			}
			if got := le.Uint32(tmp[:]); got != segCRC(uint32(i), rec[:]) {
				return nil, fmt.Errorf("%w: segment %d", ErrChecksum, i)
			}
		}
		s := Segment{
			M:   math.Float32frombits(le.Uint32(rec[0:4])),
			Q:   math.Float32frombits(le.Uint32(rec[4:8])),
			Len: int(le.Uint32(rec[8:12])),
		}
		if s.Len <= 0 {
			return nil, fmt.Errorf("%w: segment %d has length %d", ErrCorrupt, i, s.Len)
		}
		segs = append(segs, s)
	}
	c := &Compressed{N: n, Delta: delta, Segments: segs}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return c, nil
}

// Unmarshal parses a compressed succession from a byte slice.
func Unmarshal(data []byte) (*Compressed, error) {
	return ReadCompressed(bytes.NewReader(data))
}
