// Package parallel provides the bounded worker pool that fans the
// evaluation stack's embarrassingly parallel sweeps — per-layer
// accelerator simulations, per-model table rows, per-delta compression
// points — across CPU cores.
//
// Determinism is the design constraint: work items are identified by
// index, results are collected into an index-ordered slice, and on
// failure the error of the lowest-indexed failing item is returned. A
// run with N workers therefore produces output byte-identical to the
// serial run, regardless of scheduling.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is the error a panicking work item is converted into: one
// bad item fails its sweep cleanly instead of killing the process. The
// deterministic error-selection rule applies to it like any other item
// error, so the reported panic is stable across worker counts.
type PanicError struct {
	Index int    // work-item index that panicked
	Value any    // the recovered panic value
	Stack string // stack trace captured at recovery
}

// Error implements the error interface. The stack is carried for
// debugging but kept out of the message so the error string is
// deterministic.
func (p *PanicError) Error() string {
	return fmt.Sprintf("parallel: item %d panicked: %v", p.Index, p.Value)
}

// Workers resolves a worker-count request: n >= 1 is used as given; zero
// or negative means one worker per available CPU (runtime.GOMAXPROCS).
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(ctx, i) for every i in [0, n) on at most workers
// goroutines and returns the results ordered by index.
//
// The context passed to fn is canceled as soon as any item fails, so
// long-running items can abort early; items not yet started are skipped.
// When one or more items fail, Map returns a nil result slice and the
// error of the lowest-indexed item whose failure was recorded, preferring
// real errors over the cancellations it induced in items interrupted
// mid-flight. With workers == 1 items run strictly in index order, so the
// reported error is fully deterministic. If the parent context is
// canceled before all items complete, Map reports the context error.
//
// A panic inside fn is recovered and converted into a *PanicError for
// that index, failing the run like any other item error instead of
// crashing the process.
//
// fn must be safe for concurrent invocation with distinct indices;
// Map never invokes it twice for the same index.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]T, n)
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				r, err := protect(ctx, i, fn)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					cancel()
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()

	if failed.Load() {
		// Return the lowest-indexed real failure; cancellation errors
		// recorded by items interrupted mid-flight are a consequence of
		// that failure, not the cause.
		var first error
		for _, err := range errs {
			if err == nil {
				continue
			}
			if first == nil {
				first = err
			}
			if !errors.Is(err, context.Canceled) {
				return nil, err
			}
		}
		return nil, first
	}
	// A canceled parent context with no item error still aborts the run.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// protect invokes fn(ctx, i), converting a panic into a *PanicError.
func protect[T any](ctx context.Context, i int, fn func(ctx context.Context, i int) (T, error)) (r T, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Index: i, Value: v, Stack: string(debug.Stack())}
		}
	}()
	return fn(ctx, i)
}

// ForEach is Map without per-item results: it runs fn(ctx, i) for every
// i in [0, n) on at most workers goroutines and returns the error of the
// lowest-indexed failing item, if any.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	_, err := Map(ctx, workers, n, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}
