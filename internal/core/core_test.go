package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestCompressErrors(t *testing.T) {
	if _, err := Compress(nil, 0); err != ErrEmptyInput {
		t.Errorf("Compress(nil) err = %v, want ErrEmptyInput", err)
	}
	if _, err := Compress([]float64{1}, -0.5); err != ErrNegativeDelta {
		t.Errorf("negative delta err = %v, want ErrNegativeDelta", err)
	}
	if _, err := CompressPct([]float64{1}, -1); err != ErrNegativeDelta {
		t.Errorf("negative pct err = %v, want ErrNegativeDelta", err)
	}
}

func TestCompressExactLine(t *testing.T) {
	// Parameters already on a line are represented exactly by one segment.
	w := make([]float64, 64)
	for i := range w {
		w[i] = 0.5 + 0.25*float64(i)
	}
	c, err := Compress(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Segments) != 1 {
		t.Fatalf("segments = %d, want 1", len(c.Segments))
	}
	got, err := c.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(w) {
		t.Fatalf("decompressed length = %d", len(got))
	}
	for i := range w {
		if math.Abs(got[i]-w[i]) > 1e-4 {
			t.Errorf("w[%d] = %v, got %v", i, w[i], got[i])
		}
	}
}

func TestCompressConstant(t *testing.T) {
	w := []float64{0.7, 0.7, 0.7, 0.7, 0.7}
	c, err := Compress(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Segments) != 1 || math.Abs(float64(c.Segments[0].M)) > 1e-7 {
		t.Errorf("constant compression = %+v", c.Segments)
	}
	approx, err := c.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	mse, _ := stats.MSE(w, approx)
	if mse > 1e-12 {
		t.Errorf("constant MSE = %v", mse)
	}
}

func TestCompressPctUsesAmplitude(t *testing.T) {
	w := []float64{0, 10, 0, 10} // amplitude 10
	c, err := CompressPct(w, 20) // delta = 2
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Delta-2) > 1e-12 {
		t.Errorf("delta = %v, want 2", c.Delta)
	}
}

func TestDecompressLengthInvariant(t *testing.T) {
	f := func(raw []float64, dRaw uint8) bool {
		w := sanitize(raw)
		if len(w) == 0 {
			return true
		}
		c, err := Compress(w, float64(dRaw)/64)
		if err != nil {
			return false
		}
		got, err := c.Decompress()
		return err == nil && len(got) == len(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestDecompressMatchesHardwareUnit: the software Decompress and the
// cycle-level DecompressionUnit must produce bit-identical float32 streams,
// since both implement Eq. 2 in float32.
func TestDecompressMatchesHardwareUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	w := make([]float64, 2000)
	for i := range w {
		w[i] = rng.NormFloat64() * 0.1
	}
	c, err := CompressPct(w, 10)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := c.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	var unit DecompressionUnit
	hw, cycles, err := unit.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(hw) != len(sw) {
		t.Fatalf("hw %d vs sw %d weights", len(hw), len(sw))
	}
	for i := range hw {
		if float64(hw[i]) != sw[i] {
			t.Fatalf("weight %d: hw %v, sw %v", i, hw[i], sw[i])
		}
	}
	if cycles != uint64(len(w)) {
		t.Errorf("cycles = %d, want %d (one weight per cycle)", cycles, len(w))
	}
	if DecompressionCycles(c) != uint64(len(w)) {
		t.Errorf("DecompressionCycles = %d", DecompressionCycles(c))
	}
}

func TestCompressionRatioAccounting(t *testing.T) {
	w := make([]float64, 100)
	for i := range w {
		w[i] = float64(i) // one segment
	}
	c, err := Compress(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.OriginalBits() != 3200 {
		t.Errorf("OriginalBits = %d", c.OriginalBits())
	}
	if got := c.CompressedBits(DefaultStorage); got != 64 {
		t.Errorf("CompressedBits default = %d, want 64", got)
	}
	if got := c.CompressedBits(RealisticStorage); got != 80 {
		t.Errorf("CompressedBits realistic = %d, want 80", got)
	}
	if got := c.CompressionRatio(DefaultStorage); math.Abs(got-50) > 1e-12 {
		t.Errorf("CR = %v, want 50", got)
	}
	if got := c.AvgRunLength(); got != 100 {
		t.Errorf("AvgRunLength = %v", got)
	}
	empty := &Compressed{}
	if empty.CompressionRatio(DefaultStorage) != 0 || empty.AvgRunLength() != 0 {
		t.Error("empty Compressed metrics should be 0")
	}
}

// TestRandomDataCRNearPaper validates the delta = 0 calibration: for a
// high-entropy stream the default storage model yields CR ~= 1.21, the
// value Table II reports for every network at delta = 0.
func TestRandomDataCRNearPaper(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := make([]float64, 100000)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	c, err := Compress(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	cr := c.CompressionRatio(DefaultStorage)
	if cr < 1.15 || cr > 1.30 {
		t.Errorf("CR at delta=0 on random data = %.3f, want ~1.21", cr)
	}
}

// TestCRGrowsWithDelta: Table II's central trend — compression ratio grows
// monotonically (and sharply) with the tolerance threshold.
func TestCRGrowsWithDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	w := make([]float64, 50000)
	for i := range w {
		w[i] = rng.NormFloat64() * 0.05
	}
	prev := 0.0
	for _, pct := range []float64{0, 5, 10, 15, 20} {
		c, err := CompressPct(w, pct)
		if err != nil {
			t.Fatal(err)
		}
		cr := c.CompressionRatio(DefaultStorage)
		if cr < prev {
			t.Errorf("CR decreased at delta=%v%%: %v < %v", pct, cr, prev)
		}
		prev = cr
	}
	if prev < 3 {
		t.Errorf("CR at delta=20%% = %v, expected substantial growth", prev)
	}
}

// TestMSEGrowsWithDelta: the approximation error trend of Table II.
func TestMSEGrowsWithDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	w := make([]float64, 20000)
	for i := range w {
		w[i] = rng.NormFloat64() * 0.05
	}
	var prev float64 = -1
	for _, pct := range []float64{0, 5, 10, 20} {
		c, err := CompressPct(w, pct)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := c.Decompress()
		if err != nil {
			t.Fatal(err)
		}
		mse, err := stats.MSE(w, approx)
		if err != nil {
			t.Fatal(err)
		}
		if mse < prev*0.5 { // allow mild non-monotonicity, forbid collapse
			t.Errorf("MSE at delta=%v%% = %v dropped far below previous %v", pct, mse, prev)
		}
		prev = mse
	}
}

// TestValidate covers the consistency checks on hand-assembled
// successions: Decompress must refuse inconsistent segment metadata
// instead of regenerating a wrong-length weight slice.
func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		c    Compressed
		ok   bool
	}{
		{"valid", Compressed{N: 5, Segments: []Segment{{Len: 2}, {Len: 3}}}, true},
		{"zero params", Compressed{N: 0, Segments: []Segment{{Len: 1}}}, false},
		{"negative params", Compressed{N: -3, Segments: []Segment{{Len: 1}}}, false},
		{"negative delta", Compressed{N: 1, Delta: -0.1, Segments: []Segment{{Len: 1}}}, false},
		{"NaN delta", Compressed{N: 1, Delta: math.NaN(), Segments: []Segment{{Len: 1}}}, false},
		{"no segments", Compressed{N: 4}, false},
		{"zero-length segment", Compressed{N: 4, Segments: []Segment{{Len: 4}, {Len: 0}}}, false},
		{"negative-length segment", Compressed{N: 4, Segments: []Segment{{Len: -1}, {Len: 5}}}, false},
		{"lengths undershoot N", Compressed{N: 10, Segments: []Segment{{Len: 4}, {Len: 5}}}, false},
		{"lengths overshoot N", Compressed{N: 3, Segments: []Segment{{Len: 2}, {Len: 2}}}, false},
		{"overflowing lengths", Compressed{N: 8, Segments: []Segment{
			{Len: math.MaxInt}, {Len: math.MaxInt}, {Len: 10},
		}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.c.Validate()
			if tc.ok && err != nil {
				t.Errorf("Validate() = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Error("Validate() = nil, want error")
			}
			got, derr := tc.c.Decompress()
			if tc.ok && derr != nil {
				t.Errorf("Decompress() err = %v, want nil", derr)
			}
			if !tc.ok {
				if derr == nil {
					t.Error("Decompress() accepted an inconsistent succession")
				}
				if got != nil {
					t.Errorf("Decompress() returned %d weights alongside an error", len(got))
				}
			}
		})
	}
}

// TestDecompressRejectsTamperedSegments is the end-to-end regression for
// the blind-trust bug: a succession that was valid when compressed but
// whose segment table is later tampered with must yield an error, not a
// silently wrong-length output.
func TestDecompressRejectsTamperedSegments(t *testing.T) {
	c, err := Compress([]float64{1, 2, 3, 2, 1, 0.5, 0.25, 0.7}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decompress(); err != nil {
		t.Fatalf("valid succession rejected: %v", err)
	}
	c.Segments[0].Len += 3 // lengths no longer sum to N
	if _, err := c.Decompress(); err == nil {
		t.Error("tampered succession decompressed without error")
	}
}

func TestWeightedCR(t *testing.T) {
	// Layer is 80% of params, compressed 2x: WCR = 1/(0.2 + 0.4) = 1.667.
	got := WeightedCR(2, 80, 100)
	if math.Abs(got-1/0.6) > 1e-12 {
		t.Errorf("WeightedCR = %v, want %v", got, 1/0.6)
	}
	// Whole model compressed: WCR = layer CR.
	if got := WeightedCR(3, 100, 100); math.Abs(got-3) > 1e-12 {
		t.Errorf("full-model WCR = %v, want 3", got)
	}
	if WeightedCR(0, 10, 100) != 0 || WeightedCR(2, 0, 0) != 0 {
		t.Error("degenerate WeightedCR should be 0")
	}
}

func TestMemFootprintReduction(t *testing.T) {
	if got := MemFootprintReduction(2); got != 0.5 {
		t.Errorf("MemFootprintReduction(2) = %v", got)
	}
	if got := MemFootprintReduction(0); got != 0 {
		t.Errorf("MemFootprintReduction(0) = %v", got)
	}
}

func TestAssess(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := make([]float64, 8000)
	for i := range w {
		w[i] = rng.NormFloat64() * 0.1
	}
	r, c, err := Assess(w, 10, 10000, DefaultStorage)
	if err != nil {
		t.Fatal(err)
	}
	if c == nil || c.N != len(w) {
		t.Fatal("Assess returned bad Compressed")
	}
	if r.CR <= 1 || r.WeightedCR <= 1 || r.WeightedCR > r.CR {
		t.Errorf("CR = %v, WCR = %v: want 1 < WCR <= CR", r.CR, r.WeightedCR)
	}
	if r.MSE <= 0 || r.MaxErr < 0 {
		t.Errorf("MSE = %v, MaxErr = %v", r.MSE, r.MaxErr)
	}
	if r.MemFpReduction <= 0 || r.MemFpReduction >= 1 {
		t.Errorf("MemFpReduction = %v", r.MemFpReduction)
	}
	if r.Segments != len(c.Segments) {
		t.Errorf("Segments = %d, want %d", r.Segments, len(c.Segments))
	}
	if _, _, err := Assess(w, 10, 10, DefaultStorage); err == nil {
		t.Error("Assess with totalParams < len(w) should error")
	}
	if _, _, err := Assess(w, -1, len(w), DefaultStorage); err == nil {
		t.Error("Assess with negative delta should error")
	}
}

// TestAssessWorstCaseStrictVsWeak reproduces the Fig. 5 argument
// numerically: on the alternating worst case, strict segmentation yields
// CR = 1 (2-word segments, length-2 runs) while a tolerant delta collapses
// it to a single segment.
func TestAssessWorstCaseStrictVsWeak(t *testing.T) {
	n := 1000
	w := make([]float64, n)
	for i := range w {
		if i%2 == 1 {
			w[i] = 0.01
		}
	}
	strict, err := Compress(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cr := strict.CompressionRatio(DefaultStorage); math.Abs(cr-1) > 1e-9 {
		t.Errorf("strict worst-case CR = %v, want 1", cr)
	}
	weak, err := CompressPct(w, 100) // delta = amplitude
	if err != nil {
		t.Fatal(err)
	}
	if len(weak.Segments) != 1 {
		t.Errorf("weak worst-case segments = %d, want 1", len(weak.Segments))
	}
}

// TestCompressDecompressPreservesScale: the approximation stays within the
// value envelope of the input (line fits cannot overshoot the envelope by
// more than the segment's own spread).
func TestCompressDecompressPreservesScale(t *testing.T) {
	f := func(raw []float64, dRaw uint8) bool {
		w := sanitize(raw)
		if len(w) == 0 {
			return true
		}
		c, err := CompressPct(w, float64(dRaw%30))
		if err != nil {
			return false
		}
		approx, err := c.Decompress()
		if err != nil {
			return false
		}
		min, max, _ := stats.MinMax(w)
		span := max - min
		for _, v := range approx {
			if v < min-span-1e-3 || v > max+span+1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPaperFig4Example compresses an 18-parameter succession like the
// paper's pictorial example and checks the segment count stays small and
// the reconstruction tracks the trend.
func TestPaperFig4Example(t *testing.T) {
	w := []float64{
		0.1, 0.3, 0.5, 0.45, 0.2, 0.05,
		0.15, 0.35, 0.6, 0.55, 0.5, 0.3,
		0.32, 0.5, 0.7, 0.65, 0.45, 0.25,
	}
	c, err := Compress(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Segments) != 6 {
		t.Errorf("segments = %d, want 6 as in Fig. 4", len(c.Segments))
	}
	approx, err := c.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	mse, _ := stats.MSE(w, approx)
	if mse > 0.01 {
		t.Errorf("Fig. 4 example MSE = %v, too large", mse)
	}
}
