package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/parallel"
	"repro/internal/quant"
)

// Table1Row is one model inventory row (paper Table I).
type Table1Row struct {
	Model         string
	Params        int
	PaperParamsK  int
	Layer         string
	Kind          string
	Fraction      float64
	PaperFraction float64
}

// Table1 reproduces Table I: per model, the parameter total and the layer
// selected for compression with its parameter fraction.
func Table1(opts Options) ([]Table1Row, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	builders, err := opts.selectedBuilders()
	if err != nil {
		return nil, err
	}
	return parallel.Map(opts.ctx(), opts.workers(), len(builders),
		func(_ context.Context, i int) (Table1Row, error) {
			m, err := builders[i].Build(opts.Seed)
			if err != nil {
				return Table1Row{}, err
			}
			return Table1Row{
				Model:         m.Name,
				Params:        m.TotalParams(),
				PaperParamsK:  m.PaperParamsK,
				Layer:         m.SelectedLayer,
				Kind:          m.SelectedKind,
				Fraction:      m.SelectedFraction(),
				PaperFraction: m.PaperFraction,
			}, nil
		})
}

// Table2Row is one compression-efficiency row (paper Table II).
type Table2Row struct {
	Model          string
	DeltaPct       float64
	CR             float64
	WeightedCR     float64
	MemFpReduction float64
	MSE            float64
}

// Table2 reproduces Table II: the delta sweep of compression ratio,
// weighted compression ratio, memory-footprint reduction and MSE for each
// model's selected layer.
func Table2(opts Options) ([]Table2Row, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	builders, err := opts.selectedBuilders()
	if err != nil {
		return nil, err
	}
	// Stage 1: build the models and pull out the selected weight streams
	// (one work item per model).
	type t2model struct {
		name   string
		w      []float64
		total  int
		deltas []float64
	}
	ms, err := parallel.Map(opts.ctx(), opts.workers(), len(builders),
		func(_ context.Context, i int) (t2model, error) {
			m, err := builders[i].Build(opts.Seed)
			if err != nil {
				return t2model{}, err
			}
			w, err := m.SelectedWeights()
			if err != nil {
				return t2model{}, err
			}
			return t2model{name: m.Name, w: w, total: m.TotalParams(), deltas: DeltaGrid(m.Name)}, nil
		})
	if err != nil {
		return nil, err
	}
	// Stage 2: the flattened (model, delta) sweep, one work item per
	// point. The weight streams are only read from here on.
	type t2point struct {
		model int
		pct   float64
	}
	var pts []t2point
	for mi, tm := range ms {
		for _, pct := range tm.deltas {
			pts = append(pts, t2point{model: mi, pct: pct})
		}
	}
	return parallel.Map(opts.ctx(), opts.workers(), len(pts),
		func(_ context.Context, k int) (Table2Row, error) {
			tm := ms[pts[k].model]
			r, _, err := core.Assess(tm.w, pts[k].pct, tm.total, opts.Storage)
			if err != nil {
				return Table2Row{}, fmt.Errorf("experiments: %s delta %v%%: %w", tm.name, pts[k].pct, err)
			}
			return Table2Row{
				Model:          tm.name,
				DeltaPct:       pts[k].pct,
				CR:             r.CR,
				WeightedCR:     r.WeightedCR,
				MemFpReduction: r.MemFpReduction,
				MSE:            r.MSE,
			}, nil
		})
}

// Table3Row is one quantization-plus-compression row (paper Table III).
type Table3Row struct {
	Model      string
	QTCR       float64 // weighted CR of int8 quantization alone
	QTAccuracy float64 // accuracy of the quantized network
	DeltaPct   float64
	WeightedCR float64 // quantization + compression combined
	Accuracy   float64 // accuracy of the quantized + compressed network
}

// table3Models is the paper's Table III selection: small, medium, large.
var table3Models = []string{"LeNet-5", "AlexNet", "VGG-16"}

// Table3 reproduces Table III: int8 hybrid quantization of every CONV/FC
// weight tensor, then the proposed compression applied on top of the
// selected layer's int8 code stream, sweeping delta. Accuracy is genuine
// top-1 for the trained LeNet-5 and top-5 fidelity versus the original
// float network for the larger models.
func Table3(opts Options) ([]Table3Row, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	names := table3Models
	if len(opts.Models) > 0 {
		names = opts.Models
	} else if opts.Fast {
		names = []string{"LeNet-5"}
	}
	// One work item per model: the delta loop inside mutates the model's
	// weights, so it stays serial within the item, but the models
	// themselves are independent.
	perModel, err := parallel.Map(opts.ctx(), opts.workers(), len(names),
		func(_ context.Context, ni int) ([]Table3Row, error) {
			return table3Model(names[ni], opts)
		})
	if err != nil {
		return nil, err
	}
	var rows []Table3Row
	for _, mr := range perModel {
		rows = append(rows, mr...)
	}
	return rows, nil
}

// table3Model runs the Table III delta sweep for one model.
func table3Model(name string, opts Options) ([]Table3Row, error) {
	b, err := models.ByName(name)
	if err != nil {
		return nil, err
	}
	m, err := b.Build(opts.Seed)
	if err != nil {
		return nil, err
	}
	ev, err := newEvaluator(m, opts)
	if err != nil {
		return nil, err
	}
	// Hybrid quantization: every CONV/DWCONV/FC weight tensor.
	qt, err := quantizeModel(m)
	if err != nil {
		return nil, err
	}
	// Every quantizable layer changed: rebuild the cached prefix.
	if err := ev.recache(); err != nil {
		return nil, err
	}
	qtAcc, err := ev.accuracy(m)
	if err != nil {
		return nil, err
	}
	selCodes := qt.selected.Stream()
	selParams := qt.selected.P
	var rows []Table3Row
	for _, pct := range DeltaGrid(m.Name) {
		c, err := core.CompressPct(selCodes, pct)
		if err != nil {
			return nil, err
		}
		// Install the approximated codes.
		approx, err := c.Decompress()
		if err != nil {
			return nil, err
		}
		back, err := quant.FromStream(approx, selParams)
		if err != nil {
			return nil, err
		}
		if err := m.SetSelectedWeights(back.Dequantize()); err != nil {
			return nil, err
		}
		acc, err := ev.accuracy(m)
		if err != nil {
			return nil, err
		}
		// Combined weighted CR: int8 everywhere quantizable, plus the
		// selected layer's codes compressed under the 8-bit-coefficient
		// segment layout (the codes and slopes are int8-scale values).
		cr8 := float64(c.N*8) / float64(c.CompressedBits(core.QuantizedStorage))
		combinedSelBytes := float64(qt.selectedBytes) / cr8
		wcr := float64(m.TotalParams()*4) / (qt.otherBytes + combinedSelBytes)
		rows = append(rows, Table3Row{
			Model:      m.Name,
			QTCR:       qt.weightedCR,
			QTAccuracy: qtAcc,
			DeltaPct:   pct,
			WeightedCR: wcr,
			Accuracy:   acc,
		})
	}
	// Restore the unquantized selected layer for hygiene.
	if err := m.SetSelectedWeights(qt.selected.Dequantize()); err != nil {
		return nil, err
	}
	return rows, nil
}

// quantizedModel captures the quantization bookkeeping of one model.
type quantizedModel struct {
	weightedCR    float64
	selected      *quant.Tensor8
	selectedBytes float64 // int8 bytes of the selected layer's weight tensor
	otherBytes    float64 // bytes of everything else after quantization
}

// quantizeModel applies hybrid int8 quantization in place to every
// convolution and dense weight tensor of the model and installs the
// dequantized values (quantization error included), returning the storage
// accounting and the selected layer's quantized tensor.
func quantizeModel(m *models.Model) (*quantizedModel, error) {
	var quantBytes, rawBytes float64
	var sel *quant.Tensor8
	var selBytes float64
	for _, l := range m.Graph.Layers() {
		params := l.Params()
		switch l.Kind() {
		case "CONV", "DWCONV", "FC":
		default:
			for _, p := range params {
				rawBytes += float64(p.T.Size() * 4)
			}
			continue
		}
		for pi, p := range params {
			if pi != 0 {
				rawBytes += float64(p.T.Size() * 4) // bias stays float
				continue
			}
			q, err := quant.Quantize(p.T.Float64s())
			if err != nil {
				return nil, fmt.Errorf("experiments: quantizing %s/%s: %w", l.Name(), p.Name, err)
			}
			if err := p.T.SetFloat64s(q.Dequantize()); err != nil {
				return nil, err
			}
			quantBytes += float64(q.Bytes())
			if l.Name() == m.SelectedLayer {
				sel = q
				selBytes = float64(q.Bytes())
			}
		}
	}
	if sel == nil {
		return nil, fmt.Errorf("experiments: selected layer %q not quantizable", m.SelectedLayer)
	}
	total := float64(m.TotalParams() * 4)
	return &quantizedModel{
		weightedCR:    total / (quantBytes + rawBytes),
		selected:      sel,
		selectedBytes: selBytes,
		otherBytes:    quantBytes + rawBytes - selBytes,
	}, nil
}
