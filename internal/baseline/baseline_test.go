package baseline

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/entropy"
)

func TestHuffmanCodeLengthsKraft(t *testing.T) {
	// Kraft inequality with equality for an optimal prefix code.
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		lengths, err := HuffmanCodeLengths(data)
		if err != nil {
			return false
		}
		distinct := map[byte]bool{}
		for _, b := range data {
			distinct[b] = true
		}
		var kraft float64
		for s, l := range lengths {
			present := distinct[byte(s)]
			if present && l == 0 {
				return false
			}
			if !present && l != 0 {
				return false
			}
			if l > 0 {
				kraft += math.Pow(2, -float64(l))
			}
		}
		if len(distinct) == 1 {
			return kraft == 0.5
		}
		return math.Abs(kraft-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHuffmanNearEntropyBound(t *testing.T) {
	data := entropy.SyntheticText(1<<16, 3)
	bits, err := HuffmanCompressedBits(data)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := ShannonBound(data)
	if err != nil {
		t.Fatal(err)
	}
	payload := float64(bits - HuffmanHeaderBits)
	if payload < bound {
		t.Errorf("Huffman %v bits beat the entropy bound %v", payload, bound)
	}
	// Optimality: within one bit per symbol of the bound.
	if payload > bound+float64(len(data)) {
		t.Errorf("Huffman %v bits too far above bound %v", payload, bound)
	}
}

func TestHuffmanCompressesTextNotWeights(t *testing.T) {
	// Text: expect a solid ratio (~1.6-2x for byte-level Huffman).
	text := entropy.SyntheticText(1<<17, 1)
	rt, err := HuffmanRatio(text)
	if err != nil {
		t.Fatal(err)
	}
	if rt < 1.3 {
		t.Errorf("text Huffman ratio = %v, want > 1.3", rt)
	}
	// Weight stream: the paper's claim — essentially incompressible.
	rng := rand.New(rand.NewSource(5))
	w := make([]float64, 1<<15)
	for i := range w {
		w[i] = rng.NormFloat64() * 0.02
	}
	rw, err := HuffmanRatio(entropy.Float32Bytes(w))
	if err != nil {
		t.Fatal(err)
	}
	if rw > 1.25 {
		t.Errorf("weight Huffman ratio = %v, expected near 1 (high entropy)", rw)
	}
	if rw < 0.9 {
		t.Errorf("weight Huffman ratio = %v, should not expand this much", rw)
	}
}

func TestHuffmanDegenerate(t *testing.T) {
	if _, err := HuffmanCodeLengths(nil); err != ErrEmpty {
		t.Error("empty input should error")
	}
	lengths, err := HuffmanCodeLengths([]byte{7, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	if lengths[7] != 1 {
		t.Errorf("single-symbol code length = %d, want 1", lengths[7])
	}
	if _, err := HuffmanRatio(nil); err == nil {
		t.Error("empty ratio should error")
	}
	if _, err := ShannonBound(nil); err == nil {
		t.Error("empty bound should error")
	}
}

func TestRLERoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		enc, err := RLEEncode(data)
		if err != nil {
			return false
		}
		dec, err := RLEDecode(enc)
		if err != nil {
			return false
		}
		return bytes.Equal(dec, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRLELongRuns(t *testing.T) {
	// A run longer than 255 must split.
	data := bytes.Repeat([]byte{9}, 600)
	enc, err := RLEEncode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != 6 { // 255+255+90 -> 3 pairs
		t.Errorf("encoded length = %d, want 6", len(enc))
	}
	dec, err := RLEDecode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, data) {
		t.Error("long-run round trip failed")
	}
	r, err := RLERatio(data)
	if err != nil {
		t.Fatal(err)
	}
	if r < 90 {
		t.Errorf("repetitive RLE ratio = %v, want = 100x", r)
	}
}

func TestRLEExpandsWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	w := make([]float64, 1<<14)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	r, err := RLERatio(entropy.Float32Bytes(w))
	if err != nil {
		t.Fatal(err)
	}
	if r > 0.75 {
		t.Errorf("RLE on weights = %v, expected expansion (~0.5)", r)
	}
}

func TestRLEDecodeErrors(t *testing.T) {
	if _, err := RLEDecode(nil); err == nil {
		t.Error("empty stream should error")
	}
	if _, err := RLEDecode([]byte{1}); err == nil {
		t.Error("odd-length stream should error")
	}
	if _, err := RLEDecode([]byte{0, 5}); err == nil {
		t.Error("zero count should error")
	}
	if _, err := RLEEncode(nil); err == nil {
		t.Error("empty encode should error")
	}
	if _, err := RLECompressedBytes(nil); err == nil {
		t.Error("empty size should error")
	}
}
