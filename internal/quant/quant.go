// Package quant implements TensorFlow-Lite-style post-training hybrid
// int8 quantization: real_value = (int8_value - zero_point) * scale, with
// per-tensor min/max calibration — the quantization scheme the paper
// applies before layering its compression on top (Table III, Sec. IV-D).
//
// The composed pipeline is: quantize a layer's weights to int8; feed the
// int8 succession (as integers) to the core compression, which exploits
// its monotonic micro-structure exactly as it does float weights; and at
// inference time decompress, round back to int8, and dequantize. The two
// transforms act on orthogonal aspects of the representation: bit width
// versus serialized monotonic trend.
package quant

import (
	"errors"
	"fmt"
	"math"
)

// Params8 is a per-tensor affine int8 quantization.
type Params8 struct {
	Scale     float64
	ZeroPoint int
}

// ErrEmpty is returned when there is nothing to quantize.
var ErrEmpty = errors.New("quant: empty tensor")

// Calibrate derives per-tensor affine parameters from the value range,
// mapping [min, max] onto [-128, 127]. Degenerate (constant) tensors get
// a unit scale centred on the value.
func Calibrate(w []float64) (Params8, error) {
	if len(w) == 0 {
		return Params8{}, ErrEmpty
	}
	min, max := w[0], w[0]
	for _, v := range w {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Params8{}, fmt.Errorf("quant: non-finite value %v", v)
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min > 0 {
		min = 0 // TFLite requires the real value 0 to be representable
	}
	if max < 0 {
		max = 0
	}
	if max == min {
		return Params8{Scale: 1, ZeroPoint: 0}, nil
	}
	scale := (max - min) / 255.0
	zp := int(math.Round(-128 - min/scale))
	if zp < -128 {
		zp = -128
	}
	if zp > 127 {
		zp = 127
	}
	return Params8{Scale: scale, ZeroPoint: zp}, nil
}

// Tensor8 is a quantized tensor.
type Tensor8 struct {
	Vals []int8
	P    Params8
}

// Quantize converts a float succession to int8 with calibrated affine
// parameters.
func Quantize(w []float64) (*Tensor8, error) {
	p, err := Calibrate(w)
	if err != nil {
		return nil, err
	}
	t := &Tensor8{Vals: make([]int8, len(w)), P: p}
	for i, v := range w {
		t.Vals[i] = p.quantizeOne(v)
	}
	return t, nil
}

func (p Params8) quantizeOne(v float64) int8 {
	q := math.Round(v/p.Scale) + float64(p.ZeroPoint)
	if q < -128 {
		q = -128
	}
	if q > 127 {
		q = 127
	}
	return int8(q)
}

// dequantizeOne maps an int8 code back to a real value.
func (p Params8) dequantizeOne(q int8) float64 {
	return (float64(q) - float64(p.ZeroPoint)) * p.Scale
}

// Dequantize reconstructs the real-valued succession.
func (t *Tensor8) Dequantize() []float64 {
	out := make([]float64, len(t.Vals))
	for i, q := range t.Vals {
		out[i] = t.P.dequantizeOne(q)
	}
	return out
}

// Stream exposes the int8 codes as a float64 succession — the form the
// core compression consumes when applied on top of quantization.
func (t *Tensor8) Stream() []float64 {
	out := make([]float64, len(t.Vals))
	for i, q := range t.Vals {
		out[i] = float64(q)
	}
	return out
}

// FromStream rebuilds a quantized tensor from a (possibly approximated)
// code stream, rounding and clamping each code to int8 — what the PE does
// after the decompression unit regenerates approximated codes.
func FromStream(codes []float64, p Params8) (*Tensor8, error) {
	if len(codes) == 0 {
		return nil, ErrEmpty
	}
	t := &Tensor8{Vals: make([]int8, len(codes)), P: p}
	for i, c := range codes {
		q := math.Round(c)
		if q < -128 {
			q = -128
		}
		if q > 127 {
			q = 127
		}
		t.Vals[i] = int8(q)
	}
	return t, nil
}

// Bytes returns the storage size of the quantized tensor: one byte per
// value plus the affine parameters.
func (t *Tensor8) Bytes() int { return len(t.Vals) + 8 }

// ParamsBits is the side-channel cost of shipping a Params8 with a
// compressed stream: the float64 scale plus the int8 zero point. Codecs
// that store quantized codes charge it in their traffic accounting.
const ParamsBits = 64 + 8

// ZigZag8 maps an int8 code to an unsigned byte so that small
// magnitudes become small values: 0,-1,1,-2,2,... -> 0,1,2,3,4,...
// Weight tensors quantize to codes concentrated near the zero point, so
// the zigzagged stream has its high bit planes mostly zero — the
// property the bit-plane and entropy codecs exploit.
func ZigZag8(v int8) uint8 {
	return uint8((int16(v) << 1) ^ (int16(v) >> 7))
}

// UnZigZag8 inverts ZigZag8.
func UnZigZag8(z uint8) int8 {
	return int8((int16(z) >> 1) ^ -(int16(z) & 1))
}

// MaxQuantError returns the worst-case rounding error of the affine
// quantization, scale/2.
func (p Params8) MaxQuantError() float64 { return p.Scale / 2 }
