package models

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
	"repro/internal/tensor"
)

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 6 {
		t.Fatalf("model count = %d, want 6", len(all))
	}
	want := []string{"LeNet-5", "AlexNet", "VGG-16", "MobileNet", "Inception-v3", "ResNet50"}
	for i, b := range all {
		if b.Name != want[i] {
			t.Errorf("model %d = %s, want %s", i, b.Name, want[i])
		}
	}
	if _, err := ByName("LeNet-5"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("NotANet"); err == nil {
		t.Error("unknown model should error")
	}
	if len(Small()) != 1 {
		t.Error("Small should hold the test-scale set")
	}
}

func TestLeNetInventory(t *testing.T) {
	m, err := LeNet5(1)
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalParams() != 61706 {
		t.Errorf("params = %d, want 61706", m.TotalParams())
	}
	if m.SelectedLayer != "dense_1" || m.SelectedKind != "FC" {
		t.Errorf("selected = %s (%s)", m.SelectedLayer, m.SelectedKind)
	}
	if f := m.SelectedFraction(); math.Abs(f-0.78) > 0.02 {
		t.Errorf("fraction = %v", f)
	}
	w, err := m.SelectedWeights()
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 48000 {
		t.Errorf("selected weights = %d", len(w))
	}
}

func TestLeNetForwardAndDeterminism(t *testing.T) {
	m1, err := LeNet5(42)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := LeNet5(42)
	if err != nil {
		t.Fatal(err)
	}
	w1, _ := m1.SelectedWeights()
	w2, _ := m2.SelectedWeights()
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatal("same seed produced different weights")
		}
	}
	m3, err := LeNet5(43)
	if err != nil {
		t.Fatal(err)
	}
	w3, _ := m3.SelectedWeights()
	same := true
	for i := range w1 {
		if w1[i] != w3[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical weights")
	}
	img, err := dataset.DigitImage(3, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	y, err := m1.Graph.Forward(img)
	if err != nil {
		t.Fatal(err)
	}
	checkDistribution(t, y.Float64s(), 10)
}

func TestSetLayerWeights(t *testing.T) {
	m, err := LeNet5(1)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := m.LayerWeights("dense_2")
	mod := make([]float64, len(w))
	copy(mod, w)
	mod[0] = 42
	if err := m.SetLayerWeights("dense_2", mod); err != nil {
		t.Fatal(err)
	}
	got, _ := m.LayerWeights("dense_2")
	if got[0] != 42 {
		t.Error("SetLayerWeights did not stick")
	}
	if _, err := m.LayerWeights("ghost"); err == nil {
		t.Error("unknown layer should error")
	}
	if err := m.SetLayerWeights("ghost", w); err == nil {
		t.Error("unknown layer set should error")
	}
	if err := m.SetSelectedWeights(w[:5]); err == nil {
		t.Error("short stream should error")
	}
	// Parameter-free layer.
	if _, err := m.LayerWeights("pool_1"); err == nil {
		t.Error("parameter-free layer should error")
	}
	if m.SelectedFraction() <= 0 {
		t.Error("SelectedFraction broken")
	}
}

func TestInitTrainedLike(t *testing.T) {
	x := tensor.MustNew(100000)
	rng := rand.New(rand.NewSource(3))
	initTrainedLike(x, rng, 0.01, 5)
	vals := x.Float64s()
	amp := stats.Amplitude(vals)
	if math.Abs(amp-2*5*0.01) > 1e-6 {
		t.Errorf("amplitude = %v, want exactly %v", amp, 0.1)
	}
	// Bulk sigma near 0.01 (clipping at 5 sigma barely affects it).
	if sd := stats.StdDev(vals); math.Abs(sd-0.01) > 0.001 {
		t.Errorf("std = %v, want ~0.01", sd)
	}
	// Clipping: no value beyond the planted extremes.
	for _, v := range vals {
		if v > 0.05+1e-9 || v < -0.05-1e-9 {
			t.Fatalf("value %v beyond clip", v)
		}
	}
	// Degenerate tiny tensor must not panic.
	tiny := tensor.MustNew(1)
	initTrainedLike(tiny, rng, 1, 2)
}

// paperInventory pins the Table I values each builder must reproduce.
var paperInventory = []struct {
	name     string
	params   int // measured (asserted exactly: the builders are deterministic)
	paperK   int // paper's reported total
	selected string
	kind     string
	tolPct   float64 // allowed |params - paperK*1000| / (paperK*1000)
}{
	{"LeNet-5", 61706, 62, "dense_1", "FC", 0.01},
	{"AlexNet", 24572072, 24000, "dense_2", "FC", 0.03},
	{"VGG-16", 138357544, 138000, "dense_1", "FC", 0.01},
	{"MobileNet", 4264808, 4250, "conv_preds", "CONV", 0.01},
	{"Inception-v3", 23886216, 23850, "pred", "CONV", 0.01},
	{"ResNet50", 25636712, 25640, "fc1000", "FC", 0.01},
}

func TestAllModelInventoriesMatchTableI(t *testing.T) {
	if testing.Short() {
		t.Skip("large model builds in -short mode")
	}
	for _, want := range paperInventory {
		b, err := ByName(want.name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := b.Build(1)
		if err != nil {
			t.Fatalf("%s: %v", want.name, err)
		}
		if got := m.TotalParams(); got != want.params {
			t.Errorf("%s: params = %d, want %d", want.name, got, want.params)
		}
		paperTotal := float64(want.paperK) * 1000
		if dev := math.Abs(float64(m.TotalParams())-paperTotal) / paperTotal; dev > want.tolPct {
			t.Errorf("%s: deviates %.1f%% from the paper's %dk", want.name, 100*dev, want.paperK)
		}
		if m.SelectedLayer != want.selected || m.SelectedKind != want.kind {
			t.Errorf("%s: selected %s (%s), want %s (%s)",
				want.name, m.SelectedLayer, m.SelectedKind, want.selected, want.kind)
		}
		if math.Abs(m.SelectedFraction()-m.PaperFraction) > 0.06 {
			t.Errorf("%s: fraction %.3f vs paper %.2f", want.name, m.SelectedFraction(), m.PaperFraction)
		}
	}
}

func TestMobileNetForward(t *testing.T) {
	if testing.Short() {
		t.Skip("full-resolution forward in -short mode")
	}
	m, err := MobileNet(1)
	if err != nil {
		t.Fatal(err)
	}
	imgs, err := dataset.SyntheticImages(1, 224, 224, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	y, err := m.Graph.Forward(imgs[0])
	if err != nil {
		t.Fatal(err)
	}
	checkDistribution(t, y.Float64s(), 1000)
}

func TestResNetForward(t *testing.T) {
	if testing.Short() {
		t.Skip("full-resolution forward in -short mode")
	}
	m, err := ResNet50(1)
	if err != nil {
		t.Fatal(err)
	}
	imgs, err := dataset.SyntheticImages(1, 224, 224, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	y, err := m.Graph.Forward(imgs[0])
	if err != nil {
		t.Fatal(err)
	}
	checkDistribution(t, y.Float64s(), 1000)
}

func TestInceptionForward(t *testing.T) {
	if testing.Short() {
		t.Skip("full-resolution forward in -short mode")
	}
	m, err := InceptionV3(1)
	if err != nil {
		t.Fatal(err)
	}
	imgs, err := dataset.SyntheticImages(1, 299, 299, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	y, err := m.Graph.Forward(imgs[0])
	if err != nil {
		t.Fatal(err)
	}
	checkDistribution(t, y.Float64s(), 1000)
}

func TestAlexNetForward(t *testing.T) {
	if testing.Short() {
		t.Skip("full-resolution forward in -short mode")
	}
	m, err := AlexNet(1)
	if err != nil {
		t.Fatal(err)
	}
	imgs, err := dataset.SyntheticImages(1, 227, 227, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	y, err := m.Graph.Forward(imgs[0])
	if err != nil {
		t.Fatal(err)
	}
	checkDistribution(t, y.Float64s(), 1000)
}

// checkDistribution asserts a softmax output: right size, finite,
// non-negative, sums to one.
func checkDistribution(t *testing.T, p []float64, classes int) {
	t.Helper()
	if len(p) != classes {
		t.Fatalf("output size = %d, want %d", len(p), classes)
	}
	var sum float64
	for i, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Fatalf("bad probability p[%d] = %v", i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-4 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}
