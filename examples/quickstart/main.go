// Quickstart: compress a small weight succession with the paper's
// weak-monotone segmentation + least-squares technique, inspect the
// segments, decompress through the cycle-level hardware unit, and compare
// the strict (delta = 0) and weak (delta > 0) criteria on the worst-case
// sawtooth of Fig. 5.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/stats"
)

func main() {
	// A weight succession like Fig. 4's pictorial example: three bumps.
	w := []float64{
		0.10, 0.30, 0.50, 0.45, 0.20, 0.05,
		0.15, 0.35, 0.60, 0.55, 0.50, 0.30,
		0.32, 0.50, 0.70, 0.65, 0.45, 0.25,
	}
	c, err := core.Compress(w, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig. 4 example: %d parameters -> %d monotonic sub-successions\n", len(w), len(c.Segments))
	for i, s := range c.Segments {
		fmt.Printf("  M%d: m=%+.4f q=%.4f len=%d\n", i+1, s.M, s.Q, s.Len)
	}
	approx, err := c.Decompress()
	if err != nil {
		log.Fatal(err)
	}
	mse, _ := stats.MSE(w, approx)
	fmt.Printf("  CR %.2fx, MSE %.2e\n\n", c.CompressionRatio(core.DefaultStorage), mse)

	// Decompress through the two-state-FSM hardware model (Fig. 6).
	var unit core.DecompressionUnit
	hw, cycles, err := unit.Run(c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hardware decompression: %d weights in %d cycles (one per cycle, no multiplier)\n",
		len(hw), cycles)
	fmt.Printf("  first weights: %.3f %.3f %.3f ...\n\n", hw[0], hw[1], hw[2])

	// Fig. 5: the pair-by-pair inversely monotonic worst case.
	saw := make([]float64, 1000)
	for i := range saw {
		if i%2 == 1 {
			saw[i] = 0.01
		}
	}
	strict, _ := core.Compress(saw, 0)
	weak, _ := core.CompressPct(saw, 100)
	fmt.Printf("Fig. 5 worst case (n=%d sawtooth):\n", len(saw))
	fmt.Printf("  strict criterion: %4d segments, CR %.2f\n", len(strict.Segments), strict.CompressionRatio(core.DefaultStorage))
	fmt.Printf("  weak criterion:   %4d segment,  CR %.2f\n\n", len(weak.Segments), weak.CompressionRatio(core.DefaultStorage))

	// High-entropy data: the regime trained CNN weights live in (Fig. 3).
	rng := rand.New(rand.NewSource(7))
	weights := make([]float64, 100000)
	for i := range weights {
		weights[i] = rng.NormFloat64() * 0.05
	}
	for _, pct := range []float64{0, 5, 10, 15, 20} {
		c, err := core.CompressPct(weights, pct)
		if err != nil {
			log.Fatal(err)
		}
		approx, err := c.Decompress()
		if err != nil {
			log.Fatal(err)
		}
		mse, _ := stats.MSE(weights, approx)
		fmt.Printf("delta %3.0f%%: CR %5.2f  avg run %5.2f  MSE %.2e\n",
			pct, c.CompressionRatio(core.DefaultStorage), c.AvgRunLength(), mse)
	}
}
