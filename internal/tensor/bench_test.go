package tensor

import (
	"math/rand"
	"testing"
)

func BenchmarkMatMul256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := MustNew(256, 256)
	a.RandNormal(rng, 0, 1)
	c := MustNew(256, 256)
	c.RandNormal(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MatMul(a, c); err != nil {
			b.Fatal(err)
		}
	}
	// 2 flops per MAC.
	b.SetBytes(int64(256 * 256 * 256 * 2))
}

func BenchmarkIm2Col(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := MustNew(56, 56, 64)
	x.RandNormal(rng, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := Im2Col(x, 3, 3, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatVec(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := MustNew(1024, 1024)
	a.RandNormal(rng, 0, 1)
	x := make([]float32, 1024)
	for i := range x {
		x[i] = rng.Float32()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MatVec(a, x); err != nil {
			b.Fatal(err)
		}
	}
}
