package nn

import (
	"testing"

	"repro/internal/tensor"
)

func BenchmarkConvForward(b *testing.B) {
	c, err := NewConv2D("c", 3, 3, 64, 64, 1, 1, rng(1))
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.MustNew(28, 28, 64)
	x.RandNormal(rng(2), 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Forward([]*tensor.Tensor{x}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDenseForward(b *testing.B) {
	d, err := NewDense("d", 4096, 1024, rng(3))
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.MustNew(4096)
	x.RandNormal(rng(4), 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Forward([]*tensor.Tensor{x}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDepthwiseForward(b *testing.B) {
	d, err := NewDepthwiseConv2D("dw", 3, 3, 128, 1, 1, rng(5))
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.MustNew(28, 28, 128)
	x.RandNormal(rng(6), 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Forward([]*tensor.Tensor{x}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConvBackward(b *testing.B) {
	c, err := NewConv2D("c", 3, 3, 16, 16, 1, 1, rng(7))
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.MustNew(14, 14, 16)
	x.RandNormal(rng(8), 0, 1)
	y, err := c.Forward([]*tensor.Tensor{x})
	if err != nil {
		b.Fatal(err)
	}
	dy := tensor.MustNew(y.Shape()...)
	dy.Fill(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Backward(x, dy); err != nil {
			b.Fatal(err)
		}
	}
}
