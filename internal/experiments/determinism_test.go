package experiments

import (
	"fmt"
	"reflect"
	"testing"
)

// assertDeterministic runs an experiment at workers 1 and 4 and requires
// the row slices to be deeply equal AND identically formatted — the
// formatted comparison is what guarantees cmd/benchtables prints
// byte-identical tables for every worker count.
func assertDeterministic[T any](t *testing.T, fn func(Options) ([]T, error), opts Options) {
	t.Helper()
	serialOpts := opts
	serialOpts.Workers = 1
	serial, err := fn(serialOpts)
	if err != nil {
		t.Fatalf("workers 1: %v", err)
	}
	parOpts := opts
	parOpts.Workers = 4
	par, err := fn(parOpts)
	if err != nil {
		t.Fatalf("workers 4: %v", err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("rows differ between workers 1 and 4:\nserial: %+v\nparallel: %+v", serial, par)
	}
	if a, b := fmt.Sprintf("%+v", serial), fmt.Sprintf("%+v", par); a != b {
		t.Fatalf("formatted rows differ between workers 1 and 4")
	}
}

func TestTable1Deterministic(t *testing.T) {
	o := FastOptions()
	o.Models = []string{"LeNet-5", "MobileNet"}
	assertDeterministic(t, Table1, o)
}

func TestTable2Deterministic(t *testing.T) {
	// FastOptions sweeps 5 delta points on LeNet-5 — the flattened
	// (model, delta) stage has real parallelism to get wrong.
	assertDeterministic(t, Table2, FastOptions())
}

func TestFig2Deterministic(t *testing.T) {
	// 7 layers fan out inside accel.SimulateModel via sim.SetWorkers.
	assertDeterministic(t, Fig2, FastOptions())
}

func TestFig3Deterministic(t *testing.T) {
	assertDeterministic(t, Fig3, FastOptions())
}

func TestFig10Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("trains LeNet twice in -short mode")
	}
	// Minimal training budget: the point is worker-count invariance of
	// the whole pipeline (train, sweep, simulate), not accuracy.
	o := FastOptions()
	o.TrainSamples = 100
	o.TrainEpochs = 1
	assertDeterministic(t, Fig10, o)
}

func TestMixedCodecDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("trains LeNet twice in -short mode")
	}
	// Worker-count invariance of the full arena sweep: training, the
	// (codec, level) grid, the greedy mixed-codec planner and the
	// simulator all run at workers 1 and 4 — this is the property that
	// makes the committed results/mixed.csv reproducible on any machine.
	o := FastOptions()
	o.TrainSamples = 100
	o.TrainEpochs = 1
	assertDeterministic(t, MixedCodec, o)
}
