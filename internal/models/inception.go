package models

// inceptionA adds a 35x35 Inception-A block (1x1 / 5x5 / double-3x3 /
// pool towers) and returns the concat output name. Output channels:
// 64 + 64 + 96 + poolC.
func inceptionA(b *graphBuilder, name string, in string, inC, poolC int) string {
	t1 := b.convBNRelu(name+"_1x1", 1, 1, inC, 64, 1, 0, in)

	t2a := b.convBNRelu(name+"_5x5_reduce", 1, 1, inC, 48, 1, 0, in)
	t2 := b.convBNRelu(name+"_5x5", 5, 5, 48, 64, 1, 2, t2a)

	t3a := b.convBNRelu(name+"_3x3_reduce", 1, 1, inC, 64, 1, 0, in)
	t3b := b.convBNRelu(name+"_3x3_1", 3, 3, 64, 96, 1, 1, t3a)
	t3 := b.convBNRelu(name+"_3x3_2", 3, 3, 96, 96, 1, 1, t3b)

	p := b.avgpoolPadded(name+"_pool", 3, 1, 1, in)
	t4 := b.convBNRelu(name+"_pool_proj", 1, 1, inC, poolC, 1, 0, p)

	return b.concat(name+"_concat", t1, t2, t3, t4)
}

// reductionA adds the 35->17 grid reduction block. Output channels:
// 384 + 96 + inC.
func reductionA(b *graphBuilder, name string, in string, inC int) string {
	t1 := b.convBNRelu(name+"_3x3", 3, 3, inC, 384, 2, 0, in)

	t2a := b.convBNRelu(name+"_3x3dbl_reduce", 1, 1, inC, 64, 1, 0, in)
	t2b := b.convBNRelu(name+"_3x3dbl_1", 3, 3, 64, 96, 1, 1, t2a)
	t2 := b.convBNRelu(name+"_3x3dbl_2", 3, 3, 96, 96, 2, 0, t2b)

	t3 := b.maxpool(name+"_pool", 3, 2, in)

	return b.concat(name+"_concat", t1, t2, t3)
}

// inceptionC adds a 17x17 Inception block with factorized 7x7
// convolutions (1x7 followed by 7x1). Output channels: 4 x 192 = 768.
func inceptionC(b *graphBuilder, name string, in string, inC, c7 int) string {
	t1 := b.convBNRelu(name+"_1x1", 1, 1, inC, 192, 1, 0, in)

	t2a := b.convBNRelu(name+"_7x7_reduce", 1, 1, inC, c7, 1, 0, in)
	t2b := b.convBNReluRect(name+"_7x7_1", 1, 7, c7, c7, 1, 0, 3, t2a)
	t2 := b.convBNReluRect(name+"_7x7_2", 7, 1, c7, 192, 1, 3, 0, t2b)

	t3a := b.convBNRelu(name+"_7x7dbl_reduce", 1, 1, inC, c7, 1, 0, in)
	t3b := b.convBNReluRect(name+"_7x7dbl_1", 7, 1, c7, c7, 1, 3, 0, t3a)
	t3c := b.convBNReluRect(name+"_7x7dbl_2", 1, 7, c7, c7, 1, 0, 3, t3b)
	t3d := b.convBNReluRect(name+"_7x7dbl_3", 7, 1, c7, c7, 1, 3, 0, t3c)
	t3 := b.convBNReluRect(name+"_7x7dbl_4", 1, 7, c7, 192, 1, 0, 3, t3d)

	p := b.avgpoolPadded(name+"_pool", 3, 1, 1, in)
	t4 := b.convBNRelu(name+"_pool_proj", 1, 1, inC, 192, 1, 0, p)

	return b.concat(name+"_concat", t1, t2, t3, t4)
}

// reductionB adds the 17->8 grid reduction block. Output channels:
// 320 + 192 + inC.
func reductionB(b *graphBuilder, name string, in string, inC int) string {
	t1a := b.convBNRelu(name+"_3x3_reduce", 1, 1, inC, 192, 1, 0, in)
	t1 := b.convBNRelu(name+"_3x3", 3, 3, 192, 320, 2, 0, t1a)

	t2a := b.convBNRelu(name+"_7x7x3_reduce", 1, 1, inC, 192, 1, 0, in)
	t2b := b.convBNReluRect(name+"_7x7x3_1", 1, 7, 192, 192, 1, 0, 3, t2a)
	t2c := b.convBNReluRect(name+"_7x7x3_2", 7, 1, 192, 192, 1, 3, 0, t2b)
	t2 := b.convBNRelu(name+"_7x7x3_3", 3, 3, 192, 192, 2, 0, t2c)

	t3 := b.maxpool(name+"_pool", 3, 2, in)

	return b.concat(name+"_concat", t1, t2, t3)
}

// inceptionE adds an 8x8 Inception block with expanded 1x3/3x1 fan-outs.
// Output channels: 320 + 768 + 768 + 192 = 2048.
func inceptionE(b *graphBuilder, name string, in string, inC int) string {
	t1 := b.convBNRelu(name+"_1x1", 1, 1, inC, 320, 1, 0, in)

	t2a := b.convBNRelu(name+"_3x3_reduce", 1, 1, inC, 384, 1, 0, in)
	t2x := b.convBNReluRect(name+"_3x3_a", 1, 3, 384, 384, 1, 0, 1, t2a)
	t2y := b.convBNReluRect(name+"_3x3_b", 3, 1, 384, 384, 1, 1, 0, t2a)
	t2 := b.concat(name+"_3x3_concat", t2x, t2y)

	t3a := b.convBNRelu(name+"_3x3dbl_reduce", 1, 1, inC, 448, 1, 0, in)
	t3b := b.convBNRelu(name+"_3x3dbl_1", 3, 3, 448, 384, 1, 1, t3a)
	t3x := b.convBNReluRect(name+"_3x3dbl_a", 1, 3, 384, 384, 1, 0, 1, t3b)
	t3y := b.convBNReluRect(name+"_3x3dbl_b", 3, 1, 384, 384, 1, 1, 0, t3b)
	t3 := b.concat(name+"_3x3dbl_concat", t3x, t3y)

	p := b.avgpoolPadded(name+"_pool", 3, 1, 1, in)
	t4 := b.convBNRelu(name+"_pool_proj", 1, 1, inC, 192, 1, 0, p)

	return b.concat(name+"_concat", t1, t2, t3, t4)
}

// InceptionV3 builds Inception-v3 for 299x299x3 inputs following the
// official topology (stem, 3x Inception-A, grid reduction, 4x factorized
// Inception-C, grid reduction, 2x Inception-E, global pool) without the
// auxiliary classifier, ending in the 1x1 "pred" convolution
// (2048 -> 1000). Table I reports 23,850k parameters with pred, a CONV
// layer, at ~9%.
func InceptionV3(seed int64) (*Model, error) {
	b := newGraphBuilder(seed)
	// Stem: 299 -> 35 spatial.
	s1 := b.convBNRelu("conv_1", 3, 3, 3, 32, 2, 0)       // 149
	s2 := b.convBNRelu("conv_2", 3, 3, 32, 32, 1, 0, s1)  // 147
	s3 := b.convBNRelu("conv_3", 3, 3, 32, 64, 1, 1, s2)  // 147
	s4 := b.maxpool("pool_1", 3, 2, s3)                   // 73
	s5 := b.convBNRelu("conv_4", 1, 1, 64, 80, 1, 0, s4)  // 73
	s6 := b.convBNRelu("conv_5", 3, 3, 80, 192, 1, 0, s5) // 71
	stem := b.maxpool("pool_2", 3, 2, s6)                 // 35x35x192

	// 35x35 Inception-A stack: out 256, 288, 288.
	a1 := inceptionA(b, "mixed0", stem, 192, 32)
	a2 := inceptionA(b, "mixed1", a1, 256, 64)
	a3 := inceptionA(b, "mixed2", a2, 288, 64)

	// 35 -> 17 reduction: out 768.
	r1 := reductionA(b, "mixed3", a3, 288)

	// 17x17 factorized-7x7 stack.
	c1 := inceptionC(b, "mixed4", r1, 768, 128)
	c2 := inceptionC(b, "mixed5", c1, 768, 160)
	c3 := inceptionC(b, "mixed6", c2, 768, 160)
	c4 := inceptionC(b, "mixed7", c3, 768, 192)

	// 17 -> 8 reduction: out 1280.
	r2 := reductionB(b, "mixed8", c4, 768)

	// 8x8 expanded stack: out 2048.
	e1 := inceptionE(b, "mixed9", r2, 1280)
	e2 := inceptionE(b, "mixed10", e1, 2048)

	b.gap("avg_pool", e2)
	b.reshape("reshape_pred", []int{1, 1, 2048})
	b.conv("pred", 1, 1, 2048, 1000, 1, 0)
	b.flatten("flatten")
	b.softmax("softmax")
	m, err := b.finish(Info{
		Name:          "Inception-v3",
		InputShape:    []int{299, 299, 3},
		SelectedLayer: "pred",
		SelectedKind:  "CONV",
		PaperParamsK:  23850,
		PaperFraction: 0.09,
		Classes:       1000,
	})
	if err != nil {
		return nil, err
	}
	// Calibrated against Table II: amplitude 2*5.92 sigma reproduces
	// pred's CR curve (1.22 -> ~11x over delta 0..20%); sigma ~ 6.7e-3
	// lands the MSE near the paper's 1e-5 order.
	if err := retouchSelected(m, seed, 0.0067, 5.92); err != nil {
		return nil, err
	}
	return m, nil
}
