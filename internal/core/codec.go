package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Binary stream layout (little endian):
//
//	magic   [4]byte  "NCWC" (NoC CNN Weights Compression)
//	version uint16
//	n       uint32   original parameter count
//	delta   float64  absolute tolerance used
//	nseg    uint32   segment count
//	nseg x { m float32, q float32, len uint32 }
//
// This is the archival format used by cmd/compress; the hardware storage
// accounting for compression ratios is StorageModel, not this layout.
var magic = [4]byte{'N', 'C', 'W', 'C'}

const codecVersion uint16 = 1

// Codec errors.
var (
	ErrBadMagic   = errors.New("core: bad magic, not a compressed weight stream")
	ErrBadVersion = errors.New("core: unsupported codec version")
	ErrCorrupt    = errors.New("core: corrupt compressed stream")
)

// WriteTo serializes the compressed succession to w.
func (c *Compressed) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	le := binary.LittleEndian
	var tmp [8]byte
	le.PutUint16(tmp[:2], codecVersion)
	buf.Write(tmp[:2])
	le.PutUint32(tmp[:4], uint32(c.N))
	buf.Write(tmp[:4])
	le.PutUint64(tmp[:8], math.Float64bits(c.Delta))
	buf.Write(tmp[:8])
	le.PutUint32(tmp[:4], uint32(len(c.Segments)))
	buf.Write(tmp[:4])
	for _, s := range c.Segments {
		le.PutUint32(tmp[:4], math.Float32bits(s.M))
		buf.Write(tmp[:4])
		le.PutUint32(tmp[:4], math.Float32bits(s.Q))
		buf.Write(tmp[:4])
		le.PutUint32(tmp[:4], uint32(s.Len))
		buf.Write(tmp[:4])
	}
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// Marshal serializes the compressed succession to a byte slice.
func (c *Compressed) Marshal() []byte {
	var buf bytes.Buffer
	c.WriteTo(&buf) // bytes.Buffer writes cannot fail
	return buf.Bytes()
}

// ReadCompressed parses a compressed succession from r.
func ReadCompressed(r io.Reader) (*Compressed, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("core: reading magic: %w", err)
	}
	if hdr != magic {
		return nil, ErrBadMagic
	}
	le := binary.LittleEndian
	var tmp [8]byte
	if _, err := io.ReadFull(r, tmp[:2]); err != nil {
		return nil, fmt.Errorf("core: reading version: %w", err)
	}
	if v := le.Uint16(tmp[:2]); v != codecVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	if _, err := io.ReadFull(r, tmp[:4]); err != nil {
		return nil, fmt.Errorf("core: reading count: %w", err)
	}
	n := int(le.Uint32(tmp[:4]))
	if _, err := io.ReadFull(r, tmp[:8]); err != nil {
		return nil, fmt.Errorf("core: reading delta: %w", err)
	}
	delta := math.Float64frombits(le.Uint64(tmp[:8]))
	if _, err := io.ReadFull(r, tmp[:4]); err != nil {
		return nil, fmt.Errorf("core: reading segment count: %w", err)
	}
	nseg := int(le.Uint32(tmp[:4]))
	if nseg > n && n > 0 {
		return nil, fmt.Errorf("%w: %d segments for %d params", ErrCorrupt, nseg, n)
	}
	segs := make([]Segment, nseg)
	for i := range segs {
		var rec [12]byte
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			return nil, fmt.Errorf("core: reading segment %d: %w", i, err)
		}
		segs[i] = Segment{
			M:   math.Float32frombits(le.Uint32(rec[0:4])),
			Q:   math.Float32frombits(le.Uint32(rec[4:8])),
			Len: int(le.Uint32(rec[8:12])),
		}
		if segs[i].Len <= 0 {
			return nil, fmt.Errorf("%w: segment %d has length %d", ErrCorrupt, i, segs[i].Len)
		}
	}
	c := &Compressed{N: n, Delta: delta, Segments: segs}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return c, nil
}

// Unmarshal parses a compressed succession from a byte slice.
func Unmarshal(data []byte) (*Compressed, error) {
	return ReadCompressed(bytes.NewReader(data))
}
