package cluster

import "fmt"

// Command is one replicated scheduler decision. Weight rollouts are two
// commands: "stage" distributes and validates version v on every
// replica (which keeps serving its active version), and "activate"
// flips serving to v. Activation is only proposed by a leader that has
// applied the stage entry, so a committed activate implies the staged
// plan is replicated on a quorum — the two-phase shape that keeps a
// mid-rollout leader kill from ever exposing mixed versions.
type Command struct {
	Kind    string  // "stage" or "activate"
	Version int     // weight-version epoch number
	Level   float64 // codec plan parameter recorded with the epoch
}

// entry is one replicated log slot.
type entry struct {
	Term uint64
	Cmd  Command
}

// Raft node states.
const (
	follower = iota
	candidate
	leader
)

// Raft timing (ticks). Election timeouts are deterministic per (seed,
// node, term): same spread as the classic randomized timeout, but
// byte-reproducible.
const (
	heartbeatEvery = 150
	electionBase   = 600
	electionSpread = 600
)

// requestVoteArgs / appendEntriesArgs are the two RPC payloads.
type requestVoteArgs struct {
	Term         uint64
	Candidate    int
	LastLogIndex int
	LastLogTerm  uint64
}
type requestVoteReply struct {
	Term    uint64
	Granted bool
}
type appendEntriesArgs struct {
	Term         uint64
	Leader       int
	PrevLogIndex int
	PrevLogTerm  uint64
	Entries      []entry
	LeaderCommit int
}
type appendEntriesReply struct {
	Term    uint64
	Success bool
	// MatchHint carries the follower's log length on failure so the
	// leader can skip back quickly (a simplified conflict hint).
	MatchHint int
}

// Raft is a compact Raft implementation specialized for the replicated
// weight-rollout scheduler: leader election with terms and log-recency
// voting, heartbeat-driven log replication with consistency checks,
// quorum commit restricted to current-term entries, and deterministic
// timeouts. Persistent state (term, vote, log) survives Crash/Restart —
// it models the node's disk.
type Raft struct {
	ep    *Endpoint
	peers []int // all member ids, self included, ascending

	// Persistent ("disk") state.
	term     uint64
	votedFor int // -1 = none
	log      []entry

	// Volatile state.
	state       int
	commitIndex int
	lastApplied int
	leaderHint  int // last known leader (-1 unknown)
	votes       map[int]bool
	nextIndex   map[int]int
	matchIndex  map[int]int
	timerGen    uint64 // invalidates stale election timers
	beating     bool   // heartbeat loop armed

	// apply is invoked in log order, on every node, exactly once per
	// committed entry (per lifetime; a restart re-applies from scratch
	// into the state machine it also persists — see node.go).
	apply func(now Tick, index int, cmd Command)
	// onLeader fires when this node wins an election, after its state
	// is initialized — the scheduler uses it to resume interrupted
	// rollouts.
	onLeader func(now Tick)

	// stats
	leaderChanges int
}

// newRaft wires a Raft instance onto an endpoint.
func newRaft(ep *Endpoint, peers []int, apply func(Tick, int, Command), onLeader func(Tick)) *Raft {
	r := &Raft{
		ep: ep, peers: peers,
		votedFor: -1, leaderHint: -1,
		log:   []entry{{}}, // index 0 sentinel
		apply: apply, onLeader: onLeader,
	}
	ep.Handle("Raft.RequestVote", r.handleRequestVote)
	ep.Handle("Raft.AppendEntries", r.handleAppendEntries)
	return r
}

// start arms the first election timer.
func (r *Raft) start(now Tick) { r.resetElectionTimer(now) }

// restart is called when a crashed node rejoins: volatile state resets,
// persistent state (term, vote, log) is retained, and commit/apply
// bookkeeping replays from the log as the new leader's heartbeats
// advance commitIndex.
func (r *Raft) restart(now Tick) {
	r.state = follower
	r.votes = nil
	r.leaderHint = -1
	r.commitIndex, r.lastApplied = 0, 0
	r.beating = false
	r.resetElectionTimer(now)
}

// quorum returns the majority size.
func (r *Raft) quorum() int { return len(r.peers)/2 + 1 }

// electionTimeout derives the deterministic per-(node, term) timeout.
func (r *Raft) electionTimeout() Tick {
	h := uint64(r.ep.f.Faults.Seed) ^ 0x656c6563 // "elec"
	for _, k := range [2]uint64{uint64(uint32(r.ep.id)), r.term + 1} {
		h ^= k
		h += 0x9e3779b97f4a7c15
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	return electionBase + h%electionSpread
}

// resetElectionTimer re-arms the follower/candidate timeout.
func (r *Raft) resetElectionTimer(now Tick) {
	r.timerGen++
	gen := r.timerGen
	r.ep.f.After(r.electionTimeout(), func(at Tick) {
		if gen != r.timerGen || !r.ep.Alive() || r.state == leader {
			return
		}
		r.startElection(at)
	})
}

// startElection moves to candidate and solicits votes.
func (r *Raft) startElection(now Tick) {
	r.state = candidate
	r.term++
	r.votedFor = r.ep.id
	r.votes = map[int]bool{r.ep.id: true}
	r.resetElectionTimer(now) // re-candidate on a split vote
	args := requestVoteArgs{Term: r.term, Candidate: r.ep.id, LastLogIndex: len(r.log) - 1, LastLogTerm: r.log[len(r.log)-1].Term}
	term := r.term
	for _, p := range r.peers {
		if p == r.ep.id {
			continue
		}
		voter := p
		r.ep.Go(p, "Raft.RequestVote", args,
			CallOpts{Timeout: electionBase / 2, Backoff: heartbeatEvery / 2},
			func(at Tick, reply any, err error) {
				if err != nil || r.state != candidate || r.term != term {
					return
				}
				rv := reply.(requestVoteReply)
				if rv.Term > r.term {
					r.stepDown(at, rv.Term)
					return
				}
				if rv.Granted {
					r.votes[voter] = true
					if len(r.votes) >= r.quorum() {
						r.becomeLeader(at)
					}
				}
			})
	}
}

// becomeLeader initializes leader state and starts heartbeats.
func (r *Raft) becomeLeader(now Tick) {
	if r.state == leader {
		return
	}
	r.state = leader
	r.leaderHint = r.ep.id
	r.leaderChanges++
	r.timerGen++ // kill the election timer
	r.nextIndex = map[int]int{}
	r.matchIndex = map[int]int{}
	for _, p := range r.peers {
		r.nextIndex[p] = len(r.log)
		r.matchIndex[p] = 0
	}
	// Append a blank entry in the new term. Earlier-term entries cannot
	// commit by counting (the current-term rule), so without a fresh
	// entry a leader whose log tail predates its term would stall until
	// the next client proposal — which for a stranded epoch activation
	// may never come. Committing the blank entry commits everything
	// below it.
	r.log = append(r.log, entry{Term: r.term})
	r.matchIndex[r.ep.id] = len(r.log) - 1
	if r.onLeader != nil {
		r.onLeader(now)
	}
	r.broadcast(now)
	if !r.beating {
		r.beating = true
		r.heartbeatLoop(now)
	}
}

// heartbeatLoop re-broadcasts AppendEntries while leader.
func (r *Raft) heartbeatLoop(Tick) {
	r.ep.f.After(heartbeatEvery, func(at Tick) {
		if !r.ep.Alive() || r.state != leader {
			r.beating = false
			return
		}
		r.broadcast(at)
		r.heartbeatLoop(at)
	})
}

// stepDown returns to follower. The vote is only cleared when the term
// actually advances — a candidate acknowledging the current term's
// leader keeps its vote, so no node ever votes twice in one term.
func (r *Raft) stepDown(now Tick, term uint64) {
	if term > r.term {
		r.term = term
		r.votedFor = -1
	}
	r.state = follower
	r.votes = nil
	r.resetElectionTimer(now)
}

// Propose appends a command to the leader's log and replicates it. It
// reports the assigned index and whether this node is the leader.
func (r *Raft) Propose(now Tick, cmd Command) (int, bool) {
	if r.state != leader {
		return 0, false
	}
	r.log = append(r.log, entry{Term: r.term, Cmd: cmd})
	r.matchIndex[r.ep.id] = len(r.log) - 1
	r.broadcast(now)
	return len(r.log) - 1, true
}

// broadcast sends AppendEntries to every peer, tailored to its
// nextIndex.
func (r *Raft) broadcast(now Tick) {
	for _, p := range r.peers {
		if p == r.ep.id {
			continue
		}
		r.replicateTo(now, p)
	}
}

// replicateTo sends one AppendEntries to peer p.
func (r *Raft) replicateTo(now Tick, p int) {
	next := r.nextIndex[p]
	if next < 1 {
		next = 1
	}
	if next > len(r.log) {
		next = len(r.log)
	}
	args := appendEntriesArgs{
		Term: r.term, Leader: r.ep.id,
		PrevLogIndex: next - 1,
		PrevLogTerm:  r.log[next-1].Term,
		Entries:      append([]entry(nil), r.log[next:]...),
		LeaderCommit: r.commitIndex,
	}
	term := r.term
	sentUpTo := len(r.log) - 1
	r.ep.Go(p, "Raft.AppendEntries", args,
		CallOpts{Timeout: heartbeatEvery},
		func(at Tick, reply any, err error) {
			if err != nil || r.state != leader || r.term != term {
				return // the heartbeat loop is the retry
			}
			ae := reply.(appendEntriesReply)
			if ae.Term > r.term {
				r.stepDown(at, ae.Term)
				return
			}
			if ae.Success {
				if sentUpTo > r.matchIndex[p] {
					r.matchIndex[p] = sentUpTo
				}
				if sentUpTo+1 > r.nextIndex[p] {
					r.nextIndex[p] = sentUpTo + 1
				}
				r.advanceCommit(at)
			} else {
				// Log inconsistency: adopt the follower's hint, floor 1.
				ni := ae.MatchHint
				if ni < 1 {
					ni = 1
				}
				if ni < r.nextIndex[p] {
					r.nextIndex[p] = ni
				} else if r.nextIndex[p] > 1 {
					r.nextIndex[p]--
				}
			}
		})
}

// advanceCommit moves commitIndex to the highest current-term index
// replicated on a quorum, then applies.
func (r *Raft) advanceCommit(now Tick) {
	for n := len(r.log) - 1; n > r.commitIndex; n-- {
		if r.log[n].Term != r.term {
			break // only current-term entries commit by counting
		}
		count := 0
		for _, p := range r.peers {
			if p == r.ep.id || r.matchIndex[p] >= n {
				count++
			}
		}
		if count >= r.quorum() {
			r.commitIndex = n
			break
		}
	}
	r.applyCommitted(now)
}

// applyCommitted applies entries up to commitIndex in order. Blank
// leader-election entries advance lastApplied but never reach the
// state machine.
func (r *Raft) applyCommitted(now Tick) {
	for r.lastApplied < r.commitIndex {
		r.lastApplied++
		if cmd := r.log[r.lastApplied].Cmd; cmd.Kind != "" {
			r.apply(now, r.lastApplied, cmd)
		}
	}
}

// handleRequestVote is the voter side of elections.
func (r *Raft) handleRequestVote(now Tick, _ int, arg any) (any, Tick, error) {
	a := arg.(requestVoteArgs)
	if a.Term > r.term {
		r.stepDown(now, a.Term)
	}
	reply := requestVoteReply{Term: r.term}
	if a.Term < r.term {
		return reply, 0, nil
	}
	upToDate := a.LastLogTerm > r.log[len(r.log)-1].Term ||
		(a.LastLogTerm == r.log[len(r.log)-1].Term && a.LastLogIndex >= len(r.log)-1)
	if (r.votedFor == -1 || r.votedFor == a.Candidate) && upToDate {
		r.votedFor = a.Candidate
		reply.Granted = true
		r.resetElectionTimer(now)
	}
	return reply, 0, nil
}

// handleAppendEntries is the follower side of replication.
func (r *Raft) handleAppendEntries(now Tick, _ int, arg any) (any, Tick, error) {
	a := arg.(appendEntriesArgs)
	reply := appendEntriesReply{Term: r.term, MatchHint: len(r.log)}
	if a.Term < r.term {
		return reply, 0, nil
	}
	if a.Term > r.term || r.state != follower {
		r.stepDown(now, a.Term)
	}
	r.term = a.Term
	reply.Term = r.term
	r.leaderHint = a.Leader
	r.resetElectionTimer(now)

	if a.PrevLogIndex >= len(r.log) || r.log[a.PrevLogIndex].Term != a.PrevLogTerm {
		reply.MatchHint = len(r.log)
		return reply, 0, nil
	}
	// Append, truncating any conflicting suffix.
	for i, e := range a.Entries {
		idx := a.PrevLogIndex + 1 + i
		if idx < len(r.log) {
			if r.log[idx].Term != e.Term {
				r.log = r.log[:idx]
				r.log = append(r.log, e)
			}
			continue
		}
		r.log = append(r.log, e)
	}
	if a.LeaderCommit > r.commitIndex {
		last := a.PrevLogIndex + len(a.Entries)
		r.commitIndex = min(a.LeaderCommit, last)
		if r.commitIndex > len(r.log)-1 {
			r.commitIndex = len(r.log) - 1
		}
	}
	r.applyCommitted(now)
	reply.Success = true
	reply.MatchHint = len(r.log)
	return reply, 0, nil
}

// IsLeader reports whether this node currently believes it leads.
func (r *Raft) IsLeader() bool { return r.state == leader }

// Leader returns the node's current leader hint (-1 unknown).
func (r *Raft) Leader() int { return r.leaderHint }

// Term returns the node's current term.
func (r *Raft) Term() uint64 { return r.term }

// debugString summarizes the node for test failure messages.
func (r *Raft) debugString() string {
	return fmt.Sprintf("id=%d state=%d term=%d log=%d commit=%d applied=%d",
		r.ep.id, r.state, r.term, len(r.log), r.commitIndex, r.lastApplied)
}
