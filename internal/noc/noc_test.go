package noc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestNet(t *testing.T, cfg Config) *Network {
	t.Helper()
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Width: 0, Height: 4, BufferDepth: 4, FlitBits: 64},
		{Width: 1, Height: 1, BufferDepth: 4, FlitBits: 64},
		{Width: 4, Height: 4, BufferDepth: 0, FlitBits: 64},
		{Width: 4, Height: 4, BufferDepth: 4, FlitBits: 0},
		{Width: 4, Height: 4, BufferDepth: 4, FlitBits: 64, MaxPacketFlit: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestNodeAtAndCoord(t *testing.T) {
	nw := newTestNet(t, DefaultConfig())
	id, err := nw.NodeAt(3, 2)
	if err != nil || id != 11 {
		t.Errorf("NodeAt(3,2) = %d, %v", id, err)
	}
	if _, err := nw.NodeAt(4, 0); err == nil {
		t.Error("off-mesh NodeAt should error")
	}
	x, y := nw.coord(11)
	if x != 3 || y != 2 {
		t.Errorf("coord(11) = (%d,%d)", x, y)
	}
}

func TestXYRouteDirections(t *testing.T) {
	nw := newTestNet(t, DefaultConfig())
	// From node 5 (1,1).
	cases := []struct {
		dst  int
		want int
	}{
		{6, PortEast},  // (2,1)
		{4, PortWest},  // (0,1)
		{1, PortNorth}, // (1,0)
		{9, PortSouth}, // (1,2)
		{5, PortLocal},
		{10, PortEast}, // (2,2): X first
	}
	for _, c := range cases {
		if got := nw.route(5, c.dst); got != c.want {
			t.Errorf("xyRoute(5,%d) = %s, want %s", c.dst, PortName(got), PortName(c.want))
		}
	}
}

func TestNeighbor(t *testing.T) {
	nw := newTestNet(t, DefaultConfig())
	nid, nport, ok := nw.neighbor(5, PortEast)
	if !ok || nid != 6 || nport != PortWest {
		t.Errorf("neighbor(5,E) = %d,%s,%v", nid, PortName(nport), ok)
	}
	if _, _, ok := nw.neighbor(0, PortNorth); ok {
		t.Error("node 0 should have no north neighbor")
	}
	if _, _, ok := nw.neighbor(0, PortLocal); ok {
		t.Error("local port has no neighbor")
	}
}

func TestInjectValidation(t *testing.T) {
	nw := newTestNet(t, DefaultConfig())
	if err := nw.Inject(Packet{Src: -1, Dst: 3, Flits: 1}); err == nil {
		t.Error("negative src should error")
	}
	if err := nw.Inject(Packet{Src: 0, Dst: 99, Flits: 1}); err == nil {
		t.Error("off-mesh dst should error")
	}
	if err := nw.Inject(Packet{Src: 2, Dst: 2, Flits: 1}); err == nil {
		t.Error("self-addressed packet should error")
	}
	if err := nw.Inject(Packet{Src: 0, Dst: 1, Flits: 0}); err == nil {
		t.Error("zero-flit packet should error")
	}
	if err := nw.Inject(Packet{Src: 0, Dst: 1, Flits: 1000}); err == nil {
		t.Error("oversized packet should error")
	}
}

func TestSinglePacketDelivery(t *testing.T) {
	nw := newTestNet(t, DefaultConfig())
	var got []Delivery
	nw.SetSink(func(d Delivery) { got = append(got, d) })
	if err := nw.Inject(Packet{Src: 0, Dst: 15, Flits: 4, Meta: "hello"}); err != nil {
		t.Fatal(err)
	}
	cycles, drained := nw.RunUntilIdle(10000)
	if !drained {
		t.Fatal("network did not drain")
	}
	if len(got) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(got))
	}
	d := got[0]
	if d.Packet.Meta != "hello" || d.Packet.Src != 0 || d.Packet.Dst != 15 {
		t.Errorf("delivery packet = %+v", d.Packet)
	}
	// 0 -> 15 is 6 hops; 4 flits; plus injection/ejection pipeline. The
	// latency must be at least hops + flits and well under the drain time.
	if d.Latency < 10 || d.Latency > 64 {
		t.Errorf("latency = %d cycles, outside sane window", d.Latency)
	}
	if cycles == 0 {
		t.Error("zero cycles elapsed")
	}
	st := nw.Stats()
	if st.PacketsIn != 1 || st.PacketsOut != 1 {
		t.Errorf("stats packets %d/%d", st.PacketsIn, st.PacketsOut)
	}
	if st.FlitsInjected != 4 || st.FlitsEjected != 4 {
		t.Errorf("stats flits %d/%d", st.FlitsInjected, st.FlitsEjected)
	}
	// 6 links per flit.
	if st.LinkTraverse != 24 {
		t.Errorf("link traversals = %d, want 24", st.LinkTraverse)
	}
	// 7 routers per flit (source through destination).
	if st.RouterTraverse != 28 {
		t.Errorf("router traversals = %d, want 28", st.RouterTraverse)
	}
}

func TestAdjacentDelivery(t *testing.T) {
	nw := newTestNet(t, DefaultConfig())
	count := 0
	nw.SetSink(func(d Delivery) { count++ })
	if err := nw.Inject(Packet{Src: 1, Dst: 2, Flits: 1}); err != nil {
		t.Fatal(err)
	}
	if _, ok := nw.RunUntilIdle(100); !ok {
		t.Fatal("did not drain")
	}
	if count != 1 {
		t.Errorf("deliveries = %d", count)
	}
}

func TestSendMessageSegmentation(t *testing.T) {
	nw := newTestNet(t, DefaultConfig())
	pkts, err := nw.SendMessage(0, 5, 100, "bulk")
	if err != nil {
		t.Fatal(err)
	}
	if pkts != 4 { // 32+32+32+4
		t.Errorf("packets = %d, want 4", pkts)
	}
	delivered := 0
	nw.SetSink(func(d Delivery) {
		if d.Packet.Meta != "bulk" {
			t.Errorf("meta lost: %v", d.Packet.Meta)
		}
		delivered++
	})
	if _, ok := nw.RunUntilIdle(100000); !ok {
		t.Fatal("did not drain")
	}
	if delivered != 4 {
		t.Errorf("delivered = %d", delivered)
	}
	if _, err := nw.SendMessage(0, 5, 0, nil); err == nil {
		t.Error("zero-flit message should error")
	}
}

// TestFlitConservation is the fundamental invariant: under arbitrary
// random traffic, every injected flit is eventually ejected and packet
// counts balance.
func TestFlitConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nw, err := New(Config{Width: 4, Height: 4, BufferDepth: 2, FlitBits: 64, MaxPacketFlit: 8})
		if err != nil {
			return false
		}
		n := 50 + rng.Intn(100)
		for i := 0; i < n; i++ {
			src := rng.Intn(16)
			dst := rng.Intn(16)
			if dst == src {
				dst = (src + 1) % 16
			}
			if err := nw.Inject(Packet{Src: src, Dst: dst, Flits: 1 + rng.Intn(8)}); err != nil {
				return false
			}
			// Interleave stepping so traffic overlaps.
			if rng.Intn(3) == 0 {
				nw.Step()
			}
		}
		if _, ok := nw.RunUntilIdle(1_000_000); !ok {
			return false // deadlock or livelock: must never happen with XY
		}
		st := nw.Stats()
		return st.FlitsInjected == st.FlitsEjected &&
			st.PacketsIn == st.PacketsOut &&
			st.PacketsIn == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestHeavyCongestionDrains saturates a single destination (the hotspot
// pattern of the accelerator's memory interfaces) and checks progress.
func TestHeavyCongestionDrains(t *testing.T) {
	nw := newTestNet(t, Config{Width: 4, Height: 4, BufferDepth: 2, FlitBits: 64, MaxPacketFlit: 16})
	for src := 0; src < 16; src++ {
		if src == 0 {
			continue
		}
		for k := 0; k < 20; k++ {
			if err := nw.Inject(Packet{Src: src, Dst: 0, Flits: 8}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, ok := nw.RunUntilIdle(2_000_000); !ok {
		t.Fatal("hotspot traffic did not drain (deadlock?)")
	}
	st := nw.Stats()
	if st.FlitsInjected != st.FlitsEjected {
		t.Errorf("flits lost: %d injected, %d ejected", st.FlitsInjected, st.FlitsEjected)
	}
}

// TestWormholeIntegrity checks that two long packets contending for the
// same path do not interleave: deliveries happen exactly once per packet
// and latency ordering reflects serialization.
func TestWormholeIntegrity(t *testing.T) {
	nw := newTestNet(t, Config{Width: 4, Height: 1, BufferDepth: 2, FlitBits: 64, MaxPacketFlit: 16})
	var deliveries []Delivery
	nw.SetSink(func(d Delivery) { deliveries = append(deliveries, d) })
	// Two 16-flit packets from nodes 0 and 1 to node 3 share the link 2->3.
	if err := nw.Inject(Packet{Src: 0, Dst: 3, Flits: 16, Meta: "A"}); err != nil {
		t.Fatal(err)
	}
	if err := nw.Inject(Packet{Src: 1, Dst: 3, Flits: 16, Meta: "B"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := nw.RunUntilIdle(10000); !ok {
		t.Fatal("did not drain")
	}
	if len(deliveries) != 2 {
		t.Fatalf("deliveries = %d", len(deliveries))
	}
	// Serialized tails: the two tail ejections must be >= 16 cycles apart
	// only if fully serialized; at minimum they cannot eject on the same
	// cycle because the destination ejection port handles one flit/cycle.
	if deliveries[0].Cycle == deliveries[1].Cycle {
		t.Error("two tails ejected same cycle through one port")
	}
}

// TestSingleFlitOneHopLatency pins the exact latency of the minimal
// transfer: a single-flit packet to an adjacent node. The flit spends one
// cycle entering the local input port (phase 3), one crossing the link
// (phase 2 of the next cycle), and one being ejected at the destination —
// three cycles, with the delivery cycle itself counted. A tail ejected
// during cycle N completes at cycle N+1; crediting it N cycles (the
// pre-fix accounting, which read the cycle counter before its end-of-Step
// increment) undercounts every packet by one.
func TestSingleFlitOneHopLatency(t *testing.T) {
	nw := newTestNet(t, DefaultConfig())
	var got []Delivery
	nw.SetSink(func(d Delivery) { got = append(got, d) })
	if err := nw.Inject(Packet{Src: 1, Dst: 2, Flits: 1}); err != nil {
		t.Fatal(err)
	}
	if _, ok := nw.RunUntilIdle(100); !ok {
		t.Fatal("did not drain")
	}
	if len(got) != 1 {
		t.Fatalf("deliveries = %d", len(got))
	}
	if got[0].Latency != 3 {
		t.Errorf("one-hop single-flit latency = %d cycles, want exactly 3", got[0].Latency)
	}
	if got[0].Cycle != 3 {
		t.Errorf("delivery cycle = %d, want 3", got[0].Cycle)
	}
	if sum := nw.Stats().LatencySum; sum != 3 {
		t.Errorf("LatencySum = %d, want 3", sum)
	}
	// The same invariant away from cycle zero: latency is position
	// independent.
	for i := 0; i < 10; i++ {
		nw.Step()
	}
	if err := nw.Inject(Packet{Src: 1, Dst: 2, Flits: 1}); err != nil {
		t.Fatal(err)
	}
	if _, ok := nw.RunUntilIdle(100); !ok {
		t.Fatal("did not drain")
	}
	if got[1].Latency != 3 {
		t.Errorf("delayed one-hop latency = %d cycles, want 3", got[1].Latency)
	}
}

func TestIdleAndStats(t *testing.T) {
	nw := newTestNet(t, DefaultConfig())
	if !nw.Idle() {
		t.Error("fresh network should be idle")
	}
	nw.Step()
	if nw.Cycle() != 1 {
		t.Errorf("cycle = %d", nw.Cycle())
	}
	if nw.Inject(Packet{Src: 0, Dst: 1, Flits: 1}) != nil {
		t.Fatal("inject failed")
	}
	if nw.Idle() {
		t.Error("network with queued flit should not be idle")
	}
	if nw.InjectQueueLen(0) != 1 {
		t.Errorf("inject queue = %d", nw.InjectQueueLen(0))
	}
	if nw.Nodes() != 16 {
		t.Errorf("nodes = %d", nw.Nodes())
	}
}

func TestAvgPacketLatency(t *testing.T) {
	var s Stats
	if s.AvgPacketLatency() != 0 {
		t.Error("empty stats latency should be 0")
	}
	s.PacketsOut = 2
	s.LatencySum = 30
	if s.AvgPacketLatency() != 15 {
		t.Error("avg latency wrong")
	}
}

func TestRunUntilIdleBudget(t *testing.T) {
	nw := newTestNet(t, DefaultConfig())
	if err := nw.Inject(Packet{Src: 0, Dst: 15, Flits: 4}); err != nil {
		t.Fatal(err)
	}
	// A two-cycle budget cannot drain a six-hop packet.
	if _, ok := nw.RunUntilIdle(2); ok {
		t.Error("RunUntilIdle claimed drain within 2 cycles")
	}
}

func TestFlitTypeString(t *testing.T) {
	for ft, want := range map[FlitType]string{
		HeadFlit: "head", BodyFlit: "body", TailFlit: "tail", HeadTailFlit: "headtail",
	} {
		if ft.String() != want {
			t.Errorf("FlitType(%d).String() = %q", ft, ft.String())
		}
	}
	if FlitType(9).String() == "" {
		t.Error("unknown flit type should still print")
	}
	if PortName(-1) == "" || PortName(PortEast) != "east" {
		t.Error("PortName broken")
	}
}

func TestRoutingString(t *testing.T) {
	if RoutingXY.String() != "xy" || RoutingYX.String() != "yx" || RoutingWestFirst.String() != "west-first" {
		t.Error("Routing.String broken")
	}
}

func TestRoutingValidate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Routing = Routing(9)
	if err := cfg.Validate(); err == nil {
		t.Error("unknown routing should be rejected")
	}
}

func TestYXRouteDirections(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Routing = RoutingYX
	nw := newTestNet(t, cfg)
	// From node 5 (1,1): YX routes Y first.
	if got := nw.route(5, 10); got != PortSouth { // (2,2)
		t.Errorf("YX route(5,10) = %s, want south", PortName(got))
	}
	if got := nw.route(5, 6); got != PortEast { // (2,1): aligned in Y
		t.Errorf("YX route(5,6) = %s, want east", PortName(got))
	}
	if got := nw.route(5, 5); got != PortLocal {
		t.Errorf("YX route(5,5) = %s, want local", PortName(got))
	}
}

func TestWestFirstRouteDirections(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Routing = RoutingWestFirst
	nw := newTestNet(t, cfg)
	// Westward destinations route west first, unconditionally.
	if got := nw.route(5, 8); got != PortWest { // (0,2): west and south
		t.Errorf("west-first route(5,8) = %s, want west", PortName(got))
	}
	// Pure vertical moves are admissible.
	if got := nw.route(5, 13); got != PortSouth { // (1,3)
		t.Errorf("west-first route(5,13) = %s, want south", PortName(got))
	}
	// Eastward+vertical: either admissible; must be one of them.
	got := nw.route(5, 10) // (2,2): east or south
	if got != PortEast && got != PortSouth {
		t.Errorf("west-first route(5,10) = %s", PortName(got))
	}
	if got := nw.route(5, 5); got != PortLocal {
		t.Errorf("west-first route(5,5) = %s, want local", PortName(got))
	}
}

// TestAllRoutingsDrainAndConserve runs heavy random traffic under every
// routing algorithm: all must be deadlock-free and conserve flits.
func TestAllRoutingsDrainAndConserve(t *testing.T) {
	for _, routing := range []Routing{RoutingXY, RoutingYX, RoutingWestFirst} {
		routing := routing
		t.Run(routing.String(), func(t *testing.T) {
			cfg := Config{Width: 4, Height: 4, BufferDepth: 2, FlitBits: 64, MaxPacketFlit: 8, Routing: routing}
			nw := newTestNet(t, cfg)
			rng := rand.New(rand.NewSource(int64(routing) + 77))
			n := 300
			for i := 0; i < n; i++ {
				src := rng.Intn(16)
				dst := rng.Intn(16)
				if dst == src {
					dst = (src + 3) % 16
				}
				if err := nw.Inject(Packet{Src: src, Dst: dst, Flits: 1 + rng.Intn(8)}); err != nil {
					t.Fatal(err)
				}
				if rng.Intn(2) == 0 {
					nw.Step()
				}
			}
			if _, ok := nw.RunUntilIdle(2_000_000); !ok {
				t.Fatalf("%s deadlocked", routing)
			}
			st := nw.Stats()
			if st.FlitsInjected != st.FlitsEjected || st.PacketsOut != uint64(n) {
				t.Errorf("%s lost traffic: %+v", routing, st)
			}
		})
	}
}

func TestPerRouterTraversals(t *testing.T) {
	nw := newTestNet(t, DefaultConfig())
	if err := nw.Inject(Packet{Src: 0, Dst: 3, Flits: 2}); err != nil {
		t.Fatal(err)
	}
	if _, ok := nw.RunUntilIdle(1000); !ok {
		t.Fatal("did not drain")
	}
	per := nw.PerRouterTraversals()
	if len(per) != 16 {
		t.Fatalf("per-router length = %d", len(per))
	}
	// Path 0 -> 1 -> 2 -> 3: each router on the path forwards 2 flits.
	for _, r := range []int{0, 1, 2, 3} {
		if per[r] != 2 {
			t.Errorf("router %d traversals = %d, want 2", r, per[r])
		}
	}
	for _, r := range []int{4, 5, 15} {
		if per[r] != 0 {
			t.Errorf("router %d traversals = %d, want 0", r, per[r])
		}
	}
	var sum uint64
	for _, c := range per {
		sum += c
	}
	if sum != nw.Stats().RouterTraverse {
		t.Errorf("per-router sum %d != total %d", sum, nw.Stats().RouterTraverse)
	}
}

func TestVirtualChannelConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VirtualChannels = 17
	if err := cfg.Validate(); err == nil {
		t.Error("17 VCs should be rejected")
	}
	cfg.VirtualChannels = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative VCs should be rejected")
	}
	cfg.VirtualChannels = 0
	if cfg.vcs() != 1 {
		t.Error("0 VCs should mean plain wormhole (1)")
	}
	cfg.VirtualChannels = 4
	if err := cfg.Validate(); err != nil {
		t.Errorf("4 VCs rejected: %v", err)
	}
}

func TestVirtualChannelsConserveFlits(t *testing.T) {
	for _, vcs := range []int{1, 2, 4} {
		cfg := Config{Width: 4, Height: 4, BufferDepth: 2, FlitBits: 64, MaxPacketFlit: 8, VirtualChannels: vcs}
		nw := newTestNet(t, cfg)
		rng := rand.New(rand.NewSource(int64(vcs)))
		n := 200
		for i := 0; i < n; i++ {
			src, dst := rng.Intn(16), rng.Intn(16)
			if dst == src {
				dst = (src + 1) % 16
			}
			if err := nw.Inject(Packet{Src: src, Dst: dst, Flits: 1 + rng.Intn(8)}); err != nil {
				t.Fatal(err)
			}
			if rng.Intn(2) == 0 {
				nw.Step()
			}
		}
		if _, ok := nw.RunUntilIdle(2_000_000); !ok {
			t.Fatalf("%d VCs: did not drain", vcs)
		}
		st := nw.Stats()
		if st.FlitsInjected != st.FlitsEjected || st.PacketsOut != uint64(n) {
			t.Errorf("%d VCs: traffic lost: %+v", vcs, st)
		}
	}
}

// TestVirtualChannelsRelieveHOLBlocking constructs head-of-line blocking:
// a long packet from node 0 and a short packet from node 4 both traverse
// router 5 eastward, with the long packet's destination path congested.
// With one VC the short packet waits behind the long one; with two VCs it
// overtakes on its own lane, so total drain time drops.
func TestVirtualChannelsRelieveHOLBlocking(t *testing.T) {
	drain := func(vcs int) uint64 {
		cfg := Config{Width: 4, Height: 1, BufferDepth: 1, FlitBits: 64, MaxPacketFlit: 32, VirtualChannels: vcs}
		nw, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Entrench a long packet 0 -> 3 (packet ID 0 -> VC 0).
		if err := nw.Inject(Packet{Src: 0, Dst: 3, Flits: 32}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 12; i++ {
			nw.Step()
		}
		// Now a short packet 1 -> 3 (ID 1 -> VC 1 when vcs = 2) arrives
		// behind the long packet's wormhole.
		if err := nw.Inject(Packet{Src: 1, Dst: 3, Flits: 2}); err != nil {
			t.Fatal(err)
		}
		var shortDone uint64
		nw.SetSink(func(d Delivery) {
			if d.Packet.Flits == 2 {
				shortDone = d.Cycle
			}
		})
		if _, ok := nw.RunUntilIdle(100000); !ok {
			t.Fatal("did not drain")
		}
		return shortDone
	}
	one := drain(1)
	two := drain(2)
	if two >= one {
		t.Errorf("2 VCs did not relieve HOL blocking: short packet at %d vs %d cycles", two, one)
	}
}
