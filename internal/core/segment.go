package core

// Direction is the monotone direction of a sub-succession.
type Direction int8

// Monotone directions. DirNone marks a segment whose direction was never
// forced: every consecutive step stayed within the tolerance threshold.
const (
	DirNone Direction = iota
	DirUp
	DirDown
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case DirUp:
		return "up"
	case DirDown:
		return "down"
	default:
		return "none"
	}
}

// Run identifies one weakly monotonic sub-succession within a parameter
// stream: the half-open index range [Start, Start+Len) and its direction.
type Run struct {
	Start int
	Len   int
	Dir   Direction
}

// SegmentBounds greedily partitions w into maximal sub-successions that are
// monotonic in the weak sense with tolerance threshold delta (Eq. 1):
// within a segment, every consecutive step either follows the segment's
// direction or deviates from it by at most delta. The direction of a
// segment is fixed by the first step whose magnitude exceeds delta.
//
// With delta = 0 this degenerates to strict-sense monotone segmentation
// (ties allowed in either direction). The runs cover w exactly, in order,
// without overlap. Empty input yields no runs.
func SegmentBounds(w []float64, delta float64) []Run {
	if len(w) == 0 {
		return nil
	}
	// Pre-size using the iid expectation E[L] ~= 2.44.
	runs := make([]Run, 0, len(w)/2+1)
	start := 0
	dir := DirNone
	for i := 1; i < len(w); i++ {
		step := w[i] - w[i-1]
		switch {
		case step > delta: // significant move up
			if dir == DirDown {
				runs = append(runs, Run{Start: start, Len: i - start, Dir: dir})
				start, dir = i, DirNone
			} else {
				dir = DirUp
			}
		case step < -delta: // significant move down
			if dir == DirUp {
				runs = append(runs, Run{Start: start, Len: i - start, Dir: dir})
				start, dir = i, DirNone
			} else {
				dir = DirDown
			}
		default:
			// |step| <= delta: tolerated in any direction, never breaks
			// and never sets the segment direction.
		}
	}
	runs = append(runs, Run{Start: start, Len: len(w) - start, Dir: dir})
	return runs
}

// IsWeaklyMonotonic reports whether w is monotonic in the weak sense with
// tolerance threshold delta in the given direction, per Eq. 1. A DirNone
// direction requires every consecutive step to stay within delta.
func IsWeaklyMonotonic(w []float64, delta float64, dir Direction) bool {
	for i := 1; i < len(w); i++ {
		step := w[i] - w[i-1]
		switch dir {
		case DirUp:
			if step < -delta {
				return false
			}
		case DirDown:
			if step > delta {
				return false
			}
		default:
			if step > delta || step < -delta {
				return false
			}
		}
	}
	return true
}

// SegmentLengthHistogram returns counts of run lengths (index = length,
// capped at maxLen with the final bucket accumulating longer runs). Useful
// to inspect how delta grows the average cluster size.
func SegmentLengthHistogram(runs []Run, maxLen int) []int {
	if maxLen < 1 {
		maxLen = 1
	}
	h := make([]int, maxLen+1)
	for _, r := range runs {
		l := r.Len
		if l > maxLen {
			l = maxLen
		}
		h[l]++
	}
	return h
}
