package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// BatchNorm is inference-mode batch normalization over the channel (last)
// dimension: y = gamma * (x - mean) / sqrt(var + eps) + beta.
// All four per-channel vectors count as model parameters, matching how
// Keras reports parameter totals for MobileNet/Inception/ResNet.
type BatchNorm struct {
	name  string
	C     int
	Eps   float32
	Gamma *tensor.Tensor // [C] scale
	Beta  *tensor.Tensor // [C] shift
	Mean  *tensor.Tensor // [C] moving mean
	Var   *tensor.Tensor // [C] moving variance
}

// NewBatchNorm creates an inference batch-normalization layer with
// synthetic "trained" statistics: gamma ~ N(1, 0.1), beta ~ N(0, 0.1),
// mean ~ N(0, 0.2), var ~ |N(1, 0.2)|.
func NewBatchNorm(name string, c int, rng *rand.Rand) (*BatchNorm, error) {
	if c <= 0 {
		return nil, fmt.Errorf("nn: batchnorm %q: bad channel count %d", name, c)
	}
	b := &BatchNorm{
		name: name, C: c, Eps: 1e-3,
		Gamma: tensor.MustNew(c),
		Beta:  tensor.MustNew(c),
		Mean:  tensor.MustNew(c),
		Var:   tensor.MustNew(c),
	}
	b.Gamma.RandNormal(rng, 1, 0.1)
	b.Beta.RandNormal(rng, 0, 0.1)
	b.Mean.RandNormal(rng, 0, 0.2)
	for i := range b.Var.Data {
		v := float32(math.Abs(rng.NormFloat64()*0.2 + 1))
		if v < 0.05 {
			v = 0.05
		}
		b.Var.Data[i] = v
	}
	return b, nil
}

// Name implements Layer.
func (b *BatchNorm) Name() string { return b.name }

// Kind implements Layer.
func (b *BatchNorm) Kind() string { return "BN" }

// OutShape implements Layer.
func (b *BatchNorm) OutShape(in [][]int) ([]int, error) {
	s, err := wantOneShape(in)
	if err != nil {
		return nil, err
	}
	if len(s) == 0 || s[len(s)-1] != b.C {
		return nil, fmt.Errorf("%w: batchnorm %q wants trailing dim %d, got %v", ErrShape, b.name, b.C, s)
	}
	return s, nil
}

// checkInput validates the trailing channel dimension without allocating
// shape slices.
func (b *BatchNorm) checkInput(x *tensor.Tensor) error {
	if x.Rank() == 0 || x.Dim(x.Rank()-1) != b.C {
		return fmt.Errorf("%w: batchnorm %q wants trailing dim %d, got %v", ErrShape, b.name, b.C, x.Shape())
	}
	return nil
}

// Forward implements Layer.
func (b *BatchNorm) Forward(xs []*tensor.Tensor) (*tensor.Tensor, error) {
	x, err := wantOne(xs)
	if err != nil {
		return nil, err
	}
	if err := b.checkInput(x); err != nil {
		return nil, err
	}
	out := tensor.MustNew(x.Shape()...)
	b.forwardInto(out.Data, x, make([]float32, b.C), make([]float32, b.C))
	return out, nil
}

// ForwardScratch implements ScratchLayer.
func (b *BatchNorm) ForwardScratch(xs []*tensor.Tensor, s *Scratch) (*tensor.Tensor, error) {
	x, err := wantOne(xs)
	if err != nil {
		return nil, err
	}
	if err := b.checkInput(x); err != nil {
		return nil, err
	}
	out := s.TensorLike(b.name, "/out", x)
	b.forwardInto(out.Data, x, s.Floats(b.name, "/scale", b.C), s.Floats(b.name, "/shift", b.C))
	return out, nil
}

// forwardInto normalizes x into dst; scale and shift are overwritten
// per-channel work buffers.
func (b *BatchNorm) forwardInto(dst []float32, x *tensor.Tensor, scale, shift []float32) {
	for ch := 0; ch < b.C; ch++ {
		inv := float32(1 / math.Sqrt(float64(b.Var.Data[ch]+b.Eps)))
		scale[ch] = b.Gamma.Data[ch] * inv
		shift[ch] = b.Beta.Data[ch] - b.Mean.Data[ch]*scale[ch]
	}
	n := x.Size() / b.C
	for i := 0; i < n; i++ {
		src := x.Data[i*b.C : (i+1)*b.C]
		drow := dst[i*b.C : (i+1)*b.C]
		for ch := 0; ch < b.C; ch++ {
			drow[ch] = src[ch]*scale[ch] + shift[ch]
		}
	}
}

// Params implements Layer.
func (b *BatchNorm) Params() []Param {
	return []Param{
		{Name: "gamma", T: b.Gamma},
		{Name: "beta", T: b.Beta},
		{Name: "moving_mean", T: b.Mean},
		{Name: "moving_variance", T: b.Var},
	}
}

// Cost implements Layer: one MAC per element (scale and shift).
func (b *BatchNorm) Cost(in [][]int) (uint64, error) {
	s, err := b.OutShape(in)
	if err != nil {
		return 0, err
	}
	return uint64(shapeVolume(s)), nil
}
