package core

import (
	"math"
	"testing"
)

func TestUnitLifecycle(t *testing.T) {
	var u DecompressionUnit
	if u.State() != StateIdle {
		t.Fatalf("fresh unit state = %v", u.State())
	}
	if _, valid := u.Tick(); valid {
		t.Error("ticking idle unit should be invalid")
	}
	if err := u.Load(Segment{M: 0.5, Q: 1, Len: 3}); err != nil {
		t.Fatal(err)
	}
	if u.State() != StateInit {
		t.Errorf("state after load = %v, want init", u.State())
	}
	// Cycle 1: Init emits q.
	w, valid := u.Tick()
	if !valid || w != 1 {
		t.Errorf("init tick = (%v, %v), want (1, true)", w, valid)
	}
	if u.State() != StateRun {
		t.Errorf("state after init = %v, want run", u.State())
	}
	// Cycle 2, 3: Run accumulates m.
	w, _ = u.Tick()
	if w != 1.5 {
		t.Errorf("run tick 1 = %v, want 1.5", w)
	}
	w, _ = u.Tick()
	if w != 2 {
		t.Errorf("run tick 2 = %v, want 2", w)
	}
	if u.State() != StateIdle {
		t.Errorf("state after segment = %v, want idle", u.State())
	}
	if u.Cycles() != 3 || u.Produced() != 3 {
		t.Errorf("cycles = %d, produced = %d, want 3, 3", u.Cycles(), u.Produced())
	}
}

func TestUnitLoadBusy(t *testing.T) {
	var u DecompressionUnit
	if err := u.Load(Segment{Q: 1, Len: 2}); err != nil {
		t.Fatal(err)
	}
	if err := u.Load(Segment{Q: 2, Len: 1}); err != ErrBusy {
		t.Errorf("Load while busy = %v, want ErrBusy", err)
	}
	u.Tick()
	// Still mid-segment (Run state).
	if err := u.Load(Segment{Q: 2, Len: 1}); err != ErrBusy {
		t.Errorf("Load mid-run = %v, want ErrBusy", err)
	}
	u.Tick()
	// Now idle again.
	if err := u.Load(Segment{Q: 2, Len: 1}); err != nil {
		t.Errorf("Load after drain = %v, want nil", err)
	}
}

func TestUnitLoadInvalidLength(t *testing.T) {
	var u DecompressionUnit
	if err := u.Load(Segment{Len: 0}); err == nil {
		t.Error("Load with zero length should error")
	}
	if err := u.Load(Segment{Len: -4}); err == nil {
		t.Error("Load with negative length should error")
	}
}

func TestUnitSingleElementSegment(t *testing.T) {
	var u DecompressionUnit
	if err := u.Load(Segment{M: 9, Q: -2.5, Len: 1}); err != nil {
		t.Fatal(err)
	}
	w, valid := u.Tick()
	if !valid || w != -2.5 {
		t.Errorf("single tick = (%v, %v)", w, valid)
	}
	if u.State() != StateIdle {
		t.Errorf("state = %v, want idle after single-element segment", u.State())
	}
}

func TestUnitReset(t *testing.T) {
	var u DecompressionUnit
	u.Load(Segment{Q: 1, Len: 5})
	u.Tick()
	u.Reset()
	if u.State() != StateIdle || u.Cycles() != 0 || u.Produced() != 0 {
		t.Error("Reset did not clear the unit")
	}
}

func TestUnitRunNoMultiplication(t *testing.T) {
	// The accumulator recurrence must match m*x + q exactly for values
	// representable without rounding.
	var u DecompressionUnit
	c := &Compressed{N: 8, Segments: []Segment{{M: 0.25, Q: 2, Len: 8}}}
	out, cycles, err := u.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 8 {
		t.Errorf("cycles = %d, want 8", cycles)
	}
	for j, w := range out {
		want := 0.25*float32(j) + 2
		if w != want {
			t.Errorf("w[%d] = %v, want %v", j, w, want)
		}
	}
}

func TestUnitRunRejectsBadSegment(t *testing.T) {
	var u DecompressionUnit
	c := &Compressed{N: 1, Segments: []Segment{{Len: 0}}}
	if _, _, err := u.Run(c); err == nil {
		t.Error("Run with zero-length segment should error")
	}
}

func TestFSMStateString(t *testing.T) {
	if StateIdle.String() != "idle" || StateInit.String() != "init" || StateRun.String() != "run" {
		t.Error("FSMState.String mismatch")
	}
}

func TestUnitAccumulationFloat32Semantics(t *testing.T) {
	// Long segments accumulate float32 rounding; verify the unit matches a
	// manual float32 accumulation loop, not a float64 one.
	var u DecompressionUnit
	seg := Segment{M: 0.1, Q: 0, Len: 1000}
	c := &Compressed{N: seg.Len, Segments: []Segment{seg}}
	out, _, err := u.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	var acc float32
	for j := 0; j < seg.Len; j++ {
		if j > 0 {
			acc += seg.M
		}
		if out[j] != acc {
			t.Fatalf("w[%d] = %v, want float32 accumulation %v", j, out[j], acc)
		}
	}
	// The float64 line value diverges from the float32 accumulation; the
	// hardware model must reflect the hardware, not the ideal line.
	ideal := 0.1 * 999.0
	if math.Abs(float64(out[999])-ideal) == 0 {
		t.Log("float32 accumulation happened to equal ideal; acceptable but unexpected")
	}
}
