package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// ReLU is the rectified linear activation, optionally clipped (ReLU6).
type ReLU struct {
	name string
	Max  float32 // 0 means unclipped; 6 gives ReLU6
}

// NewReLU creates an unclipped rectifier.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// NewReLU6 creates the clipped rectifier used by MobileNet.
func NewReLU6(name string) *ReLU { return &ReLU{name: name, Max: 6} }

// Name implements Layer.
func (r *ReLU) Name() string { return r.name }

// Kind implements Layer.
func (r *ReLU) Kind() string { return "ACT" }

// OutShape implements Layer.
func (r *ReLU) OutShape(in [][]int) ([]int, error) { return wantOneShape(in) }

// Forward implements Layer.
func (r *ReLU) Forward(xs []*tensor.Tensor) (*tensor.Tensor, error) {
	x, err := wantOne(xs)
	if err != nil {
		return nil, err
	}
	out := x.Clone()
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
		} else if r.Max > 0 && v > r.Max {
			out.Data[i] = r.Max
		}
	}
	return out, nil
}

// ForwardScratch implements ScratchLayer.
func (r *ReLU) ForwardScratch(xs []*tensor.Tensor, s *Scratch) (*tensor.Tensor, error) {
	x, err := wantOne(xs)
	if err != nil {
		return nil, err
	}
	out := s.TensorLike(r.name, "/out", x)
	for i, v := range x.Data {
		if v < 0 {
			v = 0
		} else if r.Max > 0 && v > r.Max {
			v = r.Max
		}
		out.Data[i] = v
	}
	return out, nil
}

// Params implements Layer.
func (r *ReLU) Params() []Param { return nil }

// Cost implements Layer.
func (r *ReLU) Cost(in [][]int) (uint64, error) { return 0, nil }

// Backward implements Backprop: passes gradient where the input was in the
// linear region.
func (r *ReLU) Backward(x, dy *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Size() != dy.Size() {
		return nil, fmt.Errorf("%w: relu %q backward size mismatch", ErrShape, r.name)
	}
	dx := dy.Clone()
	for i, v := range x.Data {
		if v < 0 || (r.Max > 0 && v > r.Max) {
			dx.Data[i] = 0
		}
	}
	return dx, nil
}

// Grads implements Backprop.
func (r *ReLU) Grads() []Param { return nil }

// ZeroGrads implements Backprop.
func (r *ReLU) ZeroGrads() {}

// Softmax turns a score vector into a probability distribution.
type Softmax struct {
	name string
}

// NewSoftmax creates a softmax output layer.
func NewSoftmax(name string) *Softmax { return &Softmax{name: name} }

// Name implements Layer.
func (s *Softmax) Name() string { return s.name }

// Kind implements Layer.
func (s *Softmax) Kind() string { return "ACT" }

// OutShape implements Layer.
func (s *Softmax) OutShape(in [][]int) ([]int, error) { return wantOneShape(in) }

// Forward implements Layer. Numerically stabilized by max subtraction.
func (s *Softmax) Forward(xs []*tensor.Tensor) (*tensor.Tensor, error) {
	x, err := wantOne(xs)
	if err != nil {
		return nil, err
	}
	out := tensor.MustNew(x.Shape()...)
	softmaxInto(out.Data, x.Data)
	return out, nil
}

// ForwardScratch implements ScratchLayer.
func (s *Softmax) ForwardScratch(xs []*tensor.Tensor, sc *Scratch) (*tensor.Tensor, error) {
	x, err := wantOne(xs)
	if err != nil {
		return nil, err
	}
	out := sc.TensorLike(s.name, "/out", x)
	softmaxInto(out.Data, x.Data)
	return out, nil
}

func softmaxInto(dst, src []float32) {
	maxv := src[0]
	for _, v := range src {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range src {
		e := math.Exp(float64(v - maxv))
		dst[i] = float32(e)
		sum += e
	}
	if sum == 0 {
		sum = 1
	}
	for i := range dst {
		dst[i] = float32(float64(dst[i]) / sum)
	}
}

// Params implements Layer.
func (s *Softmax) Params() []Param { return nil }

// Cost implements Layer.
func (s *Softmax) Cost(in [][]int) (uint64, error) { return 0, nil }

// Flatten reshapes any input into a rank-1 vector.
type Flatten struct {
	name string
}

// NewFlatten creates a flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name implements Layer.
func (f *Flatten) Name() string { return f.name }

// Kind implements Layer.
func (f *Flatten) Kind() string { return "RESHAPE" }

// OutShape implements Layer.
func (f *Flatten) OutShape(in [][]int) ([]int, error) {
	s, err := wantOneShape(in)
	if err != nil {
		return nil, err
	}
	return []int{shapeVolume(s)}, nil
}

// Forward implements Layer.
func (f *Flatten) Forward(xs []*tensor.Tensor) (*tensor.Tensor, error) {
	x, err := wantOne(xs)
	if err != nil {
		return nil, err
	}
	return x.Reshape(x.Size())
}

// ForwardScratch implements ScratchLayer: a cached flat view of the
// input data (no copy, like Forward).
func (f *Flatten) ForwardScratch(xs []*tensor.Tensor, s *Scratch) (*tensor.Tensor, error) {
	x, err := wantOne(xs)
	if err != nil {
		return nil, err
	}
	return s.View(f.name, "/out", x.Data, x.Size())
}

// Params implements Layer.
func (f *Flatten) Params() []Param { return nil }

// Cost implements Layer.
func (f *Flatten) Cost(in [][]int) (uint64, error) { return 0, nil }

// Backward implements Backprop: reshape the gradient back.
func (f *Flatten) Backward(x, dy *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Size() != dy.Size() {
		return nil, fmt.Errorf("%w: flatten %q backward size mismatch", ErrShape, f.name)
	}
	return dy.Reshape(x.Shape()...)
}

// Grads implements Backprop.
func (f *Flatten) Grads() []Param { return nil }

// ZeroGrads implements Backprop.
func (f *Flatten) ZeroGrads() {}
