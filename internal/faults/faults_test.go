package faults

import (
	"bytes"
	"context"
	"math"
	"math/bits"
	"testing"

	"repro/internal/parallel"
)

func TestZeroValueDisabled(t *testing.T) {
	var m Model
	if m.Enabled() {
		t.Fatal("zero model reports enabled")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.LinkCorrupt(1, 2, 0, 3) {
		t.Error("zero model corrupts flits")
	}
	if _, hit := m.FlipWord32(0xdeadbeef, 1, 2); hit {
		t.Error("zero model flips words")
	}
	if m.DeadSet() != nil {
		t.Error("zero model has dead links")
	}
}

func TestValidateRejectsBadRates(t *testing.T) {
	for _, m := range []Model{
		{DRAMWordFlipRate: -0.1},
		{DRAMWordFlipRate: 1.5},
		{LinkFlitRate: math.NaN()},
		{LinkFlitRate: math.Inf(1)},
		{DeadLinks: []Link{{From: 3, To: 3}}},
		{DeadLinks: []Link{{From: -1, To: 2}}},
	} {
		if err := m.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", m)
		}
	}
	ok := Model{Seed: 7, DRAMWordFlipRate: 1e-3, LinkFlitRate: 1e-4, DeadLinks: []Link{{From: 0, To: 1}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("Validate rejected a sound model: %v", err)
	}
	if !ok.Enabled() {
		t.Error("sound model not enabled")
	}
}

// TestDecisionsDeterministic pins the core guarantee: decisions depend
// only on (seed, event identity), never on call order.
func TestDecisionsDeterministic(t *testing.T) {
	m := Model{Seed: 42, LinkFlitRate: 0.3, DRAMWordFlipRate: 0.3}
	// Same event queried in different interleavings.
	a1 := m.LinkCorrupt(10, 3, 1, 5)
	w1, h1 := m.FlipWord32(0x12345678, 9, 100)
	w2, h2 := m.FlipWord32(0x12345678, 9, 100)
	a2 := m.LinkCorrupt(10, 3, 1, 5)
	if a1 != a2 || w1 != w2 || h1 != h2 {
		t.Fatal("decisions depend on call order")
	}
	// A different seed must change at least some decisions over a window.
	m2 := m
	m2.Seed = 43
	same := 0
	for i := 0; i < 1000; i++ {
		if m.LinkCorrupt(uint64(i), 0, 0, 0) == m2.LinkCorrupt(uint64(i), 0, 0, 0) {
			same++
		}
	}
	if same == 1000 {
		t.Error("seed does not influence decisions")
	}
}

// TestEventKeysIndependent: distinct flits, attempts and links must get
// independent draws — a retry of a corrupted flit must not be doomed to
// corruption again.
func TestEventKeysIndependent(t *testing.T) {
	m := Model{Seed: 1, LinkFlitRate: 0.5}
	varies := func(f func(k int) bool) bool {
		first := f(0)
		for k := 1; k < 64; k++ {
			if f(k) != first {
				return true
			}
		}
		return false
	}
	if !varies(func(k int) bool { return m.LinkCorrupt(uint64(k), 0, 0, 0) }) {
		t.Error("packet id ignored")
	}
	if !varies(func(k int) bool { return m.LinkCorrupt(7, k, 0, 0) }) {
		t.Error("flit seq ignored")
	}
	if !varies(func(k int) bool { return m.LinkCorrupt(7, 0, k, 0) }) {
		t.Error("attempt ignored")
	}
	if !varies(func(k int) bool { return m.LinkCorrupt(7, 0, 0, k) }) {
		t.Error("link ignored")
	}
}

func TestRateEndpointsAndFrequency(t *testing.T) {
	const n = 20000
	for _, rate := range []float64{0, 0.05, 0.5, 1} {
		m := Model{Seed: 9, LinkFlitRate: rate}
		hits := 0
		for i := 0; i < n; i++ {
			if m.LinkCorrupt(uint64(i), 0, 0, 0) {
				hits++
			}
		}
		got := float64(hits) / n
		if rate == 0 && hits != 0 {
			t.Errorf("rate 0 produced %d hits", hits)
		}
		if rate == 1 && hits != n {
			t.Errorf("rate 1 produced %d/%d hits", hits, n)
		}
		if math.Abs(got-rate) > 0.02 {
			t.Errorf("rate %v measured %v", rate, got)
		}
	}
}

func TestFlipWord32SingleBit(t *testing.T) {
	m := Model{Seed: 3, DRAMWordFlipRate: 1}
	seen := make(map[int]bool)
	for i := 0; i < 512; i++ {
		flipped, hit := m.FlipWord32(0, 77, uint64(i))
		if !hit {
			t.Fatal("rate 1 missed")
		}
		if bits.OnesCount32(flipped) != 1 {
			t.Fatalf("flip changed %d bits", bits.OnesCount32(flipped))
		}
		seen[bits.TrailingZeros32(flipped)] = true
	}
	if len(seen) < 24 {
		t.Errorf("bit positions poorly distributed: only %d of 32 seen", len(seen))
	}
}

func TestFlipFloat32Stream(t *testing.T) {
	m := Model{Seed: 5, DRAMWordFlipRate: 0.5}
	w := make([]float64, 4096)
	for i := range w {
		w[i] = float64(i) / 100
	}
	orig := append([]float64(nil), w...)
	flips := m.FlipFloat32Stream(w, 11)
	if flips == 0 {
		t.Fatal("no flips at rate 0.5")
	}
	changed := 0
	for i := range w {
		if w[i] != orig[i] {
			changed++
		}
	}
	// A flip may leave the float32 value unchanged only if the word was
	// not the canonical encoding; our values are, so flips == changed.
	if changed != flips {
		t.Errorf("%d values changed but %d flips reported", changed, flips)
	}
	// Determinism: re-running from the original stream flips identically.
	w2 := append([]float64(nil), orig...)
	if m.FlipFloat32Stream(w2, 11) != flips {
		t.Error("flip count not reproducible")
	}
	for i := range w {
		if w[i] != w2[i] {
			t.Fatal("flipped streams differ between runs")
		}
	}
	var none Model
	w3 := append([]float64(nil), orig...)
	if none.FlipFloat32Stream(w3, 11) != 0 {
		t.Error("disabled model flipped words")
	}
}

// msgSchedule renders every message-fault decision for n transmissions
// into one byte string — the canonical form the determinism tests diff.
func msgSchedule(m Model, n int) []byte {
	var b bytes.Buffer
	for i := 0; i < n; i++ {
		id := uint64(i)
		src, dst := i%7, (i+3)%7
		if m.MsgDrop(id, src, dst) {
			b.WriteByte('D')
		}
		if d := m.MsgDelay(id, src, dst); d > 0 {
			fmtUint(&b, d)
		}
		if m.MsgDuplicate(id, src, dst) {
			b.WriteByte('2')
		}
		if m.MsgReorder(id, src, dst) {
			b.WriteByte('R')
		}
		b.WriteByte(';')
	}
	return b.Bytes()
}

func fmtUint(b *bytes.Buffer, v uint64) {
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	b.Write(tmp[i:])
}

// TestMsgFaultsZeroRateIsFaultFree pins the rate-0 contract for every
// message fault kind: the zero model takes the no-op fast path.
func TestMsgFaultsZeroRateIsFaultFree(t *testing.T) {
	var m Model
	for i := 0; i < 1000; i++ {
		if m.MsgDrop(uint64(i), 0, 1) || m.MsgDuplicate(uint64(i), 0, 1) || m.MsgReorder(uint64(i), 0, 1) {
			t.Fatal("zero model injected a message fault")
		}
		if m.MsgDelay(uint64(i), 0, 1) != 0 {
			t.Fatal("zero model delayed a message")
		}
	}
	if len(msgSchedule(m, 1000)) != 1000 { // just the separators
		t.Fatal("zero model schedule not empty")
	}
}

// TestMsgScheduleByteIdenticalAcrossWorkers pins the determinism
// contract: the schedule is a pure function of (seed, rates, message
// identity), so computing decisions from any number of goroutines in
// any interleaving yields the byte-identical schedule.
func TestMsgScheduleByteIdenticalAcrossWorkers(t *testing.T) {
	m := Model{Seed: 2020, MsgDropRate: 0.1, MsgDelayRate: 0.2, MsgDupRate: 0.05, MsgReorderRate: 0.08, MsgDelayMax: 100}
	const n = 4096
	want := msgSchedule(m, n)
	for _, workers := range []int{1, 2, 4, 16} {
		// Each chunk recomputes its decisions concurrently; the assembled
		// schedule must match the serial one byte for byte.
		const chunk = 256
		parts, err := parallel.Map(context.Background(), workers, n/chunk,
			func(_ context.Context, ci int) ([]byte, error) {
				var b bytes.Buffer
				for i := ci * chunk; i < (ci+1)*chunk; i++ {
					id := uint64(i)
					src, dst := i%7, (i+3)%7
					if m.MsgDrop(id, src, dst) {
						b.WriteByte('D')
					}
					if d := m.MsgDelay(id, src, dst); d > 0 {
						fmtUint(&b, d)
					}
					if m.MsgDuplicate(id, src, dst) {
						b.WriteByte('2')
					}
					if m.MsgReorder(id, src, dst) {
						b.WriteByte('R')
					}
					b.WriteByte(';')
				}
				return b.Bytes(), nil
			})
		if err != nil {
			t.Fatal(err)
		}
		var got []byte
		for _, p := range parts {
			got = append(got, p...)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("schedule differs at %d workers", workers)
		}
	}
}

// TestMsgFaultKindsIndependent: the four kinds draw from disjoint
// domains, so e.g. every dropped message is not also doomed to be a
// duplicate, and the endpoints key the decision.
func TestMsgFaultKindsIndependent(t *testing.T) {
	m := Model{Seed: 1, MsgDropRate: 0.5, MsgDupRate: 0.5, MsgDelayRate: 0.5, MsgReorderRate: 0.5}
	agreeDropDup, agreeDropOrd := 0, 0
	const n = 2000
	for i := 0; i < n; i++ {
		if m.MsgDrop(uint64(i), 0, 1) == m.MsgDuplicate(uint64(i), 0, 1) {
			agreeDropDup++
		}
		if m.MsgDrop(uint64(i), 0, 1) == m.MsgReorder(uint64(i), 0, 1) {
			agreeDropOrd++
		}
	}
	for name, agree := range map[string]int{"drop/dup": agreeDropDup, "drop/reorder": agreeDropOrd} {
		if agree == n || agree == 0 {
			t.Errorf("%s decisions perfectly correlated (%d/%d)", name, agree, n)
		}
	}
	// Endpoints must matter: the same msgID on different links gets
	// independent draws.
	varies := false
	for i := 0; i < 64 && !varies; i++ {
		varies = m.MsgDrop(7, 0, i+1) != m.MsgDrop(7, 0, 1)
	}
	if !varies {
		t.Error("endpoints ignored in message decisions")
	}
}

// TestMsgDelayBounds: a fired delay is within [1, MsgDelayMax] and the
// zero MsgDelayMax default applies.
func TestMsgDelayBounds(t *testing.T) {
	m := Model{Seed: 6, MsgDelayRate: 1, MsgDelayMax: 25}
	seen := map[uint64]bool{}
	for i := 0; i < 4096; i++ {
		d := m.MsgDelay(uint64(i), 2, 3)
		if d < 1 || d > 25 {
			t.Fatalf("delay %d outside [1,25]", d)
		}
		seen[d] = true
	}
	if len(seen) < 20 {
		t.Errorf("delay values poorly distributed: %d of 25", len(seen))
	}
	m.MsgDelayMax = 0
	for i := 0; i < 4096; i++ {
		if d := m.MsgDelay(uint64(i), 2, 3); d < 1 || d > DefaultMsgDelayMax {
			t.Fatalf("default-bound delay %d outside [1,%d]", d, DefaultMsgDelayMax)
		}
	}
}

// TestMsgRatesMeasured: the empirical rates track the configured ones.
func TestMsgRatesMeasured(t *testing.T) {
	const n = 20000
	for _, rate := range []float64{0, 0.05, 0.5, 1} {
		m := Model{Seed: 9, MsgDropRate: rate, MsgDupRate: rate}
		drops, dups := 0, 0
		for i := 0; i < n; i++ {
			if m.MsgDrop(uint64(i), 0, 1) {
				drops++
			}
			if m.MsgDuplicate(uint64(i), 0, 1) {
				dups++
			}
		}
		for name, hits := range map[string]int{"drop": drops, "dup": dups} {
			got := float64(hits) / n
			if rate == 0 && hits != 0 {
				t.Errorf("%s rate 0 produced %d hits", name, hits)
			}
			if rate == 1 && hits != n {
				t.Errorf("%s rate 1 produced %d/%d hits", name, hits, n)
			}
			if math.Abs(got-rate) > 0.02 {
				t.Errorf("%s rate %v measured %v", name, rate, got)
			}
		}
	}
}

func TestValidateRejectsBadMsgRates(t *testing.T) {
	for _, m := range []Model{
		{MsgDropRate: -0.1},
		{MsgDelayRate: 1.5},
		{MsgDupRate: math.NaN()},
		{MsgReorderRate: math.Inf(1)},
	} {
		if err := m.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", m)
		}
	}
	ok := Model{Seed: 7, MsgDropRate: 0.1, MsgDelayRate: 0.1, MsgDupRate: 0.1, MsgReorderRate: 0.1}
	if err := ok.Validate(); err != nil {
		t.Errorf("Validate rejected a sound model: %v", err)
	}
	if !ok.Enabled() {
		t.Error("message-fault model not enabled")
	}
}

func TestDeadSetAndStreamID(t *testing.T) {
	m := Model{DeadLinks: []Link{{0, 1}, {5, 4}}}
	s := m.DeadSet()
	if !s[Link{0, 1}] || !s[Link{5, 4}] || s[Link{1, 0}] {
		t.Error("dead set wrong")
	}
	if StreamID("LeNet-5/raw") == StreamID("LeNet-5/compressed") {
		t.Error("stream ids collide")
	}
	if StreamID("x") != StreamID("x") {
		t.Error("stream id unstable")
	}
}
