// Package planner implements the paper's stated future work (Sec. V):
// selecting the set of layers to compress and, for each, the appropriate
// tolerance threshold, to maximize the overall compression ratio under an
// accuracy constraint.
//
// The planner runs a greedy marginal-benefit search: starting from the
// uncompressed model, it repeatedly evaluates single-step escalations
// (compress one more layer at the lowest delta, or raise an already
// compressed layer to the next delta level), applies the escalation with
// the best bits-saved-per-accuracy-lost ratio that keeps the model within
// the accuracy budget, and stops when no escalation fits. The search
// needs only forward evaluations — consistent with the compression
// technique's retraining-free philosophy.
package planner

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/models"
)

// AccuracyFunc measures the accuracy of the model in its *current*
// parameter state (e.g. top-1 on a held-out set, or top-5 fidelity).
type AccuracyFunc func() (float64, error)

// Options configures the search.
type Options struct {
	// MaxAccuracyDrop is the budget relative to the uncompressed model's
	// accuracy (e.g. 0.05 allows a five-point drop).
	MaxAccuracyDrop float64
	// DeltaGrid is the escalation ladder of tolerance thresholds, in
	// percent of each layer's amplitude, ascending.
	DeltaGrid []float64
	// Layers restricts the candidate set (nil = every CONV/DWCONV/FC
	// layer with parameters).
	Layers []string
	// MaxEvals bounds the number of accuracy evaluations (0 = 10000).
	MaxEvals int
	// Storage is the segment storage accounting.
	Storage core.StorageModel
}

// DefaultOptions returns a 5%-drop budget over the paper's delta ladder.
func DefaultOptions() Options {
	return Options{
		MaxAccuracyDrop: 0.05,
		DeltaGrid:       []float64{2, 5, 10, 15, 20},
		Storage:         core.DefaultStorage,
	}
}

// Assignment is one compressed layer in the final plan.
type Assignment struct {
	Layer    string
	DeltaPct float64
	CR       float64
	Params   int
}

// Plan is the planner's result.
type Plan struct {
	Assignments  []Assignment
	BaseAccuracy float64
	Accuracy     float64 // accuracy with the plan applied
	WeightedCR   float64 // whole-model compression ratio
	Evals        int     // accuracy evaluations spent
}

// layerState tracks the search state for one candidate layer.
type layerState struct {
	name     string
	original []float64
	level    int // index into DeltaGrid; -1 = uncompressed
	bits     int // current compressed bits (original bits if level < 0)
}

// Greedy searches for the best multi-layer compression plan. The model's
// parameters are mutated during the search and left in the final plan's
// state on success (restore the returned originals to undo; see
// Plan/Assignments). accuracy is called after every trial mutation.
func Greedy(m *models.Model, accuracy AccuracyFunc, opts Options) (*Plan, error) {
	if accuracy == nil {
		return nil, errors.New("planner: nil accuracy function")
	}
	if opts.MaxAccuracyDrop < 0 {
		return nil, fmt.Errorf("planner: negative accuracy budget %v", opts.MaxAccuracyDrop)
	}
	if len(opts.DeltaGrid) == 0 {
		return nil, errors.New("planner: empty delta grid")
	}
	for i := 1; i < len(opts.DeltaGrid); i++ {
		if opts.DeltaGrid[i] <= opts.DeltaGrid[i-1] {
			return nil, errors.New("planner: delta grid must ascend")
		}
	}
	maxEvals := opts.MaxEvals
	if maxEvals == 0 {
		maxEvals = 10000
	}

	layers, err := candidateLayers(m, opts.Layers)
	if err != nil {
		return nil, err
	}
	states := make([]*layerState, 0, len(layers))
	for _, name := range layers {
		w, err := m.LayerWeights(name)
		if err != nil {
			return nil, err
		}
		states = append(states, &layerState{
			name:     name,
			original: w,
			level:    -1,
			bits:     32 * len(w),
		})
	}

	base, err := accuracy()
	if err != nil {
		return nil, err
	}
	evals := 1
	floor := base - opts.MaxAccuracyDrop
	current := base

	for {
		type escalation struct {
			st    *layerState
			acc   float64
			bits  int
			score float64
		}
		var best *escalation
		for _, st := range states {
			if st.level+1 >= len(opts.DeltaGrid) {
				continue
			}
			if evals >= maxEvals {
				break
			}
			pct := opts.DeltaGrid[st.level+1]
			c, err := core.CompressPct(st.original, pct)
			if err != nil {
				return nil, fmt.Errorf("planner: %s at %v%%: %w", st.name, pct, err)
			}
			newBits := c.CompressedBits(opts.Storage)
			saved := st.bits - newBits
			if saved <= 0 {
				continue // escalation does not help storage
			}
			approx, err := c.Decompress()
			if err != nil {
				return nil, err
			}
			if err := m.SetLayerWeights(st.name, approx); err != nil {
				return nil, err
			}
			acc, err := accuracy()
			evals++
			// Revert before judging.
			if rerr := restore(m, st, opts); rerr != nil {
				return nil, rerr
			}
			if err != nil {
				return nil, err
			}
			if acc < floor {
				continue
			}
			drop := current - acc
			if drop < 1e-6 {
				drop = 1e-6
			}
			score := float64(saved) / drop
			if best == nil || score > best.score {
				best = &escalation{st: st, acc: acc, bits: newBits, score: score}
			}
		}
		if best == nil || evals >= maxEvals {
			break
		}
		// Commit the winning escalation.
		best.st.level++
		best.st.bits = best.bits
		pct := opts.DeltaGrid[best.st.level]
		c, err := core.CompressPct(best.st.original, pct)
		if err != nil {
			return nil, err
		}
		approx, err := c.Decompress()
		if err != nil {
			return nil, err
		}
		if err := m.SetLayerWeights(best.st.name, approx); err != nil {
			return nil, err
		}
		current = best.acc
	}

	// Assemble the plan.
	plan := &Plan{BaseAccuracy: base, Accuracy: current, Evals: evals}
	var totalBits, planBits float64
	totalBits = float64(m.TotalParams()) * 32
	planBits = totalBits
	for _, st := range states {
		origBits := float64(32 * len(st.original))
		planBits -= origBits - float64(st.bits)
		if st.level < 0 {
			continue
		}
		plan.Assignments = append(plan.Assignments, Assignment{
			Layer:    st.name,
			DeltaPct: opts.DeltaGrid[st.level],
			CR:       origBits / float64(st.bits),
			Params:   len(st.original),
		})
	}
	if planBits > 0 {
		plan.WeightedCR = totalBits / planBits
	}
	return plan, nil
}

// restore reinstalls a layer's committed state: its original weights if
// uncompressed, or the decompressed stream at its committed level.
func restore(m *models.Model, st *layerState, opts Options) error {
	if st.level < 0 {
		return m.SetLayerWeights(st.name, st.original)
	}
	c, err := core.CompressPct(st.original, opts.DeltaGrid[st.level])
	if err != nil {
		return err
	}
	approx, err := c.Decompress()
	if err != nil {
		return err
	}
	return m.SetLayerWeights(st.name, approx)
}

// candidateLayers resolves the layer filter to parameterized layers.
func candidateLayers(m *models.Model, filter []string) ([]string, error) {
	if len(filter) > 0 {
		for _, name := range filter {
			if m.Graph.Layer(name) == nil {
				return nil, fmt.Errorf("planner: unknown layer %q", name)
			}
		}
		return filter, nil
	}
	var out []string
	for _, l := range m.Graph.Layers() {
		switch l.Kind() {
		case "CONV", "DWCONV", "FC":
			if len(l.Params()) > 0 {
				out = append(out, l.Name())
			}
		}
	}
	if len(out) == 0 {
		return nil, errors.New("planner: no compressible layers")
	}
	return out, nil
}
