package experiments

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
)

// faultTestOptions keeps the sweep at smoke scale: minimal training
// budget, LeNet-5 only, three rates.
func faultTestOptions() Options {
	o := FastOptions()
	o.TrainSamples = 200
	o.TrainEpochs = 1
	o.FaultRates = []float64{0, 1e-3, 1e-2}
	return o
}

// TestFaultSweepZeroRateIsFaultFree: the rate-0 rows must report zero
// flips and exactly the fault-free accuracy of their stream.
func TestFaultSweepZeroRateIsFaultFree(t *testing.T) {
	rows, err := FaultSweep(faultTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 3 rates x 2 streams for one model
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Rate != 0 {
			continue
		}
		if r.Flips != 0 || r.Detected != 0 {
			t.Errorf("%s/%s rate 0: %d flips, %d detected", r.Model, r.Stream, r.Flips, r.Detected)
		}
		if r.Accuracy != r.Baseline {
			t.Errorf("%s/%s rate 0: accuracy %v != baseline %v", r.Model, r.Stream, r.Accuracy, r.Baseline)
		}
	}
}

// TestFaultSweepInjectsAtHighRate: at one flip per hundred words both
// streams must actually be hit, and the raw stream (hundreds of
// thousands of words) far more often than the compressed one.
func TestFaultSweepInjectsAtHighRate(t *testing.T) {
	rows, err := FaultSweep(faultTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]FaultRow{}
	for _, r := range rows {
		if r.Rate == 1e-2 {
			byKey[r.Stream] = r
		}
	}
	raw, comp := byKey["raw"], byKey["compressed"]
	if raw.Flips == 0 {
		t.Error("raw stream saw no flips at rate 1e-2")
	}
	if comp.Flips == 0 {
		t.Error("compressed stream saw no flips at rate 1e-2")
	}
	if comp.Words >= raw.Words {
		t.Errorf("compressed stream exposes %d words, raw %d: compression should shrink the stream", comp.Words, raw.Words)
	}
	if raw.Flips <= comp.Flips {
		t.Errorf("raw flips %d <= compressed flips %d despite the larger stream", raw.Flips, comp.Flips)
	}
}

// TestFaultSweepDeterministic: identical rows at any worker count.
func TestFaultSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("trains LeNet twice in -short mode")
	}
	assertDeterministic(t, FaultSweep, faultTestOptions())
}

// TestFaultSweepContextCanceled: a pre-canceled context aborts the sweep
// with the context error instead of running it.
func TestFaultSweepContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := faultTestOptions()
	o.Context = ctx
	start := time.Now()
	if _, err := FaultSweep(o); !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("canceled sweep still took %v", d)
	}
}

// TestCorruptCoefficientsZeroFillsNonFinite: a segment whose coefficients
// are non-finite (as an unlucky exponent flip would leave them) is
// counted as detected and zero-filled, so the stream still decompresses
// to a full-length, finite weight slice instead of poisoning the layer.
func TestCorruptCoefficientsZeroFillsNonFinite(t *testing.T) {
	c := &core.Compressed{N: 6, Segments: []core.Segment{
		{M: float32(math.NaN()), Q: 1, Len: 3},
		{M: 0.5, Q: 2, Len: 3},
	}}
	out, flips, detected := corruptCoefficients(c, faults.Model{}, "test")
	if flips != 0 {
		t.Errorf("rate-0 model flipped %d words", flips)
	}
	if detected != 1 {
		t.Fatalf("detected %d poisoned segments, want 1", detected)
	}
	if out.Segments[0].M != 0 || out.Segments[0].Q != 0 {
		t.Errorf("poisoned segment not zero-filled: %+v", out.Segments[0])
	}
	if out.Segments[1] != c.Segments[1] {
		t.Errorf("healthy segment altered: %+v", out.Segments[1])
	}
	w, err := out.Decompress()
	if err != nil {
		t.Fatalf("zero-filled stream rejected: %v", err)
	}
	if len(w) != c.N {
		t.Errorf("decompressed %d weights, want %d", len(w), c.N)
	}
	// The original poisoned stream must be refused by the FSM's guard.
	if _, err := c.Decompress(); !errors.Is(err, core.ErrNonFinite) {
		t.Errorf("poisoned stream error %v, want ErrNonFinite", err)
	}
}

// TestFaultSweepRejectsBadRate: validation catches out-of-range rates.
func TestFaultSweepRejectsBadRate(t *testing.T) {
	o := faultTestOptions()
	o.FaultRates = []float64{0.5, 1.5}
	if _, err := FaultSweep(o); err == nil {
		t.Fatal("rate 1.5 accepted")
	}
}
