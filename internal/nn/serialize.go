package nn

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Weight-file layout (little endian):
//
//	magic   [4]byte "NNWT"
//	version uint16
//	layers  uint32
//	per layer: nameLen uint16, name, params uint32
//	  per param: nameLen uint16, name, rank uint8, dims []uint32,
//	             data []float32
//
// Only parameterized layers are stored. Loading matches by layer and
// parameter name and requires identical shapes, so a file trained on one
// topology cannot be silently loaded into another.
var weightMagic = [4]byte{'N', 'N', 'W', 'T'}

const weightVersion uint16 = 1

// Weight-file errors.
var (
	ErrBadWeightMagic = errors.New("nn: not a weight file")
	ErrWeightMismatch = errors.New("nn: weight file does not match the graph")
)

// SaveWeights writes every parameter tensor of the graph to w.
func SaveWeights(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(weightMagic[:]); err != nil {
		return err
	}
	le := binary.LittleEndian
	var tmp [4]byte
	le.PutUint16(tmp[:2], weightVersion)
	bw.Write(tmp[:2])
	var withParams []Layer
	for _, l := range g.Layers() {
		if len(l.Params()) > 0 {
			withParams = append(withParams, l)
		}
	}
	le.PutUint32(tmp[:4], uint32(len(withParams)))
	bw.Write(tmp[:4])
	for _, l := range withParams {
		if err := writeString(bw, l.Name()); err != nil {
			return err
		}
		params := l.Params()
		le.PutUint32(tmp[:4], uint32(len(params)))
		bw.Write(tmp[:4])
		for _, p := range params {
			if err := writeString(bw, p.Name); err != nil {
				return err
			}
			shape := p.T.Shape()
			if len(shape) > 255 {
				return fmt.Errorf("nn: rank %d too large to serialize", len(shape))
			}
			bw.WriteByte(byte(len(shape)))
			for _, d := range shape {
				le.PutUint32(tmp[:4], uint32(d))
				bw.Write(tmp[:4])
			}
			for _, v := range p.T.Data {
				le.PutUint32(tmp[:4], math.Float32bits(v))
				if _, err := bw.Write(tmp[:4]); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// LoadWeights reads a weight file into the graph's parameter tensors.
// Layer names, parameter names, order and shapes must match exactly.
func LoadWeights(r io.Reader, g *Graph) error {
	br := bufio.NewReader(r)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("nn: reading magic: %w", err)
	}
	if hdr != weightMagic {
		return ErrBadWeightMagic
	}
	le := binary.LittleEndian
	var tmp [4]byte
	if _, err := io.ReadFull(br, tmp[:2]); err != nil {
		return err
	}
	if v := le.Uint16(tmp[:2]); v != weightVersion {
		return fmt.Errorf("nn: unsupported weight file version %d", v)
	}
	if _, err := io.ReadFull(br, tmp[:4]); err != nil {
		return err
	}
	nLayers := int(le.Uint32(tmp[:4]))
	var withParams []Layer
	for _, l := range g.Layers() {
		if len(l.Params()) > 0 {
			withParams = append(withParams, l)
		}
	}
	if nLayers != len(withParams) {
		return fmt.Errorf("%w: file has %d parameterized layers, graph has %d",
			ErrWeightMismatch, nLayers, len(withParams))
	}
	for _, l := range withParams {
		name, err := readString(br)
		if err != nil {
			return err
		}
		if name != l.Name() {
			return fmt.Errorf("%w: layer %q in file, %q in graph", ErrWeightMismatch, name, l.Name())
		}
		if _, err := io.ReadFull(br, tmp[:4]); err != nil {
			return err
		}
		nParams := int(le.Uint32(tmp[:4]))
		params := l.Params()
		if nParams != len(params) {
			return fmt.Errorf("%w: layer %q has %d params in file, %d in graph",
				ErrWeightMismatch, name, nParams, len(params))
		}
		for _, p := range params {
			pname, err := readString(br)
			if err != nil {
				return err
			}
			if pname != p.Name {
				return fmt.Errorf("%w: param %q in file, %q in graph", ErrWeightMismatch, pname, p.Name)
			}
			rank, err := br.ReadByte()
			if err != nil {
				return err
			}
			shape := p.T.Shape()
			if int(rank) != len(shape) {
				return fmt.Errorf("%w: param %s/%s rank %d vs %d", ErrWeightMismatch, name, pname, rank, len(shape))
			}
			for i := 0; i < int(rank); i++ {
				if _, err := io.ReadFull(br, tmp[:4]); err != nil {
					return err
				}
				if int(le.Uint32(tmp[:4])) != shape[i] {
					return fmt.Errorf("%w: param %s/%s dim %d mismatch", ErrWeightMismatch, name, pname, i)
				}
			}
			for i := range p.T.Data {
				if _, err := io.ReadFull(br, tmp[:4]); err != nil {
					return fmt.Errorf("nn: reading %s/%s data: %w", name, pname, err)
				}
				p.T.Data[i] = math.Float32frombits(le.Uint32(tmp[:4]))
			}
		}
	}
	return nil
}

func writeString(w *bufio.Writer, s string) error {
	if len(s) > 65535 {
		return fmt.Errorf("nn: string too long to serialize")
	}
	var tmp [2]byte
	binary.LittleEndian.PutUint16(tmp[:], uint16(len(s)))
	if _, err := w.Write(tmp[:]); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readString(r *bufio.Reader) (string, error) {
	var tmp [2]byte
	if _, err := io.ReadFull(r, tmp[:]); err != nil {
		return "", err
	}
	buf := make([]byte, binary.LittleEndian.Uint16(tmp[:]))
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
