package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// poolKind selects the reduction of a Pool2D layer.
type poolKind int8

const (
	poolMax poolKind = iota
	poolAvg
)

// Pool2D is a 2-D max or average pooling layer over [H, W, C] inputs.
type Pool2D struct {
	name   string
	kind   poolKind
	Size   int
	Stride int
	Pad    int
}

// NewMaxPool2D creates a max pooling layer with square window size and the
// given stride (stride = size is the usual non-overlapping pooling).
func NewMaxPool2D(name string, size, stride int) (*Pool2D, error) {
	return newPool(name, poolMax, size, stride, 0)
}

// NewMaxPool2DPadded creates a max pooling layer with symmetric zero
// padding (padding taps are ignored, not treated as zeros, so negative
// activations pool correctly).
func NewMaxPool2DPadded(name string, size, stride, pad int) (*Pool2D, error) {
	return newPool(name, poolMax, size, stride, pad)
}

// NewAvgPool2D creates an average pooling layer.
func NewAvgPool2D(name string, size, stride int) (*Pool2D, error) {
	return newPool(name, poolAvg, size, stride, 0)
}

// NewAvgPool2DPadded creates an average pooling layer with symmetric zero
// padding (Inception towers use padded 3x3/s1 average pooling).
func NewAvgPool2DPadded(name string, size, stride, pad int) (*Pool2D, error) {
	return newPool(name, poolAvg, size, stride, pad)
}

func newPool(name string, kind poolKind, size, stride, pad int) (*Pool2D, error) {
	if size <= 0 || stride <= 0 || pad < 0 {
		return nil, fmt.Errorf("nn: pool %q: bad geometry size=%d stride=%d pad=%d", name, size, stride, pad)
	}
	return &Pool2D{name: name, kind: kind, Size: size, Stride: stride, Pad: pad}, nil
}

// Name implements Layer.
func (p *Pool2D) Name() string { return p.name }

// Kind implements Layer.
func (p *Pool2D) Kind() string { return "POOL" }

// OutShape implements Layer.
func (p *Pool2D) OutShape(in [][]int) ([]int, error) {
	s, err := wantOneShape(in)
	if err != nil {
		return nil, err
	}
	if len(s) != 3 {
		return nil, fmt.Errorf("%w: pool %q wants [H W C], got %v", ErrShape, p.name, s)
	}
	oh := tensor.ConvOutDim(s[0], p.Size, p.Stride, p.Pad)
	ow := tensor.ConvOutDim(s[1], p.Size, p.Stride, p.Pad)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("%w: pool %q output collapses on %v", ErrShape, p.name, s)
	}
	return []int{oh, ow, s[2]}, nil
}

// checkInput validates a pooling input without allocating shape slices.
func (p *Pool2D) checkInput(x *tensor.Tensor) (oh, ow int, err error) {
	if x.Rank() != 3 {
		return 0, 0, fmt.Errorf("%w: pool %q wants [H W C], got %v", ErrShape, p.name, x.Shape())
	}
	oh = tensor.ConvOutDim(x.Dim(0), p.Size, p.Stride, p.Pad)
	ow = tensor.ConvOutDim(x.Dim(1), p.Size, p.Stride, p.Pad)
	if oh <= 0 || ow <= 0 {
		return 0, 0, fmt.Errorf("%w: pool %q output collapses on %v", ErrShape, p.name, x.Shape())
	}
	return oh, ow, nil
}

// Forward implements Layer.
func (p *Pool2D) Forward(xs []*tensor.Tensor) (*tensor.Tensor, error) {
	x, err := wantOne(xs)
	if err != nil {
		return nil, err
	}
	oh, ow, err := p.checkInput(x)
	if err != nil {
		return nil, err
	}
	out := tensor.MustNew(oh, ow, x.Dim(2))
	p.forwardInto(out.Data, x, oh, ow)
	return out, nil
}

// ForwardScratch implements ScratchLayer.
func (p *Pool2D) ForwardScratch(xs []*tensor.Tensor, s *Scratch) (*tensor.Tensor, error) {
	x, err := wantOne(xs)
	if err != nil {
		return nil, err
	}
	oh, ow, err := p.checkInput(x)
	if err != nil {
		return nil, err
	}
	out := s.Tensor(p.name, "/out", oh, ow, x.Dim(2))
	p.forwardInto(out.Data, x, oh, ow) // every element is assigned
	return out, nil
}

// forwardInto writes the pooled output into dst.
func (p *Pool2D) forwardInto(dst []float32, x *tensor.Tensor, oh, ow int) {
	h, w, c := x.Dim(0), x.Dim(1), x.Dim(2)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for ch := 0; ch < c; ch++ {
				best := float32(math.Inf(-1))
				var sum float64
				count := 0
				for ky := 0; ky < p.Size; ky++ {
					iy := oy*p.Stride + ky - p.Pad
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < p.Size; kx++ {
						ix := ox*p.Stride + kx - p.Pad
						if ix < 0 || ix >= w {
							continue
						}
						v := x.Data[(iy*w+ix)*c+ch]
						if v > best {
							best = v
						}
						sum += float64(v)
						count++
					}
				}
				var v float32
				if count == 0 {
					v = 0
				} else if p.kind == poolMax {
					v = best
				} else {
					v = float32(sum / float64(count))
				}
				dst[(oy*ow+ox)*c+ch] = v
			}
		}
	}
}

// Params implements Layer.
func (p *Pool2D) Params() []Param { return nil }

// Cost implements Layer.
func (p *Pool2D) Cost(in [][]int) (uint64, error) { return 0, nil }

// Backward implements Backprop. For max pooling the gradient routes to the
// (first) argmax tap of each window, recomputed from the forward input;
// for average pooling it spreads uniformly.
func (p *Pool2D) Backward(x, dy *tensor.Tensor) (*tensor.Tensor, error) {
	outShape, err := p.OutShape([][]int{x.Shape()})
	if err != nil {
		return nil, err
	}
	h, w, c := x.Dim(0), x.Dim(1), x.Dim(2)
	oh, ow := outShape[0], outShape[1]
	if dy.Size() != oh*ow*c {
		return nil, fmt.Errorf("%w: pool %q backward dy size %d, want %d", ErrShape, p.name, dy.Size(), oh*ow*c)
	}
	dx := tensor.MustNew(h, w, c)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for ch := 0; ch < c; ch++ {
				g := dy.Data[(oy*ow+ox)*c+ch]
				if g == 0 {
					continue
				}
				switch p.kind {
				case poolMax:
					bestIdx := -1
					best := float32(math.Inf(-1))
					for ky := 0; ky < p.Size; ky++ {
						iy := oy*p.Stride + ky - p.Pad
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < p.Size; kx++ {
							ix := ox*p.Stride + kx - p.Pad
							if ix < 0 || ix >= w {
								continue
							}
							idx := (iy*w+ix)*c + ch
							if x.Data[idx] > best {
								best = x.Data[idx]
								bestIdx = idx
							}
						}
					}
					if bestIdx >= 0 {
						dx.Data[bestIdx] += g
					}
				case poolAvg:
					var taps []int
					for ky := 0; ky < p.Size; ky++ {
						iy := oy*p.Stride + ky - p.Pad
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < p.Size; kx++ {
							ix := ox*p.Stride + kx - p.Pad
							if ix < 0 || ix >= w {
								continue
							}
							taps = append(taps, (iy*w+ix)*c+ch)
						}
					}
					if len(taps) > 0 {
						share := g / float32(len(taps))
						for _, idx := range taps {
							dx.Data[idx] += share
						}
					}
				}
			}
		}
	}
	return dx, nil
}

// Grads implements Backprop.
func (p *Pool2D) Grads() []Param { return nil }

// ZeroGrads implements Backprop.
func (p *Pool2D) ZeroGrads() {}

// GlobalAvgPool reduces [H, W, C] to a [C] vector of channel means.
type GlobalAvgPool struct {
	name string
}

// NewGlobalAvgPool creates a global average pooling layer.
func NewGlobalAvgPool(name string) *GlobalAvgPool { return &GlobalAvgPool{name: name} }

// Name implements Layer.
func (g *GlobalAvgPool) Name() string { return g.name }

// Kind implements Layer.
func (g *GlobalAvgPool) Kind() string { return "POOL" }

// OutShape implements Layer.
func (g *GlobalAvgPool) OutShape(in [][]int) ([]int, error) {
	s, err := wantOneShape(in)
	if err != nil {
		return nil, err
	}
	if len(s) != 3 {
		return nil, fmt.Errorf("%w: gap %q wants [H W C], got %v", ErrShape, g.name, s)
	}
	return []int{s[2]}, nil
}

// Forward implements Layer.
func (g *GlobalAvgPool) Forward(xs []*tensor.Tensor) (*tensor.Tensor, error) {
	x, err := wantOne(xs)
	if err != nil {
		return nil, err
	}
	if x.Rank() != 3 {
		return nil, fmt.Errorf("%w: gap %q wants [H W C], got %v", ErrShape, g.name, x.Shape())
	}
	out := tensor.MustNew(x.Dim(2))
	g.forwardInto(out.Data, x, make([]float64, x.Dim(2)))
	return out, nil
}

// ForwardScratch implements ScratchLayer.
func (g *GlobalAvgPool) ForwardScratch(xs []*tensor.Tensor, s *Scratch) (*tensor.Tensor, error) {
	x, err := wantOne(xs)
	if err != nil {
		return nil, err
	}
	if x.Rank() != 3 {
		return nil, fmt.Errorf("%w: gap %q wants [H W C], got %v", ErrShape, g.name, x.Shape())
	}
	out := s.Tensor(g.name, "/out", x.Dim(2))
	acc := s.Float64s(g.name, "/acc", x.Dim(2))
	clear(acc)
	g.forwardInto(out.Data, x, acc)
	return out, nil
}

// forwardInto computes channel means into dst using the zeroed float64
// accumulator acc.
func (g *GlobalAvgPool) forwardInto(dst []float32, x *tensor.Tensor, acc []float64) {
	h, w, c := x.Dim(0), x.Dim(1), x.Dim(2)
	for i := 0; i < h*w; i++ {
		px := x.Data[i*c : (i+1)*c]
		for ch := 0; ch < c; ch++ {
			acc[ch] += float64(px[ch])
		}
	}
	for ch := 0; ch < c; ch++ {
		dst[ch] = float32(acc[ch] / float64(h*w))
	}
}

// Params implements Layer.
func (g *GlobalAvgPool) Params() []Param { return nil }

// Cost implements Layer.
func (g *GlobalAvgPool) Cost(in [][]int) (uint64, error) { return 0, nil }
