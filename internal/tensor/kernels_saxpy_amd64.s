// SSE2 saxpy kernels for the vecmm matmul fast path. SSE2 is part of
// the amd64 baseline, so these run on any 64-bit x86 machine. Each
// vector lane performs the exact scalar sequence of single-precision
// multiplies and adds (MULPS/ADDPS are lane-independent IEEE binary32
// operations, and the four terms stay four sequential mul+add pairs),
// so the results are bit-identical to the generic Go kernel.

//go:build vecmm && amd64

#include "textflag.h"

// func saxpy4(orow []float32, a0, a1, a2, a3 float32, b0, b1, b2, b3 []float32)
//
// orow[j] += a0*b0[j]; += a1*b1[j]; += a2*b2[j]; += a3*b3[j]
// for j in [0, len(b0)).
TEXT ·saxpy4(SB), NOSPLIT, $0-136
	MOVQ orow_base+0(FP), DI
	MOVQ b0_base+40(FP), SI
	MOVQ b0_len+48(FP), CX
	MOVQ b1_base+64(FP), R8
	MOVQ b2_base+88(FP), R9
	MOVQ b3_base+112(FP), R10

	// Broadcast the four a coefficients across X0..X3.
	MOVSS  a0+24(FP), X0
	SHUFPS $0, X0, X0
	MOVSS  a1+28(FP), X1
	SHUFPS $0, X1, X1
	MOVSS  a2+32(FP), X2
	SHUFPS $0, X2, X2
	MOVSS  a3+36(FP), X3
	SHUFPS $0, X3, X3

	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-4, DX // DX = len rounded down to a multiple of 4

vec4:
	CMPQ AX, DX
	JGE  tail
	MOVUPS (DI)(AX*4), X4 // v = orow[j:j+4]
	MOVUPS (SI)(AX*4), X5
	MULPS  X0, X5
	ADDPS  X5, X4         // v += a0*b0[j:j+4]
	MOVUPS (R8)(AX*4), X5
	MULPS  X1, X5
	ADDPS  X5, X4         // v += a1*b1[j:j+4]
	MOVUPS (R9)(AX*4), X5
	MULPS  X2, X5
	ADDPS  X5, X4         // v += a2*b2[j:j+4]
	MOVUPS (R10)(AX*4), X5
	MULPS  X3, X5
	ADDPS  X5, X4         // v += a3*b3[j:j+4]
	MOVUPS X4, (DI)(AX*4)
	ADDQ   $4, AX
	JMP    vec4

tail:
	CMPQ AX, CX
	JGE  done
	MOVSS (DI)(AX*4), X4
	MOVSS (SI)(AX*4), X5
	MULSS X0, X5
	ADDSS X5, X4
	MOVSS (R8)(AX*4), X5
	MULSS X1, X5
	ADDSS X5, X4
	MOVSS (R9)(AX*4), X5
	MULSS X2, X5
	ADDSS X5, X4
	MOVSS (R10)(AX*4), X5
	MULSS X3, X5
	ADDSS X5, X4
	MOVSS X4, (DI)(AX*4)
	INCQ  AX
	JMP   tail

done:
	RET

// func saxpy1(orow []float32, a float32, brow []float32)
//
// orow[j] += a*brow[j] for j in [0, len(brow)).
TEXT ·saxpy1(SB), NOSPLIT, $0-56
	MOVQ orow_base+0(FP), DI
	MOVQ brow_base+32(FP), SI
	MOVQ brow_len+40(FP), CX

	MOVSS  a+24(FP), X0
	SHUFPS $0, X0, X0

	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-4, DX

vec1:
	CMPQ AX, DX
	JGE  tail1
	MOVUPS (DI)(AX*4), X4
	MOVUPS (SI)(AX*4), X5
	MULPS  X0, X5
	ADDPS  X5, X4
	MOVUPS X4, (DI)(AX*4)
	ADDQ   $4, AX
	JMP    vec1

tail1:
	CMPQ AX, CX
	JGE  done1
	MOVSS (DI)(AX*4), X4
	MOVSS (SI)(AX*4), X5
	MULSS X0, X5
	ADDSS X5, X4
	MOVSS X4, (DI)(AX*4)
	INCQ  AX
	JMP   tail1

done1:
	RET
