package codecs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/quant"
)

// Bit-plane stream layout (little endian):
//
//	magic   [2]byte  "BP"
//	version byte     1
//	level   byte     L, dropped low-order bit planes (0..6)
//	n       uint32   original parameter count
//	scale   float64  quantization scale
//	zp      byte     quantization zero point (int8)
//	8-L planes, most significant first, each:
//	    tag byte  0 = all-zero, 1 = all-one,
//	              2 = literal packed bitmask (ceil(n/8) bytes),
//	              3 = RLE: enclen uint32, then RLEEncode of the bitmask
//
// Planes hold the bits of zigzag(code >> L): the zigzag map concentrates
// magnitude in the low planes, so for weight-like code distributions the
// high planes are near-uniform and collapse to a tag byte or a short
// run-length stream. Dropping L planes trades scale*2^(L-1) of
// reconstruction error for an 8:(8-L) payload reduction before any
// plane-level redundancy coding.

const (
	bpVersion     = 1
	bpHeaderBytes = 2 + 1 + 1 + 4 + 8 + 1
	bpMaxLevel    = 6
)

// Plane tags.
const (
	planeZero byte = iota
	planeOne
	planeLiteral
	planeRLE
)

// ErrInvalidStream reports a malformed bitplane or quant-huff stream.
var ErrInvalidStream = errors.New("codecs: invalid codec stream")

// BitPlaneCodecName is the registry name of the bit-plane codec.
const BitPlaneCodecName = "bitplane"

type bitPlaneCodec struct{}

// BitPlaneCodec returns the bit-plane codec.
func BitPlaneCodec() core.Codec { return bitPlaneCodec{} }

func (bitPlaneCodec) Name() string      { return BitPlaneCodecName }
func (bitPlaneCodec) Lossless() bool    { return false }
func (bitPlaneCodec) Levels() []float64 { return []float64{0, 1, 2, 3, 4} }

// checkLevel validates the shared integer-level convention of the
// quantized codecs.
func checkLevel(level float64) (int, error) {
	l := int(level)
	if float64(l) != level || l < 0 || l > bpMaxLevel {
		return 0, fmt.Errorf("codecs: level %v is not an integer in [0, %d]", level, bpMaxLevel)
	}
	return l, nil
}

// truncatedCodes quantizes w and returns the zigzagged, level-truncated
// code stream plus its quantization parameters.
func truncatedCodes(w []float64, level int) ([]uint8, quant.Params8, error) {
	t, err := quant.Quantize(w)
	if err != nil {
		return nil, quant.Params8{}, err
	}
	zz := make([]uint8, len(t.Vals))
	for i, c := range t.Vals {
		zz[i] = quant.ZigZag8(c >> uint(level))
	}
	return zz, t.P, nil
}

// reconstructCode inverts the truncation of one zigzagged value:
// un-zigzag, shift back up and re-center the truncation bucket.
func reconstructCode(z uint8, level int) int8 {
	r := int(quant.UnZigZag8(z))
	c := r << uint(level)
	if level > 0 {
		c += 1 << uint(level-1)
	}
	if c < -128 {
		c = -128
	}
	if c > 127 {
		c = 127
	}
	return int8(c)
}

// packPlane extracts bit b of every value into an MSB-first bitmask.
func packPlane(zz []uint8, b uint) []byte {
	out := make([]byte, (len(zz)+7)/8)
	for i, z := range zz {
		if z>>b&1 == 1 {
			out[i/8] |= 1 << uint(7-i%8)
		}
	}
	return out
}

func (bitPlaneCodec) Compress(w []float64, level float64) ([]byte, error) {
	l, err := checkLevel(level)
	if err != nil {
		return nil, err
	}
	zz, p, err := truncatedCodes(w, l)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, bpHeaderBytes+len(zz))
	out = append(out, 'B', 'P', bpVersion, byte(l))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(zz)))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(p.Scale))
	out = append(out, byte(int8(p.ZeroPoint)))
	for b := 7 - l; b >= 0; b-- {
		out = appendPlane(out, zz, uint(b))
	}
	return out, nil
}

// appendPlane encodes one bit plane, choosing the cheapest of the
// uniform tags, the literal bitmask and its run-length coding.
func appendPlane(out []byte, zz []uint8, b uint) []byte {
	lit := packPlane(zz, b)
	ones := 0
	for _, z := range zz {
		if z>>b&1 == 1 {
			ones++
		}
	}
	switch {
	case ones == 0:
		return append(out, planeZero)
	case ones == len(zz):
		return append(out, planeOne)
	}
	if enc, err := baseline.RLEEncode(lit); err == nil && len(enc)+4 < len(lit) {
		out = append(out, planeRLE)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(enc)))
		return append(out, enc...)
	}
	out = append(out, planeLiteral)
	return append(out, lit...)
}

// parse decodes the stream down to the zigzagged code values, shared by
// Decompress and Validate.
func (bitPlaneCodec) parse(stream []byte) ([]uint8, quant.Params8, int, error) {
	if len(stream) < bpHeaderBytes {
		return nil, quant.Params8{}, 0, fmt.Errorf("%w: bitplane stream of %d bytes", ErrInvalidStream, len(stream))
	}
	if stream[0] != 'B' || stream[1] != 'P' || stream[2] != bpVersion {
		return nil, quant.Params8{}, 0, fmt.Errorf("%w: bad bitplane header", ErrInvalidStream)
	}
	l := int(stream[3])
	if l > bpMaxLevel {
		return nil, quant.Params8{}, 0, fmt.Errorf("%w: level %d", ErrInvalidStream, l)
	}
	n := int(binary.LittleEndian.Uint32(stream[4:8]))
	if n <= 0 || n > maxCodecParams {
		return nil, quant.Params8{}, 0, fmt.Errorf("%w: %d parameters", ErrInvalidStream, n)
	}
	scale := math.Float64frombits(binary.LittleEndian.Uint64(stream[8:16]))
	if math.IsNaN(scale) || math.IsInf(scale, 0) || scale <= 0 {
		return nil, quant.Params8{}, 0, fmt.Errorf("%w: scale %v", ErrInvalidStream, scale)
	}
	p := quant.Params8{Scale: scale, ZeroPoint: int(int8(stream[16]))}
	body := stream[bpHeaderBytes:]
	zz := make([]uint8, n)
	litLen := (n + 7) / 8
	for b := 7 - l; b >= 0; b-- {
		if len(body) < 1 {
			return nil, quant.Params8{}, 0, fmt.Errorf("%w: plane %d missing", ErrInvalidStream, b)
		}
		tag := body[0]
		body = body[1:]
		var lit []byte
		switch tag {
		case planeZero:
			continue
		case planeOne:
			for i := range zz {
				zz[i] |= 1 << uint(b)
			}
			continue
		case planeLiteral:
			if len(body) < litLen {
				return nil, quant.Params8{}, 0, fmt.Errorf("%w: plane %d truncated", ErrInvalidStream, b)
			}
			lit = body[:litLen]
			body = body[litLen:]
		case planeRLE:
			if len(body) < 4 {
				return nil, quant.Params8{}, 0, fmt.Errorf("%w: plane %d RLE header truncated", ErrInvalidStream, b)
			}
			encLen := int(binary.LittleEndian.Uint32(body[:4]))
			body = body[4:]
			if encLen > len(body) {
				return nil, quant.Params8{}, 0, fmt.Errorf("%w: plane %d RLE truncated", ErrInvalidStream, b)
			}
			dec, err := baseline.RLEDecode(body[:encLen])
			if err != nil {
				return nil, quant.Params8{}, 0, fmt.Errorf("%w: plane %d: %v", ErrInvalidStream, b, err)
			}
			if len(dec) != litLen {
				return nil, quant.Params8{}, 0, fmt.Errorf("%w: plane %d decodes to %d bytes, want %d", ErrInvalidStream, b, len(dec), litLen)
			}
			lit = dec
			body = body[encLen:]
		default:
			return nil, quant.Params8{}, 0, fmt.Errorf("%w: plane %d tag %d", ErrInvalidStream, b, tag)
		}
		for i := range zz {
			if lit[i/8]>>uint(7-i%8)&1 == 1 {
				zz[i] |= 1 << uint(b)
			}
		}
	}
	if len(body) != 0 {
		return nil, quant.Params8{}, 0, fmt.Errorf("%w: %d trailing bytes", ErrInvalidStream, len(body))
	}
	return zz, p, l, nil
}

func (c bitPlaneCodec) Decompress(stream []byte) ([]float64, error) {
	zz, p, l, err := c.parse(stream)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(zz))
	for i, z := range zz {
		out[i] = (float64(reconstructCode(z, l)) - float64(p.ZeroPoint)) * p.Scale
	}
	return out, nil
}

func (c bitPlaneCodec) CompressedBits(stream []byte, _ core.StorageModel) (int, error) {
	if err := c.Validate(stream); err != nil {
		return 0, err
	}
	return 8 * len(stream), nil
}

func (c bitPlaneCodec) Validate(stream []byte) error {
	_, _, _, err := c.parse(stream)
	return err
}
