// arm64 kernel table. Advanced SIMD (NEON) is part of the ARMv8-A
// baseline — every arm64 machine Go targets has it — so there is no
// feature probe: the NEON pair is always offered and, being
// bit-identical to the portable reference (unfused FMUL+FADD per term,
// see kernels_saxpy_arm64.s), always auto-eligible.

package tensor

// Implemented in kernels_saxpy_arm64.s.
//
//go:noescape
func saxpy4NEON(orow []float32, a0, a1, a2, a3 float32, b0, b1, b2, b3 []float32)

//go:noescape
func saxpy1NEON(orow []float32, a float32, brow []float32)

// archKernels returns the vector kernels this CPU supports.
func archKernels() []saxpyKernel {
	return []saxpyKernel{
		{name: KernelNEON, saxpy4: saxpy4NEON, saxpy1: saxpy1NEON, auto: true},
	}
}
