package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// lenetLikeGraph builds the LeNet-5 topology used by the Table I
// experiments (conv/pool/dense stack) without importing internal/models.
func lenetLikeGraph(t testing.TB) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	g := NewGraph()
	mustLayer := func(l Layer, err error) Layer {
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	g.MustAdd(mustLayer(NewConv2D("c1", 5, 5, 1, 6, 1, 2, rng)))
	g.MustAdd(NewReLU("a1"))
	g.MustAdd(mustLayer(NewMaxPool2D("p1", 2, 2)))
	g.MustAdd(mustLayer(NewConv2D("c2", 5, 5, 6, 16, 1, 0, rng)))
	g.MustAdd(NewReLU("a2"))
	g.MustAdd(mustLayer(NewMaxPool2D("p2", 2, 2)))
	g.MustAdd(NewFlatten("fl"))
	g.MustAdd(mustLayer(NewDense("f1", 400, 120, rng)))
	g.MustAdd(NewReLU("a3"))
	g.MustAdd(mustLayer(NewDense("f2", 120, 84, rng)))
	g.MustAdd(NewReLU("a4"))
	g.MustAdd(mustLayer(NewDense("f3", 84, 10, rng)))
	g.MustAdd(NewSoftmax("sm"))
	return g
}

// mobileBlockGraph exercises every remaining ScratchLayer: a
// MobileNet-style depthwise-separable block with a residual Add, an
// Inception-style Concat tower, global average pooling and Reshape.
func mobileBlockGraph(t testing.TB) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(43))
	g := NewGraph()
	mustLayer := func(l Layer, err error) Layer {
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	g.MustAdd(mustLayer(NewConv2D("c0", 3, 3, 3, 8, 1, 1, rng)))
	g.MustAdd(mustLayer(NewBatchNorm("bn0", 8, rng)))
	g.MustAdd(NewReLU6("a0"))
	g.MustAdd(mustLayer(NewDepthwiseConv2D("dw1", 3, 3, 8, 1, 1, rng)))
	g.MustAdd(mustLayer(NewBatchNorm("bn1", 8, rng)))
	g.MustAdd(NewReLU6("a1"))
	g.MustAdd(mustLayer(NewConv2D("pw1", 1, 1, 8, 8, 1, 0, rng)))
	g.MustAdd(mustLayer(NewBatchNorm("bn2", 8, rng)))
	g.MustAdd(NewAdd("res"), "bn2", "a0")
	g.MustAdd(mustLayer(NewConv2D("t1", 1, 1, 8, 4, 1, 0, rng)), "res")
	g.MustAdd(mustLayer(NewAvgPool2DPadded("t2", 3, 1, 1)), "res")
	g.MustAdd(NewConcat("cat"), "t1", "t2")
	g.MustAdd(NewGlobalAvgPool("gap"))
	g.MustAdd(mustLayer(NewReshape("rs", 1, 1, 12)))
	g.MustAdd(mustLayer(NewConv2D("pred", 1, 1, 12, 5, 1, 0, rng)))
	g.MustAdd(NewFlatten("fl"))
	g.MustAdd(NewSoftmax("sm"))
	return g
}

func randInput(seed int64, shape ...int) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.MustNew(shape...)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	return x
}

func assertTensorsBitIdentical(t *testing.T, got, want *tensor.Tensor, label string) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: nil tensor (got=%v want=%v)", label, got, want)
	}
	if got.Size() != want.Size() {
		t.Fatalf("%s: size %d, want %d", label, got.Size(), want.Size())
	}
	for i := range want.Data {
		if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
			t.Fatalf("%s: element %d = %g (%x), want %g (%x)", label, i,
				got.Data[i], math.Float32bits(got.Data[i]),
				want.Data[i], math.Float32bits(want.Data[i]))
		}
	}
}

// TestRunnerMatchesForward pins the scratch path's bit-identity contract:
// repeated Runner passes (warm, dirty buffers) must reproduce the
// allocating Graph.Forward byte-for-byte, serial and with kernel workers.
func TestRunnerMatchesForward(t *testing.T) {
	cases := []struct {
		name  string
		graph *Graph
		shape []int
	}{
		{"lenet", lenetLikeGraph(t), []int{28, 28, 1}},
		{"mobile-block", mobileBlockGraph(t), []int{12, 12, 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, workers := range []int{0, 1, 4} {
				r := tc.graph.WithScratch()
				r.SetWorkers(workers)
				for pass := 0; pass < 3; pass++ {
					x := randInput(int64(100+pass), tc.shape...)
					want, err := tc.graph.Forward(x)
					if err != nil {
						t.Fatalf("Forward: %v", err)
					}
					got, err := r.Forward(x)
					if err != nil {
						t.Fatalf("Runner.Forward(workers=%d): %v", workers, err)
					}
					assertTensorsBitIdentical(t, got, want, tc.name)
				}
			}
		})
	}
}

// TestRunnerForwardAllMatches checks every intermediate activation, not
// just the output.
func TestRunnerForwardAllMatches(t *testing.T) {
	g := mobileBlockGraph(t)
	r := g.WithScratch()
	x := randInput(7, 12, 12, 3)
	want, err := g.ForwardAll(x)
	if err != nil {
		t.Fatal(err)
	}
	// Two passes: the second runs against warm (dirty) buffers.
	for pass := 0; pass < 2; pass++ {
		got, err := r.ForwardAll(x)
		if err != nil {
			t.Fatal(err)
		}
		for name, w := range want {
			assertTensorsBitIdentical(t, got[name], w, name)
		}
	}
}

// TestRunnerForwardFromMatches pins the cached-prefix path used by the
// experiment evaluator's per-layer sweeps.
func TestRunnerForwardFromMatches(t *testing.T) {
	g := lenetLikeGraph(t)
	r := g.WithScratch()
	x := randInput(11, 28, 28, 1)
	acts, err := g.ForwardAll(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, from := range []string{"c1", "c2", "f1", "f3", "sm"} {
		want, err := g.ForwardFrom(acts, from)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.ForwardFrom(acts, from)
		if err != nil {
			t.Fatal(err)
		}
		assertTensorsBitIdentical(t, got, want, "from "+from)
		// The caller's map must not be mutated by the runner.
		if len(acts) != len(g.LayerNames())+1 {
			t.Fatalf("ForwardFrom mutated caller activation map: %d entries", len(acts))
		}
	}
}

// TestRunnerConcurrent runs one Runner per goroutine over a shared graph;
// under -race this pins the graph-stays-read-only contract.
func TestRunnerConcurrent(t *testing.T) {
	g := lenetLikeGraph(t)
	x := randInput(13, 28, 28, 1)
	want, err := g.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 4
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		go func() {
			r := g.WithScratch()
			for pass := 0; pass < 3; pass++ {
				got, err := r.Forward(x)
				if err != nil {
					errs <- err
					return
				}
				for j := range want.Data {
					if math.Float32bits(got.Data[j]) != math.Float32bits(want.Data[j]) {
						errs <- errMismatch
						return
					}
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < goroutines; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = errShim("concurrent runner output mismatch")

type errShim string

func (e errShim) Error() string { return string(e) }

// TestScratchSteadyStateAllocs verifies the arena's zero-allocation
// contract for the steady state: after a warm-up pass, a whole-graph
// forward performs at most a handful of allocations (map iteration order
// noise aside, the conv/dense/pool paths must all reuse their buffers).
func TestScratchSteadyStateAllocs(t *testing.T) {
	g := lenetLikeGraph(t)
	r := g.WithScratch()
	x := randInput(17, 28, 28, 1)
	if _, err := r.Forward(x); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := r.Forward(x); err != nil {
			t.Fatal(err)
		}
	})
	// Layer count is 13; a fresh Graph.Forward allocates hundreds of
	// objects. Steady state must be O(1): only the error-free fast path's
	// incidental allocations (interface boxing etc.) remain.
	if avg > 4 {
		t.Fatalf("steady-state Runner.Forward allocates %.1f objects/op, want <= 4", avg)
	}
}

// TestScratchBuffers pins the arena accessor contracts used by the
// layers: growth, reuse, and view caching.
func TestScratchBuffers(t *testing.T) {
	s := NewScratch()
	f := s.Floats("k", "", 8)
	if len(f) != 8 {
		t.Fatalf("Floats len %d", len(f))
	}
	f[0] = 42
	if g := s.Floats("k", "", 4); &g[0] != &f[0] {
		t.Fatal("Floats shrank to a new backing array")
	}
	a := s.Tensor("t", "", 2, 3)
	a.Data[0] = 7
	if b := s.Tensor("t", "", 2, 3); b != a {
		t.Fatal("same-shape Tensor not identical in steady state")
	}
	if b := s.Tensor("t", "", 3, 2); b == a || &b.Data[0] != &a.Data[0] {
		t.Fatal("reshaped Tensor should reuse backing array")
	}
	if c := s.Tensor("t", "", 4, 4); len(c.Data) != 16 {
		t.Fatal("grown Tensor wrong size")
	}
	data := []float32{1, 2, 3, 4}
	v1, err := s.View("v", "", data, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s.View("v", "", data, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatal("View not cached for identical backing and shape")
	}
	if _, err := s.View("v", "", data, 3, 3); err == nil {
		t.Fatal("View accepted mismatched volume")
	}
}
