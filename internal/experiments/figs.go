package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/entropy"
	"repro/internal/models"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// Fig2Row is one layer of the LeNet-5 latency/energy breakdown (Fig. 2).
type Fig2Row struct {
	Layer   string
	Kind    string
	Cycles  uint64
	Latency accel.LatencyBreakdown
	Energy  accel.EnergyBreakdown
}

// Fig2 reproduces Fig. 2: the per-layer latency and energy breakdown of
// an uncompressed LeNet-5 inference on the accelerator. Values are
// absolute; normalize against the largest layer to plot as the paper does.
func Fig2(opts Options) ([]Fig2Row, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	m, err := models.LeNet5(opts.Seed)
	if err != nil {
		return nil, err
	}
	sim, err := accel.NewSimulator(opts.Accel)
	if err != nil {
		return nil, err
	}
	sim.SetWorkers(opts.Workers)
	sim.SetObserver(opts.Obs)
	specs, err := accel.SpecsFromModel(m, nil, opts.Storage)
	if err != nil {
		return nil, err
	}
	res, err := sim.SimulateModel(m.Name, specs)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig2Row, 0, len(res.Layers))
	for _, l := range res.Layers {
		rows = append(rows, Fig2Row{
			Layer:   l.Name,
			Kind:    l.Kind,
			Cycles:  l.Cycles,
			Latency: l.Latency,
			Energy:  l.Energy,
		})
	}
	return rows, nil
}

// Fig3Row is one corpus entropy measurement (Fig. 3).
type Fig3Row struct {
	Corpus      string
	Bytes       int
	EntropyBits float64 // bits per 8-bit symbol
}

// Fig3 reproduces Fig. 3: the Shannon entropy of serialized CNN weight
// streams compared against random data (upper bound) and natural text
// (highly redundant), showing why entropy coders cannot compress trained
// weights.
func Fig3(opts Options) ([]Fig3Row, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	const corpusBytes = 1 << 20
	rows := []Fig3Row{
		{Corpus: "random", Bytes: corpusBytes,
			EntropyBits: entropy.Shannon(entropy.RandomBytes(corpusBytes, opts.Seed))},
		{Corpus: "text", Bytes: corpusBytes,
			EntropyBits: entropy.Shannon(entropy.SyntheticText(corpusBytes, opts.Seed))},
	}
	builders, err := opts.selectedBuilders()
	if err != nil {
		return nil, err
	}
	modelRows, err := parallel.Map(opts.ctx(), opts.workers(), len(builders),
		func(_ context.Context, i int) (Fig3Row, error) {
			m, err := builders[i].Build(opts.Seed)
			if err != nil {
				return Fig3Row{}, err
			}
			w, err := m.SelectedWeights()
			if err != nil {
				return Fig3Row{}, err
			}
			if len(w) > corpusBytes/4 {
				w = w[:corpusBytes/4]
			}
			data := entropy.Float32Bytes(w)
			return Fig3Row{Corpus: m.Name, Bytes: len(data), EntropyBits: entropy.Shannon(data)}, nil
		})
	if err != nil {
		return nil, err
	}
	return append(rows, modelRows...), nil
}

// Fig9Row is one layer's sensitivity measurement (Fig. 9).
type Fig9Row struct {
	Model       string
	Layer       string
	Kind        string
	Params      int
	Sensitivity float64 // normalized accuracy impact of perturbing the layer
	// PerParam is the sensitivity density: accuracy impact per perturbed
	// parameter, normalized. Large deep layers have high absolute impact
	// simply because they hold most parameters; the density profile is
	// what justifies the paper's policy of compressing the deepest,
	// largest layer (lowest per-parameter sensitivity, highest footprint).
	PerParam float64
}

// fig9Models is the paper's Fig. 9 selection.
var fig9Models = []string{"LeNet-5", "AlexNet"}

// Fig9 reproduces Fig. 9: the per-layer sensitivity analysis. Each
// layer's weights are perturbed with uniform noise proportional to the
// layer's amplitude (the same error profile the lossy compression
// induces) and the resulting accuracy drop is measured and normalized to
// the most sensitive layer. The perturbation level escalates (5%, 10%,
// 20%, 40%) until at least one layer responds measurably, so the relative
// profile is resolved for both the robust trained LeNet-5 and the
// fidelity-measured models.
func Fig9(opts Options) ([]Fig9Row, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	names := fig9Models
	if len(opts.Models) > 0 {
		names = opts.Models
	} else if opts.Fast {
		names = []string{"LeNet-5"}
	}
	perModel, err := parallel.Map(opts.ctx(), opts.workers(), len(names),
		func(_ context.Context, ni int) ([]Fig9Row, error) {
			return fig9Model(names[ni], opts)
		})
	if err != nil {
		return nil, err
	}
	var rows []Fig9Row
	for _, mr := range perModel {
		rows = append(rows, mr...)
	}
	return rows, nil
}

// fig9Model runs the sensitivity sweep for one model. The perturbation
// loop mutates the model's weight tensors in place, so it stays serial
// within one model.
func fig9Model(name string, opts Options) ([]Fig9Row, error) {
	b, err := models.ByName(name)
	if err != nil {
		return nil, err
	}
	m, err := b.Build(opts.Seed)
	if err != nil {
		return nil, err
	}
	ev, err := newEvaluator(m, opts)
	if err != nil {
		return nil, err
	}
	base, err := ev.baseline(m)
	if err != nil {
		return nil, err
	}
	var drops []float64
	var layerRows []Fig9Row
	for _, level := range []float64{0.05, 0.10, 0.20, 0.40} {
		rng := rand.New(rand.NewSource(opts.Seed ^ 0xf19))
		drops = drops[:0]
		layerRows = layerRows[:0]
		maxDrop := 0.0
		for _, l := range layerParamTensors(m.Graph) {
			wt := l.Params()[0].T
			orig := wt.Float64s()
			amp := stats.Amplitude(orig)
			noisy := make([]float64, len(orig))
			for i, v := range orig {
				noisy[i] = v + (rng.Float64()*2-1)*amp*level
			}
			if err := wt.SetFloat64s(noisy); err != nil {
				return nil, err
			}
			acc, err := ev.fineAccuracy(m)
			if err != nil {
				return nil, err
			}
			if err := wt.SetFloat64s(orig); err != nil {
				return nil, err
			}
			drop := base - acc
			if drop < 0 {
				drop = 0
			}
			if drop > maxDrop {
				maxDrop = drop
			}
			drops = append(drops, drop)
			layerRows = append(layerRows, Fig9Row{
				Model: m.Name, Layer: l.Name(), Kind: l.Kind(),
				Params: l.Params()[0].T.Size(),
			})
		}
		if maxDrop >= 0.02 {
			break // this level resolves the profile
		}
	}
	norm := stats.Normalize(drops)
	perParam := make([]float64, len(drops))
	for i := range drops {
		perParam[i] = drops[i] / float64(layerRows[i].Params)
	}
	perParam = stats.Normalize(perParam)
	for i := range layerRows {
		layerRows[i].Sensitivity = norm[i]
		layerRows[i].PerParam = perParam[i]
	}
	return layerRows, nil
}

// Fig10Point is one configuration of a model's trade-off plot (Fig. 10):
// the original network or a compressed variant at one delta value.
type Fig10Point struct {
	Model       string
	Config      string // "orig" or "x-<delta>"
	DeltaPct    float64
	Accuracy    float64
	Cycles      uint64
	LatencyNorm float64 // cycles / original cycles
	EnergyNorm  float64 // energy / original energy
	Latency     accel.LatencyBreakdown
	Energy      accel.EnergyBreakdown
}

// Fig10 reproduces Fig. 10 for the selected models: for the original
// network and each delta value, the accuracy (top-1 for the trained
// LeNet-5, top-5 fidelity otherwise), the inference latency and the
// inference energy with their breakdowns, normalized to the original.
func Fig10(opts Options) ([]Fig10Point, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	builders, err := opts.selectedBuilders()
	if err != nil {
		return nil, err
	}
	sim, err := accel.NewSimulator(opts.Accel)
	if err != nil {
		return nil, err
	}
	sim.SetWorkers(opts.Workers)
	sim.SetObserver(opts.Obs)
	// One work item per model: the delta sweep mutates the model's
	// selected layer in place, so points within a model are produced
	// serially, while the models themselves fan out. The shared Simulator
	// is safe for concurrent use and additionally parallelizes over the
	// layers of each simulated configuration.
	perModel, err := parallel.Map(opts.ctx(), opts.workers(), len(builders),
		func(_ context.Context, bi int) ([]Fig10Point, error) {
			return checkpointed(opts, "fig10/"+builders[bi].Name, func() ([]Fig10Point, error) {
				return fig10Model(builders[bi], sim, opts)
			})
		})
	if err != nil {
		return nil, err
	}
	var points []Fig10Point
	for _, mp := range perModel {
		points = append(points, mp...)
	}
	return points, nil
}

// fig10Model runs the Fig. 10 trade-off sweep for one model.
func fig10Model(b models.Builder, sim *accel.Simulator, opts Options) ([]Fig10Point, error) {
	m, err := b.Build(opts.Seed)
	if err != nil {
		return nil, err
	}
	ev, err := newEvaluator(m, opts) // trains LeNet for real
	if err != nil {
		return nil, err
	}
	baseAcc, err := ev.baseline(m)
	if err != nil {
		return nil, err
	}
	baseSpecs, err := accel.SpecsFromModel(m, nil, opts.Storage)
	if err != nil {
		return nil, err
	}
	baseRes, err := sim.SimulateModel(m.Name, baseSpecs)
	if err != nil {
		return nil, err
	}
	points := []Fig10Point{{
		Model: m.Name, Config: "orig", Accuracy: baseAcc,
		Cycles: baseRes.Cycles, LatencyNorm: 1, EnergyNorm: 1,
		Latency: baseRes.Latency, Energy: baseRes.Energy,
	}}
	orig, err := snapshotSelected(m)
	if err != nil {
		return nil, err
	}
	for _, pct := range DeltaGrid(m.Name) {
		c, err := core.CompressPct(orig, pct)
		if err != nil {
			return nil, err
		}
		approx, err := c.Decompress()
		if err != nil {
			return nil, err
		}
		if err := m.SetSelectedWeights(approx); err != nil {
			return nil, err
		}
		acc, err := ev.accuracy(m)
		if err != nil {
			return nil, err
		}
		specs, err := accel.SpecsFromModel(m, map[string]*core.Compressed{m.SelectedLayer: c}, opts.Storage)
		if err != nil {
			return nil, err
		}
		res, err := sim.SimulateModel(m.Name, specs)
		if err != nil {
			return nil, err
		}
		points = append(points, Fig10Point{
			Model:       m.Name,
			Config:      fmt.Sprintf("x-%g", pct),
			DeltaPct:    pct,
			Accuracy:    acc,
			Cycles:      res.Cycles,
			LatencyNorm: float64(res.Cycles) / float64(baseRes.Cycles),
			EnergyNorm:  res.Energy.Total() / baseRes.Energy.Total(),
			Latency:     res.Latency,
			Energy:      res.Energy,
		})
	}
	if err := m.SetSelectedWeights(orig); err != nil {
		return nil, err
	}
	return points, nil
}
