package accel

import (
	"testing"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/noc"
)

// BenchmarkSimulateLeNet measures a full cycle-accurate LeNet-5 inference
// on the 4x4 platform with the default (event) NoC core.
func BenchmarkSimulateLeNet(b *testing.B) { benchSimulateLeNet(b, noc.CoreEvent) }

// BenchmarkSimulateLeNetStepCore is the same inference on the reference
// stepping core, pinning the event core's end-to-end win.
func BenchmarkSimulateLeNetStepCore(b *testing.B) { benchSimulateLeNet(b, noc.CoreStep) }

func benchSimulateLeNet(b *testing.B, nocCore noc.Core) {
	m, err := models.LeNet5(1)
	if err != nil {
		b.Fatal(err)
	}
	specs, err := SpecsFromModel(m, nil, core.DefaultStorage)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Mesh.Core = nocCore
	sim, err := NewSimulator(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := sim.SimulateModel(m.Name, specs)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
}

// BenchmarkSimulateLeNetSerialCompressed and BenchmarkSimulateLeNetOverlap
// run the delta-15-compressed model under the serial and streaming
// schedules: the sim-cycles metrics show the modeled latency win, the
// ns/op pair shows what the pipeline model costs the simulator itself.
func BenchmarkSimulateLeNetSerialCompressed(b *testing.B) { benchSimulateLeNetOverlap(b, false) }

func BenchmarkSimulateLeNetOverlap(b *testing.B) { benchSimulateLeNetOverlap(b, true) }

func benchSimulateLeNetOverlap(b *testing.B, overlap bool) {
	m, err := models.LeNet5(2020)
	if err != nil {
		b.Fatal(err)
	}
	w, err := m.SelectedWeights()
	if err != nil {
		b.Fatal(err)
	}
	c, err := core.CompressPct(w, 15)
	if err != nil {
		b.Fatal(err)
	}
	specs, err := SpecsFromModel(m, map[string]*core.Compressed{m.SelectedLayer: c}, core.DefaultStorage)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Overlap = overlap
	sim, err := NewSimulator(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := sim.SimulateModel(m.Name, specs)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
}

// BenchmarkSimulateLayerFC measures the per-layer engine on a large dense
// layer with steady-state extrapolation.
func BenchmarkSimulateLayerFC(b *testing.B) {
	sim, err := NewSimulator(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	spec := LayerSpec{
		Name: "fc", Kind: "FC",
		MACs: 16_000_000, WeightBytes: 64_000_000, InputBytes: 16_384, OutputBytes: 16_384,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.SimulateLayer(spec); err != nil {
			b.Fatal(err)
		}
	}
}
