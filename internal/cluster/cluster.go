package cluster

import (
	"fmt"
	"sort"

	"repro/internal/accel"
	"repro/internal/faults"
	"repro/internal/obs"
)

// Well-known fabric addresses for the non-node actors.
const (
	RouterID     = 1000
	ControllerID = 1001
)

// Spec describes one cluster scenario: topology, weight-version plans,
// workload, and the chaos schedule. The zero values of most knobs get
// sensible defaults from (*Spec).withDefaults.
type Spec struct {
	Nodes  int   // accelerator nodes (Raft members)
	Shards int   // model shards; shard s is replicated on nodes with id%Shards == s
	Seed   int64 // drives faults, backoff jitter, election timeouts

	// Faults is the message-level fault environment (drop/delay/dup/
	// reorder). Its Seed is overridden with Spec.Seed.
	Faults    faults.Model
	LinkDelay Tick // nominal one-way RPC latency (0 = 50 ticks)

	// Accel is the per-node accelerator platform; Versions are the
	// weight-version epochs (ascending). Versions[0] is preloaded and
	// active everywhere at t=0; later versions arrive by rollout.
	Accel         accel.Config
	Versions      []VersionPlan
	CyclesPerTick uint64 // accel cycles per fabric tick (0 = 1000)
	SimWorkers    int    // workers inside each node's accel simulator

	// Workload: an open-loop client issuing Requests requests, one
	// every Interval ticks, each with a completion deadline.
	Requests        int
	Interval        Tick
	RequestTimeout  Tick // per-attempt RPC timeout (0 = derived)
	RequestRetries  int  // extra attempts per replica
	RequestDeadline Tick // end-to-end SLO (0 = derived)

	// Chaos schedule (tick 0 = disabled).
	RolloutAt      Tick // controller submits Versions[1] as a new epoch
	RolloutRetries int  // controller re-proposals after silence
	KillLeaderAt   Tick // crash the current leader
	RestartAt      Tick // revive the crashed leader
	PartitionAt    Tick // isolate a minority node group
	HealAt         Tick // heal the partition
	Horizon        Tick // run until (0 = derived from the workload)
}

// withDefaults fills derived knobs. Defaults depend only on the Spec,
// never on the environment, so they do not perturb determinism.
func (s Spec) withDefaults() Spec {
	if s.LinkDelay == 0 {
		s.LinkDelay = 50
	}
	if s.CyclesPerTick == 0 {
		s.CyclesPerTick = 1000
	}
	if s.SimWorkers == 0 {
		s.SimWorkers = 1
	}
	if s.Interval == 0 {
		s.Interval = 200
	}
	s.Faults.Seed = s.Seed
	return s
}

// Validate checks the scenario.
func (s Spec) Validate() error {
	switch {
	case s.Nodes < 1:
		return fmt.Errorf("cluster: %d nodes", s.Nodes)
	case s.Shards < 1 || s.Shards > s.Nodes:
		return fmt.Errorf("cluster: %d shards for %d nodes", s.Shards, s.Nodes)
	case len(s.Versions) == 0:
		return fmt.Errorf("cluster: no weight-version plans")
	case s.Requests < 0:
		return fmt.Errorf("cluster: %d requests", s.Requests)
	}
	for i, v := range s.Versions {
		if len(v.Specs) == 0 {
			return fmt.Errorf("cluster: version %d has no layer specs", v.Version)
		}
		if i > 0 && v.Version <= s.Versions[i-1].Version {
			return fmt.Errorf("cluster: version numbers not ascending")
		}
	}
	if err := s.Faults.Validate(); err != nil {
		return err
	}
	return s.Accel.Validate()
}

// Report is the scenario outcome. Every field derives from virtual
// time and typed counters, so for a fixed Spec the report is
// byte-identical at any worker count and across runs.
type Report struct {
	RouterStats
	Availability    float64 // Served / Requests
	P50, P95, P99   Tick    // served-request latency percentiles
	ServedByVersion map[int]int

	EpochOutcome  string // "committed", "rolled-back", or "partial"
	FinalActive   []int  // per node id; -1 = still crashed at the end
	LeaderChanges int
	Fabric        FabricStats
}

// Cluster is one assembled scenario instance. Use Run; the type is
// exported for tests that drive phases manually.
type Cluster struct {
	spec   Spec
	fabric *Fabric
	nodes  []*Node
	router *Router
	obsv   *obs.Observer
	buf    *obs.Buffer

	minVersion    int
	plans         map[int]VersionPlan
	shardReplicas [][]int         // shard -> node ids, ascending
	tickCache     map[[2]int]Tick // (version, shard) -> service ticks

	rolloutStart Tick
	rolloutEnd   Tick
	killedLeader int
}

// New assembles a cluster from a validated spec.
func New(spec Spec, o *obs.Observer) (*Cluster, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		spec:         spec,
		fabric:       NewFabric(spec.Faults, spec.LinkDelay),
		obsv:         o,
		plans:        map[int]VersionPlan{},
		tickCache:    map[[2]int]Tick{},
		killedLeader: -1,
	}
	c.buf = o.LayerBuffer("cluster", 0, "cluster")
	for _, v := range spec.Versions {
		c.plans[v.Version] = v
	}
	c.minVersion = spec.Versions[0].Version

	peers := make([]int, spec.Nodes)
	for i := range peers {
		peers[i] = i
	}
	c.shardReplicas = make([][]int, spec.Shards)
	for id := 0; id < spec.Nodes; id++ {
		shard := id % spec.Shards
		n, err := newNode(c, id, shard, peers)
		if err != nil {
			return nil, err
		}
		// Version 0 of the spec list is preloaded and active: the
		// cluster starts in steady state, serving the initial epoch.
		if err := n.stage(spec.Versions[0]); err != nil {
			return nil, err
		}
		n.active = spec.Versions[0].Version
		c.nodes = append(c.nodes, n)
		c.shardReplicas[shard] = append(c.shardReplicas[shard], id)
	}
	c.router = newRouter(c, RouterID)
	NewEndpoint(c.fabric, ControllerID) // the controller calls, never serves
	return c, nil
}

// planByVersion looks a version plan up.
func (c *Cluster) planByVersion(v int) (VersionPlan, bool) {
	p, ok := c.plans[v]
	return p, ok
}

// hasPlan reports whether a version number is known to the spec.
func (c *Cluster) hasPlan(v int) bool { _, ok := c.plans[v]; return ok }

// shardSpecs slices a version plan to one shard's contiguous layer
// range (balanced by layer count).
func shardSpecs(specs []accel.LayerSpec, shard, shards int) []accel.LayerSpec {
	n := len(specs)
	lo := shard * n / shards
	hi := (shard + 1) * n / shards
	if lo == hi { // more shards than layers: give the shard one layer
		lo = shard % n
		hi = lo + 1
	}
	return specs[lo:hi]
}

// shardServiceTicks costs one (version, shard) pair by simulating the
// shard's layer slice on the node's accelerator, cached cluster-wide
// (all replicas of a shard run identical hardware, and the simulation
// is deterministic, so sharing the number loses nothing).
func (c *Cluster) shardServiceTicks(sim *accel.Simulator, plan VersionPlan, shard int) (Tick, error) {
	key := [2]int{plan.Version, shard}
	if t, ok := c.tickCache[key]; ok {
		return t, nil
	}
	specs := shardSpecs(plan.Specs, shard, c.spec.Shards)
	res, err := sim.SimulateModel(fmt.Sprintf("v%d/shard%d", plan.Version, shard), specs)
	if err != nil {
		return 0, fmt.Errorf("cluster: costing version %d shard %d: %w", plan.Version, shard, err)
	}
	t := Tick(res.Cycles / c.spec.CyclesPerTick)
	if t < 1 {
		t = 1
	}
	c.tickCache[key] = t
	return t, nil
}

// maxServiceTicks returns the slowest staged shard service time, for
// deriving timeout defaults.
func (c *Cluster) maxServiceTicks() Tick {
	var max Tick
	for _, t := range c.tickCache {
		if t > max {
			max = t
		}
	}
	return max
}

// Observability hooks (no-ops when obs is disabled).

func (c *Cluster) observeLeader(now Tick, id int) {
	if c.buf != nil {
		c.buf.Instant("leader_elected", "raft", id, now)
	}
	if m := c.obsv.M(); m != nil {
		m.Counter("cluster_leader_elections").Inc()
	}
}

func (c *Cluster) observeStage(now Tick, id, version int) {
	if c.buf != nil {
		c.buf.Instant("stage_applied", "rollout", id, now, obs.KV{K: "version", V: uint64(version)})
	}
}

func (c *Cluster) observeActivate(now Tick, id, version int) {
	if c.buf != nil {
		c.buf.Instant("activate_applied", "rollout", id, now, obs.KV{K: "version", V: uint64(version)})
	}
	if c.rolloutEnd == 0 && version > c.minVersion {
		c.rolloutEnd = now
	}
	if m := c.obsv.M(); m != nil {
		m.Counter("cluster_activations").Inc()
	}
}

// currentLeader returns the live node currently believing it leads
// (lowest id wins ties, which only exist transiently).
func (c *Cluster) currentLeader() *Node {
	for _, n := range c.nodes {
		if n.ep.Alive() && n.raft.IsLeader() {
			return n
		}
	}
	return nil
}

// minorityGroup picks the partition's minority side: up to ⌊N/2⌋ of the
// highest-id live non-leader nodes — but never a node whose shard would
// be left without a live replica outside the minority. The scenario
// measures degraded service (reduced replicas, stale epochs), not a
// black hole: stranding a whole shard would conflate "the router
// degrades gracefully" with "the model is simply gone".
func (c *Cluster) minorityGroup() []int {
	leaderID := -1
	if l := c.currentLeader(); l != nil {
		leaderID = l.id
	}
	liveLeft := make([]int, c.spec.Shards) // live replicas outside the minority
	for _, n := range c.nodes {
		if n.ep.Alive() {
			liveLeft[n.shard]++
		}
	}
	var ids []int
	for i := len(c.nodes) - 1; i >= 0 && len(ids) < c.spec.Nodes/2; i-- {
		n := c.nodes[i]
		if n.id == leaderID || !n.ep.Alive() || liveLeft[n.shard] <= 1 {
			continue
		}
		liveLeft[n.shard]--
		ids = append(ids, n.id)
	}
	sort.Ints(ids)
	return ids
}

// Run executes the scenario: boots Raft, schedules the workload and the
// chaos timeline, drives the event loop to the horizon, and classifies
// the epoch outcome.
func Run(spec Spec, o *obs.Observer) (*Report, error) {
	c, err := New(spec, o)
	if err != nil {
		return nil, err
	}
	return c.run()
}

func (c *Cluster) run() (*Report, error) {
	s := c.spec
	f := c.fabric

	// Pre-cost every shard at the initial version so timeout defaults
	// exist before traffic starts (nodes staged version 0 in New).
	if s.RequestTimeout == 0 {
		s.RequestTimeout = 2*c.maxServiceTicks() + 20*f.LinkDelay
	}
	if s.RequestDeadline == 0 {
		s.RequestDeadline = 8 * (s.RequestTimeout + s.RequestDeadlineSlack())
	}
	c.spec = s

	for _, n := range c.nodes {
		n.raft.start(0)
	}

	// Workload.
	for i := 0; i < s.Requests; i++ {
		id := i
		f.After(Tick(i)*s.Interval+1, func(now Tick) { c.router.submit(now, id) })
	}

	// Rollout.
	if s.RolloutAt > 0 && len(s.Versions) > 1 {
		c.scheduleRollout(s.Versions[1], s.RolloutAt, s.RolloutRetries)
	}

	// Chaos timeline.
	if s.KillLeaderAt > 0 {
		f.After(s.KillLeaderAt, func(now Tick) {
			l := c.currentLeader()
			if l == nil { // nobody leads right now; kill the oldest node
				l = c.nodes[0]
			}
			c.killedLeader = l.id
			f.Crash(l.id)
			if c.buf != nil {
				c.buf.Instant("node_killed", "chaos", l.id, now)
			}
		})
	}
	if s.RestartAt > 0 {
		f.After(s.RestartAt, func(now Tick) {
			if c.killedLeader < 0 {
				return
			}
			f.Restart(c.killedLeader)
			c.nodes[c.killedLeader].restart(now)
			if c.buf != nil {
				c.buf.Instant("node_restarted", "chaos", c.killedLeader, now)
			}
		})
	}
	if s.PartitionAt > 0 {
		f.After(s.PartitionAt, func(now Tick) {
			minority := c.minorityGroup()
			rest := []int{RouterID, ControllerID}
			inMinority := map[int]bool{}
			for _, id := range minority {
				inMinority[id] = true
			}
			for _, n := range c.nodes {
				if !inMinority[n.id] {
					rest = append(rest, n.id)
				}
			}
			f.Partition(rest, minority)
			if c.buf != nil {
				c.buf.Instant("partition", "chaos", -1, now, obs.KV{K: "minority", V: uint64(len(minority))})
			}
		})
	}
	if s.HealAt > 0 {
		f.After(s.HealAt, func(now Tick) {
			f.Heal()
			if c.buf != nil {
				c.buf.Instant("heal", "chaos", -1, now)
			}
		})
	}

	horizon := s.Horizon
	if horizon == 0 {
		horizon = Tick(s.Requests)*s.Interval + 20*s.RequestDeadline + 20000
	}
	f.RunUntil(horizon)
	return c.report(horizon), nil
}

// RequestDeadlineSlack is the fixed per-request scheduling slack used
// when deriving the deadline default.
func (s Spec) RequestDeadlineSlack() Tick { return 4 * s.Interval }

// scheduleRollout submits the epoch to whichever node is leader,
// following leader hints and re-proposing after silence (bounded).
// Re-proposals are safe: staging and activation are idempotent per
// version.
func (c *Cluster) scheduleRollout(plan VersionPlan, at Tick, retries int) {
	cmd := Command{Kind: "stage", Version: plan.Version, Level: plan.Level}
	ctrl := c.fabric.eps[ControllerID]
	var tryPropose func(target, left int)
	tryPropose = func(target, left int) {
		if target < 0 || target >= c.spec.Nodes {
			target = 0
		}
		ctrl.Go(target, "Sched.Propose", cmd,
			CallOpts{Timeout: 4 * electionBase, Retries: 0},
			func(done Tick, reply any, err error) {
				if err == nil {
					if c.buf != nil {
						c.buf.Instant("rollout_accepted", "rollout", reply.(int), done, obs.KV{K: "version", V: uint64(plan.Version)})
					}
					return
				}
				if left <= 0 {
					return
				}
				// Follow the hint when one was offered; else try the
				// next node round-robin.
				next := (target + 1) % c.spec.Nodes
				if hint := parseLeaderHint(err.Error()); hint >= 0 && hint < c.spec.Nodes && hint != target {
					next = hint
				}
				tryPropose(next, left-1)
			})
	}
	c.fabric.After(at, func(now Tick) {
		if c.buf != nil {
			c.buf.Instant("rollout_submitted", "rollout", -1, now, obs.KV{K: "version", V: uint64(plan.Version)})
		}
		c.rolloutStart = now
		tryPropose(0, retries)
	})
}

// parseLeaderHint extracts the "(hint N)" suffix a non-leader's refusal
// carries; -1 when absent.
func parseLeaderHint(s string) int {
	i := len(s) - 1
	if i < 0 || s[i] != ')' {
		return -1
	}
	j := i
	for j > 0 && s[j-1] >= '0' && s[j-1] <= '9' {
		j--
	}
	if j == i || j < 6 || s[j-6:j] != "(hint " {
		return -1
	}
	n := 0
	for _, ch := range s[j:i] {
		n = n*10 + int(ch-'0')
	}
	return n
}

// report assembles the outcome.
func (c *Cluster) report(horizon Tick) *Report {
	r := &Report{
		RouterStats:     c.router.stats,
		ServedByVersion: c.router.byVersion,
		FinalActive:     make([]int, len(c.nodes)),
		Fabric:          c.fabric.Stats(),
	}
	if r.Requests > 0 {
		r.Availability = float64(r.Served) / float64(r.Requests)
	}
	lat := append([]Tick(nil), c.router.latencies...)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pick := func(q float64) Tick {
		if len(lat) == 0 {
			return 0
		}
		i := int(q * float64(len(lat)-1))
		return lat[i]
	}
	r.P50, r.P95, r.P99 = pick(0.50), pick(0.95), pick(0.99)

	rollV := -1
	if len(c.spec.Versions) > 1 {
		rollV = c.spec.Versions[1].Version
	}
	liveActive := map[int]bool{}
	for i, n := range c.nodes {
		if !n.ep.Alive() {
			r.FinalActive[i] = -1
			continue
		}
		r.FinalActive[i] = n.active
		liveActive[n.active] = true
		r.LeaderChanges += n.raft.leaderChanges
	}
	switch {
	case rollV < 0 || c.spec.RolloutAt == 0:
		r.EpochOutcome = "none"
	case len(liveActive) == 1 && liveActive[rollV]:
		r.EpochOutcome = "committed"
	case !liveActive[rollV]:
		r.EpochOutcome = "rolled-back"
	default:
		r.EpochOutcome = "partial"
	}
	if c.buf != nil && c.spec.RolloutAt > 0 {
		end := c.rolloutEnd
		if end == 0 {
			end = horizon
		}
		if end > c.spec.RolloutAt {
			c.buf.Span("epoch_rollout", "rollout", -1, c.spec.RolloutAt, end-c.spec.RolloutAt,
				obs.KV{K: "outcome_committed", V: boolU64(r.EpochOutcome == "committed")})
		}
	}
	if m := c.obsv.M(); m != nil {
		m.Counter("cluster_requests_total").Add(uint64(r.Requests))
		m.Counter("cluster_requests_failed").Add(uint64(r.Failed))
	}
	return r
}

func boolU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
