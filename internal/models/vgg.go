package models

import "fmt"

// VGG16 builds the standard VGG-16 for 224x224x3 inputs: 13 convolutional
// layers in five blocks plus three dense layers, 138.36M parameters
// (Table I reports 138,000k with dense_1 — the 25088x4096 fc1 — at ~77%).
//
// Building this model allocates ~560 MB of float32 weights.
func VGG16(seed int64) (*Model, error) {
	b := newGraphBuilder(seed)
	blocks := [][]int{
		{64, 64},
		{128, 128},
		{256, 256, 256},
		{512, 512, 512},
		{512, 512, 512},
	}
	inC := 3
	for bi, block := range blocks {
		for ci, outC := range block {
			name := fmt.Sprintf("conv_%d_%d", bi+1, ci+1)
			b.conv(name, 3, 3, inC, outC, 1, 1)
			b.relu(name + "_relu")
			inC = outC
		}
		b.maxpool(fmt.Sprintf("pool_%d", bi+1), 2, 2)
	}
	b.flatten("flatten") // 7x7x512 = 25088
	b.dense("dense_1", 25088, 4096)
	b.relu("dense_1_relu")
	b.dense("dense_2", 4096, 4096)
	b.relu("dense_2_relu")
	b.dense("dense_3", 4096, 1000)
	b.softmax("softmax")
	m, err := b.finish(Info{
		Name:          "VGG-16",
		InputShape:    []int{224, 224, 3},
		SelectedLayer: "dense_1",
		SelectedKind:  "FC",
		PaperParamsK:  138000,
		PaperFraction: 0.77,
		Classes:       1000,
	})
	if err != nil {
		return nil, err
	}
	// Calibrated against Table II: amplitude 2*10.44 sigma reproduces
	// VGG's CR curve (1.21 -> ~5x over delta 0..8%); sigma ~ 8e-4 lands
	// the MSE near the paper's 1e-7 order (fc1's fan-in is 25088, so
	// trained weights are tiny).
	if err := retouchSelected(m, seed, 0.0008, 10.44); err != nil {
		return nil, err
	}
	return m, nil
}
