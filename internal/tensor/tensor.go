// Package tensor provides the dense numeric arrays used by the CNN
// substrate: row-major float32 tensors with shape/stride bookkeeping,
// initialization helpers, and the im2col transformation that turns
// convolutions into matrix multiplies.
//
// float32 is the storage type throughout — it matches the accelerator's
// datapath width and halves the memory footprint of the 138M-parameter
// VGG-16 model; accumulations are performed in float64 where it matters.
package tensor

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major array of float32 values.
type Tensor struct {
	shape   []int
	strides []int
	Data    []float32
}

// New allocates a zero-filled tensor with the given shape. All dimensions
// must be positive.
func New(shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			return nil, fmt.Errorf("tensor: non-positive dimension %d in %v", d, shape)
		}
		n *= d
	}
	t := &Tensor{
		shape: append([]int(nil), shape...),
		Data:  make([]float32, n),
	}
	t.computeStrides()
	return t, nil
}

// MustNew is New but panics on error; for statically correct shapes.
func MustNew(shape ...int) *Tensor {
	t, err := New(shape...)
	if err != nil {
		panic(err)
	}
	return t
}

// FromSlice wraps data in a tensor of the given shape. The data is not
// copied; the caller must not alias it unexpectedly. The element count
// must match the shape volume.
func FromSlice(data []float32, shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			return nil, shapeErr("tensor: non-positive dimension in %v", shape)
		}
		n *= d
	}
	if n != len(data) {
		return nil, shapeErr(fmt.Sprintf("tensor: %d elements for shape %%v (want %d)", len(data), n), shape)
	}
	t := &Tensor{shape: append([]int(nil), shape...), Data: data}
	t.computeStrides()
	return t, nil
}

// shapeErr formats a shape error from a copy of the shape slice. The copy
// keeps the (rare) error path from leaking the caller's variadic shape
// argument to the heap, so the zero-allocation fast paths built on
// FromSlice stay allocation-free.
func shapeErr(format string, shape []int) error {
	return fmt.Errorf(format, append([]int(nil), shape...))
}

func (t *Tensor) computeStrides() {
	t.strides = make([]int, len(t.shape))
	s := 1
	for i := len(t.shape) - 1; i >= 0; i-- {
		t.strides[i] = s
		s *= t.shape[i]
	}
}

// Shape returns a copy of the tensor's dimensions. The copy is
// defensive: mutating it cannot corrupt the tensor's shape/stride
// bookkeeping. Hot paths that only need single dimensions should use
// Dim/Rank, which do not allocate.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Size returns the total element count.
func (t *Tensor) Size() int { return len(t.Data) }

// Dim returns the i-th dimension.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// At returns the element at the given multi-index. It panics on rank
// mismatch or out-of-range indices (programming errors, like slice
// indexing).
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for rank-%d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range [0,%d) in dim %d", x, t.shape[i], i))
		}
		off += x * t.strides[i]
	}
	return off
}

// Reshape returns a view of t with a new shape of equal volume. The data
// is shared.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	return FromSlice(t.Data, shape...)
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	data := make([]float32, len(t.Data))
	copy(data, t.Data)
	out, _ := FromSlice(data, t.shape...)
	return out
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// RandNormal fills the tensor with N(mean, std) samples from rng.
func (t *Tensor) RandNormal(rng *rand.Rand, mean, std float64) {
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64()*std + mean)
	}
}

// RandUniform fills the tensor with uniform samples in [lo, hi).
func (t *Tensor) RandUniform(rng *rand.Rand, lo, hi float64) {
	for i := range t.Data {
		t.Data[i] = float32(lo + rng.Float64()*(hi-lo))
	}
}

// Float64s returns a copy of the data widened to float64 — the parameter
// succession form consumed by the compression core.
func (t *Tensor) Float64s() []float64 {
	out := make([]float64, len(t.Data))
	for i, v := range t.Data {
		out[i] = float64(v)
	}
	return out
}

// SetFloat64s overwrites the tensor data from a float64 slice (narrowing
// to float32), e.g. to install decompressed approximated parameters.
func (t *Tensor) SetFloat64s(vals []float64) error {
	if len(vals) != len(t.Data) {
		return fmt.Errorf("tensor: SetFloat64s got %d values for %d elements", len(vals), len(t.Data))
	}
	for i, v := range vals {
		t.Data[i] = float32(v)
	}
	return nil
}

// SameShape reports whether two tensors have identical shapes.
func SameShape(a, b *Tensor) bool {
	if a.Rank() != b.Rank() {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// Add computes a + b elementwise into a new tensor.
func Add(a, b *Tensor) (*Tensor, error) {
	if !SameShape(a, b) {
		return nil, fmt.Errorf("tensor: Add shape mismatch %v vs %v", a.shape, b.shape)
	}
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out, nil
}

// Scale multiplies every element by s, in place, and returns t.
func (t *Tensor) Scale(s float32) *Tensor {
	for i := range t.Data {
		t.Data[i] *= s
	}
	return t
}

// Dot returns the float64-accumulated dot product of two equal-length
// float32 slices.
func Dot(a, b []float32) float64 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

// ErrShape reports incompatible operand shapes in MatMul and friends.
var ErrShape = errors.New("tensor: incompatible shapes")

// MatMul multiplies a (m x k) by b (k x n) into a new (m x n) tensor.
// It delegates to the cache-blocked kernel of kernels.go, whose output is
// bit-identical to the reference ikj loop (per-element accumulation order
// is preserved; see kernels_test.go).
func MatMul(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 || a.shape[1] != b.shape[0] {
		return nil, fmt.Errorf("%w: matmul %v x %v", ErrShape, a.shape, b.shape)
	}
	out := MustNew(a.shape[0], b.shape[1])
	if err := MatMulInto(out, a, b); err != nil {
		return nil, err
	}
	return out, nil
}

// MatVec multiplies a (m x k) matrix by a length-k vector into a length-m
// vector, accumulating in float64.
func MatVec(a *Tensor, x []float32) ([]float32, error) {
	if a.Rank() != 2 || a.shape[1] != len(x) {
		return nil, fmt.Errorf("%w: matvec %v x vec(%d)", ErrShape, a.shape, len(x))
	}
	m, k := a.shape[0], a.shape[1]
	out := make([]float32, m)
	for i := 0; i < m; i++ {
		out[i] = float32(Dot(a.Data[i*k:(i+1)*k], x))
	}
	return out, nil
}

// Im2Col lowers a [H, W, C] input into a matrix of shape
// [outH*outW, kh*kw*C] where each row is the receptive field of one output
// position, for convolution stride and symmetric zero padding pad.
// Out-of-bounds taps read as zero.
func Im2Col(x *Tensor, kh, kw, stride, pad int) (*Tensor, int, int, error) {
	return Im2ColRect(x, kh, kw, stride, pad, pad)
}

// Im2ColRect is Im2Col with independent vertical (padH) and horizontal
// (padW) zero padding, needed by the factorized 1x7/7x1 Inception kernels.
// It allocates a fresh matrix and delegates to Im2ColInto; hot paths
// should call Im2ColInto with a reused scratch buffer instead.
func Im2ColRect(x *Tensor, kh, kw, stride, padH, padW int) (*Tensor, int, int, error) {
	if x.Rank() != 3 {
		return nil, 0, 0, fmt.Errorf("%w: im2col wants [H W C], got %v", ErrShape, x.shape)
	}
	if stride <= 0 || kh <= 0 || kw <= 0 || padH < 0 || padW < 0 {
		return nil, 0, 0, fmt.Errorf("tensor: bad im2col geometry kh=%d kw=%d stride=%d padH=%d padW=%d", kh, kw, stride, padH, padW)
	}
	h, w, c := x.shape[0], x.shape[1], x.shape[2]
	outH := ConvOutDim(h, kh, stride, padH)
	outW := ConvOutDim(w, kw, stride, padW)
	if outH <= 0 || outW <= 0 {
		return nil, 0, 0, fmt.Errorf("tensor: im2col output collapses: in %v kernel %dx%d stride %d pad %d,%d", x.shape, kh, kw, stride, padH, padW)
	}
	cols := MustNew(outH*outW, kh*kw*c)
	if _, _, err := Im2ColInto(cols.Data, x, kh, kw, stride, padH, padW); err != nil {
		return nil, 0, 0, err
	}
	return cols, outH, outW, nil
}

// ConvOutDim returns the output spatial size for one dimension, or 0 when
// the kernel does not fit even once.
func ConvOutDim(in, k, stride, pad int) int {
	num := in + 2*pad - k
	if num < 0 {
		return 0
	}
	return num/stride + 1
}

// AllFinite reports whether every element is a finite number.
func (t *Tensor) AllFinite() bool {
	for _, v := range t.Data {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return false
		}
	}
	return true
}

// String summarizes the tensor for debugging.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v[%d elems]", t.shape, len(t.Data))
}
