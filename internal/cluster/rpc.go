package cluster

import (
	"errors"
	"fmt"
)

// Errors the RPC layer reports to call completions.
var (
	// ErrTimeout reports that every attempt of a call timed out.
	ErrTimeout = errors.New("cluster: rpc timeout")
	// ErrCrashed reports a call issued by a crashed endpoint.
	ErrCrashed = errors.New("cluster: endpoint crashed")
)

// HandlerFunc serves one method: it receives the virtual time, the
// caller id and the argument, and returns the reply, an optional
// service delay (the reply leaves the endpoint after that many ticks —
// how a node models request service time), and an error. Handler errors
// travel back to the caller as strings, like net/rpc.
type HandlerFunc func(now Tick, from int, arg any) (reply any, delay Tick, err error)

// CallOpts bounds one logical call.
type CallOpts struct {
	// Timeout is the per-attempt deadline in ticks (covers the round
	// trip plus the handler's service delay).
	Timeout Tick
	// Retries is the number of additional attempts after the first.
	Retries int
	// Backoff is the base of the deterministic exponential backoff
	// between attempts: attempt k (0-based) waits Backoff<<k plus a
	// seeded jitter in [0, Backoff) before resending. Zero disables the
	// wait (retry immediately at timeout).
	Backoff Tick
}

// pendingCall tracks one in-flight logical call.
type pendingCall struct {
	dst     int
	method  string
	arg     any
	opts    CallOpts
	attempt int
	done    func(now Tick, reply any, err error)
}

// Endpoint is one addressable participant on the fabric: a set of
// method handlers plus an asynchronous call client with per-request
// timeout, bounded retries, and deterministic exponential backoff with
// seeded jitter. Like the fabric, an endpoint is single-threaded: all
// handlers and completions run on the fabric's event loop.
type Endpoint struct {
	f        *Fabric
	id       int
	handlers map[string]HandlerFunc
	nextCall uint64
	pending  map[uint64]*pendingCall
}

// NewEndpoint registers a fresh endpoint with the fabric.
func NewEndpoint(f *Fabric, id int) *Endpoint {
	ep := &Endpoint{f: f, id: id, handlers: map[string]HandlerFunc{}, pending: map[uint64]*pendingCall{}}
	f.register(ep)
	return ep
}

// ID returns the endpoint's fabric address.
func (e *Endpoint) ID() int { return e.id }

// Alive reports whether the endpoint is not crashed.
func (e *Endpoint) Alive() bool { return !e.f.crashed[e.id] }

// Handle registers the handler for a method name.
func (e *Endpoint) Handle(method string, fn HandlerFunc) { e.handlers[method] = fn }

// Go starts an asynchronous call and invokes done exactly once: with
// the reply, with the remote error, or with ErrTimeout after the last
// attempt's deadline. A crashed caller's completions are suppressed
// (the node is gone; nobody is waiting).
func (e *Endpoint) Go(dst int, method string, arg any, opts CallOpts, done func(now Tick, reply any, err error)) {
	if !e.Alive() {
		return
	}
	if opts.Timeout == 0 {
		opts.Timeout = 20 * e.f.LinkDelay
	}
	e.nextCall++
	id := e.nextCall
	pc := &pendingCall{dst: dst, method: method, arg: arg, opts: opts, done: done}
	e.pending[id] = pc
	e.attempt(id, pc)
}

// attempt sends one transmission for the call and arms its deadline.
func (e *Endpoint) attempt(callID uint64, pc *pendingCall) {
	if !e.Alive() {
		delete(e.pending, callID)
		return
	}
	e.f.send(Message{From: e.id, To: pc.dst, Method: pc.method, CallID: callID, Payload: pc.arg})
	thisAttempt := pc.attempt
	e.f.After(pc.opts.Timeout, func(now Tick) {
		cur, ok := e.pending[callID]
		if !ok || cur.attempt != thisAttempt {
			return // completed, or a newer attempt owns the deadline
		}
		if cur.attempt >= cur.opts.Retries {
			delete(e.pending, callID)
			if e.Alive() {
				cur.done(now, nil, ErrTimeout)
			}
			return
		}
		cur.attempt++
		wait := Tick(0)
		if b := cur.opts.Backoff; b > 0 {
			// Deterministic exponential backoff with seeded jitter: the
			// jitter is a pure function of (seed, endpoint, call,
			// attempt), so two runs back off identically.
			wait = b << (cur.attempt - 1)
			wait += e.jitter(callID, cur.attempt) % b
		}
		e.f.After(wait, func(Tick) { e.attempt(callID, cur) })
	})
}

// jitter derives the deterministic backoff jitter for one retry.
func (e *Endpoint) jitter(callID uint64, attempt int) Tick {
	h := uint64(e.f.Faults.Seed) ^ 0x6a697474 // "jitt"
	for _, k := range [3]uint64{uint64(uint32(e.id)), callID, uint64(attempt)} {
		h ^= k
		h += 0x9e3779b97f4a7c15
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// deliver dispatches one arriving transmission: a reply completes its
// pending call; a request runs the handler and sends the reply (after
// the handler's service delay) back through the fabric, where it is
// subject to the same fault model as any other message.
func (e *Endpoint) deliver(now Tick, msg Message) {
	if msg.IsReply {
		pc, ok := e.pending[msg.CallID]
		if !ok {
			return // late, duplicate, or superseded reply
		}
		delete(e.pending, msg.CallID)
		if !e.Alive() {
			return
		}
		if msg.Err != "" {
			pc.done(now, nil, errors.New(msg.Err))
			return
		}
		pc.done(now, msg.Payload, nil)
		return
	}
	fn, ok := e.handlers[msg.Method]
	if !ok {
		e.replyAfter(0, msg, nil, fmt.Errorf("cluster: %d has no handler %q", e.id, msg.Method))
		return
	}
	reply, delay, err := fn(now, msg.From, msg.Payload)
	e.replyAfter(delay, msg, reply, err)
}

// replyAfter sends the response to msg after the handler's service
// delay.
func (e *Endpoint) replyAfter(delay Tick, msg Message, reply any, err error) {
	out := Message{From: e.id, To: msg.From, Method: msg.Method, CallID: msg.CallID, IsReply: true, Payload: reply}
	if err != nil {
		out.Err = err.Error()
	}
	if delay == 0 {
		e.f.send(out)
		return
	}
	e.f.After(delay, func(Tick) {
		if e.Alive() {
			e.f.send(out)
		}
	})
}
