package models

import "fmt"

// ResNet50 builds the standard ResNet-50 for 224x224x3 inputs: a 7x7
// stem, four stages of [3, 4, 6, 3] bottleneck residual blocks, global
// average pooling and the fc1000 classifier — 25.6M parameters (Table I:
// 25,640k with fc1000, 2048x1000, at ~8%).
func ResNet50(seed int64) (*Model, error) {
	b := newGraphBuilder(seed)
	// Stem.
	b.conv("conv1", 7, 7, 3, 64, 2, 3) // 112x112x64
	b.bn("conv1_bn", 64)
	b.relu("conv1_relu")
	b.maxpoolPadded("pool1", 3, 2, 1) // 56x56x64

	type stage struct {
		blocks int
		mid    int // bottleneck width
		out    int // expansion width
		stride int // stride of the first block
	}
	stages := []stage{
		{3, 64, 256, 1},
		{4, 128, 512, 2},
		{6, 256, 1024, 2},
		{3, 512, 2048, 2},
	}
	inC := 64
	prev := "pool1"
	for si, st := range stages {
		for bi := 0; bi < st.blocks; bi++ {
			name := fmt.Sprintf("res%d_%d", si+2, bi+1)
			stride := 1
			if bi == 0 {
				stride = st.stride
			}
			// Main path: 1x1 reduce -> 3x3 -> 1x1 expand.
			c1 := b.conv(name+"_a", 1, 1, inC, st.mid, stride, 0, prev)
			n1 := b.bn(name+"_a_bn", st.mid, c1)
			r1 := b.relu(name+"_a_relu", n1)
			c2 := b.conv(name+"_b", 3, 3, st.mid, st.mid, 1, 1, r1)
			n2 := b.bn(name+"_b_bn", st.mid, c2)
			r2 := b.relu(name+"_b_relu", n2)
			c3 := b.conv(name+"_c", 1, 1, st.mid, st.out, 1, 0, r2)
			n3 := b.bn(name+"_c_bn", st.out, c3)
			// Shortcut: identity, or projection when dims change.
			shortcut := prev
			if bi == 0 {
				sc := b.conv(name+"_proj", 1, 1, inC, st.out, stride, 0, prev)
				shortcut = b.bn(name+"_proj_bn", st.out, sc)
			}
			sum := b.addMerge(name+"_add", n3, shortcut)
			prev = b.relu(name+"_relu", sum)
			inC = st.out
		}
	}
	b.gap("avg_pool", prev) // [2048]
	b.dense("fc1000", 2048, 1000)
	b.softmax("softmax")
	m, err := b.finish(Info{
		Name:          "ResNet50",
		InputShape:    []int{224, 224, 3},
		SelectedLayer: "fc1000",
		SelectedKind:  "FC",
		PaperParamsK:  25640,
		PaperFraction: 0.08,
		Classes:       1000,
	})
	if err != nil {
		return nil, err
	}
	// Calibrated against Table II: amplitude 2*14.66 sigma — the widest of
	// the six models — reproduces fc1000's CR curve (1.21 -> ~13x over
	// delta 0..8%); sigma ~ 6.5e-3 lands the MSE near the paper's 1e-5
	// order.
	if err := retouchSelected(m, seed, 0.0065, 14.66); err != nil {
		return nil, err
	}
	return m, nil
}
