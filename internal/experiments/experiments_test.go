package experiments

import (
	"math"
	"testing"
)

func TestOptionsValidate(t *testing.T) {
	bad := DefaultOptions()
	bad.Probes = 0
	if err := bad.validate(); err == nil {
		t.Error("zero probes should error")
	}
	bad = DefaultOptions()
	bad.TrainEpochs = 0
	if err := bad.validate(); err == nil {
		t.Error("zero epochs should error")
	}
	if err := DefaultOptions().validate(); err != nil {
		t.Errorf("default options invalid: %v", err)
	}
	if err := FastOptions().validate(); err != nil {
		t.Errorf("fast options invalid: %v", err)
	}
}

func TestDeltaGrid(t *testing.T) {
	if g := DeltaGrid("LeNet-5"); g[len(g)-1] != 20 {
		t.Errorf("LeNet grid = %v", g)
	}
	if g := DeltaGrid("VGG-16"); g[len(g)-1] != 8 {
		t.Errorf("VGG grid = %v", g)
	}
	if g := DeltaGrid("ResNet50"); len(g) != 5 {
		t.Errorf("ResNet grid = %v", g)
	}
}

func TestSelectedBuilders(t *testing.T) {
	o := DefaultOptions()
	o.Models = []string{"LeNet-5", "MobileNet"}
	bs, err := o.selectedBuilders()
	if err != nil || len(bs) != 2 {
		t.Errorf("builders = %d, err %v", len(bs), err)
	}
	o.Models = []string{"NotANet"}
	if _, err := o.selectedBuilders(); err == nil {
		t.Error("unknown model should error")
	}
}

func TestTable1Fast(t *testing.T) {
	rows, err := Table1(FastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Model != "LeNet-5" {
		t.Fatalf("rows = %+v", rows)
	}
	r := rows[0]
	if r.Layer != "dense_1" || r.Kind != "FC" {
		t.Errorf("selected layer = %s (%s)", r.Layer, r.Kind)
	}
	// Parameter count within 5% of the paper's 62k.
	if math.Abs(float64(r.Params)-62000) > 3100 {
		t.Errorf("params = %d, want ~62000", r.Params)
	}
	// Fraction near the paper's 0.80.
	if math.Abs(r.Fraction-r.PaperFraction) > 0.06 {
		t.Errorf("fraction = %v, paper %v", r.Fraction, r.PaperFraction)
	}
}

func TestTable2Fast(t *testing.T) {
	rows, err := Table2(FastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 delta values", len(rows))
	}
	// CR and MSE must grow with delta; the delta=0 CR must sit near the
	// paper's 1.21.
	if math.Abs(rows[0].CR-1.21) > 0.08 {
		t.Errorf("CR at delta 0 = %v, want ~1.21", rows[0].CR)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].CR <= rows[i-1].CR {
			t.Errorf("CR not increasing at row %d: %v <= %v", i, rows[i].CR, rows[i-1].CR)
		}
	}
	last := rows[len(rows)-1]
	if last.CR < 3 || last.CR > 6 {
		t.Errorf("CR at delta 20%% = %v, paper reports 4.02", last.CR)
	}
	if last.WeightedCR >= last.CR || last.WeightedCR <= 1 {
		t.Errorf("weighted CR = %v vs CR %v", last.WeightedCR, last.CR)
	}
	if last.MemFpReduction <= 0 || last.MemFpReduction >= 1 {
		t.Errorf("mem fp reduction = %v", last.MemFpReduction)
	}
}

func TestTable3Fast(t *testing.T) {
	rows, err := Table3(FastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.QTCR < 2 {
			t.Errorf("quantization weighted CR = %v, expected > 2 (8-bit codes)", r.QTCR)
		}
		if r.WeightedCR < r.QTCR-0.2 {
			t.Errorf("combined CR %v fell below quantization-only %v", r.WeightedCR, r.QTCR)
		}
		if r.Accuracy < 0 || r.Accuracy > 1 {
			t.Errorf("accuracy out of range: %v", r.Accuracy)
		}
		if i > 0 && r.WeightedCR < rows[i-1].WeightedCR {
			t.Errorf("combined CR not monotone at %d", i)
		}
	}
	// Compression on top must add over quantization alone at high delta.
	if rows[len(rows)-1].WeightedCR <= rows[0].QTCR {
		t.Errorf("no gain on top of quantization: %v vs %v",
			rows[len(rows)-1].WeightedCR, rows[0].QTCR)
	}
}

func TestFig2Fast(t *testing.T) {
	rows, err := Fig2(FastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7 LeNet layers", len(rows))
	}
	var dense1 Fig2Row
	var totalMem, total uint64
	for _, r := range rows {
		if r.Latency.Total() != r.Cycles {
			t.Errorf("%s: breakdown %d != cycles %d", r.Layer, r.Latency.Total(), r.Cycles)
		}
		totalMem += r.Latency.Memory
		total += r.Cycles
		if r.Layer == "dense_1" {
			dense1 = r
		}
	}
	// The paper's conclusion: main memory dominates latency.
	if float64(totalMem)/float64(total) < 0.5 {
		t.Errorf("memory fraction = %v, want dominant", float64(totalMem)/float64(total))
	}
	// dense_1 holds ~78%% of parameters; it must be the slowest layer.
	for _, r := range rows {
		if r.Layer != "dense_1" && r.Cycles > dense1.Cycles {
			t.Errorf("%s (%d cycles) exceeds dense_1 (%d)", r.Layer, r.Cycles, dense1.Cycles)
		}
	}
	// Main memory dominates each layer's energy.
	for _, r := range rows {
		if r.Energy.MainDyn < r.Energy.CompDyn || r.Energy.MainDyn < r.Energy.CommDyn {
			t.Errorf("%s: main memory energy not dominant", r.Layer)
		}
	}
}

func TestFig3Fast(t *testing.T) {
	rows, err := Fig3(FastOptions())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Corpus] = r.EntropyBits
	}
	if byName["random"] < 7.9 {
		t.Errorf("random entropy = %v", byName["random"])
	}
	if byName["text"] > 6 {
		t.Errorf("text entropy = %v, should be well below random", byName["text"])
	}
	// The paper's point: weight streams are near the random upper bound
	// and far above text.
	le := byName["LeNet-5"]
	if le < byName["text"] || le < 6 {
		t.Errorf("LeNet weight entropy = %v, expected near-random", le)
	}
}

func TestFig9Fast(t *testing.T) {
	rows, err := Fig9(FastOptions())
	if err != nil {
		t.Fatal(err)
	}
	// LeNet has 5 parameterized layers.
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	maxSens, densByLayer := 0.0, map[string]float64{}
	for _, r := range rows {
		if r.Sensitivity < 0 || r.Sensitivity > 1 || r.PerParam < 0 || r.PerParam > 1 {
			t.Errorf("%s sensitivity = %v / %v out of [0,1]", r.Layer, r.Sensitivity, r.PerParam)
		}
		if r.Sensitivity > maxSens {
			maxSens = r.Sensitivity
		}
		densByLayer[r.Layer] = r.PerParam
		if r.Params <= 0 {
			t.Errorf("%s params = %d", r.Layer, r.Params)
		}
	}
	if maxSens != 1 {
		t.Errorf("normalized max sensitivity = %v, want 1", maxSens)
	}
	// The paper's Fig. 9 claim holds on the per-parameter density: the
	// selected layer (dense_1, the deepest large one) is far less
	// sensitive per parameter than the input convolution. At this test's
	// reduced training budget the perturbation sometimes fails to resolve
	// conv_1 at all; only assert the ordering when it did (the full-scale
	// run in cmd/benchtables resolves it deterministically).
	if densByLayer["conv_1"] > 0 && densByLayer["dense_1"] >= densByLayer["conv_1"] {
		t.Errorf("dense_1 density %v not below conv_1 %v; selection policy would be invalid",
			densByLayer["dense_1"], densByLayer["conv_1"])
	}
}

func TestFig10Fast(t *testing.T) {
	pts, err := Fig10(FastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 { // orig + 5 deltas
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Config != "orig" || pts[0].LatencyNorm != 1 || pts[0].EnergyNorm != 1 {
		t.Fatalf("first point = %+v", pts[0])
	}
	if pts[0].Accuracy < 0.7 {
		t.Errorf("trained LeNet accuracy = %v, expected >= 0.7", pts[0].Accuracy)
	}
	for i := 2; i < len(pts); i++ {
		if pts[i].LatencyNorm >= pts[i-1].LatencyNorm {
			t.Errorf("latency not decreasing with delta at %d: %v", i, pts[i].LatencyNorm)
		}
		if pts[i].EnergyNorm >= pts[i-1].EnergyNorm {
			t.Errorf("energy not decreasing with delta at %d: %v", i, pts[i].EnergyNorm)
		}
	}
	last := pts[len(pts)-1]
	if last.LatencyNorm > 0.85 {
		t.Errorf("latency at delta 20%% = %v of original, expected substantial reduction", last.LatencyNorm)
	}
	if last.EnergyNorm > 0.85 {
		t.Errorf("energy at delta 20%% = %v of original, expected substantial reduction", last.EnergyNorm)
	}
	// Accuracy at small delta must stay near the original.
	if pts[1].Accuracy < pts[0].Accuracy-0.1 {
		t.Errorf("delta 0%% accuracy dropped too far: %v vs %v", pts[1].Accuracy, pts[0].Accuracy)
	}
}

// TestFig10FidelityPathMobileNet exercises the fidelity (non-LeNet)
// evaluation path end to end on the smallest large model.
func TestFig10FidelityPathMobileNet(t *testing.T) {
	if testing.Short() {
		t.Skip("full-resolution MobileNet forwards in -short mode")
	}
	o := DefaultOptions()
	o.Models = []string{"MobileNet"}
	o.Probes = 2
	pts, err := Fig10(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Accuracy != 1 {
		t.Errorf("fidelity baseline = %v, want 1 by construction", pts[0].Accuracy)
	}
	for i, p := range pts {
		if p.Accuracy < 0 || p.Accuracy > 1 {
			t.Errorf("point %d accuracy = %v", i, p.Accuracy)
		}
		if i >= 2 && p.LatencyNorm >= pts[i-1].LatencyNorm {
			t.Errorf("latency not decreasing at %d", i)
		}
	}
	// MobileNet's selected layer is only ~24%% of parameters: savings are
	// marginal, as the paper reports.
	last := pts[len(pts)-1]
	if last.LatencyNorm < 0.9 {
		t.Errorf("MobileNet latency reduction %v too large; conv_preds is a small fraction", last.LatencyNorm)
	}
}

// TestTable2FidelityModels sweeps a large model's Table II rows (weights
// only, no inference) to cover the non-LeNet compression path.
func TestTable2FidelityModels(t *testing.T) {
	if testing.Short() {
		t.Skip("large model build in -short mode")
	}
	o := DefaultOptions()
	o.Models = []string{"MobileNet"}
	rows, err := Table2(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	last := rows[len(rows)-1]
	if last.CR < 3 || last.CR > 6 {
		t.Errorf("MobileNet CR at delta 8%% = %v, paper reports 4.31", last.CR)
	}
	if last.WeightedCR > 1.6 {
		t.Errorf("MobileNet weighted CR = %v, should stay small (paper 1.80 ceiling)", last.WeightedCR)
	}
}
