// NEON saxpy kernels for the runtime-dispatched matmul fast path
// (kernels_dispatch_arm64.go picks them at startup).
//
// Advanced SIMD is part of the ARMv8-A baseline, so these run on every
// arm64 machine. Each vector lane performs the exact scalar sequence of
// single-precision multiplies and adds — the four unrolled terms stay
// four sequential mul+add pairs — so results are bit-identical to the
// generic Go kernel, like the SSE2/AVX2 pairs on amd64. The fused
// FMLA form (one rounding per term) is deliberately NOT used: it would
// break the Float32bits identity contract the dispatcher requires for
// automatic selection.
//
// Go's arm64 assembler has no mnemonics for the UNfused vector FMUL and
// FADD (only the fused VFMLA/VFMLS), so those two instructions are
// emitted as WORD directives. Encodings, against fixed registers
// (verified against `go tool objdump`):
//
//	FMUL <Vd>.4S, <Vn>.4S, <Vm>.4S = 0x6E20DC00 | Vm<<16 | Vn<<5 | Vd
//	FADD <Vd>.4S, <Vn>.4S, <Vm>.4S = 0x4E20D400 | Vm<<16 | Vn<<5 | Vd

#include "textflag.h"

#define FMUL_V5_V5_V16 WORD $0x6E30DCA5 // V5.4S = V5.4S * V16.4S
#define FMUL_V5_V5_V17 WORD $0x6E31DCA5 // V5.4S = V5.4S * V17.4S
#define FMUL_V5_V5_V18 WORD $0x6E32DCA5 // V5.4S = V5.4S * V18.4S
#define FMUL_V5_V5_V19 WORD $0x6E33DCA5 // V5.4S = V5.4S * V19.4S
#define FADD_V4_V4_V5  WORD $0x4E25D484 // V4.4S = V4.4S + V5.4S

// func saxpy4NEON(orow []float32, a0, a1, a2, a3 float32, b0, b1, b2, b3 []float32)
//
// orow[j] += a0*b0[j]; += a1*b1[j]; += a2*b2[j]; += a3*b3[j]
// for j in [0, len(b0)).
TEXT ·saxpy4NEON(SB), NOSPLIT, $0-136
	MOVD orow_base+0(FP), R0
	MOVD b0_base+40(FP), R1
	MOVD b0_len+48(FP), R2
	MOVD b1_base+64(FP), R3
	MOVD b2_base+88(FP), R4
	MOVD b3_base+112(FP), R5

	// Broadcast the four a coefficients across V16..V19; the scalar
	// tail reads them back as F16..F19 (lane 0).
	FMOVS a0+24(FP), F16
	VDUP  V16.S[0], V16.S4
	FMOVS a1+28(FP), F17
	VDUP  V17.S[0], V17.S4
	FMOVS a2+32(FP), F18
	VDUP  V18.S[0], V18.S4
	FMOVS a3+36(FP), F19
	VDUP  V19.S[0], V19.S4

	LSR $2, R2, R6 // 4-wide iterations
	AND $3, R2, R7 // scalar tail elements

vec4:
	CBZ    R6, tail
	VLD1   (R0), [V4.S4]       // v = orow[j:j+4]
	VLD1.P 16(R1), [V5.S4]
	FMUL_V5_V5_V16
	FADD_V4_V4_V5              // v += a0*b0[j:j+4]
	VLD1.P 16(R3), [V5.S4]
	FMUL_V5_V5_V17
	FADD_V4_V4_V5              // v += a1*b1[j:j+4]
	VLD1.P 16(R4), [V5.S4]
	FMUL_V5_V5_V18
	FADD_V4_V4_V5              // v += a2*b2[j:j+4]
	VLD1.P 16(R5), [V5.S4]
	FMUL_V5_V5_V19
	FADD_V4_V4_V5              // v += a3*b3[j:j+4]
	VST1.P [V4.S4], 16(R0)
	SUB    $1, R6
	B      vec4

tail:
	CBZ     R7, done
	FMOVS   (R0), F4
	FMOVS.P 4(R1), F5
	FMULS   F16, F5, F5
	FADDS   F5, F4, F4
	FMOVS.P 4(R3), F5
	FMULS   F17, F5, F5
	FADDS   F5, F4, F4
	FMOVS.P 4(R4), F5
	FMULS   F18, F5, F5
	FADDS   F5, F4, F4
	FMOVS.P 4(R5), F5
	FMULS   F19, F5, F5
	FADDS   F5, F4, F4
	FMOVS.P F4, 4(R0)
	SUB     $1, R7
	B       tail

done:
	RET

// func saxpy1NEON(orow []float32, a float32, brow []float32)
//
// orow[j] += a*brow[j] for j in [0, len(brow)).
TEXT ·saxpy1NEON(SB), NOSPLIT, $0-56
	MOVD orow_base+0(FP), R0
	MOVD brow_base+32(FP), R1
	MOVD brow_len+40(FP), R2

	FMOVS a+24(FP), F16
	VDUP  V16.S[0], V16.S4

	LSR $2, R2, R6
	AND $3, R2, R7

vec1:
	CBZ    R6, tail1
	VLD1   (R0), [V4.S4]
	VLD1.P 16(R1), [V5.S4]
	FMUL_V5_V5_V16
	FADD_V4_V4_V5
	VST1.P [V4.S4], 16(R0)
	SUB    $1, R6
	B      vec1

tail1:
	CBZ     R7, done1
	FMOVS   (R0), F4
	FMOVS.P 4(R1), F5
	FMULS   F16, F5, F5
	FADDS   F5, F4, F4
	FMOVS.P F4, 4(R0)
	SUB     $1, R7
	B       tail1

done1:
	RET
