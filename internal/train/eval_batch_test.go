package train

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// deepConvNet builds a narrow-spatial, wide-channel graph whose conv
// weight panels dominate the im2col matrices, so evalBatchSize elects
// the batched path.
func deepConvNet(t testing.TB) *nn.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	g := nn.NewGraph()
	c1, err := nn.NewConv2D("c1", 3, 3, 16, 32, 1, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	g.MustAdd(c1)
	g.MustAdd(nn.NewReLU("r1"))
	c2, err := nn.NewConv2D("c2", 3, 3, 32, 32, 1, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	g.MustAdd(c2)
	g.MustAdd(nn.NewReLU("r2"))
	g.MustAdd(nn.NewGlobalAvgPool("gap"))
	d, err := nn.NewDense("fc", 32, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	g.MustAdd(d)
	g.MustAdd(nn.NewSoftmax("sm"))
	return g
}

// TestEvalBatchSizeHeuristic pins the batching decision: deep
// narrow-spatial graphs batch, spatial-heavy and conv-free graphs do
// not, and MaxEvalBatch <= 1 is a global opt-out.
func TestEvalBatchSizeHeuristic(t *testing.T) {
	deep := deepConvNet(t)
	if bs := evalBatchSize(deep, []int{4, 4, 16}, 100); bs <= 1 {
		t.Errorf("deep conv net got batch size %d, want > 1", bs)
	}
	if bs := evalBatchSize(deep, []int{4, 4, 16}, 1); bs != 1 {
		t.Errorf("single sample got batch size %d, want 1", bs)
	}
	mlp := tinyMLP(t)
	if bs := evalBatchSize(mlp, []int{dataset.DigitSize, dataset.DigitSize, 1}, 100); bs != 1 {
		t.Errorf("conv-free graph got batch size %d, want 1", bs)
	}
	// Spatial-heavy conv: cols dwarf the weights, batching is a loss.
	rng := rand.New(rand.NewSource(6))
	wide := nn.NewGraph()
	c, err := nn.NewConv2D("c", 5, 5, 1, 6, 1, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	wide.MustAdd(c)
	if bs := evalBatchSize(wide, []int{28, 28, 1}, 100); bs != 1 {
		t.Errorf("spatial-heavy conv got batch size %d, want 1", bs)
	}
	old := MaxEvalBatch
	defer func() { MaxEvalBatch = old }()
	MaxEvalBatch = 1
	if bs := evalBatchSize(deep, []int{4, 4, 16}, 100); bs != 1 {
		t.Errorf("MaxEvalBatch=1 got batch size %d, want 1", bs)
	}
}

// TestBatchedEvalByteIdentical pins every evaluator to identical
// results across worker counts and batch caps, on a graph where the
// batched path actually engages. MaxEvalBatch=1 is the per-sample
// reference, so this is the batched-vs-legacy equivalence proof; run
// under -race it also exercises the per-worker BatchRunner isolation.
func TestBatchedEvalByteIdentical(t *testing.T) {
	g := deepConvNet(t)
	const n = 23
	rng := rand.New(rand.NewSource(77))
	probes := make([]*tensor.Tensor, n)
	samples := make([]dataset.Sample, n)
	for i := range probes {
		x := tensor.MustNew(4, 4, 16)
		x.RandNormal(rng, 0, 1)
		probes[i] = x
		samples[i] = dataset.Sample{Image: x, Label: i % 10}
	}
	f, err := NewFidelity(g, probes, 5)
	if err != nil {
		t.Fatal(err)
	}
	acts := make([]map[string]*tensor.Tensor, n)
	for i, x := range probes {
		a, err := g.ForwardAll(x)
		if err != nil {
			t.Fatal(err)
		}
		acts[i] = a
	}

	old := MaxEvalBatch
	defer func() { MaxEvalBatch = old }()

	type result struct{ acc, score, overlap, scoreFrom, overlapFrom float64 }
	var want result
	first := true
	for _, cap := range []int{1, 2, 32} {
		MaxEvalBatch = cap
		for _, workers := range []int{1, 2, 4, 64} {
			var got result
			if got.acc, err = AccuracyWorkers(g, samples, workers); err != nil {
				t.Fatal(err)
			}
			if got.score, err = f.ScoreWorkers(g, probes, workers); err != nil {
				t.Fatal(err)
			}
			if got.overlap, err = f.OverlapWorkers(g, probes, workers); err != nil {
				t.Fatal(err)
			}
			if got.scoreFrom, err = f.ScoreFromWorkers(g, acts, "c2", workers); err != nil {
				t.Fatal(err)
			}
			if got.overlapFrom, err = f.OverlapFromWorkers(g, acts, "c2", workers); err != nil {
				t.Fatal(err)
			}
			if first {
				want = got
				first = false
			} else if got != want {
				t.Fatalf("batch=%d workers=%d: %+v != reference %+v", cap, workers, got, want)
			}
		}
	}
}
