package tensor

import "fmt"

// Col2Im scatters a column-matrix gradient back to the [H, W, C] input
// layout, the adjoint of Im2Col: overlapping receptive-field contributions
// accumulate. cols must have shape [outH*outW, kh*kw*C] for the given
// geometry.
func Col2Im(cols *Tensor, h, w, c, kh, kw, stride, pad int) (*Tensor, error) {
	return Col2ImRect(cols, h, w, c, kh, kw, stride, pad, pad)
}

// Col2ImRect is Col2Im with independent vertical and horizontal padding,
// the adjoint of Im2ColRect.
func Col2ImRect(cols *Tensor, h, w, c, kh, kw, stride, padH, padW int) (*Tensor, error) {
	if cols.Rank() != 2 {
		return nil, fmt.Errorf("%w: col2im wants rank-2 cols, got %v", ErrShape, cols.Shape())
	}
	if stride <= 0 || kh <= 0 || kw <= 0 || padH < 0 || padW < 0 || h <= 0 || w <= 0 || c <= 0 {
		return nil, fmt.Errorf("tensor: bad col2im geometry")
	}
	outH := ConvOutDim(h, kh, stride, padH)
	outW := ConvOutDim(w, kw, stride, padW)
	if cols.Dim(0) != outH*outW || cols.Dim(1) != kh*kw*c {
		return nil, fmt.Errorf("%w: col2im cols %v for geometry %dx%dx%d k%dx%d s%d p%d,%d",
			ErrShape, cols.Shape(), h, w, c, kh, kw, stride, padH, padW)
	}
	x := MustNew(h, w, c)
	row := 0
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			src := cols.Data[row*kh*kw*c : (row+1)*kh*kw*c]
			si := 0
			for ky := 0; ky < kh; ky++ {
				iy := oy*stride + ky - padH
				if iy < 0 || iy >= h {
					si += kw * c
					continue
				}
				for kx := 0; kx < kw; kx++ {
					ix := ox*stride + kx - padW
					if ix < 0 || ix >= w {
						si += c
						continue
					}
					dst := x.Data[(iy*w+ix)*c : (iy*w+ix)*c+c]
					for j := 0; j < c; j++ {
						dst[j] += src[si+j]
					}
					si += c
				}
			}
			row++
		}
	}
	return x, nil
}
