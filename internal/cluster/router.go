package cluster

import (
	"repro/internal/obs"
)

// RouterStats is the request-plane outcome accounting. Everything is
// derived from virtual time, so the struct is byte-identical for a
// fixed Spec at any worker count.
type RouterStats struct {
	Requests       int // issued
	Served         int // completed consistently within the deadline
	Failed         int // no consistent version reachable, or deadline passed
	ServedStale    int // served, but at an older epoch than the router's target
	ReducedReplica int // served with at least one shard down to its last live replica
	FailedOver     int // replica fail-overs performed
	MixedVersion   int // requests whose shard responses mixed versions (must stay 0)
}

// request tracks one client request's fan-out across shards.
type request struct {
	id       int
	start    Tick
	deadline Tick
	version  int // epoch this attempt targets — identical for every shard
	pending  int
	failed   bool
	reduced  bool
	versions []int // per-shard version used, for the mixed-version check
}

// Router fans client requests out over the model shards, balances
// replicas, fails over away from dead or partitioned nodes, and
// degrades gracefully instead of erroring:
//
//  1. replica fail-over — every shard tries its replicas in a
//     deterministic per-request rotation;
//  2. previous-epoch fallback — if any shard cannot serve the target
//     version, the whole request restarts one epoch back, so the
//     response is stale but never mixed;
//  3. reduced-replica mode — a shard down to one live replica still
//     serves (counted, so sweeps can see the margin vanish);
//
// and only when some shard is unreachable at every epoch does the
// request fail. The router learns rollout progress from the Active
// version piggybacked on inference replies: the target only moves to an
// epoch some node has committed-activated, and moves monotonically.
type Router struct {
	c      *Cluster
	ep     *Endpoint
	target int // highest committed-activated epoch observed
	floor  int // lowest epoch any plan provides (fallback limit)
	stats  RouterStats

	latencies []Tick // per served request, appended in completion order
	byVersion map[int]int
}

// newRouter wires the router endpoint.
func newRouter(c *Cluster, id int) *Router {
	r := &Router{c: c, ep: NewEndpoint(c.fabric, id), target: c.minVersion, floor: c.minVersion, byVersion: map[int]int{}}
	return r
}

// submit starts one client request at the router's current target
// epoch.
func (r *Router) submit(now Tick, id int) {
	r.stats.Requests++
	req := &request{
		id:       id,
		start:    now,
		deadline: now + r.c.spec.RequestDeadline,
		version:  r.target,
		pending:  r.c.spec.Shards,
		versions: make([]int, r.c.spec.Shards),
	}
	for s := 0; s < r.c.spec.Shards; s++ {
		r.shardCall(now, req, s, 0)
	}
}

// replicaOrder returns the shard's replicas rotated deterministically
// per request, so load spreads without randomness.
func (r *Router) replicaOrder(req *request, shard int) []int {
	reps := r.c.shardReplicas[shard]
	if len(reps) == 0 {
		return nil
	}
	rot := (req.id + shard) % len(reps)
	out := make([]int, 0, len(reps))
	out = append(out, reps[rot:]...)
	out = append(out, reps[:rot]...)
	return out
}

// shardCall tries the shard's replicas from position idx onward.
func (r *Router) shardCall(now Tick, req *request, shard, idx int) {
	if req.failed {
		return
	}
	order := r.replicaOrder(req, shard)
	if idx >= len(order) {
		r.shardExhausted(now, req)
		return
	}
	node := order[idx]
	live := r.liveReplicas(shard)
	r.ep.Go(node, "Node.Infer", inferArgs{Version: req.version, ReqID: req.id},
		CallOpts{Timeout: r.c.spec.RequestTimeout, Retries: r.c.spec.RequestRetries, Backoff: r.c.fabric.LinkDelay},
		func(at Tick, reply any, err error) {
			if req.failed {
				return
			}
			if err != nil {
				r.stats.FailedOver++
				r.shardCall(at, req, shard, idx+1)
				return
			}
			rep := reply.(inferReply)
			if rep.Active > r.target && r.c.hasPlan(rep.Active) {
				// Gossip: some node committed a newer epoch. Future
				// requests move to it; this one finishes where it started.
				r.target = rep.Active
			}
			if rep.Version != req.version {
				// A node served a version it was not asked for — the
				// defect the chaos suite exists to catch.
				r.stats.MixedVersion++
				req.failed = true
				r.stats.Failed++
				return
			}
			req.versions[shard] = rep.Version
			if live <= 1 {
				req.reduced = true
			}
			req.pending--
			if req.pending == 0 {
				r.complete(at, req)
			}
		})
}

// liveReplicas counts the shard's currently reachable replicas (router
// omniscience is fine here — the count only feeds the reduced-replica
// statistic, not routing decisions).
func (r *Router) liveReplicas(shard int) int {
	n := 0
	for _, rep := range r.c.shardReplicas[shard] {
		if r.c.fabric.reachable(r.ep.id, rep) {
			n++
		}
	}
	return n
}

// shardExhausted handles a shard with no replica serving the target
// epoch: degrade the whole request one epoch back, or fail.
func (r *Router) shardExhausted(now Tick, req *request) {
	if req.failed {
		return
	}
	req.failed = true // abandon the current fan-out
	if req.version > r.floor && now < req.deadline {
		// Restart the entire request at the previous epoch: every shard
		// re-issues, so the response stays single-version.
		next := &request{
			id:       req.id,
			start:    req.start,
			deadline: req.deadline,
			version:  req.version - 1,
			pending:  r.c.spec.Shards,
			versions: make([]int, r.c.spec.Shards),
		}
		for s := 0; s < r.c.spec.Shards; s++ {
			r.shardCall(now, next, s, 0)
		}
		return
	}
	r.stats.Failed++
}

// complete finishes a consistently served request.
func (r *Router) complete(now Tick, req *request) {
	for _, v := range req.versions {
		if v != req.version {
			r.stats.MixedVersion++
			r.stats.Failed++
			return
		}
	}
	if now > req.deadline {
		r.stats.Failed++
		return
	}
	r.stats.Served++
	if req.version < r.target {
		r.stats.ServedStale++
	}
	if req.reduced {
		r.stats.ReducedReplica++
	}
	r.byVersion[req.version]++
	r.latencies = append(r.latencies, now-req.start)
	if m := r.c.obsv.M(); m != nil {
		m.Counter("cluster_requests_served").Inc()
		m.Histogram("cluster_request_latency_ticks", obs.Pow2Buckets(32)).Observe(now - req.start)
	}
}
