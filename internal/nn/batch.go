package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Batched evaluation. A BatchRunner runs a graph over N same-shaped
// inputs at once so the heavy layers amortize per-call overheads: the
// convolution fast path stacks the N im2col matrices and issues one
// (N·oh·ow)×k matmul against the shared weights, keeping the weight
// panel hot in cache across the whole batch instead of re-streaming it
// per sample.
//
// Bit-identity is the same hard contract as the scratch kernels: every
// fast path performs, per output element, exactly the per-sample
// accumulation sequence (batching a matmul only appends independent
// rows; element-wise and per-sample kernels simply loop), and layers
// without a fast path fall back to their per-sample ForwardScratch with
// the result copied into the batch buffer. The equivalence tests in
// batch_test.go pin outputs against the per-sample Runner with
// Float32bits.

// batchTensor is a batch of n same-shaped activations: either a
// contiguous [n * vol] backing array with cached per-sample views, or
// (for graph inputs and cached prefix activations) just per-sample
// views over caller-owned tensors.
type batchTensor struct {
	data  []float32 // nil for view-only batches
	n     int
	vol   int
	dims  []int
	views []*tensor.Tensor
}

// sample returns the i-th per-sample view.
func (bt *batchTensor) sample(i int) *tensor.Tensor { return bt.views[i] }

// rowData returns the i-th sample's backing data.
func (bt *batchTensor) rowData(i int) []float32 {
	if bt.data != nil {
		return bt.data[i*bt.vol : (i+1)*bt.vol]
	}
	return bt.views[i].Data
}

// BatchRunner executes a Graph over batches of same-shaped inputs with
// a persistent Scratch. Like Runner it is single-goroutine state over
// the shared read-only graph; create one per worker. All returned
// tensors are owned by the BatchRunner and valid until its next call.
type BatchRunner struct {
	g   *Graph
	s   *Scratch
	bts map[string]*batchTensor
	xs  []*tensor.Tensor // per-sample fallback input scratch
	out []*tensor.Tensor // returned output views
}

// WithBatch returns a BatchRunner over g with a fresh scratch arena.
func (g *Graph) WithBatch() *BatchRunner {
	return &BatchRunner{
		g:   g,
		s:   NewScratch(),
		bts: make(map[string]*batchTensor, len(g.order)+1),
	}
}

// ForwardBatch runs the graph on the batch xs (all the same shape) and
// returns one output view per sample, bit-identical to running each
// sample through Runner.Forward. The views are owned by the BatchRunner
// and valid until its next call.
func (b *BatchRunner) ForwardBatch(xs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(b.g.order) == 0 {
		return nil, fmt.Errorf("nn: empty graph")
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("nn: empty batch")
	}
	for _, x := range xs[1:] {
		if !sameDims(x, xs[0]) {
			return nil, fmt.Errorf("%w: batch mixes shapes %v and %v", ErrShape, xs[0].Shape(), x.Shape())
		}
	}
	b.setViewBatch(InputName, xs)
	if err := b.run(0, len(xs)); err != nil {
		return nil, err
	}
	return b.outputs(len(xs)), nil
}

// ForwardFromBatch re-executes the graph from the named layer
// (inclusive) over a batch of cached prefix activations — acts[i] must
// be the ForwardAll result for sample i — and returns one output view
// per sample, bit-identical to Runner.ForwardFrom on each sample. acts
// is not modified.
func (b *BatchRunner) ForwardFromBatch(acts []map[string]*tensor.Tensor, from string) ([]*tensor.Tensor, error) {
	if len(acts) == 0 {
		return nil, fmt.Errorf("nn: empty batch")
	}
	start := -1
	for i, name := range b.g.order {
		if name == from {
			start = i
			break
		}
	}
	if start < 0 {
		return nil, fmt.Errorf("nn: unknown layer %q", from)
	}
	// Stage the prefix activations each suffix node reads: any input
	// whose producer runs before `start` (or the graph input) becomes a
	// view-only batch over the cached per-sample tensors.
	suffix := make(map[string]bool, len(b.g.order)-start)
	for _, name := range b.g.order[start:] {
		suffix[name] = true
	}
	staged := make(map[string]bool)
	for _, name := range b.g.order[start:] {
		for _, in := range b.g.nodes[name].inputs {
			if suffix[in] || staged[in] {
				continue
			}
			views := make([]*tensor.Tensor, len(acts))
			for i, m := range acts {
				a, ok := m[in]
				if !ok || a == nil {
					return nil, fmt.Errorf("nn: batch sample %d: missing activation for %q", i, in)
				}
				if i > 0 && !sameDims(a, views[0]) {
					return nil, fmt.Errorf("%w: batch mixes shapes for %q", ErrShape, in)
				}
				views[i] = a
			}
			b.setViewBatch(in, views)
			staged[in] = true
		}
	}
	if err := b.run(start, len(acts)); err != nil {
		return nil, err
	}
	return b.outputs(len(acts)), nil
}

// outputs collects the per-sample output views.
func (b *BatchRunner) outputs(n int) []*tensor.Tensor {
	b.out = b.out[:0]
	bt := b.bts[b.g.output]
	for i := 0; i < n; i++ {
		b.out = append(b.out, bt.sample(i))
	}
	return b.out
}

// setViewBatch installs a view-only batch over caller-owned tensors.
func (b *BatchRunner) setViewBatch(name string, xs []*tensor.Tensor) {
	bt := b.bts[name]
	if bt == nil {
		bt = &batchTensor{}
		b.bts[name] = bt
	}
	bt.data = nil
	bt.n = len(xs)
	bt.vol = xs[0].Size()
	bt.dims = append(bt.dims[:0], xs[0].Shape()...)
	bt.views = append(bt.views[:0], xs...)
}

// batchFor returns the named contiguous batch buffer with n samples of
// the given shape, reusing the previous backing array and per-sample
// views when nothing changed (the steady state).
func (b *BatchRunner) batchFor(name string, n int, dims ...int) (*batchTensor, error) {
	vol := 1
	for _, d := range dims {
		vol *= d
	}
	data := b.s.Floats(name, "/batch", n*vol)
	bt := b.bts[name]
	if bt == nil {
		bt = &batchTensor{}
		b.bts[name] = bt
	}
	if bt.n == n && bt.vol == vol && len(bt.views) == n &&
		len(bt.data) == len(data) && (len(data) == 0 || &bt.data[0] == &data[0]) &&
		shapeEq(bt.dims, dims) {
		return bt, nil
	}
	bt.data = data
	bt.n = n
	bt.vol = vol
	bt.dims = append(bt.dims[:0], dims...)
	bt.views = bt.views[:0]
	for i := 0; i < n; i++ {
		v, err := tensor.FromSlice(data[i*vol:(i+1)*vol], dims...)
		if err != nil {
			return nil, err
		}
		bt.views = append(bt.views, v)
	}
	return bt, nil
}

// aliasBatch installs a batch that reshapes in's samples without
// copying (Flatten).
func (b *BatchRunner) aliasBatch(name string, in *batchTensor, dims ...int) (*batchTensor, error) {
	vol := 1
	for _, d := range dims {
		vol *= d
	}
	bt := b.bts[name]
	if bt == nil {
		bt = &batchTensor{}
		b.bts[name] = bt
	}
	// Views alias the input samples' data, so they must be rebuilt
	// whenever the input views changed; checking the first and last
	// backing pointers covers the arena steady state.
	if bt.n == in.n && bt.vol == vol && len(bt.views) == in.n && shapeEq(bt.dims, dims) &&
		in.n > 0 && len(bt.views[0].Data) > 0 && len(in.views[0].Data) > 0 &&
		&bt.views[0].Data[0] == &in.views[0].Data[0] &&
		&bt.views[in.n-1].Data[0] == &in.views[in.n-1].Data[0] {
		bt.data = in.data
		return bt, nil
	}
	bt.data = in.data
	bt.n = in.n
	bt.vol = vol
	bt.dims = append(bt.dims[:0], dims...)
	bt.views = bt.views[:0]
	for i := 0; i < in.n; i++ {
		v, err := tensor.FromSlice(in.views[i].Data, dims...)
		if err != nil {
			return nil, err
		}
		bt.views = append(bt.views, v)
	}
	return bt, nil
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// run executes nodes order[start:] over the staged batches.
func (b *BatchRunner) run(start, n int) error {
	for _, name := range b.g.order[start:] {
		nd := b.g.nodes[name]
		var err error
		if len(nd.inputs) == 1 {
			in, ok := b.bts[nd.inputs[0]]
			if !ok {
				return fmt.Errorf("nn: layer %q: missing activation for %q", name, nd.inputs[0])
			}
			err = b.forwardFast(name, nd.layer, in, n)
		} else {
			err = b.forwardFallback(name, nd, n)
		}
		if err != nil {
			return fmt.Errorf("nn: layer %q: %w", name, err)
		}
	}
	return nil
}

// forwardFast dispatches single-input layers to their batched kernels,
// falling back to the per-sample path for everything else.
func (b *BatchRunner) forwardFast(name string, l Layer, in *batchTensor, n int) error {
	switch l := l.(type) {
	case *Conv2D:
		return b.batchConv(name, l, in, n)
	case *Dense:
		return b.batchDense(name, l, in, n)
	case *ReLU:
		out, err := b.batchFor(name, n, in.dims...)
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			src := in.rowData(i)
			dst := out.rowData(i)
			for j, v := range src {
				if v < 0 {
					v = 0
				} else if l.Max > 0 && v > l.Max {
					v = l.Max
				}
				dst[j] = v
			}
		}
		return nil
	case *Softmax:
		out, err := b.batchFor(name, n, in.dims...)
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			softmaxInto(out.rowData(i), in.rowData(i))
		}
		return nil
	case *Flatten:
		_, err := b.aliasBatch(name, in, in.vol)
		return err
	case *Pool2D:
		oh, ow, err := l.checkInput(in.sample(0))
		if err != nil {
			return err
		}
		out, err := b.batchFor(name, n, oh, ow, in.sample(0).Dim(2))
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			l.forwardInto(out.rowData(i), in.sample(i), oh, ow)
		}
		return nil
	case *GlobalAvgPool:
		x0 := in.sample(0)
		if x0.Rank() != 3 {
			return fmt.Errorf("%w: gap %q wants [H W C], got %v", ErrShape, name, x0.Shape())
		}
		c := x0.Dim(2)
		out, err := b.batchFor(name, n, c)
		if err != nil {
			return err
		}
		acc := b.s.Float64s(name, "/bacc", c)
		for i := 0; i < n; i++ {
			clear(acc)
			l.forwardInto(out.rowData(i), in.sample(i), acc)
		}
		return nil
	case *DepthwiseConv2D:
		oh, ow, err := l.checkInput(in.sample(0))
		if err != nil {
			return err
		}
		out, err := b.batchFor(name, n, oh, ow, l.C)
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			row := out.rowData(i)
			clear(row) // forwardInto accumulates
			l.forwardInto(row, in.sample(i), oh, ow)
		}
		return nil
	default:
		return b.forwardFallback(name, b.g.nodes[name], n)
	}
}

// batchConv stacks the batch's im2col matrices and multiplies once:
// y[(n·oh·ow) x outC] = cols[(n·oh·ow) x k] · W. Matmul rows are
// independent, so the stacked product is the per-sample product
// bit-for-bit.
func (b *BatchRunner) batchConv(name string, l *Conv2D, in *batchTensor, n int) error {
	x0 := in.sample(0)
	if err := l.checkInput(x0); err != nil {
		return err
	}
	oh := tensor.ConvOutDim(x0.Dim(0), l.KH, l.Stride, l.PadH)
	ow := tensor.ConvOutDim(x0.Dim(1), l.KW, l.Stride, l.PadW)
	rows := oh * ow
	k := l.KH * l.KW * l.InC
	cols := b.s.Floats(name, "/bcols", n*rows*k)
	for i := 0; i < n; i++ {
		if _, _, err := tensor.Im2ColInto(cols[i*rows*k:(i+1)*rows*k], in.sample(i), l.KH, l.KW, l.Stride, l.PadH, l.PadW); err != nil {
			return err
		}
	}
	colsT, err := b.s.View(name, "/bcolsT", cols, n*rows, k)
	if err != nil {
		return err
	}
	out, err := b.batchFor(name, n, oh, ow, l.OutC)
	if err != nil {
		return err
	}
	y, err := b.s.View(name, "/by", out.data, n*rows, l.OutC)
	if err != nil {
		return err
	}
	if err := tensor.MatMulInto(y, colsT, l.W); err != nil {
		return err
	}
	l.addBias(out.data, n*rows)
	return nil
}

// batchDense runs the per-sample float64-accumulated product over the
// batch with one shared accumulator buffer.
func (b *BatchRunner) batchDense(name string, l *Dense, in *batchTensor, n int) error {
	if in.vol != l.In {
		return fmt.Errorf("%w: dense %q wants %d inputs, got %d", ErrShape, name, l.In, in.vol)
	}
	out, err := b.batchFor(name, n, l.Out)
	if err != nil {
		return err
	}
	acc := b.s.Float64s(name, "/bacc", l.Out)
	for i := 0; i < n; i++ {
		clear(acc)
		l.forwardInto(out.rowData(i), in.rowData(i), acc)
	}
	return nil
}

// forwardFallback runs the node per sample through its ForwardScratch
// (or Forward) and copies each result into the batch buffer — the path
// for multi-input layers (Add, Concat) and layers without a batched
// kernel (BatchNorm, Reshape).
func (b *BatchRunner) forwardFallback(name string, nd *node, n int) error {
	ins := make([]*batchTensor, len(nd.inputs))
	for i, inName := range nd.inputs {
		bt, ok := b.bts[inName]
		if !ok {
			return fmt.Errorf("missing activation for %q", inName)
		}
		ins[i] = bt
	}
	var out *batchTensor
	for i := 0; i < n; i++ {
		xs := b.xs[:0]
		for _, bt := range ins {
			xs = append(xs, bt.sample(i))
		}
		b.xs = xs[:0]
		var y *tensor.Tensor
		var err error
		if sl, ok := nd.layer.(ScratchLayer); ok {
			y, err = sl.ForwardScratch(xs, b.s)
		} else {
			y, err = nd.layer.Forward(xs)
		}
		if err != nil {
			return err
		}
		if out == nil {
			// The output shape is only known after the first sample.
			if out, err = b.batchFor(name, n, y.Shape()...); err != nil {
				return err
			}
		}
		// Copy before the next sample reuses the layer's scratch.
		copy(out.rowData(i), y.Data)
	}
	return nil
}
