package core

import (
	"errors"
	"fmt"
)

// FSMState is the state of the decompression unit's control FSM (Fig. 6).
type FSMState int8

// The two FSM states of the paper's decompression unit, plus Idle for a
// unit with no segment loaded.
const (
	StateIdle FSMState = iota
	StateInit          // emit w~_1 = q
	StateRun           // emit w~_j = w~_{j-1} + m
)

// String implements fmt.Stringer.
func (s FSMState) String() string {
	switch s {
	case StateInit:
		return "init"
	case StateRun:
		return "run"
	default:
		return "idle"
	}
}

// ErrBusy is returned by Load when the unit has not finished the current
// segment.
var ErrBusy = errors.New("core: decompression unit busy")

// DecompressionUnit is a cycle-level model of the hardware decompressor
// embedded in each PE: a two-state FSM driving an accumulator datapath.
// One approximated weight is produced per clock cycle; no multiplier is
// used. The arithmetic is float32, the datapath width.
//
// The zero value is an idle unit ready for Load.
type DecompressionUnit struct {
	state     FSMState
	m, q, acc float32
	remaining int
	cycles    uint64 // total cycles ticked while non-idle
	produced  uint64 // total weights emitted
}

// Load accepts a compressed segment <m, q, len>. It fails with ErrBusy
// if the previous segment has not been fully regenerated, with an error
// for non-positive lengths, and with ErrNonFinite for NaN or Inf
// coefficients — the accumulator would otherwise replicate the poison
// across the entire segment, the amplification failure mode raw weight
// storage does not have.
func (u *DecompressionUnit) Load(s Segment) error {
	if u.state != StateIdle {
		return ErrBusy
	}
	if s.Len <= 0 {
		return errors.New("core: segment length must be positive")
	}
	if !finite32(s.M) || !finite32(s.Q) {
		return fmt.Errorf("%w: m=%v q=%v", ErrNonFinite, s.M, s.Q)
	}
	u.m, u.q = s.M, s.Q
	u.remaining = s.Len
	u.state = StateInit
	return nil
}

// Tick advances the unit by one clock cycle. When the unit is active it
// emits exactly one approximated weight per cycle and reports valid=true.
// Ticking an idle unit is a no-op that reports valid=false.
func (u *DecompressionUnit) Tick() (w float32, valid bool) {
	switch u.state {
	case StateInit:
		u.acc = u.q
	case StateRun:
		u.acc += u.m
	default:
		return 0, false
	}
	u.cycles++
	u.produced++
	u.remaining--
	if u.remaining == 0 {
		u.state = StateIdle
	} else {
		u.state = StateRun
	}
	return u.acc, true
}

// State returns the current FSM state.
func (u *DecompressionUnit) State() FSMState { return u.state }

// Cycles returns the total active cycles consumed so far.
func (u *DecompressionUnit) Cycles() uint64 { return u.cycles }

// Produced returns the total number of weights emitted so far.
func (u *DecompressionUnit) Produced() uint64 { return u.produced }

// Reset returns the unit to idle and clears its counters.
func (u *DecompressionUnit) Reset() { *u = DecompressionUnit{} }

// Run regenerates an entire compressed succession through the cycle-level
// unit, returning the weights and the number of cycles spent. Because the
// unit emits one weight per cycle and segment loads overlap with the last
// Run cycle (double-buffered <m,q> registers), the cycle count equals the
// number of parameters — decompression keeps pace with the PE datapath, as
// the paper requires.
func (u *DecompressionUnit) Run(c *Compressed) ([]float32, uint64, error) {
	out := make([]float32, 0, c.N)
	start := u.cycles
	for _, s := range c.Segments {
		if err := u.Load(s); err != nil {
			return nil, 0, err
		}
		for {
			w, valid := u.Tick()
			if !valid {
				return nil, 0, errors.New("core: unit stalled mid-segment")
			}
			out = append(out, w)
			if u.state == StateIdle {
				break
			}
		}
	}
	return out, u.cycles - start, nil
}

// DecompressionCycles returns the number of cycles the hardware unit needs
// to regenerate the whole compressed succession: one per parameter.
func DecompressionCycles(c *Compressed) uint64 { return uint64(c.N) }
