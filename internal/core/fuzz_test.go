package core

import (
	"math"
	"testing"
)

// FuzzUnmarshal hammers the codec with arbitrary bytes: it must never
// panic, and anything it accepts must round-trip.
func FuzzUnmarshal(f *testing.F) {
	c, err := Compress([]float64{1, 2, 3, 2, 1, 0.5}, 0)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(c.Marshal())
	f.Add(marshalV1(c))
	f.Add([]byte{})
	f.Add([]byte("NCWC"))
	f.Add([]byte("NCWCxxxxxxxxxxxxxxxxxxxxxxxxxxxx"))
	// Single-byte corruptions of a valid v2 stream seed the checksum paths.
	for _, off := range []int{5, 8, 16, 20, 24, 28, 34, 38} {
		mut := c.Marshal()
		if off < len(mut) {
			mut[off] ^= 0x40
			f.Add(mut)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Unmarshal(data)
		if err != nil {
			return // rejected, fine
		}
		// Accepted streams must be internally consistent and re-encodable.
		if err := got.Validate(); err != nil {
			t.Fatalf("accepted stream fails Validate: %v", err)
		}
		total := 0
		for _, s := range got.Segments {
			if s.Len <= 0 {
				t.Fatalf("accepted non-positive segment length %d", s.Len)
			}
			total += s.Len
		}
		if total != got.N {
			t.Fatalf("accepted inconsistent stream: %d != %d", total, got.N)
		}
		re, err := Unmarshal(got.Marshal())
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if re.N != got.N || len(re.Segments) != len(got.Segments) {
			t.Fatal("re-encode changed the stream")
		}
	})
}

// FuzzCompressDecompress checks the core pipeline on arbitrary inputs:
// no panics, exact output length, finite outputs for finite inputs.
func FuzzCompressDecompress(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, float64(5))
	f.Add([]byte{0}, float64(0))
	f.Fuzz(func(t *testing.T, raw []byte, deltaPct float64) {
		if len(raw) == 0 {
			return
		}
		if math.IsNaN(deltaPct) || math.IsInf(deltaPct, 0) || deltaPct < 0 || deltaPct > 1000 {
			return
		}
		w := make([]float64, len(raw))
		for i, b := range raw {
			w[i] = (float64(b) - 128) / 64
		}
		c, err := CompressPct(w, deltaPct)
		if err != nil {
			t.Fatalf("finite input rejected: %v", err)
		}
		out, err := c.Decompress()
		if err != nil {
			t.Fatalf("compressed output failed validation: %v", err)
		}
		if len(out) != len(w) {
			t.Fatalf("length %d != %d", len(out), len(w))
		}
		for i, v := range out {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite output at %d: %v", i, v)
			}
		}
	})
}
