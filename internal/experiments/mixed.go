package experiments

import (
	"context"
	"fmt"

	"repro/internal/accel"
	"repro/internal/codecs"
	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/parallel"
	"repro/internal/planner"
)

// MixedPoint is one configuration of the mixed-codec Pareto sweep: the
// original network, one (codec, level) pair applied to the selected
// layer, or a per-layer mixed-codec plan found by the greedy planner
// under an accuracy-drop budget.
type MixedPoint struct {
	Model       string
	Config      string  // "orig", "<codec>-<level>", or "plan-<budget>"
	Codec       string  // codec name; "mixed" for planner points
	Level       float64 // codec level for single-codec points
	Budget      float64 // accuracy-drop budget for planner points
	Layers      int     // number of compressed layers
	WeightedCR  float64
	Accuracy    float64
	Cycles      uint64
	LatencyNorm float64 // cycles / original cycles
	EnergyNorm  float64 // energy / original energy
	Pareto      bool    // on the (WCR, accuracy, latency, energy) frontier
}

// MixedCodec sweeps the whole codec arena: every registered codec at
// every level on each model's selected layer, plus greedy mixed-codec
// plans over all compressible layers at a grid of accuracy budgets, each
// point costed for accuracy, weighted CR and simulated latency/energy.
// Like Fast mode, the default model set is the LeNet-scale group — the
// planner's full-forward evaluations are too slow for the giants unless
// they are requested explicitly via Options.Models.
//
// Points within a model are produced serially (the sweep mutates layer
// weights in place) while models fan out over the worker pool; results
// are collected by index, so every -workers value yields byte-identical
// CSVs.
func MixedCodec(opts Options) ([]MixedPoint, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	var builders []models.Builder
	var err error
	if len(opts.Models) == 0 {
		builders = models.Small()
	} else if builders, err = opts.selectedBuilders(); err != nil {
		return nil, err
	}
	sim, err := accel.NewSimulator(opts.Accel)
	if err != nil {
		return nil, err
	}
	sim.SetWorkers(opts.Workers)
	sim.SetObserver(opts.Obs)
	perModel, err := parallel.Map(opts.ctx(), opts.workers(), len(builders),
		func(_ context.Context, bi int) ([]MixedPoint, error) {
			return checkpointed(opts, "mixed/"+builders[bi].Name, func() ([]MixedPoint, error) {
				return mixedModel(builders[bi], sim, opts)
			})
		})
	if err != nil {
		return nil, err
	}
	var points []MixedPoint
	for _, mp := range perModel {
		points = append(points, mp...)
	}
	return points, nil
}

// mixedBudgets is the accuracy-drop grid for the planner points.
func (o Options) mixedBudgets() []float64 {
	if o.Fast {
		return []float64{0.05}
	}
	return []float64{0.01, 0.05}
}

// mixedEvals bounds the planner's accuracy evaluations per budget.
func (o Options) mixedEvals() int {
	if o.Fast {
		return 40
	}
	return 150
}

// mixedModel runs the sweep for one model.
func mixedModel(b models.Builder, sim *accel.Simulator, opts Options) ([]MixedPoint, error) {
	m, err := b.Build(opts.Seed)
	if err != nil {
		return nil, err
	}
	ev, err := newEvaluator(m, opts) // trains LeNet for real
	if err != nil {
		return nil, err
	}
	baseAcc, err := ev.baseline(m)
	if err != nil {
		return nil, err
	}
	baseSpecs, err := accel.SpecsFromModelCodec(m, nil)
	if err != nil {
		return nil, err
	}
	baseRes, err := sim.SimulateModel(m.Name, baseSpecs)
	if err != nil {
		return nil, err
	}
	points := []MixedPoint{{
		Model: m.Name, Config: "orig", Accuracy: baseAcc, WeightedCR: 1,
		Cycles: baseRes.Cycles, LatencyNorm: 1, EnergyNorm: 1,
	}}

	// Stage 1: every (codec, level) pair on the selected layer.
	orig, err := snapshotSelected(m)
	if err != nil {
		return nil, err
	}
	for _, c := range codecs.All() {
		for _, level := range c.Levels() {
			stream, err := c.Compress(orig, level)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s %s level %g: %w", m.Name, c.Name(), level, err)
			}
			bits, err := c.CompressedBits(stream, opts.Storage)
			if err != nil {
				return nil, err
			}
			approx, err := c.Decompress(stream)
			if err != nil {
				return nil, err
			}
			if err := m.SetSelectedWeights(approx); err != nil {
				return nil, err
			}
			acc, err := ev.accuracy(m)
			if err != nil {
				return nil, err
			}
			specs, err := accel.SpecsFromModelCodec(m, map[string]accel.CodecSpec{
				m.SelectedLayer: {Bits: bits, Count: len(orig)},
			})
			if err != nil {
				return nil, err
			}
			res, err := sim.SimulateModel(m.Name, specs)
			if err != nil {
				return nil, err
			}
			points = append(points, MixedPoint{
				Model:       m.Name,
				Config:      fmt.Sprintf("%s-%g", c.Name(), level),
				Codec:       c.Name(),
				Level:       level,
				Layers:      1,
				WeightedCR:  core.WeightedCR(float64(32*len(orig))/float64(bits), len(orig), m.TotalParams()),
				Accuracy:    acc,
				Cycles:      res.Cycles,
				LatencyNorm: float64(res.Cycles) / float64(baseRes.Cycles),
				EnergyNorm:  res.Energy.Total() / baseRes.Energy.Total(),
			})
		}
	}
	if err := m.SetSelectedWeights(orig); err != nil {
		return nil, err
	}

	// Stage 2: greedy mixed-codec plans over all compressible layers. The
	// planner mutates every candidate layer, so snapshot them all and use
	// full-forward accuracy (the suffix cache only covers the selected
	// layer).
	saved := map[string][]float64{}
	for _, l := range layerParamTensors(m.Graph) {
		w, err := m.LayerWeights(l.Name())
		if err != nil {
			return nil, err
		}
		saved[l.Name()] = w
	}
	restoreAll := func() error {
		for _, l := range layerParamTensors(m.Graph) {
			if err := m.SetLayerWeights(l.Name(), saved[l.Name()]); err != nil {
				return err
			}
		}
		return nil
	}
	for _, budget := range opts.mixedBudgets() {
		popts := planner.DefaultOptions()
		popts.Codecs = codecs.All()
		popts.MaxAccuracyDrop = budget
		popts.MaxEvals = opts.mixedEvals()
		popts.Metrics = opts.Obs.M()
		plan, err := planner.Greedy(m, func() (float64, error) { return ev.fineAccuracy(m) }, popts)
		if err != nil {
			return nil, err
		}
		compressed := make(map[string]accel.CodecSpec, len(plan.Assignments))
		for _, a := range plan.Assignments {
			compressed[a.Layer] = accel.CodecSpec{Bits: a.Bits, Count: a.Params}
		}
		specs, err := accel.SpecsFromModelCodec(m, compressed)
		if err != nil {
			return nil, err
		}
		res, err := sim.SimulateModel(m.Name, specs)
		if err != nil {
			return nil, err
		}
		points = append(points, MixedPoint{
			Model:       m.Name,
			Config:      fmt.Sprintf("plan-%g", budget),
			Codec:       "mixed",
			Budget:      budget,
			Layers:      len(plan.Assignments),
			WeightedCR:  plan.WeightedCR,
			Accuracy:    plan.Accuracy,
			Cycles:      res.Cycles,
			LatencyNorm: float64(res.Cycles) / float64(baseRes.Cycles),
			EnergyNorm:  res.Energy.Total() / baseRes.Energy.Total(),
		})
		if err := restoreAll(); err != nil {
			return nil, err
		}
	}
	markPareto(points)
	return points, nil
}

// markPareto flags the points no other point of the same model
// dominates. q dominates p when q is at least as good on every axis —
// accuracy and weighted CR high, latency and energy low — and strictly
// better on at least one.
func markPareto(points []MixedPoint) {
	dominates := func(q, p MixedPoint) bool {
		if q.Accuracy < p.Accuracy || q.WeightedCR < p.WeightedCR ||
			q.LatencyNorm > p.LatencyNorm || q.EnergyNorm > p.EnergyNorm {
			return false
		}
		return q.Accuracy > p.Accuracy || q.WeightedCR > p.WeightedCR ||
			q.LatencyNorm < p.LatencyNorm || q.EnergyNorm < p.EnergyNorm
	}
	for i := range points {
		points[i].Pareto = true
		for j := range points {
			if i != j && dominates(points[j], points[i]) {
				points[i].Pareto = false
				break
			}
		}
	}
}
