// Per-kernel identity tests for the dispatched saxpy kernels. Every
// kernel the CPU offers except avx2fma must be bit-identical
// (math.Float32bits) to the portable Go reference on every length
// (vector body + scalar tail) and on special values: signed zeros,
// denormals, infinities, and NaNs flowing through the b operands. The
// avx2fma kernel is exempt from bit-identity by design (single rounding
// per term) and is instead checked for closeness and for the documented
// difference.

package tensor

import (
	"math"
	"math/rand"
	"os"
	"testing"
)

// refSaxpy4 is the scalar contract saxpy4 kernels must match
// bit-for-bit: four sequential single-precision mul+add pairs per
// element, ascending term order.
func refSaxpy4(orow []float32, a0, a1, a2, a3 float32, b0, b1, b2, b3 []float32) {
	for j := range b0 {
		v := orow[j]
		v += a0 * b0[j]
		v += a1 * b1[j]
		v += a2 * b2[j]
		v += a3 * b3[j]
		orow[j] = v
	}
}

// refSaxpy1 is the scalar contract saxpy1 kernels must match.
func refSaxpy1(orow []float32, a float32, brow []float32) {
	for j, bv := range brow {
		orow[j] += a * bv
	}
}

// saxpyLengths covers empty, sub-vector, vector-boundary (4- and
// 8-wide), and large sizes, each with every possible tail remainder.
var saxpyLengths = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 63, 64, 65, 511, 512, 513}

// Special-value sets for the identity sweep. Infinities and NaNs are
// tested in SEPARATE passes: mixing them creates both-NaN additions
// (invalid-op indefinite NaN 0xffc00000 meeting a propagated input NaN
// 0x7fc00000), and which payload survives x+y when both are NaN depends
// on operand order the Go compiler is free to choose — there is no
// single right answer to pin. Within each pass every NaN that can arise
// has one payload, so strict Float32bits identity holds.
type specialSet struct {
	name   string
	bVals  []float32 // specials mixed into b operands and the accumulator
	coeffs []float32 // a-coefficients (never NaN: both-NaN products are ambiguous too)
}

func specialSets() []specialSet {
	negZero := float32(math.Copysign(0, -1))
	return []specialSet{
		{
			name:   "inf",
			bVals:  []float32{0, negZero, 1e-45, -1e-45, 1e-38, float32(math.Inf(1)), float32(math.Inf(-1))},
			coeffs: []float32{0.5, -3, 1e-20, float32(math.Inf(1)), negZero, 2},
		},
		{
			name:   "nan",
			bVals:  []float32{0, negZero, 1e-45, -1e-45, 1e-38, float32(math.NaN())},
			coeffs: []float32{0.5, -3, 1e-20, negZero, 2},
		},
	}
}

// fillSpecial seeds a slice with a deterministic mix of ordinary values
// and the set's specials.
func fillSpecial(dst []float32, rng *rand.Rand, specials []float32) {
	for i := range dst {
		if rng.Intn(4) == 0 {
			dst[i] = specials[rng.Intn(len(specials))]
		} else {
			dst[i] = rng.Float32()*4 - 2
		}
	}
}

// forEachVectorKernel runs fn once per non-generic kernel available on
// this CPU, restoring the startup dispatch afterwards.
func forEachVectorKernel(t *testing.T, fn func(t *testing.T, name string)) {
	t.Helper()
	startup := MatMulKernel()
	defer func() {
		if err := SetMatMulKernel(startup); err != nil {
			t.Fatal(err)
		}
	}()
	ran := false
	for _, name := range MatMulKernels() {
		if name == KernelGeneric {
			continue
		}
		ran = true
		t.Run(name, func(t *testing.T) {
			if err := SetMatMulKernel(name); err != nil {
				t.Fatal(err)
			}
			fn(t, name)
		})
	}
	if !ran {
		t.Skip("no vector kernels on this architecture")
	}
}

func TestSaxpyKernelsBitIdentical(t *testing.T) {
	forEachVectorKernel(t, func(t *testing.T, name string) {
		exact := name != KernelFMA
		for _, set := range specialSets() {
			t.Run(set.name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(7))
				for _, n := range saxpyLengths {
					b0, b1, b2, b3 := make([]float32, n), make([]float32, n), make([]float32, n), make([]float32, n)
					fillSpecial(b0, rng, set.bVals)
					fillSpecial(b1, rng, set.bVals)
					fillSpecial(b2, rng, set.bVals)
					fillSpecial(b3, rng, set.bVals)
					base := make([]float32, n)
					fillSpecial(base, rng, set.bVals)

					for trial := 0; trial < 4; trial++ {
						a0 := set.coeffs[rng.Intn(len(set.coeffs))]
						a1 := set.coeffs[rng.Intn(len(set.coeffs))]
						a2 := set.coeffs[rng.Intn(len(set.coeffs))]
						a3 := set.coeffs[rng.Intn(len(set.coeffs))]

						got4 := append([]float32(nil), base...)
						want4 := append([]float32(nil), base...)
						saxpy4Impl(got4, a0, a1, a2, a3, b0, b1, b2, b3)
						refSaxpy4(want4, a0, a1, a2, a3, b0, b1, b2, b3)
						compareSaxpy(t, "saxpy4", name, n, got4, want4, exact)

						got1 := append([]float32(nil), base...)
						want1 := append([]float32(nil), base...)
						saxpy1Impl(got1, a0, b0)
						refSaxpy1(want1, a0, b0)
						compareSaxpy(t, "saxpy1", name, n, got1, want1, exact)
					}
				}
			})
		}
	})
}

func compareSaxpy(t *testing.T, fn, kernel string, n int, got, want []float32, exact bool) {
	t.Helper()
	for j := range want {
		gb, wb := math.Float32bits(got[j]), math.Float32bits(want[j])
		if gb == wb {
			continue
		}
		if !exact {
			// FMA: NaN where the reference has NaN, close elsewhere (one
			// rounding per term instead of two).
			g, w := float64(got[j]), float64(want[j])
			if math.IsNaN(g) && math.IsNaN(w) {
				continue
			}
			if math.Abs(g-w) <= 1e-5*math.Max(1, math.Abs(w)) {
				continue
			}
		}
		t.Fatalf("%s[%s] n=%d j=%d: got %v (0x%08x), want %v (0x%08x)",
			fn, kernel, n, j, got[j], gb, want[j], wb)
	}
}

// TestMatMulKernelsBitIdentical runs the full blocked matmul under every
// bit-identity kernel and pins the output bits against the generic
// kernel's — the end-to-end version of the saxpy contract, covering the
// zero-skip fast path and tail handling on all three axes.
func TestMatMulKernelsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m, k, n := 33, 65, 129 // odd everything: tails on every axis
	infs := specialSets()[0].bVals
	a := MustNew(m, k)
	b := MustNew(k, n)
	fillSpecial(a.Data, rng, infs)
	fillSpecial(b.Data, rng, infs)
	for i := range a.Data {
		if rng.Intn(3) == 0 {
			a.Data[i] = 0 // exercise the zero-skip path
		}
	}

	startup := MatMulKernel()
	defer func() { _ = SetMatMulKernel(startup) }()

	if err := SetMatMulKernel(KernelGeneric); err != nil {
		t.Fatal(err)
	}
	want := MustNew(m, n)
	if err := MatMulInto(want, a, b); err != nil {
		t.Fatal(err)
	}

	for _, name := range MatMulKernels() {
		if name == KernelGeneric || name == KernelFMA {
			continue
		}
		if err := SetMatMulKernel(name); err != nil {
			t.Fatal(err)
		}
		got := MustNew(m, n)
		if err := MatMulInto(got, a, b); err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
				t.Fatalf("kernel %s diverges at element %d: got %v, want %v",
					name, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestFMAKernelRelaxedIdentity documents the FMA opt-in contract: close
// to the reference, but with genuinely different rounding — if it were
// bit-identical the opt-in gate would be pointless.
func TestFMAKernelRelaxedIdentity(t *testing.T) {
	available := false
	for _, name := range MatMulKernels() {
		if name == KernelFMA {
			available = true
		}
	}
	if !available {
		t.Skip("no FMA on this CPU")
	}
	startup := MatMulKernel()
	defer func() { _ = SetMatMulKernel(startup) }()

	rng := rand.New(rand.NewSource(5))
	m, k, n := 32, 256, 64
	a := MustNew(m, k)
	b := MustNew(k, n)
	for i := range a.Data {
		a.Data[i] = rng.Float32()*2 - 1
	}
	for i := range b.Data {
		b.Data[i] = rng.Float32()*2 - 1
	}

	if err := SetMatMulKernel(KernelGeneric); err != nil {
		t.Fatal(err)
	}
	want := MustNew(m, n)
	if err := MatMulInto(want, a, b); err != nil {
		t.Fatal(err)
	}
	if err := SetMatMulKernel(KernelFMA); err != nil {
		t.Fatal(err)
	}
	got := MustNew(m, n)
	if err := MatMulInto(got, a, b); err != nil {
		t.Fatal(err)
	}

	diffs := 0
	for i := range want.Data {
		g, w := float64(got.Data[i]), float64(want.Data[i])
		if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
			diffs++
		}
		if math.Abs(g-w) > 1e-4*math.Max(1, math.Abs(w)) {
			t.Fatalf("FMA far from reference at element %d: got %v, want %v", i, g, w)
		}
	}
	if diffs == 0 {
		t.Error("FMA output bit-identical on a 256-deep accumulation; kernel may not actually fuse")
	}
	t.Logf("FMA vs reference: %d/%d elements differ in last bits (expected)", diffs, len(want.Data))
}

// TestLogDispatch records the startup dispatch decision in the test log
// (run with -v) so CI output shows which kernel each runner exercised.
func TestLogDispatch(t *testing.T) {
	t.Logf("dispatched kernel: %s (available: %v, VECMM=%q)",
		MatMulKernel(), MatMulKernels(), os.Getenv("VECMM"))
}

// TestSetMatMulKernel covers the dispatch API itself.
func TestSetMatMulKernel(t *testing.T) {
	startup := MatMulKernel()
	defer func() { _ = SetMatMulKernel(startup) }()

	if err := SetMatMulKernel("no-such-kernel"); err == nil {
		t.Error("expected error for unknown kernel")
	}
	if err := SetMatMulKernel("off"); err != nil {
		t.Fatal(err)
	}
	if MatMulKernel() != KernelGeneric || VecMatMul() {
		t.Fatalf("off alias: kernel %s, VecMatMul %v", MatMulKernel(), VecMatMul())
	}
	for _, name := range MatMulKernels() {
		if err := SetMatMulKernel(name); err != nil {
			t.Fatalf("advertised kernel %s rejected: %v", name, err)
		}
		if MatMulKernel() != name {
			t.Fatalf("set %s, reports %s", name, MatMulKernel())
		}
		if VecMatMul() != (name != KernelGeneric) {
			t.Fatalf("VecMatMul()=%v for kernel %s", VecMatMul(), name)
		}
	}
}
