package accel

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/faults"
)

func faultSpec() LayerSpec {
	return LayerSpec{
		Name: "fc", Kind: "FC",
		MACs: 100_000, WeightBytes: 400_000, InputBytes: 4000, OutputBytes: 400,
	}
}

// TestLayerZeroRateFaultsIdentical: a fault model with all rates zero
// must reproduce the fault-free layer result exactly (the acceptance
// criterion behind byte-identical rate-0 CSVs).
func TestLayerZeroRateFaultsIdentical(t *testing.T) {
	base, err := defaultSim(t).SimulateLayer(faultSpec())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Mesh.Faults = faults.Model{Seed: 4242}
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sim.SimulateLayer(faultSpec())
	if err != nil {
		t.Fatal(err)
	}
	if base.Cycles != got.Cycles || base.Traffic != got.Traffic ||
		base.Latency != got.Latency || base.Energy != got.Energy {
		t.Errorf("zero-rate fault run diverged:\nbase  %+v\nfault %+v", base, got)
	}
}

// TestLayerLinkFaultsSurfaceRecoveryCost: at 1e-3 the layer still
// completes, the retransmissions show up in Traffic, and the recovery
// costs cycles relative to the fault-free run.
func TestLayerLinkFaultsSurfaceRecoveryCost(t *testing.T) {
	base, err := defaultSim(t).SimulateLayer(faultSpec())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Mesh.Faults = faults.Model{Seed: 17, LinkFlitRate: 1e-3}
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sim.SimulateLayer(faultSpec())
	if err != nil {
		t.Fatal(err)
	}
	if got.Traffic.CorruptFlits == 0 || got.Traffic.Retransmits == 0 {
		t.Errorf("fault activity not surfaced: %+v", got.Traffic)
	}
	if got.Cycles <= base.Cycles {
		t.Errorf("recovery cost no cycles: %d vs %d", got.Cycles, base.Cycles)
	}
	if got.Energy.CommDyn <= base.Energy.CommDyn {
		t.Errorf("retransmission traffic not in comm energy: %v vs %v",
			got.Energy.CommDyn, base.Energy.CommDyn)
	}
	// Determinism: the same (seed, rate) reproduces the result exactly.
	again, err := sim.SimulateLayer(faultSpec())
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != again.Cycles || got.Traffic != again.Traffic {
		t.Error("fault run not reproducible")
	}
}

// TestLayerDataLossFailsFast: a PE cut off by dead links means fetch
// data can never arrive; the simulation must return ErrDataLoss instead
// of spinning to the cycle cap.
func TestLayerDataLossFailsFast(t *testing.T) {
	cfg := DefaultConfig()
	// Node 5 is a PE (corners are memory interfaces). Cut every inbound link.
	cfg.Mesh.Faults = faults.Model{DeadLinks: []faults.Link{
		{From: 1, To: 5}, {From: 4, To: 5}, {From: 6, To: 5}, {From: 9, To: 5},
	}}
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = sim.SimulateLayer(faultSpec())
	if !errors.Is(err, ErrDataLoss) {
		t.Fatalf("expected ErrDataLoss, got %v", err)
	}
	if time.Since(start) > 30*time.Second {
		t.Error("data loss detection was not fast")
	}
}

// TestSimulateModelContextCanceled: a canceled context aborts the model
// run with ctx's error.
func TestSimulateModelContextCanceled(t *testing.T) {
	sim := defaultSim(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sim.SimulateModelContext(ctx, "m", []LayerSpec{faultSpec()})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
}

// TestSimulateLayerContextDeadline: an already-expired deadline stops a
// layer mid-simulation.
func TestSimulateLayerContextDeadline(t *testing.T) {
	sim := defaultSim(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := sim.SimulateLayerContext(ctx, faultSpec())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected context.DeadlineExceeded, got %v", err)
	}
}
