// Package noc is a cycle-accurate simulator of the 2-D mesh network-on-
// chip at the heart of the paper's accelerator platform (a Noxim-class
// model): wormhole switching, dimension-ordered XY routing, credit-based
// flow control over input-buffered five-port routers, 64-bit flits at
// 1 GHz. Energy is back-annotated per event (router traversal, link
// traversal) plus leakage over time, exactly the methodology of the
// paper's Sec. IV-A.
package noc

import "fmt"

// FlitType marks a flit's position within its packet.
type FlitType int8

// Flit types. A single-flit packet is HeadTail.
const (
	HeadFlit FlitType = iota
	BodyFlit
	TailFlit
	HeadTailFlit
)

// String implements fmt.Stringer.
func (t FlitType) String() string {
	switch t {
	case HeadFlit:
		return "head"
	case BodyFlit:
		return "body"
	case TailFlit:
		return "tail"
	case HeadTailFlit:
		return "headtail"
	default:
		return fmt.Sprintf("flit(%d)", int(t))
	}
}

// Packet is the unit of transfer presented to the network interface. The
// network segments it into flits.
type Packet struct {
	ID    uint64
	Src   int // source node id
	Dst   int // destination node id
	Flits int // packet length in flits (>= 1)
	Meta  any // opaque payload descriptor for the client (e.g. the accelerator)
}

// flit is the internal wire unit.
type flit struct {
	ftype    FlitType
	packetID uint64
	src, dst int
	vc       int8   // virtual channel the packet was assigned at injection
	enqueued uint64 // cycle the packet entered the source injection queue
	seq      int32  // flit position within the packet (checksum fault key)
	attempt  uint8  // end-to-end retransmission attempt number
	hops     uint16 // link traversals so far (misroute livelock bound)
	corrupt  bool   // payload corrupted in transit (checksum will fail at the NI)
}

// Delivery reports a packet fully received at its destination.
type Delivery struct {
	Packet  Packet
	Cycle   uint64 // cycle count when the tail ejection completed (the ejection cycle is counted)
	Latency uint64 // Cycle minus injection-queue entry cycle
}

// Port indices of a router.
const (
	PortLocal = iota
	PortNorth
	PortEast
	PortSouth
	PortWest
	numPorts
)

var portNames = [numPorts]string{"local", "north", "east", "south", "west"}

// PortName returns a human-readable port name.
func PortName(p int) string {
	if p < 0 || p >= numPorts {
		return fmt.Sprintf("port(%d)", p)
	}
	return portNames[p]
}
