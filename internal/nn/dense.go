package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Dense is a fully connected layer: y = x·W + b with W of shape [in, out].
type Dense struct {
	name    string
	In, Out int
	W       *tensor.Tensor // [in, out]
	B       *tensor.Tensor // [out]
	dW      *tensor.Tensor
	dB      *tensor.Tensor
}

// NewDense creates a fully connected layer with Glorot-uniform initialized
// weights and zero bias.
func NewDense(name string, in, out int, rng *rand.Rand) (*Dense, error) {
	if in <= 0 || out <= 0 {
		return nil, fmt.Errorf("nn: dense %q: bad dims in=%d out=%d", name, in, out)
	}
	d := &Dense{
		name: name, In: in, Out: out,
		W: tensor.MustNew(in, out),
		B: tensor.MustNew(out),
	}
	limit := math.Sqrt(6.0 / float64(in+out))
	d.W.RandUniform(rng, -limit, limit)
	return d, nil
}

// Name implements Layer.
func (d *Dense) Name() string { return d.name }

// Kind implements Layer.
func (d *Dense) Kind() string { return "FC" }

// OutShape implements Layer.
func (d *Dense) OutShape(in [][]int) ([]int, error) {
	s, err := wantOneShape(in)
	if err != nil {
		return nil, err
	}
	if shapeVolume(s) != d.In {
		return nil, fmt.Errorf("%w: dense %q wants %d inputs, got shape %v", ErrShape, d.name, d.In, s)
	}
	return []int{d.Out}, nil
}

// Forward implements Layer. Inputs of any rank are accepted as long as the
// volume matches (an implicit flatten, as Keras dense layers behave after
// Flatten).
func (d *Dense) Forward(xs []*tensor.Tensor) (*tensor.Tensor, error) {
	x, err := wantOne(xs)
	if err != nil {
		return nil, err
	}
	if x.Size() != d.In {
		return nil, fmt.Errorf("%w: dense %q wants %d inputs, got %d", ErrShape, d.name, d.In, x.Size())
	}
	out := tensor.MustNew(d.Out)
	d.forwardInto(out.Data, x.Data, make([]float64, d.Out))
	return out, nil
}

// ForwardScratch implements ScratchLayer: the same float64-accumulated
// product through reused arena buffers.
func (d *Dense) ForwardScratch(xs []*tensor.Tensor, s *Scratch) (*tensor.Tensor, error) {
	x, err := wantOne(xs)
	if err != nil {
		return nil, err
	}
	if x.Size() != d.In {
		return nil, fmt.Errorf("%w: dense %q wants %d inputs, got %d", ErrShape, d.name, d.In, x.Size())
	}
	out := s.Tensor(d.name, "/out", d.Out)
	acc := s.Float64s(d.name, "/acc", d.Out)
	clear(acc)
	d.forwardInto(out.Data, x.Data, acc)
	return out, nil
}

// forwardInto computes y = x·W + b into dst using the zeroed float64
// accumulator acc. y_j = sum_i x_i W_ij + b_j; iterate i-major so W rows
// stream. x is the flattened input data, so batch rows feed in directly.
func (d *Dense) forwardInto(dst, x []float32, acc []float64) {
	for i := 0; i < d.In; i++ {
		xv := float64(x[i])
		if xv == 0 {
			continue
		}
		row := d.W.Data[i*d.Out : (i+1)*d.Out]
		for j := range row {
			acc[j] += xv * float64(row[j])
		}
	}
	for j := 0; j < d.Out; j++ {
		dst[j] = float32(acc[j] + float64(d.B.Data[j]))
	}
}

// Params implements Layer.
func (d *Dense) Params() []Param {
	return []Param{{Name: "weights", T: d.W}, {Name: "bias", T: d.B}}
}

// Cost implements Layer: in*out MACs.
func (d *Dense) Cost(in [][]int) (uint64, error) {
	if _, err := d.OutShape(in); err != nil {
		return 0, err
	}
	return uint64(d.In) * uint64(d.Out), nil
}

// Backward implements Backprop.
func (d *Dense) Backward(x, dy *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Size() != d.In || dy.Size() != d.Out {
		return nil, fmt.Errorf("%w: dense %q backward x=%d dy=%d", ErrShape, d.name, x.Size(), dy.Size())
	}
	d.ensureGrads()
	// dW_ij += x_i dy_j ; dB_j += dy_j ; dx_i = sum_j W_ij dy_j.
	dx := tensor.MustNew(d.In)
	for i := 0; i < d.In; i++ {
		xv := x.Data[i]
		wrow := d.W.Data[i*d.Out : (i+1)*d.Out]
		grow := d.dW.Data[i*d.Out : (i+1)*d.Out]
		var s float64
		for j, dyj := range dy.Data {
			grow[j] += xv * dyj
			s += float64(wrow[j]) * float64(dyj)
		}
		dx.Data[i] = float32(s)
	}
	for j, dyj := range dy.Data {
		d.dB.Data[j] += dyj
	}
	return dx, nil
}

func (d *Dense) ensureGrads() {
	if d.dW == nil {
		d.dW = tensor.MustNew(d.In, d.Out)
		d.dB = tensor.MustNew(d.Out)
	}
}

// Grads implements Backprop.
func (d *Dense) Grads() []Param {
	d.ensureGrads()
	return []Param{{Name: "weights", T: d.dW}, {Name: "bias", T: d.dB}}
}

// ZeroGrads implements Backprop.
func (d *Dense) ZeroGrads() {
	if d.dW != nil {
		d.dW.Zero()
		d.dB.Zero()
	}
}
