package noc

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/obs"
)

// corePair drives the event core and the stepping core through the same
// workload in lockstep and asserts byte-identical observable state:
// Stats (sim cycles, latency sums, energy-relevant activity counters,
// fault counters), per-router heatmaps, the full delivery stream, and
// the exported obs trace stream.
type corePair struct {
	t      *testing.T
	ev, st *Network
	evDel  []Delivery
	stDel  []Delivery
	evTr   *obs.Trace
	stTr   *obs.Trace
}

func newCorePair(t *testing.T, cfg Config) *corePair {
	t.Helper()
	p := &corePair{t: t}
	evCfg, stCfg := cfg, cfg
	evCfg.Core = CoreEvent
	stCfg.Core = CoreStep
	var err error
	if p.ev, err = New(evCfg); err != nil {
		t.Fatal(err)
	}
	if p.st, err = New(stCfg); err != nil {
		t.Fatal(err)
	}
	if p.ev.CoreName() != "event" || p.st.CoreName() != "step" {
		t.Fatalf("core names: %s vs %s", p.ev.CoreName(), p.st.CoreName())
	}
	p.ev.SetSink(func(d Delivery) { p.evDel = append(p.evDel, d) })
	p.st.SetSink(func(d Delivery) { p.stDel = append(p.stDel, d) })
	p.evTr, p.stTr = obs.NewTrace(), obs.NewTrace()
	p.ev.SetTrace(p.evTr.Buffer("diff", 0, "noc"))
	p.st.SetTrace(p.stTr.Buffer("diff", 0, "noc"))
	return p
}

// inject sends the same packet into both networks.
func (p *corePair) inject(src, dst, flits int) {
	p.t.Helper()
	evErr := p.ev.Inject(Packet{Src: src, Dst: dst, Flits: flits})
	stErr := p.st.Inject(Packet{Src: src, Dst: dst, Flits: flits})
	if (evErr == nil) != (stErr == nil) {
		p.t.Fatalf("inject(%d->%d,%d): event err %v, step err %v", src, dst, flits, evErr, stErr)
	}
}

// send sends the same message into both networks.
func (p *corePair) send(src, dst, flits int) {
	p.t.Helper()
	en, evErr := p.ev.SendMessage(src, dst, flits, nil)
	sn, stErr := p.st.SendMessage(src, dst, flits, nil)
	if en != sn || (evErr == nil) != (stErr == nil) {
		p.t.Fatalf("send(%d->%d,%d): event (%d,%v), step (%d,%v)", src, dst, flits, en, evErr, sn, stErr)
	}
}

// step advances both networks one cycle and compares the cheap
// invariants, catching divergence at the cycle it happens.
func (p *corePair) step() {
	p.t.Helper()
	p.ev.Step()
	p.st.Step()
	if p.ev.Cycle() != p.st.Cycle() {
		p.t.Fatalf("cycle diverged: event %d, step %d", p.ev.Cycle(), p.st.Cycle())
	}
	if ev, st := p.ev.Stats(), p.st.Stats(); ev != st {
		p.t.Fatalf("stats diverged at cycle %d:\nevent %+v\nstep  %+v", p.ev.Cycle(), ev, st)
	}
	if p.ev.Idle() != p.st.Idle() {
		p.t.Fatalf("idleness diverged at cycle %d: event %v, step %v", p.ev.Cycle(), p.ev.Idle(), p.st.Idle())
	}
}

// drain steps both networks until both are idle (bounded), then runs the
// full comparison.
func (p *corePair) drain(maxCycles int) {
	p.t.Helper()
	for i := 0; i < maxCycles && !(p.ev.Idle() && p.st.Idle()); i++ {
		p.step()
	}
	if !p.ev.Idle() || !p.st.Idle() {
		p.t.Fatalf("did not drain within %d cycles (event idle %v, step idle %v)",
			maxCycles, p.ev.Idle(), p.st.Idle())
	}
	p.compare()
}

// compare asserts full observable equality.
func (p *corePair) compare() {
	p.t.Helper()
	if ev, st := p.ev.Stats(), p.st.Stats(); ev != st {
		p.t.Fatalf("stats diverge:\nevent %+v\nstep  %+v", ev, st)
	}
	if ev, st := p.ev.PerRouterTraversals(), p.st.PerRouterTraversals(); !reflect.DeepEqual(ev, st) {
		p.t.Fatalf("per-router heatmap diverges:\nevent %v\nstep  %v", ev, st)
	}
	if !reflect.DeepEqual(p.evDel, p.stDel) {
		p.t.Fatalf("delivery streams diverge: event %d deliveries, step %d", len(p.evDel), len(p.stDel))
	}
	// The exported trace streams must be byte-identical: both cores walk
	// the same simulated schedule, so the packet lifecycle events they
	// emit (and their canonical (cycle, node, seq) order) must match.
	var evJSON, stJSON strings.Builder
	if err := p.evTr.WriteChromeJSON(&evJSON); err != nil {
		p.t.Fatal(err)
	}
	if err := p.stTr.WriteChromeJSON(&stJSON); err != nil {
		p.t.Fatal(err)
	}
	if evJSON.String() != stJSON.String() {
		p.t.Fatalf("trace streams diverge (event %d events, step %d events)",
			p.evTr.EventCount(), p.stTr.EventCount())
	}
}

// TestCoreEquivalenceDense: sustained uniform traffic plus an all-to-one
// hotspot on the paper's 4x4 mesh — every router contended.
func TestCoreEquivalenceDense(t *testing.T) {
	p := newCorePair(t, DefaultConfig())
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 6; round++ {
		for src := 1; src < 16; src++ {
			p.send(src, 0, 40) // hotspot convergence on the corner
		}
		for k := 0; k < 24; k++ {
			src, dst := rng.Intn(16), rng.Intn(16)
			if dst == src {
				dst = (src + 1) % 16
			}
			p.inject(src, dst, 1+rng.Intn(8))
		}
		p.drain(200_000)
	}
}

// TestCoreEquivalenceSparse: single small packets crossing a 16x16 mesh
// with long injection gaps — the in-flight-but-uncontended regime the
// event core targets.
func TestCoreEquivalenceSparse(t *testing.T) {
	cfg := Config{Width: 16, Height: 16, BufferDepth: 4, FlitBits: 64, MaxPacketFlit: 32}
	p := newCorePair(t, cfg)
	for round := 0; round < 8; round++ {
		p.inject(round*31%256, 255-round*17%256, 4)
		p.drain(100_000)
		// Idle gap: both cores step through it (AdvanceIdle equivalence
		// is covered separately in fastforward_test.go).
		for g := 0; g < 50; g++ {
			p.step()
		}
	}
	p.compare()
}

// TestCoreEquivalenceFaulty: transient link corruption driving NACK and
// retransmission, plus dead links driving reroutes and unroutable kills
// — the recovery paths must attribute identically on both cores.
func TestCoreEquivalenceFaulty(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VirtualChannels = 2
	cfg.MaxRetries = 3
	cfg.Faults = faults.Model{
		Seed:         99,
		LinkFlitRate: 0.02,
		// Cut node 5 off completely: packets to it are killed unroutable
		// and drained; traffic around it detours.
		DeadLinks: []faults.Link{
			{From: 4, To: 5}, {From: 6, To: 5}, {From: 1, To: 5}, {From: 9, To: 5},
		},
	}
	p := newCorePair(t, cfg)
	rng := rand.New(rand.NewSource(23))
	for round := 0; round < 5; round++ {
		for src := 0; src < 16; src++ {
			dst := (src + 3 + round) % 16
			if dst == src {
				dst = (src + 1) % 16
			}
			p.send(src, dst, 10+round)
		}
		for k := 0; k < 8; k++ {
			src := rng.Intn(16)
			if src != 5 {
				p.inject(src, 5, 1+rng.Intn(6)) // unroutable kills
			}
		}
		p.drain(500_000)
	}
	if p.ev.Stats().RetransmittedPackets == 0 {
		t.Error("workload exercised no retransmissions")
	}
	if p.ev.Stats().UnroutablePackets == 0 {
		t.Error("workload exercised no unroutable kills")
	}
}

// TestCoreEquivalenceRandomized: seeded random traffic with mid-flight
// injections (not just drain-from-idle), across routings, VC counts, and
// mesh shapes.
func TestCoreEquivalenceRandomized(t *testing.T) {
	shapes := []struct {
		w, h, vcs int
		routing   Routing
	}{
		{4, 4, 1, RoutingXY},
		{4, 4, 4, RoutingYX},
		{8, 3, 2, RoutingWestFirst},
		{2, 9, 1, RoutingYX},
	}
	for _, sh := range shapes {
		cfg := Config{
			Width: sh.w, Height: sh.h, BufferDepth: 2, FlitBits: 64,
			MaxPacketFlit: 16, VirtualChannels: sh.vcs, Routing: sh.routing,
		}
		p := newCorePair(t, cfg)
		rng := rand.New(rand.NewSource(int64(sh.w*100 + sh.h*10 + sh.vcs)))
		nodes := sh.w * sh.h
		for i := 0; i < 4000; i++ {
			if rng.Intn(3) == 0 {
				src, dst := rng.Intn(nodes), rng.Intn(nodes)
				if dst == src {
					dst = (src + 1) % nodes
				}
				p.inject(src, dst, 1+rng.Intn(16))
			}
			p.step()
		}
		p.drain(500_000)
	}
}

// TestCoreEquivalenceResetReuse: a Reset event-core network must replay
// identically to a fresh stepping-core network — the accelerator pools
// event-core networks across layers.
func TestCoreEquivalenceResetReuse(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VirtualChannels = 2
	evCfg := cfg
	evCfg.Core = CoreEvent
	nw, err := New(evCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the scheduler state, then reset.
	for src := 1; src < 16; src++ {
		if _, err := nw.SendMessage(src, 0, 7, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := nw.RunUntilIdle(100_000); !ok {
		t.Fatal("did not drain")
	}
	nw.Reset()

	stCfg := cfg
	stCfg.Core = CoreStep
	st, err := New(stCfg)
	if err != nil {
		t.Fatal(err)
	}
	var evDel, stDel []Delivery
	nw.SetSink(func(d Delivery) { evDel = append(evDel, d) })
	st.SetSink(func(d Delivery) { stDel = append(stDel, d) })
	for round := 0; round < 3; round++ {
		for src := 0; src < 16; src += 2 {
			dst := (src + 7 + round) % 16
			if dst == src {
				dst = (src + 1) % 16
			}
			if _, err := nw.SendMessage(src, dst, 5, nil); err != nil {
				t.Fatal(err)
			}
			if _, err := st.SendMessage(src, dst, 5, nil); err != nil {
				t.Fatal(err)
			}
		}
		for !nw.Idle() || !st.Idle() {
			nw.Step()
			st.Step()
			if nw.Cycle() > 100_000 {
				t.Fatal("did not drain")
			}
		}
	}
	if nw.Stats() != st.Stats() {
		t.Fatalf("stats diverge after Reset reuse:\nevent %+v\nstep  %+v", nw.Stats(), st.Stats())
	}
	if !reflect.DeepEqual(evDel, stDel) {
		t.Fatalf("deliveries diverge after Reset reuse")
	}
}

// TestCoreEquivalenceBackpressure: shallow buffers and long worms force
// credit stalls and head-of-line blocking, the regime where the event
// core's sleep/wake bookkeeping is most load-bearing.
func TestCoreEquivalenceBackpressure(t *testing.T) {
	cfg := Config{Width: 5, Height: 5, BufferDepth: 1, FlitBits: 64, MaxPacketFlit: 32}
	p := newCorePair(t, cfg)
	// Criss-cross worms sharing central links in both directions.
	for i := 0; i < 5; i++ {
		p.send(i, 20+i, 32)    // top row to bottom row
		p.send(24-i, 4-i, 32)  // bottom row to top row, reversed
		p.send(i*5, i*5+4, 32) // west column to east column
		p.send(i*5+4, i*5, 32) // east column to west column
	}
	p.drain(500_000)
	if p.ev.Stats().PacketsOut == 0 {
		t.Fatal("nothing delivered")
	}
}
