package codecs

import (
	"math"
	"testing"

	"repro/internal/quant"
)

func TestCheckLevel(t *testing.T) {
	for _, bad := range []float64{-1, 0.5, 7, 100, math.NaN()} {
		if _, err := checkLevel(bad); err == nil {
			t.Errorf("level %v accepted", bad)
		}
	}
	for want := 0; want <= bpMaxLevel; want++ {
		got, err := checkLevel(float64(want))
		if err != nil || got != want {
			t.Errorf("checkLevel(%d) = %d, %v", want, got, err)
		}
	}
}

// TestReconstructCodeBound sweeps every int8 code through the
// truncate/zigzag/reconstruct path and pins the error bound the codecs'
// MaxAbsError accounting relies on: exact at level 0, at most 2^(L-1)
// code steps otherwise.
func TestReconstructCodeBound(t *testing.T) {
	for l := 0; l <= bpMaxLevel; l++ {
		bound := 0
		if l > 0 {
			bound = 1 << uint(l-1)
		}
		for c := -128; c <= 127; c++ {
			z := quant.ZigZag8(int8(c) >> uint(l))
			got := int(reconstructCode(z, l))
			if d := got - c; d < -bound || d > bound {
				t.Fatalf("level %d: code %d -> %d, |err| > %d", l, c, got, bound)
			}
		}
	}
}

func TestZigZag8RoundTrip(t *testing.T) {
	for c := -128; c <= 127; c++ {
		if got := quant.UnZigZag8(quant.ZigZag8(int8(c))); got != int8(c) {
			t.Fatalf("zigzag round trip: %d -> %d", c, got)
		}
	}
	// Small magnitudes must map to small symbols — the property that
	// skews the plane and symbol distributions.
	for _, tc := range []struct {
		c int8
		z uint8
	}{{0, 0}, {-1, 1}, {1, 2}, {-2, 3}, {2, 4}, {127, 254}, {-128, 255}} {
		if got := quant.ZigZag8(tc.c); got != tc.z {
			t.Errorf("ZigZag8(%d) = %d, want %d", tc.c, got, tc.z)
		}
	}
}

func TestMaxAbsError(t *testing.T) {
	p := quant.Params8{Scale: 0.01}
	if got := MaxAbsError(p, 0); got != 0.005 {
		t.Errorf("level 0: %v", got)
	}
	if got := MaxAbsError(p, 3); got != 0.01*(0.5+4) {
		t.Errorf("level 3: %v", got)
	}
}

// TestBitPlaneUniformPlanesCollapse: constant weights quantize to one
// code, so every plane is uniform and the stream is just header + tags.
func TestBitPlaneUniformPlanesCollapse(t *testing.T) {
	w := make([]float64, 10000)
	for i := range w {
		w[i] = 0.75
	}
	c := BitPlaneCodec()
	stream, err := c.Compress(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := bpHeaderBytes + 8; len(stream) != want {
		t.Errorf("constant input stream = %d bytes, want %d", len(stream), want)
	}
	got, err := c.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	tq, err := quant.Quantize(w)
	if err != nil {
		t.Fatal(err)
	}
	bound := MaxAbsError(tq.P, 0) + 1e-12
	for i := range got {
		if math.Abs(got[i]-0.75) > bound {
			t.Fatalf("got[%d] = %v", i, got[i])
		}
	}
}

// TestBitPlaneBeatsRawWidth: even at level 0 the payload is one bit per
// plane per weight, so weight-shaped input must land well under the
// 32-bit raw datapath width.
func TestBitPlaneBeatsRawWidth(t *testing.T) {
	w := make([]float64, 2048)
	for i := range w {
		w[i] = math.Sin(float64(i)*0.031) * 0.2
	}
	c := BitPlaneCodec()
	prev := math.MaxInt
	for _, level := range c.Levels() {
		stream, err := c.Compress(w, level)
		if err != nil {
			t.Fatal(err)
		}
		if bits := 8 * len(stream); bits >= 32*len(w)/2 {
			t.Errorf("level %v: %d bits for %d weights", level, bits, len(w))
		}
		if len(stream) > prev {
			t.Errorf("level %v grew the stream: %d > %d bytes", level, len(stream), prev)
		}
		prev = len(stream)
	}
}

// TestQuantHuffSkewBites: the zigzagged quantized symbol stream is
// strongly skewed, so the entropy coder must compress it well below the
// 8 bits/symbol of plain int8 quantization (amortizing its code table).
func TestQuantHuffSkewBites(t *testing.T) {
	w := make([]float64, 4096)
	s := uint64(7)
	for i := range w {
		s = s*6364136223846793005 + 1442695040888963407
		u := float64(s>>11)/float64(1<<53) - 0.5
		w[i] = u * u * u // concentrated near zero, like trained weights
	}
	c := QuantHuffCodec()
	stream, err := c.Compress(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	if bits := 8 * len(stream); bits >= 8*len(w) {
		t.Errorf("%d bits >= 8 bits/weight for %d weights", bits, len(w))
	}
}
