// Runtime kernel dispatch for the blocked matmul's inner saxpy sweeps.
// At startup (or via SetMatMulKernel) the function pointers below are
// aimed at the widest kernel that is both supported by the CPU and
// bit-identical to the portable Go reference. The former `-tags vecmm`
// build split is gone: one binary carries every kernel and picks at run
// time.
//
// Selection order on amd64: AVX2 if the CPU and OS support it, else
// SSE2 (part of the amd64 baseline). The AVX2+FMA kernel is NEVER
// auto-selected — fused multiply-add performs one rounding where the
// reference performs two, so results differ in the last bit; it is only
// reachable through the explicit VECMM=fma opt-in or SetMatMulKernel.
// On arm64 the NEON kernels are always selected (Advanced SIMD is part
// of the ARMv8-A baseline and the kernels use unfused multiply+add, so
// they are bit-identical). On other architectures the portable Go
// kernel runs.
//
// The VECMM environment variable overrides the automatic choice:
//
//	VECMM=off   (or generic)  portable Go kernel
//	VECMM=sse2                SSE2 saxpy kernels (amd64)
//	VECMM=avx2                AVX2 saxpy kernels (amd64)
//	VECMM=fma   (or avx2fma)  AVX2+FMA kernels (relaxed identity!)
//	VECMM=neon                NEON saxpy kernels (arm64)
//
// An unsupported or unknown value is ignored and the automatic choice
// stands (a forced binary must not crash on older hardware).
package tensor

import (
	"fmt"
	"os"
)

// Saxpy kernel names, as reported by MatMulKernel and accepted by
// SetMatMulKernel.
const (
	KernelGeneric = "generic" // portable Go, the bit-identity reference
	KernelSSE2    = "sse2"    // 4-wide SSE2, bit-identical
	KernelAVX2    = "avx2"    // 8-wide AVX2, bit-identical
	KernelFMA     = "avx2fma" // 8-wide AVX2+FMA, single rounding per term — opt-in only
	KernelNEON    = "neon"    // 4-wide NEON (arm64 baseline), bit-identical
)

// The dispatched inner kernels. matMulBlocked snapshots these at entry,
// so a concurrent SetMatMulKernel cannot tear one multiply; still, set
// the kernel before spawning matmul goroutines.
var (
	saxpy4Impl = saxpy4Go
	saxpy1Impl = saxpy1Go

	matmulKernel = KernelGeneric
)

// MatMulKernel reports which saxpy kernel the blocked matmul dispatches
// to: "generic", "sse2", "avx2", or "avx2fma".
func MatMulKernel() string { return matmulKernel }

// VecMatMul reports whether a vectorized (SIMD) kernel is live. All
// kernels except "avx2fma" produce bit-identical results, so this flag
// is informational, not a correctness switch.
func VecMatMul() bool { return matmulKernel != KernelGeneric }

// MatMulKernels lists the kernels this CPU can run, widest last. The
// generic kernel is always available; "avx2fma" appears when supported
// even though it is never auto-selected.
func MatMulKernels() []string {
	names := []string{KernelGeneric}
	for _, k := range archKernels() {
		names = append(names, k.name)
	}
	return names
}

// SetMatMulKernel forces a specific kernel ("generic", "sse2", "avx2",
// "avx2fma"; "off" and "fma" are accepted aliases). It fails if the CPU
// or build does not support the kernel. Not safe to call concurrently
// with running matmuls.
func SetMatMulKernel(name string) error {
	switch name {
	case "off":
		name = KernelGeneric
	case "fma", "avx2+fma":
		name = KernelFMA
	}
	if name == KernelGeneric {
		saxpy4Impl, saxpy1Impl = saxpy4Go, saxpy1Go
		matmulKernel = KernelGeneric
		return nil
	}
	for _, k := range archKernels() {
		if k.name == name {
			saxpy4Impl, saxpy1Impl = k.saxpy4, k.saxpy1
			matmulKernel = k.name
			return nil
		}
	}
	return fmt.Errorf("tensor: matmul kernel %q not supported on this CPU (have %v)", name, MatMulKernels())
}

// saxpyKernel is one selectable inner-kernel pair.
type saxpyKernel struct {
	name   string
	saxpy4 func(orow []float32, a0, a1, a2, a3 float32, b0, b1, b2, b3 []float32)
	saxpy1 func(orow []float32, a float32, brow []float32)
	auto   bool // eligible for automatic selection (bit-identical kernels only)
}

func init() {
	// Automatic choice: the widest auto-eligible kernel the arch offers.
	ks := archKernels()
	for i := len(ks) - 1; i >= 0; i-- {
		if ks[i].auto {
			saxpy4Impl, saxpy1Impl, matmulKernel = ks[i].saxpy4, ks[i].saxpy1, ks[i].name
			break
		}
	}
	if env := os.Getenv("VECMM"); env != "" && env != "auto" && env != "on" {
		// Explicit override; silently keep the automatic choice if this
		// CPU cannot honor it.
		_ = SetMatMulKernel(env)
	}
}
