// Command benchtables regenerates the paper's tables and figures from the
// simulation platform: Table I (model inventory), Table II (compression
// efficiency), Table III (compression on top of int8 quantization),
// Fig. 2 (LeNet-5 per-layer breakdown), Fig. 3 (weight entropy), Fig. 9
// (layer sensitivity) and Fig. 10 (accuracy vs latency vs energy).
//
// Usage:
//
//	benchtables -experiment all|table1|table2|table3|fig2|fig3|fig9|fig10|faults \
//	            [-models LeNet-5,AlexNet,...] [-probes 8] [-seed 2020] \
//	            [-epochs 10] [-samples 2000] [-fast] [-workers N] \
//	            [-timeout 30m] [-checkpoint run.json]
//	            [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// Independent work items (models, sweep points, accelerator layers) run
// on -workers goroutines; results are collected by index, so the output
// is byte-identical for every worker count.
//
// -timeout bounds the whole run with a context deadline; -checkpoint
// records completed experiments in a JSON file so an interrupted -all
// run resumes where it stopped instead of redoing finished work. The
// fig10 and faults sweeps additionally checkpoint each finished model,
// so even a single interrupted experiment resumes mid-sweep.
// -cpuprofile/-memprofile write pprof profiles of the run.
//
// The large models (VGG-16, Inception-v3, ResNet50) take minutes and
// hundreds of megabytes each; use -models to restrict a run.
package main

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/atomicio"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// csvDir, when set by -csv, receives one machine-readable file per
// experiment alongside the human-readable tables on stdout.
var csvDir string

// writeCSV stores rows under csvDir (no-op when -csv is unset). Files
// are published atomically so an interrupted run leaves either the
// previous complete CSV or the new one, never a truncated mix.
func writeCSV(name string, header []string, rows [][]string) error {
	if csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(csvDir, 0o755); err != nil {
		return err
	}
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	return atomicio.WriteFile(filepath.Join(csvDir, name+".csv"), buf.Bytes(), 0o644)
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// checkpointFile tracks which experiments of an -experiment=all run have
// completed, plus per-model intermediate results stored by the heavy
// sweeps (fig10, faults) through the experiments.Checkpoint interface,
// so an interrupted run resumes mid-sweep instead of per experiment. The
// on-disk form is a JSON object {"done": [...], "models": {...}}; the
// legacy plain name-array format from earlier releases is still read.
type checkpointFile struct {
	mu     sync.Mutex
	path   string
	done   map[string]bool
	models map[string]json.RawMessage
}

// checkpointDoc is the on-disk object form.
type checkpointDoc struct {
	Done   []string                   `json:"done"`
	Models map[string]json.RawMessage `json:"models,omitempty"`
}

// loadCheckpoint reads the checkpoint (a missing file is an empty one).
// A file that does not parse — truncated by a crash predating atomic
// writes, or hand-mangled — is detected and ignored with a warning, not
// half-loaded: resuming from scratch is always correct, resuming from a
// partial parse is not.
func loadCheckpoint(path string) (*checkpointFile, error) {
	cp := &checkpointFile{path: path, done: map[string]bool{}, models: map[string]json.RawMessage{}}
	if path == "" {
		return cp, nil
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return cp, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	if err := json.Unmarshal(data, &names); err != nil {
		var doc checkpointDoc
		if err := json.Unmarshal(data, &doc); err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: checkpoint %s is corrupt (%v); ignoring it and starting fresh\n", path, err)
			return cp, nil
		}
		names = doc.Done
		for k, v := range doc.Models {
			cp.models[k] = v
		}
	}
	for _, n := range names {
		cp.done[n] = true
	}
	return cp, nil
}

// save persists the checkpoint atomically and durably (write-to-temp in
// the same directory, fsync, rename, directory fsync), so a crash — or
// a power cut — mid-write cannot corrupt it. Callers hold cp.mu.
func (cp *checkpointFile) save() error {
	if cp.path == "" {
		return nil
	}
	doc := checkpointDoc{Done: make([]string, 0, len(cp.done)), Models: cp.models}
	for n := range cp.done {
		doc.Done = append(doc.Done, n)
	}
	sort.Strings(doc.Done)
	if len(doc.Models) == 0 {
		doc.Models = nil
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return atomicio.WriteFile(cp.path, append(data, '\n'), 0o644)
}

// mark records one completed experiment and persists the checkpoint.
func (cp *checkpointFile) mark(name string) error {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.done[name] = true
	return cp.save()
}

// Load implements experiments.Checkpoint: per-model sweep results.
func (cp *checkpointFile) Load(key string, out any) (bool, error) {
	cp.mu.Lock()
	raw, ok := cp.models[key]
	cp.mu.Unlock()
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return false, fmt.Errorf("checkpoint %s: key %q: %w", cp.path, key, err)
	}
	return true, nil
}

// Store implements experiments.Checkpoint.
func (cp *checkpointFile) Store(key string, val any) error {
	raw, err := json.Marshal(val)
	if err != nil {
		return err
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.models[key] = raw
	return cp.save()
}

func main() {
	var (
		experiment = flag.String("experiment", "all", "which table/figure to regenerate")
		modelsFlag = flag.String("models", "", "comma-separated model filter (default: the paper's set)")
		probes     = flag.Int("probes", 8, "probe inputs for the top-5 fidelity metric")
		seed       = flag.Int64("seed", 2020, "deterministic seed")
		epochs     = flag.Int("epochs", 10, "LeNet-5 training epochs")
		samples    = flag.Int("samples", 2000, "LeNet-5 training samples")
		fast       = flag.Bool("fast", false, "LeNet-scale smoke run")
		csvOut     = flag.String("csv", "", "also write machine-readable CSVs to this directory")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent workers (output is identical for any value)")
		timeout    = flag.Duration("timeout", 0, "abort the run after this long (0 = no deadline)")
		checkpoint = flag.String("checkpoint", "", "JSON file recording completed experiments and per-model sweep results; resumed runs skip them")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")

		tracePath    = flag.String("trace", "", "write a Chrome trace-event JSON (open at ui.perfetto.dev) to this file")
		metricsPath  = flag.String("metrics", "", "write the metrics snapshot to this file (.csv extension selects CSV, else text)")
		manifestPath = flag.String("manifest", "", "write a reproducibility manifest (JSON) to this file")
	)
	flag.Parse()
	csvDir = *csvOut

	// The matmul-heavy experiments depend on which saxpy kernel the CPU
	// dispatch picked; record it so runs on different machines compare.
	fmt.Printf("matmul kernel: %s (available: %s; force with VECMM=off|sse2|avx2|fma)\n",
		tensor.MatMulKernel(), strings.Join(tensor.MatMulKernels(), ","))

	opts := experiments.DefaultOptions()
	opts.Seed = *seed
	opts.Probes = *probes
	opts.TrainEpochs = *epochs
	opts.TrainSamples = *samples
	opts.Fast = *fast
	if *fast {
		opts = experiments.FastOptions()
		opts.Seed = *seed
	}
	if *modelsFlag != "" {
		opts.Models = strings.Split(*modelsFlag, ",")
	}
	opts.Workers = *workers
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		opts.Context = ctx
	}

	runners := map[string]func(experiments.Options) error{
		"table1":  runTable1,
		"table2":  runTable2,
		"table3":  runTable3,
		"fig2":    runFig2,
		"fig3":    runFig3,
		"fig9":    runFig9,
		"fig10":   runFig10,
		"mixed":   runMixed,
		"overlap": runOverlap,
		"faults":  runFaults,
		"cluster": runCluster,
	}
	order := []string{"table1", "table2", "fig2", "fig3", "fig9", "fig10", "table3", "mixed", "overlap", "faults", "cluster"}

	cp, err := loadCheckpoint(*checkpoint)
	if err != nil {
		fatal(err)
	}
	if *checkpoint != "" {
		// Per-model resume inside the heavy sweeps (fig10, faults): the
		// checkpoint file doubles as the experiments.Checkpoint store.
		opts.Checkpoint = cp
	}
	if *tracePath != "" || *metricsPath != "" || *manifestPath != "" {
		opts.Obs = obs.New()
	}
	stopProf, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	runErr := runExperiments(*experiment, order, runners, cp, opts)
	stopProf()
	if runErr != nil {
		fatal(runErr)
	}
	if err := writeObsOutputs(opts, *experiment, *tracePath, *metricsPath, *manifestPath); err != nil {
		fatal(err)
	}
}

// writeObsOutputs writes the trace, metrics, and manifest files selected
// by flags after a successful run.
func writeObsOutputs(opts experiments.Options, experiment, tracePath, metricsPath, manifestPath string) error {
	o := opts.Obs
	if o == nil {
		return nil
	}
	writeTo := func(path string, write func(*os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if tracePath != "" {
		if err := writeTo(tracePath, func(f *os.File) error { return o.T().WriteChromeJSON(f) }); err != nil {
			return err
		}
	}
	if metricsPath != "" {
		write := o.M().WriteText
		if strings.HasSuffix(metricsPath, ".csv") {
			write = o.M().WriteCSV
		}
		if err := writeTo(metricsPath, func(f *os.File) error { return write(f) }); err != nil {
			return err
		}
	}
	if manifestPath == "" {
		return nil
	}
	man := &obs.Manifest{
		Tool:             "benchtables",
		Experiment:       experiment,
		Seed:             opts.Seed,
		NoCCore:          opts.Accel.Mesh.Core.String(),
		MatMulKernel:     tensor.MatMulKernel(),
		AvailableKernels: tensor.MatMulKernels(),
		VecmmOverride:    os.Getenv("VECMM"),
		Mesh:             [2]int{opts.Accel.Mesh.Width, opts.Accel.Mesh.Height},
		MemNodes:         opts.Accel.MemNodes,
		MACLanes:         opts.Accel.MACLanes,
		TraceEvents:      o.T().EventCount(),
	}
	return man.WriteFile(manifestPath)
}

// fracPct is the NaN-safe percentage: an empty or aborted run divides by
// zero only on paper — here it reports 0.
func fracPct(part, total float64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * part / total
}

// ratio is the NaN-safe normalization used by the figure tables.
func ratio(v, max float64) float64 {
	if max == 0 {
		return 0
	}
	return v / max
}

// runExperiments dispatches -experiment (either "all" with checkpoint
// skipping, or a single named experiment).
func runExperiments(experiment string, order []string, runners map[string]func(experiments.Options) error, cp *checkpointFile, opts experiments.Options) error {
	if experiment == "all" {
		for _, name := range order {
			if cp.done[name] {
				fmt.Printf("\n=== %s: done (checkpointed), skipping ===\n", name)
				continue
			}
			if err := runners[name](opts); err != nil {
				return err
			}
			if err := cp.mark(name); err != nil {
				return err
			}
		}
		return nil
	}
	run, ok := runners[experiment]
	if !ok {
		return fmt.Errorf("unknown experiment %q (want all, %s)", experiment, strings.Join(order, ", "))
	}
	return run(opts)
}

// startProfiles starts the optional CPU profile and returns a stop
// function that finishes it and writes the optional heap profile.
// Profiles are written on normal completion, not after a fatal exit.
func startProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath == "" {
			return
		}
		f, err := os.Create(memPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtables: heap profile:", err)
			return
		}
		defer f.Close()
		runtime.GC() // flush recently freed objects so live-heap numbers are clean
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "benchtables: heap profile:", err)
		}
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchtables:", err)
	os.Exit(1)
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func runTable1(opts experiments.Options) error {
	rows, err := experiments.Table1(opts)
	if err != nil {
		return err
	}
	header("Table I: selected layers (measured vs paper)")
	fmt.Printf("%-14s %12s %10s %-12s %-5s %9s %7s\n",
		"model", "params", "paper(k)", "layer", "type", "fraction", "paper")
	var recs [][]string
	for _, r := range rows {
		fmt.Printf("%-14s %12d %10d %-12s %-5s %8.1f%% %6.0f%%\n",
			r.Model, r.Params, r.PaperParamsK, r.Layer, r.Kind,
			100*r.Fraction, 100*r.PaperFraction)
		recs = append(recs, []string{r.Model, strconv.Itoa(r.Params), r.Layer, r.Kind,
			ftoa(r.Fraction), ftoa(r.PaperFraction)})
	}
	return writeCSV("table1", []string{"model", "params", "layer", "kind", "fraction", "paper_fraction"}, recs)
}

// paperTable2 holds the published CR columns for side-by-side printing.
var paperTable2 = map[string]map[float64][2]float64{ // model -> delta -> {CR, weightedCR}
	"LeNet-5":      {0: {1.21, 1.17}, 5: {1.38, 1.30}, 10: {1.74, 1.58}, 15: {2.50, 2.17}, 20: {4.02, 3.36}},
	"AlexNet":      {0: {1.21, 1.15}, 5: {1.51, 1.35}, 10: {2.38, 1.97}, 15: {4.77, 3.63}, 20: {11.44, 8.28}},
	"VGG-16":       {0: {1.21, 1.16}, 2: {1.43, 1.32}, 4: {1.94, 1.70}, 6: {3.04, 2.51}, 8: {5.28, 4.18}},
	"MobileNet":    {0: {1.21, 1.05}, 2: {1.42, 1.10}, 4: {1.87, 1.21}, 6: {2.74, 1.42}, 8: {4.31, 1.80}},
	"Inception-v3": {0: {1.22, 1.02}, 5: {1.65, 1.06}, 10: {2.82, 1.16}, 15: {5.46, 1.38}, 20: {11.42, 1.89}},
	"ResNet50":     {0: {1.21, 1.02}, 2: {1.76, 1.06}, 4: {3.31, 1.18}, 6: {6.57, 1.45}, 8: {12.79, 1.94}},
}

func runTable2(opts experiments.Options) error {
	rows, err := experiments.Table2(opts)
	if err != nil {
		return err
	}
	header("Table II: compression efficiency (measured vs paper)")
	fmt.Printf("%-14s %6s %8s %8s %8s %8s %8s %10s\n",
		"model", "delta", "CR", "paper", "wCR", "paper", "memfp", "MSE")
	var recs [][]string
	for _, r := range rows {
		p := paperTable2[r.Model][r.DeltaPct]
		fmt.Printf("%-14s %5.0f%% %8.2f %8.2f %8.2f %8.2f %7.0f%% %10.2e\n",
			r.Model, r.DeltaPct, r.CR, p[0], r.WeightedCR, p[1],
			100*r.MemFpReduction, r.MSE)
		recs = append(recs, []string{r.Model, ftoa(r.DeltaPct), ftoa(r.CR), ftoa(p[0]),
			ftoa(r.WeightedCR), ftoa(p[1]), ftoa(r.MemFpReduction), ftoa(r.MSE)})
	}
	return writeCSV("table2", []string{"model", "delta_pct", "cr", "paper_cr", "wcr", "paper_wcr", "memfp_reduction", "mse"}, recs)
}

func runTable3(opts experiments.Options) error {
	rows, err := experiments.Table3(opts)
	if err != nil {
		return err
	}
	header("Table III: compression on top of int8 quantization")
	fmt.Printf("%-14s %8s %8s %6s %8s %9s\n",
		"model", "QT wCR", "QT acc", "delta", "wCR", "accuracy")
	var recs [][]string
	for _, r := range rows {
		fmt.Printf("%-14s %8.2f %8.4f %5.0f%% %8.2f %9.4f\n",
			r.Model, r.QTCR, r.QTAccuracy, r.DeltaPct, r.WeightedCR, r.Accuracy)
		recs = append(recs, []string{r.Model, ftoa(r.QTCR), ftoa(r.QTAccuracy),
			ftoa(r.DeltaPct), ftoa(r.WeightedCR), ftoa(r.Accuracy)})
	}
	return writeCSV("table3", []string{"model", "qt_wcr", "qt_accuracy", "delta_pct", "wcr", "accuracy"}, recs)
}

func runFig2(opts experiments.Options) error {
	rows, err := experiments.Fig2(opts)
	if err != nil {
		return err
	}
	header("Fig. 2: LeNet-5 per-layer latency and energy breakdown")
	var maxCyc uint64
	var maxE float64
	for _, r := range rows {
		if r.Cycles > maxCyc {
			maxCyc = r.Cycles
		}
		if e := r.Energy.Total(); e > maxE {
			maxE = e
		}
	}
	fmt.Printf("%-10s %8s | %-30s | %-42s\n", "layer", "norm", "latency breakdown", "energy breakdown (dyn+leak)")
	for _, r := range rows {
		lt := r.Latency
		total := float64(lt.Total())
		e := r.Energy
		et := e.Total()
		fmt.Printf("%-10s %8.3f | mem %4.0f%% comm %4.0f%% comp %4.0f%% | comm %4.1f%% compute %4.1f%% local %4.1f%% main %5.1f%% (Enorm %.3f)\n",
			r.Layer, ratio(float64(r.Cycles), float64(maxCyc)),
			fracPct(float64(lt.Memory), total),
			fracPct(float64(lt.Communication), total),
			fracPct(float64(lt.Computation), total),
			fracPct(e.CommDyn+e.CommLeak, et),
			fracPct(e.CompDyn+e.CompLeak, et),
			fracPct(e.LocalDyn+e.LocalLeak, et),
			fracPct(e.MainDyn+e.MainLeak, et),
			ratio(et, maxE))
	}
	var recs [][]string
	for _, r := range rows {
		e := r.Energy
		recs = append(recs, []string{r.Layer, r.Kind, strconv.FormatUint(r.Cycles, 10),
			strconv.FormatUint(r.Latency.Memory, 10),
			strconv.FormatUint(r.Latency.Communication, 10),
			strconv.FormatUint(r.Latency.Computation, 10),
			ftoa(e.CommDyn), ftoa(e.CommLeak), ftoa(e.CompDyn), ftoa(e.CompLeak),
			ftoa(e.LocalDyn), ftoa(e.LocalLeak), ftoa(e.MainDyn), ftoa(e.MainLeak)})
	}
	return writeCSV("fig2", []string{"layer", "kind", "cycles", "lat_mem", "lat_comm", "lat_comp",
		"e_comm_dyn", "e_comm_leak", "e_comp_dyn", "e_comp_leak",
		"e_local_dyn", "e_local_leak", "e_main_dyn", "e_main_leak"}, recs)
}

func runFig3(opts experiments.Options) error {
	rows, err := experiments.Fig3(opts)
	if err != nil {
		return err
	}
	header("Fig. 3: entropy of weight streams vs random and text (bits/byte)")
	var recs [][]string
	for _, r := range rows {
		bar := strings.Repeat("#", int(r.EntropyBits*6))
		fmt.Printf("%-14s %6.3f  %s\n", r.Corpus, r.EntropyBits, bar)
		recs = append(recs, []string{r.Corpus, strconv.Itoa(r.Bytes), ftoa(r.EntropyBits)})
	}
	return writeCSV("fig3", []string{"corpus", "bytes", "entropy_bits_per_byte"}, recs)
}

func runFig9(opts experiments.Options) error {
	rows, err := experiments.Fig9(opts)
	if err != nil {
		return err
	}
	header("Fig. 9: per-layer sensitivity (absolute | per-parameter density)")
	var recs [][]string
	for _, r := range rows {
		bar := strings.Repeat("#", int(r.PerParam*40))
		fmt.Printf("%-14s %-14s abs %6.3f  density %6.3f  %s\n",
			r.Model, r.Layer, r.Sensitivity, r.PerParam, bar)
		recs = append(recs, []string{r.Model, r.Layer, r.Kind,
			strconv.Itoa(r.Params), ftoa(r.Sensitivity), ftoa(r.PerParam)})
	}
	return writeCSV("fig9", []string{"model", "layer", "kind", "params", "sensitivity", "sensitivity_per_param"}, recs)
}

func runFig10(opts experiments.Options) error {
	pts, err := experiments.Fig10(opts)
	if err != nil {
		return err
	}
	header("Fig. 10: accuracy vs inference latency vs inference energy")
	fmt.Printf("%-14s %-7s %9s %9s %9s | %-26s\n",
		"model", "config", "accuracy", "latency", "energy", "energy split main/comm/comp/local")
	for _, p := range pts {
		e := p.Energy
		et := e.Total()
		fmt.Printf("%-14s %-7s %9.4f %9.3f %9.3f | %5.1f%% %5.1f%% %5.1f%% %5.1f%%\n",
			p.Model, p.Config, p.Accuracy, p.LatencyNorm, p.EnergyNorm,
			fracPct(e.MainDyn+e.MainLeak, et),
			fracPct(e.CommDyn+e.CommLeak, et),
			fracPct(e.CompDyn+e.CompLeak, et),
			fracPct(e.LocalDyn+e.LocalLeak, et))
	}
	var recs [][]string
	for _, p := range pts {
		e := p.Energy
		recs = append(recs, []string{p.Model, p.Config, ftoa(p.DeltaPct), ftoa(p.Accuracy),
			strconv.FormatUint(p.Cycles, 10), ftoa(p.LatencyNorm), ftoa(p.EnergyNorm),
			ftoa(e.MainDyn + e.MainLeak), ftoa(e.CommDyn + e.CommLeak),
			ftoa(e.CompDyn + e.CompLeak), ftoa(e.LocalDyn + e.LocalLeak)})
	}
	return writeCSV("fig10", []string{"model", "config", "delta_pct", "accuracy", "cycles",
		"latency_norm", "energy_norm", "e_main", "e_comm", "e_comp", "e_local"}, recs)
}

func runMixed(opts experiments.Options) error {
	pts, err := experiments.MixedCodec(opts)
	if err != nil {
		return err
	}
	header("Mixed-codec sweep: CR vs accuracy vs latency/energy across the codec arena")
	fmt.Printf("%-14s %-14s %-10s %6s %6s %9s %9s %9s %9s %7s\n",
		"model", "config", "codec", "level", "layers", "wcr", "accuracy", "latency", "energy", "pareto")
	var recs [][]string
	for _, p := range pts {
		pareto := ""
		if p.Pareto {
			pareto = "*"
		}
		fmt.Printf("%-14s %-14s %-10s %6g %6d %9.3f %9.4f %9.3f %9.3f %7s\n",
			p.Model, p.Config, p.Codec, p.Level, p.Layers,
			p.WeightedCR, p.Accuracy, p.LatencyNorm, p.EnergyNorm, pareto)
		recs = append(recs, []string{p.Model, p.Config, p.Codec, ftoa(p.Level), ftoa(p.Budget),
			strconv.Itoa(p.Layers), ftoa(p.WeightedCR), ftoa(p.Accuracy),
			strconv.FormatUint(p.Cycles, 10), ftoa(p.LatencyNorm), ftoa(p.EnergyNorm),
			strconv.FormatBool(p.Pareto)})
	}
	return writeCSV("mixed", []string{"model", "config", "codec", "level", "budget",
		"layers", "wcr", "accuracy", "cycles", "latency_norm", "energy_norm", "pareto"}, recs)
}

func runOverlap(opts experiments.Options) error {
	pts, err := experiments.OverlapSweep(opts)
	if err != nil {
		return err
	}
	header("Overlap sweep: latency/energy vs compression ratio, serial vs streaming schedules")
	fmt.Printf("%-14s %6s %7s %-13s %7s %10s %8s %10s %8s %7s\n",
		"model", "delta", "cr", "mode", "rounds", "cycles", "stall", "energy(uJ)", "speedup", "pareto")
	var recs [][]string
	for _, p := range pts {
		pareto := ""
		if p.Pareto {
			pareto = "*"
		}
		fmt.Printf("%-14s %6g %7.2f %-13s %7d %10d %8d %10.3f %8.3f %7s\n",
			p.Model, p.Delta, p.CR, p.Mode, p.Rounds, p.Cycles, p.DecodeStall,
			p.EnergyUJ, p.Speedup, pareto)
		recs = append(recs, []string{p.Model, ftoa(p.Delta), ftoa(p.CR), p.Mode,
			strconv.Itoa(p.Rounds), strconv.FormatUint(p.Cycles, 10),
			strconv.FormatUint(p.DecodeStall, 10), ftoa(p.EnergyUJ),
			ftoa(p.Speedup), strconv.FormatBool(p.Pareto)})
	}
	return writeCSV("overlap", []string{"model", "delta_pct", "cr", "mode", "rounds",
		"cycles", "decode_stall", "energy_uj", "speedup", "pareto"}, recs)
}

func runFaults(opts experiments.Options) error {
	rows, err := experiments.FaultSweep(opts)
	if err != nil {
		return err
	}
	header("Fault sweep: accuracy vs DRAM word-flip rate, raw vs compressed stream")
	fmt.Printf("%-14s %-10s %9s %6s %9s %7s %9s %9s %9s\n",
		"model", "stream", "rate", "delta", "words", "flips", "detected", "baseline", "accuracy")
	var recs [][]string
	for _, r := range rows {
		fmt.Printf("%-14s %-10s %9.2g %5.0f%% %9d %7d %9d %9.4f %9.4f\n",
			r.Model, r.Stream, r.Rate, r.DeltaPct, r.Words, r.Flips, r.Detected,
			r.Baseline, r.Accuracy)
		recs = append(recs, []string{r.Model, r.Stream, ftoa(r.Rate), ftoa(r.DeltaPct),
			strconv.Itoa(r.Words), strconv.Itoa(r.Flips), strconv.Itoa(r.Detected),
			ftoa(r.Baseline), ftoa(r.Accuracy)})
	}
	return writeCSV("faults", []string{"model", "stream", "rate", "delta_pct",
		"words", "flips", "detected", "baseline", "accuracy"}, recs)
}

func runCluster(opts experiments.Options) error {
	rows, err := experiments.ClusterFaultSweep(opts)
	if err != nil {
		return err
	}
	header("Cluster fault sweep: availability and latency under chaos during a weight-version rollout")
	fmt.Printf("%-14s %-15s %6s %7s %7s %7s %6s %6s %6s %7s %6s %-11s %7s\n",
		"model", "scenario", "drop", "avail", "p50", "p99", "served", "failed", "stale", "reduced", "fover", "epoch", "leaders")
	var recs [][]string
	for _, r := range rows {
		fmt.Printf("%-14s %-15s %6.2f %7.3f %7d %7d %6d %6d %6d %7d %6d %-11s %7d\n",
			r.Model, r.Scenario, r.DropRate, r.Availability, r.P50, r.P99,
			r.Served, r.Failed, r.ServedStale, r.ReducedReplica, r.FailedOver,
			r.EpochOutcome, r.LeaderChanges)
		recs = append(recs, []string{r.Model, r.Scenario, ftoa(r.DropRate), ftoa(r.Availability),
			strconv.FormatUint(r.P50, 10), strconv.FormatUint(r.P99, 10),
			strconv.Itoa(r.Served), strconv.Itoa(r.Failed), strconv.Itoa(r.ServedStale),
			strconv.Itoa(r.ReducedReplica), strconv.Itoa(r.FailedOver),
			strconv.Itoa(r.MixedVersion), r.EpochOutcome, strconv.Itoa(r.LeaderChanges)})
	}
	return writeCSV("cluster", []string{"model", "scenario", "drop_rate", "availability",
		"p50_ticks", "p99_ticks", "served", "failed", "served_stale", "reduced_replica",
		"failed_over", "mixed_version", "epoch_outcome", "leader_changes"}, recs)
}
